package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry/promtext"
)

// startDaemon runs the daemon body in a goroutine and returns its base URL
// and a kill function that triggers graceful shutdown and waits for the
// final checkpoint to land.
func startDaemon(t *testing.T, args ...string) (base string, kill func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errBuf bytes.Buffer
	go func() {
		done <- run(ctx, args, &bytes.Buffer{}, &errBuf, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\nstderr: %s", err, errBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	var once bool
	kill = func() {
		if once {
			return
		}
		once = true
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with %v\nstderr: %s", err, errBuf.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
	t.Cleanup(kill)
	return base, kill
}

// emitNDJSON renders the daemon's own synthetic stream for [start, start+count).
func emitNDJSON(t *testing.T, start, count int) string {
	t.Helper()
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-n", "15", "-groups", "3", "-seed", "7",
		"-emit-slots", strconv.Itoa(count), "-emit-start", strconv.Itoa(start),
	}, &out, &bytes.Buffer{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func ingest(t *testing.T, base, ndjson string) int {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if msg, ok := m["error"]; ok {
			t.Fatalf("ingest error after %d slots: %v", n, msg)
		}
		n++
	}
	return n
}

func getState(t *testing.T, base string) serve.State {
	t.Helper()
	resp, err := http.Get(base + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDaemonKillRestoreParity is the end-to-end acceptance smoke: stream
// 50 slots, SIGTERM-equivalent shutdown (final checkpoint), restart with
// -restore, stream the next 50, and require the final state hash to equal
// an uninterrupted 100-slot run's.
func TestDaemonKillRestoreParity(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt.json")
	common := []string{
		"-n", "15", "-groups", "3", "-seed", "7",
		"-frames", "13", "-frame", "24", "-checkpoint-every", "10",
	}

	base, kill := startDaemon(t, append([]string{"-addr", "127.0.0.1:0", "-checkpoint", ckpt}, common...)...)
	if n := ingest(t, base, emitNDJSON(t, 0, 50)); n != 50 {
		t.Fatalf("first leg settled %d slots", n)
	}
	kill()

	base2, kill2 := startDaemon(t, append([]string{
		"-addr", "127.0.0.1:0", "-checkpoint", ckpt, "-restore", ckpt,
	}, common...)...)
	st := getState(t, base2)
	if st.Slot != 50 || !st.Restored {
		t.Fatalf("restored daemon state = %+v, want slot 50 restored", st)
	}
	if n := ingest(t, base2, emitNDJSON(t, 50, 50)); n != 50 {
		t.Fatalf("second leg settled %d slots", n)
	}
	interrupted := getState(t, base2)
	kill2()

	ckptRef := filepath.Join(dir, "ref.ckpt.json")
	base3, kill3 := startDaemon(t, append([]string{"-addr", "127.0.0.1:0", "-checkpoint", ckptRef}, common...)...)
	if n := ingest(t, base3, emitNDJSON(t, 0, 100)); n != 100 {
		t.Fatalf("reference run settled %d slots", n)
	}
	reference := getState(t, base3)
	kill3()

	if interrupted.Slot != 100 || reference.Slot != 100 {
		t.Fatalf("slot counts: interrupted %d, reference %d", interrupted.Slot, reference.Slot)
	}
	if interrupted.Hash != reference.Hash {
		t.Fatalf("state hash after kill+restore %s, uninterrupted %s", interrupted.Hash, reference.Hash)
	}
	if interrupted.TotalUSD != reference.TotalUSD || interrupted.GridKWh != reference.GridKWh {
		t.Fatalf("accounting diverges: %+v vs %+v", interrupted, reference)
	}
}

// TestDaemonEndpointsOneListener confirms the app and telemetry surfaces
// share the mux.
func TestDaemonEndpointsOneListener(t *testing.T) {
	dir := t.TempDir()
	base, _ := startDaemon(t, "-addr", "127.0.0.1:0",
		"-checkpoint", filepath.Join(dir, "ck.json"), "-n", "15", "-groups", "3")
	for _, path := range []string{"/state", "/checkpoint", "/metrics", "/metrics.json",
		"/healthz", "/readyz", "/spans", "/debug/vars"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestDaemonMetricsExposition pins the daemon's scrape surface: after a
// few settled slots, /metrics is Prometheus text carrying site-labeled
// controller series and the runtime collector's gauges.
func TestDaemonMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	base, _ := startDaemon(t, "-addr", "127.0.0.1:0", "-site", "dc-east",
		"-checkpoint", filepath.Join(dir, "ck.json"), "-n", "15", "-groups", "3")
	if n := ingest(t, base, emitNDJSON(t, 0, 5)); n != 5 {
		t.Fatalf("settled %d slots, want 5", n)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	slots, ok := promtext.Find(fams, "cocad_slots", promtext.Label{Name: "site", Value: "dc-east"})
	if !ok || slots.Value != 5 {
		t.Fatalf(`cocad_slots{site="dc-east"} = %+v (ok=%v), want 5`, slots, ok)
	}
	if _, ok := promtext.Find(fams, "runtime_goroutines"); !ok {
		t.Fatal("runtime collector series missing from /metrics")
	}
	if _, ok := promtext.Find(fams, "http_requests",
		promtext.Label{Name: "path", Value: "/ingest"}, promtext.Label{Name: "code", Value: "200"}); !ok {
		t.Fatal(`http_requests{path="/ingest",code="200"} missing from /metrics`)
	}
}

// TestDaemonNoPprof pins the -no-pprof gate: the profiling surface is
// unmounted while the rest of the telemetry surface stays up.
func TestDaemonNoPprof(t *testing.T) {
	dir := t.TempDir()
	base, _ := startDaemon(t, "-addr", "127.0.0.1:0", "-no-pprof",
		"-checkpoint", filepath.Join(dir, "ck.json"), "-n", "15", "-groups", "3")
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ with -no-pprof = %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/metrics", "/debug/vars", "/healthz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestDaemonReadyzSettleAge pins the settle-age readiness bound: fresh
// daemons are ready (nothing settled yet), and a stalled feed flips
// /readyz to 503 once the last settle outlives the bound.
func TestDaemonReadyzSettleAge(t *testing.T) {
	dir := t.TempDir()
	base, _ := startDaemon(t, "-addr", "127.0.0.1:0", "-ready-max-settle-age", "50ms",
		"-checkpoint", filepath.Join(dir, "ck.json"), "-n", "15", "-groups", "3")
	if code := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("fresh daemon /readyz = %d, want 200", code)
	}
	if n := ingest(t, base, emitNDJSON(t, 0, 1)); n != 1 {
		t.Fatalf("settled %d slots, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getStatus(t, base+"/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after the feed stalled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Liveness is unaffected by readiness.
	if code := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d while unready, want 200", code)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-n", "-5"},
		{"-groups", "0"},
		{"-v", "0"},
		{"-checkpoint-every", "-1"},
		{"-groups", "10", "-n", "4"},
		{"-beta", "NaN"},
		{"-emit-slots", "-1"},
		{"-emit-slots", "10", "-emit-start", "-2"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, &bytes.Buffer{}, &bytes.Buffer{}, nil)
		if !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", args, err)
		}
	}
}

func TestEmitSlotsWindows(t *testing.T) {
	full := emitNDJSON(t, 0, 100)
	split := emitNDJSON(t, 0, 50) + emitNDJSON(t, 50, 50)
	if full != split {
		t.Fatal("emitted stream is not position-addressable across windows")
	}
	if got := strings.Count(full, "\n"); got != 100 {
		t.Fatalf("emitted %d records, want 100", got)
	}
}
