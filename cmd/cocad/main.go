// Command cocad runs the COCA controller as a long-running control plane:
// a daemon that ingests streaming slot observations over HTTP, answers
// each slot with the controller's decision, and checkpoints its full state
// (slot cursor, deficit queue, GSD warm starts, cumulative accounting and
// the FNV-1a hash chain) so a kill and restart with -restore continues the
// run bit for bit.
//
// Usage:
//
//	cocad -addr 127.0.0.1:7642 -checkpoint run.ckpt.json
//	cocad -restore run.ckpt.json            # resume a checkpointed run
//	cocad -emit-slots 100 | curl -sN --json @- $ADDR/ingest
//
// Endpoints (one listener): POST /decide, POST /ingest (NDJSON stream),
// GET /state, GET /checkpoint, GET /healthz (liveness), GET /readyz
// (restore complete, checkpoint writer healthy, settle-age bound), plus
// /metrics (Prometheus text), /metrics.json, /spans, /debug/vars and —
// unless -no-pprof — /debug/pprof from the telemetry layer. Logs are
// structured records (-log-format text|json) on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/telemetry/logf"
	"repro/internal/telemetry/span"
)

// errUsage marks flag/validation failures so main exits 2, not 1.
var errUsage = errors.New("usage error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so tests can drive a full
// start → ingest → kill → restore cycle in-process. ready, when non-nil,
// receives the bound listen address once the server is up.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("cocad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:7642", "listen address for the control plane")
		ckptPath   = fs.String("checkpoint", "cocad.ckpt.json", "checkpoint file path (written periodically and on shutdown; empty disables)")
		ckptEvery  = fs.Int("checkpoint-every", 25, "write a checkpoint every N settled slots (0 disables the periodic writer)")
		restore    = fs.String("restore", "", "restore state from this checkpoint file before serving")
		n          = fs.Int("n", 60, "total servers in the cluster")
		groups     = fs.Int("groups", 6, "server groups (heterogeneous types cycle across groups)")
		beta       = fs.Float64("beta", 0.02, "delay weight β")
		vParam     = fs.Float64("v", 5e5, "Lyapunov cost-carbon parameter V")
		frames     = fs.Int("frames", 365, "frames in the V schedule (horizon = frames × frame slots)")
		frameSlots = fs.Int("frame", 24, "slots per frame")
		alpha      = fs.Float64("alpha", 1.0, "carbon-deficit step size α")
		rec        = fs.Float64("rec", 2.0, "REC budget per slot in kWh")
		slotHours  = fs.Float64("slot-hours", 0, "slot duration in hours (0: the paper default)")
		switchCost = fs.Float64("switch-cost", 0.231, "switching cost in kWh per toggled server")
		seed       = fs.Uint64("seed", 2012, "seed for the GSD solver and -emit-slots stream")
		iters      = fs.Int("iters", 150, "GSD iteration budget per slot")
		delta      = fs.Float64("delta", 1e4, "GSD temperature δ")
		patience   = fs.Int("patience", 0, "GSD early-stop patience (0 disables)")
		gsdWorkers = fs.Int("gsd-workers", 0, "speculative proposal evaluators per GSD solve (0 or 1: sequential; >1: parallel speculation, bit-identical results)")
		emitSlots  = fs.Int("emit-slots", 0, "emit this many synthetic SlotInput NDJSON records to stdout and exit")
		emitStart  = fs.Int("emit-start", 0, "absolute slot index the emitted stream starts at")
		site       = fs.String("site", "default", "site label stamped on this daemon's metrics series")
		noPprof    = fs.Bool("no-pprof", false, "do not mount /debug/pprof on the control-plane listener")
		logFormat  = fs.String("log-format", logf.FormatText, "structured log format: text or json")
		maxSettle  = fs.Duration("ready-max-settle-age", 0, "fail /readyz when the last settled slot is older than this (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if err := cliutil.FirstError(
		cliutil.PositiveCount("-n", *n),
		cliutil.PositiveCount("-groups", *groups),
		cliutil.PositiveCount("-frames", *frames),
		cliutil.PositiveCount("-frame", *frameSlots),
		cliutil.PositiveCount("-iters", *iters),
		cliutil.NonNegativeCount("-checkpoint-every", *ckptEvery),
		cliutil.NonNegativeCount("-emit-slots", *emitSlots),
		cliutil.NonNegativeCount("-emit-start", *emitStart),
		cliutil.NonNegativeCount("-patience", *patience),
		cliutil.WorkersFor("-gsd-workers", *gsdWorkers),
		cliutil.PositiveFloat("-v", *vParam),
		cliutil.PositiveFloat("-alpha", *alpha),
		cliutil.PositiveFloat("-delta", *delta),
		cliutil.NonNegativeFloat("-beta", *beta),
		cliutil.NonNegativeFloat("-rec", *rec),
		cliutil.NonNegativeFloat("-slot-hours", *slotHours),
		cliutil.NonNegativeFloat("-switch-cost", *switchCost),
	); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if *groups > *n {
		return fmt.Errorf("%w: -groups %d exceeds -n %d servers", errUsage, *groups, *n)
	}
	if *maxSettle < 0 {
		return fmt.Errorf("%w: -ready-max-settle-age %v is negative", errUsage, *maxSettle)
	}
	log, err := logf.New(stderr, *logFormat, logf.Options{})
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	cluster := dcmodel.HeterogeneousCluster(*n, *groups)

	if *emitSlots > 0 {
		return emit(stdout, cluster, *seed, *emitStart, *emitSlots)
	}

	// Startup config dump: one record carrying every effective flag value,
	// so a log line suffices to reproduce the run.
	var cfg []any
	fs.VisitAll(func(f *flag.Flag) {
		cfg = append(cfg, f.Name, f.Value.String())
	})
	log.Info("config", cfg...)

	ctrl, err := core.NewController(cluster, *beta, lyapunov.ConstantV(*vParam, *frames, *frameSlots),
		*alpha, *rec, &gsd.Solver{Opts: gsd.Options{
			Delta: *delta, MaxIters: *iters, Patience: *patience, Seed: *seed,
			Workers: *gsdWorkers,
		}})
	if err != nil {
		return err
	}
	ctrl.SlotHours = *slotHours
	ctrl.SwitchCostKWh = *switchCost
	svc := serve.New(ctrl)

	reg := telemetry.NewRegistry()
	svc.Instrument(serve.NewSiteMetrics(reg, "cocad", *site))
	telemetry.NewRuntimeMetrics(reg, "runtime")
	if !telemetry.PublishExpvar(reg) {
		log.Warn("expvar name already owned by an earlier registry; /debug/vars will not carry this run")
	}
	tracer := span.NewTracer()

	// Readiness: restore must have finished, the checkpoint writer must
	// not be failing, and (when bounded) the feed must not have stalled.
	var restoreDone, ckptErr atomic.Value
	restoreDone.Store(*restore == "")
	ckptErr.Store("")
	readiness := serve.NewReadiness()
	readiness.Add("restore", func() error {
		if !restoreDone.Load().(bool) {
			return errors.New("checkpoint restore still pending")
		}
		return nil
	})
	readiness.Add("checkpoint", func() error {
		if msg := ckptErr.Load().(string); msg != "" {
			return errors.New(msg)
		}
		return nil
	})
	if *maxSettle > 0 {
		readiness.Add("settle-age", func() error {
			if age, ok := svc.SettleAge(); ok && age > *maxSettle {
				return fmt.Errorf("last slot settled %s ago (bound %s)", age.Round(time.Millisecond), *maxSettle)
			}
			return nil
		})
	}

	if *restore != "" {
		blob, err := os.ReadFile(*restore)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		var ck serve.Checkpoint
		if err := json.Unmarshal(blob, &ck); err != nil {
			return fmt.Errorf("restore: malformed checkpoint %s: %w", *restore, err)
		}
		if err := svc.RestoreFrom(ck); err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		restoreDone.Store(true)
		log.Info("restored", "path", *restore, "slot", svc.State().Slot, "hash", svc.State().Hash)
	}

	// The periodic checkpointer runs off the ingest path: the on-settle
	// hook (called under the service lock) only nudges a channel, and a
	// writer goroutine snapshots and persists at its own pace.
	writerCtx, stopWriter := context.WithCancel(ctx)
	defer stopWriter()
	var wake chan struct{}
	writerDone := make(chan struct{})
	if *ckptPath != "" && *ckptEvery > 0 {
		wake = make(chan struct{}, 1)
		svc.SetOnSettle(func(slot int) {
			if slot%*ckptEvery == 0 {
				select {
				case wake <- struct{}{}:
				default:
				}
			}
		})
	}
	go func() {
		defer close(writerDone)
		if wake == nil {
			return
		}
		for {
			select {
			case <-writerCtx.Done():
				return
			case <-wake:
				if err := writeCheckpoint(*ckptPath, svc); err != nil {
					ckptErr.Store(err.Error())
					log.Error("checkpoint write failed", "path", *ckptPath, "error", err)
				} else {
					ckptErr.Store("")
				}
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.HandlerWith(reg, tracer, serve.HandlerOpts{
		Telemetry: telemetry.RegisterOpts{NoPprof: *noPprof},
		Log:       log.With(slog.String("site", *site)),
		Ready:     readiness,
	})}
	log.Info("listening", "addr", "http://"+ln.Addr().String(), "site", *site,
		"endpoints", "/decide /ingest /state /checkpoint /healthz /readyz /metrics")
	if ready != nil {
		ready(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopWriter()
		<-writerDone
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, give in-flight streams a grace
	// window, then write the final checkpoint once no step can race it.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	<-writerDone
	if *ckptPath != "" {
		if err := writeCheckpoint(*ckptPath, svc); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		log.Info("checkpoint written", "path", *ckptPath,
			"slot", svc.State().Slot, "hash", svc.State().Hash)
	}
	return nil
}

// emit streams deterministic synthetic observations scaled to the cluster:
// demand peaks at half the cluster's capacity, with modest on-site and
// off-site feeds. The stream is position-addressable, so two invocations
// covering [0,50) and [50,100) concatenate to the [0,100) stream.
func emit(w io.Writer, cluster *dcmodel.Cluster, seed uint64, start, count int) error {
	servers := 0
	for _, g := range cluster.Groups {
		servers += g.N
	}
	peak := 0.5 * cluster.Gamma * cluster.MaxCapacityRPS()
	onsiteKW := 0.02 * float64(servers)
	offsiteMean := 0.01 * float64(servers)
	enc := json.NewEncoder(w)
	for _, in := range serve.SyntheticSlots(seed, start, count, peak, onsiteKW, offsiteMean) {
		if err := enc.Encode(in); err != nil {
			return err
		}
	}
	return nil
}

// writeCheckpoint persists the service snapshot atomically: write a temp
// file in the target directory, fsync, rename. A crash mid-write leaves
// the previous checkpoint intact.
func writeCheckpoint(path string, svc *serve.Service) error {
	ck, err := svc.Checkpoint()
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
