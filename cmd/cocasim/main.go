// Command cocasim regenerates the paper's evaluation figures (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for measured
// results).
//
// Usage:
//
//	cocasim -exp all                 # every figure at paper scale (~minutes)
//	cocasim -exp fig2 -n 2000        # one figure at reduced fleet scale
//	cocasim -exp fig3 -slots 2016    # twelve weeks instead of a year
//
// Experiments: fig1 (workload traces), fig2 (impact of V), fig3 (COCA vs
// PerfectHP), fig4 (GSD execution), fig5 (sensitivity studies), mix
// (off-site/REC portfolio mix study), capping (§2.2 energy-cap variant),
// lookahead (P2 window sweep + Theorem 2 bounds), reset (frame-reset
// ablation), tariff (§2.1 nonlinear pricing), batch (green batch
// scheduling on spare capacity), predict (PerfectHP under imperfect
// forecasts), delay (Eq. 4 vs the event-driven M/G/1/PS simulator), geo
// (multi-site geographic load balancing).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/telemetry/logf"
	"repro/internal/telemetry/span"
)

// logger carries the process's structured stderr log (logf records, not
// prose): experiment results stay on stdout, operational events land
// here. Set once in main before any runner can log.
var logger *slog.Logger

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig1|fig2|fig3|fig4|fig5|mix|capping|lookahead|reset|tariff|batch|predict|delay|geo|all")
		slots      = flag.Int("slots", 0, "horizon in hours (default: 8760, one year)")
		n          = flag.Int("n", 0, "fleet size (default: 216000, the paper's deployment)")
		beta       = flag.Float64("beta", 0, "delay weight β (default: 0.02)")
		budget     = flag.Float64("budget", 0, "carbon budget as fraction of unaware usage (default: 0.92)")
		seed       = flag.Uint64("seed", 0, "master seed (default: 2012)")
		csvDir     = flag.String("csvdir", "", "write figure data as CSV files into this directory (fig2/fig3 series)")
		workers    = flag.Int("workers", 0, "worker pool for independent runs (0: all cores, 1: sequential; results are identical either way)")
		gsdWorkers = flag.Int("gsd-workers", 0, "speculative proposal evaluators inside each GSD solve (0 or 1: sequential chain; >1: parallel speculation, bit-identical results)")
		bench      = flag.String("bench-json", "", "run the engine/sweep benchmark and write the JSON report to this path, then exit")
		scale      = flag.String("scale", "", "fleet-scale bench grid as GROUPSxSITES cells (e.g. 200x16,10000x256): parity-check and time geo.Fleet steps; with -bench-json the cells land in the report, alone they print and exit")

		stream      = flag.String("stream", "", "single-run mode: stream one NDJSON record per settled slot to this path (- for stdout)")
		policy      = flag.String("policy", "coca", "policy for -stream single-run mode: coca|unaware")
		vParam      = flag.Float64("v", 240, "COCA cost-carbon parameter V for -stream (the paper's neutral point is ~240)")
		metricsAddr = flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics JSON, /spans, /debug/vars expvar, /debug/pprof)")
		telemJSON   = flag.String("telemetry-json", "", "write the final telemetry snapshot as JSON to this path")

		reqsim        = flag.Int("reqsim", 0, "with -stream: replay each settled slot at request granularity with ~this many simulated requests (0: off); prints empirical-vs-analytic delay error and exports per-slot percentiles")
		reqsimService = flag.String("reqsim-service", "exp", "service-time distribution for -reqsim replays: exp|det|hyperexp|pareto (pareto is the heavy-tailed arm)")
		reqsimEvery   = flag.Int("reqsim-every", 1, "replay every kth settled slot (sampling knob for long -reqsim runs)")
		reqsimBursty  = flag.Bool("reqsim-bursty", false, "replace Poisson arrivals with a bursty on/off process in -reqsim replays (the arm where Eq. 4 is knowably wrong)")

		traceOut     = flag.String("trace-out", "", "record execution spans and write them as Chrome trace-event JSON to this path (open in ui.perfetto.dev or chrome://tracing)")
		traceSpans   = flag.String("trace-spans", "", "record execution spans and write them as NDJSON (one span per line) to this path")
		benchAgainst = flag.String("bench-against", "", "with -bench-json: compare the fresh report against this baseline (hard equality on result hashes, ±25% wall-time tolerance) and exit non-zero on regression")
		logFormat    = flag.String("log-format", logf.FormatText, "structured log format for stderr: text or json")
	)
	flag.Parse()

	var err error
	logger, err = logf.New(os.Stderr, *logFormat, logf.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	// Reject nonsensical values up front: a negative -workers used to slip
	// through the pool's `> 0` check and silently mean "all cores".
	if err := cliutil.FirstError(
		cliutil.Workers(*workers),
		cliutil.WorkersFor("-gsd-workers", *gsdWorkers),
		cliutil.NonNegativeCount("-slots", *slots),
		cliutil.NonNegativeCount("-n", *n),
		cliutil.NonNegativeFloat("-beta", *beta),
		cliutil.NonNegativeFloat("-budget", *budget),
		cliutil.PositiveFloat("-v", *vParam),
		cliutil.NonNegativeCount("-reqsim", *reqsim),
		cliutil.PositiveCount("-reqsim-every", *reqsimEvery),
		cliutil.OneOf("-reqsim-service", *reqsimService, "exp", "det", "hyperexp", "pareto"),
	); err != nil {
		logger.Error("bad flags", "error", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	var tracer *span.Tracer
	if *traceOut != "" || *traceSpans != "" {
		tracer = span.NewTracer()
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		srv, addr, err := telemetry.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			logger.Error("metrics server failed", "error", err)
			os.Exit(1)
		}
		metricsSrv = srv
		logger.Info("telemetry listening", "addr", "http://"+addr.String(),
			"endpoints", "/metrics /metrics.json /spans /debug/vars /debug/pprof")
	}
	// finish runs every end-of-run duty: snapshot telemetry, export the
	// recorded spans, and shut the metrics server down so its listener is
	// released before the process lingers (tests and library embedders
	// call the same sequence; os.Exit paths skip it deliberately).
	finish := func() {
		if *telemJSON != "" {
			if err := writeTelemetry(*telemJSON, reg); err != nil {
				logger.Error("telemetry snapshot failed", "error", err)
				os.Exit(1)
			}
		}
		if err := writeTraces(tracer, *traceOut, *traceSpans); err != nil {
			logger.Error("trace export failed", "error", err)
			os.Exit(1)
		}
		if metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := metricsSrv.Shutdown(ctx); err != nil {
				metricsSrv.Close()
			}
		}
	}

	if *bench != "" {
		// The benchmark's telemetry summary lands next to the report.
		if *telemJSON == "" {
			*telemJSON = strings.TrimSuffix(*bench, ".json") + ".telemetry.json"
		}
		if err := runBench(*bench, *workers, *gsdWorkers, reg, *scale); err != nil {
			logger.Error("bench failed", "error", err)
			os.Exit(1)
		}
		finish()
		if *benchAgainst != "" {
			if err := compareBench(*bench, *benchAgainst); err != nil {
				logger.Error("bench regression", "error", err)
				os.Exit(1)
			}
		}
		return
	}

	if *scale != "" {
		// Standalone -scale: run the fleet grid and print the throughput
		// lines without the full benchmark report.
		if _, err := runScale(*scale, *workers); err != nil {
			logger.Error("scale bench failed", "error", err)
			os.Exit(1)
		}
		finish()
		return
	}

	cfg := experiments.Config{
		Slots:     *slots,
		N:         *n,
		Beta:      *beta,
		Budget:    *budget,
		Seed:      *seed,
		Workers:   *workers,
		Out:       os.Stdout,
		Telemetry: reg,
		Tracer:    tracer,
	}

	if *stream != "" {
		rq := reqsimFlags{requests: *reqsim, service: *reqsimService, every: *reqsimEvery, bursty: *reqsimBursty}
		if err := runSingle(cfg, *policy, *vParam, *stream, rq, reg, tracer); err != nil {
			logger.Error("run failed", "error", err)
			os.Exit(1)
		}
		finish()
		return
	}

	runners := map[string]func() error{
		"fig1": func() error { _, err := experiments.Fig1(cfg); return err },
		"fig2": func() error {
			res, err := experiments.Fig2(cfg)
			if err != nil {
				return err
			}
			return writeFig2CSV(*csvDir, res)
		},
		"fig3": func() error {
			res, err := experiments.Fig3(cfg)
			if err != nil {
				return err
			}
			return writeFig3CSV(*csvDir, res)
		},
		"fig4": func() error { _, err := experiments.Fig4(cfg); return err },
		"fig5": func() error { _, err := experiments.Fig5(cfg); return err },
		"mix": func() error {
			shares, costs, err := experiments.PortfolioMixStudy(cfg)
			if err != nil {
				return err
			}
			fmt.Println("== Portfolio mix study (§5.2.4): off-site share vs normalized cost ==")
			for i := range shares {
				fmt.Printf("  offsite %.0f%% / RECs %.0f%%: %.4f\n",
					shares[i]*100, (1-shares[i])*100, costs[i])
			}
			return nil
		},
		"geo":       func() error { _, err := experiments.GeoStudy(cfg); return err },
		"predict":   func() error { _, _, err := experiments.PredictionErrorStudy(cfg); return err },
		"delay":     func() error { _, _, err := experiments.DelayValidation(cfg, 12); return err },
		"capping":   func() error { _, err := experiments.Capping(cfg); return err },
		"lookahead": func() error { _, _, err := experiments.LookaheadSweep(cfg, nil); return err },
		"reset":     func() error { _, err := experiments.FrameResetAblation(cfg); return err },
		"tariff":    func() error { _, err := experiments.TariffStudy(cfg); return err },
		"batch":     func() error { _, err := experiments.GreenBatch(cfg); return err },
	}
	order := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "mix",
		"capping", "lookahead", "reset", "tariff", "batch",
		"predict", "delay", "geo",
	}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				logger.Error("unknown experiment", "name", name,
					"choices", strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for _, name := range selected {
		fmt.Printf("\n################ %s ################\n", name)
		start := time.Now()
		if err := runners[name](); err != nil {
			logger.Error("experiment failed", "name", name, "error", err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	finish()
}

// writeFig2CSV exports the Fig. 2 sweep and the varying-V moving averages.
func writeFig2CSV(dir string, res experiments.Fig2Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sweep, err := os.Create(filepath.Join(dir, "fig2_sweep.csv"))
	if err != nil {
		return err
	}
	defer sweep.Close()
	t := report.NewTable("", "V", "avg_hourly_cost_usd", "avg_hourly_deficit_kwh", "grid_over_budget")
	for _, p := range res.Sweep {
		t.AddRow(p.V, p.AvgCostUSD, p.AvgDeficitKWh, p.BudgetUsed)
	}
	if err := t.WriteCSV(sweep); err != nil {
		return err
	}
	if len(res.MovingAvgCost) == 0 {
		return nil
	}
	series, err := os.Create(filepath.Join(dir, "fig2_varying_v.csv"))
	if err != nil {
		return err
	}
	defer series.Close()
	idx := make([]float64, len(res.MovingAvgCost))
	for i := range idx {
		idx[i] = float64(i)
	}
	return report.SeriesCSV(series, idx, "hour", map[string][]float64{
		"moving_avg_cost_usd":    res.MovingAvgCost,
		"moving_avg_deficit_kwh": res.MovingAvgDeficit,
	}, []string{"moving_avg_cost_usd", "moving_avg_deficit_kwh"})
}

// writeFig3CSV exports the Fig. 3 running averages.
func writeFig3CSV(dir string, res experiments.Fig3Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig3_running_averages.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	idx := make([]float64, len(res.RunningCostCoca))
	for i := range idx {
		idx[i] = float64(i)
	}
	return report.SeriesCSV(f, idx, "hour", map[string][]float64{
		"coca_cost":    res.RunningCostCoca,
		"php_cost":     res.RunningCostPHP,
		"coca_deficit": res.RunningDeficitCoca,
		"php_deficit":  res.RunningDeficitPHP,
	}, []string{"coca_cost", "php_cost", "coca_deficit", "php_deficit"})
}
