package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
)

// benchReport is the machine-readable output of -bench-json: per-slot engine
// throughput plus the wall-time speedup of the parallel experiment harness.
type benchReport struct {
	Cores      int `json:"cores"` // runtime.NumCPU on the benchmark host
	GOMAXPROCS int `json:"gomaxprocs"`
	Engine     struct {
		Policy    string  `json:"policy"`
		Slots     int     `json:"slots"`
		Runs      int     `json:"runs"`
		NsPerSlot float64 `json:"ns_per_slot"`
	} `json:"engine"`
	Sweep struct {
		Driver     string  `json:"driver"` // the experiment used as workload
		Points     int     `json:"points"` // independent runs fanned out
		SeqMs      float64 `json:"seq_ms"`
		ParMs      float64 `json:"par_ms"`
		ParWorkers int     `json:"par_workers"`
		Speedup    float64 `json:"speedup"`
	} `json:"sweep"`
}

// runBench measures the step-wise engine and the parallel sweep and writes
// the report as JSON to path. The sweep arms feed pool telemetry into reg
// (nil disables), which main dumps next to the report.
func runBench(path string, workers int, reg *telemetry.Registry) error {
	var rep benchReport
	rep.Cores = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if workers <= 0 {
		workers = rep.GOMAXPROCS
	}

	// Engine throughput: drive the full Observe→Decide→operate→Feedback
	// loop through sim.Run on a calibrated scenario with the cheapest
	// policy, so the measurement is dominated by the engine + Ledger path
	// rather than solver work.
	sc, _, err := simtest.Build(simtest.Options{Slots: 28 * 24, N: 2000})
	if err != nil {
		return err
	}
	const runs = 20
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := sim.Run(sc, baseline.NewUnaware(sc)); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rep.Engine.Policy = "unaware"
	rep.Engine.Slots = sc.Slots
	rep.Engine.Runs = runs
	rep.Engine.NsPerSlot = float64(elapsed.Nanoseconds()) / float64(runs*sc.Slots)

	// Sweep speedup: the Fig. 2 V-sweep fans its independent simulations
	// over the worker pool; time it sequential vs parallel. Identical
	// configs aside from Workers — the determinism tests guarantee the
	// outputs are byte-identical, so only wall time differs.
	benchCfg := func(w int) experiments.Config {
		return experiments.Config{Slots: 60 * 24, N: 2000, Seed: 2012, Workers: w, Out: io.Discard, Telemetry: reg}
	}
	seqStart := time.Now()
	seqRes, err := experiments.Fig2(benchCfg(1))
	if err != nil {
		return err
	}
	seqMs := time.Since(seqStart)
	parStart := time.Now()
	if _, err := experiments.Fig2(benchCfg(workers)); err != nil {
		return err
	}
	parMs := time.Since(parStart)
	rep.Sweep.Driver = "fig2"
	rep.Sweep.Points = len(seqRes.Sweep) + 1 // V grid + the unaware reference arm
	rep.Sweep.SeqMs = float64(seqMs.Microseconds()) / 1e3
	rep.Sweep.ParMs = float64(parMs.Microseconds()) / 1e3
	rep.Sweep.ParWorkers = workers
	if parMs > 0 {
		rep.Sweep.Speedup = float64(seqMs) / float64(parMs)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: engine %.0f ns/slot; sweep %.0f ms seq / %.0f ms on %d workers (%.2fx, %d cores) -> %s\n",
		rep.Engine.NsPerSlot, rep.Sweep.SeqMs, rep.Sweep.ParMs, workers, rep.Sweep.Speedup, rep.Cores, path)
	return nil
}
