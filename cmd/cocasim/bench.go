package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/dcmodel"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/gsd"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/reqsim"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchReport is the machine-readable output of -bench-json: per-slot engine
// throughput plus the wall-time speedup of the parallel experiment harness.
// The result hashes fingerprint the *computed numbers* (FNV-64a over the
// float bits), so a baseline comparison can separate "got slower" from
// "computes something different": wall times drift with the host, hashes
// must never change without an intentional arithmetic change.
type benchReport struct {
	Cores      int `json:"cores"` // runtime.NumCPU on the benchmark host
	GOMAXPROCS int `json:"gomaxprocs"`
	Engine     struct {
		Policy     string  `json:"policy"`
		Slots      int     `json:"slots"`
		Runs       int     `json:"runs"`
		NsPerSlot  float64 `json:"ns_per_slot"`
		ResultHash string  `json:"result_hash"` // over every slot record of one run
	} `json:"engine"`
	Sweep struct {
		Driver     string  `json:"driver"`     // the experiment used as workload
		Points     int     `json:"points"`     // independent runs fanned out
		GOMAXPROCS int     `json:"gomaxprocs"` // parallelism actually available to this section
		SeqMs      float64 `json:"seq_ms"`
		ParMs      float64 `json:"par_ms"`
		ParWorkers int     `json:"par_workers"`
		// Speedup is seq/par wall time; 0 when only one worker is available
		// (a "speedup" measured against itself is meaningless and its gate
		// is skipped — see compareBench).
		Speedup    float64 `json:"speedup"`
		ResultHash string  `json:"result_hash"` // over the sweep's result rows
	} `json:"sweep"`
	GSD struct {
		Groups         int     `json:"groups"`
		MaxIters       int     `json:"max_iters"`
		Solves         int     `json:"solves"`
		NsPerSolve     float64 `json:"ns_per_solve"`
		AllocsPerSolve float64 `json:"allocs_per_solve"`
		// Workers is the -gsd-workers speculative-evaluator count; when > 1
		// a parallel arm re-runs the same seeded solves with speculation on,
		// hard-checks the hash against the sequential arm, and records its
		// timing here. Workers <= 1 leaves the parallel fields at 0 and the
		// gate skips them (the sweep ParWorkers rule).
		Workers       int     `json:"workers"`
		ParNsPerSolve float64 `json:"par_ns_per_solve"`
		Speedup       float64 `json:"speedup"`
		ResultHash    string  `json:"result_hash"` // over every solve's full solution
	} `json:"gsd"`
	Geo struct {
		Sites           int     `json:"sites"`
		Steps           int     `json:"steps"`
		Workers         int     `json:"workers"`
		GOMAXPROCS      int     `json:"gomaxprocs"`
		NsPerStep       float64 `json:"ns_per_step"`
		P3SolvesPerStep float64 `json:"p3_solves_per_step"` // fresh solves (memoized path)
		MemoHitsPerStep float64 `json:"memo_hits_per_step"` // solves the memo table absorbed
		ResultHash      string  `json:"result_hash"`        // over every step's split + charges
	} `json:"geo"`
	// Reqsim is the request-level discrete-event engine (internal/reqsim):
	// a sharded M/G/1/PS replay at fleet shape. The hash fingerprints the
	// merged Result — counters and float aggregates — so any drift in the
	// event loop, the RNG draw order, or the shard merge shows up as a hash
	// change; ns/event and allocs/run track the steady-state hot path (the
	// engine's contract is zero allocations once slabs are warm).
	Reqsim struct {
		Requests       int64   `json:"requests"` // simulated requests per run
		Events         int64   `json:"events"`   // processed events per run
		Shards         int     `json:"shards"`
		Runs           int     `json:"runs"`
		NsPerEvent     float64 `json:"ns_per_event"`
		EventsPerSec   float64 `json:"events_per_sec"`
		RequestsPerSec float64 `json:"requests_per_sec"`
		AllocsPerRun   float64 `json:"allocs_per_run"`
		ResultHash     string  `json:"result_hash"` // over the merged sharded Result
	} `json:"reqsim"`
	// Scale is the -scale fleet grid (see scale.go); empty when -scale was
	// not given, and compareBench matches its cells by groups×sites.
	Scale []scaleCell `json:"scale,omitempty"`
}

// fnvHash folds float64s into an FNV-64a stream as their little-endian
// IEEE-754 bits — platform-independent for identical computed numbers.
type fnvHash struct{ h hash.Hash64 }

func newFnvHash() *fnvHash { return &fnvHash{h: fnv.New64a()} }

func (f *fnvHash) floats(vs ...float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		f.h.Write(buf[:])
	}
}

func (f *fnvHash) sum() string { return fmt.Sprintf("fnv1a:%016x", f.h.Sum64()) }

// engineResultHash fingerprints a run: every charged number of every slot.
func engineResultHash(res *sim.Result) string {
	h := newFnvHash()
	for _, r := range res.Records {
		h.floats(float64(r.Slot), float64(r.Speed), float64(r.Active),
			r.LambdaRPS, r.TotalUSD, r.ElectricityUSD, r.DelayUSD, r.SwitchUSD,
			r.GridKWh, r.EnergyKWh, r.DeficitKWh)
	}
	return h.sum()
}

// fig2ResultHash fingerprints the sweep rows the benchmark computed.
func fig2ResultHash(res experiments.Fig2Result) string {
	h := newFnvHash()
	for _, p := range res.Sweep {
		h.floats(p.V, p.AvgCostUSD, p.AvgDeficitKWh, p.BudgetUsed)
	}
	return h.sum()
}

// runBench measures the step-wise engine and the parallel sweep and writes
// the report as JSON to path. The sweep arms feed pool telemetry into reg
// (nil disables), which main dumps next to the report. A non-empty
// scaleSpec appends the fleet-scale grid section.
func runBench(path string, workers, gsdWorkers int, reg *telemetry.Registry, scaleSpec string) error {
	var rep benchReport
	rep.Cores = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if workers <= 0 {
		workers = rep.GOMAXPROCS
	}

	// Engine throughput: drive the full Observe→Decide→operate→Feedback
	// loop through sim.Run on a calibrated scenario with the cheapest
	// policy, so the measurement is dominated by the engine + Ledger path
	// rather than solver work.
	sc, _, err := simtest.Build(simtest.Options{Slots: 28 * 24, N: 2000})
	if err != nil {
		return err
	}
	const runs = 20
	var lastRes *sim.Result
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := sim.Run(sc, baseline.NewUnaware(sc))
		if err != nil {
			return err
		}
		lastRes = res
	}
	elapsed := time.Since(start)
	rep.Engine.Policy = "unaware"
	rep.Engine.Slots = sc.Slots
	rep.Engine.Runs = runs
	rep.Engine.NsPerSlot = float64(elapsed.Nanoseconds()) / float64(runs*sc.Slots)
	rep.Engine.ResultHash = engineResultHash(lastRes)

	// Sweep speedup: the Fig. 2 V-sweep fans its independent simulations
	// over the worker pool; time it sequential vs parallel. Identical
	// configs aside from Workers — the determinism tests guarantee the
	// outputs are byte-identical, so only wall time differs. On a
	// single-worker host the parallel arm would just re-run the sequential
	// one, so it is skipped and the speedup left at 0.
	benchCfg := func(w int) experiments.Config {
		return experiments.Config{Slots: 60 * 24, N: 2000, Seed: 2012, Workers: w, Out: io.Discard, Telemetry: reg}
	}
	seqStart := time.Now()
	seqRes, err := experiments.Fig2(benchCfg(1))
	if err != nil {
		return err
	}
	seqMs := time.Since(seqStart)
	rep.Sweep.Driver = "fig2"
	rep.Sweep.Points = len(seqRes.Sweep) + 1 // V grid + the unaware reference arm
	rep.Sweep.GOMAXPROCS = rep.GOMAXPROCS
	rep.Sweep.SeqMs = float64(seqMs.Microseconds()) / 1e3
	rep.Sweep.ParWorkers = workers
	if workers > 1 {
		parStart := time.Now()
		if _, err := experiments.Fig2(benchCfg(workers)); err != nil {
			return err
		}
		parMs := time.Since(parStart)
		rep.Sweep.ParMs = float64(parMs.Microseconds()) / 1e3
		if parMs > 0 {
			rep.Sweep.Speedup = float64(seqMs) / float64(parMs)
		}
	}
	rep.Sweep.ResultHash = fig2ResultHash(seqRes)

	// GSD solve rate: the per-slot inner loop on the paper's 200-group
	// cluster (the BenchmarkGSD500Iters200Groups workload), seeded runs so
	// the result hash pins the whole chain — any RNG-sequence or float drift
	// in the incremental hot path shows up here as a hash change, while
	// ns/allocs per solve track the cost of one full slot decision.
	cluster := dcmodel.PaperCluster(200)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05, Wd: 0.02,
	}
	const gsdSolves = 10
	gsdOpts := func(seed uint64, w int) gsd.Options {
		return gsd.Options{Delta: 1e8, MaxIters: 500, Seed: seed, Workers: w}
	}
	gsdArm := func(w int) (string, time.Duration, error) {
		h := newFnvHash()
		start := time.Now()
		for seed := 0; seed < gsdSolves; seed++ {
			res, err := gsd.Solve(prob, gsdOpts(uint64(seed), w))
			if err != nil {
				return "", 0, err
			}
			h.floats(res.Solution.Value, float64(res.Iters), float64(res.Accepted))
			for _, s := range res.Solution.Speeds {
				h.floats(float64(s))
			}
			h.floats(res.Solution.Load...)
		}
		return h.sum(), time.Since(start), nil
	}
	if _, err := gsd.Solve(prob, gsdOpts(0, 0)); err != nil { // warm-up
		return err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	seqHash, gsdElapsed, err := gsdArm(0)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&ms1)
	rep.GSD.Groups = len(cluster.Groups)
	rep.GSD.MaxIters = 500
	rep.GSD.Solves = gsdSolves
	rep.GSD.NsPerSolve = float64(gsdElapsed.Nanoseconds()) / gsdSolves
	rep.GSD.AllocsPerSolve = float64(ms1.Mallocs-ms0.Mallocs) / gsdSolves
	rep.GSD.ResultHash = seqHash
	rep.GSD.Workers = gsdWorkers
	if gsdWorkers > 1 {
		// Speculative arm: same seeds, parallel proposal evaluation. The
		// solver's contract is bit-identical results, so a hash mismatch is
		// a hard failure, not a regression to tolerate.
		parHash, parElapsed, err := gsdArm(gsdWorkers)
		if err != nil {
			return err
		}
		if parHash != seqHash {
			return fmt.Errorf("gsd speculative arm (%d workers) diverged from sequential: %s vs %s",
				gsdWorkers, parHash, seqHash)
		}
		rep.GSD.ParNsPerSolve = float64(parElapsed.Nanoseconds()) / gsdSolves
		if parElapsed > 0 {
			rep.GSD.Speedup = float64(gsdElapsed) / float64(parElapsed)
		}
	}

	// Geo split: the memoized greedy marginal allocation over a 16-site
	// federation, one Step+Settle per slot so the deficit queues feed back
	// into later splits. The hash covers every step's totals and per-site
	// decisions — the memo/parallel path must reproduce the naive split
	// bit-for-bit — and the per-step solve counters come from the geo
	// telemetry the same way the tests read them.
	const geoSites, geoSlots = 16, 96
	gsys, err := geo.NewSystem(benchGeoSites(geoSites, geoSlots), 0.005, geoSlots)
	if err != nil {
		return err
	}
	if err := gsys.SetWorkers(workers); err != nil {
		return err
	}
	geoReg := telemetry.NewRegistry()
	gsys.Instrument(telemetry.NewGeoMetrics(geoReg, "geo"))
	totalCap := gsys.TotalCapacityRPS()
	geoHash := newFnvHash()
	geoStart := time.Now()
	for t := 0; t < geoSlots; t++ {
		lambda := totalCap * (0.35 + 0.3*math.Sin(float64(t)/7))
		out, err := gsys.Step(lambda, 120)
		if err != nil {
			return err
		}
		geoHash.floats(out.TotalCostUSD, out.TotalGridKWh)
		for _, s := range out.Sites {
			geoHash.floats(s.LoadRPS, float64(s.Speed), float64(s.Active), s.CostUSD, s.GridKWh)
		}
		gsys.Settle(out)
	}
	geoElapsed := time.Since(geoStart)
	geoSnap := geoReg.Snapshot()
	rep.Geo.Sites = geoSites
	rep.Geo.Steps = geoSlots
	rep.Geo.Workers = workers
	rep.Geo.GOMAXPROCS = rep.GOMAXPROCS
	rep.Geo.NsPerStep = float64(geoElapsed.Nanoseconds()) / geoSlots
	rep.Geo.P3SolvesPerStep = geoSnap.Counters["geo.p3_solves"] / geoSlots
	rep.Geo.MemoHitsPerStep = geoSnap.Counters["geo.memo_hits"] / geoSlots
	rep.Geo.ResultHash = geoHash.sum()

	// Request-level engine: the sharded M/G/1/PS replay at ρ = 0.7 over 16
	// replica queues, the shape a slot replay fans out per site. Warm the
	// pool first so the timed runs exercise the zero-allocation steady
	// state, then hash the merged result — RunSharded is worker-invariant,
	// so the hash is a function of (Config, shards) alone and stays
	// host-independent.
	reqCfg := reqsim.Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: reqsim.ExponentialService(1),
		Horizon: 3000, Warmup: 100, Seed: 2012,
	}
	const reqShards, reqRuns = 16, 5
	reqPool := reqsim.NewPool(workers)
	warm, err := reqPool.RunSharded(reqCfg, reqShards)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&ms0)
	reqStart := time.Now()
	var reqLast reqsim.Result
	for i := 0; i < reqRuns; i++ {
		res, err := reqPool.RunSharded(reqCfg, reqShards)
		if err != nil {
			return err
		}
		reqLast = res
	}
	reqElapsed := time.Since(reqStart)
	runtime.ReadMemStats(&ms1)
	if reqLast != warm {
		return fmt.Errorf("reqsim runs diverged on identical config: %+v vs %+v", reqLast, warm)
	}
	reqHash := newFnvHash()
	reqHash.floats(float64(reqLast.Arrived), float64(reqLast.Admitted), float64(reqLast.Dropped),
		float64(reqLast.Completed), float64(reqLast.Events), float64(reqLast.MaxInSystem),
		reqLast.MeanJobs, reqLast.MeanRespSec, reqLast.UtilFraction,
		reqLast.P50Sec, reqLast.P95Sec, reqLast.P99Sec,
		reqLast.AreaJobsSec, reqLast.MeasuredSec, reqLast.BusySec, reqLast.RespSumSec)
	rep.Reqsim.Requests = int64(reqLast.Arrived)
	rep.Reqsim.Events = reqLast.Events
	rep.Reqsim.Shards = reqShards
	rep.Reqsim.Runs = reqRuns
	rep.Reqsim.NsPerEvent = float64(reqElapsed.Nanoseconds()) / float64(reqRuns*reqLast.Events)
	if sec := reqElapsed.Seconds(); sec > 0 {
		rep.Reqsim.EventsPerSec = float64(reqRuns*reqLast.Events) / sec
		rep.Reqsim.RequestsPerSec = float64(reqRuns*int64(reqLast.Arrived)) / sec
	}
	rep.Reqsim.AllocsPerRun = float64(ms1.Mallocs-ms0.Mallocs) / reqRuns
	rep.Reqsim.ResultHash = reqHash.sum()

	// Fleet-scale grid: whole-site GSD solves fanned over the worker pool,
	// parity-checked against the sequential path before timing.
	if scaleSpec != "" {
		cells, err := runScale(scaleSpec, workers)
		if err != nil {
			return err
		}
		rep.Scale = cells
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: engine %.0f ns/slot; sweep %.0f ms seq / %.0f ms on %d workers (%.2fx, %d cores); gsd %.1f ms/solve, %.0f allocs/solve; geo %.0f us/step, %.0f p3 solves + %.0f memo hits/step; reqsim %.1f ns/event, %.1fM req/s, %.0f allocs/run -> %s\n",
		rep.Engine.NsPerSlot, rep.Sweep.SeqMs, rep.Sweep.ParMs, workers, rep.Sweep.Speedup, rep.Cores,
		rep.GSD.NsPerSolve/1e6, rep.GSD.AllocsPerSolve,
		rep.Geo.NsPerStep/1e3, rep.Geo.P3SolvesPerStep, rep.Geo.MemoHitsPerStep,
		rep.Reqsim.NsPerEvent, rep.Reqsim.RequestsPerSec/1e6, rep.Reqsim.AllocsPerRun, path)
	return nil
}

// benchGeoSites builds the deterministic K-site federation the geo bench
// steps: staggered price levels and on-site renewables over Opteron fleets,
// matching the recipe of the golden parity tests in internal/geo.
func benchGeoSites(k, slots int) []geo.Site {
	sites := make([]geo.Site, k)
	for i := range sites {
		p := price.CAISOYear(uint64(i + 1))
		scale := 0.4 + 0.15*float64(i%5)
		for j := range p.Values {
			p.Values[j] *= scale
		}
		sites[i] = geo.Site{
			Name:   fmt.Sprintf("s%02d", i),
			Server: dcmodel.Opteron(),
			N:      500 + 100*(i%4),
			Gamma:  0.95,
			PUE:    1,
			Price:  p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", float64(i%3), slots),
				OffsiteKWh: trace.Constant("f", 20, slots),
				RECsKWh:    float64(slots) * 30,
				Alpha:      1,
			},
		}
	}
	return sites
}

// benchWallTolerance is the relative wall-time drift the regression gate
// tolerates: benchmark hosts are noisy, so only a slowdown beyond 25% of
// the baseline counts as a regression. Result hashes get no tolerance.
const benchWallTolerance = 0.25

// compareBench loads the fresh report at path and the baseline at basePath
// and fails on a hash mismatch (arithmetic changed) or a wall-time
// regression beyond the tolerance. Faster-than-baseline never fails.
func compareBench(path, basePath string) error {
	load := func(p string) (benchReport, error) {
		var r benchReport
		buf, err := os.ReadFile(p)
		if err != nil {
			return r, err
		}
		return r, json.Unmarshal(buf, &r)
	}
	fresh, err := load(path)
	if err != nil {
		return fmt.Errorf("fresh report: %w", err)
	}
	base, err := load(basePath)
	if err != nil {
		return fmt.Errorf("baseline report: %w", err)
	}
	var problems []string
	if base.Engine.ResultHash != "" && fresh.Engine.ResultHash != base.Engine.ResultHash {
		problems = append(problems, fmt.Sprintf(
			"engine result hash changed: %s -> %s (slot arithmetic differs from baseline)",
			base.Engine.ResultHash, fresh.Engine.ResultHash))
	}
	if base.Sweep.ResultHash != "" && fresh.Sweep.ResultHash != base.Sweep.ResultHash {
		problems = append(problems, fmt.Sprintf(
			"sweep result hash changed: %s -> %s (experiment output differs from baseline)",
			base.Sweep.ResultHash, fresh.Sweep.ResultHash))
	}
	if base.GSD.ResultHash != "" && fresh.GSD.ResultHash != base.GSD.ResultHash {
		problems = append(problems, fmt.Sprintf(
			"gsd result hash changed: %s -> %s (solver RNG sequence or arithmetic differs from baseline)",
			base.GSD.ResultHash, fresh.GSD.ResultHash))
	}
	if base.Geo.ResultHash != "" && fresh.Geo.ResultHash != base.Geo.ResultHash {
		problems = append(problems, fmt.Sprintf(
			"geo result hash changed: %s -> %s (split arithmetic differs from baseline)",
			base.Geo.ResultHash, fresh.Geo.ResultHash))
	}
	slower := func(name string, fresh, base float64) {
		if base > 0 && fresh > base*(1+benchWallTolerance) {
			problems = append(problems, fmt.Sprintf(
				"%s regressed %.0f%%: %.1f vs baseline %.1f (tolerance ±%.0f%%)",
				name, 100*(fresh/base-1), fresh, base, 100*benchWallTolerance))
		}
	}
	slower("engine ns/slot", fresh.Engine.NsPerSlot, base.Engine.NsPerSlot)
	slower("sweep seq_ms", fresh.Sweep.SeqMs, base.Sweep.SeqMs)
	// The parallel-arm gate only means something when both reports actually
	// fanned out: a single-worker run records par_ms=0 / speedup=0 (the arm
	// is skipped), so comparing against it would be noise.
	if fresh.Sweep.ParWorkers > 1 && base.Sweep.ParWorkers > 1 {
		slower("sweep par_ms", fresh.Sweep.ParMs, base.Sweep.ParMs)
	}
	slower("gsd ns/solve", fresh.GSD.NsPerSolve, base.GSD.NsPerSolve)
	slower("gsd allocs/solve", fresh.GSD.AllocsPerSolve, base.GSD.AllocsPerSolve)
	// Same rule as the sweep: the speculative-arm gate only fires when both
	// reports actually ran it (gsd-workers > 1 on both hosts).
	if fresh.GSD.Workers > 1 && base.GSD.Workers > 1 {
		slower("gsd par ns/solve", fresh.GSD.ParNsPerSolve, base.GSD.ParNsPerSolve)
	}
	slower("geo ns/step", fresh.Geo.NsPerStep, base.Geo.NsPerStep)
	slower("geo p3 solves/step", fresh.Geo.P3SolvesPerStep, base.Geo.P3SolvesPerStep)
	// Request-level engine: the hash is worker-invariant (function of the
	// config and shard count alone) so it gets the usual zero tolerance; a
	// baseline that predates the section has an empty hash and zero timings
	// and every gate skips.
	if base.Reqsim.ResultHash != "" && fresh.Reqsim.ResultHash != base.Reqsim.ResultHash {
		problems = append(problems, fmt.Sprintf(
			"reqsim result hash changed: %s -> %s (event loop, RNG order or shard merge differs from baseline)",
			base.Reqsim.ResultHash, fresh.Reqsim.ResultHash))
	}
	slower("reqsim ns/event", fresh.Reqsim.NsPerEvent, base.Reqsim.NsPerEvent)
	slower("reqsim allocs/run", fresh.Reqsim.AllocsPerRun, base.Reqsim.AllocsPerRun)
	// Scale cells are matched by their groups×sites grid point; a fresh cell
	// with no baseline counterpart (grid grew, or baseline predates -scale)
	// is informational only. Hashes are host-independent and get no
	// tolerance; throughput gets the usual wall-time band.
	baseCells := make(map[[2]int]scaleCell, len(base.Scale))
	for _, c := range base.Scale {
		baseCells[[2]int{c.Groups, c.Sites}] = c
	}
	for _, c := range fresh.Scale {
		bc, ok := baseCells[[2]int{c.Groups, c.Sites}]
		if !ok {
			continue
		}
		name := fmt.Sprintf("scale %dx%d", c.Groups, c.Sites)
		if bc.ResultHash != "" && c.ResultHash != bc.ResultHash {
			problems = append(problems, fmt.Sprintf(
				"%s result hash changed: %s -> %s (fleet step arithmetic differs from baseline)",
				name, bc.ResultHash, c.ResultHash))
		}
		slower(name+" ns/slot", c.NsPerSlot, bc.NsPerSlot)
		slower(name+" allocs/slot", c.AllocsPerSlot, bc.AllocsPerSlot)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "bench regression: %s\n", p)
		}
		return fmt.Errorf("bench gate: %d problem(s) vs %s", len(problems), basePath)
	}
	fmt.Printf("bench gate: ok vs %s (hashes match, wall times within ±%.0f%%)\n",
		basePath, 100*benchWallTolerance)
	return nil
}
