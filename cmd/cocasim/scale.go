package main

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/dcmodel"
	"repro/internal/geo"
	"repro/internal/gsd"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/trace"
)

// The -scale bench: step a geo.Fleet (per-site heterogeneous clusters, one
// sharded GSD chain each) over a groups×sites grid and report slots/sec
// throughput, allocations per slot and the FNV-1a result hash. Every cell
// first runs a sequential-vs-parallel parity check — the fleet's fan-out
// contract is bit-identical results at any worker count, and the bench
// refuses to report a throughput number for a cell that broke it.

// scaleCell is one grid point of the -scale section.
type scaleCell struct {
	Groups        int     `json:"groups"` // total server groups across the fleet
	Sites         int     `json:"sites"`
	Servers       int     `json:"servers"` // total servers across the fleet
	Slots         int     `json:"slots"`
	MaxIters      int     `json:"max_iters"` // GSD budget per site solve
	Workers       int     `json:"workers"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NsPerSlot     float64 `json:"ns_per_slot"`
	SlotsPerSec   float64 `json:"slots_per_sec"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	ResultHash    string  `json:"result_hash"` // over every slot's outcomes + final queues
}

// scale-bench fixed parameters: the grid spec only varies groups×sites, so
// cells are comparable across hosts and baselines.
const (
	scaleServersPerGroup = 10
	scaleSlots           = 4
	scaleParitySlots     = 2
	scaleMaxIters        = 60
	scaleSeed            = 2013
)

// parseScaleSpec parses "200x16,10000x256" into (groups, sites) pairs.
func parseScaleSpec(spec string) ([][2]int, error) {
	var grid [][2]int
	for _, cell := range strings.Split(spec, ",") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		parts := strings.SplitN(cell, "x", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("-scale cell %q: want GROUPSxSITES (e.g. 10000x256)", cell)
		}
		groups, err := strconv.Atoi(parts[0])
		if err != nil || groups <= 0 {
			return nil, fmt.Errorf("-scale cell %q: bad group count", cell)
		}
		sites, err := strconv.Atoi(parts[1])
		if err != nil || sites <= 0 {
			return nil, fmt.Errorf("-scale cell %q: bad site count", cell)
		}
		if groups < sites {
			return nil, fmt.Errorf("-scale cell %q: fewer groups than sites", cell)
		}
		grid = append(grid, [2]int{groups, sites})
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("-scale %q: no cells", spec)
	}
	return grid, nil
}

// scaleFleetSites builds the deterministic fleet the cell steps: sites
// heterogeneous clusters of groupsPerSite groups, staggered price levels
// and renewables — the recipe of the internal/geo fleet parity tests.
func scaleFleetSites(sites, groupsPerSite, slots int) []geo.FleetSite {
	out := make([]geo.FleetSite, sites)
	for i := range out {
		p := price.CAISOYear(uint64(i + 1))
		scale := 0.4 + 0.15*float64(i%5)
		for j := range p.Values {
			p.Values[j] *= scale
		}
		out[i] = geo.FleetSite{
			Name:    fmt.Sprintf("f%03d", i),
			Cluster: dcmodel.HeterogeneousCluster(groupsPerSite*scaleServersPerGroup, groupsPerSite),
			Price:   p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", float64(i%3), slots),
				OffsiteKWh: trace.Constant("f", 20, slots),
				RECsKWh:    float64(slots) * 30,
				Alpha:      1,
			},
		}
	}
	return out
}

// runFleetCell steps a fresh fleet for `slots` slots at the given worker
// count, folding every outcome and the final queue lengths into an FNV-1a
// digest, and returns the digest plus the wall time of the stepped loop.
func runFleetCell(groups, sites, slots, workers int) (string, time.Duration, error) {
	groupsPerSite := groups / sites
	f, err := geo.NewFleet(scaleFleetSites(sites, groupsPerSite, slots), 0.005, slots,
		gsd.Options{Delta: 1e4, MaxIters: scaleMaxIters, Seed: scaleSeed})
	if err != nil {
		return "", 0, err
	}
	if err := f.SetWorkers(workers); err != nil {
		return "", 0, err
	}
	h := newFnvHash()
	capRPS := f.TotalCapacityRPS()
	start := time.Now()
	for t := 0; t < slots; t++ {
		lambda := capRPS * (0.15 + 0.5*float64(t)/float64(slots))
		out, err := f.Step(lambda, 5e5)
		if err != nil {
			return "", 0, err
		}
		h.floats(out.TotalCostUSD, out.TotalGridKWh)
		for _, so := range out.Sites {
			h.floats(so.LoadRPS, float64(so.Active), so.PowerKW,
				so.GridKWh, so.DelayCost, so.CostUSD, so.Value)
		}
		f.Settle(out)
	}
	elapsed := time.Since(start)
	for i := 0; i < sites; i++ {
		h.floats(f.Queue(i))
	}
	return h.sum(), elapsed, nil
}

// runScale runs the scale grid: per cell a sequential-vs-parallel parity
// check, then the timed parallel run the reported numbers come from.
func runScale(spec string, workers int) ([]scaleCell, error) {
	grid, err := parseScaleSpec(spec)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := make([]scaleCell, 0, len(grid))
	for _, gk := range grid {
		groups, sites := gk[0], gk[1]
		// Parity gate: the parallel fleet step must be bit-identical to the
		// sequential reference on a short run before its timing counts.
		seqHash, _, err := runFleetCell(groups, sites, scaleParitySlots, 1)
		if err != nil {
			return nil, fmt.Errorf("scale %dx%d: %w", groups, sites, err)
		}
		parHash, _, err := runFleetCell(groups, sites, scaleParitySlots, workers)
		if err != nil {
			return nil, fmt.Errorf("scale %dx%d: %w", groups, sites, err)
		}
		if seqHash != parHash {
			return nil, fmt.Errorf("scale %dx%d: parallel fleet diverged from sequential: %s vs %s",
				groups, sites, parHash, seqHash)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		hash, elapsed, err := runFleetCell(groups, sites, scaleSlots, workers)
		if err != nil {
			return nil, fmt.Errorf("scale %dx%d: %w", groups, sites, err)
		}
		runtime.ReadMemStats(&ms1)
		groupsPerSite := groups / sites
		cell := scaleCell{
			Groups:        groupsPerSite * sites,
			Sites:         sites,
			Servers:       groupsPerSite * sites * scaleServersPerGroup,
			Slots:         scaleSlots,
			MaxIters:      scaleMaxIters,
			Workers:       workers,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			NsPerSlot:     float64(elapsed.Nanoseconds()) / scaleSlots,
			AllocsPerSlot: float64(ms1.Mallocs-ms0.Mallocs) / scaleSlots,
			ResultHash:    hash,
		}
		if cell.NsPerSlot > 0 {
			cell.SlotsPerSec = 1e9 / cell.NsPerSlot
		}
		cells = append(cells, cell)
		fmt.Printf("scale %dx%d (%d servers): %.2f slots/sec (%.1f ms/slot, %.0f allocs/slot, %d workers) %s\n",
			cell.Groups, cell.Sites, cell.Servers, cell.SlotsPerSec,
			cell.NsPerSlot/1e6, cell.AllocsPerSlot, cell.Workers, cell.ResultHash)
	}
	return cells, nil
}
