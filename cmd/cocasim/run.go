package main

// Single-run mode (-stream): drive one policy over the calibrated scenario
// with the full telemetry stack attached — per-slot NDJSON streaming as
// slots settle, run instruments in the shared registry, and the policy's
// carbon-deficit queue exported as a gauge.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lyapunov"
	"repro/internal/reqsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// reqsimFlags carries the -reqsim* flag block into runSingle: requests is
// the per-slot simulated request target (0 disables the replay entirely).
type reqsimFlags struct {
	requests int
	service  string
	every    int
	bursty   bool
}

// sampler maps the -reqsim-service choice (validated by cliutil.OneOf in
// main) to a unit-mean service distribution, so ρ per replayed server stays
// λ/x regardless of shape.
func (f reqsimFlags) sampler() reqsim.ServiceSampler {
	switch f.service {
	case "det":
		return reqsim.DeterministicService(1)
	case "hyperexp":
		return reqsim.HyperexpService(1, 0.15)
	case "pareto":
		return reqsim.ParetoService(1, 1.8)
	default:
		return reqsim.ExponentialService(1)
	}
}

// runSingle runs one policy over cfg's scenario, streaming every settled
// slot to streamPath ("-" for stdout), folding run metrics into reg and
// recording execution spans into tracer (nil: tracing off).
func runSingle(cfg experiments.Config, policyName string, v float64, streamPath string, rq reqsimFlags, reg *telemetry.Registry, tracer *span.Tracer) error {
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return err
	}

	rm := telemetry.NewRunMetrics(reg, "run")
	var policy sim.Policy
	switch policyName {
	case "coca":
		p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(v, 1, sc.Slots)))
		if err != nil {
			return err
		}
		p.InstrumentQueue(rm.Queue)
		policy = p
	case "unaware":
		policy = baseline.NewUnaware(sc)
	default:
		return fmt.Errorf("unknown policy %q (coca or unaware)", policyName)
	}

	observers := []sim.Observer{rm.Observer()}
	var replayer *reqsim.SlotReplayer
	if rq.requests > 0 {
		replayer = reqsim.NewSlotReplayer(sc.Server, reqsim.ReplayOptions{
			Requests: rq.requests,
			Service:  rq.sampler(),
			Bursty:   rq.bursty,
			Every:    rq.every,
			Seed:     cfg.Seed,
			Metrics:  telemetry.NewReqsimMetrics(reg, "reqsim"),
			Tracer:   tracer,
		})
		observers = append(observers, replayer.Observer())
	}
	if streamPath != "" {
		var w io.Writer = os.Stdout
		if streamPath != "-" {
			f, err := os.Create(streamPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		streamer := telemetry.NewSlotStreamer(w)
		defer streamer.Close()
		observers = append(observers, streamer.Observer())
	}

	res, err := sim.RunTraced(sc, policy, tracer, observers...)
	if err != nil {
		return err
	}
	s := sim.Summarize(sc, res)
	fmt.Printf("%s over %d slots: avg cost $%.2f/slot (elec $%.2f, delay $%.2f, switch $%.2f); grid %.0f kWh = %.1f%% of budget\n",
		res.Policy, s.Slots, s.AvgHourlyCostUSD, s.AvgElectricityUSD, s.AvgDelayUSD, s.AvgSwitchUSD,
		s.TotalGridKWh, 100*s.BudgetUsedFraction)
	if replayer != nil {
		fmt.Printf("reqsim (%s arrivals, %s service): %s\n",
			map[bool]string{false: "poisson", true: "bursty"}[rq.bursty],
			rq.sampler(), replayer.Report())
	}
	return nil
}

// writeTelemetry dumps the registry's final snapshot as JSON to path.
func writeTelemetry(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraces exports the recorded spans: Chrome trace-event JSON to
// chromePath and/or NDJSON to ndjsonPath (either may be empty). A nil
// tracer with no paths is a no-op; a path without a tracer cannot happen
// (main only constructs the tracer from the paths).
func writeTraces(tracer *span.Tracer, chromePath, ndjsonPath string) error {
	write := func(path string, export func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, tracer.WriteChromeTrace); err != nil {
		return err
	}
	if err := write(ndjsonPath, tracer.WriteNDJSON); err != nil {
		return err
	}
	if tracer != nil && tracer.Dropped() > 0 {
		logger.Warn("trace buffer cap reached", "dropped", tracer.Dropped())
	}
	return nil
}
