// Command gsdrun runs the GSD distributed optimizer on one P3 instance and
// reports its convergence, reproducing the paper's Fig. 4 snapshots on
// demand.
//
// Usage:
//
//	gsdrun -groups 200 -iters 500                  # paper's §5.2.3 setting
//	gsdrun -distributed -groups 24 -iters 400      # goroutine-per-group engine
//	gsdrun -delta 1e6 -load 0.4 -hetero
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/report"
)

func main() {
	var (
		groups      = flag.Int("groups", 200, "number of server groups")
		servers     = flag.Int("servers", 216000, "total servers")
		loadFrac    = flag.Float64("load", 0.4, "arrival rate as a fraction of top-speed capacity")
		delta       = flag.Float64("delta", 0, "temperature δ (0 = auto-scale to the objective)")
		iters       = flag.Int("iters", 500, "iterations")
		seed        = flag.Uint64("seed", 1, "seed")
		hetero      = flag.Bool("hetero", false, "use a mixed-generation fleet")
		distributed = flag.Bool("distributed", false, "use the goroutine-per-group message-passing engine")
		priceKWh    = flag.Float64("price", 0.05, "electricity price $/kWh")
		beta        = flag.Float64("beta", 0.02, "delay weight β")
		queue       = flag.Float64("q", 0, "carbon-deficit queue length (adds to the electricity weight)")
	)
	flag.Parse()

	var cluster *dcmodel.Cluster
	if *hetero {
		cluster = dcmodel.HeterogeneousCluster(*servers, *groups)
	} else {
		cluster = dcmodel.PaperCluster(*groups)
		if *servers != cluster.TotalServers() {
			per := *servers / *groups
			if per < 1 {
				per = 1
			}
			for i := range cluster.Groups {
				cluster.Groups[i].N = per
			}
		}
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: *loadFrac * cluster.MaxCapacityRPS(),
		We:        *priceKWh + *queue,
		Wd:        *beta,
		OnsiteKW:  0,
	}
	if err := prob.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	d := *delta
	if d == 0 {
		// Auto-scale: δ ≈ 10·g̃², so δ·Δ(1/g̃) is O(10·Δg̃/g̃), a responsive
		// but non-greedy acceptance.
		probe, err := gsd.Solve(prob, gsd.Options{Delta: 1e15, MaxIters: 50, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d = 10 * probe.Solution.Value * probe.Solution.Value
		fmt.Printf("auto δ = %.3g\n", d)
	}

	opts := gsd.Options{Delta: d, MaxIters: *iters, Seed: *seed, RecordHistory: true}
	start := time.Now()
	var (
		res gsd.Result
		err error
	)
	if *distributed {
		res, err = gsd.SolveDistributed(prob, opts)
	} else {
		res, err = gsd.Solve(prob, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("cluster: %d servers in %d groups; λ = %.0f req/s\n",
		cluster.TotalServers(), len(cluster.Groups), prob.LambdaRPS)
	fmt.Printf("%d iterations in %v (%.0f iters/s), %d accepted\n",
		res.Iters, elapsed.Round(time.Millisecond),
		float64(res.Iters)/elapsed.Seconds(), res.Accepted)
	fmt.Printf("objective: %.4f (initial %.4f, improvement %.2f%%)\n",
		res.Solution.Value, res.History[0],
		100*(res.History[0]-res.Solution.Value)/res.History[0])
	if err := report.Chart(os.Stdout, "incumbent objective", res.History, 72, 12); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Speed histogram of the final configuration.
	counts := map[int]int{}
	for _, k := range res.Solution.Speeds {
		counts[k]++
	}
	fmt.Println("final speed distribution (groups per level):")
	for k := 0; k <= 8; k++ {
		if c, ok := counts[k]; ok {
			fmt.Printf("  level %d: %d groups\n", k, c)
		}
	}
}
