// Command tracegen generates and inspects the synthetic traces that drive
// the simulation: workloads (FIU-like year, MSR-like week/year),
// renewables (solar, wind) and electricity prices.
//
// Usage:
//
//	tracegen -trace fiu -seed 2012 -out fiu.csv
//	tracegen -trace msr -stats
//	tracegen -trace price -hours 168
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		kind  = flag.String("trace", "fiu", "trace kind: fiu|msr|msrweek|solar|wind|price")
		seed  = flag.Uint64("seed", 2012, "generator seed")
		out   = flag.String("out", "", "write CSV to this file (default: summary to stdout)")
		hours = flag.Int("hours", 0, "truncate to this many hours (0 = full trace)")
		chart = flag.Bool("chart", true, "print an ASCII chart of the trace")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "fiu":
		tr = trace.FIUYear(*seed)
	case "msr":
		tr = trace.MSRYear(*seed, 0.4)
	case "msrweek":
		tr = trace.MSRWeek(*seed)
	case "solar":
		tr = renewable.SolarYear(*seed)
	case "wind":
		tr = renewable.WindYear(*seed)
	case "price":
		tr = price.CAISOYear(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown trace kind %q\n", *kind)
		os.Exit(2)
	}
	if *hours > 0 && *hours < tr.Len() {
		tr = tr.Slice(0, *hours)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d hourly samples of %s to %s\n", tr.Len(), tr.Name, *out)
		return
	}

	var s stats.Summary
	s.AddAll(tr.Values)
	fmt.Printf("trace %s: %d hours\n", tr.Name, tr.Len())
	fmt.Printf("  mean %.4f  std %.4f  min %.4f  max %.4f  p50 %.4f  p95 %.4f\n",
		s.Mean(), s.Std(), s.Min(), s.Max(),
		stats.Quantile(tr.Values, 0.5), stats.Quantile(tr.Values, 0.95))
	if *chart {
		if err := report.Chart(os.Stdout, tr.Name, tr.Values, 72, 12); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
