// Package price models the hourly real-time electricity market the data
// center participates in (§2.1, §5.1): the paper uses 2012 CAISO hourly
// prices for Mountain View, which we synthesize with the same qualitative
// structure — a two-peak diurnal shape (morning and evening ramps), a
// seasonal level shift (expensive summer afternoons), persistent lognormal
// noise, and the rare extreme price spikes characteristic of real-time
// markets. Prices are in $/kWh (CAISO's ≈ $30–60/MWh ≈ $0.03–0.06/kWh).
package price

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Model configures the synthetic market.
type Model struct {
	// BaseUSDPerKWh is the average price level. The default CAISOYear uses
	// 0.05 $/kWh ($50/MWh).
	BaseUSDPerKWh float64
	// SpikeProb is the per-hour probability of a price spike.
	SpikeProb float64
	// SpikeMax is the maximum spike multiplier.
	SpikeMax float64
	// FloorUSDPerKWh clips the price from below (real-time markets can go
	// negative; the paper's cost model assumes non-negative prices).
	FloorUSDPerKWh float64
}

// DefaultModel returns CAISO-like parameters.
func DefaultModel() Model {
	return Model{
		BaseUSDPerKWh:  0.05,
		SpikeProb:      0.002,
		SpikeMax:       4,
		FloorUSDPerKWh: 0.005,
	}
}

// Year synthesizes one year of hourly prices under the model.
func (m Model) Year(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	noise := &stats.AR1{Mean: 0, Phi: 0.9, Sigma: 0.05, Clamp: true, Lo: -0.6, Hi: 0.6}
	vals := make([]float64, trace.HoursPerYear)
	for h := range vals {
		day := h / 24
		hod := h % 24
		v := m.BaseUSDPerKWh * diurnalShape(hod) * seasonalShape(day)
		v *= math.Exp(noise.Next(rng))
		if rng.Bernoulli(m.SpikeProb) {
			v *= rng.Uniform(1.5, m.SpikeMax)
		}
		if v < m.FloorUSDPerKWh {
			v = m.FloorUSDPerKWh
		}
		vals[h] = v
	}
	return &trace.Trace{Name: "price-synth", Values: vals}
}

// diurnalShape is the normalized two-peak daily profile of real-time
// markets: a morning ramp around 08:00 and a stronger evening peak around
// 19:00, with a cheap overnight trough.
func diurnalShape(hod int) float64 {
	morning := 0.25 * gaussian(float64(hod), 8, 2.0)
	evening := 0.45 * gaussian(float64(hod), 19, 2.5)
	return 0.75 + morning + evening
}

// seasonalShape raises summer prices (air-conditioning demand peaks around
// day 200) by up to 25%.
func seasonalShape(day int) float64 {
	return 1 + 0.25*gaussian(float64(day), 200, 55)
}

func gaussian(x, center, width float64) float64 {
	z := (x - center) / width
	return math.Exp(-0.5 * z * z)
}

// CAISOYear synthesizes one year of hourly prices with the default model.
func CAISOYear(seed uint64) *trace.Trace {
	return DefaultModel().Year(seed)
}
