package price

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestCAISOYearBasics(t *testing.T) {
	p := CAISOYear(1)
	if p.Len() != trace.HoursPerYear {
		t.Fatalf("len = %d", p.Len())
	}
	var s stats.Summary
	for h, v := range p.Values {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("price[%d] = %v", h, v)
		}
		s.Add(v)
	}
	// Mean near the $0.05/kWh base (diurnal/seasonal shapes average above
	// 0.75 baseline but the lognormal noise is mean-one-ish).
	if s.Mean() < 0.02 || s.Mean() > 0.12 {
		t.Errorf("mean price = %v $/kWh, outside plausible CAISO band", s.Mean())
	}
}

func TestPriceFloor(t *testing.T) {
	m := DefaultModel()
	p := m.Year(3)
	for h, v := range p.Values {
		if v < m.FloorUSDPerKWh {
			t.Fatalf("price[%d] = %v below floor", h, v)
		}
	}
}

func TestPriceSpikesOccur(t *testing.T) {
	p := CAISOYear(5)
	var s stats.Summary
	s.AddAll(p.Values)
	if s.Max() < 2*s.Mean() {
		t.Errorf("no visible spikes: max %v vs mean %v", s.Max(), s.Mean())
	}
}

func TestPriceEveningPeak(t *testing.T) {
	p := CAISOYear(7)
	var evening, night stats.Summary
	for h, v := range p.Values {
		switch h % 24 {
		case 18, 19, 20:
			evening.Add(v)
		case 2, 3, 4:
			night.Add(v)
		}
	}
	if evening.Mean() <= night.Mean()*1.1 {
		t.Errorf("no evening peak: evening %v vs night %v", evening.Mean(), night.Mean())
	}
}

func TestPriceSummerPremium(t *testing.T) {
	p := CAISOYear(9)
	mean := func(dayLo, dayHi int) float64 {
		var s stats.Summary
		s.AddAll(p.Values[dayLo*24 : dayHi*24])
		return s.Mean()
	}
	summer := mean(180, 240)
	winter := mean(0, 60)
	if summer <= winter {
		t.Errorf("no summer premium: %v vs %v", summer, winter)
	}
}

func TestPriceDeterministic(t *testing.T) {
	a, b := CAISOYear(11), CAISOYear(11)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestCustomModel(t *testing.T) {
	m := Model{BaseUSDPerKWh: 0.10, SpikeProb: 0, SpikeMax: 1, FloorUSDPerKWh: 0.01}
	p := m.Year(13)
	var s stats.Summary
	s.AddAll(p.Values)
	// Doubling the base roughly doubles the mean.
	base := DefaultModel()
	base.SpikeProb = 0
	var sBase stats.Summary
	sBase.AddAll(base.Year(13).Values)
	ratio := s.Mean() / sBase.Mean()
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("base scaling ratio = %v, want ~2", ratio)
	}
}
