// Package workpool provides the bounded fan-out primitive every parallel
// hot path in this repository shares: run n index-addressed jobs on up to
// `workers` goroutines, each job writing only its own output slot, so the
// result is independent of goroutine scheduling. It is the pool discipline
// internal/experiments introduced and internal/geo adopted, extracted so the
// distributed load-balance rounds and the fleet step can reuse it.
package workpool

import (
	"sync"
	"sync/atomic"
)

// Fan runs job(0..n-1) on up to workers goroutines using an atomic work
// counter. workers <= 1 (or n <= 1) degrades to the plain sequential loop,
// which callers rely on as the bit-for-bit reference path: jobs must write
// only state owned by their index, so the parallel schedule changes timing
// but never results.
func Fan(workers, n int, job func(int)) {
	FanID(workers, n, func(_, i int) { job(i) })
}

// FanID is Fan with the worker identity exposed: job(worker, i) runs with
// worker in [0, effective workers), so callers can address per-worker
// scratch (e.g. a cloned solver instance per goroutine) without locking.
// The sequential path always reports worker 0.
func FanID(workers, n int, job func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
