package workpool

import (
	"sync/atomic"
	"testing"
)

// TestFanCoversEveryIndexOnce checks the pool contract at several worker
// counts, including the degenerate sequential ones: every index in [0, n)
// runs exactly once.
func TestFanCoversEveryIndexOnce(t *testing.T) {
	const n = 200
	for _, workers := range []int{0, 1, 2, 7, n, 3 * n} {
		counts := make([]atomic.Int64, n)
		Fan(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestFanSequentialOrder pins the workers <= 1 path as a plain ascending
// loop — the bit-for-bit reference schedule parallel callers compare
// against.
func TestFanSequentialOrder(t *testing.T) {
	var order []int
	Fan(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
}

// TestFanEmpty checks n = 0 is a no-op at any worker count.
func TestFanEmpty(t *testing.T) {
	ran := false
	Fan(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("job ran for n=0")
	}
}

// TestFanIndexAddressedResults is the schedule-independence property the
// repository's parallel hot paths rely on: jobs writing only their own
// slot produce identical results at any worker count.
func TestFanIndexAddressedResults(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	Fan(1, n, func(i int) { ref[i] = i * i })
	got := make([]int, n)
	Fan(8, n, func(i int) { got[i] = i * i })
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], ref[i])
		}
	}
}

// TestFanIDWorkerOwnership checks FanID's contract: every index runs
// exactly once, each reported worker id is in [0, effective workers), and
// a worker id is never live on two goroutines at once (per-worker scratch
// needs exclusive ownership).
func TestFanIDWorkerOwnership(t *testing.T) {
	const n = 300
	for _, workers := range []int{0, 1, 4, 32} {
		counts := make([]atomic.Int64, n)
		eff := workers
		if eff > n {
			eff = n
		}
		if eff < 1 {
			eff = 1
		}
		live := make([]atomic.Int64, eff)
		FanID(workers, n, func(w, i int) {
			if w < 0 || w >= eff {
				t.Errorf("worker id %d out of range [0,%d)", w, eff)
			}
			if live[w].Add(1) != 1 {
				t.Errorf("worker id %d live twice concurrently", w)
			}
			counts[i].Add(1)
			live[w].Add(-1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestFanIDSequentialWorkerZero pins the sequential path reporting worker 0
// for every job in ascending order.
func TestFanIDSequentialWorkerZero(t *testing.T) {
	var order []int
	FanID(1, 4, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential worker id = %d", w)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}
