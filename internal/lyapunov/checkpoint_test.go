package lyapunov

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/stats"
)

// TestQueueCheckpointRoundTripProperty is the satellite property test:
// drive a queue through a random charge/settle prefix, snapshot it through
// an actual JSON encode/decode, restore into a fresh queue, and require the
// two to produce bit-identical trajectories on a shared random suffix.
func TestQueueCheckpointRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		alpha := rng.Uniform(0.1, 3)
		z := rng.Uniform(0, 50)
		dq := NewDeficitQueue(alpha, z)

		prefix := rng.IntN(200)
		for i := 0; i < prefix; i++ {
			if rng.Float64() < 0.05 {
				dq.Reset()
				continue
			}
			dq.Update(rng.Uniform(0, 500), rng.Uniform(0, 200))
		}

		blob, err := json.Marshal(dq.Checkpoint())
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var ck QueueCheckpoint
		if err := json.Unmarshal(blob, &ck); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		restored := NewDeficitQueue(1, 0) // parameters overwritten by the restore
		if err := restored.RestoreFrom(ck); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if restored.Len() != dq.Len() {
			t.Fatalf("trial %d: restored length %v, want %v", trial, restored.Len(), dq.Len())
		}

		suffix := 1 + rng.IntN(200)
		for i := 0; i < suffix; i++ {
			if rng.Float64() < 0.05 {
				dq.Reset()
				restored.Reset()
				continue
			}
			grid, offsite := rng.Uniform(-10, 500), rng.Uniform(-10, 200)
			a, b := dq.Update(grid, offsite), restored.Update(grid, offsite)
			if a != b {
				t.Fatalf("trial %d: trajectories diverge at suffix step %d: %v vs %v (grid %v offsite %v)",
					trial, i, a, b, grid, offsite)
			}
		}
	}
}

func TestQueueCheckpointRejectsInvalid(t *testing.T) {
	valid := NewDeficitQueue(1.5, 2).Checkpoint()
	cases := map[string]func(*QueueCheckpoint){
		"version":    func(ck *QueueCheckpoint) { ck.Version = 99 },
		"alpha-zero": func(ck *QueueCheckpoint) { ck.Alpha = 0 },
		"alpha-nan":  func(ck *QueueCheckpoint) { ck.Alpha = math.NaN() },
		"z-negative": func(ck *QueueCheckpoint) { ck.Z = -1 },
		"q-negative": func(ck *QueueCheckpoint) { ck.Q = -0.5 },
		"q-inf":      func(ck *QueueCheckpoint) { ck.Q = math.Inf(1) },
	}
	for name, mutate := range cases {
		ck := valid
		mutate(&ck)
		dq := NewDeficitQueue(1, 0)
		if err := dq.RestoreFrom(ck); err == nil {
			t.Errorf("%s: RestoreFrom accepted an invalid checkpoint", name)
		}
	}
	// A valid snapshot must restore cleanly.
	dq := NewDeficitQueue(1, 0)
	if err := dq.RestoreFrom(valid); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if got := dq.Checkpoint(); got != valid {
		t.Fatalf("checkpoint after restore = %+v, want %+v", got, valid)
	}
}
