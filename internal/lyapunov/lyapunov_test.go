package lyapunov

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeficitQueueUpdate(t *testing.T) {
	dq := NewDeficitQueue(1, 2) // z = 2
	// q = [0 + 10 − 3 − 2]^+ = 5.
	if got := dq.Update(10, 3); got != 5 {
		t.Errorf("after first update q = %v, want 5", got)
	}
	// q = [5 + 1 − 10 − 2]^+ = 0.
	if got := dq.Update(1, 10); got != 0 {
		t.Errorf("queue went negative-ish: %v", got)
	}
	dq.Update(100, 0)
	dq.Reset()
	if dq.Len() != 0 {
		t.Errorf("Reset left q = %v", dq.Len())
	}
}

func TestDeficitQueueAlphaScalesOffsite(t *testing.T) {
	dq := NewDeficitQueue(0.5, 0)
	// q = [0 + 10 − 0.5·10 − 0]^+ = 5.
	if got := dq.Update(10, 10); got != 5 {
		t.Errorf("q = %v, want 5", got)
	}
}

func TestDeficitQueueClampsNegativeInputs(t *testing.T) {
	dq := NewDeficitQueue(1, 0)
	dq.Update(5, 0)
	if got := dq.Update(-3, -2); got != 5 {
		t.Errorf("negative inputs changed q to %v, want 5", got)
	}
}

func TestDeficitQueuePanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewDeficitQueue(0, 1) },
		func() { NewDeficitQueue(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestDeficitQueueNonNegativeProperty(t *testing.T) {
	// Under any sequence of updates the queue is non-negative and obeys the
	// one-step update identity exactly.
	f := func(seed uint64, ys, fs []float64) bool {
		dq := NewDeficitQueue(1, 1)
		prev := 0.0
		n := len(ys)
		if len(fs) < n {
			n = len(fs)
		}
		for i := 0; i < n; i++ {
			y := math.Abs(math.Mod(ys[i], 1000))
			ff := math.Abs(math.Mod(fs[i], 1000))
			if math.IsNaN(y) {
				y = 0
			}
			if math.IsNaN(ff) {
				ff = 0
			}
			got := dq.Update(y, ff)
			want := math.Max(0, prev+y-ff-1)
			if got < 0 || math.Abs(got-want) > 1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVScheduleBasics(t *testing.T) {
	s := VSchedule{T: 10, Vs: []float64{100, 200, 300}}
	if err := s.Validate(30); err != nil {
		t.Fatal(err)
	}
	if s.R() != 3 || s.Slots() != 30 {
		t.Errorf("R=%d Slots=%d", s.R(), s.Slots())
	}
	if s.V(0) != 100 || s.V(9) != 100 || s.V(10) != 200 || s.V(29) != 300 {
		t.Error("V(t) lookup wrong")
	}
	if !s.FrameStart(0) || !s.FrameStart(20) || s.FrameStart(5) {
		t.Error("FrameStart wrong")
	}
	if s.Frame(15) != 1 {
		t.Errorf("Frame(15) = %d", s.Frame(15))
	}
}

func TestVScheduleValidateErrors(t *testing.T) {
	cases := []struct {
		s     VSchedule
		slots int
	}{
		{VSchedule{T: 0, Vs: []float64{1}}, 10},
		{VSchedule{T: 10, Vs: nil}, 10},
		{VSchedule{T: 10, Vs: []float64{1}}, 20},
		{VSchedule{T: 10, Vs: []float64{0}}, 10},
		{VSchedule{T: 10, Vs: []float64{math.NaN()}}, 10},
	}
	for i, c := range cases {
		if err := c.s.Validate(c.slots); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConstantV(t *testing.T) {
	s := ConstantV(240, 4, 2190)
	if err := s.Validate(8760); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []int{0, 5000, 8759} {
		if s.V(tt) != 240 {
			t.Errorf("V(%d) = %v", tt, s.V(tt))
		}
	}
}

func TestBoundsConstants(t *testing.T) {
	b := Bounds{YMax: 10, ZMax: 6, RMax: 4}
	if got := b.B(); got != 50 {
		t.Errorf("B = %v, want 50", got)
	}
	if got := b.D(); got != 0.5*10*10 {
		t.Errorf("D = %v, want 50", got)
	}
	if got := b.C(1); got != b.B() {
		t.Errorf("C(1) = %v, want B", got)
	}
	if got := b.C(3); got != b.B()+2*b.D() {
		t.Errorf("C(3) = %v", got)
	}
}

func TestCostBound(t *testing.T) {
	b := Bounds{YMax: 1, ZMax: 1, RMax: 1}
	s := VSchedule{T: 2, Vs: []float64{10, 20}}
	opt := []float64{3, 5}
	// (3+5)/2 + C(2)/2 · (1/10 + 1/20).
	want := 4 + b.C(2)/2*(0.1+0.05)
	if got := CostBound(b, s, opt); math.Abs(got-want) > 1e-12 {
		t.Errorf("CostBound = %v, want %v", got, want)
	}
}

func TestDeficitBound(t *testing.T) {
	b := Bounds{YMax: 1, ZMax: 1, RMax: 1}
	s := VSchedule{T: 4, Vs: []float64{10, 10}}
	opt := []float64{3, 3}
	want := 2 * math.Sqrt(b.C(4)+10*(3-1)) / (2 * 2)
	if got := DeficitBound(b, s, opt, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("DeficitBound = %v, want %v", got, want)
	}
	// gMin above G* is clamped inside the sqrt, never NaN.
	if got := DeficitBound(b, s, opt, 1e9); math.IsNaN(got) {
		t.Error("DeficitBound NaN for large gMin")
	}
}
