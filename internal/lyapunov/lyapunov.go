// Package lyapunov provides the drift-plus-penalty machinery COCA is built
// on (§4, following Neely's stochastic network optimization): the virtual
// carbon-deficit queue of Eq. (17), per-frame resets with frame-varying
// control parameters V_r, and the Theorem 2 bound constants
// B, D and C(T) = B + D(T−1) together with the cost and deficit bounds of
// Eqs. (19)–(20).
package lyapunov

import (
	"errors"
	"fmt"
	"math"
)

// DeficitQueue is the virtual carbon-deficit queue q(t) of Eq. (17):
//
//	q(t+1) = [ q(t) + y(t) − α·f(t) − z ]^+ ,  y(t) = [p(t) − r(t)]^+ ,
//
// where z = α·Z/J is the per-slot REC allowance. Its length measures how
// far cumulative grid-electricity usage has run ahead of the renewable
// budget; COCA adds q(t) to the electricity weight, realizing the
// "if violate neutrality, then use less electricity" feedback. The zero
// value is an empty queue.
type DeficitQueue struct {
	q     float64
	alpha float64
	z     float64
}

// NewDeficitQueue returns a queue with capping aggressiveness alpha and
// per-slot REC allowance z (both from the portfolio); it panics if alpha
// is not positive or z is negative.
func NewDeficitQueue(alpha, recPerSlotKWh float64) *DeficitQueue {
	if alpha <= 0 {
		panic("lyapunov: alpha must be positive")
	}
	if recPerSlotKWh < 0 {
		panic("lyapunov: negative REC allowance")
	}
	return &DeficitQueue{alpha: alpha, z: recPerSlotKWh}
}

// Len returns the current queue length q(t).
func (dq *DeficitQueue) Len() float64 { return dq.q }

// Update applies Eq. (17) with this slot's realized grid usage y(t) (kWh)
// and off-site generation f(t) (kWh), returning the new length. Negative
// inputs are clamped to zero (y is a [·]^+ by construction; a negative f
// would be a data error).
func (dq *DeficitQueue) Update(gridKWh, offsiteKWh float64) float64 {
	if gridKWh < 0 {
		gridKWh = 0
	}
	if offsiteKWh < 0 {
		offsiteKWh = 0
	}
	dq.q = math.Max(0, dq.q+gridKWh-dq.alpha*offsiteKWh-dq.z)
	return dq.q
}

// Reset empties the queue (Algorithm 1 lines 2–4: performed at the start of
// every frame so V can be re-tuned without inheriting the previous frame's
// deficit).
func (dq *DeficitQueue) Reset() { dq.q = 0 }

// QueueCheckpointVersion is the current QueueCheckpoint schema version.
const QueueCheckpointVersion = 1

// QueueCheckpoint is the explicit, versioned snapshot of a DeficitQueue:
// the full queue state as a first-class value. It round-trips through JSON
// exactly (encoding/json renders float64 at shortest-round-trip precision),
// so a restored queue continues the Eq. (17) trajectory bit-for-bit.
type QueueCheckpoint struct {
	Version int     `json:"version"`
	Q       float64 `json:"q"`     // current length q(t), kWh
	Alpha   float64 `json:"alpha"` // capping aggressiveness α
	Z       float64 `json:"z"`     // per-slot REC allowance z, kWh
}

// Checkpoint snapshots the queue.
func (dq *DeficitQueue) Checkpoint() QueueCheckpoint {
	return QueueCheckpoint{Version: QueueCheckpointVersion, Q: dq.q, Alpha: dq.alpha, Z: dq.z}
}

// RestoreFrom replaces the queue's state with the snapshot, validating it
// the same way NewDeficitQueue validates fresh parameters.
func (dq *DeficitQueue) RestoreFrom(ck QueueCheckpoint) error {
	if ck.Version != QueueCheckpointVersion {
		return fmt.Errorf("lyapunov: queue checkpoint version %d, want %d", ck.Version, QueueCheckpointVersion)
	}
	if ck.Alpha <= 0 || math.IsNaN(ck.Alpha) {
		return fmt.Errorf("lyapunov: checkpoint alpha %v must be positive", ck.Alpha)
	}
	if ck.Z < 0 || math.IsNaN(ck.Z) {
		return fmt.Errorf("lyapunov: checkpoint REC allowance %v must be non-negative", ck.Z)
	}
	if ck.Q < 0 || math.IsNaN(ck.Q) || math.IsInf(ck.Q, 0) {
		return fmt.Errorf("lyapunov: checkpoint queue length %v must be finite and non-negative", ck.Q)
	}
	dq.q, dq.alpha, dq.z = ck.Q, ck.Alpha, ck.Z
	return nil
}

// VSchedule fixes the frame structure of Algorithm 1: the horizon J is
// split into R frames of T slots (J = R·T) and frame r uses the cost-carbon
// parameter V_r.
type VSchedule struct {
	T  int       // slots per frame
	Vs []float64 // V_r for r = 0..R−1
}

// ConstantV returns a schedule with a single V over R frames of T slots.
func ConstantV(v float64, frames, t int) VSchedule {
	vs := make([]float64, frames)
	for i := range vs {
		vs[i] = v
	}
	return VSchedule{T: t, Vs: vs}
}

// Validate reports whether the schedule covers exactly `slots` slots.
func (s VSchedule) Validate(slots int) error {
	if s.T <= 0 {
		return fmt.Errorf("lyapunov: T = %d must be positive", s.T)
	}
	if len(s.Vs) == 0 {
		return errors.New("lyapunov: empty V schedule")
	}
	if s.T*len(s.Vs) != slots {
		return fmt.Errorf("lyapunov: schedule covers %d slots, horizon is %d", s.T*len(s.Vs), slots)
	}
	for r, v := range s.Vs {
		if v <= 0 || math.IsNaN(v) {
			return fmt.Errorf("lyapunov: V_%d = %v must be positive", r, v)
		}
	}
	return nil
}

// R returns the number of frames.
func (s VSchedule) R() int { return len(s.Vs) }

// Slots returns the covered horizon R·T.
func (s VSchedule) Slots() int { return s.T * len(s.Vs) }

// V returns the control parameter in force at slot t.
func (s VSchedule) V(t int) float64 { return s.Vs[t/s.T] }

// FrameStart reports whether slot t begins a new frame (t = r·T), where the
// deficit queue is reset.
func (s VSchedule) FrameStart(t int) bool { return t%s.T == 0 }

// Frame returns the frame index of slot t.
func (s VSchedule) Frame(t int) int { return t / s.T }

// Bounds carries the environment extremes the Theorem 2 constants are built
// from; all in kWh per slot.
type Bounds struct {
	YMax float64 // max possible grid draw [p − r]^+ per slot (≈ peak facility power)
	ZMax float64 // max of α·f(t) + z per slot
	RMax float64 // max on-site supply r(t) per slot
}

// B returns the drift constant of the proof of Theorem 2:
// B ≥ ½·(y(t) − z(t))² for all t, satisfied by ½·max(YMax, ZMax)².
func (b Bounds) B() float64 {
	m := math.Max(b.YMax, b.ZMax)
	return 0.5 * m * m
}

// D returns the frame-coupling constant: D ≥ ½·q_diff·max{y(t), r(t)} with
// q_diff = max{y(t), z(t)}.
func (b Bounds) D() float64 {
	qdiff := math.Max(b.YMax, b.ZMax)
	return 0.5 * qdiff * math.Max(b.YMax, b.RMax)
}

// C returns C(T) = B + D·(T−1).
func (b Bounds) C(t int) float64 {
	return b.B() + b.D()*float64(t-1)
}

// CostBound evaluates the right side of Theorem 2(b), Eq. (20): the bound
// on COCA's average cost given the per-frame optima G_r* of the T-step
// lookahead benchmark.
func CostBound(b Bounds, s VSchedule, frameOptima []float64) float64 {
	r := float64(s.R())
	var optSum, invVSum float64
	for i, g := range frameOptima {
		optSum += g
		invVSum += 1 / s.Vs[i]
	}
	return optSum/r + b.C(s.T)/r*invVSum
}

// DeficitBound evaluates the "fudge factor" of Theorem 2(a), Eq. (19): the
// bound on COCA's average per-slot budget overrun, given the per-frame
// optima G_r* and the global per-slot minimum cost gMin.
func DeficitBound(b Bounds, s VSchedule, frameOptima []float64, gMin float64) float64 {
	r := float64(s.R())
	var sum float64
	for i, g := range frameOptima {
		sum += math.Sqrt(math.Max(0, b.C(s.T)+s.Vs[i]*(g-gMin)))
	}
	return sum / (r * math.Sqrt(float64(s.T)))
}
