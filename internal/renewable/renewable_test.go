package renewable

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestSolarYearBasics(t *testing.T) {
	s := SolarYear(1)
	if s.Len() != trace.HoursPerYear {
		t.Fatalf("len = %d", s.Len())
	}
	if math.Abs(s.Max()-1) > 1e-12 {
		t.Errorf("max = %v", s.Max())
	}
	for h, v := range s.Values {
		if v < 0 || v > 1 {
			t.Fatalf("value[%d] = %v out of [0,1]", h, v)
		}
	}
}

func TestSolarZeroAtNight(t *testing.T) {
	s := SolarYear(2)
	for day := 0; day < 365; day++ {
		if v := s.Values[day*24+0]; v != 0 { // midnight
			t.Fatalf("day %d midnight output %v", day, v)
		}
		if v := s.Values[day*24+23]; v != 0 { // 11 pm
			t.Fatalf("day %d 23:00 output %v", day, v)
		}
	}
}

func TestSolarPeaksMidday(t *testing.T) {
	s := SolarYear(3)
	var noon, morning stats.Summary
	for day := 0; day < 365; day++ {
		noon.Add(s.Values[day*24+12])
		morning.Add(s.Values[day*24+8])
	}
	if noon.Mean() <= morning.Mean() {
		t.Errorf("noon %v not above morning %v", noon.Mean(), morning.Mean())
	}
}

func TestSolarSeasonal(t *testing.T) {
	s := SolarYear(4)
	energy := func(dayLo, dayHi int) float64 {
		return stats.Sum(s.Values[dayLo*24 : dayHi*24])
	}
	summer := energy(152, 244) // Jun–Aug
	winter := energy(0, 60)    // Jan–Feb
	// Same number of days compared.
	if summer*float64(60) <= winter*float64(92)*1.1 {
		t.Errorf("summer energy not clearly above winter: %v vs %v (per-day)",
			summer/92, winter/60)
	}
}

func TestWindYearBasics(t *testing.T) {
	w := WindYear(1)
	if w.Len() != trace.HoursPerYear {
		t.Fatalf("len = %d", w.Len())
	}
	var zero, rated int
	for h, v := range w.Values {
		if v < 0 || v > 1 {
			t.Fatalf("value[%d] = %v", h, v)
		}
		if v == 0 {
			zero++
		}
		if v == 1 {
			rated++
		}
	}
	// Intermittency: both calms and rated-output hours must occur.
	if zero == 0 {
		t.Error("wind never calm — not intermittent")
	}
	if rated == 0 {
		t.Error("wind never at rated output")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range map[string]func(uint64) *trace.Trace{
		"solar": SolarYear, "wind": WindYear,
	} {
		a, b := gen(9), gen(9)
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("%s: divergence at %d", name, i)
			}
		}
	}
}

func TestBlend(t *testing.T) {
	a := trace.Constant("a", 1, 10)
	b := trace.Constant("b", 0, 10)
	m := Blend([]*trace.Trace{a, b}, []float64{3, 1})
	// Before normalization the blend is 0.75 everywhere; after, 1.
	for _, v := range m.Values {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("blend value %v", v)
		}
	}
}

func TestBlendPanics(t *testing.T) {
	a := trace.Constant("a", 1, 10)
	short := trace.Constant("s", 1, 5)
	for _, bad := range []func(){
		func() { Blend(nil, nil) },
		func() { Blend([]*trace.Trace{a}, []float64{1, 2}) },
		func() { Blend([]*trace.Trace{a, short}, []float64{1, 1}) },
		func() { Blend([]*trace.Trace{a}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestPortfolioBudgetMath(t *testing.T) {
	p := &Portfolio{
		OnsiteKW:   trace.Constant("r", 2, 100),
		OffsiteKWh: trace.Constant("f", 3, 100),
		RECsKWh:    50,
		Alpha:      0.9,
	}
	if err := p.Validate(100); err != nil {
		t.Fatal(err)
	}
	if got := p.TotalOffsiteKWh(100); math.Abs(got-300) > 1e-9 {
		t.Errorf("TotalOffsite = %v", got)
	}
	if got := p.BudgetKWh(100); math.Abs(got-0.9*350) > 1e-9 {
		t.Errorf("Budget = %v, want %v", got, 0.9*350)
	}
	if got := p.RECPerSlotKWh(100); math.Abs(got-0.9*0.5) > 1e-12 {
		t.Errorf("z = %v, want %v", got, 0.45)
	}
}

func TestPortfolioValidateErrors(t *testing.T) {
	good := &Portfolio{
		OnsiteKW:   trace.Constant("r", 1, 10),
		OffsiteKWh: trace.Constant("f", 1, 10),
		RECsKWh:    1, Alpha: 1,
	}
	cases := []struct {
		name   string
		mutate func(*Portfolio)
	}{
		{"nil onsite", func(p *Portfolio) { p.OnsiteKW = nil }},
		{"nil offsite", func(p *Portfolio) { p.OffsiteKWh = nil }},
		{"short trace", func(p *Portfolio) { p.OnsiteKW = trace.Constant("r", 1, 5) }},
		{"negative RECs", func(p *Portfolio) { p.RECsKWh = -1 }},
		{"zero alpha", func(p *Portfolio) { p.Alpha = 0 }},
	}
	for _, tc := range cases {
		p := *good
		tc.mutate(&p)
		if err := p.Validate(10); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewPaperPortfolioCalibration(t *testing.T) {
	const slots = trace.HoursPerYear
	const reference = 1.55e8 // kWh: the paper's carbon-unaware yearly usage
	p := NewPaperPortfolio(7, slots, reference, 0.20, 0.92, 0.40)
	if err := p.Validate(slots); err != nil {
		t.Fatal(err)
	}
	onsite := stats.Sum(p.OnsiteKW.Values[:slots])
	if math.Abs(onsite-0.20*reference) > 1e-3*reference {
		t.Errorf("onsite total = %v, want %v", onsite, 0.20*reference)
	}
	budget := p.BudgetKWh(slots)
	if math.Abs(budget-0.92*reference) > 1e-3*reference {
		t.Errorf("budget = %v, want %v", budget, 0.92*reference)
	}
	offsite := p.TotalOffsiteKWh(slots)
	if math.Abs(offsite-0.40*0.92*reference) > 1e-3*reference {
		t.Errorf("offsite = %v, want 40%% of budget", offsite)
	}
	if math.Abs(p.RECsKWh-0.60*0.92*reference) > 1e-3*reference {
		t.Errorf("RECs = %v, want 60%% of budget", p.RECsKWh)
	}
}

func TestScaleToTotal(t *testing.T) {
	tr := trace.Constant("x", 2, 10)
	ScaleToTotal(tr, 10, 100)
	if got := stats.Sum(tr.Values); math.Abs(got-100) > 1e-9 {
		t.Errorf("sum = %v", got)
	}
	zero := trace.Constant("z", 0, 10)
	ScaleToTotal(zero, 10, 100) // must not divide by zero
	if stats.Sum(zero.Values) != 0 {
		t.Error("zero trace should be unchanged")
	}
}
