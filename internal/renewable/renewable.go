// Package renewable models the three renewable-energy sources of the
// paper's §2.2: on-site generation r(t) (solar panels and wind turbines,
// weather-driven and intermittent), off-site generation f(t) purchased
// through power purchasing agreements (PPAs), and RECs — a fixed tradable
// credit amount Z bought before the budgeting period. The paper drives its
// simulation from 2012 CAISO data for Mountain View/California and then
// rescales it (on-site ≈ 20% of consumption; budget = 92% of the
// carbon-unaware usage, split 40% off-site / 60% RECs); we synthesize
// hourly series with the same intermittency structure and provide the same
// rescaling helpers.
package renewable

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// SolarYear returns one year of normalized (peak 1) solar output: a
// clear-sky bell between seasonal sunrise and sunset, modulated by an AR(1)
// cloud-cover process.
func SolarYear(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	cloud := &stats.AR1{Mean: 0.75, Phi: 0.92, Sigma: 0.08, Clamp: true, Lo: 0.1, Hi: 1}
	vals := make([]float64, trace.HoursPerYear)
	for h := range vals {
		day := h / 24
		hod := float64(h % 24)
		// Day length peaks near the summer solstice (day 172).
		daylight := 12 + 2.5*math.Cos(2*math.Pi*float64(day-172)/365)
		sunrise := 12 - daylight/2
		sunset := 12 + daylight/2
		c := cloud.Next(rng)
		if hod < sunrise || hod > sunset {
			continue
		}
		elevation := math.Sin(math.Pi * (hod - sunrise) / daylight)
		// Seasonal irradiance strength: stronger sun in summer.
		strength := 0.8 + 0.2*math.Cos(2*math.Pi*float64(day-172)/365)
		vals[h] = elevation * strength * c
	}
	t := &trace.Trace{Name: "solar-synth", Values: vals}
	stats.Normalize(t.Values)
	return t
}

// WindYear returns one year of normalized (peak 1) wind-farm output: an
// AR(1) wind-speed process with a windier winter/spring season, pushed
// through a standard cubic turbine power curve with cut-in, rated and
// cut-out speeds.
func WindYear(seed uint64) *trace.Trace {
	rng := stats.NewRNG(seed)
	speed := &stats.AR1{Mean: 7, Phi: 0.95, Sigma: 0.9, Clamp: true, Lo: 0, Hi: 30}
	const (
		cutIn  = 3.0
		rated  = 12.0
		cutOut = 25.0
	)
	vals := make([]float64, trace.HoursPerYear)
	for h := range vals {
		day := h / 24
		// Seasonal mean shift: windier around late winter (day 60).
		speed.Mean = 7 + 1.5*math.Cos(2*math.Pi*float64(day-60)/365)
		v := speed.Next(rng)
		switch {
		case v < cutIn || v > cutOut:
			vals[h] = 0
		case v >= rated:
			vals[h] = 1
		default:
			f := (v - cutIn) / (rated - cutIn)
			vals[h] = f * f * f
		}
	}
	t := &trace.Trace{Name: "wind-synth", Values: vals}
	stats.Normalize(t.Values)
	return t
}

// Blend mixes normalized traces with the given weights (renormalized to sum
// 1) and returns a trace normalized to peak 1. It panics on mismatched
// lengths or empty input.
func Blend(traces []*trace.Trace, weights []float64) *trace.Trace {
	if len(traces) == 0 || len(traces) != len(weights) {
		panic("renewable: Blend needs matching non-empty traces and weights")
	}
	n := traces[0].Len()
	var wsum float64
	for i, tr := range traces {
		if tr.Len() != n {
			panic("renewable: Blend length mismatch")
		}
		wsum += weights[i]
	}
	if wsum <= 0 {
		panic("renewable: Blend needs positive total weight")
	}
	vals := make([]float64, n)
	for h := 0; h < n; h++ {
		for i, tr := range traces {
			vals[h] += weights[i] / wsum * tr.Values[h]
		}
	}
	out := &trace.Trace{Name: "blend", Values: vals}
	stats.Normalize(out.Values)
	return out
}

// Portfolio is a data center's renewable position for one budgeting period:
// hourly on-site supply (kW), hourly off-site PPA generation (kWh per slot),
// the REC purchase Z (kWh-equivalent), and the capping aggressiveness α of
// Eq. (10).
type Portfolio struct {
	OnsiteKW   *trace.Trace // r(t)
	OffsiteKWh *trace.Trace // f(t)
	RECsKWh    float64      // Z
	Alpha      float64      // α
}

// Clone returns a shallow copy of the portfolio: the scalar knobs
// (RECsKWh, Alpha) are independent while the generation traces — read-only
// in every consumer — stay shared. Experiment workers that vary portfolio
// scalars concurrently clone first.
func (p *Portfolio) Clone() *Portfolio {
	out := *p
	return &out
}

// Validate reports whether the portfolio is well formed for a horizon of
// the given number of slots.
func (p *Portfolio) Validate(slots int) error {
	if p.OnsiteKW == nil || p.OffsiteKWh == nil {
		return fmt.Errorf("renewable: portfolio missing traces")
	}
	if p.OnsiteKW.Len() < slots || p.OffsiteKWh.Len() < slots {
		return fmt.Errorf("renewable: traces shorter than horizon %d", slots)
	}
	if p.RECsKWh < 0 {
		return fmt.Errorf("renewable: negative RECs %v", p.RECsKWh)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("renewable: alpha %v must be positive", p.Alpha)
	}
	return nil
}

// TotalOffsiteKWh returns Σ_t f(t) over the first `slots` hours.
func (p *Portfolio) TotalOffsiteKWh(slots int) float64 {
	return stats.Sum(p.OffsiteKWh.Values[:slots])
}

// BudgetKWh returns the carbon budget α·(Σ f + Z) of Eq. (10)'s right side
// multiplied by J: the total grid energy the data center may draw over the
// horizon while staying carbon neutral.
func (p *Portfolio) BudgetKWh(slots int) float64 {
	return p.Alpha * (p.TotalOffsiteKWh(slots) + p.RECsKWh)
}

// RECPerSlotKWh returns z = α·Z/J, the scaled per-slot REC allowance used in
// the carbon-deficit queue update Eq. (17).
func (p *Portfolio) RECPerSlotKWh(slots int) float64 {
	return p.Alpha * p.RECsKWh / float64(slots)
}

// NewPaperPortfolio builds the §5.1 configuration around a measured
// reference consumption (in kWh over the horizon, normally the
// carbon-unaware algorithm's yearly usage):
//
//   - on-site solar+wind scaled so its total equals onsiteFrac of the
//     reference (the paper uses 0.20);
//   - a total budget of budgetFrac × reference (the paper's default 0.92),
//     split offsiteShare into off-site PPA energy (0.40) with the remainder
//     purchased as RECs (0.60);
//   - α = 1 (budget sizing carries the aggressiveness).
func NewPaperPortfolio(seed uint64, slots int, referenceKWh, onsiteFrac, budgetFrac, offsiteShare float64) *Portfolio {
	onsite := Blend(
		[]*trace.Trace{SolarYear(seed), WindYear(seed + 1)},
		[]float64{0.6, 0.4},
	)
	ScaleToTotal(onsite, slots, onsiteFrac*referenceKWh)
	onsite.Name = "onsite"

	offsite := Blend(
		[]*trace.Trace{SolarYear(seed + 2), WindYear(seed + 3)},
		[]float64{0.5, 0.5},
	)
	budget := budgetFrac * referenceKWh
	ScaleToTotal(offsite, slots, offsiteShare*budget)
	offsite.Name = "offsite"

	return &Portfolio{
		OnsiteKW:   onsite,
		OffsiteKWh: offsite,
		RECsKWh:    (1 - offsiteShare) * budget,
		Alpha:      1,
	}
}

// ScaleToTotal rescales tr in place so that its first `slots` values sum to
// total. A trace summing to zero is left unchanged.
func ScaleToTotal(tr *trace.Trace, slots int, total float64) {
	cur := stats.Sum(tr.Values[:slots])
	if cur <= 0 {
		return
	}
	stats.Scale(tr.Values, total/cur)
}
