package cliutil

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, ok := range []int{0, 1, 64} {
		if err := Workers(ok); err != nil {
			t.Errorf("Workers(%d) = %v", ok, err)
		}
	}
	err := Workers(-4)
	if err == nil {
		t.Fatal("Workers(-4) accepted; it used to silently mean all cores")
	}
	if !strings.Contains(err.Error(), "-workers") || !strings.Contains(err.Error(), "-4") {
		t.Errorf("error %q does not name the flag and value", err)
	}
}

func TestCounts(t *testing.T) {
	if err := NonNegativeCount("-slots", 0); err != nil {
		t.Errorf("zero sentinel rejected: %v", err)
	}
	if err := NonNegativeCount("-slots", -24); err == nil {
		t.Error("negative slot count accepted")
	}
	if err := PositiveCount("-checkpoint-every", 0); err == nil {
		t.Error("zero accepted where no sentinel exists")
	}
	if err := PositiveCount("-frames", 13); err != nil {
		t.Errorf("PositiveCount(13) = %v", err)
	}
}

func TestFloats(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := PositiveFloat("-v", bad); err == nil {
			t.Errorf("PositiveFloat(%v) accepted", bad)
		}
	}
	if err := PositiveFloat("-v", 240); err != nil {
		t.Errorf("PositiveFloat(240) = %v", err)
	}
	if err := NonNegativeFloat("-beta", 0); err != nil {
		t.Errorf("NonNegativeFloat(0) = %v", err)
	}
	for _, bad := range []float64{-0.1, math.NaN(), math.Inf(-1)} {
		if err := NonNegativeFloat("-beta", bad); err == nil {
			t.Errorf("NonNegativeFloat(%v) accepted", bad)
		}
	}
}

func TestOneOf(t *testing.T) {
	for _, ok := range []string{"exp", "pareto"} {
		if err := OneOf("-reqsim-service", ok, "exp", "det", "hyperexp", "pareto"); err != nil {
			t.Errorf("OneOf(%q) = %v", ok, err)
		}
	}
	err := OneOf("-reqsim-service", "gaussian", "exp", "det", "hyperexp", "pareto")
	if err == nil {
		t.Fatal("OneOf accepted a value outside the choice list")
	}
	for _, want := range []string{"-reqsim-service", "gaussian", "exp|det|hyperexp|pareto"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil, nil); err != nil {
		t.Errorf("FirstError(nil, nil) = %v", err)
	}
	want := errors.New("boom")
	if got := FirstError(nil, want, errors.New("later")); got != want {
		t.Errorf("FirstError returned %v, want the first error", got)
	}
}
