// Package cliutil holds flag validation shared by the coca binaries
// (cocasim, cocad) and, via WorkersFor, the worker-count rule library
// entry points enforce themselves. Each helper returns a usage-shaped
// error naming the flag (or owner), so main can print it and exit 2
// without re-deriving the message.
package cliutil

import (
	"fmt"
	"math"
	"strings"
)

// Workers validates a -workers flag. 0 is the documented "all cores"
// sentinel and positive values are literal pool sizes; negatives used to
// fall through the `Workers > 0` check and silently mean "all cores" too,
// which hid typos like -workers -4.
func Workers(v int) error {
	if v < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 means all cores, 1 means sequential); got %d", v)
	}
	return nil
}

// WorkersFor is the Workers rule for library entry points rather than
// flags: owner names the knob in the message (e.g. "experiments.Config.
// Workers", "geo.System.SetWorkers"). 0 keeps each caller's documented
// default (all cores for the experiment pool, sequential for geo) and
// positives are literal pool sizes; negatives are an error everywhere —
// they used to silently mean "all cores" in the experiment pool, the bug
// this helper closes.
func WorkersFor(owner string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0; got %d", owner, v)
	}
	return nil
}

// NonNegativeCount validates a count flag where 0 means "use the default".
func NonNegativeCount(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (0 means the default); got %d", name, v)
	}
	return nil
}

// PositiveCount validates a count flag that has no zero sentinel.
func PositiveCount(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be > 0; got %d", name, v)
	}
	return nil
}

// PositiveFloat requires a finite, strictly positive value.
func PositiveFloat(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("%s must be a finite value > 0; got %v", name, v)
	}
	return nil
}

// NonNegativeFloat requires a finite, non-negative value.
func NonNegativeFloat(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%s must be a finite value >= 0; got %v", name, v)
	}
	return nil
}

// OneOf validates an enumerated string flag against its legal choices.
// The error spells out the full choice list so main can print it verbatim.
func OneOf(name, v string, choices ...string) error {
	for _, c := range choices {
		if v == c {
			return nil
		}
	}
	return fmt.Errorf("%s must be one of %s; got %q", name, strings.Join(choices, "|"), v)
}

// FirstError returns the first non-nil error, so main can validate a flag
// block in one expression.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
