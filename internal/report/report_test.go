package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 2)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.500", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d", len(lines))
	}
}

func TestFormatFloatRanges(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		1e9:  "1.000e+09",
		1e-6: "1.000e-06",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(3.14159); got != "3.142" {
		t.Errorf("formatFloat(pi) = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1.0, "two")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1.000,two\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestChart(t *testing.T) {
	series := make([]float64, 500)
	for i := range series {
		series[i] = float64(i % 100)
	}
	var buf bytes.Buffer
	if err := Chart(&buf, "sawtooth", series, 60, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sawtooth") || !strings.Contains(out, "*") {
		t.Errorf("chart missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Errorf("chart rows = %d", len(lines))
	}
}

func TestChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "empty", nil, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty)") {
		t.Error("empty series not reported")
	}
	buf.Reset()
	if err := Chart(&buf, "flat", []float64{5, 5, 5}, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("flat series missing marks")
	}
}

func TestDownsample(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6}
	got := Downsample(s, 3)
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Short series returned as-is (copied).
	short := Downsample(s, 10)
	if len(short) != 6 {
		t.Errorf("short downsample len = %d", len(short))
	}
	short[0] = 99
	if s[0] == 99 {
		t.Error("Downsample aliases input")
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := SeriesCSV(&buf, []float64{0, 1}, "t",
		map[string][]float64{"a": {10, 20}, "b": {30}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := "t,a,b\n0,10,30\n1,20,\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
