// Package report renders experiment outputs: aligned text tables matching
// the rows the paper's figures plot, CSV export for external plotting, and
// compact ASCII line charts for quick visual inspection of time series in a
// terminal.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return strconv.FormatFloat(v, 'e', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV exports the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Chart renders a ±height-row ASCII line chart of the series, downsampling
// to the given width by bucket means. It is intentionally rough — good
// enough to see the Fig. 2/3 trends in a terminal.
func Chart(w io.Writer, title string, series []float64, width, height int) error {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	ds := Downsample(series, width)
	if len(ds) == 0 {
		_, err := fmt.Fprintf(w, "%s: (empty)\n", title)
		return err
	}
	lo, hi := ds[0], ds[0]
	for _, v := range ds {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(ds)))
	}
	for c, v := range ds {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [min %s, max %s]\n", title, formatFloat(lo), formatFloat(hi))
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = padLabel(hi)
		} else if r == height-1 {
			label = padLabel(lo)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func padLabel(v float64) string {
	s := formatFloat(v)
	if len(s) > 8 {
		s = s[:8]
	}
	return fmt.Sprintf("%8s", s)
}

// Downsample reduces a series to at most width points by bucket means.
func Downsample(series []float64, width int) []float64 {
	if len(series) <= width || width <= 0 {
		return append([]float64(nil), series...)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range series[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// SeriesCSV writes aligned multi-series CSV: one row per index with the
// given column names.
func SeriesCSV(w io.Writer, index []float64, indexName string, cols map[string][]float64, order []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{indexName}, order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range index {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(index[i], 'g', -1, 64))
		for _, name := range order {
			s := cols[name]
			if i < len(s) {
				row = append(row, strconv.FormatFloat(s[i], 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
