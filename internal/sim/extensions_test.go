package sim

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/trace"
)

func TestTariffChangesElectricityCost(t *testing.T) {
	sc := testScenario(3)
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: 5, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Tariff = tariff
	res, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Records[0]
	// Grid draw is 7.73 kWh: 5 at 1× plus 2.73 at 3×, priced at 0.05 $/kWh.
	want := 0.05 * (5 + 3*2.73)
	if math.Abs(r.ElectricityUSD-want) > 1e-9 {
		t.Errorf("tiered electricity = %v, want %v", r.ElectricityUSD, want)
	}
	// Grid energy itself (carbon accounting) is unchanged by the tariff.
	if math.Abs(r.GridKWh-7.73) > 1e-9 {
		t.Errorf("grid = %v", r.GridKWh)
	}
}

func TestMaxPowerRejectsViolation(t *testing.T) {
	sc := testScenario(3)
	sc.MaxPowerKW = 5 // the fixed config draws 9.73 kW
	if _, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}}); err == nil {
		t.Error("peak-power violation accepted")
	}
	sc.MaxPowerKW = 50
	if _, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}}); err != nil {
		t.Errorf("loose cap rejected: %v", err)
	}
}

func TestMaxDelayRejectsViolation(t *testing.T) {
	sc := testScenario(3)
	sc.MaxDelayCost = 10 // the fixed config has delay 75
	if _, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}}); err == nil {
		t.Error("delay violation accepted")
	}
}

func TestNegativeConstraintRejected(t *testing.T) {
	sc := testScenario(3)
	sc.MaxPowerKW = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative constraint accepted")
	}
}

func TestNetworkDelayAddsToAccounting(t *testing.T) {
	sc := testScenario(3)
	base, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	sc.NetworkDelaySec = trace.Constant("net", 0.02, 3)
	withNet, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	// λ = 300, T_net = 0.02 → +6 jobs-in-system equivalent.
	got := withNet.Records[0].DelayCost - base.Records[0].DelayCost
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("network delay contribution = %v, want 6", got)
	}
	// Short trace rejected.
	sc.NetworkDelaySec = trace.Constant("net", 0.02, 1)
	if err := sc.Validate(); err == nil {
		t.Error("short network-delay trace accepted")
	}
}

func TestSummarizeWithTrueUp(t *testing.T) {
	sc := testScenario(10)
	res, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	plain := Summarize(sc, res)
	// Grid 77.3 kWh vs budget 40 → shortfall 37.3.
	if math.Abs(plain.ShortfallKWh-37.3) > 1e-6 {
		t.Fatalf("shortfall = %v, want 37.3", plain.ShortfallKWh)
	}
	if plain.TrueUpUSD != 0 {
		t.Error("plain summary should not price the shortfall")
	}
	trued := SummarizeWithTrueUp(sc, res, 0.02)
	if math.Abs(trued.TrueUpUSD-37.3*0.02) > 1e-9 {
		t.Errorf("true-up = %v", trued.TrueUpUSD)
	}
	wantAvg := plain.AvgHourlyCostUSD + trued.TrueUpUSD/10
	if math.Abs(trued.AvgHourlyCostUSD-wantAvg) > 1e-9 {
		t.Errorf("amortized cost = %v, want %v", trued.AvgHourlyCostUSD, wantAvg)
	}
	// Negative REC price treated as zero.
	free := SummarizeWithTrueUp(sc, res, -1)
	if free.TrueUpUSD != 0 {
		t.Error("negative REC price should be clamped")
	}
}

func TestTrueUpZeroWhenNeutral(t *testing.T) {
	sc := testScenario(10)
	sc.Portfolio.RECsKWh = 1e9 // enormous budget
	res, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeWithTrueUp(sc, res, 0.02)
	if s.ShortfallKWh != 0 || s.TrueUpUSD != 0 {
		t.Errorf("neutral run has shortfall %v / true-up %v", s.ShortfallKWh, s.TrueUpUSD)
	}
}
