package sim

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// randomPolicy picks arbitrary feasible configurations, exercising the
// engine's accounting on a wide range of states.
type randomPolicy struct {
	sc  *Scenario
	rng *stats.RNG
}

func (r *randomPolicy) Name() string { return "random" }

func (r *randomPolicy) Decide(obs Observation) (Config, error) {
	k := 1 + r.rng.IntN(r.sc.Server.NumSpeeds())
	minActive := 1
	if obs.LambdaRPS > 0 {
		minActive = int(math.Ceil(obs.LambdaRPS / (r.sc.Gamma * r.sc.Server.Rate(k))))
	}
	if minActive > r.sc.N {
		// Fall back to top speed, which the scenario validation guarantees
		// can carry the peak.
		k = r.sc.Server.NumSpeeds()
		minActive = int(math.Ceil(obs.LambdaRPS / (r.sc.Gamma * r.sc.Server.Rate(k))))
	}
	active := minActive + r.rng.IntN(r.sc.N-minActive+1)
	return Config{Speed: k, Active: active}, nil
}

func (r *randomPolicy) Observe(Feedback) {}

// TestAccountingIdentities drives random configurations through the engine
// and checks every record satisfies the cost-model identities exactly.
func TestAccountingIdentities(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		sc := testScenario(100)
		sc.SwitchCostKWh = 0.05
		rng := stats.NewRNG(uint64(1000 + trial))
		// Random but valid environment traces.
		wl := make([]float64, sc.Slots)
		for i := range wl {
			wl[i] = rng.Uniform(0, 0.8*sc.Capacity())
		}
		sc.Workload = &trace.Trace{Name: "rand", Values: wl}
		res, err := Run(sc, &randomPolicy{sc: sc, rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		prevActive := 0
		for _, r := range res.Records {
			// Identity 1: total = electricity + delay + switching.
			if math.Abs(r.TotalUSD-(r.ElectricityUSD+r.DelayUSD+r.SwitchUSD)) > 1e-9*(1+r.TotalUSD) {
				t.Fatalf("slot %d: components do not sum: %+v", r.Slot, r)
			}
			// Identity 2: grid = [power − onsite]^+.
			if math.Abs(r.GridKWh-math.Max(0, r.PowerKW-r.OnsiteKW)) > 1e-9 {
				t.Fatalf("slot %d: grid identity broken: %+v", r.Slot, r)
			}
			// Identity 3: electricity = price · grid (flat tariff).
			if math.Abs(r.ElectricityUSD-r.PriceUSDPerKWh*r.GridKWh) > 1e-9 {
				t.Fatalf("slot %d: electricity identity broken: %+v", r.Slot, r)
			}
			// Identity 4: switching = price · c_sw · |Δactive|.
			wantSw := r.PriceUSDPerKWh * sc.SwitchCostKWh * math.Abs(float64(r.Active-prevActive))
			if math.Abs(r.SwitchUSD-wantSw) > 1e-9 {
				t.Fatalf("slot %d: switching identity broken: got %v want %v", r.Slot, r.SwitchUSD, wantSw)
			}
			// Identity 5: deficit = grid − α·offsite − z.
			z := sc.Portfolio.RECPerSlotKWh(sc.Slots)
			wantDef := r.GridKWh - sc.Portfolio.Alpha*r.OffsiteKWh - z
			if math.Abs(r.DeficitKWh-wantDef) > 1e-9 {
				t.Fatalf("slot %d: deficit identity broken", r.Slot)
			}
			// Sanity: no NaNs, no negative power or delay.
			if math.IsNaN(r.TotalUSD) || r.PowerKW < 0 || r.DelayCost < 0 {
				t.Fatalf("slot %d: degenerate record %+v", r.Slot, r)
			}
			prevActive = r.Active
		}
		// Summary totals equal the sum of records.
		s := Summarize(sc, res)
		var grid float64
		for _, r := range res.Records {
			grid += r.GridKWh
		}
		if math.Abs(s.TotalGridKWh-grid) > 1e-6*(1+grid) {
			t.Fatalf("summary grid %v != records sum %v", s.TotalGridKWh, grid)
		}
	}
}
