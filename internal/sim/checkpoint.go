package sim

import "fmt"

// EngineCheckpointVersion is the current EngineCheckpoint schema version.
const EngineCheckpointVersion = 1

// EngineCheckpoint is the versioned snapshot of an Engine's run state: the
// slot cursor, the previous slot's active count (the switching-cost
// anchor), and the records of every settled slot. The scenario and policy
// are construction parameters, not state — rebuild them identically (and
// restore the policy's own checkpoint, e.g. core.PolicyCheckpoint) before
// restoring the engine; the Policy name is carried only as a guard against
// resuming the wrong pairing. SlotRecord is all exported float64/int
// fields, so the snapshot round-trips through JSON bit-for-bit.
type EngineCheckpoint struct {
	Version    int          `json:"version"`
	Policy     string       `json:"policy"`
	Slot       int          `json:"slot"`
	PrevActive int          `json:"prev_active"`
	Records    []SlotRecord `json:"records"`
}

// Checkpoint snapshots the engine between steps. The records are copied,
// so a later Step does not mutate the snapshot.
func (e *Engine) Checkpoint() EngineCheckpoint {
	return EngineCheckpoint{
		Version:    EngineCheckpointVersion,
		Policy:     e.res.Policy,
		Slot:       e.t,
		PrevActive: e.prevActive,
		Records:    append([]SlotRecord(nil), e.res.Records...),
	}
}

// RestoreFrom replaces the engine's run state with the snapshot: the next
// Step executes slot ck.Slot exactly as the uninterrupted run would have,
// producing the same records, observer calls and spans. It validates the
// snapshot against the engine's scenario and policy.
func (e *Engine) RestoreFrom(ck EngineCheckpoint) error {
	if ck.Version != EngineCheckpointVersion {
		return fmt.Errorf("sim: engine checkpoint version %d, want %d", ck.Version, EngineCheckpointVersion)
	}
	if ck.Policy != e.res.Policy {
		return fmt.Errorf("sim: engine checkpoint for policy %q, engine runs %q", ck.Policy, e.res.Policy)
	}
	if ck.Slot < 0 || ck.Slot > e.sc.Slots {
		return fmt.Errorf("sim: engine checkpoint slot %d outside horizon [0, %d]", ck.Slot, e.sc.Slots)
	}
	if len(ck.Records) != ck.Slot {
		return fmt.Errorf("sim: engine checkpoint has %d records for slot cursor %d", len(ck.Records), ck.Slot)
	}
	if ck.PrevActive < 0 || ck.PrevActive > e.sc.N {
		return fmt.Errorf("sim: engine checkpoint prev_active %d outside fleet [0, %d]", ck.PrevActive, e.sc.N)
	}
	e.t = ck.Slot
	e.prevActive = ck.PrevActive
	e.res.Records = append(e.res.Records[:0], ck.Records...)
	return nil
}
