// Package sim is the discrete-time (hourly-slot) simulation engine that
// drives resource-management policies over a budgeting period, mirroring
// the paper's trace-based evaluation (§5). Each slot the engine shows a
// policy the currently known environment — workload arrival rate λ(t),
// on-site renewable supply r(t) and electricity price w(t), optionally
// overestimated by the φ factor of the Fig. 5(c) study — receives a fleet
// configuration (a speed level and an active-server count for the paper's
// homogeneous §5.1 deployment), operates that configuration against the
// *true* arrivals, charges electricity, delay and switching costs, and
// finally reveals the realized off-site generation f(t) so online policies
// can update their carbon-deficit queues.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/renewable"
	"repro/internal/stats"
	"repro/internal/telemetry/span"
	"repro/internal/trace"
)

// Observation is the information available to a policy at the beginning of
// a slot (the paper's hour-ahead knowledge: λ(t), r(t), w(t) — but not
// f(t), which is realized only at the end of the slot).
type Observation struct {
	Slot           int
	LambdaRPS      float64
	OnsiteKW       float64
	PriceUSDPerKWh float64
}

// Config is a fleet configuration for one slot of the homogeneous
// deployment: Active servers all running at speed level Speed.
type Config struct {
	Speed  int
	Active int
}

// Feedback is revealed to the policy after the slot has been operated.
type Feedback struct {
	Slot       int
	GridKWh    float64 // realized y(t) = [p − r]^+
	OffsiteKWh float64 // realized f(t)
	TotalUSD   float64 // realized slot cost including switching
}

// Policy is a per-slot decision maker.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the configuration for the slot.
	Decide(obs Observation) (Config, error)
	// Observe delivers the slot's realized outcome.
	Observe(fb Feedback)
}

// Scenario bundles everything the engine needs for a run.
type Scenario struct {
	Server dcmodel.ServerType
	N      int     // fleet size
	Gamma  float64 // γ utilization cap
	PUE    float64
	Beta   float64 // β delay weight

	Workload  *trace.Trace         // λ(t) in RPS
	Price     *trace.Trace         // w(t) in $/kWh
	Portfolio *renewable.Portfolio // r(t), f(t), Z, α

	Slots int // horizon J

	// Overestimate is the φ ≥ 1 factor of Fig. 5(c): policies see φ·λ(t)
	// (clamped to fleet capacity) while costs use the true λ(t). Zero means
	// 1 (no overestimation).
	Overestimate float64

	// SwitchCostKWh is the energy-equivalent cost of toggling one server on
	// or off (Fig. 5(d); the paper normalizes against 0.231 kWh). Charged at
	// the slot's electricity price. It is also exposed to policies via the
	// observation-independent accessor so they can internalize it.
	SwitchCostKWh float64

	// Tariff optionally replaces the linear electricity cost with a convex
	// nonlinear one (§2.1): the slot's electricity cost becomes
	// w(t)·Tariff.Cost(grid). Nil means the paper's default linear tariff.
	Tariff dcmodel.Tariff

	// MaxPowerKW and MaxDelayCost are the optional §3.1 per-slot
	// constraints; configurations violating them are rejected by the
	// engine. Zero disables.
	MaxPowerKW   float64
	MaxDelayCost float64

	// NetworkDelaySec is the optional time-varying mean network delay
	// between users and the data center (§2.3): it adds λ(t)·T_net(t) to
	// the recorded delay cost. Being decision-independent it does not
	// change any policy's optimum, only the accounting. Nil disables.
	NetworkDelaySec *trace.Trace

	// SlotHours is the slot duration in hours; 0 means 1 (the paper's
	// hourly slots). It is threaded into every slot's Ledger, where it is
	// the single kW→kWh conversion: grid draw and facility energy scale
	// with it, while delay cost (a per-slot aggregate) and switching
	// energy (per toggle) do not.
	SlotHours float64
}

// Clone returns a shallow copy of the scenario. Traces and the portfolio
// are shared — they are read-only during runs — so cloning is the cheap
// way for concurrent sweeps to vary scalar knobs (Overestimate,
// SwitchCostKWh, Tariff, ...) without racing on a shared Scenario.
func (sc *Scenario) Clone() *Scenario {
	out := *sc
	return &out
}

// Validate reports whether the scenario is well formed.
func (sc *Scenario) Validate() error {
	if err := sc.Server.Validate(); err != nil {
		return err
	}
	if sc.N <= 0 {
		return fmt.Errorf("sim: fleet size %d", sc.N)
	}
	if sc.Gamma <= 0 || sc.Gamma >= 1 {
		return fmt.Errorf("sim: gamma %v outside (0,1)", sc.Gamma)
	}
	if sc.PUE < 1 {
		return fmt.Errorf("sim: PUE %v below 1", sc.PUE)
	}
	if sc.Beta < 0 {
		return fmt.Errorf("sim: negative beta %v", sc.Beta)
	}
	if sc.Slots <= 0 {
		return fmt.Errorf("sim: horizon %d", sc.Slots)
	}
	if sc.Workload == nil || sc.Workload.Len() < sc.Slots {
		return errors.New("sim: workload trace missing or shorter than horizon")
	}
	if sc.Price == nil || sc.Price.Len() < sc.Slots {
		return errors.New("sim: price trace missing or shorter than horizon")
	}
	if sc.Portfolio == nil {
		return errors.New("sim: missing renewable portfolio")
	}
	if err := sc.Portfolio.Validate(sc.Slots); err != nil {
		return err
	}
	if sc.Overestimate != 0 && sc.Overestimate < 1 {
		return fmt.Errorf("sim: overestimation factor %v below 1", sc.Overestimate)
	}
	if sc.SwitchCostKWh < 0 {
		return fmt.Errorf("sim: negative switching cost")
	}
	if sc.MaxPowerKW < 0 || sc.MaxDelayCost < 0 {
		return fmt.Errorf("sim: negative per-slot constraint")
	}
	if sc.NetworkDelaySec != nil && sc.NetworkDelaySec.Len() < sc.Slots {
		return errors.New("sim: network-delay trace shorter than horizon")
	}
	if sc.SlotHours < 0 {
		return fmt.Errorf("sim: negative slot duration %v", sc.SlotHours)
	}
	maxLambda := stats.MaxOf(sc.Workload.Values[:sc.Slots])
	if maxLambda > sc.Capacity() {
		return fmt.Errorf("sim: peak workload %v exceeds usable capacity %v", maxLambda, sc.Capacity())
	}
	return nil
}

// Capacity returns the γ-discounted top-speed fleet capacity in RPS.
func (sc *Scenario) Capacity() float64 {
	return sc.Gamma * float64(sc.N) * sc.Server.MaxRate()
}

// Observe builds the (possibly overestimated) observation for slot t.
func (sc *Scenario) Observe(t int) Observation {
	lambda := sc.Workload.Values[t]
	if sc.Overestimate > 1 {
		lambda = math.Min(lambda*sc.Overestimate, sc.Capacity())
	}
	return Observation{
		Slot:           t,
		LambdaRPS:      lambda,
		OnsiteKW:       sc.Portfolio.OnsiteKW.Values[t],
		PriceUSDPerKWh: sc.Price.Values[t],
	}
}

// LedgerAt builds the shared slot-cost kernel for slot t with the REC
// allowance z (callers that step many slots compute z once via
// Portfolio.RECPerSlotKWh and pass it in).
func (sc *Scenario) LedgerAt(t int, zPerSlot float64) dcmodel.Ledger {
	return dcmodel.Ledger{
		PriceUSDPerKWh: sc.Price.Values[t],
		OnsiteKW:       sc.Portfolio.OnsiteKW.Values[t],
		Beta:           sc.Beta,
		SlotHours:      sc.SlotHours,
		Tariff:         sc.Tariff,
		SwitchCostKWh:  sc.SwitchCostKWh,
		Alpha:          sc.Portfolio.Alpha,
		RECPerSlotKWh:  zPerSlot,
		MaxPowerKW:     sc.MaxPowerKW,
		MaxDelayCost:   sc.MaxDelayCost,
	}
}

// SlotRecord is the full accounting of one operated slot.
type SlotRecord struct {
	Slot           int
	LambdaRPS      float64
	PriceUSDPerKWh float64
	OnsiteKW       float64
	OffsiteKWh     float64

	Speed  int
	Active int

	PowerKW        float64
	EnergyKWh      float64 // facility energy p·SlotHours, incl. on-site-covered power
	GridKWh        float64
	ElectricityUSD float64
	DelayCost      float64
	DelayUSD       float64
	SwitchUSD      float64
	TotalUSD       float64

	// DeficitKWh is this slot's budget overrun y(t) − α·f(t) − z (can be
	// negative); its running average is the paper's "carbon deficit".
	DeficitKWh float64
}

// Result is a completed run.
type Result struct {
	Policy  string
	Records []SlotRecord
}

// ErrOverload is returned when a policy's configuration cannot legally
// carry the slot's true arrivals (the paper's model never drops workload).
var ErrOverload = errors.New("sim: configuration cannot carry the offered load")

// ErrDone is returned by Engine.Step once the horizon is exhausted.
var ErrDone = errors.New("sim: run already complete")

// Observer is a per-slot instrumentation hook: it receives every operated
// slot's record as soon as the slot settles, before the policy's feedback.
// Observers must not retain or mutate engine state; they are for metrics,
// streaming exports and tests.
type Observer func(rec SlotRecord)

// Engine is the resumable, step-wise slot executor: it drives a policy
// over a scenario one slot at a time, charging each slot through the
// shared dcmodel.Ledger kernel. Run is a thin wrapper that steps an Engine
// to completion; callers that need per-slot control (checkpointing,
// interleaving several runs, live dashboards) step it themselves:
//
//	e, err := NewEngine(sc, policy)
//	for !e.Done() {
//		if err := e.Step(); err != nil { ... }
//	}
//	res := e.Result()
type Engine struct {
	sc        *Scenario
	policy    Policy
	res       *Result
	observers []Observer
	tracer    *span.Tracer

	zPerSlot   float64
	prevActive int
	t          int
}

// NewEngine validates the scenario and prepares a run of the policy over
// it. Observers, if any, are invoked in order for every operated slot.
func NewEngine(sc *Scenario, p Policy, observers ...Observer) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		sc:        sc,
		policy:    p,
		res:       &Result{Policy: p.Name(), Records: make([]SlotRecord, 0, sc.Slots)},
		observers: observers,
		zPerSlot:  sc.Portfolio.RECPerSlotKWh(sc.Slots),
	}, nil
}

// SetTracer attaches a span tracer: every subsequent Step records a
// "sim.slot" span with "sim.decide", "sim.operate" and "sim.observe"
// children. Parenting is ambient, so a policy (or its P3 solver) started
// on the same tracer nests its own spans under the decide span. A nil
// tracer (the default) keeps the hot path untouched — tracing never
// changes a single charged number, only observes them.
func (e *Engine) SetTracer(tr *span.Tracer) { e.tracer = tr }

// Done reports whether the horizon is exhausted.
func (e *Engine) Done() bool { return e.t >= e.sc.Slots }

// Slot returns the next slot index to be stepped.
func (e *Engine) Slot() int { return e.t }

// Result returns the run so far. After Done it is the completed run; the
// returned value aliases the engine's records.
func (e *Engine) Result() *Result { return e.res }

// Step executes one slot: observe, decide, operate and charge through the
// Ledger, notify observers, and reveal the realized feedback to the
// policy. A failed step leaves the engine at the failed slot.
func (e *Engine) Step() error {
	if e.Done() {
		return ErrDone
	}
	t := e.t
	obs := e.sc.Observe(t)
	var slotSpan, child *span.Span
	if e.tracer != nil {
		slotSpan = e.tracer.Start("sim.slot",
			span.Int("slot", t),
			span.Float("lambda_rps", obs.LambdaRPS),
			span.Float("onsite_kw", obs.OnsiteKW),
			span.Float("price_usd_per_kwh", obs.PriceUSDPerKWh))
		child = e.tracer.Start("sim.decide")
	}
	cfg, err := e.policy.Decide(obs)
	if e.tracer != nil {
		child.Set(span.Int("speed", cfg.Speed), span.Int("active", cfg.Active))
		e.endSpan(child, err)
	}
	if err != nil {
		e.endSpan(slotSpan, err)
		return fmt.Errorf("sim: slot %d: %w", t, err)
	}
	if e.tracer != nil {
		child = e.tracer.Start("sim.operate",
			span.Int("speed", cfg.Speed), span.Int("active", cfg.Active))
	}
	rec, err := e.sc.operate(t, cfg, e.prevActive, e.zPerSlot)
	if e.tracer != nil {
		child.Set(span.Float("total_usd", rec.TotalUSD), span.Float("grid_kwh", rec.GridKWh))
		e.endSpan(child, err)
	}
	if err != nil {
		e.endSpan(slotSpan, err)
		return fmt.Errorf("sim: slot %d: %w", t, err)
	}
	e.res.Records = append(e.res.Records, rec)
	for _, ob := range e.observers {
		ob(rec)
	}
	if e.tracer != nil {
		child = e.tracer.Start("sim.observe",
			span.Float("grid_kwh", rec.GridKWh), span.Float("offsite_kwh", rec.OffsiteKWh))
	}
	e.policy.Observe(Feedback{
		Slot:       t,
		GridKWh:    rec.GridKWh,
		OffsiteKWh: rec.OffsiteKWh,
		TotalUSD:   rec.TotalUSD,
	})
	if e.tracer != nil {
		child.End()
		slotSpan.Set(
			span.Int("speed", rec.Speed),
			span.Int("active", rec.Active),
			span.Float("total_usd", rec.TotalUSD),
			span.Float("grid_kwh", rec.GridKWh),
			span.Float("deficit_kwh", rec.DeficitKWh))
		slotSpan.End()
	}
	e.prevActive = cfg.Active
	e.t++
	return nil
}

// endSpan closes a step span, tagging it with the error that failed the
// slot (a failed step leaves the engine at the failed slot; a retry
// records a fresh slot span).
func (e *Engine) endSpan(s *span.Span, err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Set(span.Str("error", err.Error()))
	}
	s.End()
}

// Run drives the policy over the scenario's horizon: a thin wrapper that
// steps a fresh Engine to completion.
func Run(sc *Scenario, p Policy) (*Result, error) {
	return RunObserved(sc, p)
}

// RunObserved is Run with per-slot instrumentation hooks.
func RunObserved(sc *Scenario, p Policy, observers ...Observer) (*Result, error) {
	return RunTraced(sc, p, nil, observers...)
}

// RunTraced is RunObserved with a span tracer attached to the engine: the
// run records a sim.slot span per slot with decide/operate/observe
// children, and any tracer-aware policy layers (the GSD solver, geo
// allocation) nest their own spans underneath. A nil tracer makes it
// exactly RunObserved.
func RunTraced(sc *Scenario, p Policy, tr *span.Tracer, observers ...Observer) (*Result, error) {
	e, err := NewEngine(sc, p, observers...)
	if err != nil {
		return nil, err
	}
	e.SetTracer(tr)
	for !e.Done() {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.Result(), nil
}

// operate charges one slot of the given configuration against the true
// environment through the shared Ledger kernel.
func (sc *Scenario) operate(t int, cfg Config, prevActive int, zPerSlot float64) (SlotRecord, error) {
	lambda := sc.Workload.Values[t]
	offsite := sc.Portfolio.OffsiteKWh.Values[t]
	led := sc.LedgerAt(t, zPerSlot)

	rec := SlotRecord{
		Slot: t, LambdaRPS: lambda, PriceUSDPerKWh: led.PriceUSDPerKWh,
		OnsiteKW: led.OnsiteKW, OffsiteKWh: offsite,
		Speed: cfg.Speed, Active: cfg.Active,
	}
	if cfg.Active < 0 || cfg.Active > sc.N {
		return rec, fmt.Errorf("%w: active=%d of %d", ErrOverload, cfg.Active, sc.N)
	}
	if cfg.Speed < 0 || cfg.Speed > sc.Server.NumSpeeds() {
		return rec, fmt.Errorf("sim: speed index %d out of range", cfg.Speed)
	}
	if lambda > 0 {
		if cfg.Active == 0 || cfg.Speed == 0 {
			return rec, ErrOverload
		}
		perServer := lambda / float64(cfg.Active)
		if perServer > sc.Gamma*sc.Server.Rate(cfg.Speed)*(1+1e-9) {
			return rec, fmt.Errorf("%w: per-server load %v exceeds γ·x = %v",
				ErrOverload, perServer, sc.Gamma*sc.Server.Rate(cfg.Speed))
		}
	}
	powerKW, delayCost := 0.0, 0.0
	if cfg.Active > 0 && cfg.Speed > 0 {
		g := dcmodel.Group{Type: sc.Server, N: cfg.Active}
		powerKW = sc.PUE * g.PowerKW(cfg.Speed, lambda)
		delayCost = g.DelayCost(cfg.Speed, lambda)
	}
	if err := led.CheckCaps(powerKW, delayCost); err != nil {
		rec.PowerKW, rec.DelayCost = powerKW, delayCost
		return rec, err
	}
	// The §2.3 network delay is charged after the caps: it is
	// decision-independent, so the §3.1 constraints apply to the data
	// center's own delay only.
	if sc.NetworkDelaySec != nil {
		delayCost += lambda * sc.NetworkDelaySec.Values[t]
	}
	ch := led.Charge(powerKW, delayCost, cfg.Active-prevActive)
	rec.PowerKW = ch.PowerKW
	rec.EnergyKWh = ch.EnergyKWh
	rec.GridKWh = ch.GridKWh
	rec.ElectricityUSD = ch.ElectricityUSD
	rec.DelayCost = ch.DelayCost
	rec.DelayUSD = ch.DelayUSD
	rec.SwitchUSD = ch.SwitchUSD
	rec.TotalUSD = ch.TotalUSD
	rec.DeficitKWh = led.Deficit(ch.GridKWh, offsite)
	return rec, nil
}

// Summary aggregates a run for reporting.
type Summary struct {
	Policy string
	Slots  int
	// SlotHours is the slot duration the run was charged at (the
	// scenario's SlotHours, defaulting to the paper's 1-hour slots).
	SlotHours float64

	AvgHourlyCostUSD    float64
	AvgElectricityUSD   float64
	AvgDelayUSD         float64
	AvgSwitchUSD        float64
	TotalGridKWh        float64
	TotalEnergyKWh      float64 // facility consumption including on-site-covered power
	AvgDeficitKWh       float64 // average hourly carbon deficit
	FinalRunningDeficit float64 // cumulative deficit at the end (can be negative)
	BudgetKWh           float64
	BudgetUsedFraction  float64 // grid usage / budget: ≤ 1 means carbon neutral

	// ShortfallKWh is the grid energy beyond the budget that would have to
	// be offset by buying extra RECs at the end of the period — the §4.3
	// remedy for the bounded neutrality deviation ("data centers may
	// purchase additional RECs at the end of a budgeting period to offset
	// the remaining electricity usage"). Zero when neutral.
	ShortfallKWh float64
	// TrueUpUSD prices the shortfall at recPriceUSDPerKWh (see
	// SummarizeWithTrueUp); zero in plain Summarize.
	TrueUpUSD float64
}

// Summarize computes the run's aggregates against the scenario's budget.
func Summarize(sc *Scenario, res *Result) Summary {
	s := Summary{Policy: res.Policy, Slots: len(res.Records), SlotHours: dcmodel.Ledger{SlotHours: sc.SlotHours}.Hours()}
	var cost, elec, delay, sw, grid, energy, deficit float64
	for _, r := range res.Records {
		cost += r.TotalUSD
		elec += r.ElectricityUSD
		delay += r.DelayUSD
		sw += r.SwitchUSD
		grid += r.GridKWh
		energy += r.EnergyKWh
		deficit += r.DeficitKWh
	}
	n := float64(len(res.Records))
	if n == 0 {
		return s
	}
	s.AvgHourlyCostUSD = cost / n
	s.AvgElectricityUSD = elec / n
	s.AvgDelayUSD = delay / n
	s.AvgSwitchUSD = sw / n
	s.TotalGridKWh = grid
	s.TotalEnergyKWh = energy
	s.AvgDeficitKWh = deficit / n
	s.FinalRunningDeficit = deficit
	s.BudgetKWh = sc.Portfolio.BudgetKWh(sc.Slots)
	if s.BudgetKWh > 0 {
		s.BudgetUsedFraction = grid / s.BudgetKWh
	}
	if grid > s.BudgetKWh {
		s.ShortfallKWh = grid - s.BudgetKWh
	}
	return s
}

// SummarizeWithTrueUp is Summarize plus the §4.3 end-of-period REC
// purchase: any budget shortfall is priced at recPriceUSDPerKWh and folded
// into TrueUpUSD (and, amortized per slot, into AvgHourlyCostUSD), making
// every policy exactly carbon neutral at a cost.
func SummarizeWithTrueUp(sc *Scenario, res *Result, recPriceUSDPerKWh float64) Summary {
	s := Summarize(sc, res)
	if recPriceUSDPerKWh < 0 {
		recPriceUSDPerKWh = 0
	}
	s.TrueUpUSD = s.ShortfallKWh * recPriceUSDPerKWh
	if s.Slots > 0 {
		s.AvgHourlyCostUSD += s.TrueUpUSD / float64(s.Slots)
	}
	return s
}

// Series extracts one metric from the records.
func (r *Result) Series(f func(SlotRecord) float64) []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = f(rec)
	}
	return out
}

// CostSeries returns the per-slot total cost.
func (r *Result) CostSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.TotalUSD })
}

// DeficitSeries returns the per-slot carbon deficit.
func (r *Result) DeficitSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.DeficitKWh })
}

// GridSeries returns the per-slot grid energy draw.
func (r *Result) GridSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.GridKWh })
}
