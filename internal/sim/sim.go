// Package sim is the discrete-time (hourly-slot) simulation engine that
// drives resource-management policies over a budgeting period, mirroring
// the paper's trace-based evaluation (§5). Each slot the engine shows a
// policy the currently known environment — workload arrival rate λ(t),
// on-site renewable supply r(t) and electricity price w(t), optionally
// overestimated by the φ factor of the Fig. 5(c) study — receives a fleet
// configuration (a speed level and an active-server count for the paper's
// homogeneous §5.1 deployment), operates that configuration against the
// *true* arrivals, charges electricity, delay and switching costs, and
// finally reveals the realized off-site generation f(t) so online policies
// can update their carbon-deficit queues.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/renewable"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Observation is the information available to a policy at the beginning of
// a slot (the paper's hour-ahead knowledge: λ(t), r(t), w(t) — but not
// f(t), which is realized only at the end of the slot).
type Observation struct {
	Slot           int
	LambdaRPS      float64
	OnsiteKW       float64
	PriceUSDPerKWh float64
}

// Config is a fleet configuration for one slot of the homogeneous
// deployment: Active servers all running at speed level Speed.
type Config struct {
	Speed  int
	Active int
}

// Feedback is revealed to the policy after the slot has been operated.
type Feedback struct {
	Slot       int
	GridKWh    float64 // realized y(t) = [p − r]^+
	OffsiteKWh float64 // realized f(t)
	TotalUSD   float64 // realized slot cost including switching
}

// Policy is a per-slot decision maker.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the configuration for the slot.
	Decide(obs Observation) (Config, error)
	// Observe delivers the slot's realized outcome.
	Observe(fb Feedback)
}

// Scenario bundles everything the engine needs for a run.
type Scenario struct {
	Server dcmodel.ServerType
	N      int     // fleet size
	Gamma  float64 // γ utilization cap
	PUE    float64
	Beta   float64 // β delay weight

	Workload  *trace.Trace         // λ(t) in RPS
	Price     *trace.Trace         // w(t) in $/kWh
	Portfolio *renewable.Portfolio // r(t), f(t), Z, α

	Slots int // horizon J

	// Overestimate is the φ ≥ 1 factor of Fig. 5(c): policies see φ·λ(t)
	// (clamped to fleet capacity) while costs use the true λ(t). Zero means
	// 1 (no overestimation).
	Overestimate float64

	// SwitchCostKWh is the energy-equivalent cost of toggling one server on
	// or off (Fig. 5(d); the paper normalizes against 0.231 kWh). Charged at
	// the slot's electricity price. It is also exposed to policies via the
	// observation-independent accessor so they can internalize it.
	SwitchCostKWh float64

	// Tariff optionally replaces the linear electricity cost with a convex
	// nonlinear one (§2.1): the slot's electricity cost becomes
	// w(t)·Tariff.Cost(grid). Nil means the paper's default linear tariff.
	Tariff dcmodel.Tariff

	// MaxPowerKW and MaxDelayCost are the optional §3.1 per-slot
	// constraints; configurations violating them are rejected by the
	// engine. Zero disables.
	MaxPowerKW   float64
	MaxDelayCost float64

	// NetworkDelaySec is the optional time-varying mean network delay
	// between users and the data center (§2.3): it adds λ(t)·T_net(t) to
	// the recorded delay cost. Being decision-independent it does not
	// change any policy's optimum, only the accounting. Nil disables.
	NetworkDelaySec *trace.Trace
}

// Validate reports whether the scenario is well formed.
func (sc *Scenario) Validate() error {
	if err := sc.Server.Validate(); err != nil {
		return err
	}
	if sc.N <= 0 {
		return fmt.Errorf("sim: fleet size %d", sc.N)
	}
	if sc.Gamma <= 0 || sc.Gamma >= 1 {
		return fmt.Errorf("sim: gamma %v outside (0,1)", sc.Gamma)
	}
	if sc.PUE < 1 {
		return fmt.Errorf("sim: PUE %v below 1", sc.PUE)
	}
	if sc.Beta < 0 {
		return fmt.Errorf("sim: negative beta %v", sc.Beta)
	}
	if sc.Slots <= 0 {
		return fmt.Errorf("sim: horizon %d", sc.Slots)
	}
	if sc.Workload == nil || sc.Workload.Len() < sc.Slots {
		return errors.New("sim: workload trace missing or shorter than horizon")
	}
	if sc.Price == nil || sc.Price.Len() < sc.Slots {
		return errors.New("sim: price trace missing or shorter than horizon")
	}
	if sc.Portfolio == nil {
		return errors.New("sim: missing renewable portfolio")
	}
	if err := sc.Portfolio.Validate(sc.Slots); err != nil {
		return err
	}
	if sc.Overestimate != 0 && sc.Overestimate < 1 {
		return fmt.Errorf("sim: overestimation factor %v below 1", sc.Overestimate)
	}
	if sc.SwitchCostKWh < 0 {
		return fmt.Errorf("sim: negative switching cost")
	}
	if sc.MaxPowerKW < 0 || sc.MaxDelayCost < 0 {
		return fmt.Errorf("sim: negative per-slot constraint")
	}
	if sc.NetworkDelaySec != nil && sc.NetworkDelaySec.Len() < sc.Slots {
		return errors.New("sim: network-delay trace shorter than horizon")
	}
	maxLambda := stats.MaxOf(sc.Workload.Values[:sc.Slots])
	if maxLambda > sc.Capacity() {
		return fmt.Errorf("sim: peak workload %v exceeds usable capacity %v", maxLambda, sc.Capacity())
	}
	return nil
}

// Capacity returns the γ-discounted top-speed fleet capacity in RPS.
func (sc *Scenario) Capacity() float64 {
	return sc.Gamma * float64(sc.N) * sc.Server.MaxRate()
}

// Observe builds the (possibly overestimated) observation for slot t.
func (sc *Scenario) Observe(t int) Observation {
	lambda := sc.Workload.Values[t]
	if sc.Overestimate > 1 {
		lambda = math.Min(lambda*sc.Overestimate, sc.Capacity())
	}
	return Observation{
		Slot:           t,
		LambdaRPS:      lambda,
		OnsiteKW:       sc.Portfolio.OnsiteKW.Values[t],
		PriceUSDPerKWh: sc.Price.Values[t],
	}
}

// SlotRecord is the full accounting of one operated slot.
type SlotRecord struct {
	Slot           int
	LambdaRPS      float64
	PriceUSDPerKWh float64
	OnsiteKW       float64
	OffsiteKWh     float64

	Speed  int
	Active int

	PowerKW        float64
	GridKWh        float64
	ElectricityUSD float64
	DelayCost      float64
	DelayUSD       float64
	SwitchUSD      float64
	TotalUSD       float64

	// DeficitKWh is this slot's budget overrun y(t) − α·f(t) − z (can be
	// negative); its running average is the paper's "carbon deficit".
	DeficitKWh float64
}

// Result is a completed run.
type Result struct {
	Policy  string
	Records []SlotRecord
}

// ErrOverload is returned when a policy's configuration cannot legally
// carry the slot's true arrivals (the paper's model never drops workload).
var ErrOverload = errors.New("sim: configuration cannot carry the offered load")

// Run drives the policy over the scenario's horizon.
func Run(sc *Scenario, p Policy) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Policy: p.Name(), Records: make([]SlotRecord, 0, sc.Slots)}
	prevActive := 0
	zPerSlot := sc.Portfolio.RECPerSlotKWh(sc.Slots)
	for t := 0; t < sc.Slots; t++ {
		obs := sc.Observe(t)
		cfg, err := p.Decide(obs)
		if err != nil {
			return nil, fmt.Errorf("sim: slot %d: %w", t, err)
		}
		rec, err := sc.operate(t, cfg, prevActive, zPerSlot)
		if err != nil {
			return nil, fmt.Errorf("sim: slot %d: %w", t, err)
		}
		res.Records = append(res.Records, rec)
		p.Observe(Feedback{
			Slot:       t,
			GridKWh:    rec.GridKWh,
			OffsiteKWh: rec.OffsiteKWh,
			TotalUSD:   rec.TotalUSD,
		})
		prevActive = cfg.Active
	}
	return res, nil
}

// operate charges one slot of the given configuration against the true
// environment.
func (sc *Scenario) operate(t int, cfg Config, prevActive int, zPerSlot float64) (SlotRecord, error) {
	lambda := sc.Workload.Values[t]
	price := sc.Price.Values[t]
	onsite := sc.Portfolio.OnsiteKW.Values[t]
	offsite := sc.Portfolio.OffsiteKWh.Values[t]

	rec := SlotRecord{
		Slot: t, LambdaRPS: lambda, PriceUSDPerKWh: price,
		OnsiteKW: onsite, OffsiteKWh: offsite,
		Speed: cfg.Speed, Active: cfg.Active,
	}
	if cfg.Active < 0 || cfg.Active > sc.N {
		return rec, fmt.Errorf("%w: active=%d of %d", ErrOverload, cfg.Active, sc.N)
	}
	if cfg.Speed < 0 || cfg.Speed > sc.Server.NumSpeeds() {
		return rec, fmt.Errorf("sim: speed index %d out of range", cfg.Speed)
	}
	if lambda > 0 {
		if cfg.Active == 0 || cfg.Speed == 0 {
			return rec, ErrOverload
		}
		perServer := lambda / float64(cfg.Active)
		if perServer > sc.Gamma*sc.Server.Rate(cfg.Speed)*(1+1e-9) {
			return rec, fmt.Errorf("%w: per-server load %v exceeds γ·x = %v",
				ErrOverload, perServer, sc.Gamma*sc.Server.Rate(cfg.Speed))
		}
	}
	if cfg.Active > 0 && cfg.Speed > 0 {
		g := dcmodel.Group{Type: sc.Server, N: cfg.Active}
		rec.PowerKW = sc.PUE * g.PowerKW(cfg.Speed, lambda)
		rec.DelayCost = g.DelayCost(cfg.Speed, lambda)
	}
	if sc.MaxPowerKW > 0 && rec.PowerKW > sc.MaxPowerKW*(1+1e-9) {
		return rec, fmt.Errorf("sim: power %v kW exceeds the peak-power cap %v", rec.PowerKW, sc.MaxPowerKW)
	}
	if sc.MaxDelayCost > 0 && rec.DelayCost > sc.MaxDelayCost*(1+1e-9) {
		return rec, fmt.Errorf("sim: delay cost %v exceeds the cap %v", rec.DelayCost, sc.MaxDelayCost)
	}
	if sc.NetworkDelaySec != nil {
		rec.DelayCost += lambda * sc.NetworkDelaySec.Values[t]
	}
	rec.GridKWh = math.Max(0, rec.PowerKW-onsite)
	if sc.Tariff != nil {
		rec.ElectricityUSD = price * sc.Tariff.Cost(rec.GridKWh)
	} else {
		rec.ElectricityUSD = price * rec.GridKWh
	}
	rec.DelayUSD = sc.Beta * rec.DelayCost
	rec.SwitchUSD = price * sc.SwitchCostKWh * math.Abs(float64(cfg.Active-prevActive))
	rec.TotalUSD = rec.ElectricityUSD + rec.DelayUSD + rec.SwitchUSD
	rec.DeficitKWh = rec.GridKWh - sc.Portfolio.Alpha*offsite - zPerSlot
	return rec, nil
}

// Summary aggregates a run for reporting.
type Summary struct {
	Policy string
	Slots  int

	AvgHourlyCostUSD    float64
	AvgElectricityUSD   float64
	AvgDelayUSD         float64
	AvgSwitchUSD        float64
	TotalGridKWh        float64
	TotalEnergyKWh      float64 // facility consumption including on-site-covered power
	AvgDeficitKWh       float64 // average hourly carbon deficit
	FinalRunningDeficit float64 // cumulative deficit at the end (can be negative)
	BudgetKWh           float64
	BudgetUsedFraction  float64 // grid usage / budget: ≤ 1 means carbon neutral

	// ShortfallKWh is the grid energy beyond the budget that would have to
	// be offset by buying extra RECs at the end of the period — the §4.3
	// remedy for the bounded neutrality deviation ("data centers may
	// purchase additional RECs at the end of a budgeting period to offset
	// the remaining electricity usage"). Zero when neutral.
	ShortfallKWh float64
	// TrueUpUSD prices the shortfall at recPriceUSDPerKWh (see
	// SummarizeWithTrueUp); zero in plain Summarize.
	TrueUpUSD float64
}

// Summarize computes the run's aggregates against the scenario's budget.
func Summarize(sc *Scenario, res *Result) Summary {
	s := Summary{Policy: res.Policy, Slots: len(res.Records)}
	var cost, elec, delay, sw, grid, energy, deficit float64
	for _, r := range res.Records {
		cost += r.TotalUSD
		elec += r.ElectricityUSD
		delay += r.DelayUSD
		sw += r.SwitchUSD
		grid += r.GridKWh
		energy += r.PowerKW
		deficit += r.DeficitKWh
	}
	n := float64(len(res.Records))
	if n == 0 {
		return s
	}
	s.AvgHourlyCostUSD = cost / n
	s.AvgElectricityUSD = elec / n
	s.AvgDelayUSD = delay / n
	s.AvgSwitchUSD = sw / n
	s.TotalGridKWh = grid
	s.TotalEnergyKWh = energy
	s.AvgDeficitKWh = deficit / n
	s.FinalRunningDeficit = deficit
	s.BudgetKWh = sc.Portfolio.BudgetKWh(sc.Slots)
	if s.BudgetKWh > 0 {
		s.BudgetUsedFraction = grid / s.BudgetKWh
	}
	if grid > s.BudgetKWh {
		s.ShortfallKWh = grid - s.BudgetKWh
	}
	return s
}

// SummarizeWithTrueUp is Summarize plus the §4.3 end-of-period REC
// purchase: any budget shortfall is priced at recPriceUSDPerKWh and folded
// into TrueUpUSD (and, amortized per slot, into AvgHourlyCostUSD), making
// every policy exactly carbon neutral at a cost.
func SummarizeWithTrueUp(sc *Scenario, res *Result, recPriceUSDPerKWh float64) Summary {
	s := Summarize(sc, res)
	if recPriceUSDPerKWh < 0 {
		recPriceUSDPerKWh = 0
	}
	s.TrueUpUSD = s.ShortfallKWh * recPriceUSDPerKWh
	if s.Slots > 0 {
		s.AvgHourlyCostUSD += s.TrueUpUSD / float64(s.Slots)
	}
	return s
}

// Series extracts one metric from the records.
func (r *Result) Series(f func(SlotRecord) float64) []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = f(rec)
	}
	return out
}

// CostSeries returns the per-slot total cost.
func (r *Result) CostSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.TotalUSD })
}

// DeficitSeries returns the per-slot carbon deficit.
func (r *Result) DeficitSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.DeficitKWh })
}

// GridSeries returns the per-slot grid energy draw.
func (r *Result) GridSeries() []float64 {
	return r.Series(func(rec SlotRecord) float64 { return rec.GridKWh })
}
