package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/renewable"
	"repro/internal/trace"
)

// fixedPolicy always returns the same configuration.
type fixedPolicy struct {
	cfg      Config
	observed []Feedback
}

func (f *fixedPolicy) Name() string { return "fixed" }
func (f *fixedPolicy) Decide(Observation) (Config, error) {
	return f.cfg, nil
}
func (f *fixedPolicy) Observe(fb Feedback) { f.observed = append(f.observed, fb) }

func testScenario(slots int) *Scenario {
	return &Scenario{
		Server: dcmodel.Opteron(), N: 100, Gamma: 0.95, PUE: 1, Beta: 0.01,
		Workload: trace.Constant("w", 300, slots),
		Price:    trace.Constant("p", 0.05, slots),
		Portfolio: &renewable.Portfolio{
			OnsiteKW:   trace.Constant("r", 2, slots),
			OffsiteKWh: trace.Constant("f", 3, slots),
			RECsKWh:    float64(slots), // z = 1 kWh per slot
			Alpha:      1,
		},
		Slots: slots,
	}
}

func TestRunBasicAccounting(t *testing.T) {
	sc := testScenario(10)
	p := &fixedPolicy{cfg: Config{Speed: 4, Active: 50}}
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("records = %d", len(res.Records))
	}
	r := res.Records[0]
	// Power: 50 servers, λ=300 → per-server 6: 50·0.140 + 0.091·300/10 = 9.73 kW.
	if math.Abs(r.PowerKW-9.73) > 1e-9 {
		t.Errorf("power = %v, want 9.73", r.PowerKW)
	}
	if math.Abs(r.GridKWh-(9.73-2)) > 1e-9 {
		t.Errorf("grid = %v", r.GridKWh)
	}
	if math.Abs(r.ElectricityUSD-0.05*7.73) > 1e-9 {
		t.Errorf("electricity = %v", r.ElectricityUSD)
	}
	// Delay: 50 · 6/(10−6) = 75.
	if math.Abs(r.DelayCost-75) > 1e-9 {
		t.Errorf("delay = %v, want 75", r.DelayCost)
	}
	// Deficit: 7.73 − 1·3 − 1 = 3.73.
	if math.Abs(r.DeficitKWh-3.73) > 1e-9 {
		t.Errorf("deficit = %v, want 3.73", r.DeficitKWh)
	}
	if len(p.observed) != 10 {
		t.Fatalf("policy observed %d feedbacks", len(p.observed))
	}
	if p.observed[0].GridKWh != r.GridKWh || p.observed[0].OffsiteKWh != 3 {
		t.Error("feedback mismatch")
	}
}

func TestRunSwitchingCost(t *testing.T) {
	sc := testScenario(3)
	sc.SwitchCostKWh = 0.1
	p := &fixedPolicy{cfg: Config{Speed: 4, Active: 60}}
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: 60 servers toggled on from 0 → 60·0.1·0.05 = 0.30 $.
	if math.Abs(res.Records[0].SwitchUSD-0.30) > 1e-9 {
		t.Errorf("first-slot switch cost = %v", res.Records[0].SwitchUSD)
	}
	// Steady state: no toggles.
	if res.Records[1].SwitchUSD != 0 {
		t.Errorf("steady-state switch cost = %v", res.Records[1].SwitchUSD)
	}
}

func TestRunOverloadDetected(t *testing.T) {
	sc := testScenario(5)
	for _, cfg := range []Config{
		{Speed: 4, Active: 10}, // per-server 30 > γ·10
		{Speed: 0, Active: 50}, // off with load
		{Speed: 4, Active: 0},  // nobody on
	} {
		_, err := Run(sc, &fixedPolicy{cfg: cfg})
		if !errors.Is(err, ErrOverload) {
			t.Errorf("cfg %+v: want ErrOverload, got %v", cfg, err)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	sc := testScenario(5)
	if _, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 9, Active: 50}}); err == nil {
		t.Error("bad speed accepted")
	}
	if _, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 101}}); err == nil {
		t.Error("active > N accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"bad fleet", func(s *Scenario) { s.N = 0 }},
		{"bad gamma", func(s *Scenario) { s.Gamma = 1 }},
		{"bad pue", func(s *Scenario) { s.PUE = 0.9 }},
		{"neg beta", func(s *Scenario) { s.Beta = -1 }},
		{"no slots", func(s *Scenario) { s.Slots = 0 }},
		{"nil workload", func(s *Scenario) { s.Workload = nil }},
		{"short workload", func(s *Scenario) { s.Workload = trace.Constant("w", 1, 3) }},
		{"nil price", func(s *Scenario) { s.Price = nil }},
		{"nil portfolio", func(s *Scenario) { s.Portfolio = nil }},
		{"phi<1", func(s *Scenario) { s.Overestimate = 0.5 }},
		{"neg switch", func(s *Scenario) { s.SwitchCostKWh = -1 }},
		{"overloaded", func(s *Scenario) { s.Workload = trace.Constant("w", 1e9, s.Slots) }},
	}
	for _, tc := range cases {
		sc := testScenario(10)
		tc.mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if err := testScenario(10).Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestOverestimationCladsObservationOnly(t *testing.T) {
	sc := testScenario(5)
	sc.Overestimate = 1.2
	obs := sc.Observe(0)
	if math.Abs(obs.LambdaRPS-360) > 1e-9 {
		t.Errorf("overestimated λ = %v, want 360", obs.LambdaRPS)
	}
	// Costs must use the true λ.
	p := &fixedPolicy{cfg: Config{Speed: 4, Active: 60}}
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].LambdaRPS != 300 {
		t.Errorf("recorded λ = %v, want true 300", res.Records[0].LambdaRPS)
	}
	// Clamped to capacity.
	sc.Overestimate = 100
	if got := sc.Observe(0).LambdaRPS; got > sc.Capacity() {
		t.Errorf("overestimate not clamped: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	sc := testScenario(10)
	p := &fixedPolicy{cfg: Config{Speed: 4, Active: 50}}
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(sc, res)
	if s.Slots != 10 || s.Policy != "fixed" {
		t.Errorf("summary header wrong: %+v", s)
	}
	wantGrid := 7.73 * 10
	if math.Abs(s.TotalGridKWh-wantGrid) > 1e-6 {
		t.Errorf("TotalGrid = %v, want %v", s.TotalGridKWh, wantGrid)
	}
	if math.Abs(s.BudgetKWh-(30+10)) > 1e-9 { // α(Σf + Z·(10/slots)) wait: Z is full-period
		t.Errorf("budget = %v", s.BudgetKWh)
	}
	if math.Abs(s.AvgHourlyCostUSD-(s.AvgElectricityUSD+s.AvgDelayUSD+s.AvgSwitchUSD)) > 1e-9 {
		t.Error("cost components do not add up")
	}
	if math.Abs(s.BudgetUsedFraction-wantGrid/s.BudgetKWh) > 1e-9 {
		t.Error("BudgetUsedFraction inconsistent")
	}
}

func TestSeriesExtraction(t *testing.T) {
	sc := testScenario(4)
	res, err := Run(sc, &fixedPolicy{cfg: Config{Speed: 4, Active: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostSeries()) != 4 || len(res.DeficitSeries()) != 4 || len(res.GridSeries()) != 4 {
		t.Error("series lengths wrong")
	}
	if res.CostSeries()[0] != res.Records[0].TotalUSD {
		t.Error("cost series mismatch")
	}
}

func TestZeroLoadSlots(t *testing.T) {
	sc := testScenario(5)
	sc.Workload = trace.Constant("w", 0, 5)
	p := &fixedPolicy{cfg: Config{Speed: 0, Active: 0}}
	res, err := Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Records[0]
	if r.PowerKW != 0 || r.DelayCost != 0 || r.TotalUSD != 0 {
		t.Errorf("idle slot not free: %+v", r)
	}
	// Deficit can be negative (surplus).
	if r.DeficitKWh >= 0 {
		t.Errorf("idle deficit = %v, want negative", r.DeficitKWh)
	}
}
