package sim_test

// Failed-step semantics: a rejected Step must leave the engine parked at
// the failed slot with no record appended and no observers fired, and a
// successful retry must continue the run as if the failure never happened.
// Together with the policies' commit-in-Observe discipline this pins the
// state-desync bugfix: a policy that speculates in Decide (COCA's
// switching-cost anchor) cannot drift when a slot is rejected and retried.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// sabotagePolicy wraps an inner policy and corrupts its configuration at
// one chosen slot (an over-fleet active count the engine must reject).
type sabotagePolicy struct {
	inner  sim.Policy
	failAt int
	fleet  int
	armed  bool
}

func (s *sabotagePolicy) Name() string { return s.inner.Name() }

func (s *sabotagePolicy) Decide(obs sim.Observation) (sim.Config, error) {
	cfg, err := s.inner.Decide(obs)
	if err != nil {
		return cfg, err
	}
	if s.armed && obs.Slot == s.failAt {
		s.armed = false
		return sim.Config{Speed: cfg.Speed, Active: s.fleet + 1}, nil
	}
	return cfg, nil
}

func (s *sabotagePolicy) Observe(fb sim.Feedback) { s.inner.Observe(fb) }

func buildCoca(t *testing.T, sc *sim.Scenario) *core.Policy {
	t.Helper()
	p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e4, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEngineFailedStepLeavesStateUntouched(t *testing.T) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 3 * 24, N: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sc.SwitchCostKWh = 0.231 // make the prevActive anchor cost-relevant

	// Reference: a clean run with no failures.
	clean, err := sim.Run(sc, buildCoca(t, sc))
	if err != nil {
		t.Fatal(err)
	}

	// Sabotaged run: the policy returns an illegal config at failAt once.
	const failAt = 7
	var seen []int
	observer := func(rec sim.SlotRecord) { seen = append(seen, rec.Slot) }
	sab := &sabotagePolicy{inner: buildCoca(t, sc), failAt: failAt, fleet: sc.N, armed: true}
	e, err := sim.NewEngine(sc, sab, observer)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < failAt; i++ {
		if err := e.Step(); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}

	if err := e.Step(); err == nil {
		t.Fatal("sabotaged step did not fail")
	}
	if got := e.Slot(); got != failAt {
		t.Fatalf("engine advanced to slot %d past the failed slot %d", got, failAt)
	}
	if got := len(e.Result().Records); got != failAt {
		t.Fatalf("failed step appended a record: %d records, want %d", got, failAt)
	}
	if got := len(seen); got != failAt {
		t.Fatalf("failed step notified observers: %d notifications, want %d", got, failAt)
	}

	// Retry (the sabotage disarmed itself) and run to completion.
	for !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatalf("slot %d retry/continue: %v", e.Slot(), err)
		}
	}

	// Every settled slot was observed exactly once, in order.
	if len(seen) != sc.Slots {
		t.Fatalf("observed %d slots, want %d", len(seen), sc.Slots)
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("observation %d was slot %d", i, s)
		}
	}
	// The recovered run must be bit-for-bit identical to the clean run: the
	// rejected slot left neither the engine nor the policy (queue,
	// switching anchor) with any trace of the failure.
	if !reflect.DeepEqual(clean.Records, e.Result().Records) {
		for i := range clean.Records {
			if clean.Records[i] != e.Result().Records[i] {
				t.Fatalf("slot %d diverged after retry:\nclean: %+v\nretry: %+v",
					i, clean.Records[i], e.Result().Records[i])
			}
		}
		t.Fatal("records diverged after retry")
	}
}

// TestEngineFailedStepCapRejection covers the other rejection path: a slot
// rejected by the §3.1 power cap (Ledger.CheckCaps) rather than by the
// overload guard, then retried after the cap is relaxed.
func TestEngineFailedStepCapRejection(t *testing.T) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 2 * 24, N: 80, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sc.SwitchCostKWh = 0.231

	clean, err := sim.Run(sc, buildCoca(t, sc))
	if err != nil {
		t.Fatal(err)
	}

	const failAt = 11
	e, err := sim.NewEngine(sc, buildCoca(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < failAt; i++ {
		if err := e.Step(); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// Impose an impossible transient power cap: the engine reads the
	// scenario's caps into each slot's Ledger, so this rejects the step
	// without the policy (whose config snapshot has no cap) knowing.
	sc.MaxPowerKW = 1e-6
	if err := e.Step(); err == nil {
		t.Fatal("capped step did not fail")
	}
	if e.Slot() != failAt || len(e.Result().Records) != failAt {
		t.Fatalf("capped failure moved engine state: slot %d, %d records",
			e.Slot(), len(e.Result().Records))
	}
	sc.MaxPowerKW = 0 // relax and retry
	for !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatalf("slot %d retry/continue: %v", e.Slot(), err)
		}
	}
	if !reflect.DeepEqual(clean.Records, e.Result().Records) {
		t.Fatal("cap-rejected-then-retried run diverged from the clean run")
	}
}
