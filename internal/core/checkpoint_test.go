package core

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
)

func ckptCluster(nGroups int) *dcmodel.Cluster {
	groups := make([]dcmodel.Group, nGroups)
	for i := range groups {
		groups[i] = dcmodel.Group{Type: dcmodel.Opteron(), N: 5}
	}
	return &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
}

func ckptController(t *testing.T, slots int) *Controller {
	t.Helper()
	c, err := NewController(ckptCluster(3), 0.02, lyapunov.ConstantV(5e5, 2, slots/2),
		1.0, 3.0, &gsd.Solver{Opts: gsd.Options{Delta: 1e4, MaxIters: 200, Seed: 23}})
	if err != nil {
		t.Fatal(err)
	}
	c.SwitchCostKWh = 0.231
	return c
}

// ckptEnv synthesizes a deterministic slot environment.
func ckptEnv(t int) (SlotEnv, float64) {
	ft := float64(t)
	env := SlotEnv{
		LambdaRPS:      30 + 15*math.Sin(ft/3),
		OnsiteKW:       math.Max(0, 2*math.Sin(ft/5)),
		PriceUSDPerKWh: 0.06 + 0.02*math.Cos(ft/4),
	}
	return env, math.Max(0, 1.5+math.Sin(ft/6))
}

// driveController steps-and-settles the controller over [from, to) and
// returns the outcomes.
func driveController(t *testing.T, c *Controller, from, to int) []SlotOutcome {
	t.Helper()
	out := make([]SlotOutcome, 0, to-from)
	for i := from; i < to; i++ {
		env, offsite := ckptEnv(i)
		o, err := c.Step(env)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		c.Settle(o, offsite)
		out = append(out, o)
	}
	return out
}

// TestControllerCheckpointResumeParity is the acceptance invariant at the
// controller layer: a run interrupted at slot N and restored through a
// JSON round-trip produces bit-identical decisions, costs and deficit-queue
// trajectory to an uninterrupted run.
func TestControllerCheckpointResumeParity(t *testing.T) {
	const slots = 12

	want := driveController(t, ckptController(t, slots), 0, slots)

	first := ckptController(t, slots)
	got := driveController(t, first, 0, slots/2)
	ck, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var restoredCk ControllerCheckpoint
	if err := json.Unmarshal(blob, &restoredCk); err != nil {
		t.Fatal(err)
	}
	second := ckptController(t, slots)
	if err := second.RestoreFrom(restoredCk); err != nil {
		t.Fatal(err)
	}
	if second.Slot() != slots/2 {
		t.Fatalf("restored slot cursor %d, want %d", second.Slot(), slots/2)
	}
	if second.Queue() != first.Queue() {
		t.Fatalf("restored queue %v, want %v", second.Queue(), first.Queue())
	}
	got = append(got, driveController(t, second, slots/2, slots)...)

	if len(got) != len(want) {
		t.Fatalf("%d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("slot %d diverges after restore:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestControllerScheduleExhausted pins the daemon-facing failure mode: a
// Step past the schedule horizon returns ErrScheduleExhausted instead of
// panicking inside VSchedule.
func TestControllerScheduleExhausted(t *testing.T) {
	const slots = 4
	c := ckptController(t, slots)
	driveController(t, c, 0, slots)
	env, _ := ckptEnv(slots)
	if _, err := c.Step(env); !errors.Is(err, ErrScheduleExhausted) {
		t.Fatalf("Step past horizon = %v, want ErrScheduleExhausted", err)
	}
}

func TestControllerCheckpointRejectsInvalid(t *testing.T) {
	c := ckptController(t, 12)
	driveController(t, c, 0, 3)
	valid, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*ControllerCheckpoint){
		"version":     func(ck *ControllerCheckpoint) { ck.Version = 0 },
		"slot":        func(ck *ControllerCheckpoint) { ck.Slot = -1 },
		"prev-active": func(ck *ControllerCheckpoint) { ck.PrevActive = -2 },
		"queue":       func(ck *ControllerCheckpoint) { ck.Queue.Alpha = -1 },
		"solver-blob": func(ck *ControllerCheckpoint) { ck.Solver = []byte("{") },
	}
	for name, mutate := range cases {
		ck := valid
		mutate(&ck)
		if err := ckptController(t, 12).RestoreFrom(ck); err == nil {
			t.Errorf("%s: RestoreFrom accepted an invalid checkpoint", name)
		}
	}
}

// TestPolicyCheckpointRoundTrip covers the sim-side policy snapshot; the
// full engine-resume parity lives in internal/simtest.
func TestPolicyCheckpointRoundTrip(t *testing.T) {
	p, err := New(Config{
		Server: dcmodel.Opteron(), N: 50, Gamma: 0.95, PUE: 1, Beta: 0.02,
		Schedule: lyapunov.ConstantV(5e5, 1, 24), Alpha: 1, RECPerSlotKWh: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.queue.Update(100, 10)
	p.prevActive, p.pendingActive = 7, 7

	blob, err := json.Marshal(p.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	var ck PolicyCheckpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		t.Fatal(err)
	}
	q, err := New(Config{
		Server: dcmodel.Opteron(), N: 50, Gamma: 0.95, PUE: 1, Beta: 0.02,
		Schedule: lyapunov.ConstantV(5e5, 1, 24), Alpha: 1, RECPerSlotKWh: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.RestoreFrom(ck); err != nil {
		t.Fatal(err)
	}
	if q.Queue() != p.Queue() || q.prevActive != 7 || q.pendingActive != 7 {
		t.Fatalf("restored policy state queue=%v prev=%d pending=%d", q.Queue(), q.prevActive, q.pendingActive)
	}
	if err := q.RestoreFrom(PolicyCheckpoint{Version: 2, Queue: ck.Queue}); err == nil {
		t.Fatal("RestoreFrom accepted an unknown version")
	}
}
