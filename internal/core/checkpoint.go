package core

// Checkpoint/restore of controller state: both COCA forms (the sim-engine
// Policy and the group-level Controller) expose their cross-slot state —
// deficit queue, switching-cost anchor, slot cursor, and the P3 solver's
// evolved state — as explicit, versioned snapshot values with exact JSON
// round-trips, so a controller interrupted mid-year can be restarted and
// continue bit-for-bit.

import (
	"encoding/json"
	"fmt"

	"repro/internal/lyapunov"
)

// SolverState is the optional checkpoint surface of a P3 solver. Solvers
// that evolve cross-slot state (gsd.Solver: the advancing seed and the
// warm-start vector) implement it so Controller checkpoints can carry that
// state opaquely; stateless solvers simply don't, and the controller
// checkpoint omits the solver blob.
type SolverState interface {
	// CheckpointState returns the solver's evolved state as JSON.
	CheckpointState() ([]byte, error)
	// RestoreState replaces the solver's evolved state from JSON.
	RestoreState([]byte) error
}

// ControllerCheckpointVersion is the current ControllerCheckpoint schema
// version.
const ControllerCheckpointVersion = 1

// ControllerCheckpoint is the versioned snapshot of a Controller: the slot
// cursor, the settled switching-cost anchor, the deficit queue, and (when
// the plugged solver implements SolverState) the solver's evolved state.
// Snapshots are taken between slots — after Settle, before the next Step —
// so there is no pending speculative state to capture.
type ControllerCheckpoint struct {
	Version    int                      `json:"version"`
	Slot       int                      `json:"slot"`
	PrevActive int                      `json:"prev_active"`
	Queue      lyapunov.QueueCheckpoint `json:"queue"`
	Solver     json.RawMessage          `json:"solver,omitempty"`
}

// Checkpoint snapshots the controller's cross-slot state.
func (c *Controller) Checkpoint() (ControllerCheckpoint, error) {
	ck := ControllerCheckpoint{
		Version:    ControllerCheckpointVersion,
		Slot:       c.slot,
		PrevActive: c.prevActive,
		Queue:      c.queue.Checkpoint(),
	}
	if ss, ok := c.Solver.(SolverState); ok {
		blob, err := ss.CheckpointState()
		if err != nil {
			return ControllerCheckpoint{}, fmt.Errorf("core: solver checkpoint: %w", err)
		}
		ck.Solver = blob
	}
	return ck, nil
}

// RestoreFrom replaces the controller's cross-slot state with the
// snapshot. The cluster, schedule and solver configuration are not part of
// the snapshot — the caller must rebuild the controller with the same
// construction parameters, then restore; a snapshot carrying solver state
// for a solver that cannot accept it is an error rather than a silent
// divergence.
func (c *Controller) RestoreFrom(ck ControllerCheckpoint) error {
	if ck.Version != ControllerCheckpointVersion {
		return fmt.Errorf("core: controller checkpoint version %d, want %d", ck.Version, ControllerCheckpointVersion)
	}
	if ck.Slot < 0 {
		return fmt.Errorf("core: controller checkpoint slot %d is negative", ck.Slot)
	}
	if ck.PrevActive < 0 {
		return fmt.Errorf("core: controller checkpoint prev_active %d is negative", ck.PrevActive)
	}
	if err := c.queue.RestoreFrom(ck.Queue); err != nil {
		return err
	}
	if len(ck.Solver) > 0 {
		ss, ok := c.Solver.(SolverState)
		if !ok {
			return fmt.Errorf("core: checkpoint carries solver state but solver %T cannot restore it", c.Solver)
		}
		if err := ss.RestoreState(ck.Solver); err != nil {
			return err
		}
	}
	c.slot = ck.Slot
	c.prevActive = ck.PrevActive
	if c.queueGauge != nil {
		c.queueGauge.Set(c.queue.Len())
	}
	return nil
}

// PolicyCheckpointVersion is the current PolicyCheckpoint schema version.
const PolicyCheckpointVersion = 1

// PolicyCheckpoint is the versioned snapshot of the sim-engine COCA
// policy's cross-slot state: the deficit queue and the settled
// switching-cost anchor. Snapshots are taken at slot boundaries (after
// Observe), where the speculative pendingActive has been committed, so the
// anchor alone reproduces the policy's state. Tracing knobs (RecordQueue,
// SetV, the queue gauge) are configuration, not state, and are left to the
// caller to re-apply.
type PolicyCheckpoint struct {
	Version    int                      `json:"version"`
	Queue      lyapunov.QueueCheckpoint `json:"queue"`
	PrevActive int                      `json:"prev_active"`
}

// Checkpoint snapshots the policy's cross-slot state.
func (p *Policy) Checkpoint() PolicyCheckpoint {
	return PolicyCheckpoint{
		Version:    PolicyCheckpointVersion,
		Queue:      p.queue.Checkpoint(),
		PrevActive: p.prevActive,
	}
}

// RestoreFrom replaces the policy's cross-slot state with the snapshot.
func (p *Policy) RestoreFrom(ck PolicyCheckpoint) error {
	if ck.Version != PolicyCheckpointVersion {
		return fmt.Errorf("core: policy checkpoint version %d, want %d", ck.Version, PolicyCheckpointVersion)
	}
	if ck.PrevActive < 0 {
		return fmt.Errorf("core: policy checkpoint prev_active %d is negative", ck.PrevActive)
	}
	if err := p.queue.RestoreFrom(ck.Queue); err != nil {
		return err
	}
	p.prevActive = ck.PrevActive
	p.pendingActive = ck.PrevActive
	if p.queueGauge != nil {
		p.queueGauge.Set(p.queue.Len())
	}
	return nil
}
