package core

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/trace"
)

func buildScenario(t *testing.T, slots int) *sim.Scenario {
	t.Helper()
	sc, _, err := simtest.Build(simtest.Options{Slots: slots, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func runCOCA(t *testing.T, sc *sim.Scenario, sched lyapunov.VSchedule) (*Policy, sim.Summary) {
	t.Helper()
	p, err := New(FromScenario(sc, sched))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sim.Summarize(sc, res)
}

func TestNewValidation(t *testing.T) {
	sc := buildScenario(t, 48)
	good := FromScenario(sc, lyapunov.ConstantV(100, 1, 48))
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.N = 0
	if _, err := New(bad); err == nil {
		t.Error("zero fleet accepted")
	}
	bad = good
	bad.Beta = -1
	if _, err := New(bad); err == nil {
		t.Error("negative beta accepted")
	}
	bad = good
	bad.Schedule = lyapunov.VSchedule{T: 0}
	if _, err := New(bad); err == nil {
		t.Error("bad schedule accepted")
	}
}

func TestCostDecreasesWithV(t *testing.T) {
	// Fig. 2(a): greater V → COCA cares more about cost, less about carbon.
	sc := buildScenario(t, 21*24)
	_, low := runCOCA(t, sc, lyapunov.ConstantV(100, 1, sc.Slots))
	_, high := runCOCA(t, sc, lyapunov.ConstantV(1e7, 1, sc.Slots))
	if high.AvgHourlyCostUSD >= low.AvgHourlyCostUSD {
		t.Errorf("cost did not decrease with V: %v → %v",
			low.AvgHourlyCostUSD, high.AvgHourlyCostUSD)
	}
	// Fig. 2(b): deficit (energy usage) grows with V.
	if high.TotalGridKWh <= low.TotalGridKWh {
		t.Errorf("grid usage did not grow with V: %v → %v",
			low.TotalGridKWh, high.TotalGridKWh)
	}
}

func TestQueueFeedbackThrottlesUsage(t *testing.T) {
	// With a moderate V the deficit queue must keep usage at or below the
	// V→∞ (carbon-unaware-like) usage.
	sc := buildScenario(t, 21*24)
	_, mod := runCOCA(t, sc, lyapunov.ConstantV(1e4, 1, sc.Slots))
	_, inf := runCOCA(t, sc, lyapunov.ConstantV(1e10, 1, sc.Slots))
	if mod.TotalGridKWh > inf.TotalGridKWh {
		t.Errorf("queue feedback increased usage: %v > %v",
			mod.TotalGridKWh, inf.TotalGridKWh)
	}
}

func TestFrameResetClearsQueue(t *testing.T) {
	sc := buildScenario(t, 48)
	sched := lyapunov.VSchedule{T: 24, Vs: []float64{100, 100}}
	p, err := New(FromScenario(sc, sched))
	if err != nil {
		t.Fatal(err)
	}
	p.RecordQueue()
	if _, err := sim.Run(sc, p); err != nil {
		t.Fatal(err)
	}
	if len(p.QueueTrace) != 48 {
		t.Fatalf("queue trace length %d", len(p.QueueTrace))
	}
	// Decide at slot 24 resets before solving; the queue value recorded at
	// slot 24 equals the first post-reset update, which must not exceed one
	// slot's worth of deficit.
	maxOneSlot := sc.Capacity() // generous bound: one slot of peak power kWh
	if p.QueueTrace[24] > maxOneSlot {
		t.Errorf("queue after frame reset = %v, too large", p.QueueTrace[24])
	}
}

func TestQueueTraceNonNegative(t *testing.T) {
	sc := buildScenario(t, 72)
	p, err := New(FromScenario(sc, lyapunov.ConstantV(500, 1, 72)))
	if err != nil {
		t.Fatal(err)
	}
	p.RecordQueue()
	if _, err := sim.Run(sc, p); err != nil {
		t.Fatal(err)
	}
	for i, q := range p.QueueTrace {
		if q < 0 || math.IsNaN(q) {
			t.Fatalf("q[%d] = %v", i, q)
		}
	}
}

func TestVaryingVSchedule(t *testing.T) {
	// Fig. 2(c,d): quarterly V changes; verify the run completes and later
	// frames with bigger V spend more energy than the small-V opening frame.
	sc := buildScenario(t, 28*24)
	sched := lyapunov.VSchedule{T: 7 * 24, Vs: []float64{50, 5e4, 5e6, 5e4}}
	p, err := New(FromScenario(sc, sched))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	grid := res.GridSeries()
	week := func(i int) float64 {
		var s float64
		for t := i * 7 * 24; t < (i+1)*7*24; t++ {
			s += grid[t]
		}
		return s
	}
	if week(2) <= week(0)*0.9 {
		// Workload varies across weeks, so compare loosely: the V=5e6 week
		// should not use dramatically less than the V=50 week.
		t.Errorf("high-V week used %v vs low-V week %v", week(2), week(0))
	}
}

func TestSwitchingCostInternalized(t *testing.T) {
	sc := buildScenario(t, 10*24)
	sc.SwitchCostKWh = 0.0231 // 10% of a server's max hourly energy (Fig. 5d)
	pFree, err := New(FromScenario(sc, lyapunov.ConstantV(1e5, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, pFree)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Summarize(sc, res)
	// Switching-aware COCA must not toggle the whole fleet every slot: the
	// switching share of cost must stay small (the paper reports < 5% total
	// increase at this setting).
	if s.AvgSwitchUSD > 0.1*s.AvgHourlyCostUSD {
		t.Errorf("switching cost share too high: %v of %v", s.AvgSwitchUSD, s.AvgHourlyCostUSD)
	}
}

func TestControllerWithExactSolver(t *testing.T) {
	cluster := &dcmodel.Cluster{
		Groups: []dcmodel.Group{
			{Type: dcmodel.Opteron(), N: 30},
			{Type: dcmodel.Opteron(), N: 30},
		},
		Gamma: 0.95, PUE: 1,
	}
	sched := lyapunov.ConstantV(1e4, 1, 24)
	ctrl, err := NewController(cluster, 0.01, sched, 1, 1, &p3.HomogeneousSolver{})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 24; tt++ {
		out, err := ctrl.Step(SlotEnv{
			LambdaRPS:      200 + 50*math.Sin(float64(tt)),
			OnsiteKW:       1,
			PriceUSDPerKWh: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.CheckConfig(out.Solution.Speeds, out.Solution.Load); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		ctrl.Settle(out, 2)
	}
	if ctrl.Slot() != 24 {
		t.Errorf("slot counter = %d", ctrl.Slot())
	}
}

func TestControllerWithGSD(t *testing.T) {
	// The paper's full stack: COCA driving GSD on a heterogeneous cluster.
	cluster := dcmodel.HeterogeneousCluster(60, 6)
	sched := lyapunov.ConstantV(1e4, 1, 12)
	solver := &gsd.Solver{Opts: gsd.Options{Delta: 1e6, MaxIters: 400, Seed: 3}}
	ctrl, err := NewController(cluster, 0.01, sched, 1, 0.5, solver)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.FIUYear(7)
	for tt := 0; tt < 12; tt++ {
		out, err := ctrl.Step(SlotEnv{
			LambdaRPS:      wl.Values[tt] * 300,
			OnsiteKW:       0.5,
			PriceUSDPerKWh: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.CheckConfig(out.Solution.Speeds, out.Solution.Load); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		if out.Cost.TotalUSD < 0 || math.IsInf(out.Cost.TotalUSD, 0) {
			t.Fatalf("slot %d: degenerate cost %v", tt, out.Cost.TotalUSD)
		}
		ctrl.Settle(out, 0.4)
	}
}

func TestControllerValidation(t *testing.T) {
	cluster := dcmodel.PaperCluster(2)
	sched := lyapunov.ConstantV(1, 1, 10)
	if _, err := NewController(cluster, 0.01, sched, 1, 1, nil); err == nil {
		t.Error("nil solver accepted")
	}
	bad := &dcmodel.Cluster{}
	if _, err := NewController(bad, 0.01, sched, 1, 1, &p3.HomogeneousSolver{}); err == nil {
		t.Error("bad cluster accepted")
	}
}

func TestPolicyWithTariffEndToEnd(t *testing.T) {
	sc := buildScenario(t, 10*24)
	_, flat := runCOCA(t, sc, lyapunov.ConstantV(1e5, 1, sc.Slots))
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: flat.TotalGridKWh / float64(sc.Slots), Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Tariff = tariff
	_, tiered := runCOCA(t, sc, lyapunov.ConstantV(1e5, 1, sc.Slots))
	sc.Tariff = nil
	// The convex tariff raises dollar cost but COCA, internalizing it, must
	// draw no more grid energy than under the flat tariff.
	if tiered.AvgHourlyCostUSD < flat.AvgHourlyCostUSD*(1-1e-9) {
		t.Errorf("tiered cost %v below flat %v", tiered.AvgHourlyCostUSD, flat.AvgHourlyCostUSD)
	}
	if tiered.TotalGridKWh > flat.TotalGridKWh*(1+1e-9) {
		t.Errorf("tariff-aware COCA drew more energy: %v vs %v",
			tiered.TotalGridKWh, flat.TotalGridKWh)
	}
}

func TestPolicyRespectsPeakPowerEndToEnd(t *testing.T) {
	sc := buildScenario(t, 5*24)
	// First find the unconstrained peak, then cap below it.
	p, err := New(FromScenario(sc, lyapunov.ConstantV(1e6, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, r := range res.Records {
		if r.PowerKW > peak {
			peak = r.PowerKW
		}
	}
	sc.MaxPowerKW = peak * 0.9
	p2, err := New(FromScenario(sc, lyapunov.ConstantV(1e6, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	// The engine enforces the cap, so a clean run proves the policy
	// internalized it.
	res2, err := sim.Run(sc, p2)
	if err != nil {
		t.Fatalf("capped run failed: %v", err)
	}
	for _, r := range res2.Records {
		if r.PowerKW > sc.MaxPowerKW*(1+1e-9) {
			t.Fatalf("slot %d power %v exceeds cap %v", r.Slot, r.PowerKW, sc.MaxPowerKW)
		}
	}
	sc.MaxPowerKW = 0
}

func TestSetVOverride(t *testing.T) {
	sc := buildScenario(t, 48)
	p, err := New(FromScenario(sc, lyapunov.ConstantV(10, 1, 48)))
	if err != nil {
		t.Fatal(err)
	}
	obs := sc.Observe(0)
	low, err := p.Decide(obs)
	if err != nil {
		t.Fatal(err)
	}
	p.SetV(1e9)
	high, err := p.Decide(obs)
	if err != nil {
		t.Fatal(err)
	}
	// A vastly larger V weights delay more heavily relative to energy, so
	// the chosen capacity cannot shrink.
	if high.Active < low.Active {
		t.Errorf("V override ignored: active %d -> %d", low.Active, high.Active)
	}
	p.SetV(0) // restore
	back, err := p.Decide(obs)
	if err != nil {
		t.Fatal(err)
	}
	if back.Active != low.Active || back.Speed != low.Speed {
		t.Errorf("restoring the schedule changed the decision: %+v vs %+v", back, low)
	}
}
