package core

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/trace"
)

// TestControllerGSDWeekIntegration runs the paper's full heterogeneous
// stack — COCA's controller driving GSD with warm starts — for a simulated
// week and checks end-to-end invariants: feasibility every slot, finite
// costs, a live deficit queue, and energy usage bounded by the all-on
// envelope.
func TestControllerGSDWeekIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long GSD integration skipped in -short mode")
	}
	const hours = 7 * 24
	cluster := dcmodel.HeterogeneousCluster(600, 12)
	solver := &gsd.Solver{Opts: gsd.Options{
		Delta: 1e8, MaxIters: 600, Patience: 250, Seed: 5,
	}}
	// A deliberately tight allowance so the queue engages during the week.
	ctrl, err := NewController(cluster, 0.01, lyapunov.ConstantV(5e4, 1, hours), 1, 4, solver)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.FIUYear(3)
	pr := price.CAISOYear(4)
	onsite := renewable.SolarYear(5)
	offsite := renewable.WindYear(6)
	peak := 0.5 * cluster.MaxCapacityRPS()
	peakPower := cluster.PeakPowerKW()

	var totalCost, totalGrid float64
	queueEngaged := false
	for tt := 0; tt < hours; tt++ {
		out, err := ctrl.Step(SlotEnv{
			LambdaRPS:      wl.Values[tt] * peak,
			OnsiteKW:       onsite.Values[tt] * 0.1 * peakPower,
			PriceUSDPerKWh: pr.Values[tt],
		})
		if err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		if err := cluster.CheckConfig(out.Solution.Speeds, out.Solution.Load); err != nil {
			t.Fatalf("slot %d: %v", tt, err)
		}
		var load float64
		for _, l := range out.Solution.Load {
			load += l
		}
		if math.Abs(load-wl.Values[tt]*peak) > 1e-3*(1+load) {
			t.Fatalf("slot %d: served %v of %v", tt, load, wl.Values[tt]*peak)
		}
		if out.Cost.PowerKW > peakPower*(1+1e-9) {
			t.Fatalf("slot %d: power %v above the physical envelope %v", tt, out.Cost.PowerKW, peakPower)
		}
		if math.IsInf(out.Cost.TotalUSD, 0) || math.IsNaN(out.Cost.TotalUSD) {
			t.Fatalf("slot %d: cost %v", tt, out.Cost.TotalUSD)
		}
		ctrl.Settle(out, offsite.Values[tt]*2)
		if ctrl.Queue() > 0 {
			queueEngaged = true
		}
		totalCost += out.Cost.TotalUSD
		totalGrid += out.Cost.GridKWh
	}
	if !queueEngaged {
		t.Error("deficit queue never engaged despite the tight allowance")
	}
	if totalCost <= 0 || totalGrid <= 0 {
		t.Errorf("degenerate totals: cost=%v grid=%v", totalCost, totalGrid)
	}
	t.Logf("week: $%.2f total, %.0f kWh grid, final q=%.1f", totalCost, totalGrid, ctrl.Queue())
}
