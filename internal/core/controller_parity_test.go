package core_test

// Controller-vs-sim cost parity: the heterogeneous Controller and the
// homogeneous sim engine charge slots through the same dcmodel.Ledger
// kernel, so on a degenerate cluster (groups of the sim scenario's server
// type) identical decisions must produce identical cost breakdowns — with
// the full extension set engaged: SlotHours ≠ 1, a nonlinear tiered
// tariff, and a nonzero switching cost.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// scheduledPolicy replays a precomputed per-slot plan into the sim engine.
type scheduledPolicy struct{ plan []sim.Config }

func (p *scheduledPolicy) Name() string                                 { return "scheduled" }
func (p *scheduledPolicy) Decide(o sim.Observation) (sim.Config, error) { return p.plan[o.Slot], nil }
func (p *scheduledPolicy) Observe(sim.Feedback)                         {}

// scriptedSolver replays the matching cluster-level decisions into the
// Controller. The test pins next to the slot being stepped, so a retried
// Step replays the identical solution.
type scriptedSolver struct {
	sols []dcmodel.Solution
	next int
}

func (s *scriptedSolver) Solve(*dcmodel.SlotProblem) (dcmodel.Solution, error) {
	sol := s.sols[s.next]
	return dcmodel.Solution{
		Speeds: append([]int(nil), sol.Speeds...),
		Load:   append([]float64(nil), sol.Load...),
	}, nil
}

// minFeasibleSpeed returns the lowest speed level at which `active` servers
// can legally carry lambda under the γ cap.
func minFeasibleSpeed(t *testing.T, sc *sim.Scenario, active int, lambda float64) int {
	t.Helper()
	for k := 1; k <= sc.Server.NumSpeeds(); k++ {
		if lambda <= sc.Gamma*float64(active)*sc.Server.Rate(k) {
			return k
		}
	}
	t.Fatalf("no feasible speed for active=%d lambda=%v", active, lambda)
	return 0
}

// parityScenario builds a small scenario with every Ledger extension
// non-default: half-hour slots, a tiered tariff whose upper blocks are
// actually reached, and the paper's 0.231 kWh toggling cost.
func parityScenario(t *testing.T) *sim.Scenario {
	t.Helper()
	sc, _, err := simtest.Build(simtest.Options{Slots: 4 * 24, N: 60, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	sc.SlotHours = 0.5
	sc.SwitchCostKWh = 0.231

	// Size the tier boundaries off the run's own grid magnitudes so the
	// tariff is genuinely nonlinear in effect, not just in configuration.
	maxGrid := 0.0
	for ts := 0; ts < sc.Slots; ts++ {
		lambda := sc.Workload.Values[ts]
		k := minFeasibleSpeed(t, sc, sc.N, lambda)
		g := dcmodel.Group{Type: sc.Server, N: sc.N}
		grid := sc.LedgerAt(ts, 0).GridKWh(sc.PUE * g.PowerKW(k, lambda))
		if grid > maxGrid {
			maxGrid = grid
		}
	}
	if maxGrid <= 0 {
		t.Fatal("parity scenario never draws grid power")
	}
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: 0.4 * maxGrid, Mult: 1},
		{UpToKWh: 0.8 * maxGrid, Mult: 1.5},
		{UpToKWh: math.Inf(1), Mult: 2.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Tariff = tariff
	return sc
}

// runController drives a Controller over the scenario's environment with
// the scripted solutions, stepping and settling slot by slot.
func runController(t *testing.T, sc *sim.Scenario, cluster *dcmodel.Cluster, sols []dcmodel.Solution) []core.SlotOutcome {
	t.Helper()
	solver := &scriptedSolver{sols: sols}
	ctl, err := core.NewController(cluster, sc.Beta,
		lyapunov.ConstantV(1e5, 1, sc.Slots),
		sc.Portfolio.Alpha, sc.Portfolio.RECPerSlotKWh(sc.Slots), solver)
	if err != nil {
		t.Fatal(err)
	}
	ctl.SlotHours = sc.SlotHours
	ctl.Tariff = sc.Tariff
	ctl.SwitchCostKWh = sc.SwitchCostKWh

	outs := make([]core.SlotOutcome, 0, sc.Slots)
	for ts := 0; ts < sc.Slots; ts++ {
		solver.next = ts
		env := core.SlotEnv{
			LambdaRPS:      sc.Workload.Values[ts],
			OnsiteKW:       sc.Portfolio.OnsiteKW.Values[ts],
			PriceUSDPerKWh: sc.Price.Values[ts],
		}
		out, err := ctl.Step(env)
		if err != nil {
			t.Fatalf("controller slot %d: %v", ts, err)
		}
		// An abandoned Step must be repeatable bit-for-bit: state only
		// moves on Settle.
		retry, err := ctl.Step(env)
		if err != nil {
			t.Fatalf("controller retry slot %d: %v", ts, err)
		}
		if retry.Cost != out.Cost || retry.Queue != out.Queue || retry.Active != out.Active {
			t.Fatalf("slot %d: retried Step diverged: %+v vs %+v", ts, retry, out)
		}
		ctl.Settle(out, sc.Portfolio.OffsiteKWh.Values[ts])
		outs = append(outs, out)
	}
	return outs
}

// compareSlot checks one controller outcome against the sim record.
func compareSlot(t *testing.T, ts int, rec sim.SlotRecord, out core.SlotOutcome, tol float64) {
	t.Helper()
	check := func(name string, sim, ctl float64) {
		t.Helper()
		if tol == 0 {
			if sim != ctl {
				t.Fatalf("slot %d %s: sim %v != controller %v", ts, name, sim, ctl)
			}
			return
		}
		if diff := math.Abs(sim - ctl); diff > tol*math.Max(1, math.Abs(sim)) {
			t.Fatalf("slot %d %s: sim %v vs controller %v (diff %v)", ts, name, sim, ctl, diff)
		}
	}
	check("PowerKW", rec.PowerKW, out.Cost.PowerKW)
	check("EnergyKWh", rec.EnergyKWh, out.Cost.EnergyKWh)
	check("GridKWh", rec.GridKWh, out.Cost.GridKWh)
	check("ElectricityUSD", rec.ElectricityUSD, out.Cost.ElectricityUSD)
	check("DelayUSD", rec.DelayUSD, out.Cost.DelayUSD)
	check("SwitchUSD", rec.SwitchUSD, out.Cost.SwitchUSD)
	check("TotalUSD", rec.TotalUSD, out.Cost.TotalUSD)
}

// TestControllerSimCostParitySingleGroup: on a single-group cluster with
// the whole fleet active, the controller's accounting must match the sim
// engine bit for bit — including the nonzero slot-0 switching charge
// (0 → N servers), half-hour energy conversion and the tiered tariff.
func TestControllerSimCostParitySingleGroup(t *testing.T) {
	sc := parityScenario(t)

	plan := make([]sim.Config, sc.Slots)
	sols := make([]dcmodel.Solution, sc.Slots)
	for ts := 0; ts < sc.Slots; ts++ {
		lambda := sc.Workload.Values[ts]
		k := minFeasibleSpeed(t, sc, sc.N, lambda)
		plan[ts] = sim.Config{Speed: k, Active: sc.N}
		sols[ts] = dcmodel.Solution{Speeds: []int{k}, Load: []float64{lambda}}
	}

	res, err := sim.Run(sc, &scheduledPolicy{plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	cluster := &dcmodel.Cluster{
		Groups: []dcmodel.Group{{Type: sc.Server, N: sc.N}},
		Gamma:  sc.Gamma, PUE: sc.PUE,
	}
	outs := runController(t, sc, cluster, sols)

	if outs[0].Cost.SwitchUSD == 0 {
		t.Fatal("slot 0 switching charge (0 -> N) should be nonzero")
	}
	tariffBound := sc.Tariff.(*dcmodel.TieredTariff).Tiers[0].UpToKWh
	crossed := false
	queue := lyapunov.NewDeficitQueue(sc.Portfolio.Alpha, sc.Portfolio.RECPerSlotKWh(sc.Slots))
	for ts, rec := range res.Records {
		compareSlot(t, ts, rec, outs[ts], 0)
		if rec.GridKWh > tariffBound {
			crossed = true
		}
		// The controller's queue must follow the same Eq. (17) trajectory
		// as one fed directly from the sim records.
		q := queue.Update(rec.GridKWh, rec.OffsiteKWh)
		if ts+1 < len(outs) && outs[ts+1].Queue != q {
			t.Fatalf("slot %d: controller queue %v, want %v", ts+1, outs[ts+1].Queue, q)
		}
	}
	if !crossed {
		t.Fatal("tiered tariff never left its first block; test is not exercising nonlinearity")
	}
}

// TestControllerSimCostParityToggling splits the fleet into two equal
// groups and turns one off on alternating slots, mirroring a sim run whose
// active count toggles N ↔ N/2 — so nonzero switching charges appear
// throughout the run, not just at slot 0. Splitting the load across groups
// reassociates the floating-point sums, so parity is checked to 1e-9
// relative instead of bitwise.
func TestControllerSimCostParityToggling(t *testing.T) {
	sc := parityScenario(t)
	half := sc.N / 2

	plan := make([]sim.Config, sc.Slots)
	sols := make([]dcmodel.Solution, sc.Slots)
	for ts := 0; ts < sc.Slots; ts++ {
		lambda := sc.Workload.Values[ts]
		active := sc.N
		if ts%2 == 1 && lambda <= sc.Gamma*float64(half)*sc.Server.MaxRate() {
			active = half
		}
		k := minFeasibleSpeed(t, sc, active, lambda)
		plan[ts] = sim.Config{Speed: k, Active: active}
		if active == sc.N {
			sols[ts] = dcmodel.Solution{
				Speeds: []int{k, k},
				Load:   []float64{lambda / 2, lambda / 2},
			}
		} else {
			sols[ts] = dcmodel.Solution{Speeds: []int{k, 0}, Load: []float64{lambda, 0}}
		}
	}

	res, err := sim.Run(sc, &scheduledPolicy{plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	cluster := &dcmodel.Cluster{
		Groups: []dcmodel.Group{
			{Type: sc.Server, N: half},
			{Type: sc.Server, N: sc.N - half},
		},
		Gamma: sc.Gamma, PUE: sc.PUE,
	}
	outs := runController(t, sc, cluster, sols)

	switches := 0
	for ts, rec := range res.Records {
		compareSlot(t, ts, rec, outs[ts], 1e-9)
		if ts > 0 && outs[ts].Cost.SwitchUSD > 0 {
			switches++
		}
	}
	if switches == 0 {
		t.Fatal("toggling run never charged mid-run switching cost")
	}
}
