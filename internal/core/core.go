// Package core implements COCA (Algorithm 1), the paper's primary
// contribution: an online algorithm that minimizes data-center operational
// cost while satisfying long-term carbon neutrality, without long-term
// future information.
//
// Each slot t, COCA observes λ(t), r(t) and w(t), resets the virtual
// carbon-deficit queue at frame boundaries (so the cost-carbon parameter V
// can be retuned per frame), and solves P3 (Eq. 16):
//
//	min V·g(λ,x) + q(t)·[p(λ,x) − r(t)]^+
//
// — equivalently a dcmodel.SlotProblem with weights We = V·w(t) + q(t) and
// Wd = V·β. After the slot, the realized off-site generation f(t) drives
// the queue update of Eq. (17). As q(t) grows the electricity weight grows
// with it, realizing "if violate neutrality, then use less electricity".
//
// Two entry points are provided: Policy, which plugs into the sim engine's
// homogeneous-fleet year-long runs using the exact symmetric P3 solver, and
// Controller, the group-level form that works with any p3.Solver — in
// particular GSD, the paper's distributed solver — for heterogeneous
// clusters.
package core

import (
	"errors"
	"fmt"

	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrScheduleExhausted is returned by Controller.Step when the slot cursor
// has moved past the configured V schedule's horizon.
var ErrScheduleExhausted = errors.New("core: V schedule exhausted")

// Config parameterizes COCA for the homogeneous sim engine.
type Config struct {
	Server dcmodel.ServerType
	N      int
	Gamma  float64
	PUE    float64
	Beta   float64

	// Schedule fixes frames and per-frame V_r (Algorithm 1 lines 2–4).
	Schedule lyapunov.VSchedule
	// Alpha and RECPerSlotKWh parameterize the deficit-queue update Eq. (17).
	Alpha         float64
	RECPerSlotKWh float64

	// SwitchCostKWh internalizes the Fig. 5(d) switching cost into P3 (the
	// penalty per toggled server is V·w(t)·SwitchCostKWh).
	SwitchCostKWh float64

	// Tariff optionally makes the electricity cost nonlinear (§2.1): P3's
	// grid term becomes V·w(t)·Tariff.Cost(g) + q(t)·g (the deficit queue
	// still prices raw kWh, since carbon accounting is in energy).
	Tariff dcmodel.Tariff

	// MaxPowerKW and MaxDelayCost are the optional §3.1 per-slot
	// constraints, enforced inside P3. Zero disables.
	MaxPowerKW   float64
	MaxDelayCost float64
}

// Policy is COCA as a sim.Policy over a homogeneous fleet.
type Policy struct {
	cfg   Config
	queue *lyapunov.DeficitQueue

	// prevActive is the switching-cost anchor: the active count of the
	// last configuration the engine actually operated. Decide only
	// proposes (pendingActive); the anchor is committed when the engine
	// confirms the slot through Observe, so a rejected step (cap
	// violation, overload) followed by a retry cannot desync the policy
	// from the engine's own previous-active state.
	prevActive    int
	pendingActive int
	vOverride     float64

	// queueGauge, when set, exports q(t) to the telemetry layer.
	queueGauge *telemetry.Gauge

	// QueueTrace records q(t) per slot for analysis when enabled.
	QueueTrace []float64
	record     bool
}

// New builds a COCA policy. The schedule must cover the intended horizon;
// Run validates that via the scenario.
func New(cfg Config) (*Policy, error) {
	if err := cfg.Server.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: fleet size %d", cfg.N)
	}
	if cfg.Beta < 0 {
		return nil, fmt.Errorf("core: negative beta")
	}
	if err := cfg.Schedule.Validate(cfg.Schedule.Slots()); err != nil {
		return nil, err
	}
	return &Policy{
		cfg:   cfg,
		queue: lyapunov.NewDeficitQueue(cfg.Alpha, cfg.RECPerSlotKWh),
	}, nil
}

// FromScenario derives a COCA config from a sim scenario plus a V schedule.
func FromScenario(sc *sim.Scenario, sched lyapunov.VSchedule) Config {
	return Config{
		Server: sc.Server, N: sc.N, Gamma: sc.Gamma, PUE: sc.PUE, Beta: sc.Beta,
		Schedule:      sched,
		Alpha:         sc.Portfolio.Alpha,
		RECPerSlotKWh: sc.Portfolio.RECPerSlotKWh(sc.Slots),
		SwitchCostKWh: sc.SwitchCostKWh,
		Tariff:        sc.Tariff,
		MaxPowerKW:    sc.MaxPowerKW,
		MaxDelayCost:  sc.MaxDelayCost,
	}
}

// RecordQueue enables per-slot queue-length tracing.
func (p *Policy) RecordQueue() { p.record = true }

// InstrumentQueue exports the carbon-deficit queue length q(t) through
// the given telemetry gauge, updated on every frame reset and feedback.
func (p *Policy) InstrumentQueue(g *telemetry.Gauge) { p.queueGauge = g }

// SetV overrides the schedule's cost-carbon parameter for subsequent slots
// without touching frame boundaries — used by ablation studies that vary V
// while keeping (or suppressing) queue resets. Zero restores the schedule.
func (p *Policy) SetV(v float64) { p.vOverride = v }

// Name implements sim.Policy.
func (p *Policy) Name() string { return "coca" }

// Queue exposes the current deficit-queue length q(t).
func (p *Policy) Queue() float64 { return p.queue.Len() }

// Decide implements sim.Policy: Algorithm 1 lines 2–5.
func (p *Policy) Decide(obs sim.Observation) (sim.Config, error) {
	if p.cfg.Schedule.FrameStart(obs.Slot) {
		p.queue.Reset()
		if p.queueGauge != nil {
			p.queueGauge.Set(p.queue.Len())
		}
	}
	v := p.cfg.Schedule.V(obs.Slot)
	if p.vOverride > 0 {
		v = p.vOverride
	}
	we, wd := dcmodel.P3Weights(v, p.queue.Len(), obs.PriceUSDPerKWh, p.cfg.Beta)
	hp := &p3.HomogeneousProblem{
		Type: p.cfg.Server, N: p.cfg.N,
		Gamma: p.cfg.Gamma, PUE: p.cfg.PUE,
		LambdaRPS: obs.LambdaRPS,
		We:        we, Wd: wd,
		OnsiteKW:     obs.OnsiteKW,
		SwitchWeight: v * obs.PriceUSDPerKWh * p.cfg.SwitchCostKWh,
		PrevActive:   p.prevActive,
		MaxPowerKW:   p.cfg.MaxPowerKW,
		MaxDelayCost: p.cfg.MaxDelayCost,
	}
	if p.cfg.Tariff != nil {
		q := p.queue.Len()
		w := obs.PriceUSDPerKWh
		tariff := p.cfg.Tariff
		hp.GridCostFn = func(g float64) float64 {
			return v*w*tariff.Cost(g) + q*g
		}
	}
	sol, err := hp.Solve()
	if err != nil {
		return sim.Config{}, err
	}
	// Speculate only: the anchor moves when the engine confirms the slot
	// (Observe). A rejected Step never reaches Observe, so a retried
	// Decide re-anchors against the configuration actually operated last.
	p.pendingActive = sol.Active
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

// Observe implements sim.Policy: the Eq. (17) queue update with the
// realized grid draw and off-site generation, and the commit point for
// the switching-cost anchor speculated in Decide.
func (p *Policy) Observe(fb sim.Feedback) {
	p.prevActive = p.pendingActive
	q := p.queue.Update(fb.GridKWh, fb.OffsiteKWh)
	if p.record {
		p.QueueTrace = append(p.QueueTrace, q)
	}
	if p.queueGauge != nil {
		p.queueGauge.Set(q)
	}
}

var _ sim.Policy = (*Policy)(nil)

// Controller is the group-level COCA loop for heterogeneous clusters: the
// caller supplies any P3 solver (typically gsd.Solver, the paper's
// distributed algorithm) and feeds environments slot by slot.
type Controller struct {
	Cluster  *dcmodel.Cluster
	Beta     float64
	Schedule lyapunov.VSchedule
	Solver   p3.Solver

	// SlotHours, Tariff and SwitchCostKWh are the Ledger extensions of
	// the sim path — slot duration, §2.1 nonlinear pricing and the
	// Fig. 5(d) toggling charge. The zero values reproduce the paper's
	// defaults; set them (before the first Step) to make heterogeneous
	// accounting match a sim.Scenario carrying the same knobs.
	SlotHours     float64
	Tariff        dcmodel.Tariff
	SwitchCostKWh float64

	queue *lyapunov.DeficitQueue
	slot  int

	// prevActive anchors the switching charge. Like sim's COCA policy it
	// is committed only when the slot settles (Settle), so a failed or
	// abandoned Step can be retried without desyncing the anchor.
	prevActive int

	// queueGauge, when set, exports q(t) to the telemetry layer.
	queueGauge *telemetry.Gauge
}

// NewController builds a group-level COCA controller.
func NewController(cluster *dcmodel.Cluster, beta float64, sched lyapunov.VSchedule, alpha, recPerSlotKWh float64, solver p3.Solver) (*Controller, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(sched.Slots()); err != nil {
		return nil, err
	}
	if solver == nil {
		return nil, fmt.Errorf("core: nil P3 solver")
	}
	return &Controller{
		Cluster: cluster, Beta: beta, Schedule: sched, Solver: solver,
		queue: lyapunov.NewDeficitQueue(alpha, recPerSlotKWh),
	}, nil
}

// SlotEnv is one slot's environment for the controller.
type SlotEnv struct {
	LambdaRPS      float64
	OnsiteKW       float64
	PriceUSDPerKWh float64
}

// SlotOutcome is the controller's record of one decided-and-operated slot.
type SlotOutcome struct {
	Solution dcmodel.Solution
	Cost     dcmodel.CostBreakdown
	Queue    float64 // q(t) used in the slot's P3 weights
	// Active is the solution's active-server count; Settle commits it as
	// the next slot's switching-cost anchor.
	Active int
}

// Step runs Algorithm 1 for one slot: frame reset, P3 via the plugged
// solver, cost accounting. Call Settle afterwards with the realized f(t);
// a Step that is never settled (rejected by the caller, retried after a
// failure) leaves the controller's state untouched.
func (c *Controller) Step(env SlotEnv) (SlotOutcome, error) {
	if c.slot >= c.Schedule.Slots() {
		// A long-running controller must outlive its schedule gracefully:
		// indexing V past the horizon would panic inside VSchedule.
		return SlotOutcome{}, fmt.Errorf("core: slot %d beyond the schedule horizon %d: %w",
			c.slot, c.Schedule.Slots(), ErrScheduleExhausted)
	}
	if c.Schedule.FrameStart(c.slot) {
		c.queue.Reset()
		if c.queueGauge != nil {
			c.queueGauge.Set(c.queue.Len())
		}
	}
	v := c.Schedule.V(c.slot)
	q := c.queue.Len()
	we, wd := dcmodel.P3Weights(v, q, env.PriceUSDPerKWh, c.Beta)
	prob := &dcmodel.SlotProblem{
		Cluster:   c.Cluster,
		LambdaRPS: env.LambdaRPS,
		We:        we, Wd: wd,
		OnsiteKW: env.OnsiteKW,
	}
	sol, err := c.Solver.Solve(prob)
	if err != nil {
		return SlotOutcome{}, fmt.Errorf("core: slot %d: %w", c.slot, err)
	}
	// CostWithSwitching charges through the shared dcmodel.Ledger kernel
	// with the full extension set — slot duration, nonlinear tariff and
	// the toggling charge against the last settled slot — so the
	// controller's accounting matches internal/sim exactly.
	active := c.Cluster.ActiveServers(sol.Speeds)
	cost := c.Cluster.CostWithSwitching(dcmodel.CostParams{
		PriceUSDPerKWh: env.PriceUSDPerKWh,
		OnsiteKW:       env.OnsiteKW,
		Beta:           c.Beta,
		SlotHours:      c.SlotHours,
		Tariff:         c.Tariff,
		SwitchCostKWh:  c.SwitchCostKWh,
	}, sol.Speeds, sol.Load, active-c.prevActive)
	return SlotOutcome{Solution: sol, Cost: cost, Queue: q, Active: active}, nil
}

// Settle finishes the slot with the realized off-site generation: the
// Eq. (17) queue update, the switching-anchor commit, and the clock
// advance. Only settled outcomes move controller state — the same
// feedback-driven commit discipline as the sim policy's Observe.
func (c *Controller) Settle(out SlotOutcome, offsiteKWh float64) {
	q := c.queue.Update(out.Cost.GridKWh, offsiteKWh)
	if c.queueGauge != nil {
		c.queueGauge.Set(q)
	}
	c.prevActive = out.Active
	c.slot++
}

// Queue exposes the deficit-queue length.
func (c *Controller) Queue() float64 { return c.queue.Len() }

// InstrumentQueue exports the carbon-deficit queue length q(t) through
// the given telemetry gauge, updated on every frame reset and Settle.
func (c *Controller) InstrumentQueue(g *telemetry.Gauge) { c.queueGauge = g }

// Slot returns the next slot index to be stepped.
func (c *Controller) Slot() int { return c.slot }
