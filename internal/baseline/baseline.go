// Package baseline implements the comparison algorithms of the paper's
// evaluation:
//
//   - Unaware — the carbon-unaware algorithm (§5.2.1): minimizes the
//     instantaneous cost g(t) every slot and ignores the budget entirely
//     (COCA's V → ∞ limit). Its yearly usage defines the reference against
//     which carbon budgets are sized.
//   - OPT — the optimal offline algorithm (§5.2.4, Fig. 5): full knowledge
//     of the year, minimizes total cost subject to the yearly budget. We
//     solve it by Lagrangian duality: with a multiplier η on the budget the
//     problem decouples into per-slot solves with electricity weight
//     w(t) + η; η is bisected until the yearly grid usage meets the budget
//     (complementary slackness). With 8760 coupled slots the relaxation's
//     duality gap is negligible.
//   - PerfectHP — the prediction-based heuristic COCA is compared against
//     (§5.2.2): 48-hour frames, the frame's carbon budget (off-site
//     renewables plus the frame's REC share) allocated to hours in
//     proportion to perfectly predicted hourly workloads; each hour the
//     cost is minimized subject to the hourly cap, and the cap is dropped
//     whenever it is infeasible.
//   - Lookahead — the T-step lookahead family P2 (§3.2): per-frame budget
//     constraints solved by the same dual bisection, providing the frame
//     optima G_r* that appear in Theorem 2's bounds.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/numopt"
	"repro/internal/p3"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// solver wraps the homogeneous per-slot solve with an extra grid weight η:
// minimize (w+η)·[p − r]^+ + β·d.
type solver struct {
	sc *sim.Scenario
}

func (s solver) solve(obs sim.Observation, eta float64) (p3.HomogeneousSolution, error) {
	hp := &p3.HomogeneousProblem{
		Type: s.sc.Server, N: s.sc.N,
		Gamma: s.sc.Gamma, PUE: s.sc.PUE,
		LambdaRPS:    obs.LambdaRPS,
		We:           obs.PriceUSDPerKWh + eta,
		Wd:           s.sc.Beta,
		OnsiteKW:     obs.OnsiteKW,
		MaxPowerKW:   s.sc.MaxPowerKW,
		MaxDelayCost: s.sc.MaxDelayCost,
	}
	if s.sc.Tariff != nil {
		w := obs.PriceUSDPerKWh
		tariff := s.sc.Tariff
		hp.GridCostFn = func(g float64) float64 {
			return w*tariff.Cost(g) + eta*g
		}
	}
	return hp.Solve()
}

// ledger builds the slot-cost kernel for the observed slot, including the
// scenario's tariff and slot duration, so the planners price candidate
// configurations with exactly the accounting the simulator charges.
func (s solver) ledger(obs sim.Observation) dcmodel.Ledger {
	return dcmodel.Ledger{
		PriceUSDPerKWh: obs.PriceUSDPerKWh,
		OnsiteKW:       obs.OnsiteKW,
		Beta:           s.sc.Beta,
		SlotHours:      s.sc.SlotHours,
		Tariff:         s.sc.Tariff,
	}
}

// trueObs builds the non-overestimated observation for slot t (oracles see
// the truth).
func (s solver) trueObs(t int) sim.Observation {
	return sim.Observation{
		Slot:           t,
		LambdaRPS:      s.sc.Workload.Values[t],
		OnsiteKW:       s.sc.Portfolio.OnsiteKW.Values[t],
		PriceUSDPerKWh: s.sc.Price.Values[t],
	}
}

func (s solver) gridAt(obs sim.Observation, eta float64) float64 {
	sol, err := s.solve(obs, eta)
	if err != nil {
		return math.Inf(1)
	}
	return sol.GridKWh
}

// Unaware is the carbon-unaware instantaneous cost minimizer.
type Unaware struct {
	s solver
	// MinSlotCost tracks the smallest per-slot cost among *operated*
	// slots, the g_min of Theorem 2.
	MinSlotCost float64
	// pendingCost is the candidate from the last Decide; it folds into
	// MinSlotCost only when the engine confirms the slot via Observe, so
	// a rejected-and-retried step cannot record the cost of a
	// configuration that never ran.
	pendingCost float64
}

// NewUnaware builds the carbon-unaware policy for a scenario.
func NewUnaware(sc *sim.Scenario) *Unaware {
	return &Unaware{s: solver{sc: sc}, MinSlotCost: math.Inf(1), pendingCost: math.Inf(1)}
}

// Name implements sim.Policy.
func (u *Unaware) Name() string { return "carbon-unaware" }

// Decide implements sim.Policy.
func (u *Unaware) Decide(obs sim.Observation) (sim.Config, error) {
	sol, err := u.s.solve(obs, 0)
	if err != nil {
		return sim.Config{}, err
	}
	u.pendingCost = u.s.ledger(obs).Charge(sol.PowerKW, sol.DelayCost, 0).TotalUSD
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

// Observe implements sim.Policy: commits the per-slot cost candidate
// speculated in Decide.
func (u *Unaware) Observe(sim.Feedback) {
	if u.pendingCost < u.MinSlotCost {
		u.MinSlotCost = u.pendingCost
	}
}

var _ sim.Policy = (*Unaware)(nil)

// OPT is the offline optimum via Lagrangian dual bisection.
type OPT struct {
	s   solver
	eta float64
	// Exact is false when the budget is below the minimum achievable usage
	// and OPT saturates at its most electricity-averse decisions.
	Exact bool
}

// etaCap bounds the dual search; beyond it the per-slot solves are already
// electricity-only.
const etaCap = 1e7

// NewOPT plans the offline optimum for the scenario's budget. It runs
// O(log) full-horizon sweeps, so construction costs a few seconds at
// year scale.
func NewOPT(sc *sim.Scenario) (*OPT, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	o := &OPT{s: solver{sc: sc}, Exact: true}
	budget := sc.Portfolio.BudgetKWh(sc.Slots)
	total := func(eta float64) float64 {
		var sum float64
		for t := 0; t < sc.Slots; t++ {
			sum += o.s.gridAt(o.s.trueObs(t), eta)
		}
		return sum
	}
	if total(0) <= budget {
		o.eta = 0
		return o, nil
	}
	hi := 1.0
	for total(hi) > budget {
		hi *= 4
		if hi > etaCap {
			o.eta = etaCap
			o.Exact = false
			return o, nil
		}
	}
	o.eta = numopt.BisectMonotone(total, budget, 0, hi, hi*1e-7, 50)
	// Round η up until the budget is actually met (bisection can land a
	// hair below target on a decreasing step function).
	for i := 0; i < 20 && total(o.eta) > budget; i++ {
		o.eta *= 1.02
	}
	return o, nil
}

// Eta exposes the dual price on the carbon budget.
func (o *OPT) Eta() float64 { return o.eta }

// Name implements sim.Policy.
func (o *OPT) Name() string { return "opt-offline" }

// Decide implements sim.Policy. OPT is an oracle: it uses the true
// environment regardless of the scenario's overestimation factor.
func (o *OPT) Decide(obs sim.Observation) (sim.Config, error) {
	sol, err := o.s.solve(o.s.trueObs(obs.Slot), o.eta)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

// Observe implements sim.Policy.
func (o *OPT) Observe(sim.Feedback) {}

var _ sim.Policy = (*OPT)(nil)

// PerfectHP is the 48-hour prediction heuristic of §5.2.2.
type PerfectHP struct {
	s          solver
	frameHours int
	budgets    []float64 // per-slot caps b_t
}

// NewPerfectHP plans the hourly budget allocation from perfect workload
// predictions (the paper's setting). frameHours is the prediction window
// (the paper uses 48).
func NewPerfectHP(sc *sim.Scenario, frameHours int) (*PerfectHP, error) {
	return NewPerfectHPWithForecast(sc, frameHours, sc.Workload)
}

// NewPerfectHPWithForecast is PerfectHP with an arbitrary workload
// forecast driving the budget allocation — the caps are proportional to
// *forecast* hourly workloads while the per-slot cost minimization still
// serves the true arrivals. With forecast == the true workload it is
// exactly the paper's PerfectHP; with package predict's forecasters it
// measures how prediction error erodes the heuristic.
func NewPerfectHPWithForecast(sc *sim.Scenario, frameHours int, forecast *trace.Trace) (*PerfectHP, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if frameHours <= 0 {
		return nil, errors.New("baseline: frameHours must be positive")
	}
	if forecast == nil || forecast.Len() < sc.Slots {
		return nil, errors.New("baseline: forecast missing or shorter than horizon")
	}
	p := &PerfectHP{s: solver{sc: sc}, frameHours: frameHours}
	frames := (sc.Slots + frameHours - 1) / frameHours
	p.budgets = make([]float64, sc.Slots)
	alpha := sc.Portfolio.Alpha
	recShare := sc.Portfolio.RECsKWh / float64(frames)
	for f := 0; f < frames; f++ {
		lo := f * frameHours
		hi := lo + frameHours
		if hi > sc.Slots {
			hi = sc.Slots
		}
		frameBudget := alpha * (stats.Sum(sc.Portfolio.OffsiteKWh.Values[lo:hi]) + recShare)
		lambdaSum := stats.Sum(forecast.Values[lo:hi])
		for t := lo; t < hi; t++ {
			if lambdaSum > 0 {
				p.budgets[t] = frameBudget * forecast.Values[t] / lambdaSum
			} else {
				p.budgets[t] = frameBudget / float64(hi-lo)
			}
		}
	}
	return p, nil
}

// Name implements sim.Policy.
func (p *PerfectHP) Name() string { return fmt.Sprintf("perfect-hp-%dh", p.frameHours) }

// Budget exposes the planned hourly cap for slot t.
func (p *PerfectHP) Budget(t int) float64 { return p.budgets[t] }

// Decide implements sim.Policy: minimize cost subject to the hourly carbon
// cap, dropping the cap when infeasible (the paper's rule).
func (p *PerfectHP) Decide(obs sim.Observation) (sim.Config, error) {
	cap := p.budgets[obs.Slot]
	free, err := p.s.solve(obs, 0)
	if err != nil {
		return sim.Config{}, err
	}
	if free.GridKWh <= cap {
		return sim.Config{Speed: free.Speed, Active: free.Active}, nil
	}
	// Tighten η until the cap is met; if even η → ∞ cannot meet it, the
	// paper says to ignore the cap for this hour.
	if p.s.gridAt(obs, etaCap) > cap {
		return sim.Config{Speed: free.Speed, Active: free.Active}, nil
	}
	hi := 1.0
	for p.s.gridAt(obs, hi) > cap && hi < etaCap {
		hi *= 4
	}
	eta := numopt.BisectMonotone(func(x float64) float64 {
		return p.s.gridAt(obs, x)
	}, cap, 0, hi, hi*1e-6, 40)
	for i := 0; i < 20 && p.s.gridAt(obs, eta) > cap; i++ {
		eta = eta*1.05 + 1e-9
	}
	sol, err := p.s.solve(obs, eta)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

// Observe implements sim.Policy.
func (p *PerfectHP) Observe(sim.Feedback) {}

var _ sim.Policy = (*PerfectHP)(nil)

// Lookahead is the T-step lookahead benchmark P2: within each frame of T
// slots it enforces the frame budget α·(Σ_frame f + Z/R) via a per-frame
// dual price.
type Lookahead struct {
	s      solver
	t      int
	etas   []float64 // per-frame dual prices
	optima []float64 // per-frame average costs G_r*
}

// NewLookahead plans the per-frame duals. T must divide the horizon.
func NewLookahead(sc *sim.Scenario, T int) (*Lookahead, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if T <= 0 || sc.Slots%T != 0 {
		return nil, fmt.Errorf("baseline: T = %d must divide horizon %d", T, sc.Slots)
	}
	l := &Lookahead{s: solver{sc: sc}, t: T}
	frames := sc.Slots / T
	alpha := sc.Portfolio.Alpha
	recShare := sc.Portfolio.RECsKWh / float64(frames)
	l.etas = make([]float64, frames)
	l.optima = make([]float64, frames)
	for f := 0; f < frames; f++ {
		lo, hi := f*T, (f+1)*T
		budget := alpha * (stats.Sum(sc.Portfolio.OffsiteKWh.Values[lo:hi]) + recShare)
		total := func(eta float64) float64 {
			var sum float64
			for t := lo; t < hi; t++ {
				sum += l.s.gridAt(l.s.trueObs(t), eta)
			}
			return sum
		}
		eta := 0.0
		if total(0) > budget {
			hiEta := 1.0
			for total(hiEta) > budget && hiEta < etaCap {
				hiEta *= 4
			}
			eta = numopt.BisectMonotone(total, budget, 0, hiEta, hiEta*1e-7, 50)
			for i := 0; i < 20 && total(eta) > budget; i++ {
				eta *= 1.02
			}
		}
		l.etas[f] = eta
		var cost float64
		for t := lo; t < hi; t++ {
			obs := l.s.trueObs(t)
			sol, err := l.s.solve(obs, eta)
			if err != nil {
				return nil, err
			}
			cost += l.s.ledger(obs).Charge(sol.PowerKW, sol.DelayCost, 0).TotalUSD
		}
		l.optima[f] = cost / float64(T)
	}
	return l, nil
}

// FrameOptima returns the per-frame average costs G_r* used in Theorem 2.
func (l *Lookahead) FrameOptima() []float64 { return append([]float64(nil), l.optima...) }

// Name implements sim.Policy.
func (l *Lookahead) Name() string { return fmt.Sprintf("lookahead-T%d", l.t) }

// Decide implements sim.Policy (oracle: true environment).
func (l *Lookahead) Decide(obs sim.Observation) (sim.Config, error) {
	sol, err := l.s.solve(l.s.trueObs(obs.Slot), l.etas[obs.Slot/l.t])
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

// Observe implements sim.Policy.
func (l *Lookahead) Observe(sim.Feedback) {}

var _ sim.Policy = (*Lookahead)(nil)
