package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
)

func buildScenario(t *testing.T, slots int) (*sim.Scenario, float64) {
	t.Helper()
	sc, refGrid, err := simtest.Build(simtest.Options{Slots: slots, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	return sc, refGrid
}

func runPolicy(t *testing.T, sc *sim.Scenario, p sim.Policy) sim.Summary {
	t.Helper()
	res, err := sim.Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Summarize(sc, res)
}

func TestUnawareMatchesReference(t *testing.T) {
	sc, refGrid := buildScenario(t, 14*24)
	s := runPolicy(t, sc, NewUnaware(sc))
	if math.Abs(s.TotalGridKWh-refGrid) > 1e-6*refGrid {
		t.Errorf("unaware grid %v != calibration reference %v", s.TotalGridKWh, refGrid)
	}
	// Budget is 92% of the unaware usage, so unaware must overshoot by 1/0.92.
	if math.Abs(s.BudgetUsedFraction-1/0.92) > 0.01 {
		t.Errorf("unaware budget fraction = %v, want ≈ %v", s.BudgetUsedFraction, 1/0.92)
	}
	u := NewUnaware(sc)
	runPolicy(t, sc, u)
	if math.IsInf(u.MinSlotCost, 1) || u.MinSlotCost < 0 {
		t.Errorf("MinSlotCost = %v", u.MinSlotCost)
	}
}

func TestOPTMeetsBudgetExactly(t *testing.T) {
	sc, _ := buildScenario(t, 14*24)
	opt, err := NewOPT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Exact {
		t.Fatal("OPT saturated unexpectedly")
	}
	s := runPolicy(t, sc, opt)
	if s.BudgetUsedFraction > 1.0+1e-9 {
		t.Errorf("OPT violates budget: %v", s.BudgetUsedFraction)
	}
	if s.BudgetUsedFraction < 0.97 {
		t.Errorf("OPT leaves budget unused: %v (complementary slackness)", s.BudgetUsedFraction)
	}
	if opt.Eta() <= 0 {
		t.Errorf("binding budget needs positive dual price, got %v", opt.Eta())
	}
}

func TestOPTZeroEtaWhenBudgetSlack(t *testing.T) {
	sc, _ := buildScenario(t, 7*24)
	// Inflate RECs so the unaware optimum fits inside the budget.
	sc.Portfolio.RECsKWh *= 100
	opt, err := NewOPT(sc)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Eta() != 0 {
		t.Errorf("slack budget: eta = %v, want 0", opt.Eta())
	}
	s := runPolicy(t, sc, opt)
	un := runPolicy(t, sc, NewUnaware(sc))
	if math.Abs(s.AvgHourlyCostUSD-un.AvgHourlyCostUSD) > 1e-9 {
		t.Error("with slack budget OPT must equal the unaware optimum")
	}
}

func TestOPTBeatsEveryNeutralPolicy(t *testing.T) {
	// OPT's cost is a lower bound for any policy meeting the budget.
	sc, _ := buildScenario(t, 14*24)
	opt, err := NewOPT(sc)
	if err != nil {
		t.Fatal(err)
	}
	sOpt := runPolicy(t, sc, opt)
	// COCA tuned to meet the budget.
	for _, v := range []float64{1e4, 1e5, 1e6} {
		p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(v, 1, sc.Slots)))
		if err != nil {
			t.Fatal(err)
		}
		s := runPolicy(t, sc, p)
		if s.BudgetUsedFraction <= 1.0 && s.AvgHourlyCostUSD < sOpt.AvgHourlyCostUSD*(1-1e-6) {
			t.Errorf("V=%v: neutral COCA (%v) beat OPT (%v)", v, s.AvgHourlyCostUSD, sOpt.AvgHourlyCostUSD)
		}
	}
	php, err := NewPerfectHP(sc, 48)
	if err != nil {
		t.Fatal(err)
	}
	sPhp := runPolicy(t, sc, php)
	if sPhp.BudgetUsedFraction <= 1.0 && sPhp.AvgHourlyCostUSD < sOpt.AvgHourlyCostUSD*(1-1e-6) {
		t.Errorf("neutral PerfectHP (%v) beat OPT (%v)", sPhp.AvgHourlyCostUSD, sOpt.AvgHourlyCostUSD)
	}
}

func TestPerfectHPRespectsCapsWhenFeasible(t *testing.T) {
	sc, _ := buildScenario(t, 4*48)
	php, err := NewPerfectHP(sc, 48)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, php)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for t_, rec := range res.Records {
		cap := php.Budget(t_)
		if rec.GridKWh > cap*(1+1e-6)+1e-9 {
			// Permitted only when the cap was infeasible: verify that even
			// the most electricity-averse decision exceeds the cap.
			if php.s.gridAt(php.s.trueObs(t_), etaCap) <= cap {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Errorf("%d slots violated a feasible hourly cap", violations)
	}
}

func TestPerfectHPBudgetAllocationProportional(t *testing.T) {
	sc, _ := buildScenario(t, 96)
	php, err := NewPerfectHP(sc, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Within a frame, caps are proportional to workloads.
	l0, l1 := sc.Workload.Values[10], sc.Workload.Values[20]
	b0, b1 := php.Budget(10), php.Budget(20)
	if l0 > 0 && l1 > 0 {
		r1 := b0 / l0
		r2 := b1 / l1
		if math.Abs(r1-r2) > 1e-9*(r1+r2) {
			t.Errorf("allocation not λ-proportional: %v vs %v", r1, r2)
		}
	}
	// Frame budgets sum to the frame's offsite + REC share.
	var sum float64
	for t_ := 0; t_ < 48; t_++ {
		sum += php.Budget(t_)
	}
	want := sc.Portfolio.Alpha * (sumRange(sc.Portfolio.OffsiteKWh.Values, 0, 48) + sc.Portfolio.RECsKWh/2)
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("frame budget sum = %v, want %v", sum, want)
	}
}

func sumRange(xs []float64, lo, hi int) float64 {
	var s float64
	for _, x := range xs[lo:hi] {
		s += x
	}
	return s
}

func TestPerfectHPValidation(t *testing.T) {
	sc, _ := buildScenario(t, 48)
	if _, err := NewPerfectHP(sc, 0); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestLookaheadFramesAndOptima(t *testing.T) {
	sc, _ := buildScenario(t, 8*24)
	la, err := NewLookahead(sc, 48)
	if err != nil {
		t.Fatal(err)
	}
	opt := la.FrameOptima()
	if len(opt) != 4 {
		t.Fatalf("frames = %d, want 4", len(opt))
	}
	for i, g := range opt {
		if g <= 0 || math.IsInf(g, 0) {
			t.Errorf("G*_%d = %v", i, g)
		}
	}
	s := runPolicy(t, sc, la)
	if s.BudgetUsedFraction > 1.02 {
		t.Errorf("lookahead budget fraction = %v", s.BudgetUsedFraction)
	}
	// T must divide the horizon.
	if _, err := NewLookahead(sc, 100); err == nil {
		t.Error("non-dividing T accepted")
	}
}

func TestLookaheadLongerWindowNoWorse(t *testing.T) {
	// A longer lookahead window is a weaker constraint set, so the total
	// planned cost cannot increase.
	sc, _ := buildScenario(t, 8*24)
	short, err := NewLookahead(sc, 24)
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewLookahead(sc, 96)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(long.FrameOptima()) > avg(short.FrameOptima())*(1+1e-6) {
		t.Errorf("T=96 average optimum %v worse than T=24 %v",
			avg(long.FrameOptima()), avg(short.FrameOptima()))
	}
}

func TestTheorem2CostBoundHolds(t *testing.T) {
	// Empirical check of Eq. (20): COCA's average cost is bounded by the
	// T-lookahead optimum plus C(T)/V.
	sc, _ := buildScenario(t, 6*24)
	T := 48
	la, err := NewLookahead(sc, T)
	if err != nil {
		t.Fatal(err)
	}
	v := 1e5
	sched := lyapunov.VSchedule{T: T, Vs: []float64{v, v, v}}
	p, err := core.New(core.FromScenario(sc, sched))
	if err != nil {
		t.Fatal(err)
	}
	s := runPolicy(t, sc, p)
	bounds := lyapunov.Bounds{
		YMax: float64(sc.N) * sc.Server.MaxBusyKW() * sc.PUE,
		ZMax: sc.Portfolio.Alpha*maxOf(sc.Portfolio.OffsiteKWh.Values[:sc.Slots]) + sc.Portfolio.RECPerSlotKWh(sc.Slots),
		RMax: maxOf(sc.Portfolio.OnsiteKW.Values[:sc.Slots]),
	}
	bound := lyapunov.CostBound(bounds, sched, la.FrameOptima())
	if s.AvgHourlyCostUSD > bound {
		t.Errorf("Theorem 2(b) violated: COCA %v > bound %v", s.AvgHourlyCostUSD, bound)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
