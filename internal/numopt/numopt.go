// Package numopt is the handwritten numerical-optimization toolkit used by
// the COCA reproduction. Go has no mainstream numerical ecosystem, so the
// primitives the paper's algorithms rest on — scalar root finding, unimodal
// search over both continuous and integer domains, and the KKT water-filling
// solver for separable convex programs with a single linear coupling
// constraint — are implemented here from scratch on the standard library.
package numopt

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is called on an interval whose
// endpoint values do not bracket the target.
var ErrNoBracket = errors.New("numopt: interval does not bracket a root")

// ErrInfeasible is returned by solvers whose constraints admit no solution.
var ErrInfeasible = errors.New("numopt: problem infeasible")

// Bisect finds x in [lo, hi] with f(x) ≈ 0 for a continuous f that changes
// sign over the interval, to within xtol on the argument. It runs at most
// maxIter iterations (64 is plenty for float64). If f(lo) and f(hi) have the
// same strict sign, ErrNoBracket is returned.
func Bisect(f func(float64) float64, lo, hi, xtol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < maxIter && hi-lo > xtol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	return lo + (hi-lo)/2, nil
}

// BisectMonotone finds x in [lo, hi] with g(x) ≈ target for a monotone
// (either direction) continuous g. If the target lies outside [g(lo), g(hi)],
// the nearer endpoint is returned; this saturating behavior is what the
// dual-variable searches in the load balancer need.
func BisectMonotone(g func(float64) float64, target, lo, hi, xtol float64, maxIter int) float64 {
	glo, ghi := g(lo), g(hi)
	increasing := ghi >= glo
	// Saturate outside the achievable range.
	if increasing {
		if target <= glo {
			return lo
		}
		if target >= ghi {
			return hi
		}
	} else {
		if target >= glo {
			return lo
		}
		if target <= ghi {
			return hi
		}
	}
	for i := 0; i < maxIter && hi-lo > xtol; i++ {
		mid := lo + (hi-lo)/2
		gm := g(mid)
		if gm == target {
			return mid
		}
		if (gm < target) == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// GoldenSection minimizes a unimodal continuous f over [lo, hi] to within
// xtol and returns the minimizing argument and value.
func GoldenSection(f func(float64) float64, lo, hi, xtol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949 // (√5 − 1) / 2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > xtol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = a + (b-a)/2
	return x, f(x)
}

// MinimizeInt minimizes f over the integers [lo, hi]. It assumes f is
// unimodal (non-strictly) and uses ternary search narrowed to a final local
// sweep of width sweep, which protects against small plateaus and mild
// non-unimodality near the optimum (e.g. the [·]^+ kink in the COCA
// objective). It returns the best argument and value. It panics if lo > hi.
func MinimizeInt(f func(int) float64, lo, hi, sweep int) (int, float64) {
	if lo > hi {
		panic("numopt: MinimizeInt requires lo <= hi")
	}
	if sweep < 1 {
		sweep = 1
	}
	a, b := lo, hi
	for b-a > 2*sweep {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		if f(m1) <= f(m2) {
			b = m2 - 1
		} else {
			a = m1 + 1
		}
	}
	// Final exhaustive sweep over the remaining window, padded by sweep on
	// both sides to absorb ternary-search error under weak unimodality.
	start, end := a-sweep, b+sweep
	if start < lo {
		start = lo
	}
	if end > hi {
		end = hi
	}
	bestX, bestF := start, f(start)
	for x := start + 1; x <= end; x++ {
		if v := f(x); v < bestF {
			bestX, bestF = x, v
		}
	}
	return bestX, bestF
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WaterFillItem describes one coordinate of the separable convex program
// solved by WaterFill: each coordinate i contributes a convex cost with
// derivative Deriv(λ_i) that is continuous and strictly increasing on
// [0, Cap_i), and λ_i is constrained to [0, Cap_i].
type WaterFillItem struct {
	// Cap is the upper bound on this coordinate (exclusive domain limit for
	// the derivative; the allocation itself may equal Cap).
	Cap float64
	// Deriv returns the marginal cost at allocation v in [0, Cap].
	Deriv func(v float64) float64
	// Alloc returns the allocation at which the marginal cost equals price
	// nu, clamped to [0, Cap]. It is the inverse of Deriv extended by
	// saturation, i.e. Alloc(nu)=0 when nu <= Deriv(0) and Alloc(nu)=Cap when
	// nu >= Deriv(Cap).
	Alloc func(nu float64) float64
}

// WaterSystem is the closure-free description of the separable convex
// program WaterFillInto solves: coordinate i has capacity Cap(i), marginal
// cost Deriv(i, v) that is continuous and strictly increasing on [0, Cap(i)),
// and inverse marginal Alloc(i, nu) extended by saturation. A single
// implementation over preallocated arrays lets hot loops (the GSD inner
// loop solves one such program per Gibbs proposal) water-fill with zero
// per-coordinate closure allocations.
type WaterSystem interface {
	// Items returns the number of coordinates.
	Items() int
	// Cap returns the upper bound on coordinate i.
	Cap(i int) float64
	// Deriv returns the marginal cost of coordinate i at allocation v.
	Deriv(i int, v float64) float64
	// Alloc returns the allocation at which coordinate i's marginal cost
	// equals price nu, clamped to [0, Cap(i)].
	Alloc(i int, nu float64) float64
}

// BulkWaterSystem is an optional extension of WaterSystem for systems whose
// coordinate state lives in flat arrays: WaterFillInto type-asserts for it
// and, when present, replaces its per-item Alloc interface calls with one
// bulk call per price evaluation. Implementations MUST accumulate in
// ascending index order — the exact arithmetic of the per-item loop they
// replace — so the fast path stays bit-for-bit identical to the generic one.
type BulkWaterSystem interface {
	WaterSystem
	// SumAlloc returns Σ_i Alloc(i, nu), accumulated in ascending i.
	SumAlloc(nu float64) float64
	// AllocInto writes Alloc(i, nu) into out[i] for i in [0, len(out)) and
	// returns the ascending-order sum of the written values.
	AllocInto(out []float64, nu float64) float64
}

// waterItems adapts the closure-based []WaterFillItem form to WaterSystem so
// WaterFill and WaterFillInto share one implementation of the algorithm.
type waterItems []WaterFillItem

func (w waterItems) Items() int                      { return len(w) }
func (w waterItems) Cap(i int) float64               { return w[i].Cap }
func (w waterItems) Deriv(i int, v float64) float64  { return w[i].Deriv(v) }
func (w waterItems) Alloc(i int, nu float64) float64 { return w[i].Alloc(nu) }

// WaterFill solves
//
//	min Σ_i cost_i(λ_i)   s.t.  Σ_i λ_i = total,  0 ≤ λ_i ≤ Cap_i
//
// for separable convex costs described by items, via bisection on the dual
// price ν (the classic water-filling / KKT structure: λ_i(ν) = Alloc_i(ν)).
// It returns the allocation, or ErrInfeasible when total exceeds Σ Cap_i or
// total < 0.
func WaterFill(items []WaterFillItem, total, tol float64) ([]float64, error) {
	return WaterFillInto(waterItems(items), total, tol, nil)
}

// WaterFillInto is WaterFill over a WaterSystem, writing the allocation into
// out (grown when its capacity is short) and returning it. With a
// sufficiently large out it performs no allocation beyond what sys itself
// does. The arithmetic — accumulation order, bracketing, bisection
// tolerances, residual repair — is exactly WaterFill's, so the two produce
// bit-for-bit identical allocations for equivalent inputs.
func WaterFillInto(sys WaterSystem, total, tol float64, out []float64) ([]float64, error) {
	if total < 0 {
		return nil, ErrInfeasible
	}
	n := sys.Items()
	var capSum float64
	for i := 0; i < n; i++ {
		capSum += sys.Cap(i)
	}
	if total > capSum*(1+1e-12)+tol {
		return nil, ErrInfeasible
	}
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if total == 0 {
		for i := range out {
			out[i] = 0
		}
		return out, nil
	}
	if total >= capSum {
		for i := 0; i < n; i++ {
			out[i] = sys.Cap(i)
		}
		return out, nil
	}
	bulk, _ := sys.(BulkWaterSystem)
	sumAt := func(nu float64) float64 {
		if bulk != nil {
			return bulk.SumAlloc(nu)
		}
		var s float64
		for i := 0; i < n; i++ {
			s += sys.Alloc(i, nu)
		}
		return s
	}
	// Bracket ν: start from the largest Deriv(0) and expand geometrically
	// until the aggregate allocation covers total.
	nuLo, nuHi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		d0 := sys.Deriv(i, 0)
		if d0 < nuLo {
			nuLo = d0
		}
		if d0 > nuHi {
			nuHi = d0
		}
	}
	if nuHi <= nuLo {
		nuHi = nuLo + 1
	}
	for iter := 0; sumAt(nuHi) < total && iter < 200; iter++ {
		nuHi = nuLo + 2*(nuHi-nuLo)
	}
	nu := BisectMonotone(sumAt, total, nuLo, nuHi, (nuHi-nuLo)*1e-13, 120)
	var got float64
	if bulk != nil {
		got = bulk.AllocInto(out, nu)
	} else {
		for i := 0; i < n; i++ {
			out[i] = sys.Alloc(i, nu)
			got += out[i]
		}
	}
	// Repair the residual mismatch caused by finite bisection: spread it
	// across coordinates with slack, preserving bounds.
	resid := total - got
	for pass := 0; pass < 4 && math.Abs(resid) > tol; pass++ {
		for i := 0; i < n; i++ {
			if resid > 0 {
				room := sys.Cap(i) - out[i]
				d := math.Min(room, resid)
				out[i] += d
				resid -= d
			} else {
				d := math.Min(out[i], -resid)
				out[i] -= d
				resid += d
			}
			if math.Abs(resid) <= tol {
				break
			}
		}
	}
	return out, nil
}
