package numopt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestBisectFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want √2", root)
	}
}

func TestBisectExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if r, err := Bisect(f, 1, 2, 1e-12, 100); err != nil || r != 1 {
		t.Errorf("lo endpoint root: %v, %v", r, err)
	}
	if r, err := Bisect(f, 0, 1, 1e-12, 100); err != nil || r != 1 {
		t.Errorf("hi endpoint root: %v, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12, 100); err != ErrNoBracket {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBisectDecreasingFunction(t *testing.T) {
	f := func(x float64) float64 { return 3 - x }
	root, err := Bisect(f, 0, 10, 1e-12, 200)
	if err != nil || math.Abs(root-3) > 1e-10 {
		t.Errorf("root = %v err = %v, want 3", root, err)
	}
}

func TestBisectMonotoneIncreasing(t *testing.T) {
	g := func(x float64) float64 { return 2*x + 1 }
	x := BisectMonotone(g, 7, 0, 10, 1e-12, 200)
	if math.Abs(x-3) > 1e-10 {
		t.Errorf("x = %v, want 3", x)
	}
}

func TestBisectMonotoneDecreasing(t *testing.T) {
	g := func(x float64) float64 { return 10 - x }
	x := BisectMonotone(g, 4, 0, 10, 1e-12, 200)
	if math.Abs(x-6) > 1e-10 {
		t.Errorf("x = %v, want 6", x)
	}
}

func TestBisectMonotoneSaturates(t *testing.T) {
	g := func(x float64) float64 { return x }
	if x := BisectMonotone(g, -5, 0, 1, 1e-12, 100); x != 0 {
		t.Errorf("below-range target: x = %v, want 0", x)
	}
	if x := BisectMonotone(g, 5, 0, 1, 1e-12, 100); x != 1 {
		t.Errorf("above-range target: x = %v, want 1", x)
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, fx := GoldenSection(f, -10, 10, 1e-9)
	if math.Abs(x-1.7) > 1e-6 {
		t.Errorf("argmin = %v, want 1.7", x)
	}
	if fx > 1e-10 {
		t.Errorf("min value = %v", fx)
	}
}

func TestGoldenSectionAsymmetric(t *testing.T) {
	// Unimodal but not symmetric: x^4 - x (min at (1/4)^(1/3)).
	f := func(x float64) float64 { return x*x*x*x - x }
	x, _ := GoldenSection(f, 0, 2, 1e-10)
	want := math.Cbrt(0.25)
	if math.Abs(x-want) > 1e-6 {
		t.Errorf("argmin = %v, want %v", x, want)
	}
}

func TestMinimizeIntQuadratic(t *testing.T) {
	f := func(x int) float64 { d := float64(x - 137); return d * d }
	x, fx := MinimizeInt(f, 0, 100000, 2)
	if x != 137 || fx != 0 {
		t.Errorf("argmin = %d (f=%v), want 137", x, fx)
	}
}

func TestMinimizeIntEndpoints(t *testing.T) {
	inc := func(x int) float64 { return float64(x) }
	if x, _ := MinimizeInt(inc, 3, 500, 2); x != 3 {
		t.Errorf("increasing f: argmin = %d, want 3", x)
	}
	dec := func(x int) float64 { return float64(-x) }
	if x, _ := MinimizeInt(dec, 3, 500, 2); x != 500 {
		t.Errorf("decreasing f: argmin = %d, want 500", x)
	}
}

func TestMinimizeIntTinyRange(t *testing.T) {
	f := func(x int) float64 { return float64((x - 1) * (x - 1)) }
	if x, _ := MinimizeInt(f, 0, 2, 1); x != 1 {
		t.Errorf("argmin = %d, want 1", x)
	}
	if x, _ := MinimizeInt(f, 5, 5, 1); x != 5 {
		t.Errorf("singleton range: argmin = %d, want 5", x)
	}
}

func TestMinimizeIntPlateau(t *testing.T) {
	// Weakly unimodal with a wide plateau at the bottom.
	f := func(x int) float64 {
		if x >= 40 && x <= 60 {
			return 1
		}
		d := float64(x - 50)
		return 1 + math.Abs(d) - 10
	}
	_, fx := MinimizeInt(f, 0, 1000, 3)
	if fx != 1 {
		t.Errorf("plateau minimum not found: f = %v", fx)
	}
}

func TestMinimizeIntPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinimizeInt(func(int) float64 { return 0 }, 5, 4, 1)
}

func TestMinimizeIntMatchesExhaustive(t *testing.T) {
	// Random convex piecewise functions: a|x-c| + b·(x-c)^2 with a kink.
	g := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		c := float64(g.IntN(200))
		a := g.Uniform(0, 5)
		b := g.Uniform(0, 0.5)
		kink := g.Uniform(0, 50)
		f := func(x int) float64 {
			d := float64(x) - c
			v := a*math.Abs(d) + b*d*d
			if d > kink {
				v += 2 * (d - kink) // extra slope after kink: still convex
			}
			return v
		}
		gotX, gotF := MinimizeInt(f, 0, 300, 2)
		bestF := math.Inf(1)
		for x := 0; x <= 300; x++ {
			if v := f(x); v < bestF {
				bestF = v
			}
		}
		if gotF > bestF+1e-9 {
			t.Fatalf("trial %d: MinimizeInt f=%v at %d, exhaustive best %v", trial, gotF, gotX, bestF)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

// quadItem builds a WaterFillItem for cost 0.5·w·λ² (derivative w·λ), cap c.
func quadItem(w, c float64) WaterFillItem {
	return WaterFillItem{
		Cap:   c,
		Deriv: func(v float64) float64 { return w * v },
		Alloc: func(nu float64) float64 { return Clamp(nu/w, 0, c) },
	}
}

func TestWaterFillQuadraticClosedForm(t *testing.T) {
	// Two uncapped quadratics 0.5·w_i·λ_i²: optimal split is inversely
	// proportional to w_i.
	items := []WaterFillItem{quadItem(1, 100), quadItem(3, 100)}
	out, err := WaterFill(items, 8, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// λ1·1 = λ2·3 and λ1+λ2 = 8 → λ1 = 6, λ2 = 2.
	if math.Abs(out[0]-6) > 1e-6 || math.Abs(out[1]-2) > 1e-6 {
		t.Errorf("allocation = %v, want [6 2]", out)
	}
}

func TestWaterFillRespectsCaps(t *testing.T) {
	items := []WaterFillItem{quadItem(1, 2), quadItem(1, 100)}
	out, err := WaterFill(items, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 2+1e-9 {
		t.Errorf("cap violated: %v", out)
	}
	if math.Abs(out[0]+out[1]-10) > 1e-6 {
		t.Errorf("sum = %v, want 10", out[0]+out[1])
	}
}

func TestWaterFillInfeasible(t *testing.T) {
	items := []WaterFillItem{quadItem(1, 1), quadItem(1, 1)}
	if _, err := WaterFill(items, 5, 1e-9); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, err := WaterFill(items, -1, 1e-9); err != ErrInfeasible {
		t.Errorf("negative total: want ErrInfeasible, got %v", err)
	}
}

func TestWaterFillEdgeTotals(t *testing.T) {
	items := []WaterFillItem{quadItem(2, 3), quadItem(1, 4)}
	out, err := WaterFill(items, 0, 1e-9)
	if err != nil || out[0] != 0 || out[1] != 0 {
		t.Errorf("zero total: %v, %v", out, err)
	}
	out, err = WaterFill(items, 7, 1e-9)
	if err != nil || out[0] != 3 || out[1] != 4 {
		t.Errorf("full capacity: %v, %v", out, err)
	}
}

func TestWaterFillProperty(t *testing.T) {
	// For random capped quadratics and feasible totals, the output must be
	// feasible and satisfy the KKT condition: all coordinates strictly inside
	// (0, cap) share the same marginal cost.
	g := stats.NewRNG(123)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.IntN(8)
		items := make([]WaterFillItem, n)
		var capSum float64
		ws := make([]float64, n)
		for i := range items {
			w := rng.Uniform(0.1, 10)
			c := rng.Uniform(0.5, 20)
			ws[i] = w
			items[i] = quadItem(w, c)
			capSum += c
		}
		total := rng.Uniform(0, capSum)
		out, err := WaterFill(items, total, 1e-9)
		if err != nil {
			return false
		}
		var sum float64
		for i, v := range out {
			if v < -1e-9 || v > items[i].Cap+1e-9 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-total) > 1e-6 {
			return false
		}
		// KKT equal-marginal check for interior coordinates.
		var marginals []float64
		for i, v := range out {
			if v > 1e-6 && v < items[i].Cap-1e-6 {
				marginals = append(marginals, ws[i]*v)
			}
		}
		for i := 1; i < len(marginals); i++ {
			if math.Abs(marginals[i]-marginals[0]) > 1e-3*(1+marginals[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Also drive it with a deterministic seed stream for reproducibility.
	for trial := 0; trial < 100; trial++ {
		if !f(g.Uint64()) {
			t.Fatalf("property violated on trial %d", trial)
		}
	}
}

// quadSystem is the WaterSystem form of quadItem costs 0.5·w_i·λ_i².
type quadSystem struct {
	w, caps []float64
}

func (q *quadSystem) Items() int                      { return len(q.w) }
func (q *quadSystem) Cap(i int) float64               { return q.caps[i] }
func (q *quadSystem) Deriv(i int, v float64) float64  { return q.w[i] * v }
func (q *quadSystem) Alloc(i int, nu float64) float64 { return Clamp(nu/q.w[i], 0, q.caps[i]) }

// TestWaterFillIntoMatchesWaterFill pins that the closure-free system form
// produces bit-for-bit the closure form's allocation across random feasible
// and infeasible inputs, including the total==0 and total>=capSum shortcuts.
func TestWaterFillIntoMatchesWaterFill(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(9)
		sys := &quadSystem{w: make([]float64, n), caps: make([]float64, n)}
		items := make([]WaterFillItem, n)
		var capSum float64
		for i := 0; i < n; i++ {
			sys.w[i] = rng.Uniform(0.1, 10)
			sys.caps[i] = rng.Uniform(0.5, 20)
			items[i] = quadItem(sys.w[i], sys.caps[i])
			capSum += sys.caps[i]
		}
		var total float64
		switch trial % 5 {
		case 0:
			total = 0
		case 1:
			total = capSum * 1.5 // infeasible
		case 2:
			total = capSum // exact capacity shortcut
		default:
			total = rng.Uniform(0, capSum)
		}
		want, wantErr := WaterFill(items, total, 1e-9)
		got, gotErr := WaterFillInto(sys, total, 1e-9, nil)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("trial %d: error mismatch: closures %v, system %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: out[%d] = %x, closures %x", trial,
					i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestWaterFillIntoReusesBuffer pins the allocation contract: a big-enough
// output buffer is reused (same backing array) and the steady-state call
// performs zero heap allocations.
func TestWaterFillIntoReusesBuffer(t *testing.T) {
	sys := &quadSystem{w: []float64{1, 3, 2}, caps: []float64{5, 5, 5}}
	buf := make([]float64, 3)
	out, err := WaterFillInto(sys, 4, 1e-9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Error("WaterFillInto did not reuse the provided buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := WaterFillInto(sys, 4, 1e-9, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WaterFillInto allocated %v objects per run, want 0", allocs)
	}
	// A short buffer must be grown, not written out of bounds.
	short := make([]float64, 1)
	out, err = WaterFillInto(sys, 4, 1e-9, short)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("grown output length = %d, want 3", len(out))
	}
}
