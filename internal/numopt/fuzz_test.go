package numopt

import (
	"math"
	"testing"
)

// FuzzMinimizeInt checks that on arbitrary convex quadratics the integer
// minimizer never returns a value worse than both endpoints and the true
// vertex (the safety property the COCA fast path relies on).
func FuzzMinimizeInt(f *testing.F) {
	f.Add(3.0, 50.0, 0, 200)
	f.Add(0.001, -10.0, 5, 10)
	f.Add(100.0, 0.0, 0, 1)
	f.Fuzz(func(t *testing.T, a, c float64, lo, hi int) {
		if math.IsNaN(a) || math.IsNaN(c) || math.IsInf(a, 0) || math.IsInf(c, 0) {
			return
		}
		a = math.Abs(math.Mod(a, 1e6)) + 1e-9 // positive curvature → convex
		c = math.Mod(c, 1e6)
		lo = lo % 1000
		hi = hi % 1000
		if lo < 0 {
			lo = -lo
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		if hi < 0 {
			return
		}
		obj := func(x int) float64 {
			d := float64(x) - c
			return a * d * d
		}
		gotX, gotF := MinimizeInt(obj, lo, hi, 3)
		if gotX < lo || gotX > hi {
			t.Fatalf("argmin %d outside [%d,%d]", gotX, lo, hi)
		}
		// The true integer optimum is at the clamped rounded vertex.
		v := int(math.Round(c))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if want := obj(v); gotF > want*(1+1e-9)+1e-9 {
			t.Fatalf("MinimizeInt %v at %d, vertex gives %v at %d", gotF, gotX, want, v)
		}
	})
}

// FuzzBisectMonotone checks the saturating root finder on arbitrary affine
// functions: the result must always lie in [lo, hi] and, when the target
// is reachable, solve it within tolerance.
func FuzzBisectMonotone(f *testing.F) {
	f.Add(2.0, 1.0, 7.0, 0.0, 10.0)
	f.Add(-3.0, 0.0, -5.0, -2.0, 4.0)
	f.Fuzz(func(t *testing.T, slope, icept, target, lo, hi float64) {
		for _, v := range []float64{slope, icept, target, lo, hi} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return
			}
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		if hi-lo < 1e-9 {
			return
		}
		g := func(x float64) float64 { return slope*x + icept }
		x := BisectMonotone(g, target, lo, hi, (hi-lo)*1e-12, 200)
		if x < lo-1e-12 || x > hi+1e-12 {
			t.Fatalf("result %v outside [%v,%v]", x, lo, hi)
		}
		gl, gh := g(lo), g(hi)
		mn, mx := math.Min(gl, gh), math.Max(gl, gh)
		if target >= mn && target <= mx && math.Abs(slope) > 1e-9 {
			if math.Abs(g(x)-target) > 1e-6*(1+math.Abs(target))+math.Abs(slope)*(hi-lo)*1e-9 {
				t.Fatalf("g(%v) = %v, target %v", x, g(x), target)
			}
		}
	})
}
