// Package predict provides the workload forecasters that prediction-based
// energy budgeting depends on. The paper's PerfectHP baseline assumes
// *perfect* 48-hour-ahead hourly predictions (§5.2.2) and argues that real
// predictions beyond 48 hours "typically exhibit large errors"; this
// package supplies both realistic forecasters (seasonal-naive and
// hour-of-week profile smoothing) and a controllable noisy oracle, so the
// experiments can measure how quickly prediction-based budgeting degrades
// as forecast error grows — the degradation COCA avoids by being online.
package predict

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Forecaster produces an hourly forecast trace for a whole horizon.
type Forecaster interface {
	// Name identifies the forecaster in reports.
	Name() string
	// Forecast returns a trace of the same length as truth whose value at
	// t is the forecast for slot t, produced without reading truth[t] or
	// anything after it (except for oracles, which say so in their name).
	Forecast(truth *trace.Trace) *trace.Trace
}

// SeasonalNaive forecasts slot t with the observed value one period
// earlier (t − Period); the first period falls back to the first observed
// value. A weekly period (168 h) captures diurnal+weekly structure.
type SeasonalNaive struct {
	Period int
}

// Name implements Forecaster.
func (s SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive-%dh", s.Period) }

// Forecast implements Forecaster.
func (s SeasonalNaive) Forecast(truth *trace.Trace) *trace.Trace {
	if s.Period <= 0 {
		panic("predict: SeasonalNaive requires a positive period")
	}
	out := make([]float64, truth.Len())
	for t := range out {
		if t >= s.Period {
			out[t] = truth.Values[t-s.Period]
		} else if truth.Len() > 0 {
			out[t] = truth.Values[0]
		}
	}
	return &trace.Trace{Name: s.Name(), Values: out}
}

// ProfileEWMA maintains an exponentially smoothed hour-of-week profile:
// the forecast for slot t is the smoothed average of past observations at
// the same hour of the week. Alpha in (0,1] is the smoothing weight of the
// newest observation.
type ProfileEWMA struct {
	Alpha float64
}

// Name implements Forecaster.
func (p ProfileEWMA) Name() string { return fmt.Sprintf("profile-ewma-%.2f", p.Alpha) }

// Forecast implements Forecaster.
func (p ProfileEWMA) Forecast(truth *trace.Trace) *trace.Trace {
	if p.Alpha <= 0 || p.Alpha > 1 {
		panic("predict: ProfileEWMA requires alpha in (0,1]")
	}
	const week = trace.HoursPerWeek
	profile := make([]float64, week)
	seen := make([]bool, week)
	out := make([]float64, truth.Len())
	for t := range out {
		h := t % week
		if seen[h] {
			out[t] = profile[h]
		} else if t > 0 {
			out[t] = truth.Values[t-1] // cold start: persistence
		} else if truth.Len() > 0 {
			out[t] = truth.Values[0]
		}
		// Learn from the realized value after forecasting it.
		if seen[h] {
			profile[h] = (1-p.Alpha)*profile[h] + p.Alpha*truth.Values[t]
		} else {
			profile[h] = truth.Values[t]
			seen[h] = true
		}
	}
	return &trace.Trace{Name: p.Name(), Values: out}
}

// NoisyOracle is the controllable error model used by the sensitivity
// studies: the truth multiplied by independent uniform noise of up to
// ±ErrFrac per hour (the same recipe prior work uses for prediction-error
// robustness, and the paper's own MSR-trace construction).
type NoisyOracle struct {
	ErrFrac float64
	Seed    uint64
}

// Name implements Forecaster.
func (n NoisyOracle) Name() string { return fmt.Sprintf("noisy-oracle-%.0f%%", n.ErrFrac*100) }

// Forecast implements Forecaster.
func (n NoisyOracle) Forecast(truth *trace.Trace) *trace.Trace {
	if n.ErrFrac < 0 || n.ErrFrac >= 1 {
		panic("predict: NoisyOracle requires ErrFrac in [0,1)")
	}
	rng := stats.NewRNG(n.Seed)
	out := make([]float64, truth.Len())
	for t, v := range truth.Values {
		out[t] = math.Max(0, v*(1+rng.Uniform(-n.ErrFrac, n.ErrFrac)))
	}
	return &trace.Trace{Name: n.Name(), Values: out}
}

// MAPE returns the mean absolute percentage error of a forecast against
// the truth, skipping slots where the truth is (near) zero.
func MAPE(truth, forecast *trace.Trace) float64 {
	if truth.Len() != forecast.Len() {
		panic("predict: MAPE length mismatch")
	}
	var sum float64
	n := 0
	for t, v := range truth.Values {
		if v < 1e-12 {
			continue
		}
		sum += math.Abs(forecast.Values[t]-v) / v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
