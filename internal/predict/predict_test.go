package predict

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestSeasonalNaive(t *testing.T) {
	truth := &trace.Trace{Name: "x", Values: []float64{1, 2, 3, 4, 5, 6}}
	f := SeasonalNaive{Period: 2}.Forecast(truth)
	want := []float64{1, 1, 1, 2, 3, 4}
	for i := range want {
		if f.Values[i] != want[i] {
			t.Errorf("forecast[%d] = %v, want %v", i, f.Values[i], want[i])
		}
	}
}

func TestSeasonalNaiveWeeklyAccuracy(t *testing.T) {
	// On the FIU-like trace, weekly seasonal-naive should beat a wild guess
	// by a wide margin: MAPE well under 30%.
	truth := trace.FIUYear(1)
	f := SeasonalNaive{Period: trace.HoursPerWeek}.Forecast(truth)
	if m := MAPE(truth, f); m > 0.30 {
		t.Errorf("weekly seasonal-naive MAPE = %v", m)
	}
}

func TestSeasonalNaivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeasonalNaive{Period: 0}.Forecast(trace.Constant("x", 1, 5))
}

func TestProfileEWMALearnsProfile(t *testing.T) {
	// A perfectly periodic weekly signal must be forecast near-exactly
	// after the first week.
	vals := make([]float64, 4*trace.HoursPerWeek)
	for i := range vals {
		vals[i] = 1 + 0.5*math.Sin(2*math.Pi*float64(i%trace.HoursPerWeek)/168)
	}
	truth := &trace.Trace{Name: "periodic", Values: vals}
	f := ProfileEWMA{Alpha: 0.5}.Forecast(truth)
	for i := trace.HoursPerWeek; i < len(vals); i++ {
		if math.Abs(f.Values[i]-vals[i]) > 1e-9 {
			t.Fatalf("slot %d: forecast %v, truth %v", i, f.Values[i], vals[i])
		}
	}
}

func TestProfileEWMABeatsNaiveOnNoisyTrace(t *testing.T) {
	truth := trace.FIUYear(3)
	ewma := ProfileEWMA{Alpha: 0.3}.Forecast(truth)
	if m := MAPE(truth, ewma); m > 0.35 {
		t.Errorf("profile-EWMA MAPE = %v", m)
	}
}

func TestProfileEWMAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProfileEWMA{Alpha: 0}.Forecast(trace.Constant("x", 1, 5))
}

func TestNoisyOracleErrorBand(t *testing.T) {
	truth := trace.FIUYear(5)
	f := NoisyOracle{ErrFrac: 0.2, Seed: 9}.Forecast(truth)
	for i, v := range f.Values {
		lo, hi := truth.Values[i]*0.8, truth.Values[i]*1.2
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("slot %d: forecast %v outside ±20%% of %v", i, v, truth.Values[i])
		}
	}
	// Zero error = the truth.
	exact := NoisyOracle{ErrFrac: 0, Seed: 9}.Forecast(truth)
	if MAPE(truth, exact) != 0 {
		t.Error("zero-error oracle deviates from the truth")
	}
	// MAPE scales with the injected error.
	m := MAPE(truth, f)
	if m < 0.05 || m > 0.2 {
		t.Errorf("±20%% oracle MAPE = %v, expected ≈ 0.10", m)
	}
}

func TestNoisyOraclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NoisyOracle{ErrFrac: 1.5}.Forecast(trace.Constant("x", 1, 5))
}

func TestMAPE(t *testing.T) {
	truth := &trace.Trace{Values: []float64{10, 20, 0}}
	fc := &trace.Trace{Values: []float64{11, 18, 99}}
	// Zero-truth slot skipped: (0.1 + 0.1)/2.
	if m := MAPE(truth, fc); math.Abs(m-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", m)
	}
	// All-zero truth: 0 by convention.
	if m := MAPE(&trace.Trace{Values: []float64{0}}, &trace.Trace{Values: []float64{5}}); m != 0 {
		t.Errorf("all-zero MAPE = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	MAPE(truth, &trace.Trace{Values: []float64{1}})
}

func TestForecasterNames(t *testing.T) {
	for _, f := range []Forecaster{
		SeasonalNaive{Period: 168},
		ProfileEWMA{Alpha: 0.3},
		NoisyOracle{ErrFrac: 0.2},
	} {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}
