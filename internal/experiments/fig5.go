package experiments

import (
	"repro/internal/baseline"
	"repro/internal/renewable"
	"repro/internal/report"
	"repro/internal/sim"
)

// Fig5BudgetPoint is one carbon budget of the Fig. 5(a,b) sweep; costs are
// normalized by the carbon-unaware average cost.
type Fig5BudgetPoint struct {
	BudgetFrac  float64 // budget / unaware usage
	CocaCost    float64 // normalized
	OptCost     float64 // normalized
	UnawareCost float64 // 1 by construction
	CocaNeutral bool
}

// Fig5Result reproduces the Fig. 5 sensitivity studies.
type Fig5Result struct {
	BudgetSweepFIU []Fig5BudgetPoint // Fig. 5(a)
	BudgetSweepMSR []Fig5BudgetPoint // Fig. 5(b)

	// Fig. 5(c): workload overestimation φ → normalized cost (vs φ=1).
	OverestimateFactors []float64
	OverestimateCost    []float64

	// Fig. 5(d): switching cost (fraction of 0.231 kWh) → normalized cost.
	SwitchFractions []float64
	SwitchCost      []float64
}

// Fig5 runs the four sensitivity studies of §5.2.4.
func Fig5(cfg Config) (Fig5Result, error) {
	if err := cfg.fill(); err != nil {
		return Fig5Result{}, err
	}
	var res Fig5Result
	var err error
	res.BudgetSweepFIU, err = budgetSweep(cfg, false)
	if err != nil {
		return res, err
	}
	res.BudgetSweepMSR, err = budgetSweep(cfg, true)
	if err != nil {
		return res, err
	}
	if res.OverestimateFactors, res.OverestimateCost, err = overestimateSweep(cfg); err != nil {
		return res, err
	}
	if res.SwitchFractions, res.SwitchCost, err = switchSweep(cfg); err != nil {
		return res, err
	}

	if cfg.Out != nil {
		for i, sweep := range [][]Fig5BudgetPoint{res.BudgetSweepFIU, res.BudgetSweepMSR} {
			title := "Fig 5(a): normalized avg cost vs carbon budget (FIU-like workload)"
			if i == 1 {
				title = "Fig 5(b): normalized avg cost vs carbon budget (MSR-like workload)"
			}
			t := report.NewTable(title, "budget", "COCA", "OPT", "carbon-unaware", "COCA neutral")
			for _, p := range sweep {
				t.AddRow(p.BudgetFrac, p.CocaCost, p.OptCost, p.UnawareCost, p.CocaNeutral)
			}
			if err := t.Render(cfg.Out); err != nil {
				return res, err
			}
		}
		t := report.NewTable("Fig 5(c): workload overestimation", "phi", "normalized cost")
		for i := range res.OverestimateFactors {
			t.AddRow(res.OverestimateFactors[i], res.OverestimateCost[i])
		}
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		t = report.NewTable("Fig 5(d): switching cost", "fraction of 0.231 kWh", "normalized cost")
		for i := range res.SwitchFractions {
			t.AddRow(res.SwitchFractions[i], res.SwitchCost[i])
		}
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
	}
	return res, nil
}

// budgetSweep reruns calibration at several budget fractions and compares
// COCA, OPT and the carbon-unaware algorithm, normalizing by the unaware
// cost (the paper normalizes usage by the unaware algorithm's 1.55e5 MWh).
// The fractions are independent end-to-end (each builds its own scenario),
// so they fan out on the worker pool; the per-fraction work stays
// sequential to keep the pool bounded.
func budgetSweep(cfg Config, msr bool) ([]Fig5BudgetPoint, error) {
	fracs := []float64{0.85, 0.90, 0.92, 0.95, 1.00, 1.05}
	return mapIndexed(cfg.workers(), cfg.pool(), len(fracs), func(i int) (Fig5BudgetPoint, error) {
		c := cfg
		c.Budget = fracs[i]
		c.Out = nil
		sc, _, err := c.Scenario(msr)
		if err != nil {
			return Fig5BudgetPoint{}, err
		}
		un := baseline.NewUnaware(sc)
		unRes, err := sim.Run(sc, un)
		if err != nil {
			return Fig5BudgetPoint{}, err
		}
		unSum := sim.Summarize(sc, unRes)

		_, cocaSum, err := tuneV(sc, c.VGrid, 1, c.pool())
		if err != nil {
			return Fig5BudgetPoint{}, err
		}
		opt, err := baseline.NewOPT(sc)
		if err != nil {
			return Fig5BudgetPoint{}, err
		}
		optRes, err := sim.Run(sc, opt)
		if err != nil {
			return Fig5BudgetPoint{}, err
		}
		optSum := sim.Summarize(sc, optRes)
		return Fig5BudgetPoint{
			BudgetFrac:  fracs[i],
			CocaCost:    cocaSum.AvgHourlyCostUSD / unSum.AvgHourlyCostUSD,
			OptCost:     optSum.AvgHourlyCostUSD / unSum.AvgHourlyCostUSD,
			UnawareCost: 1,
			CocaNeutral: cocaSum.BudgetUsedFraction <= 1.0,
		}, nil
	})
}

// overestimateSweep measures the Fig. 5(c) robustness: COCA decides against
// φ·λ(t) but is charged against the true λ(t).
func overestimateSweep(cfg Config) ([]float64, []float64, error) {
	factors := []float64{1.0, 1.05, 1.10, 1.15, 1.20}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return nil, nil, err
	}
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return nil, nil, err
	}
	// Each factor runs on its own scenario clone, so the parallel workers
	// never share the mutated Overestimate knob.
	sums, err := mapIndexed(cfg.workers(), cfg.pool(), len(factors), func(i int) (sim.Summary, error) {
		run := sc.Clone()
		run.Overestimate = factors[i]
		s, _, err := runCOCA(run, v)
		return s, err
	})
	if err != nil {
		return nil, nil, err
	}
	costs := make([]float64, len(factors))
	base := sums[0].AvgHourlyCostUSD
	for i := range sums {
		costs[i] = sums[i].AvgHourlyCostUSD / base
	}
	return factors, costs, nil
}

// switchSweep measures the Fig. 5(d) robustness: switching cost as a
// fraction of a server's maximum hourly energy (0.231 kWh), internalized by
// COCA and charged by the engine.
func switchSweep(cfg Config) ([]float64, []float64, error) {
	fractions := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return nil, nil, err
	}
	maxEnergy := sc.Server.MaxBusyKW() // 0.231 kWh per hour at full speed
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return nil, nil, err
	}
	sums, err := mapIndexed(cfg.workers(), cfg.pool(), len(fractions), func(i int) (sim.Summary, error) {
		run := sc.Clone()
		run.SwitchCostKWh = fractions[i] * maxEnergy
		s, _, err := runCOCA(run, v)
		return s, err
	})
	if err != nil {
		return nil, nil, err
	}
	costs := make([]float64, len(fractions))
	base := sums[0].AvgHourlyCostUSD
	for i := range sums {
		costs[i] = sums[i].AvgHourlyCostUSD / base
	}
	return fractions, costs, nil
}

// PortfolioMixStudy verifies the §5.2.4 note that COCA is insensitive to
// the off-site/REC split with the total budget held fixed (the paper
// reports < 1% change). It returns the normalized cost at each off-site
// share.
func PortfolioMixStudy(cfg Config) ([]float64, []float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	shares := []float64{0.0, 0.2, 0.4, 0.6, 0.8}
	sc, refGrid, err := cfg.Scenario(false)
	if err != nil {
		return nil, nil, err
	}
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return nil, nil, err
	}
	budget := cfg.Budget * refGrid
	pristine := sc.Portfolio.OffsiteKWh.Copy()
	// Each share clones the scenario and portfolio before rewriting the
	// off-site/REC split, keeping the parallel workers independent.
	sums, err := mapIndexed(cfg.workers(), cfg.pool(), len(shares), func(i int) (sim.Summary, error) {
		offsite := pristine.Copy()
		renewable.ScaleToTotal(offsite, sc.Slots, shares[i]*budget)
		run := sc.Clone()
		run.Portfolio = sc.Portfolio.Clone()
		run.Portfolio.OffsiteKWh = offsite
		run.Portfolio.RECsKWh = (1 - shares[i]) * budget
		s, _, err := runCOCA(run, v)
		return s, err
	})
	if err != nil {
		return nil, nil, err
	}
	costs := make([]float64, len(shares))
	base := sums[0].AvgHourlyCostUSD
	for i := range sums {
		costs[i] = sums[i].AvgHourlyCostUSD / base
	}
	return shares, costs, nil
}
