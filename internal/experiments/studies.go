package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/predict"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PredictionPoint is one forecaster of the prediction-error study.
type PredictionPoint struct {
	Forecaster string
	MAPE       float64
	AvgCostUSD float64
	CostVsCoca float64 // cost relative to COCA's neutral operating point
}

// PredictionErrorStudy extends the Fig. 3 comparison to *imperfect*
// predictions: PerfectHP's hourly caps are allocated from increasingly
// inaccurate forecasts while COCA, needing no forecasts, stays fixed. The
// paper assumes the 48-hour predictions are perfect and notes longer
// horizons "exhibit large errors"; this study quantifies the erosion.
func PredictionErrorStudy(cfg Config) ([]PredictionPoint, sim.Summary, error) {
	if err := cfg.fill(); err != nil {
		return nil, sim.Summary{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return nil, sim.Summary{}, err
	}
	_, coca, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return nil, sim.Summary{}, err
	}
	forecasters := []predict.Forecaster{
		predict.NoisyOracle{ErrFrac: 0, Seed: cfg.Seed},
		predict.NoisyOracle{ErrFrac: 0.10, Seed: cfg.Seed},
		predict.NoisyOracle{ErrFrac: 0.20, Seed: cfg.Seed},
		predict.NoisyOracle{ErrFrac: 0.40, Seed: cfg.Seed},
		predict.ProfileEWMA{Alpha: 0.3},
		predict.SeasonalNaive{Period: trace.HoursPerWeek},
	}
	// Every forecaster carries its own seed (fixed per arm, not drawn from
	// shared state), so the arms fan out deterministically.
	out, err := mapIndexed(cfg.workers(), cfg.pool(), len(forecasters), func(i int) (PredictionPoint, error) {
		f := forecasters[i]
		forecast := f.Forecast(sc.Workload)
		php, err := baseline.NewPerfectHPWithForecast(sc, 48, forecast)
		if err != nil {
			return PredictionPoint{}, err
		}
		res, err := sim.Run(sc, php)
		if err != nil {
			return PredictionPoint{}, err
		}
		s := sim.Summarize(sc, res)
		return PredictionPoint{
			Forecaster: f.Name(),
			MAPE:       predict.MAPE(sc.Workload, forecast),
			AvgCostUSD: s.AvgHourlyCostUSD,
			CostVsCoca: s.AvgHourlyCostUSD / coca.AvgHourlyCostUSD,
		}, nil
	})
	if err != nil {
		return nil, sim.Summary{}, err
	}
	if cfg.Out != nil {
		t := report.NewTable("Prediction-error study: PerfectHP under imperfect forecasts vs COCA",
			"forecaster", "MAPE", "avg hourly cost ($)", "vs COCA")
		for _, p := range out {
			t.AddRow(p.Forecaster, p.MAPE, p.AvgCostUSD, p.CostVsCoca)
		}
		t.AddRow("COCA (no forecasts)", 0.0, coca.AvgHourlyCostUSD, 1.0)
		if err := t.Render(cfg.Out); err != nil {
			return nil, sim.Summary{}, err
		}
	}
	return out, coca, nil
}

// DelayValidationPoint compares one operated slot's analytic delay cost
// against an event-driven M/G/1/PS measurement.
type DelayValidationPoint struct {
	Slot      int
	Analytic  float64 // Eq. (4): m·λs/(x − λs)
	Simulated float64 // event-driven measurement scaled to the fleet
	RelErr    float64
}

// DelayValidation closes the loop between the analytic delay model and the
// discrete-event substrate: it runs COCA, samples operated slots, and
// simulates one representative server of each slot's configuration as an
// M/G/1/PS queue (exponential requirements, the §5.1 100 ms mean at full
// speed), comparing measured mean jobs-in-system against Eq. (4). It
// returns the points and the mean absolute relative error.
func DelayValidation(cfg Config, samples int) ([]DelayValidationPoint, float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, 0, err
	}
	if samples <= 0 {
		samples = 12
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return nil, 0, err
	}
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return nil, 0, err
	}
	_, run, err := runCOCA(sc, v)
	if err != nil {
		return nil, 0, err
	}
	var points []DelayValidationPoint
	var errSum float64
	step := len(run.Records) / samples
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(run.Records) && len(points) < samples; i += step {
		rec := run.Records[i]
		if rec.Active == 0 || rec.Speed == 0 || rec.LambdaRPS <= 0 {
			continue
		}
		perServer := rec.LambdaRPS / float64(rec.Active)
		rate := sc.Server.Rate(rec.Speed)
		res, err := queueing.Simulate(queueing.Config{
			ArrivalRPS: perServer,
			ServiceRPS: rate,
			Service:    queueing.ExponentialService(1),
			Horizon:    40000,
			Warmup:     2000,
			Seed:       cfg.Seed + uint64(i),
		})
		if err != nil {
			return nil, 0, err
		}
		analytic := rec.DelayCost
		simulated := res.MeanJobs * float64(rec.Active)
		rel := math.Abs(simulated-analytic) / analytic
		points = append(points, DelayValidationPoint{
			Slot: rec.Slot, Analytic: analytic, Simulated: simulated, RelErr: rel,
		})
		errSum += rel
	}
	if len(points) == 0 {
		return nil, 0, nil
	}
	mean := errSum / float64(len(points))
	if cfg.Out != nil {
		t := report.NewTable("Delay-model validation: Eq. (4) vs event-driven M/G/1/PS",
			"slot", "analytic d", "simulated d", "rel. error")
		for _, p := range points {
			t.AddRow(p.Slot, p.Analytic, p.Simulated, p.RelErr)
		}
		if err := t.Render(cfg.Out); err != nil {
			return nil, 0, err
		}
		cfg.printf("mean absolute relative error: %.2f%%\n", 100*mean)
	}
	return points, mean, nil
}

// RenewableShareSeries reports, per calendar month, the fraction of
// facility energy covered by on-site renewables under a COCA run — a
// sustainability diagnostic used by the README and examples.
func RenewableShareSeries(sc *sim.Scenario, run *sim.Result) []float64 {
	months := len(run.Records) / (30 * 24)
	if months == 0 {
		months = 1
	}
	out := make([]float64, 0, months)
	chunk := len(run.Records) / months
	for m := 0; m < months; m++ {
		lo, hi := m*chunk, (m+1)*chunk
		if m == months-1 {
			hi = len(run.Records)
		}
		var energy, grid float64
		for _, rec := range run.Records[lo:hi] {
			energy += rec.EnergyKWh
			grid += rec.GridKWh
		}
		if energy > 0 {
			out = append(out, 1-grid/energy)
		} else {
			out = append(out, 0)
		}
	}
	return out
}
