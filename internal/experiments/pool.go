package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// workers resolves the configured fan-out: Workers > 0 is taken literally
// (1 = strictly sequential), 0 defaults to all cores. Negative values never
// reach this point — fill() rejects them with an explicit cliutil error at
// every driver entry — so the `> 0` check here is only the 0-means-default
// rule, not a silent clamp.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// pool returns the experiment pool's telemetry instruments, registered
// under the "pool" prefix of the configured registry, or nil when
// telemetry is disabled. Registration is idempotent, so every sweep in a
// run folds into the same instruments.
func (c Config) pool() *telemetry.PoolMetrics {
	if c.Telemetry == nil {
		return nil
	}
	return telemetry.NewPoolMetrics(c.Telemetry, "pool")
}

// mapIndexed evaluates fn over the indices [0, n) on a bounded pool of
// workers and returns the results in index order, so the output — and any
// rendering done from it — is byte-identical whatever the worker count.
// Jobs must be independent: each writes only its own slot. On failure the
// lowest-index error is returned (the one the sequential path would have
// hit first), keeping error reporting deterministic too. pm, when non-nil,
// observes job progress and per-job wall time; it never affects results.
func mapIndexed[T any](workers int, pm *telemetry.PoolMetrics, n int, fn func(int) (T, error)) ([]T, error) {
	call := fn
	if pm != nil {
		call = func(i int) (T, error) {
			pm.StartJob()
			start := time.Now()
			v, err := fn(i)
			pm.EndJob(err != nil, time.Since(start).Seconds())
			return v, err
		}
	}
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		pm.SetWorkers(1)
		for i := 0; i < n; i++ {
			v, err := call(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	pm.SetWorkers(workers)
	var (
		mu       sync.Mutex
		next     int
		errIdx   int = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				v, err := call(i)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
