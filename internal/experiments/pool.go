package experiments

import (
	"runtime"
	"sync"
)

// workers resolves the configured fan-out: Workers > 0 is taken literally
// (1 = strictly sequential), 0 defaults to all cores.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mapIndexed evaluates fn over the indices [0, n) on a bounded pool of
// workers and returns the results in index order, so the output — and any
// rendering done from it — is byte-identical whatever the worker count.
// Jobs must be independent: each writes only its own slot. On failure the
// lowest-index error is returned (the one the sequential path would have
// hit first), keeping error reporting deterministic too.
func mapIndexed[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		next     int
		errIdx   int = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
