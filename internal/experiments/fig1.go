package experiments

import (
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig1Result reproduces Fig. 1: the normalized workload traces.
type Fig1Result struct {
	// FIUJuly is the normalized FIU-like trace for July (Fig. 1a plots the
	// July 2012 window where the summer surge begins).
	FIUJuly []float64
	// MSRWeek is the normalized one-week MSR-like trace (Fig. 1b).
	MSRWeek []float64
	// Monthly mean of the normalized FIU year, to quantify the seasonal
	// shape (including the late-July step).
	FIUMonthlyMean []float64
}

// Fig1 synthesizes and characterizes the two workload traces.
func Fig1(cfg Config) (Fig1Result, error) {
	if err := cfg.fill(); err != nil {
		return Fig1Result{}, err
	}
	fiu := trace.FIUYear(cfg.Seed)
	msr := trace.MSRWeek(cfg.Seed)

	var res Fig1Result
	// July = days 181..211 (Jul 1 is day 181 in a non-leap synthetic year).
	res.FIUJuly = fiu.Slice(181*24, 212*24).Values
	res.MSRWeek = append([]float64(nil), msr.Values...)

	days := []int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365}
	for m := 0; m < 12; m++ {
		res.FIUMonthlyMean = append(res.FIUMonthlyMean,
			stats.Mean(fiu.Values[days[m]*24:days[m+1]*24]))
	}

	if cfg.Out != nil {
		t := report.NewTable("Fig 1(a): FIU-like workload, monthly mean of normalized arrival rate",
			"month", "mean", "note")
		names := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
		for m, v := range res.FIUMonthlyMean {
			note := ""
			if m == 6 {
				note = "late-July surge begins (paper Fig. 1a)"
			}
			t.AddRow(names[m], v, note)
		}
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		if err := report.Chart(cfg.Out, "Fig 1(a): FIU-like trace, July (normalized)", res.FIUJuly, 72, 10); err != nil {
			return res, err
		}
		if err := report.Chart(cfg.Out, "Fig 1(b): MSR-like trace, one week (normalized)", res.MSRWeek, 72, 10); err != nil {
			return res, err
		}
	}
	return res, nil
}
