package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// This file holds the studies beyond the paper's figures: the §2.2 energy-
// capping variant, the §2.1 nonlinear-tariff extension, the T-lookahead
// window sweep behind Theorem 2, an ablation of the frame-reset mechanism
// of Algorithm 1, and a green batch-scheduling study layered on §2.3's
// batch-queue isolation.

// CappingResult is the §2.2 energy-capping study: no off-site renewables;
// the REC parameter Z acts as a hard long-term cap on grid usage.
type CappingResult struct {
	CapKWh       float64
	CocaUsage    float64 // grid usage / cap
	CocaCost     float64
	UnawareUsage float64
	UnawareCost  float64
	CostPremium  float64 // COCA cost / unaware cost
	CocaUnderCap bool
}

// Capping runs the energy-capping variant: the paper notes "all the
// analysis still applies by removing the off-site renewable energy from
// our model and taking the REC parameter Z as the desired total energy
// cap".
func Capping(cfg Config) (CappingResult, error) {
	if err := cfg.fill(); err != nil {
		return CappingResult{}, err
	}
	sc, _, err := simtest.Build(simtest.Options{
		Slots: cfg.Slots, N: cfg.N, PeakRPS: cfg.PeakRPS, Beta: cfg.Beta,
		BudgetFrac: cfg.Budget, OnsiteFrac: 0.20, Seed: cfg.Seed,
		CappingMode: true,
	})
	if err != nil {
		return CappingResult{}, err
	}
	var res CappingResult
	res.CapKWh = sc.Portfolio.BudgetKWh(sc.Slots)

	_, cocaSum, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return res, err
	}
	res.CocaUsage = cocaSum.BudgetUsedFraction
	res.CocaCost = cocaSum.AvgHourlyCostUSD
	res.CocaUnderCap = cocaSum.BudgetUsedFraction <= 1

	unRes, err := sim.Run(sc, baseline.NewUnaware(sc))
	if err != nil {
		return res, err
	}
	unSum := sim.Summarize(sc, unRes)
	res.UnawareUsage = unSum.BudgetUsedFraction
	res.UnawareCost = unSum.AvgHourlyCostUSD
	res.CostPremium = res.CocaCost / res.UnawareCost

	if cfg.Out != nil {
		t := report.NewTable("Energy capping (§2.2 variant): Z as a hard usage cap",
			"policy", "grid/cap", "avg hourly cost ($)")
		t.AddRow("COCA (tuned V)", res.CocaUsage, res.CocaCost)
		t.AddRow("carbon-unaware", res.UnawareUsage, res.UnawareCost)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		cfg.printf("COCA stays under the cap at a %.1f%% cost premium\n",
			100*(res.CostPremium-1))
	}
	return res, nil
}

// LookaheadPoint is one window size of the T-lookahead sweep.
type LookaheadPoint struct {
	T          int
	MeanFrameG float64 // mean per-frame optimum G_r*
	CostBound  float64 // Theorem 2(b) bound for COCA at the study's V
}

// LookaheadSweep quantifies the P2 benchmark family of §3.2: larger
// lookahead windows weaken the per-frame constraint, so the mean frame
// optimum is non-increasing in T, and with it the Theorem 2 cost bound
// tightens. It also reports COCA's measured cost against each bound.
func LookaheadSweep(cfg Config, windows []int) ([]LookaheadPoint, float64, error) {
	if err := cfg.fill(); err != nil {
		return nil, 0, err
	}
	if len(windows) == 0 {
		// Divisors of the 8760-hour year: 1 day, 2.5 days, 5 days, ~2 months.
		windows = []int{24, 60, 120, 1460}
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return nil, 0, err
	}
	v := midGrid(cfg.VGrid)
	bounds := lyapunov.Bounds{
		YMax: float64(sc.N) * sc.Server.MaxBusyKW() * sc.PUE,
		ZMax: sc.Portfolio.Alpha*stats.MaxOf(sc.Portfolio.OffsiteKWh.Values[:sc.Slots]) + sc.Portfolio.RECPerSlotKWh(sc.Slots),
		RMax: stats.MaxOf(sc.Portfolio.OnsiteKW.Values[:sc.Slots]),
	}
	valid := windows[:0:0]
	for _, T := range windows {
		if sc.Slots%T == 0 {
			valid = append(valid, T)
		}
	}
	// The window sizes are independent dual-bisection plans: fan out.
	out, err := mapIndexed(cfg.workers(), cfg.pool(), len(valid), func(i int) (LookaheadPoint, error) {
		T := valid[i]
		la, err := baseline.NewLookahead(sc, T)
		if err != nil {
			return LookaheadPoint{}, err
		}
		optima := la.FrameOptima()
		sched := lyapunov.ConstantV(v, sc.Slots/T, T)
		return LookaheadPoint{
			T:          T,
			MeanFrameG: stats.Mean(optima),
			CostBound:  lyapunov.CostBound(bounds, sched, optima),
		}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	// COCA's measured cost at the same V for reference.
	cocaSum, _, err := runCOCA(sc, v)
	if err != nil {
		return nil, 0, err
	}
	if cfg.Out != nil {
		t := report.NewTable("T-step lookahead sweep (P2, §3.2) and Theorem 2 bounds",
			"T (hours)", "mean G_r*", "Eq. (20) bound on COCA", "COCA measured")
		for _, p := range out {
			t.AddRow(p.T, p.MeanFrameG, p.CostBound, cocaSum.AvgHourlyCostUSD)
		}
		if err := t.Render(cfg.Out); err != nil {
			return nil, 0, err
		}
	}
	return out, cocaSum.AvgHourlyCostUSD, nil
}

// FrameResetResult compares Algorithm 1's per-frame queue reset against a
// never-reset variant under a time-varying V schedule.
type FrameResetResult struct {
	WithResets    sim.Summary
	WithoutResets sim.Summary
}

// FrameResetAblation isolates the role of Algorithm 1 lines 2–4: resetting
// the deficit queue at frame boundaries decouples frames so V can be
// retuned; without resets, deficit accumulated under an early small V
// keeps throttling later frames.
func FrameResetAblation(cfg Config) (FrameResetResult, error) {
	if err := cfg.fill(); err != nil {
		return FrameResetResult{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return FrameResetResult{}, err
	}
	if cfg.Slots%4 != 0 {
		return FrameResetResult{}, nil
	}
	mid := midGrid(cfg.VGrid)
	vs := []float64{mid / 100, mid, mid * 10, mid}

	var res FrameResetResult
	// The two arms are independent year-long runs: fan out.
	sums, err := mapIndexed(cfg.workers(), cfg.pool(), 2, func(i int) (sim.Summary, error) {
		if i == 0 {
			// Standard COCA: four frames, queue reset at each boundary.
			p1, err := core.New(core.FromScenario(sc, lyapunov.VSchedule{T: cfg.Slots / 4, Vs: vs}))
			if err != nil {
				return sim.Summary{}, err
			}
			r1, err := sim.Run(sc, p1)
			if err != nil {
				return sim.Summary{}, err
			}
			return sim.Summarize(sc, r1), nil
		}
		// Ablated: the same V trajectory applied per slot, but a single
		// frame — the queue never resets.
		p2, err := core.New(core.FromScenario(sc, lyapunov.VSchedule{T: cfg.Slots, Vs: []float64{1}}))
		if err != nil {
			return sim.Summary{}, err
		}
		ab := &vOverridePolicy{Policy: p2, vs: vs, frame: cfg.Slots / 4}
		r2, err := sim.Run(sc, ab)
		if err != nil {
			return sim.Summary{}, err
		}
		return sim.Summarize(sc, r2), nil
	})
	if err != nil {
		return res, err
	}
	res.WithResets, res.WithoutResets = sums[0], sums[1]

	if cfg.Out != nil {
		t := report.NewTable("Frame-reset ablation (Algorithm 1 lines 2–4), quarterly V",
			"variant", "avg hourly cost ($)", "grid/budget")
		t.AddRow("with per-frame resets", res.WithResets.AvgHourlyCostUSD, res.WithResets.BudgetUsedFraction)
		t.AddRow("never reset", res.WithoutResets.AvgHourlyCostUSD, res.WithoutResets.BudgetUsedFraction)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
	}
	return res, nil
}

// vOverridePolicy drives a single-frame COCA policy while swapping its V
// per quarter through the config — emulating "varying V without resets".
type vOverridePolicy struct {
	*core.Policy
	vs    []float64
	frame int
}

func (v *vOverridePolicy) Name() string { return "coca-no-reset" }

func (v *vOverridePolicy) Decide(obs sim.Observation) (sim.Config, error) {
	v.Policy.SetV(v.vs[obs.Slot/v.frame])
	return v.Policy.Decide(obs)
}

// TariffResult compares flat versus inclining-block electricity pricing.
type TariffResult struct {
	Flat   sim.Summary
	Tiered sim.Summary
	// PeakGridFlat/Tiered are the maximum hourly grid draws, which the
	// convex tariff should flatten.
	PeakGridFlat   float64
	PeakGridTiered float64
}

// TariffStudy exercises the §2.1 nonlinear-cost extension: an
// inclining-block tariff whose second block starts near the flat-run
// median draw. COCA internalizes the convex cost and shaves its peaks.
func TariffStudy(cfg Config) (TariffResult, error) {
	if err := cfg.fill(); err != nil {
		return TariffResult{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return TariffResult{}, err
	}
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return TariffResult{}, err
	}
	var res TariffResult
	_, flatRun, err := runCOCA(sc, v)
	if err != nil {
		return res, err
	}
	res.Flat = sim.Summarize(sc, flatRun)
	res.PeakGridFlat = stats.MaxOf(flatRun.GridSeries())

	knee := stats.Quantile(flatRun.GridSeries(), 0.5)
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: knee, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 3},
	})
	if err != nil {
		return res, err
	}
	tsc := sc.Clone()
	tsc.Tariff = tariff
	_, tieredRun, err := runCOCA(tsc, v)
	if err != nil {
		return res, err
	}
	res.Tiered = sim.Summarize(tsc, tieredRun)
	res.PeakGridTiered = stats.MaxOf(tieredRun.GridSeries())

	if cfg.Out != nil {
		t := report.NewTable("Nonlinear tariff study (§2.1 extension): inclining-block pricing",
			"tariff", "avg hourly cost ($)", "peak hourly grid (kWh)", "grid/budget")
		t.AddRow("flat", res.Flat.AvgHourlyCostUSD, res.PeakGridFlat, res.Flat.BudgetUsedFraction)
		t.AddRow("tiered 1x/3x", res.Tiered.AvgHourlyCostUSD, res.PeakGridTiered, res.Tiered.BudgetUsedFraction)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
	}
	return res, nil
}

// GreenBatchResult is the batch-scheduling study layered on a COCA run.
type GreenBatchResult struct {
	SpareServerHours float64 // total spare capacity COCA left on powered servers
	ServedHours      float64
	Completed        int
	Missed           int
	BatchEnergyKWh   float64
	CompletionRate   float64
}

// GreenBatch runs COCA for the interactive workload, then schedules a
// deferrable batch stream (EDF) into the spare cycles of the servers COCA
// already powered on — the §2.3 batch-queue isolation made concrete.
func GreenBatch(cfg Config) (GreenBatchResult, error) {
	if err := cfg.fill(); err != nil {
		return GreenBatchResult{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return GreenBatchResult{}, err
	}
	v, _, err := tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return GreenBatchResult{}, err
	}
	_, run, err := runCOCA(sc, v)
	if err != nil {
		return GreenBatchResult{}, err
	}
	spare := batch.SpareServerHours(sc, run)
	var res GreenBatchResult
	res.SpareServerHours = stats.Sum(spare)

	// Size the batch stream to roughly a third of the spare capacity.
	meanSpare := res.SpareServerHours / float64(len(spare))
	sched := batch.NewScheduler()
	sched.SetTracer(cfg.Tracer)
	if cfg.Telemetry != nil {
		sched.Instrument(telemetry.NewBatchMetrics(cfg.Telemetry, "batch"))
	}
	jobs := batch.Workload(cfg.Seed+9, sc.Slots, 1, meanSpare/3, 4, 24)
	for _, j := range jobs {
		if err := sched.Submit(j); err != nil {
			return res, err
		}
	}
	for t := 0; t < sc.Slots; t++ {
		r := sched.Step(spare[t], sc.Server)
		res.BatchEnergyKWh += r.EnergyKWh
	}
	res.ServedHours, res.Completed, res.Missed = sched.Stats()
	if res.Completed+res.Missed > 0 {
		res.CompletionRate = float64(res.Completed) / float64(res.Completed+res.Missed)
	}

	if cfg.Out != nil {
		t := report.NewTable("Green batch scheduling on COCA's spare capacity (§2.3 isolation)",
			"metric", "value")
		t.AddRow("total spare capacity (server-hours)", res.SpareServerHours)
		t.AddRow("batch work served (server-hours)", res.ServedHours)
		t.AddRow("jobs completed", res.Completed)
		t.AddRow("jobs missed", res.Missed)
		t.AddRow("completion rate", res.CompletionRate)
		t.AddRow("batch computing energy (kWh)", res.BatchEnergyKWh)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
	}
	return res, nil
}
