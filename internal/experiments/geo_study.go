package experiments

import (
	"repro/internal/dcmodel"
	"repro/internal/geo"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// GeoResult compares carbon- and price-aware geographic load balancing
// against a capacity-proportional split on the same three-site federation.
type GeoResult struct {
	SmartCostUSD float64
	NaiveCostUSD float64
	SmartGridKWh float64
	NaiveGridKWh float64
	SavingFrac   float64
	// SiteLoadShare is the smart policy's average load share per site.
	SiteLoadShare []float64
	SiteNames     []string
}

// GeoStudy runs the multi-site extension: three sites with different price
// levels and renewable positions, a shared global workload, and per-site
// carbon-deficit queues steering the split (the geographical-load-balancing
// setting of the paper's refs [21][29][32], driven by COCA's machinery).
func GeoStudy(cfg Config) (GeoResult, error) {
	if err := cfg.fill(); err != nil {
		return GeoResult{}, err
	}
	slots := cfg.Slots
	perSiteN := cfg.N / 3
	if perSiteN < 50 {
		perSiteN = 50
	}
	mkSite := func(name string, priceScale, onsiteKW, budgetPerSlot float64, seed uint64) geo.Site {
		p := price.CAISOYear(seed)
		for i := range p.Values {
			p.Values[i] *= priceScale
		}
		onsite := renewable.Blend(
			[]*trace.Trace{renewable.SolarYear(seed + 1), renewable.WindYear(seed + 2)},
			[]float64{0.5, 0.5},
		)
		for i := range onsite.Values {
			onsite.Values[i] *= onsiteKW
		}
		return geo.Site{
			Name: name, Server: dcmodel.Opteron(), N: perSiteN,
			Gamma: 0.95, PUE: 1,
			Price: p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   onsite,
				OffsiteKWh: trace.Constant("f", budgetPerSlot*0.4, slots),
				RECsKWh:    budgetPerSlot * 0.6 * float64(slots),
				Alpha:      1,
			},
		}
	}
	// Per-slot budgets sized around a site's typical draw at one third of
	// the global load (≈ perSiteN/3 active servers ≈ 0.06·perSiteN kWh).
	typical := 0.06 * float64(perSiteN)
	sites := []geo.Site{
		mkSite("hydro-north", 0.6, typical*0.5, typical*1.2, cfg.Seed+10), // cheap, green
		mkSite("metro-east", 1.3, typical*0.1, typical*0.9, cfg.Seed+20),  // expensive, tight budget
		mkSite("desert-west", 0.9, typical*0.8, typical*1.0, cfg.Seed+30), // solar-rich
	}

	run := func(smart bool) (cost, grid float64, shares []float64, err error) {
		sys, err := geo.NewSystem(cloneSites(sites), cfg.Beta, slots)
		if err != nil {
			return 0, 0, nil, err
		}
		if smart {
			// Only the smart arm is observed: it is the run whose per-site
			// allocation decisions the spans and counters explain, and the
			// arms must not share mutable instruments across workers.
			sys.SetTracer(cfg.Tracer)
			if cfg.Telemetry != nil {
				sys.Instrument(telemetry.NewGeoMetrics(cfg.Telemetry, "geo"))
			}
		}
		wl := trace.FIUYear(cfg.Seed).ScaledToPeak(0.5 * sys.TotalCapacityRPS())
		shares = make([]float64, len(sites))
		var totalLoad float64
		v := midGrid(cfg.VGrid) / float64(cfg.N) * float64(3*perSiteN)
		for t := 0; t < slots; t++ {
			var out geo.StepOutcome
			if smart {
				out, err = sys.Step(wl.Values[t], v)
			} else {
				out, err = sys.ProportionalSplit(wl.Values[t], v)
			}
			if err != nil {
				return 0, 0, nil, err
			}
			sys.Settle(out)
			cost += out.TotalCostUSD
			grid += out.TotalGridKWh
			for i, so := range out.Sites {
				shares[i] += so.LoadRPS
			}
			totalLoad += wl.Values[t]
		}
		if totalLoad > 0 {
			for i := range shares {
				shares[i] /= totalLoad
			}
		}
		return cost, grid, shares, nil
	}

	var res GeoResult
	// The smart and naive runs operate on independent site clones: fan out.
	type geoRun struct {
		cost, grid float64
		shares     []float64
	}
	runs, err := mapIndexed(cfg.workers(), cfg.pool(), 2, func(i int) (geoRun, error) {
		cost, grid, shares, err := run(i == 0)
		return geoRun{cost, grid, shares}, err
	})
	if err != nil {
		return res, err
	}
	res.SmartCostUSD, res.SmartGridKWh = runs[0].cost, runs[0].grid
	res.NaiveCostUSD, res.NaiveGridKWh = runs[1].cost, runs[1].grid
	res.SiteLoadShare = runs[0].shares
	for _, s := range sites {
		res.SiteNames = append(res.SiteNames, s.Name)
	}
	if res.NaiveCostUSD > 0 {
		res.SavingFrac = 1 - res.SmartCostUSD/res.NaiveCostUSD
	}

	if cfg.Out != nil {
		t := report.NewTable("Geographic load balancing (multi-site extension)",
			"policy", "total cost ($)", "total grid (kWh)")
		t.AddRow("geo-aware split (per-site deficit queues)", res.SmartCostUSD, res.SmartGridKWh)
		t.AddRow("capacity-proportional split", res.NaiveCostUSD, res.NaiveGridKWh)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		t2 := report.NewTable("Smart split: average load share per site", "site", "share")
		for i, name := range res.SiteNames {
			t2.AddRow(name, res.SiteLoadShare[i])
		}
		if err := t2.Render(cfg.Out); err != nil {
			return res, err
		}
		cfg.printf("geo-aware saving vs proportional: %.1f%%\n", 100*res.SavingFrac)
	}
	return res, nil
}

// cloneSites deep-copies site portfolios so two runs cannot share queues
// or mutate each other's traces.
func cloneSites(sites []geo.Site) []geo.Site {
	out := make([]geo.Site, len(sites))
	for i, s := range sites {
		out[i] = s
		p := *s.Portfolio
		p.OnsiteKW = s.Portfolio.OnsiteKW.Copy()
		p.OffsiteKWh = s.Portfolio.OffsiteKWh.Copy()
		out[i].Portfolio = &p
		out[i].Price = s.Price.Copy()
	}
	return out
}
