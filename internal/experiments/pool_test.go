package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func TestMapIndexedPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		out, err := mapIndexed(workers, nil, 17, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapIndexedLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4} {
		_, err := mapIndexed(workers, nil, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestMapIndexedEmptyAndBounds(t *testing.T) {
	out, err := mapIndexed(4, nil, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	var calls atomic.Int64
	if _, err := mapIndexed(16, nil, 5, func(i int) (int, error) { calls.Add(1); return i, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("fn called %d times, want 5", calls.Load())
	}
}

// poolConfig is a reduced-scale suite configuration for the determinism
// tests: big enough to cross frame boundaries, small enough to run the
// full drivers repeatedly.
func poolConfig(workers int, out *bytes.Buffer) Config {
	return Config{Slots: 7 * 24, N: 500, Seed: 2012, Workers: workers, Out: out}
}

// TestParallelSweepsMatchSequential is the harness-level golden test: the
// drivers must produce identical structured results AND byte-identical
// rendered reports whether they run on one worker or fan out.
func TestParallelSweepsMatchSequential(t *testing.T) {
	type runner func(cfg Config) (any, error)
	drivers := map[string]runner{
		"fig2": func(cfg Config) (any, error) { return Fig2(cfg) },
		"portfolio-mix": func(cfg Config) (any, error) {
			shares, costs, err := PortfolioMixStudy(cfg)
			return [2][]float64{shares, costs}, err
		},
		"frame-reset": func(cfg Config) (any, error) { return FrameResetAblation(cfg) },
	}
	for name, run := range drivers {
		t.Run(name, func(t *testing.T) {
			var seqOut, parOut bytes.Buffer
			seq, err := run(poolConfig(1, &seqOut))
			if err != nil {
				t.Fatal(err)
			}
			par, err := run(poolConfig(4, &parOut))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel result diverges from sequential:\nseq %+v\npar %+v", seq, par)
			}
			if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
				t.Fatalf("rendered output differs between Workers=1 and Workers=4:\n--- seq ---\n%s\n--- par ---\n%s",
					seqOut.String(), parOut.String())
			}
		})
	}
}

// TestPoolTelemetry checks that a configured registry observes the pool's
// job progress without changing results: counts add up across sequential
// and parallel runs, per-job wall times are sampled, and errored jobs land
// in the error counter instead of jobs_done.
func TestPoolTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{Workers: 4, Telemetry: reg}
	out, err := mapIndexed(cfg.workers(), cfg.pool(), 9, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 9 {
		t.Fatalf("mapIndexed: %v (len %d)", err, len(out))
	}
	pm := cfg.pool()
	if got := pm.JobsStarted.Value(); got != 9 {
		t.Fatalf("jobs started = %v, want 9", got)
	}
	if got := pm.JobsDone.Value(); got != 9 {
		t.Fatalf("jobs done = %v, want 9", got)
	}
	if got := pm.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight after drain = %v, want 0", got)
	}
	if got := pm.JobSeconds.Snapshot().Count; got != 9 {
		t.Fatalf("job wall-time samples = %v, want 9", got)
	}

	boom := errors.New("boom")
	if _, err := mapIndexed(cfg.workers(), cfg.pool(), 5, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := pm.JobErrors.Value(); got != 1 {
		t.Fatalf("job errors = %v, want 1", got)
	}
	if got := pm.JobsDone.Value(); got != 9+4 {
		t.Fatalf("jobs done after error run = %v, want 13", got)
	}
}
