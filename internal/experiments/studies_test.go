package experiments

import (
	"io"
	"testing"
)

func TestPredictionErrorStudy(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	cfg.Slots = 6 * 7 * 24
	points, coca, err := PredictionErrorStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// The zero-error oracle is exactly the paper's PerfectHP and must be
	// the cheapest forecaster variant (or within noise of it).
	perfect := points[0]
	if perfect.MAPE != 0 {
		t.Fatalf("first point should be the perfect oracle, MAPE = %v", perfect.MAPE)
	}
	for _, p := range points[1:4] { // noisy oracles with growing error
		if p.MAPE <= 0 {
			t.Errorf("%s: MAPE = %v", p.Forecaster, p.MAPE)
		}
	}
	// Forecast noise moves PerfectHP's cost only within a band: its
	// λ-proportional allocation heuristic, not forecast quality, dominates
	// (noise can even soften pathologically tight caps slightly).
	worst := points[3]
	if ratio := worst.AvgCostUSD / perfect.AvgCostUSD; ratio < 0.9 || ratio > 1.3 {
		t.Errorf("40%%-error PerfectHP at %vx of perfect — outside the plausible band", ratio)
	}
	// COCA needs no forecasts and must beat every PerfectHP variant.
	for _, p := range points {
		if p.CostVsCoca < 1 {
			t.Errorf("%s: PerfectHP (%v) beat COCA (%v)", p.Forecaster, p.AvgCostUSD, coca.AvgHourlyCostUSD)
		}
	}
}

func TestDelayValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	cfg.Slots = 4 * 7 * 24
	points, meanErr, err := DelayValidation(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("too few validation points: %d", len(points))
	}
	// The analytic M/G/1/PS model should match the event-driven simulation
	// within a few percent on average.
	if meanErr > 0.10 {
		t.Errorf("mean relative error %v — Eq. (4) model not matching the simulator", meanErr)
	}
	for _, p := range points {
		if p.Analytic <= 0 || p.Simulated <= 0 {
			t.Errorf("degenerate point: %+v", p)
		}
	}
}

func TestRenewableShareSeries(t *testing.T) {
	cfg := smallConfig()
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		t.Fatal(err)
	}
	_, run, err := runCOCA(sc, midGrid(cfg.VGrid))
	if err != nil {
		t.Fatal(err)
	}
	shares := RenewableShareSeries(sc, run)
	if len(shares) == 0 {
		t.Fatal("no months")
	}
	var total float64
	for _, s := range shares {
		if s < 0 || s > 1 {
			t.Fatalf("share %v outside [0,1]", s)
		}
		total += s
	}
	// On-site was calibrated to ≈ 20% of consumption.
	avg := total / float64(len(shares))
	if avg < 0.10 || avg > 0.35 {
		t.Errorf("average on-site share %v far from the 20%% calibration", avg)
	}
}

func TestGeoStudy(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	cfg.Slots = 4 * 7 * 24
	res, err := GeoStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SmartCostUSD <= 0 || res.NaiveCostUSD <= 0 {
		t.Fatalf("degenerate costs: %+v", res)
	}
	if res.SmartCostUSD > res.NaiveCostUSD*(1+1e-9) {
		t.Errorf("geo-aware split (%v) worse than proportional (%v)",
			res.SmartCostUSD, res.NaiveCostUSD)
	}
	var shareSum float64
	for _, s := range res.SiteLoadShare {
		if s < 0 || s > 1 {
			t.Fatalf("share %v outside [0,1]", s)
		}
		shareSum += s
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Errorf("shares sum to %v", shareSum)
	}
}
