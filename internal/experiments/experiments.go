// Package experiments reproduces every figure of the paper's evaluation
// (§5): Fig. 1 (workload traces), Fig. 2 (impact of the cost-carbon
// parameter V), Fig. 3 (COCA versus the prediction-based PerfectHP),
// Fig. 4 (execution of the GSD distributed optimizer) and Fig. 5
// (sensitivity to carbon budget, workload trace, workload overestimation
// and switching cost). Each driver returns structured results — the same
// rows/series the paper plots — and optionally renders tables and ASCII
// charts. EXPERIMENTS.md records paper-claimed versus measured values.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/trace"
)

// Config scales the experiment suite. The defaults reproduce the paper's
// §5.1 setup: 216,000 Opteron servers (peak ≈ 50 MW), a one-year horizon,
// peak arrivals 1.1 M req/s (≈ 50% of capacity), a 92% carbon budget split
// 40% off-site / 60% RECs, and on-site renewables at 20% of consumption.
type Config struct {
	Slots   int     // horizon (default: 8760)
	N       int     // fleet size (default: 216000)
	PeakRPS float64 // peak arrival rate (default: 1.1e6)
	Beta    float64 // delay weight (default: 0.02, see DESIGN.md §4)
	Budget  float64 // budget fraction of unaware usage (default: 0.92)
	Seed    uint64  // master seed (default: 2012, the trace year)
	Out     io.Writer

	// Workers bounds the experiment fan-out: independent runs (V sweeps,
	// budget fractions, ablation arms) are mapped onto this many workers.
	// 0 uses all cores; 1 forces strictly sequential execution. Results
	// are deterministic and byte-identical at any worker count.
	Workers int

	// VGrid is the sweep for Fig. 2 and the tuning grid for the neutral
	// operating point; nil selects a default logarithmic grid.
	VGrid []float64

	// Telemetry, when non-nil, receives experiment-pool progress and
	// per-job timing under the "pool" prefix. It never affects results.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, records execution spans for the experiments
	// that step traceable subsystems on the calling goroutine (the geo
	// federation's smart run, the green-batch scheduler, Fig. 4's GSD
	// scale probe); fanned-out worker runs stay untraced because ambient
	// parenting assumes one goroutine. It never affects results.
	Tracer *span.Tracer
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{
		Slots:   trace.HoursPerYear,
		N:       216000,
		PeakRPS: 1.1e6,
		Beta:    0.02,
		Budget:  0.92,
		Seed:    2012,
	}
}

// fill applies the paper-scale defaults and validates the fields a zero
// value does not cover. A negative Workers used to slip through workers()'
// `> 0` check and silently mean "all cores"; library callers now get the
// same explicit cliutil error the CLI raises for -workers.
func (c *Config) fill() error {
	if err := cliutil.WorkersFor("experiments.Config.Workers", c.Workers); err != nil {
		return err
	}
	d := Default()
	if c.Slots == 0 {
		c.Slots = d.Slots
	}
	if c.N == 0 {
		c.N = d.N
	}
	if c.PeakRPS == 0 {
		// Scale the paper's 50%-of-capacity peak to the configured fleet.
		c.PeakRPS = d.PeakRPS * float64(c.N) / float64(d.N)
	}
	if c.Beta == 0 {
		c.Beta = d.Beta
	}
	if c.Budget == 0 {
		c.Budget = d.Budget
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.VGrid == nil {
		c.VGrid = defaultVGrid(c.N)
	}
	return nil
}

// defaultVGrid scales the sweep with fleet size: the interesting V range
// grows with the absolute cost and energy magnitudes.
func defaultVGrid(n int) []float64 {
	scale := float64(n) / 216000
	base := []float64{1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 2e8, 3e8, 5e8, 1e9}
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v * scale
	}
	return out
}

// Scenario builds the calibrated paper-scale scenario; msr selects the
// MSR-like workload of Fig. 1(b)/5(b) instead of the FIU-like default.
// It returns the scenario and the carbon-unaware reference grid usage.
func (c Config) Scenario(msr bool) (*sim.Scenario, float64, error) {
	if err := c.fill(); err != nil {
		return nil, 0, err
	}
	return simtest.Build(simtest.Options{
		Slots:      c.Slots,
		N:          c.N,
		PeakRPS:    c.PeakRPS,
		Beta:       c.Beta,
		BudgetFrac: c.Budget,
		OnsiteFrac: 0.20,
		Seed:       c.Seed,
		MSR:        msr,
	})
}

// runCOCA runs COCA with a constant V over the scenario.
func runCOCA(sc *sim.Scenario, v float64) (sim.Summary, *sim.Result, error) {
	p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(v, 1, sc.Slots)))
	if err != nil {
		return sim.Summary{}, nil, err
	}
	res, err := sim.Run(sc, p)
	if err != nil {
		return sim.Summary{}, nil, err
	}
	return sim.Summarize(sc, res), res, nil
}

// TuneV finds, over the grid, the V whose yearly usage comes closest to the
// budget without exceeding it — the paper's neutral operating point ("COCA
// achieves a close-to-minimum cost with V ≈ 240 while satisfying carbon
// neutrality"). It returns the chosen V and its summary. The grid runs are
// independent and fan out across all cores.
func TuneV(sc *sim.Scenario, grid []float64) (float64, sim.Summary, error) {
	return tuneV(sc, grid, Config{}.workers(), nil)
}

// tuneV is TuneV with an explicit worker count: the grid fans out on the
// pool, then the winner is picked sequentially so tie-breaking (first V to
// attain the best fraction) is identical at any worker count.
func tuneV(sc *sim.Scenario, grid []float64, workers int, pm *telemetry.PoolMetrics) (float64, sim.Summary, error) {
	sums, err := mapIndexed(workers, pm, len(grid), func(i int) (sim.Summary, error) {
		s, _, err := runCOCA(sc, grid[i])
		return s, err
	})
	if err != nil {
		return 0, sim.Summary{}, err
	}
	bestV := 0.0
	var best sim.Summary
	found := false
	for i, s := range sums {
		if s.BudgetUsedFraction <= 1.0 && (!found || s.BudgetUsedFraction > best.BudgetUsedFraction) {
			bestV, best, found = grid[i], s, true
		}
	}
	if !found {
		// Even the smallest V overshoots; take the smallest.
		return grid[0], sums[0], nil
	}
	return bestV, best, nil
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}
