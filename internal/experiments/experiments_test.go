package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

// smallConfig keeps experiment tests fast: a 12-week horizon with a
// 2000-server fleet (84 days divides into 4 frames for Fig. 2's quarterly
// schedule).
func smallConfig() Config {
	return Config{
		Slots: 84 * 24,
		N:     2000,
		Seed:  2012,
	}
}

// TestNegativeWorkersRejected pins the library-side rule: a negative
// Workers is an explicit error at every driver entry point, not a silent
// all-cores fallback (which is what workers()'s `> 0` check used to do).
func TestNegativeWorkersRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = -2
	if _, err := Fig2(cfg); err == nil || !strings.Contains(err.Error(), "experiments.Config.Workers") {
		t.Fatalf("Fig2 with Workers=-2 = %v, want named cliutil error", err)
	}
	if _, _, err := cfg.Scenario(false); err == nil || !strings.Contains(err.Error(), "experiments.Config.Workers") {
		t.Fatalf("Scenario with Workers=-2 = %v, want named cliutil error", err)
	}
}

func TestDefaultsMatchPaperSetup(t *testing.T) {
	d := Default()
	if d.N != 216000 || d.Slots != 8760 || d.PeakRPS != 1.1e6 || d.Budget != 0.92 {
		t.Errorf("defaults drifted from §5.1: %+v", d)
	}
}

func TestConfigFillScalesPeak(t *testing.T) {
	c := Config{N: 21600}
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.PeakRPS-1.1e5) > 1e-6 {
		t.Errorf("scaled peak = %v, want 1.1e5", c.PeakRPS)
	}
	if len(c.VGrid) == 0 {
		t.Error("no default V grid")
	}
}

func TestFig1(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Out = &buf
	res, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FIUJuly) != 31*24 {
		t.Errorf("July slice = %d hours", len(res.FIUJuly))
	}
	if len(res.MSRWeek) != 7*24 {
		t.Errorf("MSR week = %d hours", len(res.MSRWeek))
	}
	if len(res.FIUMonthlyMean) != 12 {
		t.Fatalf("months = %d", len(res.FIUMonthlyMean))
	}
	// The late-July surge: August clearly above June.
	if res.FIUMonthlyMean[7] < res.FIUMonthlyMean[5]*1.15 {
		t.Errorf("no surge: Jun %v, Aug %v", res.FIUMonthlyMean[5], res.FIUMonthlyMean[7])
	}
	if !strings.Contains(buf.String(), "Fig 1(a)") {
		t.Error("report missing")
	}
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) < 5 {
		t.Fatalf("sweep too small: %d", len(res.Sweep))
	}
	first, last := res.Sweep[0], res.Sweep[len(res.Sweep)-1]
	// Fig. 2(a): cost decreases with V.
	if last.AvgCostUSD >= first.AvgCostUSD {
		t.Errorf("cost did not fall with V: %v → %v", first.AvgCostUSD, last.AvgCostUSD)
	}
	// Fig. 2(b): deficit increases with V.
	if last.AvgDeficitKWh <= first.AvgDeficitKWh {
		t.Errorf("deficit did not rise with V: %v → %v", first.AvgDeficitKWh, last.AvgDeficitKWh)
	}
	// The V→∞ reference lower-bounds every sweep point.
	for _, p := range res.Sweep {
		if p.AvgCostUSD < res.UnawareAvgCostUSD*(1-1e-9) {
			t.Errorf("V=%v cost %v below the carbon-unaware cost %v",
				p.V, p.AvgCostUSD, res.UnawareAvgCostUSD)
		}
	}
	// Fig. 2(c,d): quarterly-V series present and finite.
	if len(res.MovingAvgCost) != cfg.Slots {
		t.Fatalf("moving average length %d", len(res.MovingAvgCost))
	}
	for i, v := range res.MovingAvgCost {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("moving avg cost[%d] = %v", i, v)
		}
	}
}

func TestFig3CocaBeatsPerfectHP(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CocaNeutral {
		t.Error("tuned COCA not carbon neutral")
	}
	if res.SavingFrac <= 0 {
		t.Errorf("COCA did not beat PerfectHP: saving %v", res.SavingFrac)
	}
	if len(res.RunningCostCoca) != cfg.Slots || len(res.RunningDeficitPHP) != cfg.Slots {
		t.Error("running series length wrong")
	}
	// Fig. 3(a): the final running-average ordering matches the summary.
	lastCoca := res.RunningCostCoca[cfg.Slots-1]
	lastPHP := res.RunningCostPHP[cfg.Slots-1]
	if lastCoca >= lastPHP {
		t.Errorf("running averages disagree: coca %v, php %v", lastCoca, lastPHP)
	}
}

func TestFig4GSDBehavior(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	cfg.N = 2000 // 200 groups × 10 servers
	res, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeltaRuns) != 3 {
		t.Fatalf("delta runs = %d", len(res.DeltaRuns))
	}
	// Fig. 4(a): higher δ must end at least as good as the lowest δ.
	low := res.DeltaRuns[0].Final
	high := res.DeltaRuns[2].Final
	if high > low*1.02 {
		t.Errorf("high-δ final %v worse than low-δ %v", high, low)
	}
	// Fig. 4(b): different initial points converge to similar objectives
	// ("GSD is quite insensitive to the initial point").
	if len(res.InitRuns) < 2 {
		t.Fatalf("init runs = %d", len(res.InitRuns))
	}
	var lo, hi float64 = math.Inf(1), 0
	for _, r := range res.InitRuns {
		if r.Final < lo {
			lo = r.Final
		}
		if r.Final > hi {
			hi = r.Final
		}
	}
	if hi > lo*1.10 {
		t.Errorf("initial-point spread too wide: %v vs %v", lo, hi)
	}
	if res.Elapsed500 <= 0 {
		t.Error("timing not recorded")
	}
}

func TestFig5Sensitivity(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	cfg.Slots = 6 * 7 * 24 // shorter: Fig5 runs many scenarios
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, sweep := range map[string][]Fig5BudgetPoint{
		"FIU": res.BudgetSweepFIU, "MSR": res.BudgetSweepMSR,
	} {
		if len(sweep) != 6 {
			t.Fatalf("%s sweep length %d", name, len(sweep))
		}
		for _, p := range sweep {
			// OPT never beaten by a neutral COCA; both near or above 1 of
			// unaware only when budget is tight.
			if p.CocaNeutral && p.CocaCost < p.OptCost*(1-5e-3) {
				t.Errorf("%s budget %v: neutral COCA %v beats OPT %v",
					name, p.BudgetFrac, p.CocaCost, p.OptCost)
			}
			if p.OptCost < 1-1e-9 {
				t.Errorf("%s budget %v: OPT %v below unaware (impossible: unaware is unconstrained optimum)",
					name, p.BudgetFrac, p.OptCost)
			}
		}
		// Tighter budgets cost at least as much as looser ones for OPT.
		for i := 1; i < len(sweep); i++ {
			if sweep[i].OptCost > sweep[i-1].OptCost*(1+5e-3) {
				t.Errorf("%s: OPT cost increased with looser budget: %v → %v",
					name, sweep[i-1].OptCost, sweep[i].OptCost)
			}
		}
	}
	// Fig. 5(c): overestimation up to 20% costs little (paper: < 2.5%).
	last := res.OverestimateCost[len(res.OverestimateCost)-1]
	if last > 1.05 {
		t.Errorf("20%% overestimation raised cost by %v%%", (last-1)*100)
	}
	// Fig. 5(d): 10% switching cost raises total cost mildly (paper: < 5%).
	lastSw := res.SwitchCost[len(res.SwitchCost)-1]
	if lastSw > 1.10 {
		t.Errorf("10%% switching cost raised cost by %v%%", (lastSw-1)*100)
	}
	for _, v := range append(res.OverestimateCost, res.SwitchCost...) {
		if v < 0.95 {
			t.Errorf("normalized cost %v below baseline — accounting bug?", v)
		}
	}
}

func TestPortfolioMixInsensitivity(t *testing.T) {
	cfg := smallConfig()
	cfg.Slots = 6 * 7 * 24
	shares, costs, err := PortfolioMixStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != len(costs) {
		t.Fatal("length mismatch")
	}
	for i, c := range costs {
		if math.Abs(c-1) > 0.03 {
			t.Errorf("offsite share %v changed cost by %v%% (paper: < 1%%)",
				shares[i], (c-1)*100)
		}
	}
}

func TestTuneVStaysWithinBudget(t *testing.T) {
	cfg := smallConfig()
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		t.Fatal(err)
	}
	v, s, err := TuneV(sc, cfg.VGrid)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("v = %v", v)
	}
	if s.BudgetUsedFraction > 1.0 {
		t.Errorf("tuned V violates budget: %v", s.BudgetUsedFraction)
	}
	if s.BudgetUsedFraction < 0.85 {
		t.Errorf("tuned V wastes budget: %v", s.BudgetUsedFraction)
	}
}
