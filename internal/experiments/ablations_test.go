package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestCappingStudy(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Out = &buf
	res, err := Capping(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CocaUnderCap {
		t.Errorf("COCA exceeded the cap: %v", res.CocaUsage)
	}
	if res.UnawareUsage <= 1 {
		t.Errorf("unaware within the cap (%v) — cap not binding", res.UnawareUsage)
	}
	if res.CostPremium < 1 {
		t.Errorf("capped COCA cheaper than unconstrained: %v", res.CostPremium)
	}
	if res.CostPremium > 1.25 {
		t.Errorf("capping premium implausibly large: %v", res.CostPremium)
	}
	if !strings.Contains(buf.String(), "Energy capping") {
		t.Error("report missing")
	}
}

func TestLookaheadSweepMonotone(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	points, cocaCost, err := LookaheadSweep(cfg, []int{24, 56, 168, 336})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("too few valid windows: %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanFrameG > points[i-1].MeanFrameG*(1+1e-6) {
			t.Errorf("mean G_r* increased with T: %v → %v at T=%d",
				points[i-1].MeanFrameG, points[i].MeanFrameG, points[i].T)
		}
	}
	// Theorem 2: COCA's measured cost below each bound.
	for _, p := range points {
		if cocaCost > p.CostBound {
			t.Errorf("T=%d: measured %v above the Eq. (20) bound %v", p.T, cocaCost, p.CostBound)
		}
	}
}

func TestFrameResetAblation(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	res, err := FrameResetAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithResets.Slots == 0 || res.WithoutResets.Slots == 0 {
		t.Fatal("ablation did not run")
	}
	// Without resets, deficit accumulated under the early tiny V keeps
	// throttling later frames: usage can only be lower or equal.
	if res.WithoutResets.TotalGridKWh > res.WithResets.TotalGridKWh*(1+1e-6) {
		t.Errorf("never-reset used more energy (%v) than with resets (%v)",
			res.WithoutResets.TotalGridKWh, res.WithResets.TotalGridKWh)
	}
}

func TestTariffStudy(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	res, err := TariffStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The inclining-block tariff can only raise the dollar cost…
	if res.Tiered.AvgHourlyCostUSD < res.Flat.AvgHourlyCostUSD*(1-1e-9) {
		t.Errorf("tiered cost %v below flat %v", res.Tiered.AvgHourlyCostUSD, res.Flat.AvgHourlyCostUSD)
	}
	// …and should flatten the peaks.
	if res.PeakGridTiered > res.PeakGridFlat*(1+1e-9) {
		t.Errorf("tiered peak %v above flat peak %v", res.PeakGridTiered, res.PeakGridFlat)
	}
}

func TestGreenBatch(t *testing.T) {
	cfg := smallConfig()
	cfg.Out = io.Discard
	res, err := GreenBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpareServerHours <= 0 {
		t.Fatal("no spare capacity")
	}
	if res.ServedHours <= 0 || res.ServedHours > res.SpareServerHours {
		t.Errorf("served %v of %v spare", res.ServedHours, res.SpareServerHours)
	}
	if res.CompletionRate < 0.5 {
		t.Errorf("completion rate %v too low for a stream sized to a third of spare", res.CompletionRate)
	}
	if res.BatchEnergyKWh <= 0 {
		t.Error("no batch energy accounted")
	}
}
