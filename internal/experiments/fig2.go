package experiments

import (
	"repro/internal/core"
	"repro/internal/lyapunov"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig2Point is one V of the constant-V sweep.
type Fig2Point struct {
	V             float64
	AvgCostUSD    float64 // Fig. 2(a)
	AvgDeficitKWh float64 // Fig. 2(b): avg hourly usage minus available budget
	BudgetUsed    float64 // grid usage / budget
}

// Fig2Result reproduces Fig. 2: the impact of the cost-carbon parameter.
type Fig2Result struct {
	Sweep []Fig2Point // Fig. 2(a,b): constant V

	// Fig. 2(c,d): quarterly-varying V; 45-day moving averages.
	VaryingVs         []float64
	MovingAvgCost     []float64
	MovingAvgDeficit  []float64
	UnawareAvgCostUSD float64 // the V→∞ reference
}

// Fig2 sweeps constant V (Fig. 2a,b) and runs a quarterly-varying V
// schedule (Fig. 2c,d).
func Fig2(cfg Config) (Fig2Result, error) {
	if err := cfg.fill(); err != nil {
		return Fig2Result{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return Fig2Result{}, err
	}
	var res Fig2Result
	// One batch over the V grid plus the carbon-unaware V→∞ reference.
	vs := append(append([]float64(nil), cfg.VGrid...), 1e15)
	sums, err := mapIndexed(cfg.workers(), cfg.pool(), len(vs), func(i int) (sim.Summary, error) {
		s, _, err := runCOCA(sc, vs[i])
		return s, err
	})
	if err != nil {
		return res, err
	}
	for i, v := range cfg.VGrid {
		res.Sweep = append(res.Sweep, Fig2Point{
			V:             v,
			AvgCostUSD:    sums[i].AvgHourlyCostUSD,
			AvgDeficitKWh: sums[i].AvgDeficitKWh,
			BudgetUsed:    sums[i].BudgetUsedFraction,
		})
	}
	res.UnawareAvgCostUSD = sums[len(vs)-1].AvgHourlyCostUSD

	// Fig. 2(c,d): quarterly V — start small (cost high, deficit negative),
	// then increase, demonstrating the tunable tradeoff.
	if cfg.Slots%4 == 0 {
		mid := midGrid(cfg.VGrid)
		res.VaryingVs = []float64{mid / 100, mid, mid * 10, mid}
		sched := lyapunov.VSchedule{T: cfg.Slots / 4, Vs: res.VaryingVs}
		p, err := core.New(core.FromScenario(sc, sched))
		if err != nil {
			return res, err
		}
		r, err := sim.Run(sc, p)
		if err != nil {
			return res, err
		}
		window := 45 * 24
		if window > cfg.Slots {
			window = cfg.Slots
		}
		res.MovingAvgCost = stats.MovingAverageSeries(r.CostSeries(), window)
		res.MovingAvgDeficit = stats.MovingAverageSeries(r.DeficitSeries(), window)
	}

	if cfg.Out != nil {
		t := report.NewTable("Fig 2(a,b): impact of constant V",
			"V", "avg hourly cost ($)", "avg hourly deficit (kWh)", "grid/budget")
		for _, p := range res.Sweep {
			t.AddRow(p.V, p.AvgCostUSD, p.AvgDeficitKWh, p.BudgetUsed)
		}
		t.AddRow("inf (carbon-unaware)", res.UnawareAvgCostUSD, "", "")
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		if len(res.MovingAvgCost) > 0 {
			if err := report.Chart(cfg.Out, "Fig 2(c): 45-day moving avg cost, quarterly V", res.MovingAvgCost, 72, 10); err != nil {
				return res, err
			}
			if err := report.Chart(cfg.Out, "Fig 2(d): 45-day moving avg deficit, quarterly V", res.MovingAvgDeficit, 72, 10); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

func midGrid(grid []float64) float64 {
	if len(grid) == 0 {
		return 1
	}
	return grid[len(grid)/2]
}
