package experiments

import (
	"time"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/report"
)

// Fig4Run is one GSD execution trace.
type Fig4Run struct {
	Label   string
	History []float64 // incumbent objective per iteration
	Final   float64
}

// Fig4Result reproduces Fig. 4: the execution of GSD at a snapshot slot.
type Fig4Result struct {
	// DeltaRuns: cost iterations for different temperatures δ (Fig. 4a).
	DeltaRuns []Fig4Run
	// InitRuns: cost iterations from different initial points at fixed δ
	// (Fig. 4b).
	InitRuns []Fig4Run
	// Elapsed500 is the wall time of 500 iterations with 200 groups (the
	// paper reports < 1 s on a desktop).
	Elapsed500 time.Duration
}

// Fig4 reruns the paper's GSD snapshot: the per-slot problem "during the
// 1500th time slot (but without considering the queue length)" on a
// 200-group cluster.
func Fig4(cfg Config) (Fig4Result, error) {
	if err := cfg.fill(); err != nil {
		return Fig4Result{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return Fig4Result{}, err
	}
	slot := 1500
	if slot >= cfg.Slots {
		slot = cfg.Slots / 2
	}
	groups := 200
	cluster := dcmodel.PaperCluster(groups)
	// Scale the cluster to the configured fleet so reduced-scale configs
	// stay fast.
	if cfg.N != cluster.TotalServers() {
		per := cfg.N / groups
		if per < 1 {
			per = 1
		}
		for i := range cluster.Groups {
			cluster.Groups[i].N = per
		}
	}
	// "Without considering the queue length": pure cost weights w(t), β.
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: sc.Workload.Values[slot],
		We:        sc.Price.Values[slot],
		Wd:        sc.Beta,
		OnsiteKW:  sc.Portfolio.OnsiteKW.Values[slot],
	}

	var res Fig4Result
	const iters = 500
	// The objective magnitude sets the useful δ scale (u depends on
	// δ·Δ(1/g̃)); probe it once with a greedy-ish run. The probe is the
	// only solve on this goroutine, so it carries the experiment tracer —
	// the fanned-out chains below run on pool goroutines where ambient
	// parenting would interleave, and the §5.2.3 timing run must stay
	// free of instrumentation overhead.
	probe, err := gsd.Solve(prob, gsd.Options{Delta: 1e12, MaxIters: 50, Seed: cfg.Seed, Tracer: cfg.Tracer})
	if err != nil {
		return res, err
	}
	gScale := probe.Solution.Value
	deltas := []float64{0.1 * gScale * gScale, 10 * gScale * gScale, 1e4 * gScale * gScale}
	labels := []string{"low δ", "medium δ", "high δ"}
	// Each temperature runs its own Gibbs chain under its own seed: fan out.
	res.DeltaRuns, err = mapIndexed(cfg.workers(), cfg.pool(), len(deltas), func(i int) (Fig4Run, error) {
		r, err := gsd.Solve(prob, gsd.Options{
			Delta: deltas[i], MaxIters: iters, Seed: cfg.Seed + uint64(i),
			RecordHistory: true,
		})
		if err != nil {
			return Fig4Run{}, err
		}
		return Fig4Run{Label: labels[i], History: r.History, Final: r.Solution.Value}, nil
	})
	if err != nil {
		return res, err
	}

	// Time exactly 500 iterations for the §5.2.3 claim ("500 iterations
	// ... less than 1 second" with 200 groups).
	start := time.Now()
	if _, err := gsd.Solve(prob, gsd.Options{Delta: deltas[2], MaxIters: iters, Seed: cfg.Seed + 99}); err != nil {
		return res, err
	}
	res.Elapsed500 = time.Since(start)

	// Fig. 4(b): different initial points, fixed (high) δ. Convergence to
	// the same neighborhood needs several sweeps over the 200 groups, so
	// these runs get a longer budget than the timing measurement.
	inits := []struct {
		label string
		init  []int
	}{
		{"all top speed", allSpeeds(cluster, -1)},
		{"all slowest", allSpeeds(cluster, 1)},
		{"alternating", alternatingSpeeds(cluster)},
	}
	fixed := deltas[2]
	feasible := inits[:0:0]
	for _, in := range inits {
		if prob.Feasible(in.init) {
			feasible = append(feasible, in)
		}
	}
	res.InitRuns, err = mapIndexed(cfg.workers(), cfg.pool(), len(feasible), func(i int) (Fig4Run, error) {
		r, err := gsd.Solve(prob, gsd.Options{
			Delta: fixed, MaxIters: 6 * iters, Seed: cfg.Seed + 77,
			InitSpeeds: feasible[i].init, RecordHistory: true,
		})
		if err != nil {
			return Fig4Run{}, err
		}
		return Fig4Run{Label: feasible[i].label, History: r.History, Final: r.Solution.Value}, nil
	})
	if err != nil {
		return res, err
	}

	if cfg.Out != nil {
		t := report.NewTable("Fig 4(a): GSD final objective vs temperature δ (500 iters, 200 groups)",
			"run", "delta", "final objective", "vs best")
		best := res.DeltaRuns[0].Final
		for _, r := range res.DeltaRuns {
			if r.Final < best {
				best = r.Final
			}
		}
		for i, r := range res.DeltaRuns {
			t.AddRow(r.Label, deltas[i], r.Final, r.Final/best)
		}
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		for _, r := range res.DeltaRuns {
			if err := report.Chart(cfg.Out, "GSD incumbent, "+r.Label, r.History, 72, 8); err != nil {
				return res, err
			}
		}
		t2 := report.NewTable("Fig 4(b): GSD from different initial points (fixed high δ)",
			"initial point", "final objective")
		for _, r := range res.InitRuns {
			t2.AddRow(r.Label, r.Final)
		}
		if err := t2.Render(cfg.Out); err != nil {
			return res, err
		}
		cfg.printf("500 GSD iterations with %d groups took %v (paper: < 1 s)\n",
			groups, res.Elapsed500)
	}
	return res, nil
}

// allSpeeds returns a uniform speed vector; level −1 means each group's top
// speed.
func allSpeeds(c *dcmodel.Cluster, level int) []int {
	out := make([]int, len(c.Groups))
	for g := range out {
		if level < 0 {
			out[g] = c.Groups[g].Type.NumSpeeds()
		} else {
			out[g] = level
		}
	}
	return out
}

func alternatingSpeeds(c *dcmodel.Cluster) []int {
	out := make([]int, len(c.Groups))
	for g := range out {
		out[g] = 1 + g%c.Groups[g].Type.NumSpeeds()
	}
	return out
}
