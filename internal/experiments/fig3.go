package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig3Result reproduces Fig. 3: COCA versus the prediction-based PerfectHP.
type Fig3Result struct {
	CocaV       float64 // neutral operating point chosen by TuneV
	Coca        sim.Summary
	PerfectHP   sim.Summary
	SavingFrac  float64 // (PHP − COCA)/PHP on average hourly cost; paper: > 0.25
	CocaNeutral bool    // COCA within budget

	// Running averages ("summing from time 0 to t, divided by t+1").
	RunningCostCoca    []float64
	RunningCostPHP     []float64
	RunningDeficitCoca []float64
	RunningDeficitPHP  []float64
}

// Fig3 runs the head-to-head comparison of §5.2.2.
func Fig3(cfg Config) (Fig3Result, error) {
	if err := cfg.fill(); err != nil {
		return Fig3Result{}, err
	}
	sc, _, err := cfg.Scenario(false)
	if err != nil {
		return Fig3Result{}, err
	}
	var res Fig3Result
	res.CocaV, res.Coca, err = tuneV(sc, cfg.VGrid, cfg.workers(), cfg.pool())
	if err != nil {
		return res, err
	}
	res.CocaNeutral = res.Coca.BudgetUsedFraction <= 1.0
	// The head-to-head runs are independent: fan out COCA at the tuned V
	// and PerfectHP together.
	runs, err := mapIndexed(cfg.workers(), cfg.pool(), 2, func(i int) (*sim.Result, error) {
		if i == 0 {
			_, r, err := runCOCA(sc, res.CocaV)
			return r, err
		}
		php, err := baseline.NewPerfectHP(sc, 48)
		if err != nil {
			return nil, err
		}
		return sim.Run(sc, php)
	})
	if err != nil {
		return res, err
	}
	cocaRun, phpRun := runs[0], runs[1]
	res.PerfectHP = sim.Summarize(sc, phpRun)
	res.SavingFrac = (res.PerfectHP.AvgHourlyCostUSD - res.Coca.AvgHourlyCostUSD) /
		res.PerfectHP.AvgHourlyCostUSD

	res.RunningCostCoca = stats.RunningAverageSeries(cocaRun.CostSeries())
	res.RunningCostPHP = stats.RunningAverageSeries(phpRun.CostSeries())
	res.RunningDeficitCoca = stats.RunningAverageSeries(cocaRun.DeficitSeries())
	res.RunningDeficitPHP = stats.RunningAverageSeries(phpRun.DeficitSeries())

	if cfg.Out != nil {
		t := report.NewTable("Fig 3: COCA vs PerfectHP (48-h perfect hourly prediction)",
			"policy", "avg hourly cost ($)", "electricity ($)", "delay ($)", "grid/budget")
		t.AddRow(fmt.Sprintf("COCA (V=%.3g)", res.CocaV),
			res.Coca.AvgHourlyCostUSD, res.Coca.AvgElectricityUSD, res.Coca.AvgDelayUSD,
			res.Coca.BudgetUsedFraction)
		t.AddRow("PerfectHP", res.PerfectHP.AvgHourlyCostUSD, res.PerfectHP.AvgElectricityUSD,
			res.PerfectHP.AvgDelayUSD, res.PerfectHP.BudgetUsedFraction)
		if err := t.Render(cfg.Out); err != nil {
			return res, err
		}
		cfg.printf("COCA cost saving vs PerfectHP: %.1f%% (paper: > 25%%)\n", res.SavingFrac*100)
		if err := report.Chart(cfg.Out, "Fig 3(a): running avg hourly cost — COCA", res.RunningCostCoca, 72, 8); err != nil {
			return res, err
		}
		if err := report.Chart(cfg.Out, "Fig 3(a): running avg hourly cost — PerfectHP", res.RunningCostPHP, 72, 8); err != nil {
			return res, err
		}
		if err := report.Chart(cfg.Out, "Fig 3(b): running avg carbon deficit — COCA", res.RunningDeficitCoca, 72, 8); err != nil {
			return res, err
		}
		if err := report.Chart(cfg.Out, "Fig 3(b): running avg carbon deficit — PerfectHP", res.RunningDeficitPHP, 72, 8); err != nil {
			return res, err
		}
	}
	return res, nil
}
