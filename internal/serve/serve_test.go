package serve

import (
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/telemetry"
)

// testService builds a deterministic service: a 3-group Opteron cluster, a
// 312-slot V schedule and a seeded GSD solver. Every call builds an
// identical instance, which is what checkpoint/restore parity needs.
func testService(t *testing.T) *Service {
	t.Helper()
	groups := make([]dcmodel.Group, 3)
	for i := range groups {
		groups[i] = dcmodel.Group{Type: dcmodel.Opteron(), N: 5}
	}
	cluster := &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1.1}
	ctrl, err := core.NewController(cluster, 0.02, lyapunov.ConstantV(5e5, 13, 24),
		1.0, 2.0, &gsd.Solver{Opts: gsd.Options{Delta: 1e4, MaxIters: 150, Seed: 41}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SwitchCostKWh = 0.231
	return New(ctrl)
}

// testSlots returns the deterministic observation stream scaled to the
// test cluster.
func testSlots(t *testing.T, start, count int) []SlotInput {
	t.Helper()
	groups := make([]dcmodel.Group, 3)
	for i := range groups {
		groups[i] = dcmodel.Group{Type: dcmodel.Opteron(), N: 5}
	}
	cluster := &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1.1}
	peak := 0.5 * 0.95 * cluster.MaxCapacityRPS()
	return SyntheticSlots(7, start, count, peak, 2.0, 1.5)
}

func drive(t *testing.T, s *Service, slots []SlotInput) []Decision {
	t.Helper()
	out := make([]Decision, len(slots))
	for i, in := range slots {
		d, err := s.Step(in)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		out[i] = d
	}
	return out
}

// TestServiceCheckpointRestartParity is the acceptance pin: 300 slots
// straight through must equal 150 slots + checkpoint (through JSON) +
// restart into a freshly built service + 150 more — decision by decision,
// and on the final FNV-1a state hash.
func TestServiceCheckpointRestartParity(t *testing.T) {
	slots := testSlots(t, 0, 300)

	ref := testService(t)
	want := drive(t, ref, slots)

	first := testService(t)
	got := drive(t, first, slots[:150])
	ck, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var restored Checkpoint
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	second := testService(t)
	if err := second.RestoreFrom(restored); err != nil {
		t.Fatal(err)
	}
	st := second.State()
	if st.Slot != 150 || !st.Restored {
		t.Fatalf("restored state = %+v, want slot 150, restored", st)
	}
	got = append(got, drive(t, second, slots[150:])...)

	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("decision %d diverges after restart:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
	refState, gotState := ref.State(), second.State()
	if refState.Hash != gotState.Hash {
		t.Fatalf("final state hash %s, uninterrupted %s", gotState.Hash, refState.Hash)
	}
	if refState.TotalUSD != gotState.TotalUSD || refState.GridKWh != gotState.GridKWh {
		t.Fatalf("cumulative accounting diverges: %+v vs %+v", gotState, refState)
	}
}

func TestServiceRejectsBadInput(t *testing.T) {
	s := testService(t)
	cases := []SlotInput{
		{LambdaRPS: -1},
		{LambdaRPS: 10, OnsiteKW: -3},
		{LambdaRPS: 10, OffsiteKWh: -1},
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, "serve")
	s.Instrument(m)
	for i, in := range cases {
		if _, err := s.Step(in); !errors.Is(err, ErrBadInput) {
			t.Errorf("case %d: err = %v, want ErrBadInput", i, err)
		}
	}
	if got := m.Rejected.Value(); got != float64(len(cases)) {
		t.Fatalf("rejected counter = %v, want %d", got, len(cases))
	}
	if got := m.Slots.Value(); got != 0 {
		t.Fatalf("slots counter = %v after only rejects", got)
	}
	// A rejected slot leaves the state untouched: hash is still the seed.
	if st := s.State(); st.Slot != 0 || st.TotalUSD != 0 {
		t.Fatalf("state moved on rejected input: %+v", st)
	}
}

func TestServiceScheduleExhausted(t *testing.T) {
	groups := []dcmodel.Group{{Type: dcmodel.Opteron(), N: 5}}
	cluster := &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
	ctrl, err := core.NewController(cluster, 0.02, lyapunov.ConstantV(5e5, 1, 2),
		1.0, 2.0, &gsd.Solver{Opts: gsd.Options{Delta: 1e4, MaxIters: 80, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := New(ctrl)
	in := SlotInput{LambdaRPS: 5, PriceUSDPerKWh: 0.06}
	for i := 0; i < 2; i++ {
		if _, err := s.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Step(in); !errors.Is(err, core.ErrScheduleExhausted) {
		t.Fatalf("step past horizon = %v, want ErrScheduleExhausted", err)
	}
}

// TestServiceConcurrentAccess exercises the lock discipline under -race:
// concurrent ingestors, state readers and checkpointers. Decisions are
// serialized, so the settled count must equal the sum of successful steps.
func TestServiceConcurrentAccess(t *testing.T) {
	s := testService(t)
	reg := telemetry.NewRegistry()
	s.Instrument(NewMetrics(reg, "serve"))
	slots := testSlots(t, 0, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	settled := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 8; i < (w+1)*8; i++ {
				if _, err := s.Step(slots[i]); err == nil {
					mu.Lock()
					settled++
					mu.Unlock()
				}
				_ = s.State()
				if _, err := s.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.State(); st.Slot != settled {
		t.Fatalf("state slot %d, %d slots settled", st.Slot, settled)
	}
}

// TestServiceOnSettleHook pins the periodic-checkpoint seam.
func TestServiceOnSettleHook(t *testing.T) {
	s := testService(t)
	var seen []int
	s.SetOnSettle(func(slot int) { seen = append(seen, slot) })
	drive(t, s, testSlots(t, 0, 3))
	if want := []int{1, 2, 3}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("onSettle saw %v, want %v", seen, want)
	}
}

func TestCheckpointRestoreRejectsInvalid(t *testing.T) {
	s := testService(t)
	drive(t, s, testSlots(t, 0, 2))
	valid, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := valid
	bad.Version = 3
	if err := testService(t).RestoreFrom(bad); err == nil {
		t.Error("RestoreFrom accepted an unknown version")
	}
	bad = valid
	bad.Slot = valid.Slot + 1
	if err := testService(t).RestoreFrom(bad); err == nil {
		t.Error("RestoreFrom accepted a slot/controller mismatch")
	}
}

// TestSyntheticSlotsPositionAddressable pins the generator contract the
// restart smoke depends on: slots [150, 300) of one stream equal a fresh
// stream started at 150.
func TestSyntheticSlotsPositionAddressable(t *testing.T) {
	all := SyntheticSlots(7, 0, 300, 100, 2, 1.5)
	tail := SyntheticSlots(7, 150, 150, 100, 2, 1.5)
	if !reflect.DeepEqual(all[150:], tail) {
		t.Fatal("suffix of the stream diverges from a stream started at the cut")
	}
	for i, in := range all {
		if err := in.Validate(); err != nil {
			t.Fatalf("slot %d invalid: %v", i, err)
		}
	}
}

// TestSyntheticSlotsNonPositiveCount pins the clamp: a zero or negative
// count is an empty stream, never a make() panic.
func TestSyntheticSlotsNonPositiveCount(t *testing.T) {
	if got := SyntheticSlots(7, 0, 0, 100, 2, 1.5); len(got) != 0 {
		t.Fatalf("count=0 returned %d slots", len(got))
	}
	if got := SyntheticSlots(7, 10, -3, 100, 2, 1.5); len(got) != 0 {
		t.Fatalf("count=-3 returned %d slots", len(got))
	}
}

// TestSyntheticSlotsNegativeStartPhase pins the diurnal wrap-around for
// windows starting before the epoch: the solar curve is a pure function of
// the hour-of-day (no jitter), so slots [-24, 0) must carry exactly the
// on-site values of slots [0, 24). Go's native t%24 is negative for
// negative t and used to shift the phase off the 24h grid.
func TestSyntheticSlotsNegativeStartPhase(t *testing.T) {
	before := SyntheticSlots(7, -24, 24, 100, 2, 1.5)
	after := SyntheticSlots(7, 0, 24, 100, 2, 1.5)
	for i := range before {
		if before[i].OnsiteKW != after[i].OnsiteKW {
			t.Fatalf("hour %d: onsite %v before epoch vs %v after — diurnal phase broken for negative slots",
				i, before[i].OnsiteKW, after[i].OnsiteKW)
		}
	}
}
