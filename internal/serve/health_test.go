package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func readyzState(t *testing.T, rd *Readiness) (int, ReadyState) {
	t.Helper()
	rec := httptest.NewRecorder()
	rd.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var st ReadyState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/readyz body does not decode: %v\n%s", err, rec.Body.String())
	}
	return rec.Code, st
}

// TestReadinessZeroProbes: a daemon with nothing to wait for is ready.
func TestReadinessZeroProbes(t *testing.T) {
	code, st := readyzState(t, NewReadiness())
	if code != http.StatusOK || !st.Ready {
		t.Fatalf("empty readiness = %d %+v, want 200 ready", code, st)
	}
}

// TestReadinessFailingProbe: one failing probe flips the aggregate to 503
// and its message is surfaced by name; recovery flips it back without
// re-registration — probes run per request.
func TestReadinessFailingProbe(t *testing.T) {
	rd := NewReadiness()
	var restoreErr error = errors.New("restore in progress")
	rd.Add("restore", func() error { return restoreErr })
	rd.Add("checkpoint", func() error { return nil })

	code, st := readyzState(t, rd)
	if code != http.StatusServiceUnavailable || st.Ready {
		t.Fatalf("failing probe = %d %+v, want 503 not-ready", code, st)
	}
	if st.Checks["restore"] != "restore in progress" || st.Checks["checkpoint"] != "ok" {
		t.Fatalf("checks = %v", st.Checks)
	}

	restoreErr = nil
	code, st = readyzState(t, rd)
	if code != http.StatusOK || !st.Ready || st.Checks["restore"] != "ok" {
		t.Fatalf("recovered probe = %d %+v, want 200 ready", code, st)
	}
}

// TestHealthzAlwaysOK: liveness does not consult readiness.
func TestHealthzAlwaysOK(t *testing.T) {
	rec := httptest.NewRecorder()
	handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}
}
