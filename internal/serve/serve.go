// Package serve hosts the COCA controller as a long-running service — the
// control plane over the engine. Where cocasim runs the controller as a
// batch solve, a Service wraps the group-level core.Controller in a slot
// loop that ingests streaming observations one at a time (the paper's
// online setting: the controller must survive a year of operation), serves
// each slot's decision back, and keeps a checkpointable running state —
// slot cursor, deficit queue, solver warm starts, cumulative cost and an
// FNV-1a hash chain over every settled slot — so the process can be killed
// and restarted mid-year with bit-for-bit continuation.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// SlotInput is one slot's observations on the wire: the hour-ahead
// knowledge λ(t), r(t), w(t) plus the slot's realized off-site generation
// f(t). Carrying f(t) on the same record keeps the ingest loop one
// step-and-settle per line; a producer that learns f(t) late simply sends
// the record when the slot closes.
type SlotInput struct {
	LambdaRPS      float64 `json:"lambda_rps"`
	OnsiteKW       float64 `json:"onsite_kw"`
	PriceUSDPerKWh float64 `json:"price_usd_per_kwh"`
	OffsiteKWh     float64 `json:"offsite_kwh"`
}

// ErrBadInput marks observations rejected before they reach the
// controller; every SlotInput.Validate error wraps it.
var ErrBadInput = errors.New("serve: bad slot input")

// Validate rejects observations the controller cannot price.
func (in SlotInput) Validate() error {
	check := func(name string, v float64, allowNeg bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s = %v is not finite", ErrBadInput, name, v)
		}
		if !allowNeg && v < 0 {
			return fmt.Errorf("%w: %s = %v is negative", ErrBadInput, name, v)
		}
		return nil
	}
	if err := check("lambda_rps", in.LambdaRPS, false); err != nil {
		return err
	}
	if err := check("onsite_kw", in.OnsiteKW, false); err != nil {
		return err
	}
	// Negative prices are real (surplus renewable hours); only require finite.
	if err := check("price_usd_per_kwh", in.PriceUSDPerKWh, true); err != nil {
		return err
	}
	return check("offsite_kwh", in.OffsiteKWh, false)
}

// Decision is the service's answer for one ingested slot.
type Decision struct {
	Slot     int     `json:"slot"`
	Speeds   []int   `json:"speeds"`
	Active   int     `json:"active"`
	Queue    float64 `json:"queue_kwh"` // q(t) used in the slot's P3 weights
	GridKWh  float64 `json:"grid_kwh"`
	TotalUSD float64 `json:"total_usd"`
	Hash     string  `json:"hash"` // state hash after the slot settled
}

// State is the service's queryable running state (the /state document).
type State struct {
	Slot     int     `json:"slot"` // next slot to be stepped
	Queue    float64 `json:"queue_kwh"`
	TotalUSD float64 `json:"total_usd"`
	GridKWh  float64 `json:"grid_kwh"`
	Hash     string  `json:"hash"`
	Restored bool    `json:"restored"` // state came (partly) from a checkpoint
}

// CheckpointVersion is the current service Checkpoint schema version.
const CheckpointVersion = 1

// Checkpoint is the versioned snapshot of a Service: the controller's own
// checkpoint plus the service's cumulative accounting and hash chain.
type Checkpoint struct {
	Version    int                       `json:"version"`
	Slot       int                       `json:"slot"`
	TotalUSD   float64                   `json:"total_usd"`
	GridKWh    float64                   `json:"grid_kwh"`
	Hash       uint64                    `json:"hash"`
	Controller core.ControllerCheckpoint `json:"controller"`
}

// Metrics instruments a Service in a telemetry registry.
type Metrics struct {
	Slots    *telemetry.Counter
	Rejected *telemetry.Counter
	TotalUSD *telemetry.Gauge
	GridKWh  *telemetry.Gauge
	Queue    *telemetry.Gauge

	// SettleLagSeconds is the age of the most recently settled slot,
	// refreshed on every registry scrape (the Handler hooks it) — a
	// stalled feed shows up as a monotonically climbing lag.
	SettleLagSeconds *telemetry.Gauge

	// StepSeconds distributes slot turnaround as seen by Step —
	// validation through settle, the lock held.
	StepSeconds *telemetry.Histogram
}

// NewMetrics registers service instruments under prefix.
func NewMetrics(r *telemetry.Registry, prefix string) *Metrics {
	return &Metrics{
		Slots:            r.Counter(prefix + ".slots"),
		Rejected:         r.Counter(prefix + ".rejected"),
		TotalUSD:         r.Gauge(prefix + ".total_usd"),
		GridKWh:          r.Gauge(prefix + ".grid_kwh"),
		Queue:            r.Gauge(prefix + ".queue_kwh"),
		SettleLagSeconds: r.Gauge(prefix + ".settle_lag_seconds"),
		StepSeconds:      r.Histogram(prefix+".step_seconds", telemetry.ExpBuckets(1e-5, 4, 12)),
	}
}

// NewSiteMetrics registers the same service instruments as site-labeled
// vector children, so a daemon that is one site of a larger deployment
// exposes coca_slots{site="…"}-style series a fleet scraper can
// aggregate. Cardinality: the site label is the deployment's bounded
// site name, never a per-slot or per-request value.
func NewSiteMetrics(r *telemetry.Registry, prefix, site string) *Metrics {
	p := prefix + "."
	return &Metrics{
		Slots:            r.LabeledCounter(p+"slots", "settled slots", "site").With(site),
		Rejected:         r.LabeledCounter(p+"rejected", "slot inputs rejected before settling", "site").With(site),
		TotalUSD:         r.LabeledGauge(p+"total_usd", "cumulative operating cost", "site").With(site),
		GridKWh:          r.LabeledGauge(p+"grid_kwh", "cumulative grid draw", "site").With(site),
		Queue:            r.LabeledGauge(p+"queue_kwh", "carbon-deficit queue length", "site").With(site),
		SettleLagSeconds: r.LabeledGauge(p+"settle_lag_seconds", "age of the last settled slot", "site").With(site),
		StepSeconds:      r.LabeledHistogram(p+"step_seconds", "slot turnaround through Step", telemetry.ExpBuckets(1e-5, 4, 12), "site").With(site),
	}
}

// Service drives a core.Controller slot by slot. All methods are safe for
// concurrent use; slots are strictly serialized, so concurrent ingestors
// interleave at slot granularity.
type Service struct {
	mu         sync.Mutex
	ctrl       *core.Controller
	hash       uint64
	totalUSD   float64
	gridKWh    float64
	restored   bool
	metrics    *Metrics
	lastSettle time.Time // wall clock of the most recent settled slot

	// onSettle, when set, runs after every settled slot while the service
	// lock is held (the slot count is the settled total). The daemon uses
	// it for periodic checkpointing.
	onSettle func(slot int)
}

// New wraps a controller. The controller must not be stepped by anyone
// else afterwards.
func New(ctrl *core.Controller) *Service {
	return &Service{ctrl: ctrl, hash: fnvOffset}
}

// Instrument attaches service metrics (and the controller's queue gauge).
func (s *Service) Instrument(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	if m != nil {
		s.ctrl.InstrumentQueue(m.Queue)
	}
}

// SetOnSettle installs a post-slot hook, invoked with the settled slot
// count while the service is locked. Pass nil to clear.
func (s *Service) SetOnSettle(fn func(slot int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSettle = fn
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// foldUint64 folds one 64-bit word into the FNV-1a chain byte by byte.
func foldUint64(h, v uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for _, x := range b {
		h = (h ^ uint64(x)) * fnvPrime
	}
	return h
}

func foldFloat(h uint64, v float64) uint64 { return foldUint64(h, math.Float64bits(v)) }

// Step ingests one slot: validate, decide via the controller, settle with
// the realized off-site generation, and fold the outcome into the hash
// chain. The error cases leave the controller state untouched (an
// unsettled Step never moves it), so a rejected slot can be resent.
func (s *Service) Step(in SlotInput) (Decision, error) {
	if err := in.Validate(); err != nil {
		s.mu.Lock()
		if s.metrics != nil {
			s.metrics.Rejected.Inc()
		}
		s.mu.Unlock()
		return Decision{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var stepStart time.Time
	if s.metrics != nil {
		stepStart = time.Now()
	}
	out, err := s.ctrl.Step(core.SlotEnv{
		LambdaRPS:      in.LambdaRPS,
		OnsiteKW:       in.OnsiteKW,
		PriceUSDPerKWh: in.PriceUSDPerKWh,
	})
	if err != nil {
		if s.metrics != nil {
			s.metrics.Rejected.Inc()
		}
		return Decision{}, err
	}
	slot := s.ctrl.Slot() // the slot just decided; Settle advances the cursor
	s.ctrl.Settle(out, in.OffsiteKWh)

	s.totalUSD += out.Cost.TotalUSD
	s.gridKWh += out.Cost.GridKWh
	h := foldUint64(s.hash, uint64(slot))
	for _, k := range out.Solution.Speeds {
		h = foldUint64(h, uint64(k))
	}
	for _, l := range out.Solution.Load {
		h = foldFloat(h, l)
	}
	h = foldFloat(h, out.Cost.TotalUSD)
	h = foldFloat(h, out.Cost.GridKWh)
	h = foldFloat(h, s.ctrl.Queue())
	s.hash = h

	s.lastSettle = time.Now()
	if s.metrics != nil {
		s.metrics.Slots.Inc()
		s.metrics.TotalUSD.Set(s.totalUSD)
		s.metrics.GridKWh.Set(s.gridKWh)
		if s.metrics.StepSeconds != nil {
			s.metrics.StepSeconds.Observe(s.lastSettle.Sub(stepStart).Seconds())
		}
	}
	if s.onSettle != nil {
		s.onSettle(s.ctrl.Slot())
	}
	return Decision{
		Slot:     slot,
		Speeds:   append([]int(nil), out.Solution.Speeds...),
		Active:   out.Active,
		Queue:    out.Queue,
		GridKWh:  out.Cost.GridKWh,
		TotalUSD: out.Cost.TotalUSD,
		Hash:     hashString(h),
	}, nil
}

func hashString(h uint64) string { return fmt.Sprintf("fnv1a:%016x", h) }

// State reports the service's running state.
func (s *Service) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return State{
		Slot:     s.ctrl.Slot(),
		Queue:    s.ctrl.Queue(),
		TotalUSD: s.totalUSD,
		GridKWh:  s.gridKWh,
		Hash:     hashString(s.hash),
		Restored: s.restored,
	}
}

// SettleAge reports how long ago the last slot settled; ok is false
// before the first settle (including right after a restore, which
// restores state but settles nothing). Readiness probes bound this age
// to catch a stalled feed.
func (s *Service) SettleAge() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSettle.IsZero() {
		return 0, false
	}
	return time.Since(s.lastSettle), true
}

// refreshSettleLag refreshes the settle-lag gauge; the Handler registers
// it as a registry scrape hook so the lag is current at scrape time
// rather than frozen at the last settle.
func (s *Service) refreshSettleLag() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.metrics == nil || s.metrics.SettleLagSeconds == nil || s.lastSettle.IsZero() {
		return
	}
	s.metrics.SettleLagSeconds.Set(time.Since(s.lastSettle).Seconds())
}

// Checkpoint snapshots the service (controller state included) between
// slots.
func (s *Service) Checkpoint() (Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Service) checkpointLocked() (Checkpoint, error) {
	ck, err := s.ctrl.Checkpoint()
	if err != nil {
		return Checkpoint{}, err
	}
	return Checkpoint{
		Version:    CheckpointVersion,
		Slot:       ck.Slot,
		TotalUSD:   s.totalUSD,
		GridKWh:    s.gridKWh,
		Hash:       s.hash,
		Controller: ck,
	}, nil
}

// RestoreFrom replaces the service's state with the snapshot. The wrapped
// controller must have been rebuilt with the same construction parameters
// (cluster, schedule, solver options) as the checkpointed one; the
// snapshot carries no way to verify that, so mismatches surface as
// diverging hashes, not errors.
func (s *Service) RestoreFrom(ck Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("serve: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if ck.Slot != ck.Controller.Slot {
		return fmt.Errorf("serve: checkpoint slot %d disagrees with controller slot %d", ck.Slot, ck.Controller.Slot)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ctrl.RestoreFrom(ck.Controller); err != nil {
		return err
	}
	s.totalUSD = ck.TotalUSD
	s.gridKWh = ck.GridKWh
	s.hash = ck.Hash
	s.restored = true
	if s.metrics != nil {
		s.metrics.TotalUSD.Set(s.totalUSD)
		s.metrics.GridKWh.Set(s.gridKWh)
	}
	return nil
}
