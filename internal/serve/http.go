package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// HandlerOpts tunes the control-plane handler surface.
type HandlerOpts struct {
	// Telemetry gates the mounted observability endpoints (pprof).
	Telemetry telemetry.RegisterOpts
	// Log, when non-nil, receives one structured access record per
	// control-plane request, keyed by the request id the response echoes
	// in X-Request-Id.
	Log *slog.Logger
	// Ready supplies the /readyz probes; nil mounts an always-ready one.
	Ready *Readiness
}

// Handler mounts the control-plane endpoints and the telemetry surface on
// one mux:
//
//	POST /decide     — one SlotInput as JSON → one Decision as JSON
//	POST /ingest     — NDJSON stream of SlotInputs → NDJSON Decisions,
//	                   flushed per slot so the stream is live-tailable
//	GET  /state      — the running State document
//	GET  /checkpoint — the current Checkpoint as JSON
//	GET  /healthz    — liveness (200 once the listener is up)
//	GET  /readyz     — readiness probes (503 while any fails)
//	/metrics, /metrics.json, /spans, /debug/vars, /debug/pprof
//	                 — telemetry.RegisterWith
//
// Every control-plane request is counted and timed into path/code-labeled
// vectors ("http.requests", "http.request_seconds") and tagged with a
// request id. tr may be nil (no /spans data).
func (s *Service) Handler(reg *telemetry.Registry, tr *span.Tracer) http.Handler {
	return s.HandlerWith(reg, tr, HandlerOpts{})
}

// HandlerWith is Handler with explicit options.
func (s *Service) HandlerWith(reg *telemetry.Registry, tr *span.Tracer, opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	hm := newHTTPMetrics(reg, "http")
	wrap := func(path string, h http.HandlerFunc) {
		mux.Handle(path, instrument(hm, opts.Log, path, h))
	}
	wrap("/decide", s.handleDecide)
	wrap("/ingest", s.handleIngest)
	wrap("/state", s.handleState)
	wrap("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/healthz", handleHealthz)
	ready := opts.Ready
	if ready == nil {
		ready = NewReadiness()
	}
	mux.Handle("/readyz", ready)
	telemetry.RegisterWith(mux, reg, tr, opts.Telemetry)
	reg.OnScrape(s.refreshSettleLag)
	return mux
}

// httpMetrics is the per-endpoint request accounting. Cardinality: path
// is one of the four mounted endpoints and code an HTTP status — both
// bounded; request ids never become labels.
type httpMetrics struct {
	requests *telemetry.LabeledCounter
	seconds  *telemetry.LabeledHistogram
}

func newHTTPMetrics(r *telemetry.Registry, prefix string) *httpMetrics {
	return &httpMetrics{
		requests: r.LabeledCounter(prefix+".requests",
			"control-plane requests by endpoint and status", "path", "code"),
		seconds: r.LabeledHistogram(prefix+".request_seconds",
			"request wall time by endpoint", telemetry.ExpBuckets(1e-4, 4, 12), "path"),
	}
}

// reqSeq numbers requests within the process; the id is for correlating
// one request's access records and responses, not globally unique.
var reqSeq atomic.Uint64

// statusWriter records the status code an endpoint wrote. Unwrap keeps
// http.ResponseController working through the wrapper — handleIngest
// depends on it for EnableFullDuplex and per-slot flushes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one endpoint with request-id tagging, access logging
// and the path/code-labeled request accounting.
func instrument(m *httpMetrics, log *slog.Logger, path string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r" + strconv.FormatUint(reqSeq.Add(1), 10)
		w.Header().Set("X-Request-Id", id)
		if log != nil {
			log.Info("request",
				"id", id, "method", r.Method, "path", path, "remote", r.RemoteAddr)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		code := sw.code
		if code == 0 { // endpoint wrote nothing: net/http sends 200
			code = http.StatusOK
		}
		secs := time.Since(start).Seconds()
		m.requests.With(path, strconv.Itoa(code)).Inc()
		m.seconds.With(path).Observe(secs)
		if log != nil {
			log.Info("response", "id", id, "path", path, "code", code, "seconds", secs)
		}
	})
}

// stepStatus maps a Step error to an HTTP status: malformed observations
// are the client's fault, an exhausted schedule is a conflict with the
// configured horizon, and an unsolvable slot (overload, solver failure) is
// unprocessable.
func stepStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrScheduleExhausted):
		return http.StatusConflict
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Service) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SlotInput JSON document", http.StatusMethodNotAllowed)
		return
	}
	var in SlotInput
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		http.Error(w, fmt.Sprintf("malformed slot input: %v", err), http.StatusBadRequest)
		return
	}
	d, err := s.Step(in)
	if err != nil {
		http.Error(w, err.Error(), stepStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(d)
}

// handleIngest drives the slot loop over an NDJSON request stream. The
// first failing slot ends the stream with a trailing NDJSON error record
// ({"error": ...}); earlier slots stay settled — exactly the semantics of
// a partially consumed feed before a crash.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an NDJSON stream of SlotInputs", http.StatusMethodNotAllowed)
		return
	}
	// Decisions stream back while the request body is still being read, so
	// the connection must run full duplex; without it, the first response
	// flush makes net/http close the request body mid-stream.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "streaming ingest needs a full-duplex connection", http.StatusInternalServerError)
		return
	}
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)
	flush := func() {
		out.Flush()
		_ = rc.Flush()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	dec := json.NewDecoder(r.Body)
	for {
		var in SlotInput
		if err := dec.Decode(&in); err != nil {
			if err == io.EOF {
				return
			}
			_ = enc.Encode(map[string]string{"error": fmt.Sprintf("malformed slot input: %v", err)})
			flush()
			return
		}
		d, err := s.Step(in)
		if err != nil {
			_ = enc.Encode(map[string]string{"error": err.Error()})
			flush()
			return
		}
		if err := enc.Encode(d); err != nil {
			return
		}
		flush()
	}
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the state document", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.State())
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the checkpoint document", http.StatusMethodNotAllowed)
		return
	}
	ck, err := s.Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ck)
}
