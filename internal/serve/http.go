package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// Handler mounts the control-plane endpoints and the telemetry surface on
// one mux:
//
//	POST /decide     — one SlotInput as JSON → one Decision as JSON
//	POST /ingest     — NDJSON stream of SlotInputs → NDJSON Decisions,
//	                   flushed per slot so the stream is live-tailable
//	GET  /state      — the running State document
//	GET  /checkpoint — the current Checkpoint as JSON
//	/metrics, /spans, /debug/vars, /debug/pprof — telemetry.Register
//
// tr may be nil (no /spans data).
func (s *Service) Handler(reg *telemetry.Registry, tr *span.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decide", s.handleDecide)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	telemetry.Register(mux, reg, tr)
	return mux
}

// stepStatus maps a Step error to an HTTP status: malformed observations
// are the client's fault, an exhausted schedule is a conflict with the
// configured horizon, and an unsolvable slot (overload, solver failure) is
// unprocessable.
func stepStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrScheduleExhausted):
		return http.StatusConflict
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Service) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SlotInput JSON document", http.StatusMethodNotAllowed)
		return
	}
	var in SlotInput
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		http.Error(w, fmt.Sprintf("malformed slot input: %v", err), http.StatusBadRequest)
		return
	}
	d, err := s.Step(in)
	if err != nil {
		http.Error(w, err.Error(), stepStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(d)
}

// handleIngest drives the slot loop over an NDJSON request stream. The
// first failing slot ends the stream with a trailing NDJSON error record
// ({"error": ...}); earlier slots stay settled — exactly the semantics of
// a partially consumed feed before a crash.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an NDJSON stream of SlotInputs", http.StatusMethodNotAllowed)
		return
	}
	// Decisions stream back while the request body is still being read, so
	// the connection must run full duplex; without it, the first response
	// flush makes net/http close the request body mid-stream.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "streaming ingest needs a full-duplex connection", http.StatusInternalServerError)
		return
	}
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)
	flush := func() {
		out.Flush()
		_ = rc.Flush()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	dec := json.NewDecoder(r.Body)
	for {
		var in SlotInput
		if err := dec.Decode(&in); err != nil {
			if err == io.EOF {
				return
			}
			_ = enc.Encode(map[string]string{"error": fmt.Sprintf("malformed slot input: %v", err)})
			flush()
			return
		}
		d, err := s.Step(in)
		if err != nil {
			_ = enc.Encode(map[string]string{"error": err.Error()})
			flush()
			return
		}
		if err := enc.Encode(d); err != nil {
			return
		}
		flush()
	}
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the state document", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.State())
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET the checkpoint document", http.StatusMethodNotAllowed)
		return
	}
	ck, err := s.Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ck)
}
