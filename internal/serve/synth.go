package serve

import "math"

// SyntheticSlots synthesizes a deterministic observation stream for smoke
// tests and the cocad -emit-slots mode: a diurnal workload wave, a
// solar-like on-site curve, a price wave peaking with demand, and a noisy
// off-site feed. Each slot is a pure function of (seed, absolute slot
// index), so any contiguous window of the stream — a 50-slot prefix today,
// the matching suffix after a restart — reproduces exactly the slots an
// uninterrupted stream would have carried.
func SyntheticSlots(seed uint64, start, count int, peakRPS, onsitePeakKW, offsiteMeanKWh float64) []SlotInput {
	if count <= 0 {
		// A non-positive count is an empty stream, not a panic: library
		// callers compute window sizes (end-start) that legitimately hit 0,
		// and a negative count must not reach make().
		return nil
	}
	out := make([]SlotInput, count)
	for i := range out {
		t := start + i
		// Go's % keeps the dividend's sign, so a negative absolute index
		// (a window starting before the epoch) needs the wrap-around to
		// stay on the same 24h diurnal phase as t+24.
		hour := float64(((t % 24) + 24) % 24)
		day := 2 * math.Pi * hour / 24
		// Diurnal demand: trough at ~04:00, peak at ~16:00, plus seeded
		// per-slot jitter in ±10%.
		demand := 0.55 + 0.35*math.Sin(day-2*math.Pi*10/24)
		demand *= 1 + 0.1*(unit(seed, t, 0)*2-1)
		// Solar on-site: zero at night, bell over the day.
		sun := math.Max(0, math.Sin(day-math.Pi/2))
		// Price follows demand with its own jitter.
		price := 0.05 + 0.03*demand + 0.01*(unit(seed, t, 1)*2-1)
		// Off-site generation: mean with heavy seeded variation (wind-like).
		offsite := offsiteMeanKWh * (0.4 + 1.2*unit(seed, t, 2))
		out[i] = SlotInput{
			LambdaRPS:      peakRPS * demand,
			OnsiteKW:       onsitePeakKW * sun,
			PriceUSDPerKWh: price,
			OffsiteKWh:     offsite,
		}
	}
	return out
}

// unit hashes (seed, slot, stream) into [0, 1) with a splitmix64-style
// finalizer — stateless, so the stream is position-addressable.
func unit(seed uint64, slot, stream int) float64 {
	x := seed ^ (uint64(slot) * 0x9e3779b97f4a7c15) ^ (uint64(stream) << 56)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
