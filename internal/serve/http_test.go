package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := testService(t)
	reg := telemetry.NewRegistry()
	s.Instrument(NewMetrics(reg, "serve"))
	srv := httptest.NewServer(s.Handler(reg, span.NewTracer()))
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHandlerDecide(t *testing.T) {
	_, srv := testServer(t)
	in := testSlots(t, 0, 1)[0]
	body, _ := json.Marshal(in)
	resp, err := http.Post(srv.URL+"/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /decide = %d", resp.StatusCode)
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Slot != 0 || len(d.Speeds) != 3 {
		t.Fatalf("decision = %+v", d)
	}

	// Unknown fields are rejected, not silently dropped.
	resp, err = http.Post(srv.URL+"/decide", "application/json",
		strings.NewReader(`{"lambda_rps": 10, "typo_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp.StatusCode)
	}

	// Invalid observations map to 400 via ErrBadInput.
	resp, err = http.Post(srv.URL+"/decide", "application/json",
		strings.NewReader(`{"lambda_rps": -5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative lambda = %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /decide = %d, want 405", resp.StatusCode)
	}
}

func TestHandlerIngestStream(t *testing.T) {
	s, srv := testServer(t)
	slots := testSlots(t, 0, 20)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, in := range slots {
		if err := enc.Encode(in); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var decisions []Decision
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v", len(decisions), err)
		}
		decisions = append(decisions, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(slots) {
		t.Fatalf("got %d decisions, want %d", len(decisions), len(slots))
	}
	for i, d := range decisions {
		if d.Slot != i {
			t.Fatalf("decision %d carries slot %d", i, d.Slot)
		}
	}
	if st := s.State(); st.Slot != len(slots) || st.Hash != decisions[len(decisions)-1].Hash {
		t.Fatalf("state %+v does not match the last streamed decision", st)
	}
}

func TestHandlerIngestErrorRecord(t *testing.T) {
	s, srv := testServer(t)
	good := testSlots(t, 0, 1)[0]
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(good)
	buf.WriteString(`{"lambda_rps": -1}` + "\n") // invalid: terminates the stream
	_ = enc.Encode(good)                         // never reached
	resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d records, want decision + error", len(lines))
	}
	if _, ok := lines[1]["error"]; !ok {
		t.Fatalf("second record is not an error: %v", lines[1])
	}
	// The slot before the failure stays settled.
	if st := s.State(); st.Slot != 1 {
		t.Fatalf("state slot %d, want 1", st.Slot)
	}
}

func TestHandlerStateCheckpointTelemetry(t *testing.T) {
	s, srv := testServer(t)
	drive(t, s, testSlots(t, 0, 5))

	resp, err := http.Get(srv.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Slot != 5 || st.Hash == "" {
		t.Fatalf("state = %+v", st)
	}

	resp, err = http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ck.Version != CheckpointVersion || ck.Slot != 5 {
		t.Fatalf("checkpoint = version %d slot %d", ck.Version, ck.Slot)
	}
	// The /checkpoint document restores into a fresh service.
	fresh := testService(t)
	if err := fresh.RestoreFrom(ck); err != nil {
		t.Fatal(err)
	}
	if got := fresh.State(); got.Hash != s.State().Hash {
		t.Fatalf("restored hash %s, want %s", got.Hash, s.State().Hash)
	}

	// Telemetry endpoints ride the same mux.
	for _, path := range []string{"/metrics", "/spans", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
