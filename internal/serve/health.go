package serve

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Liveness vs readiness: /healthz answers "is the process serving HTTP
// at all" and is unconditionally 200 once the listener is up — an
// orchestrator restarts on its failure. /readyz answers "should traffic
// be routed here" by evaluating registered probes (restore finished,
// checkpoint loop healthy, feed not stalled) and flips to 503 while any
// probe fails — an orchestrator drains, but does not kill, on that.

// Readiness aggregates named readiness probes behind one /readyz
// endpoint. Probes run on every request, so the answer reflects the
// moment of the query, not a cached state. Zero probes means ready: a
// daemon with nothing to wait for serves immediately.
type Readiness struct {
	mu     sync.Mutex
	probes []readyProbe
}

type readyProbe struct {
	name  string
	probe func() error
}

// NewReadiness returns an empty (always-ready) probe set.
func NewReadiness() *Readiness { return &Readiness{} }

// Add registers a named probe. A nil error from probe means that aspect
// is ready; the error message is surfaced verbatim in the /readyz body.
func (rd *Readiness) Add(name string, probe func() error) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	rd.probes = append(rd.probes, readyProbe{name: name, probe: probe})
}

// ReadyState is the /readyz document.
type ReadyState struct {
	Ready  bool              `json:"ready"`
	Checks map[string]string `json:"checks,omitempty"` // name → "ok" or the failure
}

// Evaluate runs every probe and reports the aggregate.
func (rd *Readiness) Evaluate() ReadyState {
	rd.mu.Lock()
	probes := append([]readyProbe(nil), rd.probes...)
	rd.mu.Unlock()
	st := ReadyState{Ready: true}
	if len(probes) > 0 {
		st.Checks = make(map[string]string, len(probes))
	}
	for _, p := range probes {
		if err := p.probe(); err != nil {
			st.Ready = false
			st.Checks[p.name] = err.Error()
		} else {
			st.Checks[p.name] = "ok"
		}
	}
	return st
}

// ServeHTTP answers /readyz: the ReadyState as JSON, 200 when ready and
// 503 while any probe fails.
func (rd *Readiness) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	st := rd.Evaluate()
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleHealthz is the liveness probe: serving it at all is the check.
func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
