package geo

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

func readSpans(t *testing.T, tr *span.Tracer) []span.Record {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []span.Record
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var r span.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("span line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestStepTracedSpans pins the federation span topology: one geo.step
// root per stepped slot with a geo.site child per site carrying the split
// decision and the realized site charge.
func TestStepTracedSpans(t *testing.T) {
	slots := 24
	sys, err := NewSystem(makeSites(slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	tr := span.NewTracer()
	sys.SetTracer(tr)

	out, err := sys.Step(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(out)
	out2, err := sys.Step(400, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(out2)

	recs := readSpans(t, tr)
	var steps, sites []span.Record
	for _, r := range recs {
		switch r.Name {
		case "geo.step":
			steps = append(steps, r)
		case "geo.site":
			sites = append(sites, r)
		}
	}
	if len(steps) != 2 {
		t.Fatalf("%d geo.step spans, want 2", len(steps))
	}
	stepIDs := make(map[uint64]int)
	for i, st := range steps {
		if st.Parent != 0 {
			t.Fatalf("geo.step %d has parent %d, want root", i, st.Parent)
		}
		if got := st.Attrs["slot"]; got != float64(i) {
			t.Fatalf("geo.step %d slot attr = %v", i, got)
		}
		// The split hot path annotates its solve accounting and fan-out.
		if got, ok := st.Attrs["p3_solves"].(float64); !ok || got <= 0 {
			t.Fatalf("geo.step %d p3_solves attr = %v, want > 0", i, st.Attrs["p3_solves"])
		}
		if got, ok := st.Attrs["memo_hits"].(float64); !ok || got <= 0 {
			t.Fatalf("geo.step %d memo_hits attr = %v, want > 0", i, st.Attrs["memo_hits"])
		}
		if got, ok := st.Attrs["workers"].(float64); !ok || got != 1 {
			t.Fatalf("geo.step %d workers attr = %v, want 1 (default sequential)", i, st.Attrs["workers"])
		}
		stepIDs[st.ID] = i
	}
	if want := 2 * len(sys.Sites); len(sites) != want {
		t.Fatalf("%d geo.site spans, want one per site per slot (%d)", len(sites), want)
	}
	// Each step must show per-site children whose loads sum to the slot's
	// demand and whose names cover the federation.
	loadByStep := map[int]float64{}
	namesByStep := map[int]map[string]bool{0: {}, 1: {}}
	for i, site := range sites {
		stepIdx, ok := stepIDs[site.Parent]
		if !ok {
			t.Fatalf("geo.site %d parented to %d, not a geo.step", i, site.Parent)
		}
		name, ok := site.Attrs["site"].(string)
		if !ok {
			t.Fatalf("geo.site %d missing site attr: %v", i, site.Attrs)
		}
		namesByStep[stepIdx][name] = true
		load, ok := site.Attrs["load_rps"].(float64)
		if !ok {
			t.Fatalf("geo.site %d missing load_rps: %v", i, site.Attrs)
		}
		loadByStep[stepIdx] += load
		for _, key := range []string{"chunks", "cost_usd", "grid_kwh", "queue_kwh"} {
			if _, ok := site.Attrs[key]; !ok {
				t.Fatalf("geo.site %d missing %s attr: %v", i, key, site.Attrs)
			}
		}
	}
	for stepIdx, want := range map[int]float64{0: 600, 1: 400} {
		if got := loadByStep[stepIdx]; got < want-1e-6 || got > want+1e-6 {
			t.Fatalf("step %d site loads sum to %v, want %v", stepIdx, got, want)
		}
		for _, s := range sys.Sites {
			if !namesByStep[stepIdx][s.Name] {
				t.Fatalf("step %d has no geo.site span for %q", stepIdx, s.Name)
			}
		}
	}
}

// TestStepMetrics pins the GeoMetrics wiring: federation totals and lazy
// per-site instruments land in the registry under the geo.* prefix.
func TestStepMetrics(t *testing.T) {
	slots := 24
	sys, err := NewSystem(makeSites(slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sys.Instrument(telemetry.NewGeoMetrics(reg, "geo"))

	out, err := sys.Step(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(out)

	snap := reg.Snapshot()
	if got := snap.Counters["geo.steps"]; got != 1 {
		t.Fatalf("geo.steps = %v, want 1", got)
	}
	if got := snap.Counters["geo.p3_solves"]; got <= 0 {
		t.Fatalf("geo.p3_solves = %v, want > 0", got)
	}
	if got := snap.Counters["geo.memo_hits"]; got <= 0 {
		t.Fatalf("geo.memo_hits = %v, want > 0", got)
	}
	if got := snap.Counters["geo.solve_errors"]; got != 0 {
		t.Fatalf("geo.solve_errors = %v on a healthy step", got)
	}
	if got := snap.Counters["geo.total_usd"]; got != out.TotalCostUSD {
		t.Fatalf("geo.total_usd = %v, want %v", got, out.TotalCostUSD)
	}
	if got := snap.Counters["geo.grid_kwh"]; got != out.TotalGridKWh {
		t.Fatalf("geo.grid_kwh = %v, want %v", got, out.TotalGridKWh)
	}
	var loadSum float64
	for i, s := range sys.Sites {
		load, ok := snap.LabeledCounters["geo.site.load_rps"].Get(s.Name)
		if !ok || load != out.Sites[i].LoadRPS {
			t.Fatalf("geo.site.load_rps{site=%q} = %v (ok=%v), want %v",
				s.Name, load, ok, out.Sites[i].LoadRPS)
		}
		loadSum += load
		cost, ok := snap.LabeledCounters["geo.site.cost_usd"].Get(s.Name)
		if !ok || cost != out.Sites[i].CostUSD {
			t.Fatalf("geo.site.cost_usd{site=%q} = %v (ok=%v), want %v",
				s.Name, cost, ok, out.Sites[i].CostUSD)
		}
		if _, ok := snap.LabeledGauges["geo.site.deficit_kwh"].Get(s.Name); !ok {
			t.Fatalf("geo.site.deficit_kwh{site=%q} not set after Settle", s.Name)
		}
	}
	if loadSum < 600-1e-6 || loadSum > 600+1e-6 {
		t.Fatalf("per-site load counters sum to %v, want 600", loadSum)
	}
}

// TestStepTracedMatchesUntraced pins that observability is free: a traced
// and instrumented federation steps to the same outcome as a bare one.
func TestStepTracedMatchesUntraced(t *testing.T) {
	slots := 24
	plainSys, err := NewSystem(makeSites(slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	tracedSys, err := NewSystem(makeSites(slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	tracedSys.SetTracer(span.NewTracer())
	tracedSys.Instrument(telemetry.NewGeoMetrics(telemetry.NewRegistry(), "geo"))

	for slot := 0; slot < 3; slot++ {
		lambda := 500 + 50*float64(slot)
		want, err := plainSys.Step(lambda, 100)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tracedSys.Step(lambda, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Sites) != len(want.Sites) ||
			got.TotalCostUSD != want.TotalCostUSD || got.TotalGridKWh != want.TotalGridKWh {
			t.Fatalf("slot %d totals diverged: %+v vs %+v", slot, got, want)
		}
		for i := range want.Sites {
			if got.Sites[i] != want.Sites[i] {
				t.Fatalf("slot %d site %d diverged: %+v vs %+v", slot, i, got.Sites[i], want.Sites[i])
			}
		}
		plainSys.Settle(want)
		tracedSys.Settle(got)
	}
}
