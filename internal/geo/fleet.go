package geo

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cliutil"
	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/renewable"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workpool"
)

// This file is the fleet-scale federation: System models every site as a
// homogeneous deployment solved in closed form (p3.HomogeneousProblem), a
// Fleet gives every site a full heterogeneous cluster driven by its own GSD
// chain — the "100k+ servers, 256+ sites, one machine" setting. Two design
// rules make it scale and stay reproducible:
//
//   - The GSD chain is sharded per site. Each site owns a gsd.Solver whose
//     advancing seed and warm-start state never mix with another site's, so
//     whole-site P3 solves are embarrassingly parallel: the schedule decides
//     only *when* a site's slot solve runs, never what it computes.
//   - Every fan-out is index-addressed (a site job writes only its own
//     outcome slot), errors reduce to the lowest site index, and totals
//     accumulate sequentially in site order after the barrier. Any worker
//     count — including the sequential 0/1 path — therefore produces
//     bit-identical outcomes, which the golden parity tests pin.

// FleetSite is one data center of a Fleet: a heterogeneous cluster under
// its own electricity price, renewable portfolio and carbon-deficit queue.
type FleetSite struct {
	Name      string
	Cluster   *dcmodel.Cluster
	Price     *trace.Trace         // w_k(t) in $/kWh
	Portfolio *renewable.Portfolio // r_k(t), f_k(t), Z_k, α_k
}

// Validate reports whether the site is well formed for the horizon.
func (s *FleetSite) Validate(slots int) error {
	if s.Cluster == nil {
		return fmt.Errorf("geo: fleet site %q has no cluster", s.Name)
	}
	if err := s.Cluster.Validate(); err != nil {
		return fmt.Errorf("geo: fleet site %q: %w", s.Name, err)
	}
	if s.Price == nil || s.Price.Len() < slots {
		return fmt.Errorf("geo: fleet site %q price trace short", s.Name)
	}
	if s.Portfolio == nil {
		return fmt.Errorf("geo: fleet site %q missing portfolio", s.Name)
	}
	return s.Portfolio.Validate(slots)
}

// CapacityRPS returns the site's γ-discounted top-speed capacity.
func (s *FleetSite) CapacityRPS() float64 {
	return s.Cluster.Gamma * s.Cluster.MaxCapacityRPS()
}

// Fleet is a federation of heterogeneous-cluster sites, each running its
// own GSD solver chain, stepped slot by slot like System.
type Fleet struct {
	Sites []FleetSite
	Beta  float64
	Slots int

	queues  []*lyapunov.DeficitQueue
	solvers []*gsd.Solver // per-site shard: own advancing seed + warm starts
	slot    int
	workers int

	// Per-slot scratch reused across Step calls: site problem instances
	// (each handed to the pooled per-site solver, which never reads one
	// after its run finishes) and the fan-out error slots. Outcome slices
	// stay freshly allocated — they escape to the caller via Settle.
	probs []dcmodel.SlotProblem
	errs  []error

	metrics   *telemetry.FleetMetrics
	siteInstr []*telemetry.FleetSiteMetrics // cached per-site handles, index-aligned with Sites

	settleOb SettleObserver
}

// SettleObserver is a per-slot instrumentation hook for fleet runs: it
// receives each settled slot's index and outcome after the deficit queues
// have absorbed it, before the clock advances. Observers must not mutate
// the outcome; they are for metrics, request-level replays and tests —
// the fleet analogue of sim.Observer.
type SettleObserver func(slot int, out FleetStepOutcome)

// fleetSeedStride decorrelates per-site GSD seeds: site i's chain starts at
// base + (i+1)·stride (a splitmix64-style odd constant), so sites never
// replay each other's sample paths while the whole fleet stays a pure
// function of the base seed.
const fleetSeedStride = 0x9E3779B97F4A7C15

// NewFleet validates and assembles the fleet. opts configures every site's
// GSD solver (iteration budget, temperature, patience); opts.Seed is the
// base seed the per-site chains are derived from. One carbon-deficit queue
// per site, exactly like NewSystem.
func NewFleet(sites []FleetSite, beta float64, slots int, opts gsd.Options) (*Fleet, error) {
	if len(sites) == 0 {
		return nil, errors.New("geo: no sites")
	}
	if beta < 0 {
		return nil, errors.New("geo: negative beta")
	}
	if slots <= 0 {
		return nil, errors.New("geo: non-positive horizon")
	}
	f := &Fleet{Sites: sites, Beta: beta, Slots: slots}
	for i := range sites {
		if err := sites[i].Validate(slots); err != nil {
			return nil, err
		}
		f.queues = append(f.queues, lyapunov.NewDeficitQueue(
			sites[i].Portfolio.Alpha,
			sites[i].Portfolio.RECPerSlotKWh(slots),
		))
		siteOpts := opts
		siteOpts.Seed = opts.Seed + uint64(i+1)*fleetSeedStride
		f.solvers = append(f.solvers, &gsd.Solver{Opts: siteOpts})
	}
	return f, nil
}

// SetWorkers bounds Step's whole-site solve fan-out. n in {0, 1} (the
// default) runs sites sequentially; n > 1 fans them across up to n
// goroutines with bit-identical results (see the design rules above).
// Negative n is an explicit error, the cliutil.WorkersFor rule.
//
// When n exceeds the site count the surplus cores would idle in the
// site fan-out, so they are handed to the sites themselves: each site's
// GSD chain runs its speculative evaluator with n/len(Sites) workers
// (gsd.Options.Workers), which is bit-identical to the sequential chain.
// Call SetWorkers before stepping.
func (f *Fleet) SetWorkers(n int) error {
	if err := cliutil.WorkersFor("geo.Fleet.SetWorkers", n); err != nil {
		return err
	}
	f.workers = n
	inSite := 0
	if n > len(f.Sites) {
		inSite = n / len(f.Sites)
	}
	for i := range f.solvers {
		f.solvers[i].Opts.Workers = inSite
	}
	return nil
}

// Instrument attaches fleet metrics (nil detaches). Per-site label
// tuples are interned here, once, and the resulting plain-instrument
// handles cached index-aligned with Sites, so the per-site emission in
// Step is allocation-free: counter adds and histogram observes on
// already-interned children, no map lookups, no label encoding. Each
// site's GSD shard also gets its own SolveMetrics view, so shard solve
// stats (iterations, dual rounds, solve wall time) land in the same
// site-labeled vectors. Instrumentation never changes outcomes: it only
// reads settled values after the fan-out barrier, in site order.
func (f *Fleet) Instrument(m *telemetry.FleetMetrics) {
	f.metrics = m
	f.siteInstr = nil
	if m == nil {
		for i := range f.solvers {
			f.solvers[i].Opts.Metrics = nil
		}
		return
	}
	f.siteInstr = make([]*telemetry.FleetSiteMetrics, len(f.Sites))
	for i := range f.Sites {
		f.siteInstr[i] = m.Site(f.Sites[i].Name)
		f.solvers[i].Opts.Metrics = m.SiteSolveMetrics(f.Sites[i].Name)
	}
}

// TotalCapacityRPS returns the fleet's aggregate γ-discounted capacity.
func (f *Fleet) TotalCapacityRPS() float64 {
	var c float64
	for i := range f.Sites {
		c += f.Sites[i].CapacityRPS()
	}
	return c
}

// TotalServers returns the number of servers across the fleet.
func (f *Fleet) TotalServers() int {
	n := 0
	for i := range f.Sites {
		n += f.Sites[i].Cluster.TotalServers()
	}
	return n
}

// Queue exposes site k's deficit-queue length.
func (f *Fleet) Queue(k int) float64 { return f.queues[k].Len() }

// Slot returns the next slot to be stepped.
func (f *Fleet) Slot() int { return f.slot }

// FleetSiteOutcome is one site's share of a stepped fleet slot.
type FleetSiteOutcome struct {
	LoadRPS   float64
	Active    int // servers in groups running at positive speed
	PowerKW   float64
	GridKWh   float64
	DelayCost float64
	CostUSD   float64 // the site's dcmodel.Ledger charge: w_k·grid + β·delay
	Value     float64 // the site's P3 objective at the solved configuration
}

// FleetStepOutcome is a stepped slot across the fleet.
type FleetStepOutcome struct {
	Sites        []FleetSiteOutcome
	TotalCostUSD float64
	TotalGridKWh float64
}

// validateLoad mirrors System.validateLoad for the fleet.
func (f *Fleet) validateLoad(lambda float64) error {
	if f.slot >= f.Slots {
		return errors.New("geo: horizon exhausted")
	}
	if lambda < 0 {
		return errors.New("geo: negative load")
	}
	if lambda > f.TotalCapacityRPS() {
		return fmt.Errorf("geo: load %v exceeds fleet capacity %v",
			lambda, f.TotalCapacityRPS())
	}
	return nil
}

// siteProblem builds site k's heterogeneous P3 instance for the slot at
// load mu, with the COCA weights of Eq. (16) from the site's own price and
// deficit queue. The instance lives in the fleet's per-site scratch slot —
// site k's solver finishes with it before the next Step rewrites it — so
// stepping allocates no problem structs.
func (f *Fleet) siteProblem(k int, v, mu float64) *dcmodel.SlotProblem {
	site := &f.Sites[k]
	t := f.slot
	we, wd := dcmodel.P3Weights(v, f.queues[k].Len(), site.Price.Values[t], f.Beta)
	p := &f.probs[k]
	*p = dcmodel.SlotProblem{
		Cluster:   site.Cluster,
		LambdaRPS: mu,
		We:        we, Wd: wd,
		OnsiteKW: site.Portfolio.OnsiteKW.Values[t],
	}
	return p
}

// siteLedger builds site k's slot-cost kernel for the current slot,
// identical to System.siteLedger.
func (f *Fleet) siteLedger(k int) dcmodel.Ledger {
	site := &f.Sites[k]
	t := f.slot
	return dcmodel.Ledger{
		PriceUSDPerKWh: site.Price.Values[t],
		OnsiteKW:       site.Portfolio.OnsiteKW.Values[t],
		Beta:           f.Beta,
		Alpha:          site.Portfolio.Alpha,
		RECPerSlotKWh:  site.Portfolio.RECPerSlotKWh(f.Slots),
	}
}

// Step splits lambda across the sites proportionally to capacity, solves
// every loaded site's whole-cluster P3 on its own GSD shard (fanned across
// the SetWorkers pool), charges each site through its Ledger, and returns
// the outcome. Call Settle with the outcome afterwards.
//
// The split is capacity-proportional rather than greedy-marginal: at fleet
// scale a per-chunk GSD re-solve per site (the System.Step discipline)
// would cost Chunks·K whole-cluster chains per slot; the proportional split
// needs exactly one solve per loaded site while the per-site COCA weights
// still steer each site's own speed/load decisions by price and deficit.
func (f *Fleet) Step(lambda, v float64) (FleetStepOutcome, error) {
	if err := f.validateLoad(lambda); err != nil {
		return FleetStepOutcome{}, err
	}
	var stepStart time.Time
	if f.metrics != nil {
		stepStart = time.Now()
	}
	k := len(f.Sites)
	total := f.TotalCapacityRPS()
	out := FleetStepOutcome{Sites: make([]FleetSiteOutcome, k)}
	if f.probs == nil {
		f.probs = make([]dcmodel.SlotProblem, k)
		f.errs = make([]error, k)
	}
	errs := f.errs
	for i := range errs {
		errs[i] = nil
	}
	workpool.Fan(f.workers, k, func(i int) {
		mu := 0.0
		if lambda > 0 {
			mu = lambda * f.Sites[i].CapacityRPS() / total
		}
		so := FleetSiteOutcome{LoadRPS: mu}
		if mu > 0 {
			p := f.siteProblem(i, v, mu)
			sol, err := f.solvers[i].Solve(p)
			if err != nil {
				errs[i] = fmt.Errorf("geo: fleet site %s: %w", f.Sites[i].Name, err)
				return
			}
			cl := f.Sites[i].Cluster
			so.Active = cl.ActiveServers(sol.Speeds)
			so.Value = sol.Value
			ch := f.siteLedger(i).Charge(
				cl.FacilityPowerKW(sol.Speeds, sol.Load),
				cl.DelayCost(sol.Speeds, sol.Load), 0)
			so.PowerKW, so.GridKWh, so.DelayCost = ch.PowerKW, ch.GridKWh, ch.DelayCost
			so.CostUSD = ch.TotalUSD
		}
		out.Sites[i] = so
	})
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			if f.metrics != nil {
				for j := i; j < k; j++ {
					if errs[j] != nil {
						f.siteInstr[j].SolveErrors.Inc()
					}
				}
			}
			return FleetStepOutcome{}, errs[i]
		}
		out.TotalCostUSD += out.Sites[i].CostUSD
		out.TotalGridKWh += out.Sites[i].GridKWh
	}
	if f.metrics != nil {
		for i := 0; i < k; i++ {
			si, so := f.siteInstr[i], &out.Sites[i]
			si.LoadRPS.Add(so.LoadRPS)
			si.CostUSD.Add(so.CostUSD)
			si.GridKWh.Add(so.GridKWh)
		}
		f.metrics.ObserveStep(out.TotalCostUSD, out.TotalGridKWh, time.Since(stepStart).Seconds())
	}
	return out, nil
}

// Settle finishes the slot: every site's deficit queue absorbs its realized
// grid draw against its own off-site generation, and the clock advances.
func (f *Fleet) Settle(out FleetStepOutcome) {
	t := f.slot
	for i := range f.Sites {
		f.queues[i].Update(out.Sites[i].GridKWh, f.Sites[i].Portfolio.OffsiteKWh.Values[t])
		if f.metrics != nil {
			f.siteInstr[i].DeficitKWh.Set(f.queues[i].Len())
		}
	}
	if f.settleOb != nil {
		f.settleOb(t, out)
	}
	f.slot++
}

// SetSettleObserver attaches the per-slot settle hook (nil detaches). The
// observer runs synchronously inside Settle; it sees the slot index being
// settled and the outcome Settle was called with.
func (f *Fleet) SetSettleObserver(ob SettleObserver) { f.settleOb = ob }
