package geo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/p3"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// makeSitesK builds a deterministic K-site federation with staggered
// price levels, fleet sizes and on-site renewables, so splits are
// non-trivial at any K.
func makeSitesK(k, slots int) []Site {
	sites := make([]Site, k)
	for i := range sites {
		p := price.CAISOYear(uint64(i + 1))
		scale := 0.4 + 0.15*float64(i%5)
		for j := range p.Values {
			p.Values[j] *= scale
		}
		sites[i] = Site{
			Name:   fmt.Sprintf("s%02d", i),
			Server: dcmodel.Opteron(),
			N:      60 + 10*(i%4),
			Gamma:  0.95,
			PUE:    1,
			Price:  p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", float64(i%3), slots),
				OffsiteKWh: trace.Constant("f", 2, slots),
				RECsKWh:    float64(slots) * 3,
				Alpha:      1,
			},
		}
	}
	return sites
}

// hashOutcome folds a StepOutcome into an FNV-1a digest over the
// little-endian IEEE-754 bits of every computed number — the
// BENCH_engine.json recipe, so "bit-identical" means the same thing here
// and in the bench gate.
func hashOutcome(h interface{ Write([]byte) (int, error) }, out StepOutcome) {
	put := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	put(out.TotalCostUSD, out.TotalGridKWh)
	for _, so := range out.Sites {
		put(so.LoadRPS, float64(so.Speed), float64(so.Active),
			so.PowerKW, so.GridKWh, so.DelayCost, so.CostUSD)
	}
}

// TestGoldenSplitParity pins the split hot path bit-for-bit: the naive
// reference loop, the memoized sequential path and the memoized parallel
// path (workers > 1) must produce FNV-identical outcomes slot after slot,
// with the deficit queues fed back so any drift compounds and is caught.
func TestGoldenSplitParity(t *testing.T) {
	for _, k := range []int{4, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			const slots = 12
			mk := func() *System {
				sys, err := NewSystem(makeSitesK(k, slots), 0.005, slots)
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			naiveSys, memoSys, parSys := mk(), mk(), mk()
			if err := parSys.SetWorkers(4); err != nil {
				t.Fatal(err)
			}
			hn, hm, hp := fnv.New64a(), fnv.New64a(), fnv.New64a()
			cap := naiveSys.TotalCapacityRPS()
			for tt := 0; tt < slots; tt++ {
				lambda := cap * (0.15 + 0.6*float64(tt)/slots)
				const v = 120
				outN, _, err := naiveSys.stepNaive(lambda, v)
				if err != nil {
					t.Fatal(err)
				}
				naiveSys.Settle(outN)
				outM, err := memoSys.Step(lambda, v)
				if err != nil {
					t.Fatal(err)
				}
				memoSys.Settle(outM)
				outP, err := parSys.Step(lambda, v)
				if err != nil {
					t.Fatal(err)
				}
				parSys.Settle(outP)
				hashOutcome(hn, outN)
				hashOutcome(hm, outM)
				hashOutcome(hp, outP)
			}
			naive, memo, par := hn.Sum64(), hm.Sum64(), hp.Sum64()
			if memo != naive {
				t.Errorf("memoized split hash %016x != naive reference %016x", memo, naive)
			}
			if par != naive {
				t.Errorf("parallel split hash %016x != naive reference %016x", par, naive)
			}
			t.Logf("golden split hash fnv1a:%016x (naive = memo = parallel)", naive)
		})
	}
}

// TestSplitSolveAccounting pins the memo table's exact bookkeeping: every
// P3 solve the naive loop pays is either a fresh solve or a memo hit on
// the memoized path (p3_solves + memo_hits == naive solves), and at K=16
// the fresh-solve count drops at least 5×.
func TestSplitSolveAccounting(t *testing.T) {
	const k, slots = 16, 6
	naiveSys, err := NewSystem(makeSitesK(k, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	memoSys, err := NewSystem(makeSitesK(k, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	memoSys.Instrument(telemetry.NewGeoMetrics(reg, "geo"))
	capRPS := naiveSys.TotalCapacityRPS()
	var naiveSolves int
	for tt := 0; tt < slots; tt++ {
		lambda := capRPS * (0.2 + 0.1*float64(tt))
		outN, solves, err := naiveSys.stepNaive(lambda, 120)
		if err != nil {
			t.Fatal(err)
		}
		naiveSys.Settle(outN)
		naiveSolves += solves
		outM, err := memoSys.Step(lambda, 120)
		if err != nil {
			t.Fatal(err)
		}
		memoSys.Settle(outM)
	}
	snap := reg.Snapshot()
	memoSolves := snap.Counters["geo.p3_solves"]
	memoHits := snap.Counters["geo.memo_hits"]
	if got := memoSolves + memoHits; got != float64(naiveSolves) {
		t.Errorf("p3_solves (%v) + memo_hits (%v) = %v, want the naive loop's %d solves exactly",
			memoSolves, memoHits, got, naiveSolves)
	}
	if memoSolves*5 > float64(naiveSolves) {
		t.Errorf("memoized path spent %v P3 solves vs naive %d — want ≥ 5× fewer",
			memoSolves, naiveSolves)
	}
	if errs := snap.Counters["geo.solve_errors"]; errs != 0 {
		t.Errorf("solve_errors = %v on a healthy run", errs)
	}
	t.Logf("solves/step: naive %.1f, memoized %.1f (%.1fx), hits/step %.1f",
		float64(naiveSolves)/slots, memoSolves/slots,
		float64(naiveSolves)/memoSolves, memoHits/slots)
}

// TestStepParallelConcurrency drives the parallel split with more workers
// than sites and verifies it matches the sequential system slot-for-slot —
// run under -race (CI does) this is the data-race exercise of the fan-out.
func TestStepParallelConcurrency(t *testing.T) {
	const k, slots = 12, 8
	seqSys, err := NewSystem(makeSitesK(k, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	parSys, err := NewSystem(makeSitesK(k, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := parSys.SetWorkers(32); err != nil {
		t.Fatal(err)
	}
	capRPS := seqSys.TotalCapacityRPS()
	for tt := 0; tt < slots; tt++ {
		lambda := capRPS * (0.1 + 0.08*float64(tt))
		want, err := seqSys.Step(lambda, 150)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parSys.Step(lambda, 150)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalCostUSD != want.TotalCostUSD || got.TotalGridKWh != want.TotalGridKWh {
			t.Fatalf("slot %d: parallel totals diverged: %+v vs %+v", tt, got, want)
		}
		for i := range want.Sites {
			if got.Sites[i] != want.Sites[i] {
				t.Fatalf("slot %d site %d diverged: %+v vs %+v", tt, i, got.Sites[i], want.Sites[i])
			}
		}
		seqSys.Settle(want)
		parSys.Settle(got)
	}
}

// TestSolveErrorSurfaced pins the infeasibility/error distinction: a NaN
// load slips past the range guards, reaches the per-site solver, and must
// surface as a real error (p3.ErrInvalid) counted in geo.solve_errors —
// not be masked as "site full" the way the pre-memoization siteValue did.
func TestSolveErrorSurfaced(t *testing.T) {
	const slots = 4
	sys, err := NewSystem(makeSitesK(3, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sys.Instrument(telemetry.NewGeoMetrics(reg, "geo"))
	_, err = sys.Step(math.NaN(), 120)
	if err == nil {
		t.Fatal("NaN load stepped without error")
	}
	if !errors.Is(err, p3.ErrInvalid) {
		t.Errorf("error %v does not wrap p3.ErrInvalid", err)
	}
	if !strings.Contains(err.Error(), "site s00") {
		t.Errorf("error %q does not name the failing site", err)
	}
	if got := reg.Snapshot().Counters["geo.solve_errors"]; got != 1 {
		t.Errorf("geo.solve_errors = %v, want 1", got)
	}
	// Capacity infeasibility must NOT count as a solver error.
	if got := reg.Snapshot().Counters["geo.steps"]; got != 0 {
		t.Errorf("failed step observed as settled: steps = %v", got)
	}
}

// TestNoSiteCanAbsorbChunk forces the stranded-load error: two sites whose
// per-site capacities are non-integer multiples of the chunk size can
// absorb at most 99 of the 100 chunks of a load equal to the federation's
// aggregate capacity. Both the memoized and the naive path must fail the
// same way, without counting a solver error.
func TestNoSiteCanAbsorbChunk(t *testing.T) {
	const slots = 4
	sites := makeSitesK(2, slots)
	sites[0].N = 1
	sites[1].N = 2 // capacities split 1:2 → 33.3 and 66.7 chunks
	sys, err := NewSystem(sites, 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sys.Instrument(telemetry.NewGeoMetrics(reg, "geo"))
	lambda := sys.TotalCapacityRPS()
	_, err = sys.Step(lambda, 120)
	if !errors.Is(err, errNoAbsorb) {
		t.Fatalf("want the no-absorb error, got %v", err)
	}
	if got := reg.Snapshot().Counters["geo.solve_errors"]; got != 0 {
		t.Errorf("stranded load counted as solver error: %v", got)
	}
	if _, _, err := sys.stepNaive(lambda, 120); !errors.Is(err, errNoAbsorb) {
		t.Fatalf("naive reference disagrees: %v", err)
	}
}

// TestSettleDeficitAccounting pins Settle's per-site queue recursion
// q ← [q + grid − α·offsite − z]^+ against hand-computed expectations.
func TestSettleDeficitAccounting(t *testing.T) {
	const slots = 8
	sites := makeSitesK(2, slots)
	// Site 0: starved budget (no offsite, one REC total) so its queue grows
	// by its full grid draw minus the tiny allowance. Site 1: generous.
	sites[0].Portfolio.OffsiteKWh = trace.Constant("f", 0, slots)
	sites[0].Portfolio.RECsKWh = 1
	sys, err := NewSystem(sites, 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0}
	z := []float64{1.0 / slots, sites[1].Portfolio.RECsKWh / slots}
	offsite := []float64{0, 2}
	for tt := 0; tt < 3; tt++ {
		out, err := sys.Step(500, 120)
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(out)
		for i := range want {
			want[i] = math.Max(0, want[i]+out.Sites[i].GridKWh-
				sites[i].Portfolio.Alpha*offsite[i]-z[i])
			if got := sys.Queue(i); math.Abs(got-want[i]) > 1e-9 {
				t.Fatalf("slot %d site %d queue = %v, want %v", tt, i, got, want[i])
			}
		}
	}
	if sys.Queue(0) == 0 {
		t.Error("starved site's queue never grew — accounting test is vacuous")
	}
	if sys.Slot() != 3 {
		t.Errorf("slot = %d after 3 settles, want 3", sys.Slot())
	}
}

// TestProportionalSplitGuards pins the hoisted shared validation: the
// baseline must reject exactly what Step rejects (it previously accepted
// negative loads and exhausted horizons).
func TestProportionalSplitGuards(t *testing.T) {
	const slots = 2
	sys, err := NewSystem(makeSitesK(2, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProportionalSplit(-1, 120); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := sys.ProportionalSplit(sys.TotalCapacityRPS()+1, 120); err == nil {
		t.Error("over-capacity load accepted")
	}
	for tt := 0; tt < slots; tt++ {
		out, err := sys.ProportionalSplit(100, 120)
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(out)
	}
	if _, err := sys.ProportionalSplit(100, 120); err == nil {
		t.Error("step beyond horizon accepted")
	}
	// Step shares the same guard set (already covered elsewhere for load
	// bounds): the horizon case must agree with ProportionalSplit.
	if _, err := sys.Step(100, 120); err == nil {
		t.Error("Step beyond horizon accepted")
	}
}

// benchGeoSystem builds a K-site system with a long horizon for the
// split benchmarks; stepping without settling keeps the slot fixed so the
// horizon never exhausts mid-measurement.
func benchGeoSystem(b *testing.B, k, workers int) (*System, float64) {
	b.Helper()
	sys, err := NewSystem(makeSitesK(k, 64), 0.005, 64)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetWorkers(workers); err != nil {
		b.Fatal(err)
	}
	return sys, 0.4 * sys.TotalCapacityRPS()
}

// BenchmarkGeoStepNaive is the pre-memoization reference cost (O(Chunks·K)
// P3 solves per slot) — the yardstick for the memoized paths below.
func BenchmarkGeoStepNaive(b *testing.B) {
	sys, lambda := benchGeoSystem(b, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.stepNaive(lambda, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeoStepMemo is the memoized sequential split.
func BenchmarkGeoStepMemo(b *testing.B) {
	sys, lambda := benchGeoSystem(b, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(lambda, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeoStepParallel adds the worker-pool fan-out on top of the memo
// table.
func BenchmarkGeoStepParallel(b *testing.B) {
	sys, lambda := benchGeoSystem(b, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(lambda, 120); err != nil {
			b.Fatal(err)
		}
	}
}
