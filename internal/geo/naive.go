package geo

import (
	"fmt"
	"math"
)

// stepNaive is the pre-memoization reference implementation of Step, kept
// verbatim (minus observability) as the bit-for-bit yardstick for the
// split hot path: golden tests require Step's allocation and operated
// outcome to hash identically to this loop, and its solve count is the
// baseline the memo counters are measured against. It re-solves every
// feasible site's P3 in every greedy round — O(Chunks·K) solves — and
// solves each loaded site once more in the operate pass; the memoized path
// must account for exactly those solves as p3Solves + memoHits.
//
// It does not advance the slot; Settle the returned outcome as usual.
func (sys *System) stepNaive(lambda, v float64) (StepOutcome, int, error) {
	if err := sys.validateLoad(lambda); err != nil {
		return StepOutcome{}, 0, err
	}
	k := len(sys.Sites)
	solves := 0
	split := make([]float64, k)
	if lambda > 0 {
		chunk := lambda / Chunks
		cur := make([]float64, k) // current site values
		for c := 0; c < Chunks; c++ {
			best := -1
			bestDelta := math.Inf(1)
			for i := 0; i < k; i++ {
				if split[i]+chunk > sys.Sites[i].CapacityRPS() {
					continue
				}
				solves++
				delta := sys.siteValue(i, v, split[i]+chunk) - cur[i]
				if delta < bestDelta {
					best, bestDelta = i, delta
				}
			}
			if best < 0 {
				return StepOutcome{}, solves, errNoAbsorb
			}
			split[best] += chunk
			cur[best] += bestDelta
		}
	}
	out := StepOutcome{Sites: make([]SiteOutcome, k)}
	for i := 0; i < k; i++ {
		so := SiteOutcome{LoadRPS: split[i]}
		if split[i] > 0 {
			solves++
			sol, err := sys.siteProblem(i, v, split[i]).Solve()
			if err != nil {
				return StepOutcome{}, solves, fmt.Errorf("geo: site %s: %w", sys.Sites[i].Name, err)
			}
			so.Speed, so.Active = sol.Speed, sol.Active
			ch := sys.siteLedger(i).Charge(sol.PowerKW, sol.DelayCost, 0)
			so.PowerKW, so.GridKWh, so.DelayCost = ch.PowerKW, ch.GridKWh, ch.DelayCost
			so.CostUSD = ch.TotalUSD
		}
		out.Sites[i] = so
		out.TotalCostUSD += so.CostUSD
		out.TotalGridKWh += so.GridKWh
	}
	return out, solves, nil
}
