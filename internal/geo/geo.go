// Package geo extends COCA to geographically distributed data centers —
// the multi-site setting of the related work the paper builds on
// (geographical load balancing, refs [21][29][32] of the paper). A global
// load distributor splits each slot's arrivals across sites with different
// electricity prices, on-site renewables and carbon budgets; every site
// runs its own carbon-deficit queue, so the split is steered toward sites
// that are currently cheap *and* carbon-underspent.
//
// The per-slot problem separates: given a split (μ_1..μ_K), site k's cost
// is its own P3 optimum at load μ_k, a convex non-decreasing function of
// μ_k (minimum of convex costs with nested feasible sets). The split is
// computed by greedy marginal allocation in load chunks — optimal for
// convex per-site costs up to the chunk discretization.
package geo

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cliutil"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/renewable"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/trace"
)

// Site is one data center in the federation.
type Site struct {
	Name   string
	Server dcmodel.ServerType
	N      int
	Gamma  float64
	PUE    float64

	Price     *trace.Trace         // w_k(t) in $/kWh
	Portfolio *renewable.Portfolio // r_k(t), f_k(t), Z_k, α_k
}

// Validate reports whether the site is well formed for the horizon.
func (s *Site) Validate(slots int) error {
	if err := s.Server.Validate(); err != nil {
		return err
	}
	if s.N <= 0 {
		return fmt.Errorf("geo: site %q fleet %d", s.Name, s.N)
	}
	if s.Gamma <= 0 || s.Gamma >= 1 {
		return fmt.Errorf("geo: site %q gamma %v", s.Name, s.Gamma)
	}
	if s.PUE < 1 {
		return fmt.Errorf("geo: site %q PUE %v", s.Name, s.PUE)
	}
	if s.Price == nil || s.Price.Len() < slots {
		return fmt.Errorf("geo: site %q price trace short", s.Name)
	}
	if s.Portfolio == nil {
		return fmt.Errorf("geo: site %q missing portfolio", s.Name)
	}
	return s.Portfolio.Validate(slots)
}

// CapacityRPS returns the site's γ-discounted top-speed capacity.
func (s *Site) CapacityRPS() float64 {
	return s.Gamma * float64(s.N) * s.Server.MaxRate()
}

// System is a federation of sites under one global workload.
type System struct {
	Sites []Site
	Beta  float64
	Slots int

	queues  []*lyapunov.DeficitQueue
	slot    int
	tracer  *span.Tracer
	metrics *telemetry.GeoMetrics
	// splitWorkers bounds the split evaluator's fan-out; see SetWorkers.
	splitWorkers int
}

// SetTracer attaches a span tracer: every subsequent Step records a
// geo.step root span with one geo.site child per site (allocated load,
// chunk count, deficit queue, the operated speed/active and costs).
// Steps start *root* spans — geo systems are often stepped inside pooled
// experiment workers, and a root never adopts a stranger's open span.
// Nil (the default) disables tracing.
func (sys *System) SetTracer(tr *span.Tracer) { sys.tracer = tr }

// Instrument attaches federation metrics: Step feeds the per-site
// counters and Settle the deficit gauges. Nil (the default) disables
// instrumentation.
func (sys *System) Instrument(m *telemetry.GeoMetrics) { sys.metrics = m }

// SetWorkers bounds the split evaluator's fan-out: n > 1 evaluates P3
// candidates (and ProportionalSplit's per-site solves) on up to n
// goroutines with a deterministic lowest-index argmin/error reduction, so
// results are bit-identical to the sequential path whatever the
// scheduling. n in {0, 1} stays sequential — unlike
// experiments.Config.Workers, zero does NOT mean all cores, because geo
// systems are routinely stepped inside already-pooled experiment workers
// and must not oversubscribe by default. Negative n is an explicit error
// (the rule cliutil.WorkersFor enforces across the repository; negatives
// used to be silently accepted as sequential here).
func (sys *System) SetWorkers(n int) error {
	if err := cliutil.WorkersFor("geo.System.SetWorkers", n); err != nil {
		return err
	}
	sys.splitWorkers = n
	return nil
}

// workers resolves the effective split fan-out.
func (sys *System) workers() int {
	if sys.splitWorkers > 1 {
		return sys.splitWorkers
	}
	return 1
}

// NewSystem validates and assembles the federation, creating one
// carbon-deficit queue per site.
func NewSystem(sites []Site, beta float64, slots int) (*System, error) {
	if len(sites) == 0 {
		return nil, errors.New("geo: no sites")
	}
	if beta < 0 {
		return nil, errors.New("geo: negative beta")
	}
	if slots <= 0 {
		return nil, errors.New("geo: non-positive horizon")
	}
	sys := &System{Sites: sites, Beta: beta, Slots: slots}
	for i := range sites {
		if err := sites[i].Validate(slots); err != nil {
			return nil, err
		}
		sys.queues = append(sys.queues, lyapunov.NewDeficitQueue(
			sites[i].Portfolio.Alpha,
			sites[i].Portfolio.RECPerSlotKWh(slots),
		))
	}
	return sys, nil
}

// TotalCapacityRPS returns the federation's aggregate capacity.
func (sys *System) TotalCapacityRPS() float64 {
	var c float64
	for i := range sys.Sites {
		c += sys.Sites[i].CapacityRPS()
	}
	return c
}

// Queue exposes site k's deficit-queue length.
func (sys *System) Queue(k int) float64 { return sys.queues[k].Len() }

// Slot returns the next slot to be stepped.
func (sys *System) Slot() int { return sys.slot }

// SiteOutcome is one site's share of a stepped slot.
type SiteOutcome struct {
	LoadRPS   float64
	Speed     int
	Active    int
	PowerKW   float64
	GridKWh   float64
	DelayCost float64
	CostUSD   float64 // the site's dcmodel.Ledger charge: w_k·grid + β·delay
}

// StepOutcome is a stepped slot across the federation.
type StepOutcome struct {
	Sites        []SiteOutcome
	TotalCostUSD float64
	TotalGridKWh float64
}

// siteProblem builds site k's P3 instance for the slot at load mu.
func (sys *System) siteProblem(k int, v, mu float64) *p3.HomogeneousProblem {
	site := &sys.Sites[k]
	t := sys.slot
	we, wd := dcmodel.P3Weights(v, sys.queues[k].Len(), site.Price.Values[t], sys.Beta)
	return &p3.HomogeneousProblem{
		Type: site.Server, N: site.N,
		Gamma: site.Gamma, PUE: site.PUE,
		LambdaRPS: mu,
		We:        we, Wd: wd,
		OnsiteKW: site.Portfolio.OnsiteKW.Values[t],
	}
}

// siteLedger builds site k's slot-cost kernel for the current slot. All
// site charging goes through it, so geo shares the exact accounting of
// internal/sim and internal/core.
func (sys *System) siteLedger(k int) dcmodel.Ledger {
	site := &sys.Sites[k]
	t := sys.slot
	return dcmodel.Ledger{
		PriceUSDPerKWh: site.Price.Values[t],
		OnsiteKW:       site.Portfolio.OnsiteKW.Values[t],
		Beta:           sys.Beta,
		Alpha:          site.Portfolio.Alpha,
		RECPerSlotKWh:  site.Portfolio.RECPerSlotKWh(sys.Slots),
	}
}

// siteValue returns site k's P3 optimum value at load mu (+Inf when the
// site cannot carry mu). Only the naive reference loop uses it; the hot
// path goes through evalSite, which additionally separates real solver
// errors from capacity infeasibility.
func (sys *System) siteValue(k int, v, mu float64) float64 {
	if mu == 0 {
		// An empty site powers down: zero P3 value.
		return 0
	}
	sol, err := sys.siteProblem(k, v, mu).Solve()
	if err != nil {
		return math.Inf(1)
	}
	return sol.Value
}

// validateLoad guards the shared Step/ProportionalSplit preconditions:
// horizon not exhausted, non-negative load, load within the federation's
// aggregate capacity.
func (sys *System) validateLoad(lambda float64) error {
	if sys.slot >= sys.Slots {
		return errors.New("geo: horizon exhausted")
	}
	if lambda < 0 {
		return errors.New("geo: negative load")
	}
	if lambda > sys.TotalCapacityRPS() {
		return fmt.Errorf("geo: load %v exceeds federation capacity %v",
			lambda, sys.TotalCapacityRPS())
	}
	return nil
}

// Chunks is the load-split granularity of Step: the slot's arrivals are
// allocated in λ/Chunks increments by greedy marginal cost.
const Chunks = 100

// Step distributes lambda across the sites minimizing the federation's P3
// objective Σ_k [V·g_k + q_k·y_k], operates each site, and returns the
// outcome. Call Settle with the realized off-site generation afterwards.
//
// The split runs on the memoized greedy engine of split.go: bit-identical
// to the naive O(Chunks·K)-solve loop (kept as stepNaive, pinned by golden
// hash tests) at O(Chunks + K) P3 solves, with the candidate evaluations
// optionally fanned across SetWorkers goroutines. Real solver failures
// abort the step and count into geo.solve_errors; capacity infeasibility
// never does — a full site is a legitimate split answer.
func (sys *System) Step(lambda float64, v float64) (StepOutcome, error) {
	if err := sys.validateLoad(lambda); err != nil {
		return StepOutcome{}, err
	}
	k := len(sys.Sites)
	stepSpan := sys.tracer.StartRoot("geo.step",
		span.Int("slot", sys.slot), span.Float("lambda_rps", lambda),
		span.Float("v", v), span.Int("sites", k),
		span.Int("workers", sys.workers()))
	defer stepSpan.End()
	plan, err := sys.greedySplit(lambda, v)
	if err != nil {
		stepSpan.Set(span.Str("error", err.Error()),
			span.Int("p3_solves", plan.p3Solves), span.Int("memo_hits", plan.memoHits))
		if !errors.Is(err, errNoAbsorb) {
			sys.metrics.IncSolveError()
		}
		return StepOutcome{}, err
	}
	out := StepOutcome{Sites: make([]SiteOutcome, k)}
	for i := 0; i < k; i++ {
		var siteSpan *span.Span
		if stepSpan != nil {
			siteSpan = stepSpan.Child("geo.site",
				span.Str("site", sys.Sites[i].Name),
				span.Float("load_rps", plan.split[i]),
				span.Int("chunks", plan.chunks[i]),
				span.Float("marginal_usd", plan.marginal[i]),
				span.Float("queue_kwh", sys.queues[i].Len()))
		}
		so := SiteOutcome{LoadRPS: plan.split[i]}
		if plan.split[i] > 0 {
			// The site's last winning candidate was solved at exactly this
			// load: reuse it instead of the naive loop's final re-solve.
			sol := plan.sols[i]
			plan.memoHits++
			so.Speed, so.Active = sol.Speed, sol.Active
			ch := sys.siteLedger(i).Charge(sol.PowerKW, sol.DelayCost, 0)
			so.PowerKW, so.GridKWh, so.DelayCost = ch.PowerKW, ch.GridKWh, ch.DelayCost
			so.CostUSD = ch.TotalUSD
		}
		if siteSpan != nil {
			siteSpan.Set(
				span.Int("speed", so.Speed), span.Int("active", so.Active),
				span.Float("cost_usd", so.CostUSD), span.Float("grid_kwh", so.GridKWh))
			siteSpan.End()
		}
		sys.metrics.ObserveSite(sys.Sites[i].Name, so.LoadRPS, plan.chunks[i], so.CostUSD, so.GridKWh)
		out.Sites[i] = so
		out.TotalCostUSD += so.CostUSD
		out.TotalGridKWh += so.GridKWh
	}
	sys.metrics.ObserveStep(out.TotalCostUSD, out.TotalGridKWh)
	sys.metrics.ObserveSplit(plan.p3Solves, plan.memoHits)
	if stepSpan != nil {
		stepSpan.Set(
			span.Float("total_usd", out.TotalCostUSD),
			span.Float("total_grid_kwh", out.TotalGridKWh),
			span.Int("p3_solves", plan.p3Solves),
			span.Int("memo_hits", plan.memoHits))
	}
	return out, nil
}

// Settle finishes the slot: every site's deficit queue absorbs its
// realized grid draw against its own off-site generation, and the clock
// advances.
func (sys *System) Settle(out StepOutcome) {
	t := sys.slot
	for i := range sys.Sites {
		sys.queues[i].Update(out.Sites[i].GridKWh, sys.Sites[i].Portfolio.OffsiteKWh.Values[t])
		sys.metrics.SetDeficit(sys.Sites[i].Name, sys.queues[i].Len())
	}
	sys.slot++
}

// ProportionalSplit is the carbon- and price-blind baseline: load shares
// proportional to site capacity. It returns the same outcome structure so
// runs are directly comparable, and shares Step's validateLoad guards
// (horizon, negative load, capacity). The per-site solves fan across the
// SetWorkers pool — each site writes only its own outcome slot, errors
// reduce to the lowest site index, and totals accumulate sequentially in
// site order, so every pool width produces bit-identical results.
func (sys *System) ProportionalSplit(lambda float64, v float64) (StepOutcome, error) {
	if err := sys.validateLoad(lambda); err != nil {
		return StepOutcome{}, err
	}
	total := sys.TotalCapacityRPS()
	k := len(sys.Sites)
	out := StepOutcome{Sites: make([]SiteOutcome, k)}
	errs := make([]error, k)
	fanEval(sys.workers(), k, func(i int) {
		mu := lambda * sys.Sites[i].CapacityRPS() / total
		so := SiteOutcome{LoadRPS: mu}
		if mu > 0 {
			sol, err := sys.siteProblem(i, v, mu).Solve()
			if err != nil {
				errs[i] = err
				return
			}
			so.Speed, so.Active = sol.Speed, sol.Active
			ch := sys.siteLedger(i).Charge(sol.PowerKW, sol.DelayCost, 0)
			so.PowerKW, so.GridKWh, so.DelayCost = ch.PowerKW, ch.GridKWh, ch.DelayCost
			so.CostUSD = ch.TotalUSD
		}
		out.Sites[i] = so
	})
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			return StepOutcome{}, errs[i]
		}
		out.TotalCostUSD += out.Sites[i].CostUSD
		out.TotalGridKWh += out.Sites[i].GridKWh
	}
	return out, nil
}
