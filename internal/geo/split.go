package geo

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/p3"
	"repro/internal/workpool"
)

// This file is the geo split hot path: the memoized, incremental and
// optionally parallel greedy marginal allocation behind System.Step. It is
// pinned bit-for-bit against the naive reference loop in naive.go (see
// TestGoldenSplitParity), which it replaces at O(Chunks + K) P3 solves per
// slot instead of O(Chunks·K).
//
// The key invariant: site values are only ever needed on the per-slot grid
// μ = split_i + chunk where split_i accumulates whole chunks, and within a
// slot the value of (site, tentative load) never changes. So each site
// carries exactly one cached candidate — its marginal value for absorbing
// the *next* chunk — and a greedy round invalidates only the winner's
// entry. Everything else is a memo hit the naive loop would have paid a
// fresh HomogeneousProblem.Solve for.

// errNoAbsorb is the Step failure when the greedy allocation strands load:
// every site is either at capacity for the next chunk or P3-infeasible.
var errNoAbsorb = errors.New("geo: no site can absorb the next chunk")

// candidate is one site's slot of the per-slot value table: the site's P3
// value and solution at its current tentative load plus one chunk, and the
// marginal delta the greedy argmin scans. Valid until the site wins a
// chunk (nothing else moves its tentative load within the slot).
type candidate struct {
	capOK bool    // split_i + chunk fits the site's γ-discounted capacity
	fresh bool    // solved this round; reset to a memo hit on first scan
	value float64 // P3 optimum at split_i + chunk (+Inf when infeasible)
	delta float64 // value − cur_i, the greedy marginal cost
	sol   p3.HomogeneousSolution
	err   error // real solver failure (never capacity infeasibility)
}

// splitPlan is a computed greedy allocation plus the cached P3 solutions
// backing it and the solve accounting the spans and metrics report.
type splitPlan struct {
	split    []float64 // allocated load per site
	chunks   []int     // greedy chunks won per site
	marginal []float64 // last winning marginal cost per site
	sols     []p3.HomogeneousSolution
	p3Solves int // fresh HomogeneousProblem.Solve calls spent
	memoHits int // candidate reads (and final-pass reuses) served from cache
}

// evalSite solves site i's P3 at load mu, separating the two failure
// modes: capacity-type infeasibility (p3.ErrInfeasible) is a legitimate
// "site full" answer reported as +Inf, while any other error — a malformed
// instance, a corrupted load — is a real failure the step must surface
// (previously every error was masked as +Inf).
func (sys *System) evalSite(i int, v, mu float64) (float64, p3.HomogeneousSolution, error) {
	sol, err := sys.siteProblem(i, v, mu).Solve()
	if err != nil {
		if errors.Is(err, p3.ErrInfeasible) {
			return math.Inf(1), p3.HomogeneousSolution{}, nil
		}
		return 0, p3.HomogeneousSolution{}, err
	}
	return sol.Value, sol, nil
}

// greedySplit allocates lambda across the sites in λ/Chunks increments by
// greedy marginal cost — arithmetic identical to stepNaive, with the
// candidate table absorbing every redundant re-solve and the worker pool
// fanning the initial K evaluations.
func (sys *System) greedySplit(lambda, v float64) (splitPlan, error) {
	k := len(sys.Sites)
	plan := splitPlan{
		split:    make([]float64, k),
		chunks:   make([]int, k),
		marginal: make([]float64, k),
		sols:     make([]p3.HomogeneousSolution, k),
	}
	if lambda <= 0 {
		return plan, nil
	}
	chunk := lambda / Chunks
	cur := make([]float64, k) // current site values, accumulated like naive
	cand := make([]candidate, k)
	eval := func(i int) {
		c := &cand[i]
		*c = candidate{fresh: true}
		if plan.split[i]+chunk > sys.Sites[i].CapacityRPS() {
			return
		}
		c.capOK = true
		c.value, c.sol, c.err = sys.evalSite(i, v, plan.split[i]+chunk)
		c.delta = c.value - cur[i]
	}

	// Initial candidates: every site's value at one chunk, fanned across
	// the worker pool. Each job writes only its own table slot, so the
	// result — and the lowest-index error below — is independent of
	// scheduling.
	fanEval(sys.workers(), k, eval)
	for i := range cand {
		if !cand[i].capOK {
			continue
		}
		plan.p3Solves++
		if cand[i].err != nil {
			return plan, fmt.Errorf("geo: site %s: %w", sys.Sites[i].Name, cand[i].err)
		}
	}

	for c := 0; c < Chunks; c++ {
		best := -1
		bestDelta := math.Inf(1)
		for i := 0; i < k; i++ {
			if !cand[i].capOK {
				continue
			}
			if cand[i].fresh {
				cand[i].fresh = false
			} else {
				plan.memoHits++ // the naive loop re-solves this site here
			}
			if cand[i].delta < bestDelta {
				best, bestDelta = i, cand[i].delta
			}
		}
		if best < 0 {
			return plan, errNoAbsorb
		}
		plan.split[best] += chunk
		cur[best] += bestDelta
		plan.chunks[best]++
		plan.marginal[best] = bestDelta
		// The winning candidate was solved at exactly the new split: keep
		// its solution so the operate pass never re-solves.
		plan.sols[best] = cand[best].sol
		if c+1 == Chunks {
			break // no next round: the naive loop stops evaluating too
		}
		// Only the winner's tentative load moved; every other cached
		// (value, Δ) pair is still exact. One fresh solve per round.
		eval(best)
		if cand[best].capOK {
			plan.p3Solves++
			if cand[best].err != nil {
				return plan, fmt.Errorf("geo: site %s: %w", sys.Sites[best].Name, cand[best].err)
			}
		}
	}
	return plan, nil
}

// fanEval runs eval(0..n-1) on up to `workers` goroutines via the shared
// bounded pool: each job writes only its own slot, so results carry no
// ordering dependence. workers <= 1 degrades to the plain sequential loop.
func fanEval(workers, n int, eval func(int)) {
	workpool.Fan(workers, n, eval)
}
