package geo

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// makeFleetSites builds a deterministic K-site fleet of heterogeneous
// clusters: groupsPerSite groups of serversPerGroup servers each, staggered
// price levels and renewables, so splits and solves are non-trivial at any
// scale.
func makeFleetSites(k, groupsPerSite, serversPerGroup, slots int) []FleetSite {
	sites := make([]FleetSite, k)
	for i := range sites {
		p := price.CAISOYear(uint64(i + 1))
		scale := 0.4 + 0.15*float64(i%5)
		for j := range p.Values {
			p.Values[j] *= scale
		}
		cl := dcmodel.HeterogeneousCluster(groupsPerSite*serversPerGroup, groupsPerSite)
		sites[i] = FleetSite{
			Name:    fmt.Sprintf("f%03d", i),
			Cluster: cl,
			Price:   p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", float64(i%3), slots),
				OffsiteKWh: trace.Constant("f", 20, slots),
				RECsKWh:    float64(slots) * 30,
				Alpha:      1,
			},
		}
	}
	return sites
}

// hashFleetOutcome folds a FleetStepOutcome into the FNV-1a digest the
// bench gate uses: little-endian IEEE-754 bits of every computed number.
func hashFleetOutcome(h interface{ Write([]byte) (int, error) }, out FleetStepOutcome) {
	put := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	put(out.TotalCostUSD, out.TotalGridKWh)
	for _, so := range out.Sites {
		put(so.LoadRPS, float64(so.Active), so.PowerKW,
			so.GridKWh, so.DelayCost, so.CostUSD, so.Value)
	}
}

// runFleetHash steps a fresh fleet for `slots` slots at the given worker
// count and returns the FNV-1a digest over every outcome and the final
// deficit-queue lengths.
func runFleetHash(t testing.TB, sites []FleetSite, slots, iters, workers int) uint64 {
	t.Helper()
	f, err := NewFleet(sites, 0.005, slots, gsd.Options{
		Delta: 1e4, MaxIters: iters, Seed: 2013,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	capRPS := f.TotalCapacityRPS()
	for tt := 0; tt < slots; tt++ {
		lambda := capRPS * (0.15 + 0.5*float64(tt)/float64(slots))
		out, err := f.Step(lambda, 5e5)
		if err != nil {
			t.Fatal(err)
		}
		hashFleetOutcome(h, out)
		f.Settle(out)
	}
	var buf [8]byte
	for i := range sites {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f.Queue(i)))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestFleetGoldenParityWorkers pins the fleet step bit-for-bit: sequential
// (workers=1) and parallel (workers=8) runs over the same sites must hash
// identically, deficit feedback included, so any schedule-dependent drift
// compounds and is caught.
func TestFleetGoldenParityWorkers(t *testing.T) {
	const slots = 6
	seq := runFleetHash(t, makeFleetSites(8, 12, 10, slots), slots, 40, 1)
	par := runFleetHash(t, makeFleetSites(8, 12, 10, slots), slots, 40, 8)
	if seq != par {
		t.Fatalf("fleet parallel step diverged: seq %016x par %016x", seq, par)
	}
}

// TestFleetScale256Sites10kGroups is the acceptance-scale exercise: 256
// sites × 40 groups ≈ 10k groups (≈ 100k servers at 10 servers/group),
// stepped with a wide worker pool — under -race in CI — and pinned
// bit-identical to the single-worker path.
func TestFleetScale256Sites10kGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale exercise skipped in -short")
	}
	const (
		sites, groups, servers = 256, 40, 10
		slots, iters           = 2, 25
	)
	seq := runFleetHash(t, makeFleetSites(sites, groups, servers, slots), slots, iters, 1)
	par := runFleetHash(t, makeFleetSites(sites, groups, servers, slots), slots, iters, 32)
	if seq != par {
		t.Fatalf("256-site fleet diverged: seq %016x par %016x", seq, par)
	}
}

// TestFleetSetWorkersRejectsNegative pins the cliutil.WorkersFor rule on
// both federation types: negatives are an explicit error, never a silent
// fallback.
func TestFleetSetWorkersRejectsNegative(t *testing.T) {
	const slots = 4
	f, err := NewFleet(makeFleetSites(2, 3, 5, slots), 0.005, slots, gsd.Options{Delta: 1e4, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWorkers(-1); err == nil || !strings.Contains(err.Error(), "geo.Fleet.SetWorkers") {
		t.Fatalf("Fleet.SetWorkers(-1) = %v, want named error", err)
	}
	if err := f.SetWorkers(0); err != nil {
		t.Fatalf("Fleet.SetWorkers(0): %v", err)
	}
	sys, err := NewSystem(makeSitesK(2, slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetWorkers(-3); err == nil || !strings.Contains(err.Error(), "geo.System.SetWorkers") {
		t.Fatalf("System.SetWorkers(-3) = %v, want named error", err)
	}
}

// TestFleetValidation covers the constructor and step guards.
func TestFleetValidation(t *testing.T) {
	const slots = 4
	sites := makeFleetSites(2, 3, 5, slots)
	if _, err := NewFleet(nil, 0.005, slots, gsd.Options{}); err == nil {
		t.Error("NewFleet with no sites should fail")
	}
	if _, err := NewFleet(sites, -1, slots, gsd.Options{}); err == nil {
		t.Error("NewFleet with negative beta should fail")
	}
	if _, err := NewFleet(sites, 0.005, 0, gsd.Options{}); err == nil {
		t.Error("NewFleet with zero horizon should fail")
	}
	bad := makeFleetSites(2, 3, 5, slots)
	bad[1].Cluster = nil
	if _, err := NewFleet(bad, 0.005, slots, gsd.Options{}); err == nil {
		t.Error("NewFleet with nil cluster should fail")
	}
	f, err := NewFleet(sites, 0.005, slots, gsd.Options{Delta: 1e4, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(-1, 5e5); err == nil {
		t.Error("negative load should fail")
	}
	if _, err := f.Step(2*f.TotalCapacityRPS(), 5e5); err == nil {
		t.Error("over-capacity load should fail")
	}
	for tt := 0; tt < slots; tt++ {
		out, err := f.Step(0.3*f.TotalCapacityRPS(), 5e5)
		if err != nil {
			t.Fatal(err)
		}
		f.Settle(out)
	}
	if _, err := f.Step(1, 5e5); err == nil {
		t.Error("stepping past the horizon should fail")
	}
}

// TestFleetInstrumentedParity pins the observability acceptance bound:
// attaching FleetMetrics must not change outcomes. An instrumented run
// hashes bit-identically to a bare one, and the labeled series agree
// exactly with the outcomes that produced them (same values folded in the
// same order, so float sums match bit for bit).
func TestFleetInstrumentedParity(t *testing.T) {
	const (
		slots, iters, workers = 4, 30, 4
		k, groups, servers    = 4, 6, 8
	)
	base := runFleetHash(t, makeFleetSites(k, groups, servers, slots), slots, iters, workers)

	sites := makeFleetSites(k, groups, servers, slots)
	f, err := NewFleet(sites, 0.005, slots, gsd.Options{Delta: 1e4, MaxIters: iters, Seed: 2013})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	f.Instrument(telemetry.NewFleetMetrics(reg, "fleet"))

	h := fnv.New64a()
	var wantCost, wantGrid float64
	wantLoad := make(map[string]float64, k)
	capRPS := f.TotalCapacityRPS()
	for tt := 0; tt < slots; tt++ {
		lambda := capRPS * (0.15 + 0.5*float64(tt)/float64(slots))
		out, err := f.Step(lambda, 5e5)
		if err != nil {
			t.Fatal(err)
		}
		hashFleetOutcome(h, out)
		wantCost += out.TotalCostUSD
		wantGrid += out.TotalGridKWh
		for i, so := range out.Sites {
			wantLoad[sites[i].Name] += so.LoadRPS
		}
		f.Settle(out)
	}
	var buf [8]byte
	for i := range sites {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f.Queue(i)))
		h.Write(buf[:])
	}
	if got := h.Sum64(); got != base {
		t.Fatalf("instrumentation changed outcomes: bare %016x instrumented %016x", base, got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fleet.steps"]; got != slots {
		t.Errorf("fleet.steps = %v, want %d", got, slots)
	}
	if got := snap.Counters["fleet.total_usd"]; got != wantCost {
		t.Errorf("fleet.total_usd = %v, want %v", got, wantCost)
	}
	if got := snap.Counters["fleet.grid_kwh"]; got != wantGrid {
		t.Errorf("fleet.grid_kwh = %v, want %v", got, wantGrid)
	}
	if got := snap.Histograms["fleet.step_seconds"].Count; got != slots {
		t.Errorf("fleet.step_seconds count = %d, want %d", got, slots)
	}
	load := snap.LabeledCounters["fleet.site.load_rps"]
	deficit := snap.LabeledGauges["fleet.site.deficit_kwh"]
	for i, s := range sites {
		if got, ok := load.Get(s.Name); !ok || got != wantLoad[s.Name] {
			t.Errorf("fleet.site.load_rps{site=%q} = %v (ok=%v), want %v", s.Name, got, ok, wantLoad[s.Name])
		}
		if got, ok := deficit.Get(s.Name); !ok || got != f.Queue(i) {
			t.Errorf("fleet.site.deficit_kwh{site=%q} = %v (ok=%v), want %v", s.Name, got, ok, f.Queue(i))
		}
	}
	// The per-shard solver stats flow through Opts.Metrics: any site that
	// carried load ran at least one GSD solve under its own label.
	shardSolves := snap.LabeledCounters["fleet.shard.solves"]
	for _, s := range sites {
		if wantLoad[s.Name] == 0 {
			continue
		}
		if got, ok := shardSolves.Get(s.Name); !ok || got <= 0 {
			t.Errorf("fleet.shard.solves{site=%q} = %v (ok=%v), want > 0", s.Name, got, ok)
		}
	}
}

// TestFleetQueueSettle checks the deficit accounting: a site drawing more
// grid energy than its off-site generation accumulates deficit.
func TestFleetQueueSettle(t *testing.T) {
	const slots = 4
	sites := makeFleetSites(2, 3, 5, slots)
	for i := range sites {
		// No renewables at all: every kWh is grid draw.
		sites[i].Portfolio.OnsiteKW = trace.Constant("r", 0, slots)
		sites[i].Portfolio.OffsiteKWh = trace.Constant("f", 0, slots)
		sites[i].Portfolio.RECsKWh = 0
	}
	f, err := NewFleet(sites, 0.005, slots, gsd.Options{Delta: 1e4, MaxIters: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Step(0.4*f.TotalCapacityRPS(), 5e5)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalGridKWh <= 0 {
		t.Fatalf("expected positive grid draw, got %v", out.TotalGridKWh)
	}
	f.Settle(out)
	for i := range sites {
		if f.Queue(i) <= 0 {
			t.Errorf("site %d: deficit queue %v, want > 0", i, f.Queue(i))
		}
	}
	if f.Slot() != 1 {
		t.Errorf("slot = %d after one settle, want 1", f.Slot())
	}
}
