package geo

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/trace"
)

// makeSites builds a small two-site federation with asymmetric prices:
// site "cheap" pays a third of site "dear".
func makeSites(slots int) []Site {
	mk := func(name string, priceScale float64, n int, seed uint64) Site {
		p := price.CAISOYear(seed)
		for i := range p.Values {
			p.Values[i] *= priceScale
		}
		return Site{
			Name:   name,
			Server: dcmodel.Opteron(),
			N:      n,
			Gamma:  0.95,
			PUE:    1,
			Price:  p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", 1, slots),
				OffsiteKWh: trace.Constant("f", 2, slots),
				RECsKWh:    float64(slots) * 3,
				Alpha:      1,
			},
		}
	}
	return []Site{
		mk("cheap", 0.4, 100, 1),
		mk("dear", 1.2, 100, 2),
	}
}

func TestNewSystemValidation(t *testing.T) {
	slots := 48
	good := makeSites(slots)
	if _, err := NewSystem(good, 0.01, slots); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	if _, err := NewSystem(nil, 0.01, slots); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := NewSystem(good, -1, slots); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := NewSystem(good, 0.01, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := makeSites(slots)
	bad[0].N = 0
	if _, err := NewSystem(bad, 0.01, slots); err == nil {
		t.Error("bad site accepted")
	}
}

func TestStepSplitsTowardCheapSite(t *testing.T) {
	slots := 24
	sys, err := NewSystem(makeSites(slots), 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Step(600, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, so := range out.Sites {
		sum += so.LoadRPS
	}
	if math.Abs(sum-600) > 1e-6 {
		t.Fatalf("split sums to %v, want 600", sum)
	}
	// The cheap site should carry strictly more load.
	if out.Sites[0].LoadRPS <= out.Sites[1].LoadRPS {
		t.Errorf("cheap site got %v, dear site %v", out.Sites[0].LoadRPS, out.Sites[1].LoadRPS)
	}
}

func TestStepBeatsProportionalSplit(t *testing.T) {
	slots := 48
	sitesA := makeSites(slots)
	sysA, err := NewSystem(sitesA, 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	sitesB := makeSites(slots)
	sysB, err := NewSystem(sitesB, 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.FIUYear(5)
	var smart, naive float64
	for tt := 0; tt < slots; tt++ {
		lambda := 200 + 800*wl.Values[tt]
		oa, err := sysA.Step(lambda, 100)
		if err != nil {
			t.Fatal(err)
		}
		sysA.Settle(oa)
		smart += oa.TotalCostUSD
		ob, err := sysB.ProportionalSplit(lambda, 100)
		if err != nil {
			t.Fatal(err)
		}
		sysB.Settle(ob)
		naive += ob.TotalCostUSD
	}
	if smart > naive*(1+1e-9) {
		t.Errorf("geo-aware split cost %v above proportional %v", smart, naive)
	}
	if smart > naive*0.95 {
		t.Logf("note: saving only %.1f%% — acceptable but small", 100*(1-smart/naive))
	}
}

func TestStepRespectsCapacity(t *testing.T) {
	slots := 10
	sys, err := NewSystem(makeSites(slots), 0.01, slots)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(sys.TotalCapacityRPS()+1, 100); err == nil {
		t.Error("over-capacity load accepted")
	}
	if _, err := sys.Step(-1, 100); err == nil {
		t.Error("negative load accepted")
	}
	// Per-site caps: with one site saturated the other absorbs the rest.
	out, err := sys.Step(sys.TotalCapacityRPS()*0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, so := range out.Sites {
		if so.LoadRPS > sys.Sites[i].CapacityRPS()*(1+1e-9) {
			t.Errorf("site %d overloaded: %v of %v", i, so.LoadRPS, sys.Sites[i].CapacityRPS())
		}
	}
}

func TestQueueFeedbackShiftsLoad(t *testing.T) {
	// Drive one site's deficit queue up and verify the split moves away
	// from it.
	slots := 200
	sites := makeSites(slots)
	// Starve the cheap site's budget so its queue inflates, and give the
	// dear site a budget comfortably above its worst-case draw so its own
	// queue stays empty.
	sites[0].Portfolio.OffsiteKWh = trace.Constant("f", 0, slots)
	sites[0].Portfolio.RECsKWh = 1
	sites[1].Portfolio.RECsKWh = float64(slots) * 50
	sys, err := NewSystem(sites, 0.005, slots)
	if err != nil {
		t.Fatal(err)
	}
	var early, late float64
	for tt := 0; tt < 160; tt++ {
		out, err := sys.Step(600, 100)
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(out)
		if tt < 20 {
			early += out.Sites[0].LoadRPS
		}
		if tt >= 140 {
			late += out.Sites[0].LoadRPS
		}
	}
	if sys.Queue(0) <= 0 {
		t.Fatal("cheap site's deficit queue never grew")
	}
	if sys.Queue(1) > 0 {
		t.Fatalf("dear site's queue grew (%v) despite the generous budget", sys.Queue(1))
	}
	// The queue-burdened cheap site must shed load over time.
	if late >= early {
		t.Errorf("deficit feedback did not shift load: early %v, late %v", early, late)
	}
}

func TestZeroLoadSlot(t *testing.T) {
	slots := 5
	sys, err := NewSystem(makeSites(slots), 0.01, slots)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Step(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalCostUSD != 0 || out.TotalGridKWh != 0 {
		t.Errorf("idle slot not free: %+v", out)
	}
}

func TestHorizonExhaustion(t *testing.T) {
	slots := 2
	sys, err := NewSystem(makeSites(slots), 0.01, slots)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < slots; tt++ {
		out, err := sys.Step(10, 100)
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(out)
	}
	if _, err := sys.Step(10, 100); err == nil {
		t.Error("step beyond horizon accepted")
	}
}
