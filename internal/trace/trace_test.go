package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestFIUYearShape(t *testing.T) {
	tr := FIUYear(1)
	if tr.Len() != HoursPerYear {
		t.Fatalf("len = %d, want %d", tr.Len(), HoursPerYear)
	}
	if math.Abs(tr.Max()-1) > 1e-12 {
		t.Errorf("max = %v, want 1", tr.Max())
	}
	for i, v := range tr.Values {
		if v <= 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("value[%d] = %v out of (0,1]", i, v)
		}
	}
}

func TestFIUYearLateJulySurge(t *testing.T) {
	// The paper's Fig. 1(a) shows a significant increase around late July.
	tr := FIUYear(1)
	meanOver := func(dayLo, dayHi int) float64 {
		var s stats.Summary
		for h := dayLo * 24; h < dayHi*24; h++ {
			s.Add(tr.Values[h])
		}
		return s.Mean()
	}
	earlyJuly := meanOver(182, 196) // Jul 1–15
	august := meanOver(213, 243)    // Aug
	if august < earlyJuly*1.2 {
		t.Errorf("no late-July surge: early July %v, August %v", earlyJuly, august)
	}
}

func TestFIUYearWeeklyPattern(t *testing.T) {
	tr := FIUYear(2)
	var weekday, weekend stats.Summary
	for h, v := range tr.Values {
		if dow := dayOfWeek(h); dow == 0 || dow == 6 {
			weekend.Add(v)
		} else {
			weekday.Add(v)
		}
	}
	if weekday.Mean() <= weekend.Mean() {
		t.Errorf("weekday mean %v not above weekend mean %v", weekday.Mean(), weekend.Mean())
	}
}

func TestFIUYearDiurnalPattern(t *testing.T) {
	tr := FIUYear(3)
	var day, night stats.Summary
	for h, v := range tr.Values {
		hod := hourOfDay(h)
		if hod >= 12 && hod < 18 {
			day.Add(v)
		} else if hod < 5 {
			night.Add(v)
		}
	}
	if day.Mean() <= night.Mean()*1.2 {
		t.Errorf("weak diurnal pattern: day %v vs night %v", day.Mean(), night.Mean())
	}
}

func TestFIUYearDeterministic(t *testing.T) {
	a, b := FIUYear(42), FIUYear(42)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := FIUYear(43)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical traces")
	}
}

func TestMSRWeekShape(t *testing.T) {
	tr := MSRWeek(1)
	if tr.Len() != HoursPerWeek {
		t.Fatalf("len = %d", tr.Len())
	}
	if math.Abs(tr.Max()-1) > 1e-12 {
		t.Errorf("max = %v", tr.Max())
	}
	// Storage traces are burstier than campus traffic: higher CV.
	var s stats.Summary
	s.AddAll(tr.Values)
	if s.Std()/s.Mean() < 0.2 {
		t.Errorf("MSR week too smooth: cv = %v", s.Std()/s.Mean())
	}
}

func TestMSRYearTilingAndNoise(t *testing.T) {
	year := MSRYear(5, 0.4)
	if year.Len() != HoursPerYear {
		t.Fatalf("len = %d", year.Len())
	}
	week := MSRWeek(5)
	// Before normalization the year is week.At(h)·(1 ± 0.4); after
	// normalization ratios are preserved up to a single global constant.
	// Estimate that constant and verify every hour is within the band.
	var ratioSum float64
	n := 0
	for h := 0; h < year.Len(); h++ {
		if week.At(h) > 1e-9 {
			ratioSum += year.Values[h] / week.At(h)
			n++
		}
	}
	c := ratioSum / float64(n)
	for h := 0; h < year.Len(); h++ {
		base := week.At(h)
		if base < 1e-9 {
			continue
		}
		r := year.Values[h] / (c * base)
		if r < 1-0.45 || r > 1+0.45 {
			t.Fatalf("hour %d: noise ratio %v outside ±40%% band (plus floor slack)", h, r)
		}
	}
}

func TestMSRYearPanicsOnBadNoise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSRYear(1, 1.5)
}

func TestScaledToPeak(t *testing.T) {
	tr := FIUYear(1).ScaledToPeak(1.1e6)
	if math.Abs(tr.Max()-1.1e6) > 1e-3 {
		t.Errorf("peak = %v, want 1.1e6", tr.Max())
	}
}

func TestAtWrapsAround(t *testing.T) {
	tr := Constant("c", 3, 5)
	if tr.At(7) != 3 {
		t.Errorf("At(7) = %v", tr.At(7))
	}
	empty := &Trace{}
	if empty.At(0) != 0 {
		t.Error("empty trace At should be 0")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Name: "x", Values: []float64{0, 1, 2, 3, 4}}
	s := tr.Slice(1, 3)
	if s.Len() != 2 || s.Values[0] != 1 || s.Values[1] != 2 {
		t.Errorf("slice = %v", s.Values)
	}
	s.Values[0] = 99
	if tr.Values[1] == 99 {
		t.Error("Slice aliases parent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad bounds")
		}
	}()
	tr.Slice(3, 1)
}

func TestCSVRoundTrip(t *testing.T) {
	tr := FIUYear(9).Slice(0, 100)
	tr.Name = "roundtrip"
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" || got.Len() != 100 {
		t.Fatalf("name=%q len=%d", got.Name, got.Len())
	}
	for i := range tr.Values {
		if tr.Values[i] != got.Values[i] {
			t.Fatalf("value %d: %v != %v", i, tr.Values[i], got.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("hour,x\n0,notanumber\n")); err == nil {
		t.Error("bad float accepted")
	}
}

func TestConstant(t *testing.T) {
	tr := Constant("flat", 2.5, 10)
	if tr.Len() != 10 || tr.Mean() != 2.5 || tr.Max() != 2.5 {
		t.Errorf("constant trace wrong: %+v", tr)
	}
}
