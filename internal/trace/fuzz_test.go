package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser against malformed input: it must
// either return an error or a well-formed trace, never panic, and
// well-formed output must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("hour,x\n0,1.5\n1,2.5\n")
	f.Add("hour,name\n")
	f.Add("")
	f.Add("a,b,c\n1,2,3\n")
	f.Add("hour,x\n0,NaN\n")
	f.Add("hour,x\n0,1e308\n1,-1e308\n")
	f.Add("hour,x\nnotanint,1\n")
	f.Add("\"quoted,header\",x\n0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Parsed successfully: writing and re-reading must reproduce it.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV failed on parsed trace: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round-trip length %d != %d", back.Len(), tr.Len())
		}
		for i := range tr.Values {
			// NaN != NaN, so compare bit-insensitively via formatting.
			if tr.Values[i] == tr.Values[i] && back.Values[i] != tr.Values[i] {
				t.Fatalf("value %d changed: %v != %v", i, back.Values[i], tr.Values[i])
			}
		}
	})
}
