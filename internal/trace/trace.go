// Package trace synthesizes the hourly workload traces that drive the
// simulation study (§5.1). The paper uses two proprietary logs — the FIU
// campus server I/O log for calendar year 2012 and the one-week MSR
// Cambridge RAID I/O trace of Feb 2007 (repeated over a year with ±40%
// noise) — neither of which is publicly distributable, so this package
// builds synthetic equivalents that reproduce the features the paper calls
// out: strong diurnal and weekly structure, seasonal drift with a marked
// late-July surge for FIU, storage-style burstiness for MSR, and occasional
// flash spikes. All generators are seeded and deterministic.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/stats"
)

// HoursPerYear is the number of one-hour slots in the paper's budgeting
// period (365 days).
const HoursPerYear = 365 * 24

// HoursPerWeek is the number of one-hour slots in one week.
const HoursPerWeek = 7 * 24

// Trace is an hourly time series. Values are arbitrary-unit rates; use
// Normalized/ScaledToPeak to convert to request rates.
type Trace struct {
	Name   string
	Values []float64
}

// Len returns the number of hourly samples.
func (t *Trace) Len() int { return len(t.Values) }

// At returns the value at hour i, wrapping around for i beyond the end so a
// short trace can drive a longer simulation.
func (t *Trace) At(i int) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	return t.Values[i%len(t.Values)]
}

// Max returns the largest sample.
func (t *Trace) Max() float64 { return stats.MaxOf(t.Values) }

// Mean returns the average sample.
func (t *Trace) Mean() float64 { return stats.Mean(t.Values) }

// Normalized returns a copy rescaled so the maximum equals 1.
func (t *Trace) Normalized() *Trace {
	out := t.Copy()
	stats.Normalize(out.Values)
	return out
}

// ScaledToPeak returns a copy rescaled so the maximum equals peak — the
// paper scales the FIU trace so the peak arrival rate is 1.1 M req/s.
func (t *Trace) ScaledToPeak(peak float64) *Trace {
	out := t.Normalized()
	stats.Scale(out.Values, peak)
	out.Name = t.Name
	return out
}

// Copy returns a deep copy.
func (t *Trace) Copy() *Trace {
	return &Trace{Name: t.Name, Values: append([]float64(nil), t.Values...)}
}

// Slice returns a copy of hours [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 || hi > len(t.Values) || lo > hi {
		panic(fmt.Sprintf("trace: bad slice [%d,%d) of %d", lo, hi, len(t.Values)))
	}
	return &Trace{
		Name:   t.Name,
		Values: append([]float64(nil), t.Values[lo:hi]...),
	}
}

// dayOfYear and hourOfDay decompose an hour index (hour 0 = midnight,
// day 0 = Jan 1, and day 0 is a Sunday in our synthetic calendar).
func dayOfYear(hour int) int { return hour / 24 }
func hourOfDay(hour int) int { return hour % 24 }
func dayOfWeek(hour int) int { return (hour / 24) % 7 } // 0 = Sunday

// diurnal returns the within-day activity profile peaking mid-afternoon, in
// [low, 1].
func diurnal(hod int, low float64) float64 {
	// Peak at 14:00, trough at 02:00.
	phase := 2 * math.Pi * float64(hod-14) / 24
	return low + (1-low)*(0.5+0.5*math.Cos(phase))
}

// weekly returns the day-of-week multiplier for a campus workload.
func weekly(dow int) float64 {
	switch dow {
	case 0: // Sunday
		return 0.70
	case 6: // Saturday
		return 0.75
	default:
		return 1.0
	}
}

// fiuSeasonal returns the academic-calendar envelope for day d, including
// the late-July surge the paper highlights in Fig. 1(a) (their 2012 trace
// "exhibits a significant increase around late July due to the summer
// activities").
func fiuSeasonal(d int) float64 {
	day := float64(d)
	// Base academic rhythm: busy spring term, May dip, quiet early summer.
	base := 0.62 + 0.08*math.Sin(2*math.Pi*(day-80)/365)
	// End-of-spring slump (May: days 120–150).
	base -= 0.10 * gaussianBump(day, 135, 14)
	// Late-July step up (around day 205) that persists through the fall
	// term, modeled as a logistic step plus a surge bump at onset.
	step := 0.28 / (1 + math.Exp(-(day-205)/4))
	surge := 0.12 * gaussianBump(day, 210, 8)
	// Winter-break decline (mid-December onward).
	winter := 0.18 / (1 + math.Exp(-(day-350)/3))
	return base + step + surge - winter
}

func gaussianBump(x, center, width float64) float64 {
	z := (x - center) / width
	return math.Exp(-0.5 * z * z)
}

// FIUYear synthesizes one year (8760 hours) of the FIU-like campus
// workload, normalized to peak 1.
func FIUYear(seed uint64) *Trace {
	rng := stats.NewRNG(seed)
	noise := &stats.AR1{Mean: 0, Phi: 0.85, Sigma: 0.035, Clamp: true, Lo: -0.5, Hi: 0.5}
	vals := make([]float64, HoursPerYear)
	spikeLeft := 0
	spikeMag := 1.0
	for h := range vals {
		v := fiuSeasonal(dayOfYear(h)) * weekly(dayOfWeek(h)) * diurnal(hourOfDay(h), 0.45)
		v *= math.Exp(noise.Next(rng))
		// Flash crowds: rare multi-hour spikes (unforeseeable traffic bursts,
		// §1).
		if spikeLeft == 0 && rng.Bernoulli(0.003) {
			spikeLeft = 1 + rng.IntN(4)
			spikeMag = rng.Uniform(1.4, 2.1)
		}
		if spikeLeft > 0 {
			v *= spikeMag
			spikeLeft--
		}
		if v < 0.01 {
			v = 0.01
		}
		vals[h] = v
	}
	t := &Trace{Name: "fiu-synth", Values: vals}
	stats.Normalize(t.Values)
	return t
}

// MSRWeek synthesizes one week (168 hours) of the MSR-like storage
// workload: business-hours activity on weekdays, a nightly backup burst in
// the small hours, and heavier-tailed noise than the campus trace.
func MSRWeek(seed uint64) *Trace {
	rng := stats.NewRNG(seed)
	vals := make([]float64, HoursPerWeek)
	for h := range vals {
		dow, hod := dayOfWeek(h), hourOfDay(h)
		business := 0.35 + 0.65*businessHours(hod)
		if dow == 0 || dow == 6 {
			business *= 0.55
		}
		// Nightly backup window around 02:00 on every day.
		backup := 0.9 * gaussianBump(float64(hod), 2, 1.2)
		v := business + backup
		v *= rng.LogNormal(0, 0.25)
		if rng.Bernoulli(0.02) {
			v *= rng.Uniform(1.5, 2.5)
		}
		vals[h] = v
	}
	t := &Trace{Name: "msr-synth-week", Values: vals}
	stats.Normalize(t.Values)
	return t
}

func businessHours(hod int) float64 {
	// Ramp 08:00–18:00 with a lunchtime plateau.
	if hod < 7 || hod > 20 {
		return 0.1
	}
	phase := 2 * math.Pi * float64(hod-13) / 14
	return 0.5 + 0.5*math.Cos(phase)
}

// MSRYear tiles one synthetic MSR week across a year, adding independent
// uniform noise of up to ±noiseFrac per hour — exactly the paper's own
// recipe ("repeat the trace for one year by adding random noises of up to
// ±40%", §5.1, for which noiseFrac = 0.4). The result is normalized to peak
// 1.
func MSRYear(seed uint64, noiseFrac float64) *Trace {
	if noiseFrac < 0 || noiseFrac >= 1 {
		panic("trace: MSRYear noiseFrac must be in [0,1)")
	}
	week := MSRWeek(seed)
	rng := stats.NewRNG(seed ^ 0xabcdef)
	vals := make([]float64, HoursPerYear)
	for h := range vals {
		v := week.At(h) * (1 + rng.Uniform(-noiseFrac, noiseFrac))
		if v < 0.005 {
			v = 0.005
		}
		vals[h] = v
	}
	t := &Trace{Name: "msr-synth-year", Values: vals}
	stats.Normalize(t.Values)
	return t
}

// Constant returns a flat trace, useful for tests and controlled studies.
func Constant(name string, value float64, hours int) *Trace {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = value
	}
	return &Trace{Name: name, Values: vals}
}

// WriteCSV writes the trace as "hour,value" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", t.Name}); err != nil {
		return err
	}
	for i, v := range t.Values {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 1 || len(rows[0]) != 2 {
		return nil, errors.New("trace: malformed CSV header")
	}
	t := &Trace{Name: rows[0][1]}
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		t.Values = append(t.Values, v)
	}
	return t, nil
}
