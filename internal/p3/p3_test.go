package p3

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
)

// tinyCluster builds nGroups groups of one Opteron each — small enough for
// Enumerate.
func tinyCluster(nGroups int) *dcmodel.Cluster {
	groups := make([]dcmodel.Group, nGroups)
	for i := range groups {
		groups[i] = dcmodel.Group{Type: dcmodel.Opteron(), N: 1}
	}
	return &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
}

func TestEnumerateFindsObviousOptimum(t *testing.T) {
	// One group, zero load: everything off is optimal.
	c := tinyCluster(1)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 0, We: 1, Wd: 0.01}
	sol, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Speeds[0] != 0 || sol.Value != 0 {
		t.Errorf("zero-load optimum: speeds=%v value=%v", sol.Speeds, sol.Value)
	}
}

func TestEnumerateInfeasible(t *testing.T) {
	c := tinyCluster(1)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 100, We: 1, Wd: 0.01}
	if _, err := Enumerate(p); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	c := tinyCluster(12) // 5^12 ≈ 2.4e8 > limit
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 1, We: 1, Wd: 0.01}
	if _, err := Enumerate(p); err != ErrTooLarge {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}

func TestHomogeneousSolveBasics(t *testing.T) {
	hp := &HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 100, Gamma: 0.95, PUE: 1,
		LambdaRPS: 300, We: 0.05, Wd: 0.01,
	}
	sol, err := hp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Active < 1 || sol.Active > 100 {
		t.Fatalf("active = %d out of range", sol.Active)
	}
	if sol.Speed < 1 || sol.Speed > 4 {
		t.Fatalf("speed = %d out of range", sol.Speed)
	}
	// Feasibility: per-server load within γ·x.
	per := 300.0 / float64(sol.Active)
	if per > 0.95*hp.Type.Rate(sol.Speed)+1e-9 {
		t.Errorf("per-server load %v exceeds γ·x = %v", per, 0.95*hp.Type.Rate(sol.Speed))
	}
	if sol.PowerKW <= 0 || math.IsInf(sol.Value, 0) {
		t.Errorf("degenerate solution: %+v", sol)
	}
}

func TestHomogeneousZeroLoadTurnsOff(t *testing.T) {
	hp := &HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 50, Gamma: 0.95, PUE: 1,
		LambdaRPS: 0, We: 0.05, Wd: 0.01,
	}
	sol, err := hp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Active != 0 || sol.Value != 0 {
		t.Errorf("zero-load solution: %+v", sol)
	}
}

func TestHomogeneousInfeasible(t *testing.T) {
	hp := &HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 1, Gamma: 0.95, PUE: 1,
		LambdaRPS: 100, We: 1, Wd: 0.01,
	}
	if _, err := hp.Solve(); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestHomogeneousInvalid(t *testing.T) {
	// Malformed instances are caller bugs, not capacity answers: they must
	// be distinguishable from ErrInfeasible so probing solvers (the geo
	// split) do not mask corruption as "site full".
	cases := []*HomogeneousProblem{
		{Type: dcmodel.Opteron(), N: 0, LambdaRPS: 1},
		{Type: dcmodel.Opteron(), N: -3, Gamma: 0.95, PUE: 1, LambdaRPS: 1},
		{Type: dcmodel.Opteron(), N: 10, Gamma: 0.95, PUE: 1, LambdaRPS: -1},
		{Type: dcmodel.Opteron(), N: 10, Gamma: 0.95, PUE: 1, LambdaRPS: math.NaN()},
	}
	for i, hp := range cases {
		if _, err := hp.Solve(); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: want ErrInvalid, got %v", i, err)
		}
	}
}

func TestHomogeneousMatchesExhaustiveOverKM(t *testing.T) {
	// Exhaustive search over (speed, active count) must agree exactly: the
	// fast solver only claims exactness within the uniform family.
	rng := stats.NewRNG(404)
	for trial := 0; trial < 60; trial++ {
		hp := &HomogeneousProblem{
			Type: dcmodel.Opteron(), N: 1 + rng.IntN(200), Gamma: 0.95, PUE: 1,
			LambdaRPS: rng.Uniform(0, 800), We: rng.Uniform(0, 0.5),
			Wd: rng.Uniform(1e-4, 0.05), OnsiteKW: rng.Uniform(0, 20),
		}
		if rng.Bernoulli(0.4) {
			hp.SwitchWeight = rng.Uniform(0, 0.1)
			hp.PrevActive = rng.IntN(hp.N + 1)
		}
		fast, fastErr := hp.Solve()
		bestVal := math.Inf(1)
		for k := 1; k <= hp.Type.NumSpeeds(); k++ {
			for m := 0; m <= hp.N; m++ {
				if v, _ := hp.objective(k, m); v < bestVal {
					bestVal = v
				}
			}
		}
		if v, _ := hp.objective(0, 0); v < bestVal {
			bestVal = v
		}
		if math.IsInf(bestVal, 1) {
			if fastErr != ErrInfeasible {
				t.Errorf("trial %d: exhaustive infeasible but fast gave %v", trial, fastErr)
			}
			continue
		}
		if fastErr != nil {
			t.Fatalf("trial %d: %v", trial, fastErr)
		}
		if fast.Value > bestVal*(1+1e-9)+1e-12 {
			t.Errorf("trial %d: fast %v > exhaustive %v", trial, fast.Value, bestVal)
		}
	}
}

func TestHomogeneousNearEnumerateOptimum(t *testing.T) {
	// Against the unrestricted (mixed-speed) optimum the uniform-family
	// solver must be within a small documented gap.
	rng := stats.NewRNG(505)
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.IntN(3)
		c := tinyCluster(n)
		capSum := float64(n) * 10 * 0.95
		p := &dcmodel.SlotProblem{
			Cluster:   c,
			LambdaRPS: rng.Uniform(0.5, 0.9*capSum),
			We:        rng.Uniform(0.01, 0.3),
			Wd:        rng.Uniform(1e-3, 0.03),
			OnsiteKW:  rng.Uniform(0, 0.5),
		}
		exact, err := Enumerate(p)
		if err != nil {
			t.Fatalf("trial %d enumerate: %v", trial, err)
		}
		hs := &HomogeneousSolver{}
		fast, err := hs.Solve(p)
		if err != nil {
			t.Fatalf("trial %d fast: %v", trial, err)
		}
		if fast.Value < exact.Value-1e-6*(1+exact.Value) {
			t.Errorf("trial %d: fast %v beats exhaustive %v (impossible)",
				trial, fast.Value, exact.Value)
		}
		if fast.Value > exact.Value*1.05+1e-9 {
			t.Errorf("trial %d: fast %v more than 5%% above optimum %v",
				trial, fast.Value, exact.Value)
		}
	}
}

func TestHomogeneousSolverGroupMapping(t *testing.T) {
	c := &dcmodel.Cluster{
		Groups: []dcmodel.Group{
			{Type: dcmodel.Opteron(), N: 30},
			{Type: dcmodel.Opteron(), N: 30},
		},
		Gamma: 0.95, PUE: 1,
	}
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 200, We: 0.05, Wd: 0.01}
	hs := &HomogeneousSolver{}
	sol, err := hs.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConfig(sol.Speeds, sol.Load); err != nil {
		t.Fatalf("invalid group mapping: %v", err)
	}
	var sum float64
	for _, l := range sol.Load {
		sum += l
	}
	if math.Abs(sum-200) > 1e-6 {
		t.Errorf("Σload = %v, want 200", sum)
	}
}

func TestHomogeneousSolverRejectsMixedTypes(t *testing.T) {
	c := dcmodel.HeterogeneousCluster(90, 3)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 10, We: 1, Wd: 0.01}
	hs := &HomogeneousSolver{}
	if _, err := hs.Solve(p); err == nil {
		t.Error("mixed-type cluster accepted")
	}
}

func TestSwitchingPenaltyKeepsServersOn(t *testing.T) {
	// With a large switching penalty and servers already on, the solver
	// should keep the count close to PrevActive rather than powering down.
	base := &HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 200, Gamma: 0.95, PUE: 1,
		LambdaRPS: 100, We: 0.05, Wd: 0.01,
	}
	free, err := base.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sticky := *base
	sticky.SwitchWeight = 10 // dwarfs everything else
	sticky.PrevActive = 150
	got, err := sticky.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Active != 150 {
		t.Errorf("with huge switching penalty active = %d, want 150 (free optimum was %d)",
			got.Active, free.Active)
	}
}
