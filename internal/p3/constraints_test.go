package p3

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
)

func baseProblem() *HomogeneousProblem {
	return &HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 200, Gamma: 0.95, PUE: 1,
		LambdaRPS: 600, We: 0.05, Wd: 0.02, OnsiteKW: 5,
	}
}

func TestMaxPowerConstraintBinds(t *testing.T) {
	free, err := baseProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	capped := baseProblem()
	capped.MaxPowerKW = free.PowerKW * 0.9
	got, err := capped.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.PowerKW > capped.MaxPowerKW*(1+1e-9) {
		t.Errorf("power %v exceeds cap %v", got.PowerKW, capped.MaxPowerKW)
	}
	if got.Value < free.Value-1e-9 {
		t.Errorf("constrained optimum %v beats unconstrained %v", got.Value, free.Value)
	}
}

func TestMaxDelayConstraintBinds(t *testing.T) {
	free, err := baseProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	capped := baseProblem()
	// The tightest achievable delay with the whole fleet at top speed is
	// λ·N/(N·x − λ); pick a cap between that floor and the free optimum so
	// the constraint binds but stays feasible.
	floor := capped.LambdaRPS * float64(capped.N) /
		(float64(capped.N)*capped.Type.MaxRate() - capped.LambdaRPS)
	capped.MaxDelayCost = (free.DelayCost + floor) / 2
	got, err := capped.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.DelayCost > capped.MaxDelayCost*(1+1e-9) {
		t.Errorf("delay %v exceeds cap %v", got.DelayCost, capped.MaxDelayCost)
	}
	if got.Value < free.Value-1e-9 {
		t.Errorf("constrained optimum %v beats unconstrained %v", got.Value, free.Value)
	}
}

func TestConstraintsInfeasible(t *testing.T) {
	// A power cap below even the leanest configuration.
	hp := baseProblem()
	hp.MaxPowerKW = 1
	if _, err := hp.Solve(); err != ErrInfeasible {
		t.Errorf("tiny power cap: want ErrInfeasible, got %v", err)
	}
	// A delay cap below the λ/x limit (infinitely many servers cannot meet it).
	hp = baseProblem()
	hp.MaxDelayCost = hp.LambdaRPS/hp.Type.MaxRate() - 1
	if _, err := hp.Solve(); err != ErrInfeasible {
		t.Errorf("impossible delay cap: want ErrInfeasible, got %v", err)
	}
}

func TestConstrainedMatchesExhaustive(t *testing.T) {
	rng := stats.NewRNG(777)
	for trial := 0; trial < 50; trial++ {
		hp := &HomogeneousProblem{
			Type: dcmodel.Opteron(), N: 1 + rng.IntN(150), Gamma: 0.95, PUE: 1,
			LambdaRPS: rng.Uniform(1, 600), We: rng.Uniform(0, 0.3),
			Wd: rng.Uniform(1e-3, 0.05), OnsiteKW: rng.Uniform(0, 10),
		}
		if rng.Bernoulli(0.7) {
			hp.MaxPowerKW = rng.Uniform(5, 50)
		}
		if rng.Bernoulli(0.7) {
			hp.MaxDelayCost = rng.Uniform(50, 1000)
		}
		fast, fastErr := hp.Solve()
		bestVal := math.Inf(1)
		for k := 1; k <= hp.Type.NumSpeeds(); k++ {
			for m := 1; m <= hp.N; m++ {
				if v, _ := hp.objective(k, m); v < bestVal {
					bestVal = v
				}
			}
		}
		if math.IsInf(bestVal, 1) {
			if fastErr != ErrInfeasible {
				t.Errorf("trial %d: exhaustive infeasible, fast said %v", trial, fastErr)
			}
			continue
		}
		if fastErr != nil {
			t.Fatalf("trial %d: %v (exhaustive found %v)", trial, fastErr, bestVal)
		}
		if fast.Value > bestVal*(1+1e-9)+1e-12 {
			t.Errorf("trial %d: fast %v > exhaustive %v", trial, fast.Value, bestVal)
		}
	}
}

func TestGridCostFnTieredConvex(t *testing.T) {
	// The nonlinear-tariff path must still be exact vs exhaustive search.
	tiers, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: 10, Mult: 1},
		{UpToKWh: 25, Mult: 2},
		{UpToKWh: math.Inf(1), Mult: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(888)
	for trial := 0; trial < 40; trial++ {
		hp := &HomogeneousProblem{
			Type: dcmodel.Opteron(), N: 80 + rng.IntN(120), Gamma: 0.95, PUE: 1,
			LambdaRPS: rng.Uniform(1, 500), Wd: rng.Uniform(1e-3, 0.05),
			OnsiteKW: rng.Uniform(0, 5),
		}
		w := rng.Uniform(0.01, 0.2)
		hp.GridCostFn = func(g float64) float64 { return w * tiers.Cost(g) }
		fast, err := hp.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bestVal := math.Inf(1)
		for k := 1; k <= hp.Type.NumSpeeds(); k++ {
			for m := 1; m <= hp.N; m++ {
				if v, _ := hp.objective(k, m); v < bestVal {
					bestVal = v
				}
			}
		}
		if fast.Value > bestVal*(1+1e-9)+1e-12 {
			t.Errorf("trial %d: tariff fast %v > exhaustive %v", trial, fast.Value, bestVal)
		}
	}
}

func TestTariffShiftsTowardLowerDraw(t *testing.T) {
	// A steep inclining-block tariff should push the optimum to a lower
	// grid draw than the flat tariff at equal base price.
	flat := baseProblem()
	flatSol, err := flat.Solve()
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: flatSol.GridKWh * 0.8, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	tiered := baseProblem()
	tiered.GridCostFn = func(g float64) float64 { return tiered.We * tiers.Cost(g) }
	tieredSol, err := tiered.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if tieredSol.GridKWh > flatSol.GridKWh+1e-9 {
		t.Errorf("steep tariff did not reduce draw: %v vs %v",
			tieredSol.GridKWh, flatSol.GridKWh)
	}
}
