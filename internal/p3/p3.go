// Package p3 defines the interface for solvers of the paper's per-slot
// optimization P3 (Eq. 16) and provides two reference solvers:
//
//   - Enumerate, an exhaustive oracle over all speed vectors, exact but
//     exponential — the correctness yardstick for everything else;
//   - HomogeneousSolver, a fast exact solver for fleets of identical servers
//     that exploits symmetry: at the optimum of a symmetric convex objective,
//     all active servers run at one speed with equal load, so it suffices to
//     enumerate the speed level and search the active-server count (the
//     objective is convex in the count). This is the solver that drives the
//     year-long simulation sweeps; GSD (package gsd) is the paper's
//     distributed solver and is cross-validated against both.
package p3

import (
	"errors"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/loadbalance"
	"repro/internal/numopt"
)

// Solver solves one slot's P3 instance: choose speeds and load split
// minimizing We·[p − r]^+ + Wd·d.
type Solver interface {
	Solve(p *dcmodel.SlotProblem) (dcmodel.Solution, error)
}

// ErrTooLarge is returned by Enumerate when the search space exceeds its
// hard cap.
var ErrTooLarge = errors.New("p3: instance too large for exhaustive enumeration")

// ErrInfeasible is returned when no speed vector can carry the load.
var ErrInfeasible = errors.New("p3: no feasible configuration")

// ErrInvalid is returned for malformed problem instances — a non-positive
// fleet, a negative or NaN load. It is a caller bug, deliberately distinct
// from ErrInfeasible's "no configuration can carry this load", which
// solvers legitimately probe for (the geo split treats infeasibility as
// "site full"; it must not mistake a corrupted instance for that).
var ErrInvalid = errors.New("p3: invalid problem instance")

// EnumerateLimit caps the number of speed vectors Enumerate will visit.
const EnumerateLimit = 2_000_000

// Enumerate exhaustively searches every speed vector, solving the optimal
// load split for each feasible one, and returns the global optimum of P3.
// Intended for small test instances only.
func Enumerate(p *dcmodel.SlotProblem) (dcmodel.Solution, error) {
	n := len(p.Cluster.Groups)
	total := 1
	for g := 0; g < n; g++ {
		total *= p.Cluster.Groups[g].Type.NumSpeeds() + 1
		if total > EnumerateLimit {
			return dcmodel.Solution{}, ErrTooLarge
		}
	}
	speeds := make([]int, n)
	best := dcmodel.Solution{Value: math.Inf(1)}
	found := false
	for {
		if p.Feasible(speeds) {
			if sol, err := loadbalance.Solve(p, speeds); err == nil && sol.Value < best.Value {
				best = sol.Clone()
				found = true
			}
		}
		// Odometer increment over the mixed-radix speed vector.
		i := 0
		for ; i < n; i++ {
			speeds[i]++
			if speeds[i] <= p.Cluster.Groups[i].Type.NumSpeeds() {
				break
			}
			speeds[i] = 0
		}
		if i == n {
			break
		}
	}
	if !found {
		return dcmodel.Solution{}, ErrInfeasible
	}
	return best, nil
}

// HomogeneousProblem is the server-granular form of P3 for a fleet of N
// identical servers. It avoids group vectors entirely: the decision is a
// speed level and an active-server count.
type HomogeneousProblem struct {
	Type      dcmodel.ServerType
	N         int     // fleet size
	Gamma     float64 // γ utilization cap
	PUE       float64
	LambdaRPS float64
	We        float64 // weight on grid energy [p − r]^+
	Wd        float64 // weight on delay cost
	OnsiteKW  float64 // r(t)

	// SwitchWeight is the objective penalty per server toggled on or off
	// relative to PrevActive (0 disables; used for the Fig. 5(d) study).
	SwitchWeight float64
	PrevActive   int

	// GridCostFn, when non-nil, replaces the linear grid term We·[p − r]^+
	// with an arbitrary convex non-decreasing cost of grid energy — the
	// §2.1 nonlinear-tariff extension. It receives [p − r]^+ in kWh.
	GridCostFn func(gridKWh float64) float64

	// MaxPowerKW caps facility power (the §3.1 peak-power constraint);
	// 0 disables.
	MaxPowerKW float64
	// MaxDelayCost caps the total delay cost d (the §3.1 maximum-delay
	// constraint); 0 disables.
	MaxDelayCost float64
}

// HomogeneousSolution is the optimum of a HomogeneousProblem.
type HomogeneousSolution struct {
	Speed  int     // chosen speed index (1..K); 0 when the fleet is off
	Active int     // number of active servers m
	Value  float64 // objective value including the switching penalty

	PowerKW   float64 // facility power p
	GridKWh   float64 // [p − r]^+
	DelayCost float64 // d
}

// objective evaluates the homogeneous objective for m active servers at
// speed k. Infeasible pairs return +Inf.
func (hp *HomogeneousProblem) objective(k, m int) (float64, HomogeneousSolution) {
	sol := HomogeneousSolution{Speed: k, Active: m}
	if m == 0 {
		if hp.LambdaRPS > 0 {
			return math.Inf(1), sol
		}
		sol.Value = hp.switchPenalty(0)
		return sol.Value, sol
	}
	x := hp.Type.Rate(k)
	perServer := hp.LambdaRPS / float64(m)
	if perServer > hp.Gamma*x {
		return math.Inf(1), sol
	}
	g := dcmodel.Group{Type: hp.Type, N: m}
	sol.PowerKW = hp.PUE * g.PowerKW(k, hp.LambdaRPS)
	sol.GridKWh = math.Max(0, sol.PowerKW-hp.OnsiteKW)
	sol.DelayCost = g.DelayCost(k, hp.LambdaRPS)
	if hp.MaxPowerKW > 0 && sol.PowerKW > hp.MaxPowerKW*(1+1e-12) {
		return math.Inf(1), sol
	}
	if hp.MaxDelayCost > 0 && sol.DelayCost > hp.MaxDelayCost*(1+1e-12) {
		return math.Inf(1), sol
	}
	grid := hp.We * sol.GridKWh
	if hp.GridCostFn != nil {
		grid = hp.GridCostFn(sol.GridKWh)
	}
	sol.Value = grid + hp.Wd*sol.DelayCost + hp.switchPenalty(m)
	return sol.Value, sol
}

// countBounds returns the feasible active-server interval [lo, hi] at speed
// index k under the γ cap and the optional peak-power and max-delay
// constraints. ok is false when the interval is empty.
func (hp *HomogeneousProblem) countBounds(k int) (lo, hi int, ok bool) {
	x := hp.Type.Rate(k)
	lo, hi = 1, hp.N
	if hp.LambdaRPS > 0 {
		lo = int(math.Ceil(hp.LambdaRPS / (hp.Gamma * x)))
		if lo < 1 {
			lo = 1
		}
	}
	// Peak power: PUE·(m·p_s + p_c·λ/x) ≤ Pmax — power increases in m.
	if hp.MaxPowerKW > 0 {
		budget := hp.MaxPowerKW/hp.PUE - hp.Type.ComputingKW(k)*hp.LambdaRPS/x
		if hp.Type.StaticKW > 0 {
			m := int(math.Floor(budget / hp.Type.StaticKW * (1 + 1e-12)))
			if m < hi {
				hi = m
			}
		} else if budget < 0 {
			return 0, 0, false
		}
	}
	// Max delay: λ·m/(m·x − λ) ≤ D — delay decreases in m, with limit λ/x.
	if hp.MaxDelayCost > 0 && hp.LambdaRPS > 0 {
		d := hp.MaxDelayCost
		if d*x <= hp.LambdaRPS {
			return 0, 0, false // even infinitely many servers exceed the cap
		}
		m := int(math.Ceil(d * hp.LambdaRPS / (d*x - hp.LambdaRPS) * (1 - 1e-12)))
		if m > lo {
			lo = m
		}
	}
	return lo, hi, lo <= hi
}

func (hp *HomogeneousProblem) switchPenalty(m int) float64 {
	if hp.SwitchWeight == 0 {
		return 0
	}
	return hp.SwitchWeight * math.Abs(float64(m-hp.PrevActive))
}

// Solve finds the optimal (speed, active count). For each speed level the
// objective is convex in the count (affine-with-kink electricity + convex
// decreasing delay + convex switching penalty), so an integer ternary search
// with a guard sweep is exact.
func (hp *HomogeneousProblem) Solve() (HomogeneousSolution, error) {
	if hp.N <= 0 || hp.LambdaRPS < 0 || math.IsNaN(hp.LambdaRPS) {
		return HomogeneousSolution{}, ErrInvalid
	}
	if hp.LambdaRPS == 0 {
		// With no load the delay term vanishes; all-off is optimal up to the
		// switching penalty, which is itself minimized near PrevActive — but
		// keeping idle servers on costs static power, so compare both.
		offVal, off := hp.objective(0, 0)
		best := off
		bestVal := offVal
		for k := 1; k <= hp.Type.NumSpeeds(); k++ {
			if v, s := hp.objective(k, hp.PrevActive); v < bestVal {
				bestVal, best = v, s
			}
		}
		return best, nil
	}
	best := HomogeneousSolution{}
	bestVal := math.Inf(1)
	for k := 1; k <= hp.Type.NumSpeeds(); k++ {
		minM, maxM, ok := hp.countBounds(k)
		if !ok || minM > hp.N {
			continue
		}
		if maxM > hp.N {
			maxM = hp.N
		}
		m, val := numopt.MinimizeInt(func(m int) float64 {
			v, _ := hp.objective(k, m)
			return v
		}, minM, maxM, 3)
		if val < bestVal {
			bestVal, best = hp.objective(k, m)
		}
	}
	if math.IsInf(bestVal, 1) {
		return HomogeneousSolution{}, ErrInfeasible
	}
	return best, nil
}

// HomogeneousSolver adapts HomogeneousProblem to the group-level Solver
// interface for clusters whose groups all share one ServerType. The returned
// solution activates whole groups in order and places the remainder in a
// final partially-loaded group at the chosen speed; the tiny inefficiency of
// the partial group's idle-but-on servers is charged honestly in Value.
type HomogeneousSolver struct {
	// SwitchWeight and PrevActive mirror HomogeneousProblem.
	SwitchWeight float64
	PrevActive   int
}

// Solve implements Solver for same-type clusters.
func (hs *HomogeneousSolver) Solve(p *dcmodel.SlotProblem) (dcmodel.Solution, error) {
	groups := p.Cluster.Groups
	st := groups[0].Type
	totalN := 0
	for i := range groups {
		if groups[i].Type.Name != st.Name {
			return dcmodel.Solution{}, errors.New("p3: HomogeneousSolver requires a single server type")
		}
		totalN += groups[i].N
	}
	hp := &HomogeneousProblem{
		Type: st, N: totalN,
		Gamma: p.Cluster.Gamma, PUE: p.Cluster.PUE,
		LambdaRPS: p.LambdaRPS, We: p.We, Wd: p.Wd, OnsiteKW: p.OnsiteKW,
		SwitchWeight: hs.SwitchWeight, PrevActive: hs.PrevActive,
	}
	hsol, err := hp.Solve()
	if err != nil {
		return dcmodel.Solution{}, err
	}
	speeds := make([]int, len(groups))
	load := make([]float64, len(groups))
	if hsol.Active > 0 {
		perServer := p.LambdaRPS / float64(hsol.Active)
		remaining := hsol.Active
		for i := range groups {
			if remaining <= 0 {
				break
			}
			take := groups[i].N
			if take > remaining {
				take = remaining
			}
			speeds[i] = hsol.Speed
			load[i] = perServer * float64(take)
			remaining -= take
		}
	}
	return dcmodel.Solution{
		Speeds: speeds,
		Load:   load,
		Value:  p.Objective(speeds, load),
	}, nil
}

var _ Solver = (*HomogeneousSolver)(nil)
