package reqsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

func slotRecord(slot int, lambda float64, speed, active int) sim.SlotRecord {
	return sim.SlotRecord{Slot: slot, LambdaRPS: lambda, Speed: speed, Active: active}
}

// TestSlotReplayerValidatesAnalyticModel replays synthetic slot records at
// moderate load and checks the empirical queue agrees with the analytic
// model the controllers optimize: the whole point of wiring reqsim into
// the slot pipeline.
func TestSlotReplayerValidatesAnalyticModel(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewReqsimMetrics(reg, "reqsim")
	tr := span.NewTracer()
	server := dcmodel.Opteron()
	r := NewSlotReplayer(server, ReplayOptions{
		Requests: 150_000,
		Seed:     7,
		Metrics:  m,
		Tracer:   tr,
		Site:     "dc-test",
	})
	ob := r.Observer()
	// Three slots at ρ ≈ {0.4, 0.6, 0.8} per server at full speed (x = 10).
	ob(slotRecord(0, 40, 4, 10))
	ob(slotRecord(1, 60, 4, 10))
	ob(slotRecord(2, 80, 4, 10))
	rep := r.Report()
	if rep.Slots != 3 {
		t.Fatalf("replayed %d slots, want 3", rep.Slots)
	}
	if rep.Requests < 300_000 {
		t.Errorf("simulated %d requests; want ≈ 3×150k", rep.Requests)
	}
	if rep.MeanAbsRelErr > 0.05 {
		t.Errorf("Poisson replay mean model error %.4f; Eq. (4) should hold within 5%%", rep.MeanAbsRelErr)
	}
	// Metrics landed under the site label.
	snap := reg.Snapshot()
	if v, ok := snap.LabeledCounters["reqsim.site.requests"].Get("dc-test"); !ok || v <= 0 {
		t.Errorf("site-labeled request counter missing or zero: %v (ok=%v)", v, ok)
	}
	if v, ok := snap.LabeledGauges["reqsim.site.p99_sec"].Get("dc-test"); !ok || v <= 0 {
		t.Errorf("site-labeled P99 gauge missing or zero: %v (ok=%v)", v, ok)
	}
	if snap.Counters["reqsim.replays"] != 3 {
		t.Errorf("replay counter %v, want 3", snap.Counters["reqsim.replays"])
	}
	// Spans recorded.
	found := false
	for _, row := range tr.Summarize().ByName {
		if row.Name == "reqsim.replay" && row.Count == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected 3 reqsim.replay spans, got %+v", tr.Summarize().ByName)
	}
}

// TestSlotReplayerBurstyArmDiverges pins the knowably-wrong arm: identical
// slot records replayed with bursty arrivals must show a much larger
// model error than the Poisson replay.
func TestSlotReplayerBurstyArmDiverges(t *testing.T) {
	server := dcmodel.Opteron()
	poisson := NewSlotReplayer(server, ReplayOptions{Requests: 120_000, Seed: 3})
	bursty := NewSlotReplayer(server, ReplayOptions{Requests: 120_000, Seed: 3, Bursty: true})
	rec := slotRecord(0, 70, 4, 10) // ρ = 0.7 per server
	poisson.Observer()(rec)
	bursty.Observer()(rec)
	p, b := poisson.Report(), bursty.Report()
	if b.MeanAbsRelErr < 4*p.MeanAbsRelErr {
		t.Errorf("bursty model error %.4f should dwarf Poisson error %.4f", b.MeanAbsRelErr, p.MeanAbsRelErr)
	}
	if b.MeanAbsRelErr < 0.2 {
		t.Errorf("bursty model error %.4f too small — the divergence is the point", b.MeanAbsRelErr)
	}
}

// TestSlotReplayerSkipsAndSampling: Every=n replays every nth slot; empty
// and overloaded records are skipped.
func TestSlotReplayerSkipsAndSampling(t *testing.T) {
	server := dcmodel.Opteron()
	r := NewSlotReplayer(server, ReplayOptions{Requests: 20_000, Seed: 1, Every: 2})
	ob := r.Observer()
	ob(slotRecord(0, 40, 4, 10)) // replayed
	ob(slotRecord(1, 40, 4, 10)) // skipped: odd slot
	ob(slotRecord(2, 0, 4, 10))  // skipped: no load
	ob(slotRecord(3, 40, 4, 10)) // skipped: odd slot
	ob(slotRecord(4, 40, 0, 0))  // skipped: fleet off
	if rep := r.Report(); rep.Slots != 1 {
		t.Errorf("replayed %d slots, want 1", rep.Slots)
	}
}

// TestSlotReplayerWorkerInvariance: the replayer is deterministic in its
// Workers option — same records, same bits in the report.
func TestSlotReplayerWorkerInvariance(t *testing.T) {
	server := dcmodel.Opteron()
	recs := []sim.SlotRecord{
		slotRecord(0, 40, 4, 12),
		slotRecord(1, 65, 3, 16),
		slotRecord(2, 55, 4, 8),
	}
	run := func(workers int) ReplayReport {
		r := NewSlotReplayer(server, ReplayOptions{Requests: 60_000, Seed: 11, Workers: workers})
		for _, rec := range recs {
			r.Observer()(rec)
		}
		return r.Report()
	}
	ref := run(1)
	for _, w := range []int{4, 32} {
		if got := run(w); got != ref {
			t.Errorf("workers=%d report diverged:\ngot %+v\nref %+v", w, got, ref)
		}
	}
}

// TestFleetReplayerMatchesChargedDelay drives the fleet-side hook with a
// synthetic settled outcome: by construction of the equivalent server
// (x_eq = λ + λ/d) the analytic prediction of each replayed site queue is
// the site's charged delay cost, so the model error must be small and the
// site-labeled series populated.
func TestFleetReplayerMatchesChargedDelay(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewReqsimMetrics(reg, "reqsim")
	r := NewFleetReplayer([]string{"east", "west"}, ReplayOptions{
		Requests: 200_000,
		Seed:     5,
		Metrics:  m,
	})
	out := geo.FleetStepOutcome{Sites: []geo.FleetSiteOutcome{
		{LoadRPS: 120, DelayCost: 30}, // x_eq = 124 → ρ ≈ 0.968… heavy but stable
		{LoadRPS: 80, DelayCost: 4},   // x_eq = 100 → ρ = 0.8
	}}
	r.Observer()(0, out)
	rep := r.Report()
	if rep.Slots != 2 {
		t.Fatalf("replayed %d site queues, want 2", rep.Slots)
	}
	if rep.MeanAbsRelErr > 0.20 {
		t.Errorf("fleet replay mean model error %.4f; equivalent-server queues should track charged delay", rep.MeanAbsRelErr)
	}
	snap := reg.Snapshot()
	for _, site := range []string{"east", "west"} {
		if v, ok := snap.LabeledGauges["reqsim.site.queue_len"].Get(site); !ok || v <= 0 {
			t.Errorf("site %s queue gauge missing or zero: %v (ok=%v)", site, v, ok)
		}
	}
}

// TestFleetReplayerWorkerInvariance: same settled outcomes, any worker
// count, identical report bits.
func TestFleetReplayerWorkerInvariance(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	out := geo.FleetStepOutcome{Sites: []geo.FleetSiteOutcome{
		{LoadRPS: 50, DelayCost: 5},
		{LoadRPS: 30, DelayCost: 2},
		{}, // idle site: skipped
		{LoadRPS: 70, DelayCost: 9},
		{LoadRPS: 10, DelayCost: 0.5},
	}}
	run := func(workers int) ReplayReport {
		r := NewFleetReplayer(names, ReplayOptions{Requests: 80_000, Seed: 9, Workers: workers})
		r.Observer()(0, out)
		r.Observer()(1, out)
		return r.Report()
	}
	ref := run(1)
	for _, w := range []int{3, 16} {
		if got := run(w); got != ref {
			t.Errorf("workers=%d report diverged:\ngot %+v\nref %+v", w, got, ref)
		}
	}
}

// TestReplayReportString renders for run summaries.
func TestReplayReportString(t *testing.T) {
	r := ReplayReport{Slots: 2, Requests: 100, Events: 200, MeanAbsRelErr: 0.0123, MaxAbsRelErr: 0.02}
	s := r.String()
	for _, want := range []string{"slots=2", "requests=100", "model_err"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// fixedPolicy keeps the whole fleet on at one speed — the simplest legal
// sim.Policy for integration tests.
type fixedPolicy struct{ speed, active int }

func (fixedPolicy) Name() string { return "fixed" }
func (p fixedPolicy) Decide(sim.Observation) (sim.Config, error) {
	return sim.Config{Speed: p.speed, Active: p.active}, nil
}
func (fixedPolicy) Observe(sim.Feedback) {}

// TestSlotReplayerEndToEnd wires a replayer into a real sim.Engine run —
// the actual integration path — and checks replays happened for every
// operated slot with sane percentiles.
func TestSlotReplayerEndToEnd(t *testing.T) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 2 * 24, N: 60, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	r := NewSlotReplayer(sc.Server, ReplayOptions{Requests: 30_000, Seed: 2})
	res, err := sim.RunObserved(sc, fixedPolicy{speed: sc.Server.NumSpeeds(), active: sc.N}, r.Observer())
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Slots != len(res.Records) {
		t.Errorf("replayed %d slots of %d operated", rep.Slots, len(res.Records))
	}
	if rep.MeanAbsRelErr > 0.10 {
		t.Errorf("end-to-end model error %.4f too large", rep.MeanAbsRelErr)
	}
	if math.IsNaN(rep.MeanAbsRelErr) {
		t.Error("NaN model error")
	}
}
