package reqsim

import (
	"testing"
)

func shardCfg() Config {
	return Config{
		ArrivalRPS: 6, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 1500, Warmup: 100, Seed: 17,
	}
}

// TestRunShardedSingleShardParity pins the reference-path contract:
// one shard through the pool is bit-identical to a plain Engine.Run —
// every field, including the exact percentiles.
func TestRunShardedSingleShardParity(t *testing.T) {
	cfg := shardCfg()
	var tape SampleTape
	want, err := NewEngine().Run(cfg, &tape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPool(1).RunSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunSharded(cfg, 1) diverged from Run:\nsharded %+v\nplain   %+v", got, want)
	}
}

// TestRunShardedWorkerInvariance is the determinism contract of every
// parallel hot path in this repository, applied to request shards: the
// merged result is a function of (Config, shards) alone. 1, 4 and 32
// workers must produce identical bits — run it under -race and the
// schedule-independence claim is checked as well.
func TestRunShardedWorkerInvariance(t *testing.T) {
	cfg := shardCfg()
	const shards = 24
	ref, err := NewPool(1).RunSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 32} {
		pool := NewPool(workers)
		for rep := 0; rep < 3; rep++ { // repeat to vary goroutine schedules
			got, err := pool.RunSharded(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("workers=%d rep=%d diverged from sequential reference:\ngot %+v\nref %+v",
					workers, rep, got, ref)
			}
		}
	}
}

// TestRunShardedMergeSemantics checks the merged aggregates against the
// per-shard runs they were folded from.
func TestRunShardedMergeSemantics(t *testing.T) {
	cfg := shardCfg()
	const shards = 5
	merged, err := NewPool(2).RunSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	var arrived, completed int
	var area, measured float64
	maxPeak := 0
	for i := 0; i < shards; i++ {
		sc := cfg
		sc.Seed = cfg.Seed + uint64(i)*shardSeedStride
		r, err := eng.Run(sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		arrived += r.Arrived
		completed += r.Completed
		area += r.AreaJobsSec
		measured += r.MeasuredSec
		if r.MaxInSystem > maxPeak {
			maxPeak = r.MaxInSystem
		}
	}
	if merged.Arrived != arrived || merged.Completed != completed {
		t.Errorf("merged counters (%d, %d) != manual sums (%d, %d)",
			merged.Arrived, merged.Completed, arrived, completed)
	}
	if merged.AreaJobsSec != area || merged.MeasuredSec != measured {
		t.Errorf("merged sums diverge from shard-order manual sums")
	}
	if merged.MaxInSystem != maxPeak {
		t.Errorf("merged MaxInSystem %d != max over shards %d", merged.MaxInSystem, maxPeak)
	}
	if want := area / measured; merged.MeanJobs != want {
		t.Errorf("merged MeanJobs %v != pooled ratio %v", merged.MeanJobs, want)
	}
}

// TestRunShardedPoolReuse: a pool must give identical bits run after run —
// engine and tape reuse cannot leak state across calls.
func TestRunShardedPoolReuse(t *testing.T) {
	cfg := shardCfg()
	pool := NewPool(4)
	a, err := pool.RunSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave a different shape to dirty every slab.
	if _, err := pool.RunSharded(Config{
		ArrivalRPS: 30, ServiceRPS: 10, Service: HyperexpService(1, 0.2),
		Horizon: 300, Warmup: 10, Seed: 3, MaxJobs: 12,
	}, 3); err != nil {
		t.Fatal(err)
	}
	b, err := pool.RunSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("pool reuse changed results:\nfirst %+v\nagain %+v", a, b)
	}
}

func TestRunShardedRejectsBadInput(t *testing.T) {
	if _, err := NewPool(2).RunSharded(shardCfg(), 0); err == nil {
		t.Error("shards=0 should be rejected")
	}
	bad := shardCfg()
	bad.ServiceRPS = -1
	if _, err := NewPool(2).RunSharded(bad, 4); err == nil {
		t.Error("invalid config should be rejected before fan-out")
	}
}

// BenchmarkReqsimSharded prices the sharded path at fleet shape: 16
// replica queues per call, matching a modest Active count.
func BenchmarkReqsimSharded(b *testing.B) {
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 600, Warmup: 30, Seed: 1,
	}
	pool := NewPool(1) // single-core host: measure the sequential path
	if _, err := pool.RunSharded(cfg, 16); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := pool.RunSharded(cfg, 16)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
	}
}
