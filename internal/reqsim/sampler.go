package reqsim

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Closure-free samplers. The oracle in internal/queueing takes ServiceDist
// closures — fine at toy scale, but a closure call per event is an indirect
// branch the fast engine does not want, and a closure cannot be validated,
// printed or compared. Here a sampler is a small value type: a kind tag plus
// precomputed parameters, sampled through one switch. The built-in kinds
// draw *exactly* the same RNG sequence as the corresponding
// queueing.ServiceDist constructors, which is what makes the bit-for-bit
// parity tests possible.

type serviceKind uint8

const (
	serviceInvalid serviceKind = iota
	serviceExponential
	serviceDeterministic
	serviceHyperexp
	servicePareto
)

// ServiceSampler draws i.i.d. service requirements (units of work, mean 1
// by the paper's convention). The zero value is invalid; use a constructor.
type ServiceSampler struct {
	kind serviceKind
	mean float64
	// Kind-specific precomputed parameters:
	//   exponential: r1 = 1/mean
	//   hyperexp:    p, r1 = 1/m1, r2 = 1/m2
	//   pareto:      p = shape α, r1 = scale x_m
	p, r1, r2 float64
}

// ExponentialService returns an exponential requirement with the given
// mean. Draw-for-draw identical to queueing.ExponentialService.
func ExponentialService(mean float64) ServiceSampler {
	return ServiceSampler{kind: serviceExponential, mean: mean, r1: 1 / mean}
}

// DeterministicService returns a constant requirement (no RNG draw),
// matching queueing.DeterministicService.
func DeterministicService(mean float64) ServiceSampler {
	return ServiceSampler{kind: serviceDeterministic, mean: mean}
}

// HyperexpService returns the two-phase hyperexponential of
// queueing.HyperexpService: mean `mean`, phase balance p ∈ (0,1), phase
// means mean/(2p) and mean/(2(1−p)). Draw-for-draw identical to the oracle.
func HyperexpService(mean, p float64) ServiceSampler {
	if p <= 0 || p >= 1 {
		panic("reqsim: HyperexpService requires p in (0,1)")
	}
	return ServiceSampler{
		kind: serviceHyperexp, mean: mean, p: p,
		r1: 1 / (mean / (2 * p)),
		r2: 1 / (mean / (2 * (1 - p))),
	}
}

// ParetoService returns an (unbounded) Pareto requirement with the given
// mean and tail index alpha ∈ (1, 2]: finite mean, infinite variance — the
// heavy-tailed regime where the M/G/1/PS *mean* is still insensitive but
// convergence is glacial and tail latencies explode. The scale is
// x_m = mean·(α−1)/α so E[S] = mean. One uniform draw per sample.
func ParetoService(mean, alpha float64) ServiceSampler {
	if alpha <= 1 || alpha > 2 {
		panic("reqsim: ParetoService requires alpha in (1,2]")
	}
	return ServiceSampler{
		kind: servicePareto, mean: mean, p: alpha,
		r1: mean * (alpha - 1) / alpha,
	}
}

// Mean returns the distribution's mean requirement.
func (s ServiceSampler) Mean() float64 { return s.mean }

// Valid reports whether the sampler was built by a constructor.
func (s ServiceSampler) Valid() bool {
	return s.kind != serviceInvalid && !math.IsNaN(s.mean) && s.mean > 0 && !math.IsInf(s.mean, 0)
}

// String names the sampler for reports and bench sections.
func (s ServiceSampler) String() string {
	switch s.kind {
	case serviceExponential:
		return fmt.Sprintf("exp(mean=%g)", s.mean)
	case serviceDeterministic:
		return fmt.Sprintf("det(mean=%g)", s.mean)
	case serviceHyperexp:
		return fmt.Sprintf("hyperexp(mean=%g,p=%g)", s.mean, s.p)
	case servicePareto:
		return fmt.Sprintf("pareto(mean=%g,alpha=%g)", s.mean, s.p)
	}
	return "invalid"
}

// sample draws one requirement. The switch compiles to a jump table; no
// closure, no allocation.
func (s ServiceSampler) sample(rng *stats.RNG) float64 {
	switch s.kind {
	case serviceExponential:
		return rng.Exponential(s.r1)
	case serviceDeterministic:
		return s.mean
	case serviceHyperexp:
		if rng.Bernoulli(s.p) {
			return rng.Exponential(s.r1)
		}
		return rng.Exponential(s.r2)
	case servicePareto:
		// Inverse CDF: x_m · (1−u)^(−1/α); u ∈ [0,1) keeps 1−u > 0.
		u := rng.Float64()
		return s.r1 * math.Pow(1-u, -1/s.p)
	}
	panic("reqsim: invalid ServiceSampler (use a constructor)")
}

type arrivalKind uint8

const (
	arrivalPoisson arrivalKind = iota
	arrivalOnOff
)

// ArrivalProcess generates the arrival stream. The zero value is Poisson at
// Config.ArrivalRPS — the oracle-compatible path. OnOffArrivals is the
// bursty arm: a two-state Markov-modulated Poisson process whose analytic
// "prediction" λ̄/(x−λ̄) is knowably wrong (the PS insensitivity argument
// needs Poisson arrivals), exactly the regime the paper's Eq. (4) cannot
// see and learning-augmented policies exploit.
type ArrivalProcess struct {
	kind arrivalKind
	// On/off parameters: burst-phase and idle-phase Poisson rates and the
	// exponential mean sojourn seconds of each phase.
	rateOn, rateOff float64
	meanOn, meanOff float64
	swOn, swOff     float64 // precomputed 1/meanOn, 1/meanOff sojourn rates
}

// OnOffArrivals returns a bursty two-phase arrival process: Poisson at
// rateOn during bursts and rateOff between them, with exponential phase
// sojourns of the given means (seconds). rateOff may be 0 (pure on/off).
func OnOffArrivals(rateOn, rateOff, meanOnSec, meanOffSec float64) ArrivalProcess {
	if rateOn <= 0 || rateOff < 0 || meanOnSec <= 0 || meanOffSec <= 0 {
		panic("reqsim: OnOffArrivals requires rateOn > 0, rateOff >= 0 and positive phase means")
	}
	return ArrivalProcess{
		kind:   arrivalOnOff,
		rateOn: rateOn, rateOff: rateOff,
		meanOn: meanOnSec, meanOff: meanOffSec,
		swOn: 1 / meanOnSec, swOff: 1 / meanOffSec,
	}
}

// Bursty reports whether the process is the on/off arm (not Poisson).
func (a ArrivalProcess) Bursty() bool { return a.kind == arrivalOnOff }

// MeanRate returns the time-averaged arrival rate: the Poisson λ itself, or
// the sojourn-weighted mixture of the on/off phase rates. This is the λ the
// analytic model would plug into λ/(x−λ).
func (a ArrivalProcess) MeanRate(poissonRate float64) float64 {
	if a.kind == arrivalPoisson {
		return poissonRate
	}
	return (a.rateOn*a.meanOn + a.rateOff*a.meanOff) / (a.meanOn + a.meanOff)
}
