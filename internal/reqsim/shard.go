package reqsim

import (
	"fmt"

	"repro/internal/workpool"
)

// shardSeedStride decorrelates per-shard RNG streams: shard i runs with
// seed cfg.Seed + i·stride (shard 0 keeps cfg.Seed, which is what makes a
// one-shard RunSharded bit-identical to a plain Run). The constant is the
// same splitmix64 increment the geo fleet uses for per-site seeds.
const shardSeedStride = 0x9E3779B97F4A7C15

// Pool runs many independent shard replicas of one scenario across a
// bounded worker fan-out — the request-level analogue of the geo fleet's
// per-site parallel step, with the same determinism contract: each shard
// writes only its own result slot, per-worker engines are reused across
// shards, and the merge folds in shard index order, so the outcome is a
// function of (Config, shards) alone — never of the worker count or the
// goroutine schedule. workers ≤ 1 degrades to the sequential reference
// path, which the parity tests pin bit-for-bit against Engine.Run.
//
// A shard is an independent replica of the configured queue. That is
// exactly the shape of the paper's homogeneous fleet: a slot with `Active`
// servers at per-server rate λ/Active is `Active` independent M/G/1/PS
// systems, one shard each.
type Pool struct {
	workers int
	engines []*Engine    // one per worker, reused across shards
	tapes   []SampleTape // one per shard, merged in shard order
	results []Result     // one per shard
	merged  []float64    // reused slab for the merged percentile pass
}

// NewPool returns a pool fanning over up to `workers` goroutines
// (values < 1 mean 1: the sequential reference path).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's configured fan-out width.
func (p *Pool) Workers() int { return p.workers }

// RunSharded simulates `shards` independent replicas of cfg (shard i
// seeded cfg.Seed + i·stride) and merges them into one Result:
//
//   - counters and raw sums (AreaJobsSec, MeasuredSec, BusySec,
//     RespSumSec, Events, Arrived, …) are summed in shard index order;
//   - MeanJobs, MeanRespSec and UtilFraction are recomputed as ratios of
//     the merged sums — so MeanJobs is the pooled *per-shard* mean number
//     in system (multiply by shards for the fleet total);
//   - MaxInSystem is the max over shards (a per-replica peak);
//   - percentiles are exact over the union of all shard tapes.
//
// RunSharded(cfg, 1) is bit-identical to Engine.Run(cfg), and the result
// is independent of the pool's worker count — both properties are pinned
// by tests (the latter under the race detector).
func (p *Pool) RunSharded(cfg Config, shards int) (Result, error) {
	if shards < 1 {
		return Result{}, fmt.Errorf("%w: shards %d must be >= 1", ErrBadConfig, shards)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workers := p.workers
	if workers > shards {
		workers = shards
	}
	for len(p.engines) < workers {
		p.engines = append(p.engines, NewEngine())
	}
	if cap(p.tapes) < shards {
		p.tapes = append(make([]SampleTape, 0, shards), p.tapes...)
	}
	p.tapes = p.tapes[:shards]
	if cap(p.results) < shards {
		p.results = make([]Result, shards)
	}
	p.results = p.results[:shards]

	workpool.FanID(workers, shards, func(worker, i int) {
		shardCfg := cfg
		shardCfg.Seed = cfg.Seed + uint64(i)*shardSeedStride
		// cfg already validated; a per-shard error is impossible here, and
		// swallowing it would corrupt the merge — fail loudly instead.
		res, err := p.engines[worker].Run(shardCfg, &p.tapes[i])
		if err != nil {
			panic(fmt.Sprintf("reqsim: shard %d failed after validation: %v", i, err))
		}
		p.results[i] = res
	})

	// Merge in shard index order: deterministic regardless of which worker
	// ran which shard.
	var out Result
	p.merged = p.merged[:0]
	for i := range p.results {
		r := &p.results[i]
		out.Arrived += r.Arrived
		out.Admitted += r.Admitted
		out.Scheduled += r.Scheduled
		out.Finished += r.Finished
		out.Completed += r.Completed
		out.Dropped += r.Dropped
		out.Events += r.Events
		if r.MaxInSystem > out.MaxInSystem {
			out.MaxInSystem = r.MaxInSystem
		}
		out.AreaJobsSec += r.AreaJobsSec
		out.MeasuredSec += r.MeasuredSec
		out.BusySec += r.BusySec
		out.RespSumSec += r.RespSumSec
		p.merged = p.tapes[i].AppendTo(p.merged)
	}
	if out.MeasuredSec > 0 {
		out.MeanJobs = out.AreaJobsSec / out.MeasuredSec
		out.UtilFraction = out.BusySec / out.MeasuredSec
	}
	if out.Completed > 0 {
		out.MeanRespSec = out.RespSumSec / float64(out.Completed)
	}
	if len(p.merged) > 0 {
		out.P50Sec = quantileSelect(p.merged, 0.50)
		out.P95Sec = quantileSelect(p.merged, 0.95)
		out.P99Sec = quantileSelect(p.merged, 0.99)
	}
	return out, nil
}
