package reqsim

import (
	"errors"
	"math"
	"testing"
)

// TestMeanJobsMatchesAnalytic reproduces the paper's Eq. (4) across the
// load grid the acceptance criteria name: the engine's measured mean
// number in system must sit within tolerance of λ/(x−λ).
func TestMeanJobsMatchesAnalytic(t *testing.T) {
	eng := NewEngine()
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.85} {
		cfg := Config{
			ArrivalRPS: rho * 10,
			ServiceRPS: 10,
			Service:    ExponentialService(1),
			Horizon:    60000,
			Warmup:     3000,
			Seed:       1,
		}
		res, err := eng.Run(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticMeanJobs(cfg.ArrivalRPS, cfg.ServiceRPS)
		if math.Abs(res.MeanJobs-want) > 0.08*want+0.05 {
			t.Errorf("ρ=%v: mean jobs %v, analytic %v", rho, res.MeanJobs, want)
		}
		if math.Abs(res.UtilFraction-rho) > 0.03 {
			t.Errorf("ρ=%v: measured utilization %v", rho, res.UtilFraction)
		}
	}
}

// TestHeavyTailInsensitivity: with Pareto requirements (finite mean,
// infinite variance) the PS *mean* number in system is still the
// insensitive λ/(x−λ) — convergence is just slow. A generous tolerance on
// a long run keeps the claim honest without flaking.
func TestHeavyTailInsensitivity(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 5,
		ServiceRPS: 10,
		Service:    ParetoService(1, 1.8),
		Horizon:    120000,
		Warmup:     6000,
		Seed:       3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticMeanJobs(cfg.ArrivalRPS, cfg.ServiceRPS)
	if math.Abs(res.MeanJobs-want) > 0.30*want {
		t.Errorf("pareto mean jobs %v, analytic %v (insensitivity of the mean)", res.MeanJobs, want)
	}
}

// TestBurstyArrivalsBreakAnalytic pins the arm the analytic model is
// knowably wrong on: MMPP on/off arrivals with the same *mean* rate as a
// Poisson stream congest the server far beyond λ̄/(x−λ̄), because the PS
// insensitivity argument requires Poisson arrivals. The engine must
// measure that divergence, not hide it.
func TestBurstyArrivalsBreakAnalytic(t *testing.T) {
	arr := OnOffArrivals(14, 1, 2, 4) // mean rate (14·2+1·4)/6 = 5.33…
	cfg := Config{
		Arrivals:   arr,
		ServiceRPS: 10,
		Service:    ExponentialService(1),
		Horizon:    60000,
		Warmup:     3000,
		Seed:       2,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := AnalyticMeanJobs(arr.MeanRate(0), cfg.ServiceRPS)
	if res.MeanJobs < 1.3*analytic {
		t.Errorf("bursty mean jobs %v should exceed the Poisson analytic %v by far", res.MeanJobs, analytic)
	}
	// The mean arrival rate itself must be honored (jobs conserved).
	gotRate := float64(res.Arrived) / cfg.Horizon
	if math.Abs(gotRate-arr.MeanRate(0)) > 0.05*arr.MeanRate(0) {
		t.Errorf("bursty arrival rate %v, want ≈ %v", gotRate, arr.MeanRate(0))
	}
}

// TestJourneyAccounting checks the request-journey invariants:
// ARRIVED = QUEUED(Admitted) + DROPPED, SCHEDULED == Admitted under PS,
// and everything admitted either finished or is still in system at the
// horizon.
func TestJourneyAccounting(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 20, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 5000, Warmup: 100, Seed: 5, MaxJobs: 50,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != res.Admitted+res.Dropped {
		t.Errorf("Arrived %d != Admitted %d + Dropped %d", res.Arrived, res.Admitted, res.Dropped)
	}
	if res.Scheduled != res.Admitted {
		t.Errorf("under PS Scheduled %d must equal Admitted %d", res.Scheduled, res.Admitted)
	}
	if res.Finished > res.Admitted {
		t.Errorf("Finished %d exceeds Admitted %d", res.Finished, res.Admitted)
	}
	if inFlight := res.Admitted - res.Finished; inFlight < 0 || inFlight > res.MaxInSystem {
		t.Errorf("in-flight %d outside [0, MaxInSystem %d]", inFlight, res.MaxInSystem)
	}
	if res.MaxInSystem > cfg.MaxJobs {
		t.Errorf("MaxInSystem %d exceeds cap %d", res.MaxInSystem, cfg.MaxJobs)
	}
	if res.Events != int64(res.Arrived)+int64(res.Finished) {
		t.Errorf("Events %d != Arrived %d + Finished %d", res.Events, res.Arrived, res.Finished)
	}
	if res.Dropped == 0 {
		t.Error("overloaded capped run never dropped")
	}
}

// TestPercentilesFromTape drives a run with a tape and sanity-checks the
// exact percentiles (ordering, positivity, agreement with the mean's
// scale). Bitwise agreement with stats.Quantile is pinned separately by
// the property test in tape_test.go.
func TestPercentilesFromTape(t *testing.T) {
	var tape SampleTape
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 20000, Warmup: 1000, Seed: 4,
	}
	res, err := NewEngine().Run(cfg, &tape)
	if err != nil {
		t.Fatal(err)
	}
	if tape.N() != res.Completed {
		t.Fatalf("tape has %d samples, want Completed %d", tape.N(), res.Completed)
	}
	if !(res.P50Sec > 0 && res.P50Sec <= res.P95Sec && res.P95Sec <= res.P99Sec) {
		t.Errorf("percentile ordering violated: P50 %v P95 %v P99 %v", res.P50Sec, res.P95Sec, res.P99Sec)
	}
	if res.P50Sec >= res.MeanRespSec {
		// Exponential-ish response times are right-skewed: median < mean.
		t.Errorf("P50 %v should sit below mean %v for a right-skewed response distribution", res.P50Sec, res.MeanRespSec)
	}
}

func TestConfigValidation(t *testing.T) {
	exp := ExponentialService(1)
	bad := []Config{
		{ArrivalRPS: -1, ServiceRPS: 1, Service: exp, Horizon: 1},
		{ArrivalRPS: math.NaN(), ServiceRPS: 1, Service: exp, Horizon: 1},
		{ArrivalRPS: math.Inf(1), ServiceRPS: 1, Service: exp, Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 0, Service: exp, Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: math.NaN(), Service: exp, Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 2, Horizon: 1}, // zero-value sampler
		{ArrivalRPS: 1, ServiceRPS: 2, Service: exp, Horizon: 0},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: exp, Horizon: math.Inf(1)},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: exp, Horizon: 1, Warmup: 1},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: exp, Horizon: 1, Warmup: math.NaN()},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: exp, Horizon: 1, MaxJobs: -1},
		{ArrivalRPS: 2, ServiceRPS: 1, Service: exp, Horizon: 1},                                       // uncapped ρ >= 1
		{ArrivalRPS: 1, ServiceRPS: 1, Service: exp, Horizon: 1},                                       // uncapped ρ == 1
		{ArrivalRPS: 1, Arrivals: OnOffArrivals(5, 1, 1, 1), ServiceRPS: 10, Service: exp, Horizon: 1}, // both arrival specs
		{Arrivals: OnOffArrivals(20, 20, 1, 1), ServiceRPS: 10, Service: exp, Horizon: 1},              // bursty mean ρ >= 1 uncapped
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
	ok := []Config{
		{ArrivalRPS: 2, ServiceRPS: 1, Service: exp, Horizon: 10, MaxJobs: 5},             // capped loss system
		{Arrivals: OnOffArrivals(14, 1, 2, 4), ServiceRPS: 10, Service: exp, Horizon: 10}, // stable bursty
		{ArrivalRPS: 0, ServiceRPS: 10, Service: exp, Horizon: 10},                        // empty system
	}
	for i, cfg := range ok {
		if _, err := Simulate(cfg); err != nil {
			t.Errorf("ok case %d: unexpected error %v", i, err)
		}
	}
}

// TestRunZeroAllocs is the steady-state allocation contract from the
// acceptance criteria: a warm engine simulating tens of thousands of
// requests must not allocate at all — not 0 per event, 0 per *run*.
func TestRunZeroAllocs(t *testing.T) {
	eng := NewEngine()
	var tape SampleTape
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 3000, Warmup: 100, Seed: 8,
	}
	// Warm: grow every slab to the run's high-water mark.
	if _, err := eng.Run(cfg, &tape); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(cfg, &tape); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm engine allocated %.0f times per run (~21k events); want 0", allocs)
	}
}

func TestServiceSamplerStrings(t *testing.T) {
	cases := map[string]ServiceSampler{
		"exp(mean=1)":              ExponentialService(1),
		"det(mean=2)":              DeterministicService(2),
		"hyperexp(mean=1,p=0.15)":  HyperexpService(1, 0.15),
		"pareto(mean=1,alpha=1.5)": ParetoService(1, 1.5),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		if !s.Valid() {
			t.Errorf("%s reported invalid", want)
		}
	}
	var zero ServiceSampler
	if zero.Valid() {
		t.Error("zero sampler must be invalid")
	}
	if zero.String() != "invalid" {
		t.Errorf("zero sampler String() = %q", zero.String())
	}
}

func TestParetoSampleMean(t *testing.T) {
	// The inverse-CDF sampler must hit its configured mean: x_m·α/(α−1).
	s := ParetoService(1, 1.9)
	eng := NewEngine()
	var sum float64
	const n = 2_000_000
	for i := 0; i < n; i++ {
		sum += s.sample(eng.rng)
	}
	if got := sum / n; math.Abs(got-1) > 0.05 {
		t.Errorf("pareto sample mean %v, want ≈ 1", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"pareto-alpha-low":  func() { ParetoService(1, 1) },
		"pareto-alpha-high": func() { ParetoService(1, 2.5) },
		"hyperexp-p":        func() { HyperexpService(1, 0) },
		"onoff-rate":        func() { OnOffArrivals(0, 0, 1, 1) },
		"onoff-sojourn":     func() { OnOffArrivals(5, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
