package reqsim

import (
	"fmt"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/workpool"
)

// Slot and site seed strides (distinct from shardSeedStride so a slot's
// shard seeds never collide with a neighboring slot's): the other two
// splitmix64 mixing constants.
const (
	slotSeedStride = 0xBF58476D1CE4E5B9
	siteSeedStride = 0x94D049BB133111EB
)

// ReplayOptions configures request-level slot replays for both the
// single-site slot pipeline (SlotReplayer) and the geo fleet
// (FleetReplayer).
type ReplayOptions struct {
	// Requests is the target number of simulated requests per replayed
	// slot (the replay horizon is sized so the expected arrival count hits
	// it). Default 200_000.
	Requests int
	// Service is the request-size distribution (mean 1 by the paper's
	// convention). Default ExponentialService(1); pass ParetoService for
	// the heavy-tailed arm.
	Service ServiceSampler
	// Bursty replaces Poisson arrivals with an on/off MMPP of the same
	// mean rate (1.8×/0.2× phase rates, 30 s phases) — the arm on which
	// the analytic d(λ,x) = λ/(x−λ) is knowably wrong.
	Bursty bool
	// Every replays every Nth slot (default 1: every slot).
	Every int
	// MaxShards caps the number of independent server replicas simulated
	// per slot (default 32). A slot with Active ≤ MaxShards replays every
	// server; beyond that, a statistically identical subset.
	MaxShards int
	// Workers bounds the shard/site fan-out (default 1: sequential,
	// bit-identical to any other width).
	Workers int
	// WarmupFrac is the fraction of each replay horizon discarded before
	// measuring (default 0.1).
	WarmupFrac float64
	// Seed is the base seed; each slot (and site) derives its own stream.
	Seed uint64

	Site    string                   // metrics label for SlotReplayer (default "dc0")
	Metrics *telemetry.ReqsimMetrics // optional instruments
	Tracer  *span.Tracer             // optional span recording ("reqsim.replay")
}

func (o *ReplayOptions) withDefaults() ReplayOptions {
	out := *o
	if out.Requests <= 0 {
		out.Requests = 200_000
	}
	if !out.Service.Valid() {
		out.Service = ExponentialService(1)
	}
	if out.Every <= 0 {
		out.Every = 1
	}
	if out.MaxShards <= 0 {
		out.MaxShards = 32
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	if out.WarmupFrac <= 0 || out.WarmupFrac >= 1 {
		out.WarmupFrac = 0.1
	}
	if out.Site == "" {
		out.Site = "dc0"
	}
	return out
}

// arrivals builds the slot's arrival process at mean rate lambda.
func (o *ReplayOptions) arrivals(lambda float64) (poissonRPS float64, proc ArrivalProcess) {
	if o.Bursty {
		return 0, OnOffArrivals(1.8*lambda, 0.2*lambda, 30, 30)
	}
	return lambda, ArrivalProcess{}
}

// ReplayReport aggregates a run's replays: how many requests were
// simulated and how far the measured queue diverged from the analytic
// model the controllers optimize against.
type ReplayReport struct {
	Slots    int   // slots replayed
	Requests int64 // total simulated requests
	Events   int64 // total simulation events
	Dropped  int64

	// MeanAbsRelErr and MaxAbsRelErr summarize |empirical − analytic| /
	// analytic over the per-replay mean number in system. Poisson arms
	// validate Eq. (4); heavy-tailed arms show its mean surviving with
	// wider tails; bursty arms quantify exactly how wrong it is.
	MeanAbsRelErr float64
	MaxAbsRelErr  float64

	errSlots int // replays that had an analytic prediction to compare against
}

func (r *ReplayReport) fold(res Result, analytic float64) float64 {
	r.Slots++
	r.Requests += int64(res.Arrived)
	r.Events += res.Events
	r.Dropped += int64(res.Dropped)
	relErr := -1.0
	if analytic > 0 {
		relErr = math.Abs(res.MeanJobs-analytic) / analytic
		r.errSlots++
		r.MeanAbsRelErr += relErr // running sum; finish() divides by errSlots
		if relErr > r.MaxAbsRelErr {
			r.MaxAbsRelErr = relErr
		}
	}
	return relErr
}

func (r *ReplayReport) finish() ReplayReport {
	out := *r
	if out.errSlots > 0 {
		out.MeanAbsRelErr /= float64(out.errSlots)
	}
	return out
}

// String renders the report for run summaries.
func (r ReplayReport) String() string {
	return fmt.Sprintf("slots=%d requests=%d events=%d dropped=%d model_err(mean=%.4f max=%.4f)",
		r.Slots, r.Requests, r.Events, r.Dropped, r.MeanAbsRelErr, r.MaxAbsRelErr)
}

// SlotReplayer replays settled slots of the single-site slot pipeline at
// request granularity: each observed sim.SlotRecord becomes `Active`
// independent M/G/1/PS replicas at per-server load λ/Active and speed
// x = Rate(Speed) — the exact queueing model behind the slot's charged
// delay cost — simulated shard-parallel through a Pool. Per-slot exact
// percentiles, queue lengths and the empirical-vs-analytic error flow
// into ReqsimMetrics and reqsim.replay spans.
//
// Attach with sim.RunObserved(sc, policy, replayer.Observer()). The
// replayer is deterministic: a function of (options, observed records)
// only, independent of Workers.
type SlotReplayer struct {
	opts   ReplayOptions
	server dcmodel.ServerType
	pool   *Pool
	rep    ReplayReport
}

// NewSlotReplayer builds a replayer for runs over the given server type
// (the scenario's sc.Server — it defines the speed→rate mapping).
func NewSlotReplayer(server dcmodel.ServerType, opts ReplayOptions) *SlotReplayer {
	o := opts.withDefaults()
	return &SlotReplayer{opts: o, server: server, pool: NewPool(o.Workers)}
}

// Observer adapts the replayer to the engine's per-slot hook.
func (r *SlotReplayer) Observer() sim.Observer { return r.observe }

// Report returns the aggregated replay statistics so far.
func (r *SlotReplayer) Report() ReplayReport { return r.rep.finish() }

func (r *SlotReplayer) observe(rec sim.SlotRecord) {
	o := &r.opts
	if rec.Slot%o.Every != 0 {
		return
	}
	if rec.LambdaRPS <= 0 || rec.Active <= 0 || rec.Speed <= 0 {
		return
	}
	lambdaPer := rec.LambdaRPS / float64(rec.Active)
	x := r.server.Rate(rec.Speed)
	if lambdaPer >= x {
		return // overloaded config: sim would have rejected it; nothing to validate
	}
	shards := rec.Active
	if shards > o.MaxShards {
		shards = o.MaxShards
	}
	// Size the horizon so expected arrivals across shards ≈ Requests.
	horizon := float64(o.Requests) / (lambdaPer * float64(shards))
	cfg := Config{
		ServiceRPS: x,
		Service:    o.Service,
		Horizon:    horizon,
		Warmup:     horizon * o.WarmupFrac,
		Seed:       o.Seed + uint64(rec.Slot+1)*slotSeedStride,
	}
	cfg.ArrivalRPS, cfg.Arrivals = o.arrivals(lambdaPer)
	var sp *span.Span
	if o.Tracer != nil {
		sp = o.Tracer.Start("reqsim.replay",
			span.Int("slot", rec.Slot),
			span.Float("lambda_per_server", lambdaPer),
			span.Float("service_rps", x),
			span.Int("shards", shards))
	}
	res, err := r.pool.RunSharded(cfg, shards)
	if err != nil {
		// Validation rejected a degenerate configuration; record and move on.
		if sp != nil {
			sp.Set(span.Str("error", err.Error()))
			sp.End()
		}
		return
	}
	analytic := AnalyticMeanJobs(lambdaPer, x)
	relErr := r.rep.fold(res, analytic)
	o.Metrics.ObserveReplay(o.Site, res.Arrived, res.Dropped, res.Events,
		res.P50Sec, res.P95Sec, res.P99Sec, res.MeanJobs, relErr)
	if sp != nil {
		sp.Set(
			span.Int("requests", res.Arrived),
			span.Int64("events", res.Events),
			span.Float("p50_sec", res.P50Sec),
			span.Float("p95_sec", res.P95Sec),
			span.Float("p99_sec", res.P99Sec),
			span.Float("mean_jobs", res.MeanJobs),
			span.Float("analytic_jobs", analytic),
			span.Float("model_err", relErr))
		sp.End()
	}
}

// FleetReplayer replays settled geo-fleet slots at request granularity:
// each loaded site's (load, delay-cost) outcome is mapped to its
// equivalent PS server — the paper's d = λ/(x−λ) inverted to
// x_eq = λ + λ/d, so the analytic prediction for the replayed queue *is*
// the site's charged delay cost — then every site is simulated in
// parallel (index-addressed, per-worker engines, deterministic for any
// Workers). Per-site percentiles, queue lengths and model error land in
// the same site-labeled ReqsimMetrics vectors the slot pipeline uses.
//
// Attach with fleet.SetSettleObserver(replayer.Observer()).
type FleetReplayer struct {
	opts    ReplayOptions
	names   []string
	engines []*Engine
	tapes   []SampleTape
	results []Result
	ran     []bool
	rep     ReplayReport
}

// NewFleetReplayer builds a replayer for a fleet whose site names (in
// site index order) label the per-site metric series.
func NewFleetReplayer(siteNames []string, opts ReplayOptions) *FleetReplayer {
	o := opts.withDefaults()
	r := &FleetReplayer{
		opts:    o,
		names:   append([]string(nil), siteNames...),
		tapes:   make([]SampleTape, len(siteNames)),
		results: make([]Result, len(siteNames)),
		ran:     make([]bool, len(siteNames)),
	}
	workers := o.Workers
	if workers > len(siteNames) && len(siteNames) > 0 {
		workers = len(siteNames)
	}
	for i := 0; i < workers; i++ {
		r.engines = append(r.engines, NewEngine())
	}
	return r
}

// Observer adapts the replayer to the fleet's settle hook.
func (r *FleetReplayer) Observer() geo.SettleObserver { return r.observe }

// Report returns the aggregated replay statistics so far.
func (r *FleetReplayer) Report() ReplayReport { return r.rep.finish() }

func (r *FleetReplayer) observe(slot int, out geo.FleetStepOutcome) {
	o := &r.opts
	if slot%o.Every != 0 {
		return
	}
	n := len(out.Sites)
	if n > len(r.names) {
		n = len(r.names)
	}
	// One shared horizon sized off the fleet's total load: every site then
	// contributes requests proportional to its allocated share.
	var totalLoad float64
	for i := 0; i < n; i++ {
		if site := &out.Sites[i]; site.LoadRPS > 0 && site.DelayCost > 0 {
			totalLoad += site.LoadRPS
		}
	}
	if totalLoad <= 0 {
		return
	}
	horizon := float64(o.Requests) / totalLoad
	var sp *span.Span
	if o.Tracer != nil {
		sp = o.Tracer.Start("reqsim.fleet_replay",
			span.Int("slot", slot),
			span.Int("sites", n),
			span.Float("total_load_rps", totalLoad))
	}
	workpool.FanID(len(r.engines), n, func(worker, i int) {
		r.ran[i] = false
		site := &out.Sites[i]
		if site.LoadRPS <= 0 || site.DelayCost <= 0 {
			return
		}
		lambda := site.LoadRPS
		// Equivalent PS server: invert d = λ/(x−λ) so the analytic
		// prediction of the replayed queue equals the charged delay cost.
		xEq := lambda + lambda/site.DelayCost
		cfg := Config{
			ServiceRPS: xEq,
			Service:    o.Service,
			Horizon:    horizon,
			Warmup:     horizon * o.WarmupFrac,
			Seed:       o.Seed + uint64(slot+1)*slotSeedStride + uint64(i+1)*siteSeedStride,
		}
		cfg.ArrivalRPS, cfg.Arrivals = o.arrivals(lambda)
		res, err := r.engines[worker].Run(cfg, &r.tapes[i])
		if err != nil {
			return
		}
		r.results[i] = res
		r.ran[i] = true
	})
	// Fold in site index order — deterministic for any worker count.
	var requests, events int64
	for i := 0; i < n; i++ {
		if !r.ran[i] {
			continue
		}
		res := r.results[i]
		relErr := r.rep.fold(res, out.Sites[i].DelayCost)
		o.Metrics.ObserveReplay(r.names[i], res.Arrived, res.Dropped, res.Events,
			res.P50Sec, res.P95Sec, res.P99Sec, res.MeanJobs, relErr)
		requests += int64(res.Arrived)
		events += res.Events
	}
	if sp != nil {
		sp.Set(span.Int64("requests", requests), span.Int64("events", events))
		sp.End()
	}
}
