// Package reqsim is the high-throughput request-level discrete-event
// engine: the same M/G/1/PS fair-share-clock simulation as the
// internal/queueing oracle, engineered like the GSD and geo hot paths so a
// fleet slot can be replayed at request granularity — millions of
// simulated requests per second on one core, zero allocations per event in
// steady state.
//
// Design, mirroring the repository's hot-path rules:
//
//   - Struct-of-arrays job records indexed by dense int32 IDs. A job is a
//     row across parallel slabs (arrival stamp, journey state), recycled
//     through a free list — no per-request heap objects, no pointers for
//     the GC to trace.
//   - A 4-ary slab-backed event heap (heap.go): half the tree height of a
//     binary heap, four child keys per cache line, zero steady-state
//     allocations.
//   - Closure-free samplers (sampler.go): a ServiceSampler is a tagged
//     value dispatched through one switch, drawing the *exact* RNG
//     sequence of the corresponding queueing.ServiceDist — which is what
//     lets the parity tests demand bit-for-bit equality with the oracle.
//   - Deterministic sharding (shard.go): per-shard seeds derived by a
//     splitmix64-style stride, shards fanned over workpool.FanID with
//     per-worker engines, results merged in shard index order — the same
//     worker-count-invariance contract as geo.Fleet, pinned under -race.
//
// Each request follows the journey ARRIVED → QUEUED → SCHEDULED → FINISHED
// (under processor sharing, admission and scheduling coincide; the
// transitions are counted separately so the lifecycle survives a future
// non-PS discipline) or ARRIVED → DROPPED when a MaxJobs cap rejects it.
//
// The package exists to make the paper's delay cost d(λ,x) = λ/(x−λ)
// (Eq. 4) a regression-tested claim: the Poisson arms reproduce it within
// tolerance, and the heavy-tailed (ParetoService) and bursty
// (OnOffArrivals) arms measure exactly how wrong it becomes when the
// insensitivity argument's assumptions break.
package reqsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Job journey states (per-job byte in the state slab).
const (
	stateFree      uint8 = iota // row unused (on the free list)
	stateScheduled              // in system, receiving PS service
)

// ErrBadConfig is the sentinel every validation failure wraps.
var ErrBadConfig = errors.New("reqsim: invalid configuration")

// Config configures one PS simulation run. The zero-valued Arrivals is
// Poisson at ArrivalRPS — the oracle-compatible path; OnOffArrivals selects
// the bursty arm (with ArrivalRPS left 0).
type Config struct {
	ArrivalRPS float64        // λ: Poisson arrival rate (Poisson path only)
	Arrivals   ArrivalProcess // zero value: Poisson(ArrivalRPS)
	ServiceRPS float64        // x: server speed in units of work per second
	Service    ServiceSampler // requirement distribution (mean 1 by convention)
	Horizon    float64        // simulated seconds
	Warmup     float64        // seconds discarded before measuring
	Seed       uint64
	MaxJobs    int // optional cap on in-system jobs (0 = unlimited); extra arrivals drop
}

// Validate rejects NaN/negative rates, empty horizons, Warmup ≥ Horizon,
// invalid samplers and unstable (ρ ≥ 1) uncapped systems — the queueing
// oracle's rules extended to the bursty arm, where stability is judged on
// the time-averaged arrival rate.
func (cfg *Config) Validate() error {
	bursty := cfg.Arrivals.Bursty()
	switch {
	case math.IsNaN(cfg.ArrivalRPS) || math.IsInf(cfg.ArrivalRPS, 0) || cfg.ArrivalRPS < 0:
		return fmt.Errorf("%w: ArrivalRPS %v must be finite and >= 0", ErrBadConfig, cfg.ArrivalRPS)
	case bursty && cfg.ArrivalRPS != 0:
		return fmt.Errorf("%w: ArrivalRPS %v conflicts with OnOffArrivals (leave it 0)", ErrBadConfig, cfg.ArrivalRPS)
	case math.IsNaN(cfg.ServiceRPS) || math.IsInf(cfg.ServiceRPS, 0) || cfg.ServiceRPS <= 0:
		return fmt.Errorf("%w: ServiceRPS %v must be finite and > 0", ErrBadConfig, cfg.ServiceRPS)
	case !cfg.Service.Valid():
		return fmt.Errorf("%w: Service sampler not built by a constructor", ErrBadConfig)
	case math.IsNaN(cfg.Horizon) || math.IsInf(cfg.Horizon, 0) || cfg.Horizon <= 0:
		return fmt.Errorf("%w: Horizon %v must be finite and > 0", ErrBadConfig, cfg.Horizon)
	case math.IsNaN(cfg.Warmup) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon:
		return fmt.Errorf("%w: Warmup %v must be in [0, Horizon %v)", ErrBadConfig, cfg.Warmup, cfg.Horizon)
	case cfg.MaxJobs < 0:
		return fmt.Errorf("%w: MaxJobs %d must be >= 0", ErrBadConfig, cfg.MaxJobs)
	}
	if cfg.MaxJobs == 0 {
		mean := cfg.Arrivals.MeanRate(cfg.ArrivalRPS)
		if rho := mean * cfg.Service.Mean() / cfg.ServiceRPS; rho >= 1 {
			return fmt.Errorf("%w: unstable system (mean utilization %v >= 1) without a MaxJobs cap",
				ErrBadConfig, rho)
		}
	}
	return nil
}

// Result summarizes a run. The first five fields carry the oracle's exact
// semantics and match queueing.Result bit for bit on identical Poisson
// configs. The raw sums (AreaJobsSec, MeasuredSec, BusySec, RespSumSec)
// are exported so sharded runs can merge results without losing bits —
// every mean above them is a ratio of two sums.
type Result struct {
	MeanJobs     float64 // time-averaged number in system (compare to λ/(x−λ))
	MeanRespSec  float64 // mean response time of completed jobs
	Completed    int     // completions of jobs arriving after warmup
	Dropped      int
	UtilFraction float64 // measured busy fraction (compare to ρ)

	// Journey accounting over the whole run (warmup included).
	Arrived     int   // arrival events (Admitted + Dropped)
	Admitted    int   // jobs that entered the system (QUEUED)
	Scheduled   int   // jobs that began PS service (== Admitted under PS)
	Finished    int   // all completions, including warmup-period jobs
	Events      int64 // processed events (arrivals + completions)
	MaxInSystem int   // peak concurrent jobs

	// Exact response-time percentiles of the measured completions; zero
	// when the run was driven without a SampleTape.
	P50Sec, P95Sec, P99Sec float64

	// Mergeable raw sums (post-warmup).
	AreaJobsSec float64 // ∫ n dt
	MeasuredSec float64
	BusySec     float64
	RespSumSec  float64
}

// Engine is a reusable request-level simulator: all state lives in slabs
// that survive Run calls, so a warm engine simulates an entire slot —
// millions of requests — without a single allocation. Engines are not safe
// for concurrent use; the Pool gives each worker its own.
type Engine struct {
	rng  *stats.RNG
	heap d4heap

	// SoA job records indexed by dense id: arrival stamp and journey
	// state. (The completion level lives in the heap entry itself — it is
	// dead weight once the job is popped.)
	arrivedAt []float64
	state     []uint8
	free      []int32 // recycled ids

	// On/off arrival phase (bursty arm only).
	phaseOn  bool
	switchAt float64
}

// NewEngine returns an empty engine. Slabs grow on first use and are
// reused by every subsequent Run.
func NewEngine() *Engine { return &Engine{rng: stats.NewRNG(0)} }

// Simulate is the one-shot convenience wrapper: a fresh engine, one run.
// Hot paths (the slot replayers, the bench loop) hold an Engine instead.
func Simulate(cfg Config) (Result, error) {
	return NewEngine().Run(cfg, nil)
}

// Run executes one simulation. A non-nil tape is reset, receives every
// measured response time, and yields the Result's exact percentiles. The
// engine re-arms itself (RNG reseed, slab truncation) so repeated Runs are
// deterministic functions of cfg alone.
func (e *Engine) Run(cfg Config, tape *SampleTape) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e.rng.Reseed(cfg.Seed)
	e.heap.reset()
	e.arrivedAt = e.arrivedAt[:0]
	e.state = e.state[:0]
	e.free = e.free[:0]
	if cfg.MaxJobs > 0 {
		e.heap.grow(cfg.MaxJobs)
	}
	if tape != nil {
		tape.Reset()
	}

	var (
		res      Result
		now      float64 // wall clock
		fair     float64 // fair-share clock F(t)
		areaJobs float64 // ∫ n dt after warmup
		busyTime float64 // time with n > 0 after warmup
		respSum  float64
		measured float64 // time measured
	)
	rng := e.rng
	bursty := cfg.Arrivals.Bursty()
	nextArrival := math.Inf(1)
	if bursty {
		e.phaseOn = true
		e.switchAt = rng.Exponential(cfg.Arrivals.swOn)
		nextArrival = e.drawArrival(0, cfg.Arrivals)
	} else if cfg.ArrivalRPS > 0 {
		nextArrival = rng.Exponential(cfg.ArrivalRPS)
	}

	// advance moves the wall clock to `to`, accumulating the time-average
	// integrals and the fair-share clock. The expressions are verbatim from
	// queueing.Simulate — the parity tests require bit-equal accumulation
	// order, not just the same mathematics.
	advance := func(to float64) {
		dt := to - now
		if dt < 0 {
			dt = 0
		}
		n := float64(e.heap.len())
		if now >= cfg.Warmup {
			areaJobs += n * dt
			measured += dt
			if n > 0 {
				busyTime += dt
			}
		} else if to > cfg.Warmup {
			post := to - cfg.Warmup
			areaJobs += n * post
			measured += post
			if n > 0 {
				busyTime += post
			}
		}
		if n > 0 {
			fair += dt * cfg.ServiceRPS / n
		}
		now = to
	}

	for now < cfg.Horizon {
		// Next completion in wall-clock terms.
		nextDone := math.Inf(1)
		if e.heap.len() > 0 {
			nextDone = now + (e.heap.min()-fair)*float64(e.heap.len())/cfg.ServiceRPS
		}
		next := math.Min(nextArrival, nextDone)
		if next > cfg.Horizon {
			advance(cfg.Horizon)
			break
		}
		advance(next)
		if next == nextDone && e.heap.len() > 0 {
			// FINISHED: retire the job, recycle its id.
			_, id := e.heap.popMin()
			res.Events++
			res.Finished++
			a := e.arrivedAt[id]
			e.state[id] = stateFree
			e.free = append(e.free, id)
			if a >= cfg.Warmup {
				res.Completed++
				respSum += now - a
				if tape != nil {
					tape.Observe(now - a)
				}
			}
			continue
		}
		// ARRIVED.
		res.Events++
		res.Arrived++
		if cfg.MaxJobs > 0 && e.heap.len() >= cfg.MaxJobs {
			res.Dropped++ // ARRIVED → DROPPED
		} else {
			// ARRIVED → QUEUED → SCHEDULED: under PS both transitions
			// happen at the arrival instant.
			id := e.admit(now)
			res.Admitted++
			res.Scheduled++
			e.heap.push(fair+cfg.Service.sample(rng), id)
			if n := e.heap.len(); n > res.MaxInSystem {
				res.MaxInSystem = n
			}
		}
		if bursty {
			nextArrival = e.drawArrival(now, cfg.Arrivals)
		} else {
			nextArrival = now + rng.Exponential(cfg.ArrivalRPS)
		}
	}

	if measured > 0 {
		res.MeanJobs = areaJobs / measured
		res.UtilFraction = busyTime / measured
	}
	if res.Completed > 0 {
		res.MeanRespSec = respSum / float64(res.Completed)
	}
	res.AreaJobsSec = areaJobs
	res.MeasuredSec = measured
	res.BusySec = busyTime
	res.RespSumSec = respSum
	if tape != nil && tape.N() > 0 {
		res.P50Sec = tape.Quantile(0.50)
		res.P95Sec = tape.Quantile(0.95)
		res.P99Sec = tape.Quantile(0.99)
	}
	return res, nil
}

// admit allocates a dense job id for an arrival at `now`, recycling the
// free list before growing the slabs.
func (e *Engine) admit(now float64) int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		e.arrivedAt[id] = now
		e.state[id] = stateScheduled
		return id
	}
	id := int32(len(e.arrivedAt))
	e.arrivedAt = append(e.arrivedAt, now)
	e.state = append(e.state, stateScheduled)
	return id
}

// drawArrival samples the next on/off arrival after `now`: draw an
// exponential at the current phase rate; if it lands past the phase switch,
// memorylessness lets us discard it, jump to the switch and resample.
func (e *Engine) drawArrival(now float64, a ArrivalProcess) float64 {
	rng := e.rng
	for {
		rate := a.rateOn
		if !e.phaseOn {
			rate = a.rateOff
		}
		if rate > 0 {
			t := now + rng.Exponential(rate)
			if t <= e.switchAt {
				return t
			}
		}
		now = e.switchAt
		e.phaseOn = !e.phaseOn
		sr := a.swOn
		if !e.phaseOn {
			sr = a.swOff
		}
		e.switchAt = now + rng.Exponential(sr)
	}
}

// AnalyticMeanJobs re-exports the paper's Eq. (4) prediction λ/(x−λ) (mean
// service requirement 1), the number every empirical arm is compared to.
func AnalyticMeanJobs(arrivalRPS, serviceRPS float64) float64 {
	if arrivalRPS >= serviceRPS {
		return math.Inf(1)
	}
	return arrivalRPS / (serviceRPS - arrivalRPS)
}
