package reqsim

import "math"

// SampleTape is the engine's exact streaming percentile sink: Observe
// appends one float64 to a slab that is reused across slots (append is the
// only per-sample cost, allocation-free once the slab has grown to the
// slot's request volume), and Quantile answers with the *exact*
// linear-interpolated order statistic — the same definition as
// stats.Quantile — via in-place quickselect instead of a full sort.
//
// Exactness is the point: the analytic-vs-empirical comparison this engine
// exists for cannot hang on a sketch's error bound, and the percentile
// property test pins Quantile bit-for-bit against the sorted reference.
// Quickselect keeps the per-slot cost O(n) expected instead of O(n log n),
// and the tape's sample order is never part of the contract — Quantile
// reorders the slab freely.
type SampleTape struct {
	buf []float64
}

// Reset empties the tape, keeping its capacity.
func (t *SampleTape) Reset() { t.buf = t.buf[:0] }

// Observe appends one sample.
func (t *SampleTape) Observe(v float64) { t.buf = append(t.buf, v) }

// N returns the number of samples on the tape.
func (t *SampleTape) N() int { return len(t.buf) }

// AppendTo appends the tape's samples to dst and returns it — the merge
// primitive sharded runs use to pool per-shard tapes (in shard order, so
// the merged quantile is deterministic).
func (t *SampleTape) AppendTo(dst []float64) []float64 {
	return append(dst, t.buf...)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with the exact semantics of
// stats.Quantile — linear interpolation between order statistics — but
// computed by quickselect over the tape's own storage. An empty tape
// returns 0 (a slot with no completed requests has no latency). It panics
// for q outside [0, 1].
func (t *SampleTape) Quantile(q float64) float64 {
	return quantileSelect(t.buf, q)
}

// quantileSelect computes the exact interpolated q-quantile of xs in place
// (xs is partially reordered, values preserved).
func quantileSelect(xs []float64, q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic("reqsim: Quantile requires q in [0,1]")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo := selectK(xs, lo)
	if lo == hi {
		return vlo
	}
	// After selectK(lo) every element right of lo is >= the lo-th order
	// statistic, so the (lo+1)-th is the minimum of that suffix.
	vhi := xs[lo+1]
	for _, v := range xs[lo+2:] {
		if v < vhi {
			vhi = v
		}
	}
	frac := pos - float64(lo)
	// Identical interpolation expression to stats.Quantile, so the property
	// test can require bit equality, not tolerance.
	return vlo*(1-frac) + vhi*frac
}

// selectK partitions xs so xs[k] is the k-th order statistic, everything
// left of k is <= it and everything right is >= it, and returns xs[k].
// Iterative quickselect with median-of-three pivots — deterministic (no
// RNG), O(n) expected, and allocation-free.
func selectK(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, also sorting the three probes.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		if hi-lo < 3 {
			return xs[k]
		}
		pivot := xs[mid]
		// Hoare partition.
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[k]
}
