package reqsim

import (
	"testing"

	"repro/internal/queueing"
)

// pair builds the oracle and engine configs for the same scenario. The
// service mean is fixed at 1 (the paper's convention) so the two packages'
// stability rules coincide.
type scenario struct {
	name       string
	arrival    float64
	service    float64
	oracleDist queueing.ServiceDist
	engineDist ServiceSampler
	horizon    float64
	warmup     float64
	maxJobs    int
}

// TestBitParityWithOracle is the engine's core correctness claim: on every
// Poisson configuration the fast engine and the internal/queueing oracle
// consume the identical RNG stream, order the identical events and
// accumulate with the identical float expressions — so every shared Result
// field must match bit for bit, across distributions, loads, caps and
// seeds. Not "close": equal.
func TestBitParityWithOracle(t *testing.T) {
	scenarios := []scenario{
		{name: "exp-rho03", arrival: 3, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 4000, warmup: 200},
		{name: "exp-rho05", arrival: 5, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 4000, warmup: 200},
		{name: "exp-rho07", arrival: 7, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 4000, warmup: 200},
		{name: "exp-rho085", arrival: 8.5, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 4000, warmup: 200},
		{name: "det", arrival: 6, service: 10,
			oracleDist: queueing.DeterministicService(1), engineDist: DeterministicService(1),
			horizon: 3000, warmup: 100},
		{name: "hyperexp", arrival: 6, service: 10,
			oracleDist: queueing.HyperexpService(1, 0.15), engineDist: HyperexpService(1, 0.15),
			horizon: 3000, warmup: 100},
		{name: "overloaded-capped", arrival: 20, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 2000, warmup: 100, maxJobs: 50},
		{name: "zero-warmup", arrival: 4, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 1500, warmup: 0},
		{name: "no-arrivals", arrival: 0, service: 10,
			oracleDist: queueing.ExponentialService(1), engineDist: ExponentialService(1),
			horizon: 100, warmup: 0},
	}
	eng := NewEngine()
	for _, sc := range scenarios {
		for seed := uint64(1); seed <= 5; seed++ {
			want, err := queueing.Simulate(queueing.Config{
				ArrivalRPS: sc.arrival, ServiceRPS: sc.service, Service: sc.oracleDist,
				Horizon: sc.horizon, Warmup: sc.warmup, Seed: seed, MaxJobs: sc.maxJobs,
			})
			if err != nil {
				t.Fatalf("%s seed %d: oracle: %v", sc.name, seed, err)
			}
			got, err := eng.Run(Config{
				ArrivalRPS: sc.arrival, ServiceRPS: sc.service, Service: sc.engineDist,
				Horizon: sc.horizon, Warmup: sc.warmup, Seed: seed, MaxJobs: sc.maxJobs,
			}, nil)
			if err != nil {
				t.Fatalf("%s seed %d: engine: %v", sc.name, seed, err)
			}
			if got.MeanJobs != want.MeanJobs {
				t.Errorf("%s seed %d: MeanJobs %v != oracle %v", sc.name, seed, got.MeanJobs, want.MeanJobs)
			}
			if got.MeanRespSec != want.MeanRespSec {
				t.Errorf("%s seed %d: MeanRespSec %v != oracle %v", sc.name, seed, got.MeanRespSec, want.MeanRespSec)
			}
			if got.UtilFraction != want.UtilFraction {
				t.Errorf("%s seed %d: UtilFraction %v != oracle %v", sc.name, seed, got.UtilFraction, want.UtilFraction)
			}
			if got.Completed != want.Completed {
				t.Errorf("%s seed %d: Completed %d != oracle %d", sc.name, seed, got.Completed, want.Completed)
			}
			if got.Dropped != want.Dropped {
				t.Errorf("%s seed %d: Dropped %d != oracle %d", sc.name, seed, got.Dropped, want.Dropped)
			}
		}
	}
}

// TestParityUnaffectedByEngineReuse pins the Reseed/reset contract: a warm
// engine that has just simulated a completely different scenario must
// produce the identical bits a fresh engine does.
func TestParityUnaffectedByEngineReuse(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: HyperexpService(1, 0.3),
		Horizon: 2000, Warmup: 100, Seed: 42,
	}
	fresh, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	// Dirty the engine with an unrelated overloaded capped run.
	if _, err := eng.Run(Config{
		ArrivalRPS: 30, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 500, Warmup: 10, Seed: 9, MaxJobs: 8,
	}, nil); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm != fresh {
		t.Errorf("warm engine diverged from fresh engine:\nwarm  %+v\nfresh %+v", warm, fresh)
	}
}
