package reqsim

// d4heap is the engine's event heap: a 4-ary min-heap over (key, job id)
// pairs stored in two parallel slab slices. Why 4-ary: completions
// dominate the event mix and every completion is a popMin, whose cost is
// (children compared per level) × (levels). A 4-ary layout halves the tree
// height of a binary heap for ~2× the per-level compares, but the four
// child keys sit in one cache line (32 bytes of float64s), so the extra
// compares are nearly free while the pointer-chasing depth is halved —
// the standard d-ary trade, tuned for keys the size of a float64.
//
// The heap never allocates in steady state: push grows the slabs amortized
// and reset keeps their capacity. Keys are fair-share completion levels,
// which are strictly increasing across arrivals in a busy period, so ties
// are measure-zero; popMin's order then matches any correct min-heap —
// including the oracle's binary heap — bit for bit.
type d4heap struct {
	keys []float64 // fair-share completion level F(a) + S
	ids  []int32   // dense job id owning the entry
}

func (h *d4heap) len() int     { return len(h.keys) }
func (h *d4heap) reset()       { h.keys = h.keys[:0]; h.ids = h.ids[:0] }
func (h *d4heap) min() float64 { return h.keys[0] }
func (h *d4heap) grow(n int) {
	if cap(h.keys) < n {
		keys := make([]float64, len(h.keys), n)
		ids := make([]int32, len(h.ids), n)
		copy(keys, h.keys)
		copy(ids, h.ids)
		h.keys, h.ids = keys, ids
	}
}

// push inserts (key, id), sifting up.
func (h *d4heap) push(key float64, id int32) {
	h.keys = append(h.keys, key)
	h.ids = append(h.ids, id)
	keys, ids := h.keys, h.ids
	i := len(keys) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if keys[parent] <= key {
			break
		}
		keys[i], ids[i] = keys[parent], ids[parent]
		i = parent
	}
	keys[i], ids[i] = key, id
}

// popMin removes and returns the minimum entry.
func (h *d4heap) popMin() (float64, int32) {
	keys, ids := h.keys, h.ids
	topKey, topID := keys[0], ids[0]
	n := len(keys) - 1
	key, id := keys[n], ids[n]
	h.keys, h.ids = keys[:n], ids[:n]
	if n == 0 {
		return topKey, topID
	}
	keys, ids = keys[:n], ids[:n]
	// Sift the former last element down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Smallest of up to four children; the four keys share a cache line.
		m := first
		mk := keys[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if keys[c] < mk {
				m, mk = c, keys[c]
			}
		}
		if key <= mk {
			break
		}
		keys[i], ids[i] = mk, ids[m]
		i = m
	}
	keys[i], ids[i] = key, id
	return topKey, topID
}
