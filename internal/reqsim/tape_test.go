package reqsim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

// TestQuantilePropertyVsSortedReference is the percentile-correctness
// property test: across randomized workload shapes (sizes, duplicates,
// heavy tails, constants, adversarial patterns) the tape's quickselect
// quantile must equal stats.Quantile over the fully sorted sample — not
// within tolerance, bit for bit, because both use the identical
// interpolation expression on the identical order statistics.
func TestQuantilePropertyVsSortedReference(t *testing.T) {
	rng := stats.NewRNG(99)
	qs := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	shapes := []struct {
		name string
		gen  func(n int) []float64
	}{
		{"uniform", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()
			}
			return xs
		}},
		{"exponential", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Exponential(3)
			}
			return xs
		}},
		{"heavy-tail", func(n int) []float64 {
			s := ParetoService(1, 1.2)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = s.sample(rng)
			}
			return xs
		}},
		{"duplicates", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(int(rng.Float64() * 4)) // only 4 distinct values
			}
			return xs
		}},
		{"constant", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 7.25
			}
			return xs
		}},
		{"sorted-asc", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		}},
		{"sorted-desc", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		}},
		{"organ-pipe", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Min(float64(i), float64(n-i))
			}
			return xs
		}},
	}
	sizes := []int{1, 2, 3, 4, 5, 7, 16, 63, 100, 1024, 5000}
	var tape SampleTape
	for _, shape := range shapes {
		for _, n := range sizes {
			xs := shape.gen(n)
			// Reference: stats.Quantile over an independently sorted copy.
			ref := append([]float64(nil), xs...)
			sort.Float64s(ref)
			tape.Reset()
			for _, v := range xs {
				tape.Observe(v)
			}
			for _, q := range qs {
				want := stats.Quantile(ref, q)
				got := tape.Quantile(q)
				if got != want {
					t.Fatalf("%s n=%d q=%v: tape %v != sorted reference %v",
						shape.name, n, q, got, want)
				}
			}
		}
	}
}

func TestQuantileEmptyAndBounds(t *testing.T) {
	var tape SampleTape
	if got := tape.Quantile(0.5); got != 0 {
		t.Errorf("empty tape quantile = %v, want 0", got)
	}
	tape.Observe(3)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v: expected panic", q)
				}
			}()
			tape.Quantile(q)
		}()
	}
}

func TestTapeAppendToPreservesOrder(t *testing.T) {
	var a, b SampleTape
	a.Observe(1)
	a.Observe(2)
	b.Observe(3)
	merged := b.AppendTo(a.AppendTo(nil))
	want := []float64{1, 2, 3}
	if len(merged) != len(want) {
		t.Fatalf("merged %v", merged)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged %v, want %v", merged, want)
		}
	}
}

// TestQuantileAllocFree pins that a warm tape answers quantiles without
// allocating — quickselect works in place on the tape's own slab.
func TestQuantileAllocFree(t *testing.T) {
	var tape SampleTape
	rng := stats.NewRNG(5)
	for i := 0; i < 10000; i++ {
		tape.Observe(rng.Exponential(1))
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = tape.Quantile(0.5)
		_ = tape.Quantile(0.95)
		_ = tape.Quantile(0.99)
	})
	if allocs != 0 {
		t.Errorf("Quantile allocated %.0f times; want 0", allocs)
	}
}
