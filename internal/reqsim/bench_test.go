package reqsim

import (
	"testing"

	"repro/internal/queueing"
)

// benchCfg is the standard bench scenario: ρ = 0.7 exponential service —
// the mid-load regime the fleet actually operates in. One run is ~2·λ·H
// events (arrival + completion per job).
func benchCfg(horizon float64) Config {
	return Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: horizon, Warmup: horizon / 20, Seed: 1,
	}
}

// BenchmarkReqsimEngine measures the core engine: requests/sec is the
// headline number (the issue's floor is 1e6 on one core).
func BenchmarkReqsimEngine(b *testing.B) {
	cfg := benchCfg(10000) // ~140k events, ~70k requests per run
	eng := NewEngine()
	if _, err := eng.Run(cfg, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	var requests int64
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		requests += int64(res.Arrived)
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
		b.ReportMetric(float64(requests)/sec, "requests/s")
	}
	if events > 0 {
		b.ReportMetric(sec*1e9/float64(events), "ns/event")
	}
}

// BenchmarkReqsimEngineTape adds the percentile tape — the configuration
// the slot replayers run — to price the Observe/Quantile overhead.
func BenchmarkReqsimEngineTape(b *testing.B) {
	cfg := benchCfg(10000)
	eng := NewEngine()
	var tape SampleTape
	if _, err := eng.Run(cfg, &tape); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cfg, &tape)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
	}
}

// BenchmarkReqsimHeavyTail prices the Pareto sampler (one Pow per draw).
func BenchmarkReqsimHeavyTail(b *testing.B) {
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ParetoService(1, 1.8),
		Horizon: 10000, Warmup: 500, Seed: 1,
	}
	eng := NewEngine()
	if _, err := eng.Run(cfg, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
	}
}

// BenchmarkReqsimOracle runs the queueing oracle on the identical scenario
// so the engine's speedup is a number in the bench log, not a claim.
func BenchmarkReqsimOracle(b *testing.B) {
	cfg := queueing.Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: queueing.ExponentialService(1),
		Horizon: 10000, Warmup: 500, Seed: 1,
	}
	if _, err := queueing.Simulate(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
