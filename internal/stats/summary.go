package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations and exposes count, mean,
// variance, min and max in O(1) memory using Welford's online algorithm.
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll incorporates every element of xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary for logs and reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the total of xs using Kahan compensated summation, which keeps
// year-long (8760-slot) energy and cost accumulations accurate.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics for empty input or q
// outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile requires q in [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxOf returns the largest element of xs, or 0 for an empty slice.
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the smallest element of xs, or 0 for an empty slice.
func MinOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Scale multiplies every element of xs by c in place and returns xs.
func Scale(xs []float64, c float64) []float64 {
	for i := range xs {
		xs[i] *= c
	}
	return xs
}

// Normalize rescales xs in place so its maximum equals 1, returning xs. A
// slice whose maximum is not positive is returned unchanged.
func Normalize(xs []float64) []float64 {
	m := MaxOf(xs)
	if m <= 0 {
		return xs
	}
	return Scale(xs, 1/m)
}
