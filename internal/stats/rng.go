// Package stats provides the deterministic random-number generation and
// statistics toolkit shared by every stochastic component of the COCA
// reproduction: trace synthesis, renewable-energy weather processes,
// electricity-price noise, the GSD Gibbs sampler, and the event-driven
// queueing simulator.
//
// Everything is seeded explicitly so that experiments are reproducible
// bit-for-bit; no package-level global generator is used.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random generator with convenience samplers
// for the distributions used throughout the simulator. It wraps a PCG source
// from math/rand/v2 and is NOT safe for concurrent use; derive independent
// streams with Split for concurrent components.
type RNG struct {
	r   *rand.Rand
	src *rand.PCG
}

// NewRNG returns a generator seeded with the given seed. Two RNGs created
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	src := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{r: rand.New(src), src: src}
}

// Split derives an independent child generator from the parent stream. The
// child's sequence is fully determined by the parent's seed and the number
// and order of prior Split/sample calls.
func (g *RNG) Split() *RNG {
	src := rand.NewPCG(g.r.Uint64(), g.r.Uint64())
	return &RNG{r: rand.New(src), src: src}
}

// Reseed rewinds the generator to the exact state NewRNG(seed) would
// produce, reusing the existing allocation. It exists so pooled solver
// engines can be re-armed without fresh RNG allocations.
func (g *RNG) Reseed(seed uint64) {
	g.src.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// Clone returns an independent copy positioned at the same point in the
// stream: the clone and the original produce identical future draws without
// affecting each other. Useful for speculative look-ahead that must not
// advance the real stream.
func (g *RNG) Clone() *RNG {
	c := NewRNG(0)
	g.CloneInto(c)
	return c
}

// CloneInto copies the generator state into dst (allocation-free after the
// first use), leaving dst positioned exactly where g is in the stream.
func (g *RNG) CloneInto(dst *RNG) {
	state, err := g.src.MarshalBinary()
	if err != nil {
		// PCG.MarshalBinary cannot fail; keep the invariant loud if the
		// runtime ever changes that.
		panic("stats: PCG MarshalBinary failed: " + err.Error())
	}
	if err := dst.src.UnmarshalBinary(state); err != nil {
		panic("stats: PCG UnmarshalBinary failed: " + err.Error())
	}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Gaussian with parameters mu
// and sigma (of the underlying normal, not of the log-normal itself).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed sample with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// Weibull returns a Weibull(shape, scale) sample via inverse-CDF.
func (g *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull requires positive shape and scale")
	}
	u := g.r.Float64()
	// Guard u == 0, for which -ln(1-u) = 0 is fine; 1-u == 0 cannot occur
	// since Float64 is in [0,1).
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
