package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("streams diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical samples", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must have distinct streams.
	equal := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("split children share %d samples", equal)
	}
	// Split is deterministic given the parent seed and call order.
	parent2 := NewRNG(7)
	d1 := parent2.Split()
	parent2.Split()
	r1 := NewRNG(7).Split()
	if d1.Uint64() != r1.Uint64() {
		t.Fatal("Split is not deterministic")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(g.Normal(3, 2))
	}
	if math.Abs(s.Mean()-3) > 0.05 {
		t.Errorf("Normal mean = %v, want ~3", s.Mean())
	}
	if math.Abs(s.Std()-2) > 0.05 {
		t.Errorf("Normal std = %v, want ~2", s.Std())
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(13)
	var s Summary
	rate := 4.0
	for i := 0; i < 200000; i++ {
		v := g.Exponential(rate)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-1/rate) > 0.01 {
		t.Errorf("Exponential mean = %v, want ~%v", s.Mean(), 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestWeibullMean(t *testing.T) {
	// Weibull with shape 1 is Exponential with mean = scale.
	g := NewRNG(17)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(g.Weibull(1, 2.5))
	}
	if math.Abs(s.Mean()-2.5) > 0.05 {
		t.Errorf("Weibull(1,2.5) mean = %v, want ~2.5", s.Mean())
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	NewRNG(1).Weibull(0, 1)
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(19)
	if g.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !g.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(23)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntNRange(t *testing.T) {
	g := NewRNG(29)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[g.IntN(5)]++
	}
	for k, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("IntN(5) bucket %d count %d far from uniform", k, c)
		}
	}
}
