package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almostEqual(s.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-12) {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Var() != 0 {
		t.Error("single-observation variance should be 0")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Error("single-observation min/max wrong")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for i := range xs {
			// Constrain magnitudes to keep the naive two-pass reference stable.
			xs[i] = math.Mod(xs[i], 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		var s Summary
		s.AddAll(xs)
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return almostEqual(s.Mean(), mean, 1e-9) && almostEqual(s.Var(), variance, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSumKahanAccuracy(t *testing.T) {
	// 1 followed by many tiny values: naive summation in float32-ish patterns
	// loses them; Kahan must not.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("Kahan Sum = %.18f, want %.18f", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, bad := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMinMaxOf(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if MaxOf(xs) != 5 {
		t.Errorf("MaxOf = %v", MaxOf(xs))
	}
	if MinOf(xs) != -1 {
		t.Errorf("MinOf = %v", MinOf(xs))
	}
	if MaxOf(nil) != 0 || MinOf(nil) != 0 {
		t.Error("empty-slice MaxOf/MinOf should be 0")
	}
}

func TestScaleAndNormalize(t *testing.T) {
	xs := []float64{1, 2, 4}
	Scale(xs, 2)
	if xs[2] != 8 {
		t.Errorf("Scale failed: %v", xs)
	}
	Normalize(xs)
	if !almostEqual(MaxOf(xs), 1, 1e-12) {
		t.Errorf("Normalize max = %v", MaxOf(xs))
	}
	// Non-positive max: unchanged.
	ys := []float64{-1, -2}
	Normalize(ys)
	if ys[0] != -1 || ys[1] != -2 {
		t.Errorf("Normalize changed non-positive slice: %v", ys)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}
