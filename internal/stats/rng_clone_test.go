package stats

import "testing"

// TestReseedMatchesFresh pins Reseed's contract: after Reseed(s) a consumed
// generator produces the exact stream NewRNG(s) would.
func TestReseedMatchesFresh(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		g.Float64()
		g.IntN(17)
	}
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		g.Reseed(seed)
		fresh := NewRNG(seed)
		for i := 0; i < 200; i++ {
			if a, b := g.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d draw %d: %d != %d", seed, i, a, b)
			}
		}
	}
}

// TestCloneStreamsIdenticalAndIndependent pins Clone/CloneInto: the clone
// continues the parent's stream exactly, and advancing one never moves the
// other.
func TestCloneStreamsIdenticalAndIndependent(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 123; i++ {
		g.Float64()
	}
	c := g.Clone()
	for i := 0; i < 500; i++ {
		if a, b := g.Float64(), c.Float64(); a != b {
			t.Fatalf("draw %d: clone diverged (%v != %v)", i, a, b)
		}
	}
	// Advance only the clone; the parent must be unaffected.
	ref := g.Clone()
	for i := 0; i < 50; i++ {
		c.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a, b := g.Uint64(), ref.Uint64(); a != b {
			t.Fatalf("draw %d: advancing a clone moved the parent", i)
		}
	}
}

// TestCloneIntoReuses checks CloneInto re-targets an existing generator
// in place (the speculative engine clones into one long-lived buffer).
func TestCloneIntoReuses(t *testing.T) {
	g := NewRNG(3)
	dst := NewRNG(999)
	dst.Float64()
	g.CloneInto(dst)
	for i := 0; i < 100; i++ {
		if a, b := g.Float64(), dst.Float64(); a != b {
			t.Fatalf("draw %d: CloneInto target diverged", i)
		}
	}
}
