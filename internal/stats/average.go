package stats

// MovingAverage computes the trailing moving average of a fixed window over a
// stream, as used for the 45-day (1080-hour) smoothing in the paper's
// Fig. 2(c,d). Until the window fills, the average is over the observations
// seen so far. The zero value is not usable; construct with NewMovingAverage.
type MovingAverage struct {
	window []float64
	next   int
	filled bool
	sum    float64
}

// NewMovingAverage returns a moving average over the given window size.
// It panics if window <= 0.
func NewMovingAverage(window int) *MovingAverage {
	if window <= 0 {
		panic("stats: NewMovingAverage requires window > 0")
	}
	return &MovingAverage{window: make([]float64, window)}
}

// Add pushes an observation and returns the current moving average.
func (m *MovingAverage) Add(x float64) float64 {
	if m.filled {
		m.sum -= m.window[m.next]
	}
	m.window[m.next] = x
	m.sum += x
	m.next++
	if m.next == len(m.window) {
		m.next = 0
		m.filled = true
	}
	return m.Value()
}

// Value returns the current moving average (0 if nothing added yet).
func (m *MovingAverage) Value() float64 {
	n := m.N()
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// N returns the number of observations currently inside the window.
func (m *MovingAverage) N() int {
	if m.filled {
		return len(m.window)
	}
	return m.next
}

// Window returns the configured window size.
func (m *MovingAverage) Window() int { return len(m.window) }

// RunningAverage computes the prefix mean of a stream: after t+1 additions it
// holds (1/(t+1))·Σ_{τ=0..t} x(τ). This matches the averaging used in the
// paper's Fig. 3 ("summing up all the values from time 0 to time t and then
// dividing the sum by t+1"). The zero value is ready to use.
type RunningAverage struct {
	n   int
	sum float64
	c   float64 // Kahan compensation
}

// Add pushes an observation and returns the running average.
func (r *RunningAverage) Add(x float64) float64 {
	y := x - r.c
	t := r.sum + y
	r.c = (t - r.sum) - y
	r.sum = t
	r.n++
	return r.Value()
}

// Value returns the current running average (0 if nothing added yet).
func (r *RunningAverage) Value() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// N returns the number of observations.
func (r *RunningAverage) N() int { return r.n }

// MovingAverageSeries maps a full series through a trailing moving average of
// the given window, returning a series of equal length.
func MovingAverageSeries(xs []float64, window int) []float64 {
	ma := NewMovingAverage(window)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = ma.Add(x)
	}
	return out
}

// RunningAverageSeries maps a full series through the prefix mean, returning
// a series of equal length.
func RunningAverageSeries(xs []float64) []float64 {
	var ra RunningAverage
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = ra.Add(x)
	}
	return out
}

// AR1 is a first-order autoregressive process
// x(t+1) = mean + phi·(x(t) − mean) + sigma·ε, ε ~ N(0,1),
// used for weather-driven renewable output and price noise. Values may be
// clamped to [Lo, Hi] when Clamp is true.
type AR1 struct {
	Mean  float64
	Phi   float64
	Sigma float64
	Clamp bool
	Lo    float64
	Hi    float64

	x       float64
	started bool
}

// Next advances the process one step using rng and returns the new value.
func (a *AR1) Next(rng *RNG) float64 {
	if !a.started {
		a.x = a.Mean
		a.started = true
	}
	a.x = a.Mean + a.Phi*(a.x-a.Mean) + rng.Normal(0, a.Sigma)
	if a.Clamp {
		if a.x < a.Lo {
			a.x = a.Lo
		}
		if a.x > a.Hi {
			a.x = a.Hi
		}
	}
	return a.x
}
