package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMovingAverageWarmup(t *testing.T) {
	ma := NewMovingAverage(3)
	if got := ma.Add(3); got != 3 {
		t.Errorf("after 1 add: %v", got)
	}
	if got := ma.Add(5); got != 4 {
		t.Errorf("after 2 adds: %v", got)
	}
	if got := ma.Add(7); got != 5 {
		t.Errorf("after 3 adds: %v", got)
	}
	// Window slides: {5,7,9} -> 7.
	if got := ma.Add(9); got != 7 {
		t.Errorf("after slide: %v", got)
	}
	if ma.N() != 3 || ma.Window() != 3 {
		t.Errorf("N=%d Window=%d", ma.N(), ma.Window())
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMovingAverage(0)
}

func TestMovingAverageMatchesBruteForce(t *testing.T) {
	g := NewRNG(5)
	const window = 7
	ma := NewMovingAverage(window)
	var hist []float64
	for i := 0; i < 500; i++ {
		x := g.Uniform(-10, 10)
		hist = append(hist, x)
		got := ma.Add(x)
		lo := 0
		if len(hist) > window {
			lo = len(hist) - window
		}
		want := Mean(hist[lo:])
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("step %d: got %v, want %v", i, got, want)
		}
	}
}

func TestRunningAverage(t *testing.T) {
	var ra RunningAverage
	if ra.Value() != 0 {
		t.Error("empty running average != 0")
	}
	ra.Add(2)
	ra.Add(4)
	if got := ra.Add(9); math.Abs(got-5) > 1e-12 {
		t.Errorf("running average = %v, want 5", got)
	}
	if ra.N() != 3 {
		t.Errorf("N = %d", ra.N())
	}
}

func TestRunningAverageSeriesMatchesPrefixMeans(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i := range raw {
			xs[i] = math.Mod(raw[i], 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		out := RunningAverageSeries(xs)
		for i := range xs {
			if !almostEqual(out[i], Mean(xs[:i+1]), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageSeriesLength(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	out := MovingAverageSeries(xs, 2)
	if len(out) != len(xs) {
		t.Fatalf("length %d, want %d", len(out), len(xs))
	}
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestAR1MeanReversion(t *testing.T) {
	g := NewRNG(31)
	p := &AR1{Mean: 10, Phi: 0.9, Sigma: 1}
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(p.Next(g))
	}
	if math.Abs(s.Mean()-10) > 0.2 {
		t.Errorf("AR1 mean = %v, want ~10", s.Mean())
	}
	// Stationary std of AR(1) is sigma/sqrt(1-phi^2) ≈ 2.294.
	wantStd := 1 / math.Sqrt(1-0.81)
	if math.Abs(s.Std()-wantStd) > 0.15 {
		t.Errorf("AR1 std = %v, want ~%v", s.Std(), wantStd)
	}
}

func TestAR1Clamp(t *testing.T) {
	g := NewRNG(37)
	p := &AR1{Mean: 0, Phi: 0.5, Sigma: 5, Clamp: true, Lo: -1, Hi: 1}
	for i := 0; i < 10000; i++ {
		v := p.Next(g)
		if v < -1 || v > 1 {
			t.Fatalf("clamped AR1 escaped bounds: %v", v)
		}
	}
}
