package queueing

import (
	"errors"
	"math"
	"testing"
)

func TestMeanJobsMatchesAnalytic(t *testing.T) {
	// E[N] = ρ/(1−ρ) for M/M/1 ≡ M/M/1/PS.
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.85} {
		cfg := Config{
			ArrivalRPS: rho * 10,
			ServiceRPS: 10,
			Service:    ExponentialService(1),
			Horizon:    60000,
			Warmup:     3000,
			Seed:       1,
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticMeanJobs(cfg.ArrivalRPS, cfg.ServiceRPS)
		if math.Abs(res.MeanJobs-want) > 0.08*want+0.05 {
			t.Errorf("ρ=%v: mean jobs %v, analytic %v", rho, res.MeanJobs, want)
		}
		if math.Abs(res.UtilFraction-rho) > 0.03 {
			t.Errorf("ρ=%v: measured utilization %v", rho, res.UtilFraction)
		}
	}
}

func TestPSInsensitivity(t *testing.T) {
	// The PS mean number in system depends on the service distribution only
	// through its mean — the property that justifies using Eq. (4) for
	// general ("mice-type") workloads.
	const rho = 0.7
	base := Config{
		ArrivalRPS: rho * 10,
		ServiceRPS: 10,
		Horizon:    80000,
		Warmup:     4000,
		Seed:       2,
	}
	want := AnalyticMeanJobs(base.ArrivalRPS, base.ServiceRPS)
	dists := map[string]ServiceDist{
		"exponential":   ExponentialService(1),
		"deterministic": DeterministicService(1),
		"hyperexp":      HyperexpService(1, 0.15),
	}
	for name, d := range dists {
		cfg := base
		cfg.Service = d
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.MeanJobs-want) > 0.12*want {
			t.Errorf("%s: mean jobs %v, want ≈ %v (insensitivity violated)",
				name, res.MeanJobs, want)
		}
	}
}

func TestLittlesLaw(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 6,
		ServiceRPS: 10,
		Service:    ExponentialService(1),
		Horizon:    50000,
		Warmup:     2000,
		Seed:       3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// N = λ·T (no drops here, so effective λ is the offered λ).
	n := cfg.ArrivalRPS * res.MeanRespSec
	if math.Abs(n-res.MeanJobs) > 0.1*res.MeanJobs {
		t.Errorf("Little's law: λT = %v vs N = %v", n, res.MeanJobs)
	}
}

func TestPaperServiceTimes(t *testing.T) {
	// §5.1: mean service time 100 ms at full speed (x = 10 req/s). A lone
	// job must take ≈ 100 ms.
	cfg := Config{
		ArrivalRPS: 0.01, // essentially always alone
		ServiceRPS: 10,
		Service:    ExponentialService(1),
		Horizon:    2e6,
		Warmup:     1000,
		Seed:       4,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanRespSec-0.1) > 0.01 {
		t.Errorf("lone-job response = %v s, want ≈ 0.1", res.MeanRespSec)
	}
}

func TestMaxJobsDrops(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 20, // overloaded
		ServiceRPS: 10,
		Service:    ExponentialService(1),
		Horizon:    5000,
		Warmup:     100,
		Seed:       5,
		MaxJobs:    50,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("overloaded finite queue never dropped")
	}
	if res.MeanJobs > 51 {
		t.Errorf("mean jobs %v exceeds cap", res.MeanJobs)
	}
}

func TestZeroArrivals(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 0,
		ServiceRPS: 10,
		Service:    ExponentialService(1),
		Horizon:    100,
		Seed:       6,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanJobs != 0 || res.Completed != 0 {
		t.Errorf("empty system: %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ArrivalRPS: -1, ServiceRPS: 1, Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 0, Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: nil, Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: 0},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: 1, Warmup: 2},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: 1, Warmup: 1},
		{ArrivalRPS: math.NaN(), ServiceRPS: 1, Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: math.Inf(1), ServiceRPS: 1, Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: math.NaN(), Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: math.NaN()},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: math.Inf(1)},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: 2, Warmup: math.NaN()},
		{ArrivalRPS: 1, ServiceRPS: 2, Service: ExponentialService(1), Horizon: 1, MaxJobs: -1},
		// Unstable (ρ >= 1) without a MaxJobs cap: the run would "measure"
		// a horizon artifact, not a steady state.
		{ArrivalRPS: 2, ServiceRPS: 1, Service: ExponentialService(1), Horizon: 1},
		{ArrivalRPS: 1, ServiceRPS: 1, Service: ExponentialService(1), Horizon: 1},
	}
	for i, cfg := range bad {
		_, err := Simulate(cfg)
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
	// ρ >= 1 is legal when MaxJobs makes the system finite (loss system).
	ok := Config{ArrivalRPS: 2, ServiceRPS: 1, Service: ExponentialService(1),
		Horizon: 10, MaxJobs: 5}
	if _, err := Simulate(ok); err != nil {
		t.Errorf("capped unstable system should simulate, got %v", err)
	}
}

// TestSimulateAllocsBounded pins the oracle's allocation behavior: the
// per-run count must be O(1) — the RNG, the closure environment and
// amortized heap slab growth — never O(events). The old container/heap
// implementation boxed one `any` per arrival, which at ~14k events would
// blow this bound by two orders of magnitude.
func TestSimulateAllocsBounded(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 7, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 2000, Warmup: 100, Seed: 11,
	}
	// Warm once so lazy runtime state doesn't count.
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Simulate(cfg); err != nil {
			t.Error(err)
		}
	})
	// ~14k arrivals per run; O(1) setup allocations only.
	if allocs > 40 {
		t.Errorf("Simulate allocated %.0f times per run; want O(1), not O(events)", allocs)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := Config{
		ArrivalRPS: 5, ServiceRPS: 10, Service: ExponentialService(1),
		Horizon: 1000, Warmup: 10, Seed: 7,
	}
	a, _ := Simulate(cfg)
	b, _ := Simulate(cfg)
	if a != b {
		t.Error("same seed gave different results")
	}
}

func TestHyperexpPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HyperexpService(1, 1.5)
}

func TestAnalyticSaturation(t *testing.T) {
	if !math.IsInf(AnalyticMeanJobs(10, 10), 1) {
		t.Error("saturated queue should predict +Inf")
	}
	if got := AnalyticMeanJobs(5, 10); got != 1 {
		t.Errorf("ρ=0.5 analytic = %v, want 1", got)
	}
}
