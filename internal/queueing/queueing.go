// Package queueing is an event-driven M/G/1/PS (processor-sharing)
// simulator. The paper's delay cost Eq. (4) is the M/G/1/PS mean number in
// system, λ/(x − λ); this package provides the discrete-event machinery to
// validate that analytic model (including its celebrated insensitivity to
// the service-time distribution beyond its mean) and to measure empirical
// delays for configurations chosen by the resource-management algorithms.
//
// The simulator exploits the fair-share clock: under PS every job in the
// system accumulates service at rate x/n(t), so with F(t) defined by
// dF/dt = x/n(t), a job arriving at time a with requirement S completes
// when F reaches F(a) + S. Tracking jobs in a min-heap keyed by that
// completion level makes every event O(log n).
//
// This package is the small, obviously-correct oracle. The high-throughput
// engine in internal/reqsim is parity-tested bit-for-bit against it, so it
// stays deliberately simple — but not wasteful: the job heap is a plain
// slice (no container/heap interface boxing, which allocated one `any` per
// arrival), and the built-in service distributions hoist their parameter
// arithmetic out of the per-event sampling path. TestSimulateAllocsBounded
// pins the per-run allocation count so the oracle's own benchmarks stay
// honest.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// ServiceDist samples i.i.d. service requirements (in units of work; a
// server at rate x completes one unit of work per 1/x seconds — so a
// requirement of 1 at rate 10 takes 100 ms alone, the paper's §5.1 setup).
type ServiceDist func(rng *stats.RNG) float64

// ExponentialService returns an exponential requirement distribution with
// the given mean. The rate 1/mean is computed once here, not per sample.
func ExponentialService(mean float64) ServiceDist {
	rate := 1 / mean
	return func(rng *stats.RNG) float64 { return rng.Exponential(rate) }
}

// DeterministicService returns a constant requirement.
func DeterministicService(mean float64) ServiceDist {
	return func(*stats.RNG) float64 { return mean }
}

// HyperexpService returns a two-phase hyperexponential requirement with the
// given mean and a coefficient of variation above 1 — a high-variance
// distribution to exercise the PS insensitivity property. p balances the
// two phases (0 < p < 1); phase means are mean/(2p) and mean/(2(1−p)).
// Both phase rates are precomputed, so sampling costs two RNG draws and no
// arithmetic on the hot path.
func HyperexpService(mean, p float64) ServiceDist {
	if p <= 0 || p >= 1 {
		panic("queueing: HyperexpService requires p in (0,1)")
	}
	r1 := 1 / (mean / (2 * p))
	r2 := 1 / (mean / (2 * (1 - p)))
	return func(rng *stats.RNG) float64 {
		if rng.Bernoulli(p) {
			return rng.Exponential(r1)
		}
		return rng.Exponential(r2)
	}
}

// Config configures one PS simulation run.
type Config struct {
	ArrivalRPS float64     // λ: Poisson arrival rate
	ServiceRPS float64     // x: server speed in units of work per second
	Service    ServiceDist // requirement distribution (mean 1 work-unit by convention)
	Horizon    float64     // simulated seconds
	Warmup     float64     // seconds discarded before measuring
	Seed       uint64
	MaxJobs    int // optional cap on in-system jobs (0 = unlimited); extra arrivals are dropped
}

// ErrBadConfig is the sentinel every validation failure wraps: test with
// errors.Is(err, ErrBadConfig); the full message names the offending field.
var ErrBadConfig = errors.New("queueing: invalid configuration")

// Validate rejects configurations that would silently simulate a
// nonsensical, unstable or empty system. Every error wraps ErrBadConfig and
// names the field, so callers can propagate it verbatim.
func (cfg *Config) Validate() error {
	switch {
	case math.IsNaN(cfg.ArrivalRPS) || math.IsInf(cfg.ArrivalRPS, 0) || cfg.ArrivalRPS < 0:
		return fmt.Errorf("%w: ArrivalRPS %v must be finite and >= 0", ErrBadConfig, cfg.ArrivalRPS)
	case math.IsNaN(cfg.ServiceRPS) || math.IsInf(cfg.ServiceRPS, 0) || cfg.ServiceRPS <= 0:
		return fmt.Errorf("%w: ServiceRPS %v must be finite and > 0", ErrBadConfig, cfg.ServiceRPS)
	case cfg.Service == nil:
		return fmt.Errorf("%w: nil Service distribution", ErrBadConfig)
	case math.IsNaN(cfg.Horizon) || math.IsInf(cfg.Horizon, 0) || cfg.Horizon <= 0:
		return fmt.Errorf("%w: Horizon %v must be finite and > 0", ErrBadConfig, cfg.Horizon)
	case math.IsNaN(cfg.Warmup) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon:
		return fmt.Errorf("%w: Warmup %v must be in [0, Horizon %v)", ErrBadConfig, cfg.Warmup, cfg.Horizon)
	case cfg.MaxJobs < 0:
		return fmt.Errorf("%w: MaxJobs %d must be >= 0", ErrBadConfig, cfg.MaxJobs)
	case cfg.MaxJobs == 0 && cfg.ArrivalRPS >= cfg.ServiceRPS:
		// With mean-1 requirements ρ = λ/x; an uncapped queue at ρ ≥ 1 has
		// no steady state — the "measurement" would be an artifact of the
		// horizon. A MaxJobs cap makes the system finite and is allowed.
		return fmt.Errorf("%w: unstable system (ArrivalRPS %v >= ServiceRPS %v, utilization >= 1) without a MaxJobs cap",
			ErrBadConfig, cfg.ArrivalRPS, cfg.ServiceRPS)
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	MeanJobs     float64 // time-averaged number in system (compare to λ/(x−λ))
	MeanRespSec  float64 // mean response time of completed jobs
	Completed    int
	Dropped      int
	UtilFraction float64 // measured busy fraction (compare to ρ = λ·E[S]/x)
}

// job is one in-system customer keyed by the fair-share level at which it
// finishes.
type job struct {
	doneAt  float64 // F level at completion
	arrival float64 // wall-clock arrival time
}

// jobHeap is a plain binary min-heap on doneAt. It deliberately does not
// implement container/heap: the interface's Push(any) boxes every job into
// an interface value, one heap allocation per arrival — measurable noise in
// an oracle that exists to calibrate benchmarks. Push/pop sift exactly as
// container/heap does, so the event order is unchanged.
type jobHeap []job

func (h *jobHeap) push(j job) {
	*h = append(*h, j)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].doneAt <= s[i].doneAt {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *jobHeap) popMin() job {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && s[right].doneAt < s[left].doneAt {
			m = right
		}
		if s[i].doneAt <= s[m].doneAt {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Simulate runs the event-driven M/G/1/PS simulation.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewRNG(cfg.Seed)

	var (
		now      float64 // wall clock
		fair     float64 // fair-share clock F(t)
		h        jobHeap
		res      Result
		areaJobs float64 // ∫ n dt after warmup
		busyTime float64 // time with n > 0 after warmup
		respSum  float64
		measured float64 // time measured
	)
	nextArrival := now
	if cfg.ArrivalRPS > 0 {
		nextArrival = now + rng.Exponential(cfg.ArrivalRPS)
	} else {
		nextArrival = math.Inf(1)
	}

	advance := func(to float64) {
		dt := to - now
		if dt < 0 {
			dt = 0
		}
		n := float64(len(h))
		if now >= cfg.Warmup {
			areaJobs += n * dt
			measured += dt
			if n > 0 {
				busyTime += dt
			}
		} else if to > cfg.Warmup {
			// Split the interval at the warmup boundary.
			post := to - cfg.Warmup
			areaJobs += n * post
			measured += post
			if n > 0 {
				busyTime += post
			}
		}
		if n > 0 {
			fair += dt * cfg.ServiceRPS / n
		}
		now = to
	}

	for now < cfg.Horizon {
		// Next completion in wall-clock terms.
		nextDone := math.Inf(1)
		if len(h) > 0 {
			nextDone = now + (h[0].doneAt-fair)*float64(len(h))/cfg.ServiceRPS
		}
		next := math.Min(nextArrival, nextDone)
		if next > cfg.Horizon {
			advance(cfg.Horizon)
			break
		}
		advance(next)
		if next == nextDone && len(h) > 0 {
			j := h.popMin()
			if j.arrival >= cfg.Warmup {
				res.Completed++
				respSum += now - j.arrival
			}
			continue
		}
		// Arrival.
		if cfg.MaxJobs > 0 && len(h) >= cfg.MaxJobs {
			res.Dropped++
		} else {
			h.push(job{doneAt: fair + cfg.Service(rng), arrival: now})
		}
		nextArrival = now + rng.Exponential(cfg.ArrivalRPS)
	}

	if measured > 0 {
		res.MeanJobs = areaJobs / measured
		res.UtilFraction = busyTime / measured
	}
	if res.Completed > 0 {
		res.MeanRespSec = respSum / float64(res.Completed)
	}
	return res, nil
}

// AnalyticMeanJobs returns the M/G/1/PS prediction λ/(x − λ) used by the
// paper's delay cost (Eq. 4), with service requirements of mean 1 work-unit
// so that utilization is ρ = λ/x. It returns +Inf at or beyond saturation.
func AnalyticMeanJobs(arrivalRPS, serviceRPS float64) float64 {
	if arrivalRPS >= serviceRPS {
		return math.Inf(1)
	}
	return arrivalRPS / (serviceRPS - arrivalRPS)
}
