// Package queueing is an event-driven M/G/1/PS (processor-sharing)
// simulator. The paper's delay cost Eq. (4) is the M/G/1/PS mean number in
// system, λ/(x − λ); this package provides the discrete-event machinery to
// validate that analytic model (including its celebrated insensitivity to
// the service-time distribution beyond its mean) and to measure empirical
// delays for configurations chosen by the resource-management algorithms.
//
// The simulator exploits the fair-share clock: under PS every job in the
// system accumulates service at rate x/n(t), so with F(t) defined by
// dF/dt = x/n(t), a job arriving at time a with requirement S completes
// when F reaches F(a) + S. Tracking jobs in a min-heap keyed by that
// completion level makes every event O(log n).
package queueing

import (
	"container/heap"
	"errors"
	"math"

	"repro/internal/stats"
)

// ServiceDist samples i.i.d. service requirements (in units of work; a
// server at rate x completes one unit of work per 1/x seconds — so a
// requirement of 1 at rate 10 takes 100 ms alone, the paper's §5.1 setup).
type ServiceDist func(rng *stats.RNG) float64

// ExponentialService returns an exponential requirement distribution with
// the given mean.
func ExponentialService(mean float64) ServiceDist {
	return func(rng *stats.RNG) float64 { return rng.Exponential(1 / mean) }
}

// DeterministicService returns a constant requirement.
func DeterministicService(mean float64) ServiceDist {
	return func(*stats.RNG) float64 { return mean }
}

// HyperexpService returns a two-phase hyperexponential requirement with the
// given mean and a coefficient of variation above 1 — a high-variance
// distribution to exercise the PS insensitivity property. p balances the
// two phases (0 < p < 1); phase means are mean/(2p) and mean/(2(1−p)).
func HyperexpService(mean, p float64) ServiceDist {
	if p <= 0 || p >= 1 {
		panic("queueing: HyperexpService requires p in (0,1)")
	}
	m1 := mean / (2 * p)
	m2 := mean / (2 * (1 - p))
	return func(rng *stats.RNG) float64 {
		if rng.Bernoulli(p) {
			return rng.Exponential(1 / m1)
		}
		return rng.Exponential(1 / m2)
	}
}

// Config configures one PS simulation run.
type Config struct {
	ArrivalRPS float64     // λ: Poisson arrival rate
	ServiceRPS float64     // x: server speed in units of work per second
	Service    ServiceDist // requirement distribution (mean 1 work-unit by convention)
	Horizon    float64     // simulated seconds
	Warmup     float64     // seconds discarded before measuring
	Seed       uint64
	MaxJobs    int // optional cap on in-system jobs (0 = unlimited); extra arrivals are dropped
}

// Result summarizes a run.
type Result struct {
	MeanJobs     float64 // time-averaged number in system (compare to λ/(x−λ))
	MeanRespSec  float64 // mean response time of completed jobs
	Completed    int
	Dropped      int
	UtilFraction float64 // measured busy fraction (compare to ρ = λ·E[S]/x)
}

// ErrBadConfig reports invalid simulation parameters.
var ErrBadConfig = errors.New("queueing: invalid configuration")

// job is one in-system customer keyed by the fair-share level at which it
// finishes.
type job struct {
	doneAt  float64 // F level at completion
	arrival float64 // wall-clock arrival time
}

type jobHeap []job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].doneAt < h[j].doneAt }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(job)) }
func (h *jobHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h jobHeap) Peek() job          { return h[0] }

// Simulate runs the event-driven M/G/1/PS simulation.
func Simulate(cfg Config) (Result, error) {
	if cfg.ArrivalRPS < 0 || cfg.ServiceRPS <= 0 || cfg.Service == nil || cfg.Horizon <= 0 {
		return Result{}, ErrBadConfig
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return Result{}, ErrBadConfig
	}
	rng := stats.NewRNG(cfg.Seed)

	var (
		now      float64 // wall clock
		fair     float64 // fair-share clock F(t)
		h        jobHeap
		res      Result
		areaJobs float64 // ∫ n dt after warmup
		busyTime float64 // time with n > 0 after warmup
		respSum  float64
		measured float64 // time measured
	)
	nextArrival := now
	if cfg.ArrivalRPS > 0 {
		nextArrival = now + rng.Exponential(cfg.ArrivalRPS)
	} else {
		nextArrival = math.Inf(1)
	}

	advance := func(to float64) {
		dt := to - now
		if dt < 0 {
			dt = 0
		}
		n := float64(len(h))
		if now >= cfg.Warmup {
			areaJobs += n * dt
			measured += dt
			if n > 0 {
				busyTime += dt
			}
		} else if to > cfg.Warmup {
			// Split the interval at the warmup boundary.
			post := to - cfg.Warmup
			areaJobs += n * post
			measured += post
			if n > 0 {
				busyTime += post
			}
		}
		if n > 0 {
			fair += dt * cfg.ServiceRPS / n
		}
		now = to
	}

	for now < cfg.Horizon {
		// Next completion in wall-clock terms.
		nextDone := math.Inf(1)
		if len(h) > 0 {
			nextDone = now + (h.Peek().doneAt-fair)*float64(len(h))/cfg.ServiceRPS
		}
		next := math.Min(nextArrival, nextDone)
		if next > cfg.Horizon {
			advance(cfg.Horizon)
			break
		}
		advance(next)
		if next == nextDone && len(h) > 0 {
			j := heap.Pop(&h).(job)
			if j.arrival >= cfg.Warmup {
				res.Completed++
				respSum += now - j.arrival
			}
			continue
		}
		// Arrival.
		if cfg.MaxJobs > 0 && len(h) >= cfg.MaxJobs {
			res.Dropped++
		} else {
			heap.Push(&h, job{doneAt: fair + cfg.Service(rng), arrival: now})
		}
		nextArrival = now + rng.Exponential(cfg.ArrivalRPS)
	}

	if measured > 0 {
		res.MeanJobs = areaJobs / measured
		res.UtilFraction = busyTime / measured
	}
	if res.Completed > 0 {
		res.MeanRespSec = respSum / float64(res.Completed)
	}
	return res, nil
}

// AnalyticMeanJobs returns the M/G/1/PS prediction λ/(x − λ) used by the
// paper's delay cost (Eq. 4), with service requirements of mean 1 work-unit
// so that utilization is ρ = λ/x. It returns +Inf at or beyond saturation.
func AnalyticMeanJobs(arrivalRPS, serviceRPS float64) float64 {
	if arrivalRPS >= serviceRPS {
		return math.Inf(1)
	}
	return arrivalRPS / (serviceRPS - arrivalRPS)
}
