package batch

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/stats"
)

func TestJobValidate(t *testing.T) {
	if err := (Job{ID: 1, SizeServerHours: 1, DeadlineSlot: 2, ArriveSlot: 0}).Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	if err := (Job{SizeServerHours: 0, DeadlineSlot: 2}).Validate(); err == nil {
		t.Error("zero-size job accepted")
	}
	if err := (Job{SizeServerHours: 1, ArriveSlot: 3, DeadlineSlot: 2}).Validate(); err == nil {
		t.Error("deadline-before-arrival accepted")
	}
}

func TestSchedulerCompletesFeasibleJobs(t *testing.T) {
	s := NewScheduler()
	srv := dcmodel.Opteron()
	mustSubmit(t, s, Job{ID: 1, ArriveSlot: 0, SizeServerHours: 3, DeadlineSlot: 2})
	mustSubmit(t, s, Job{ID: 2, ArriveSlot: 1, SizeServerHours: 1, DeadlineSlot: 1})

	r0 := s.Step(2, srv) // job 1 gets 2h
	if r0.UsedServerHours != 2 || len(r0.Completed) != 0 {
		t.Fatalf("slot 0: %+v", r0)
	}
	r1 := s.Step(2, srv) // EDF: job 2 (deadline 1) first, then job 1's last hour
	if r1.UsedServerHours != 2 {
		t.Fatalf("slot 1 used %v", r1.UsedServerHours)
	}
	if !containsAll(r1.Completed, 1, 2) {
		t.Fatalf("slot 1 completed %v, want both", r1.Completed)
	}
	served, done, missed := s.Stats()
	if served != 4 || done != 2 || missed != 0 {
		t.Errorf("stats: served=%v done=%d missed=%d", served, done, missed)
	}
}

func TestSchedulerEDFOrdering(t *testing.T) {
	s := NewScheduler()
	srv := dcmodel.Opteron()
	mustSubmit(t, s, Job{ID: 1, ArriveSlot: 0, SizeServerHours: 1, DeadlineSlot: 10})
	mustSubmit(t, s, Job{ID: 2, ArriveSlot: 0, SizeServerHours: 1, DeadlineSlot: 1})
	r := s.Step(1, srv)
	// Only one server-hour available: the tight-deadline job must win.
	if len(r.Completed) != 1 || r.Completed[0] != 2 {
		t.Fatalf("EDF violated: completed %v", r.Completed)
	}
}

func TestSchedulerMissesImpossibleDeadline(t *testing.T) {
	s := NewScheduler()
	srv := dcmodel.Opteron()
	mustSubmit(t, s, Job{ID: 7, ArriveSlot: 0, SizeServerHours: 5, DeadlineSlot: 0})
	r := s.Step(1, srv)
	if len(r.Missed) != 1 || r.Missed[0] != 7 {
		t.Fatalf("expected a miss: %+v", r)
	}
	if r.UsedServerHours != 1 {
		t.Errorf("should still have served partial work: %v", r.UsedServerHours)
	}
}

func TestSchedulerLateSubmitRejected(t *testing.T) {
	s := NewScheduler()
	s.Step(0, dcmodel.Opteron())
	if err := s.Submit(Job{ID: 1, ArriveSlot: 0, SizeServerHours: 1, DeadlineSlot: 5}); err != ErrLateSubmit {
		t.Errorf("want ErrLateSubmit, got %v", err)
	}
}

func TestSchedulerEnergyAccounting(t *testing.T) {
	s := NewScheduler()
	srv := dcmodel.Opteron()
	mustSubmit(t, s, Job{ID: 1, ArriveSlot: 0, SizeServerHours: 2, DeadlineSlot: 5})
	r := s.Step(2, srv)
	// Full-speed computing power of the Opteron is 91 W.
	want := 2 * 0.091
	if math.Abs(r.EnergyKWh-want) > 1e-12 {
		t.Errorf("energy = %v, want %v", r.EnergyKWh, want)
	}
}

func TestSchedulerNegativeSpare(t *testing.T) {
	s := NewScheduler()
	mustSubmit(t, s, Job{ID: 1, ArriveSlot: 0, SizeServerHours: 1, DeadlineSlot: 5})
	r := s.Step(-3, dcmodel.Opteron())
	if r.UsedServerHours != 0 {
		t.Errorf("negative spare served work: %v", r.UsedServerHours)
	}
}

func TestEDFFeasibilityProperty(t *testing.T) {
	// For job sets that are feasible under some schedule with constant
	// spare capacity, EDF must also complete them (EDF optimality). We
	// generate feasible sets by construction: jobs sized to fit their
	// windows under the per-slot capacity, checked via cumulative demand.
	rng := stats.NewRNG(31)
	srv := dcmodel.Opteron()
	for trial := 0; trial < 30; trial++ {
		const slots = 40
		const spare = 3.0
		// Build jobs whose total demand in every prefix window fits.
		var jobs []Job
		for id := 0; id < 12; id++ {
			arrive := rng.IntN(slots - 5)
			window := 2 + rng.IntN(6)
			deadline := arrive + window
			if deadline >= slots {
				deadline = slots - 1
			}
			jobs = append(jobs, Job{
				ID: id, ArriveSlot: arrive, DeadlineSlot: deadline,
				SizeServerHours: rng.Uniform(0.2, 1.5),
			})
		}
		if !feasibleByMaxFlowApprox(jobs, slots, spare) {
			continue // only assert on provably feasible sets
		}
		s := NewScheduler()
		for _, j := range jobs {
			mustSubmit(t, s, j)
		}
		missed := 0
		for tt := 0; tt < slots; tt++ {
			r := s.Step(spare, srv)
			missed += len(r.Missed)
		}
		if missed > 0 {
			t.Fatalf("trial %d: EDF missed %d jobs on a feasible set", trial, missed)
		}
	}
}

// feasibleByMaxFlowApprox checks the exact feasibility condition for
// identical-capacity slots: for every interval [a, b], the total work of
// jobs fully contained in it must not exceed (b−a+1)·spare. With a single
// pooled machine and preemption this interval condition is necessary and
// sufficient.
func feasibleByMaxFlowApprox(jobs []Job, slots int, spare float64) bool {
	for a := 0; a < slots; a++ {
		for b := a; b < slots; b++ {
			var demand float64
			for _, j := range jobs {
				if j.ArriveSlot >= a && j.DeadlineSlot <= b {
					demand += j.SizeServerHours
				}
			}
			if demand > float64(b-a+1)*spare+1e-9 {
				return false
			}
		}
	}
	return true
}

func TestWorkloadGenerator(t *testing.T) {
	jobs := Workload(5, 100, 1.5, 2, 2, 8)
	if len(jobs) < 100 {
		t.Fatalf("too few jobs: %d", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.DeadlineSlot >= 100 {
			t.Fatalf("deadline beyond horizon: %+v", j)
		}
		if j.DeadlineSlot-j.ArriveSlot > 8 {
			t.Fatalf("slack too large: %+v", j)
		}
	}
	// Deterministic by seed.
	again := Workload(5, 100, 1.5, 2, 2, 8)
	if len(again) != len(jobs) || again[3] != jobs[3] {
		t.Error("workload not deterministic")
	}
}

func TestSpareFromCOCARun(t *testing.T) {
	// Integration: run COCA, derive spare capacity, schedule a batch
	// stream into it, and verify the batch work fits inside the spare.
	sc, _, err := simtest.Build(simtest.Options{Slots: 7 * 24, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(1e5, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	spare := SpareServerHours(sc, res)
	if len(spare) != sc.Slots {
		t.Fatalf("spare length %d", len(spare))
	}
	var anySpare bool
	for i, v := range spare {
		if v < 0 {
			t.Fatalf("negative spare at %d: %v", i, v)
		}
		if v > 0 {
			anySpare = true
		}
	}
	if !anySpare {
		t.Fatal("COCA left no spare capacity at all — implausible")
	}
	s := NewScheduler()
	for _, j := range Workload(9, sc.Slots, 0.5, 1, 3, 12) {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	var used, energy float64
	for tt := 0; tt < sc.Slots; tt++ {
		r := s.Step(spare[tt], sc.Server)
		if r.UsedServerHours > spare[tt]+1e-9 {
			t.Fatalf("slot %d: batch used %v of %v spare", tt, r.UsedServerHours, spare[tt])
		}
		used += r.UsedServerHours
		energy += r.EnergyKWh
	}
	served, done, missed := s.Stats()
	if served != used {
		t.Errorf("served %v != used %v", served, used)
	}
	if done == 0 {
		t.Error("no batch jobs completed over a week")
	}
	t.Logf("batch: %.0f server-hours, %d done, %d missed, %.1f kWh", used, done, missed, energy)
}

func mustSubmit(t *testing.T, s *Scheduler, j Job) {
	t.Helper()
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
}

func containsAll(xs []int, want ...int) bool {
	set := map[int]bool{}
	for _, x := range xs {
		set[x] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}
