// Package batch implements the delay-tolerant batch-job queue that the
// paper isolates from the interactive workload (§2.3: "isolating
// delay-tolerant batch workloads that can be handled by maintaining a
// separate batch job queue"). Batch jobs carry a work size and a deadline
// and are scheduled onto the *spare* cycles of servers the interactive
// policy has already powered on, using earliest-deadline-first (EDF) —
// optimal for feasibility on a single pooled resource.
//
// Work is measured in server-hours at full speed. Running one such hour
// costs the computing (non-static) energy of a fully utilized server,
// since the host is already on for interactive traffic; the scheduler
// reports that energy so callers can charge it against cost and carbon.
package batch

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// Job is one batch request.
type Job struct {
	ID              int
	ArriveSlot      int
	SizeServerHours float64 // total work, in full-speed server-hours
	DeadlineSlot    int     // last slot (inclusive) in which work may run
}

// Validate reports whether the job is well formed.
func (j Job) Validate() error {
	if j.SizeServerHours <= 0 {
		return fmt.Errorf("batch: job %d has non-positive size %v", j.ID, j.SizeServerHours)
	}
	if j.DeadlineSlot < j.ArriveSlot {
		return fmt.Errorf("batch: job %d deadline %d before arrival %d", j.ID, j.DeadlineSlot, j.ArriveSlot)
	}
	return nil
}

// pending is a job in the scheduler with remaining work.
type pending struct {
	Job
	remaining float64
}

type edfHeap []*pending

func (h edfHeap) Len() int           { return len(h) }
func (h edfHeap) Less(i, j int) bool { return h[i].DeadlineSlot < h[j].DeadlineSlot }
func (h edfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)        { *h = append(*h, x.(*pending)) }
func (h *edfHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Scheduler runs EDF over per-slot spare capacity. Feed jobs with Submit
// (any time at or before their arrival slot) and advance with Step.
type Scheduler struct {
	queue    edfHeap
	future   []*pending // submitted but not yet arrived, kept sorted by arrival
	slot     int
	served   float64
	missed   int
	finished int
	tracer   *span.Tracer
	metrics  *telemetry.BatchMetrics
}

// NewScheduler returns an empty scheduler starting at slot 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// SetTracer attaches a span tracer: every subsequent Step records a
// batch.step root span with one batch.run child per job that received
// work and one batch.miss child per expired job. Roots, not ambient
// children, for the same reason as geo: batch schedulers step inside
// pooled experiment closures. Nil (the default) disables tracing.
func (s *Scheduler) SetTracer(tr *span.Tracer) { s.tracer = tr }

// Instrument attaches scheduler metrics, fed by Submit and Step. Nil
// (the default) disables instrumentation.
func (s *Scheduler) Instrument(m *telemetry.BatchMetrics) { s.metrics = m }

// ErrLateSubmit is returned when a job is submitted after its arrival slot
// has already been stepped past.
var ErrLateSubmit = errors.New("batch: job submitted after its arrival slot")

// Submit adds a job. Jobs may be submitted in any order as long as their
// arrival slot has not already passed.
func (s *Scheduler) Submit(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.ArriveSlot < s.slot {
		return ErrLateSubmit
	}
	p := &pending{Job: j, remaining: j.SizeServerHours}
	deferred := j.ArriveSlot != s.slot
	if deferred {
		s.future = append(s.future, p)
	} else {
		heap.Push(&s.queue, p)
	}
	s.metrics.ObserveSubmit(deferred)
	return nil
}

// StepResult reports one slot of batch scheduling.
type StepResult struct {
	Slot            int
	UsedServerHours float64 // spare capacity consumed
	EnergyKWh       float64 // computing energy of the batch work
	Completed       []int   // jobs finished this slot
	Missed          []int   // jobs whose deadline expired unfinished
	Backlog         float64 // remaining work queued after the slot
}

// Step schedules up to spareServerHours of batch work in the current slot
// using EDF, charges its energy via the server type's full-speed computing
// power, and advances the clock. Negative spare is treated as zero.
func (s *Scheduler) Step(spareServerHours float64, server dcmodel.ServerType) StepResult {
	res := StepResult{Slot: s.slot}
	stepSpan := s.tracer.StartRoot("batch.step",
		span.Int("slot", s.slot),
		span.Float("spare_server_hours", math.Max(0, spareServerHours)))
	// Admit arrivals for this slot.
	rest := s.future[:0]
	for _, p := range s.future {
		if p.ArriveSlot == s.slot {
			heap.Push(&s.queue, p)
		} else {
			rest = append(rest, p)
		}
	}
	s.future = rest

	capacity := math.Max(0, spareServerHours)
	for capacity > 0 && s.queue.Len() > 0 {
		p := s.queue[0]
		if p.DeadlineSlot < s.slot {
			heap.Pop(&s.queue)
			res.Missed = append(res.Missed, p.ID)
			s.missed++
			if stepSpan != nil {
				stepSpan.Child("batch.miss",
					span.Int("job", p.ID), span.Int("deadline", p.DeadlineSlot),
					span.Float("unfinished_hours", p.remaining)).End()
			}
			continue
		}
		take := math.Min(capacity, p.remaining)
		p.remaining -= take
		capacity -= take
		res.UsedServerHours += take
		done := p.remaining <= 1e-12
		if done {
			heap.Pop(&s.queue)
			res.Completed = append(res.Completed, p.ID)
			s.finished++
		}
		if stepSpan != nil {
			stepSpan.Child("batch.run",
				span.Int("job", p.ID), span.Int("deadline", p.DeadlineSlot),
				span.Float("served_hours", take),
				span.Float("remaining_hours", p.remaining),
				span.Bool("completed", done)).End()
		}
	}
	// Expire anything whose deadline is this slot and still unfinished.
	for s.queue.Len() > 0 && s.queue[0].DeadlineSlot <= s.slot {
		p := heap.Pop(&s.queue).(*pending)
		if p.remaining > 1e-12 {
			res.Missed = append(res.Missed, p.ID)
			s.missed++
			if stepSpan != nil {
				stepSpan.Child("batch.miss",
					span.Int("job", p.ID), span.Int("deadline", p.DeadlineSlot),
					span.Float("unfinished_hours", p.remaining)).End()
			}
		}
	}
	for _, p := range s.queue {
		res.Backlog += p.remaining
	}
	for _, p := range s.future {
		res.Backlog += p.remaining
	}
	res.EnergyKWh = res.UsedServerHours * server.ComputingKW(server.NumSpeeds())
	s.served += res.UsedServerHours
	s.metrics.ObserveStep(res.UsedServerHours, res.EnergyKWh,
		len(res.Completed), len(res.Missed), s.queue.Len(), res.Backlog)
	if stepSpan != nil {
		stepSpan.Set(
			span.Float("used_server_hours", res.UsedServerHours),
			span.Float("energy_kwh", res.EnergyKWh),
			span.Int("completed", len(res.Completed)),
			span.Int("missed", len(res.Missed)),
			span.Float("backlog_hours", res.Backlog))
		stepSpan.End()
	}
	s.slot++
	return res
}

// Stats returns cumulative totals: work served (server-hours), jobs
// completed, jobs missed.
func (s *Scheduler) Stats() (served float64, completed, missed int) {
	return s.served, s.finished, s.missed
}

// Slot returns the next slot to be stepped.
func (s *Scheduler) Slot() int { return s.slot }

// SpareServerHours derives the per-slot spare capacity left behind by an
// interactive policy's run: for each slot, the γ-capped headroom of the
// powered-on servers, converted to full-speed server-hours over the slot's
// duration (the scenario's SlotHours via the shared Ledger, default 1
// hour). This is the capacity batch jobs can use without powering on
// anything new.
func SpareServerHours(sc *sim.Scenario, res *sim.Result) []float64 {
	out := make([]float64, len(res.Records))
	maxRate := sc.Server.MaxRate()
	hours := dcmodel.Ledger{SlotHours: sc.SlotHours}.Hours()
	for i, rec := range res.Records {
		if rec.Active == 0 || rec.Speed == 0 {
			continue
		}
		capRPS := sc.Gamma * sc.Server.Rate(rec.Speed) * float64(rec.Active)
		spareRPS := capRPS - rec.LambdaRPS
		if spareRPS > 0 {
			out[i] = spareRPS / maxRate * hours
		}
	}
	return out
}

// Workload synthesizes a deterministic batch-job stream: jobs arrive at a
// Poisson-like rate with lognormal sizes and uniform slack before their
// deadlines. Deadlines are clamped to the horizon.
func Workload(seed uint64, slots int, jobsPerSlot, meanSizeServerHours float64, minSlack, maxSlack int) []Job {
	rng := stats.NewRNG(seed)
	var jobs []Job
	id := 0
	for t := 0; t < slots; t++ {
		n := int(jobsPerSlot)
		if rng.Float64() < jobsPerSlot-math.Floor(jobsPerSlot) {
			n++
		}
		for k := 0; k < n; k++ {
			slack := minSlack
			if maxSlack > minSlack {
				slack += rng.IntN(maxSlack - minSlack + 1)
			}
			deadline := t + slack
			if deadline >= slots {
				deadline = slots - 1
			}
			if deadline < t {
				deadline = t
			}
			jobs = append(jobs, Job{
				ID:              id,
				ArriveSlot:      t,
				SizeServerHours: meanSizeServerHours * rng.LogNormal(-0.125, 0.5),
				DeadlineSlot:    deadline,
			})
			id++
		}
	}
	return jobs
}
