package batch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

func readSpans(t *testing.T, tr *span.Tracer) []span.Record {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []span.Record
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var r span.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("span line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// runTraceSchedule drives a fixed four-slot EDF schedule with 1 spare
// server-hour per slot: job 1 completes at its deadline, job 2 is too big
// and expires, job 3 arrives late (deferred) and completes.
func runTraceSchedule(t *testing.T, s *Scheduler) []StepResult {
	t.Helper()
	srv := dcmodel.Opteron()
	mustSubmit(t, s, Job{ID: 1, ArriveSlot: 0, SizeServerHours: 2, DeadlineSlot: 1})
	mustSubmit(t, s, Job{ID: 2, ArriveSlot: 0, SizeServerHours: 10, DeadlineSlot: 2})
	mustSubmit(t, s, Job{ID: 3, ArriveSlot: 2, SizeServerHours: 1, DeadlineSlot: 5})
	var results []StepResult
	for slot := 0; slot < 4; slot++ {
		results = append(results, s.Step(1, srv))
	}
	return results
}

// TestStepTracedSpans pins the scheduler span topology: one batch.step
// root per slot with a batch.run child per EDF allocation and a
// batch.miss child per expired deadline.
func TestStepTracedSpans(t *testing.T) {
	s := NewScheduler()
	tr := span.NewTracer()
	s.SetTracer(tr)
	runTraceSchedule(t, s)

	recs := readSpans(t, tr)
	stepIDs := make(map[uint64]float64) // span id -> slot attr
	var runs, misses []span.Record
	for _, r := range recs {
		switch r.Name {
		case "batch.step":
			if r.Parent != 0 {
				t.Fatalf("batch.step has parent %d, want root", r.Parent)
			}
			stepIDs[r.ID] = r.Attrs["slot"].(float64)
		case "batch.run":
			runs = append(runs, r)
		case "batch.miss":
			misses = append(misses, r)
		}
	}
	if len(stepIDs) != 4 {
		t.Fatalf("%d batch.step spans, want 4", len(stepIDs))
	}
	// Allocations: job 1 in slots 0-1, job 2 in slot 2, job 3 in slot 3.
	wantRuns := map[float64]float64{0: 1, 1: 1, 2: 2, 3: 3} // slot -> job
	if len(runs) != len(wantRuns) {
		t.Fatalf("%d batch.run spans, want %d", len(runs), len(wantRuns))
	}
	completed := 0
	for i, r := range runs {
		slot, ok := stepIDs[r.Parent]
		if !ok {
			t.Fatalf("batch.run %d parented to %d, not a batch.step", i, r.Parent)
		}
		if job := r.Attrs["job"]; job != wantRuns[slot] {
			t.Fatalf("slot %v ran job %v, want %v", slot, job, wantRuns[slot])
		}
		if _, ok := r.Attrs["served_hours"]; !ok {
			t.Fatalf("batch.run %d missing served_hours: %v", i, r.Attrs)
		}
		if r.Attrs["completed"] == true {
			completed++
		}
	}
	if completed != 2 {
		t.Fatalf("%d batch.run spans flagged completed, want 2 (jobs 1 and 3)", completed)
	}
	if len(misses) != 1 {
		t.Fatalf("%d batch.miss spans, want 1", len(misses))
	}
	miss := misses[0]
	if slot := stepIDs[miss.Parent]; slot != 2 {
		t.Fatalf("batch.miss in slot %v, want 2 (job 2's deadline)", slot)
	}
	if miss.Attrs["job"] != 2.0 {
		t.Fatalf("batch.miss job = %v, want 2", miss.Attrs["job"])
	}
	if unfinished := miss.Attrs["unfinished_hours"].(float64); unfinished <= 0 {
		t.Fatalf("batch.miss unfinished_hours = %v, want > 0", unfinished)
	}
}

// TestStepMetrics pins the BatchMetrics wiring under the batch.* prefix.
func TestStepMetrics(t *testing.T) {
	s := NewScheduler()
	reg := telemetry.NewRegistry()
	s.Instrument(telemetry.NewBatchMetrics(reg, "batch"))
	runTraceSchedule(t, s)

	snap := reg.Snapshot()
	wantCounters := map[string]float64{
		"batch.submitted":           3,
		"batch.deferred":            1, // job 3 arrives after its submit slot
		"batch.completed":           2,
		"batch.missed":              1,
		"batch.served_server_hours": 4,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	if got := snap.Counters["batch.energy_kwh"]; got <= 0 {
		t.Fatalf("batch.energy_kwh = %v, want > 0", got)
	}
	if got := snap.Gauges["batch.backlog_server_hours"]; got != 0 {
		t.Fatalf("backlog gauge = %v after drained schedule, want 0", got)
	}
}

// TestStepTracedMatchesUntraced pins that tracing and metrics leave the
// EDF decisions untouched.
func TestStepTracedMatchesUntraced(t *testing.T) {
	plain := NewScheduler()
	want := runTraceSchedule(t, plain)

	traced := NewScheduler()
	traced.SetTracer(span.NewTracer())
	traced.Instrument(telemetry.NewBatchMetrics(telemetry.NewRegistry(), "batch"))
	got := runTraceSchedule(t, traced)

	for i := range want {
		if got[i].UsedServerHours != want[i].UsedServerHours ||
			got[i].EnergyKWh != want[i].EnergyKWh ||
			got[i].Backlog != want[i].Backlog ||
			len(got[i].Completed) != len(want[i].Completed) ||
			len(got[i].Missed) != len(want[i].Missed) {
			t.Fatalf("slot %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}
