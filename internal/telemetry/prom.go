package telemetry

import (
	"io"
	"runtime"
	"sort"

	"repro/internal/telemetry/promtext"
)

// Prometheus text-format exposition (version 0.0.4) over the registry —
// the /metrics surface scrapers consume. No external client library: the
// renderer walks one deterministic Snapshot and emits families through
// promtext, so two scrapes of identical state are byte-identical (the
// golden exposition test pins the exact output).
//
// Mapping:
//
//   - flat Counter/Gauge         → one sample, name sanitized (dots → _)
//   - LabeledCounter/Gauge       → one sample per tuple, sorted by values
//   - Histogram (flat & labeled) → cumulative name_bucket{le="…"} series
//     ending in le="+Inf", plus name_sum and name_count, plus a
//     name_invalid counter surfacing NaN observations (NaN samples are
//     excluded from buckets/sum/count, so without this series a producer
//     emitting garbage would be invisible to a scraper)
//
// Family order is fixed (counters, gauges, labeled counters, labeled
// gauges, histograms, labeled histograms; each sorted by name), which
// keeps every family's samples contiguous as the format requires.

// WritePrometheus renders the registry in Prometheus text format. Scrape
// hooks run first (via Snapshot), so pull-style collectors are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	for _, name := range sortedKeys(snap.Counters) {
		n := promtext.SanitizeName(name)
		if err := promtext.WriteHeader(w, n, "", "counter"); err != nil {
			return err
		}
		if err := promtext.WriteSample(w, n, nil, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := promtext.SanitizeName(name)
		if err := promtext.WriteHeader(w, n, "", "gauge"); err != nil {
			return err
		}
		if err := promtext.WriteSample(w, n, nil, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.LabeledCounters) {
		v := snap.LabeledCounters[name]
		n := promtext.SanitizeName(name)
		if err := promtext.WriteHeader(w, n, v.Help, "counter"); err != nil {
			return err
		}
		for _, s := range v.Series {
			if err := promtext.WriteSample(w, n, tupleLabels(v.Labels, s.Values, ""), s.Value); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(snap.LabeledGauges) {
		v := snap.LabeledGauges[name]
		n := promtext.SanitizeName(name)
		if err := promtext.WriteHeader(w, n, v.Help, "gauge"); err != nil {
			return err
		}
		for _, s := range v.Series {
			if err := promtext.WriteSample(w, n, tupleLabels(v.Labels, s.Values, ""), s.Value); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		if err := writeHistogram(w, promtext.SanitizeName(name), "", nil, nil, snap.Histograms[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.LabeledHistograms) {
		v := snap.LabeledHistograms[name]
		n := promtext.SanitizeName(name)
		if err := promtext.WriteHeader(w, n, v.Help, "histogram"); err != nil {
			return err
		}
		for _, s := range v.Series {
			if err := writeHistogramSeries(w, n, v.Labels, s.Values, s.Hist); err != nil {
				return err
			}
		}
		if err := writeHistogramInvalid(w, n, v.Labels, v.Series); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one flat histogram family: header, the series,
// and the invalid-counter family.
func writeHistogram(w io.Writer, name, help string, labelNames, values []string, h HistogramSnapshot) error {
	if err := promtext.WriteHeader(w, name, help, "histogram"); err != nil {
		return err
	}
	if err := writeHistogramSeries(w, name, labelNames, values, h); err != nil {
		return err
	}
	if err := promtext.WriteHeader(w, name+"_invalid", "", "counter"); err != nil {
		return err
	}
	return promtext.WriteSample(w, name+"_invalid", tupleLabels(labelNames, values, ""), float64(h.Invalid))
}

// writeHistogramSeries renders one tuple's cumulative buckets, sum and
// count.
func writeHistogramSeries(w io.Writer, name string, labelNames, values []string, h HistogramSnapshot) error {
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := promtext.FormatValue(b)
		if err := promtext.WriteSample(w, name+"_bucket", tupleLabels(labelNames, values, le), float64(cum)); err != nil {
			return err
		}
	}
	// The implicit overflow bucket: cumulative count over everything.
	if err := promtext.WriteSample(w, name+"_bucket", tupleLabels(labelNames, values, "+Inf"), float64(h.Count)); err != nil {
		return err
	}
	if err := promtext.WriteSample(w, name+"_sum", tupleLabels(labelNames, values, ""), h.Sum); err != nil {
		return err
	}
	return promtext.WriteSample(w, name+"_count", tupleLabels(labelNames, values, ""), float64(h.Count))
}

// writeHistogramInvalid renders the per-tuple invalid counters of a
// labeled histogram as one trailing counter family.
func writeHistogramInvalid(w io.Writer, name string, labelNames []string, series []LabeledHistogramSeries) error {
	if err := promtext.WriteHeader(w, name+"_invalid", "", "counter"); err != nil {
		return err
	}
	for _, s := range series {
		if err := promtext.WriteSample(w, name+"_invalid", tupleLabels(labelNames, s.Values, ""), float64(s.Hist.Invalid)); err != nil {
			return err
		}
	}
	return nil
}

// tupleLabels builds the label pairs for one series; a non-empty le is
// appended last, the bucket convention.
func tupleLabels(names, values []string, le string) []promtext.Label {
	if len(names) == 0 && le == "" {
		return nil
	}
	out := make([]promtext.Label, 0, len(names)+1)
	for i := range names {
		out = append(out, promtext.Label{Name: names[i], Value: values[i]})
	}
	if le != "" {
		out = append(out, promtext.Label{Name: "le", Value: le})
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RuntimeMetrics is the process collector: Go runtime health gauges
// refreshed on every scrape through the registry's OnScrape hook, so a
// daemon's /metrics carries goroutine counts, heap occupancy and GC pause
// totals next to the controller series without any background poller.
type RuntimeMetrics struct {
	Goroutines          *Gauge // runtime.NumGoroutine
	HeapAllocBytes      *Gauge // live heap objects
	HeapSysBytes        *Gauge // heap memory obtained from the OS
	HeapObjects         *Gauge
	StackSysBytes       *Gauge
	GCRuns              *Gauge // completed GC cycles
	GCPauseTotalSeconds *Gauge // cumulative stop-the-world pause
	NextGCBytes         *Gauge // heap size that triggers the next cycle
}

// NewRuntimeMetrics registers the process collector under prefix
// (conventionally "runtime") and hooks it into the registry's scrape
// path.
func NewRuntimeMetrics(r *Registry, prefix string) *RuntimeMetrics {
	p := prefix + "."
	m := &RuntimeMetrics{
		Goroutines:          r.Gauge(p + "goroutines"),
		HeapAllocBytes:      r.Gauge(p + "heap_alloc_bytes"),
		HeapSysBytes:        r.Gauge(p + "heap_sys_bytes"),
		HeapObjects:         r.Gauge(p + "heap_objects"),
		StackSysBytes:       r.Gauge(p + "stack_sys_bytes"),
		GCRuns:              r.Gauge(p + "gc_runs"),
		GCPauseTotalSeconds: r.Gauge(p + "gc_pause_total_seconds"),
		NextGCBytes:         r.Gauge(p + "next_gc_bytes"),
	}
	r.OnScrape(m.Collect)
	return m
}

// Collect refreshes the gauges from the runtime. It is also callable
// directly (the scrape hook does exactly this).
func (m *RuntimeMetrics) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Goroutines.Set(float64(runtime.NumGoroutine()))
	m.HeapAllocBytes.Set(float64(ms.HeapAlloc))
	m.HeapSysBytes.Set(float64(ms.HeapSys))
	m.HeapObjects.Set(float64(ms.HeapObjects))
	m.StackSysBytes.Set(float64(ms.StackSys))
	m.GCRuns.Set(float64(ms.NumGC))
	m.GCPauseTotalSeconds.Set(float64(ms.PauseTotalNs) / 1e9)
	m.NextGCBytes.Set(float64(ms.NextGC))
}
