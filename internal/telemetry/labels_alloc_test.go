//go:build !race

package telemetry

import "testing"

// AllocsPerRun is meaningless under -race (the detector instruments
// allocations), hence the build tag — mirroring the dcmodel and numopt
// alloc tests.

// TestWithSteadyStateAllocs pins the acceptance bound for per-site
// emission in the fleet step: once a tuple is interned, With and the
// child's Add/Observe are allocation-free.
func TestWithSteadyStateAllocs(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("alloc.hits", "", "site", "kind")
	lh := r.LabeledHistogram("alloc.lat", "", ExpBuckets(1e-5, 4, 12), "site")
	lc.With("dc-east", "solve").Inc() // intern once
	lh.With("dc-east").Observe(1)

	if n := testing.AllocsPerRun(1000, func() {
		lc.With("dc-east", "solve").Inc()
	}); n != 0 {
		t.Errorf("interned With+Inc allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		lh.With("dc-east").Observe(0.25)
	}); n != 0 {
		t.Errorf("interned With+Observe allocates %.1f per op, want 0", n)
	}

	c := lc.With("dc-east", "solve")
	if n := testing.AllocsPerRun(1000, func() { c.Add(2) }); n != 0 {
		t.Errorf("cached child Add allocates %.1f per op, want 0", n)
	}
}
