package telemetry

import (
	"encoding/binary"
	"sort"
	"sync"
)

// Labeled vectors: dimensional instruments keyed by a small label tuple
// (site, endpoint, shard, …). The design goals mirror the flat core:
//
//   - The hot path is allocation-free. With interns its tuple once; the
//     child it returns IS a plain *Counter/*Gauge/*Histogram, so callers
//     that cache the handle (the fleet does, per site) pay exactly the
//     flat-instrument cost per emission. Even an uncached With resolves
//     through a stack key buffer and an allocation-free map lookup.
//   - Lookups are lock-striped: tuples hash onto vecStripes independent
//     RWMutex-guarded maps, so concurrent writers on different label
//     values rarely contend.
//   - Snapshots are deterministic: series are sorted by label values, so
//     two snapshots of the same state render byte-identically (the golden
//     exposition test pins this).
//
// Cardinality is the caller's contract: label values must be drawn from a
// bounded set (site names, endpoint paths, shard ids — never slot numbers
// or request ids), because every distinct tuple allocates a child that
// lives for the registry's lifetime.

// vecStripes is the lock-stripe fan-out. 16 stripes keep the per-stripe
// maps small and let a 16-site fleet update mostly contention-free while
// costing four words of overhead per empty stripe.
const vecStripes = 16

type vecEntry[T any] struct {
	values []string // interned copy of the label tuple, lookup key order
	child  *T
}

type vecStripe[T any] struct {
	mu sync.RWMutex
	m  map[string]*vecEntry[T]
}

// vec is the generic core shared by the three labeled instrument kinds.
type vec[T any] struct {
	name     string
	help     string
	keys     []string  // label names, fixed at construction
	newChild func() *T // builds a zero-valued child instrument
	stripes  [vecStripes]vecStripe[T]
}

// appendTupleKey encodes the label values into dst as a length-prefixed
// byte string — collision-free for any values, unlike a separator join.
func appendTupleKey(dst []byte, values []string) []byte {
	for _, v := range values {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// stripeOf hashes a tuple key onto a stripe (FNV-1a).
func stripeOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return int(h % vecStripes)
}

// with resolves (interning on first use) the child for the tuple. The key
// is built in a stack buffer and the read-path map access converts it
// without allocating, so repeat lookups are allocation-free.
func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.keys) {
		panic("telemetry: " + v.name + ": wrong number of label values")
	}
	var buf [64]byte
	key := appendTupleKey(buf[:0], values)
	s := &v.stripes[stripeOf(key)]
	s.mu.RLock()
	e := s.m[string(key)]
	s.mu.RUnlock()
	if e != nil {
		return e.child
	}
	return v.create(key, values)
}

// create interns a new tuple under the stripe's write lock, rechecking for
// a racing creator so exactly one child exists per tuple.
func (v *vec[T]) create(key []byte, values []string) *T {
	s := &v.stripes[stripeOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.m[string(key)]; e != nil {
		return e.child
	}
	if s.m == nil {
		s.m = make(map[string]*vecEntry[T])
	}
	vals := make([]string, len(values))
	copy(vals, values)
	e := &vecEntry[T]{values: vals, child: v.newChild()}
	s.m[string(key)] = e
	return e.child
}

// entries returns every interned (tuple, child) pair sorted by label
// values — the deterministic order every snapshot and exposition uses.
func (v *vec[T]) entries() []*vecEntry[T] {
	var out []*vecEntry[T]
	for i := range v.stripes {
		s := &v.stripes[i]
		s.mu.RLock()
		for _, e := range s.m {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return lessTuple(out[i].values, out[j].values)
	})
	return out
}

// lessTuple orders label tuples lexicographically value by value.
func lessTuple(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// LabeledCounter is a counter vector: one Counter per label tuple.
type LabeledCounter struct {
	vec[Counter]
}

// With returns the counter for the tuple, interning it on first use. The
// returned handle is a plain *Counter; cache it on hot paths.
func (c *LabeledCounter) With(values ...string) *Counter { return c.with(values) }

// LabeledGauge is a gauge vector: one Gauge per label tuple.
type LabeledGauge struct {
	vec[Gauge]
}

// With returns the gauge for the tuple, interning it on first use.
func (g *LabeledGauge) With(values ...string) *Gauge { return g.with(values) }

// LabeledHistogram is a histogram vector: one fixed-layout Histogram per
// label tuple, all sharing the bounds given at construction.
type LabeledHistogram struct {
	vec[Histogram]
}

// With returns the histogram for the tuple, interning it on first use.
func (h *LabeledHistogram) With(values ...string) *Histogram { return h.with(values) }

// LabeledSeries is one tuple's sample in a labeled snapshot.
type LabeledSeries struct {
	Values []string `json:"values"`
	Value  float64  `json:"value"`
}

// LabeledSnapshot is a point-in-time copy of a counter or gauge vector,
// series sorted by label values.
type LabeledSnapshot struct {
	Help   string          `json:"help,omitempty"`
	Labels []string        `json:"labels"`
	Series []LabeledSeries `json:"series"`
}

// Get returns the sample for the tuple, if present.
func (s LabeledSnapshot) Get(values ...string) (float64, bool) {
	for _, ser := range s.Series {
		if equalTuple(ser.Values, values) {
			return ser.Value, true
		}
	}
	return 0, false
}

// LabeledHistogramSeries is one tuple's histogram in a labeled snapshot.
type LabeledHistogramSeries struct {
	Values []string          `json:"values"`
	Hist   HistogramSnapshot `json:"hist"`
}

// LabeledHistogramsSnapshot is a point-in-time copy of a histogram
// vector, series sorted by label values.
type LabeledHistogramsSnapshot struct {
	Help   string                   `json:"help,omitempty"`
	Labels []string                 `json:"labels"`
	Series []LabeledHistogramSeries `json:"series"`
}

// Get returns the histogram snapshot for the tuple, if present.
func (s LabeledHistogramsSnapshot) Get(values ...string) (HistogramSnapshot, bool) {
	for _, ser := range s.Series {
		if equalTuple(ser.Values, values) {
			return ser.Hist, true
		}
	}
	return HistogramSnapshot{}, false
}

func equalTuple(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *LabeledCounter) snapshot() LabeledSnapshot {
	s := LabeledSnapshot{Help: c.help, Labels: c.keys}
	for _, e := range c.entries() {
		s.Series = append(s.Series, LabeledSeries{Values: e.values, Value: e.child.Value()})
	}
	return s
}

func (g *LabeledGauge) snapshot() LabeledSnapshot {
	s := LabeledSnapshot{Help: g.help, Labels: g.keys}
	for _, e := range g.entries() {
		s.Series = append(s.Series, LabeledSeries{Values: e.values, Value: e.child.Value()})
	}
	return s
}

func (h *LabeledHistogram) snapshot() LabeledHistogramsSnapshot {
	s := LabeledHistogramsSnapshot{Help: h.help, Labels: h.keys}
	for _, e := range h.entries() {
		s.Series = append(s.Series, LabeledHistogramSeries{Values: e.values, Hist: e.child.Snapshot()})
	}
	return s
}
