package logf

import (
	"encoding/json"
	"strings"
	"testing"

	"log/slog"
)

func TestTextFormat(t *testing.T) {
	var b strings.Builder
	log, err := New(&b, FormatText, Options{NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("listening", "addr", "127.0.0.1:8080")
	line := b.String()
	for _, want := range []string{"level=INFO", "msg=listening", "addr=127.0.0.1:8080"} {
		if !strings.Contains(line, want) {
			t.Errorf("text line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "time=") {
		t.Errorf("NoTime line still carries a timestamp: %q", line)
	}
}

func TestJSONFormat(t *testing.T) {
	var b strings.Builder
	log, err := New(&b, FormatJSON, Options{NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	log.Error("checkpoint failed", "err", "disk full", "slot", 42)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("json line does not decode: %v\n%s", err, b.String())
	}
	if rec["msg"] != "checkpoint failed" || rec["err"] != "disk full" || rec["slot"] != float64(42) {
		t.Fatalf("record = %v", rec)
	}
	if rec["level"] != "ERROR" {
		t.Fatalf("level = %v", rec["level"])
	}
	if _, ok := rec["time"]; ok {
		t.Fatal("NoTime record still carries a time key")
	}
}

func TestLevelFilter(t *testing.T) {
	var b strings.Builder
	log, err := New(&b, FormatText, Options{Level: slog.LevelWarn, NoTime: true})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept")
	out := b.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filter output:\n%s", out)
	}
}

func TestUnknownFormat(t *testing.T) {
	if _, err := New(&strings.Builder{}, "yaml", Options{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
