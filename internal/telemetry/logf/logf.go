// Package logf builds the structured loggers the daemons log through: a
// thin constructor over log/slog that turns a CLI-friendly format name
// into a configured *slog.Logger. Two formats:
//
//	text — logfmt-style key=value records (slog.TextHandler), the
//	       default; readable on a terminal, still machine-parseable
//	json — one JSON object per record (slog.JSONHandler), for log
//	       pipelines
//
// Daemons log events, not lines: every record is a short constant
// message plus attributes ("slot settled" slot=17 cost=3.2), so a
// grep for the message finds all of them and a parser never has to
// unformat prose.
package logf

import (
	"fmt"
	"io"
	"log/slog"
)

// Format names accepted by New (and the daemons' -log-format flag).
const (
	FormatText = "text"
	FormatJSON = "json"
)

// Options tunes a constructed logger.
type Options struct {
	// Level is the minimum record level (default slog.LevelInfo).
	Level slog.Leveler
	// NoTime drops the time attribute from every record — for tests and
	// golden outputs that must not depend on the clock.
	NoTime bool
}

// New returns a logger writing format-structured records to w. An
// unknown format is an error (the caller surfaces it as a flag error);
// an empty format means text.
func New(w io.Writer, format string, opts Options) (*slog.Logger, error) {
	ho := &slog.HandlerOptions{Level: opts.Level}
	if opts.NoTime {
		ho.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	switch format {
	case FormatText, "":
		return slog.New(slog.NewTextHandler(w, ho)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, ho)), nil
	}
	return nil, fmt.Errorf("logf: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
}
