// Package span is the span-tracing half of the observability layer: where
// package telemetry answers *how much* (counters, gauges, histograms),
// span answers *where the time and cost go inside a slot* — a GSD solve
// between StartSolve and FinishSolve, the greedy site allocation inside a
// geo step, the per-job decisions of the batch scheduler.
//
// NOTE ON NAMING — this package is repro/internal/telemetry/span, NOT
// repro/internal/trace: package trace is the *time-series* trace package
// (synthetic workload/price/renewable hourly series, the paper's λ(t),
// w(t), r(t)); this package records *execution* spans in the Chrome
// trace-event sense. The two never overlap: trace feeds the simulation,
// span observes it.
//
// The recorder is allocation-conscious and concurrency-safe: a nil
// *Tracer (tracing disabled) short-circuits every call site behind a
// single pointer test, so the engine hot path is untouched and golden
// parity stays bit-for-bit. An enabled tracer records spans into a
// mutex-guarded buffer capped at a configurable limit (overflow is
// counted, never grown into).
//
// Parenting is ambient: Start nests the new span under the innermost
// span still open on the tracer, which makes cross-package nesting work
// without threading parents through interfaces — the sim engine opens a
// slot span, the policy's Decide runs inside it, and a GSD solve started
// on the same tracer lands as the decide span's child automatically. The
// ambient stack assumes starts and ends happen on one goroutine (the
// step-wise engine, the sequential GSD loop); concurrent recorders
// should use StartRoot/Child for explicit parenting or per-goroutine
// tracers.
package span

import (
	"sync"
	"time"
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  float64
	i    int64
}

type attrKind uint8

const (
	kindStr attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, str: v} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, num: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute's value as the natural Go type (string,
// int64, float64 or bool) — the form both exporters marshal.
func (a Attr) Value() any {
	switch a.kind {
	case kindStr:
		return a.str
	case kindInt:
		return a.i
	case kindFloat:
		return a.num
	default:
		return a.i != 0
	}
}

// Span is one timed, named, attributed interval. A nil *Span is the
// no-op span: every method is safe to call and does nothing, so call
// sites only guard span *construction*, never use.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	track  uint64
	name   string
	start  time.Duration // offset from the tracer's epoch
	end    time.Duration
	attrs  []Attr
	ended  bool
}

// ID returns the span's tracer-unique id (0 for the nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Set appends attributes to the span. Nil- and post-End-safe.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.tr.mu.Unlock()
}

// Child starts a new span explicitly parented under s, bypassing the
// ambient stack for the parent choice (the child still joins the stack so
// deeper ambient Starts nest under it). On a nil span it degrades to a
// root span only when a tracer cannot be reached — i.e. it returns nil.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.startLocked(name, s, attrs)
}

// End closes the span and commits it to the tracer's buffer. Ending a
// span twice is a no-op; ending out of start order is tolerated (the
// span is removed from wherever it sits on the ambient stack).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = t.clock()
	// Remove from the ambient stack (innermost-first scan: the common
	// case is a perfectly nested End of the top span).
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	if s.parent == 0 {
		t.releaseTrack(s.track)
	}
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// DefaultMaxSpans is the default buffer cap: enough for a multi-week
// traced run (≈ 4 spans/slot) or a few traced GSD solves at full
// iteration budgets, small enough to bound memory at tens of MB.
const DefaultMaxSpans = 1 << 20

// Tracer records spans. The zero value is not usable; construct with
// NewTracer. A nil *Tracer is the disabled tracer: Start and StartRoot
// return nil spans and every query returns zero, so "tracing off" is one
// nil check at each instrumentation site.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time
	nextID   uint64
	stack    []*Span // open spans, innermost last (ambient parenting)
	spans    []*Span // ended spans, in end order
	maxSpans int
	dropped  uint64

	// Track ids group spans into Perfetto rows: each root span leases the
	// smallest free track and its descendants inherit it, so sequential
	// slots reuse one row while overlapping roots fan out.
	freeTracks []uint64
	nextTrack  uint64
}

// NewTracer returns an enabled tracer with the default buffer cap.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans, nextTrack: 1}
}

// SetLimit changes the buffer cap (spans beyond it are dropped and
// counted). Non-positive n restores the default.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// clock returns the monotonic offset from the tracer's epoch.
func (t *Tracer) clock() time.Duration { return time.Since(t.epoch) }

// Start opens a span nested under the innermost open span (ambient
// parenting), or as a root when none is open. Returns nil on a nil
// tracer.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var parent *Span
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	return t.startLocked(name, parent, attrs)
}

// StartRoot opens a span with no parent regardless of the ambient stack
// — the entry points of independently stepped subsystems (a geo
// federation step, a batch scheduler slot) force roots so pooled
// concurrent runs cannot adopt a stranger's open span.
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, nil, attrs)
}

func (t *Tracer) startLocked(name string, parent *Span, attrs []Attr) *Span {
	t.nextID++
	s := &Span{tr: t, id: t.nextID, name: name, start: t.clock()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	if parent != nil {
		s.parent = parent.id
		s.track = parent.track
	} else {
		s.track = t.leaseTrack()
	}
	t.stack = append(t.stack, s)
	return s
}

// leaseTrack hands out the smallest free track id, minting a new one when
// none is free. Called with the tracer lock held.
func (t *Tracer) leaseTrack() uint64 {
	if n := len(t.freeTracks); n > 0 {
		best := 0
		for i := 1; i < n; i++ {
			if t.freeTracks[i] < t.freeTracks[best] {
				best = i
			}
		}
		tr := t.freeTracks[best]
		t.freeTracks = append(t.freeTracks[:best], t.freeTracks[best+1:]...)
		return tr
	}
	tr := t.nextTrack
	t.nextTrack++
	return tr
}

// releaseTrack returns a root span's track to the pool. Called with the
// tracer lock held.
func (t *Tracer) releaseTrack(track uint64) {
	t.freeTracks = append(t.freeTracks, track)
}

// Len returns the number of buffered (ended) spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Open returns the number of spans started but not yet ended.
func (t *Tracer) Open() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stack)
}

// Dropped returns the number of spans discarded after the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all buffered spans (open spans stay open) and clears
// the drop counter, so one long-lived tracer can serve several runs.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.mu.Unlock()
}

// snapshot copies the ended-span slice under the lock; the spans
// themselves are immutable once ended.
func (t *Tracer) snapshot() []*Span {
	t.mu.Lock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}
