package span

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"time"
)

// micros converts a tracer offset to fractional microseconds, the unit of
// the Chrome trace-event format (fractions are legal and keep sub-µs
// spans from collapsing to zero width).
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, the JSON Perfetto and chrome://tracing load natively.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container flavor of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// argsOf flattens a span's attributes plus its identity into the event
// args, so tools (and our parse-back tests) can rebuild the span tree
// without relying on timestamp containment.
func argsOf(s *Span) map[string]any {
	args := make(map[string]any, len(s.attrs)+2)
	args["span_id"] = s.id
	if s.parent != 0 {
		args["parent_id"] = s.parent
	}
	for _, a := range s.attrs {
		args[a.Key] = a.Value()
	}
	return args
}

// WriteChromeTrace exports the buffered spans as Chrome trace-event JSON:
// open the file in https://ui.perfetto.dev or chrome://tracing. Root
// spans map to tracks (tid), so sequential slots stack on one row while
// concurrent solves fan out. Nil tracers write an empty, valid trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var spans []*Span
	if t != nil {
		spans = t.snapshot()
	}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   micros(s.start),
			Dur:  micros(s.end - s.start),
			Pid:  1,
			Tid:  s.track,
			Args: argsOf(s),
		})
	}
	// Spans land in the buffer in end order (children first); emit in
	// start order, parents before children, for readable raw JSON.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		if out.TraceEvents[i].Ts != out.TraceEvents[j].Ts {
			return out.TraceEvents[i].Ts < out.TraceEvents[j].Ts
		}
		return out.TraceEvents[i].Args["span_id"].(uint64) < out.TraceEvents[j].Args["span_id"].(uint64)
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Record is the NDJSON span-log line — the machine-diffable flat export
// next to the Chrome JSON (one span per line, greppable, live-tailable).
type Record struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Track   uint64         `json:"track"`
	Name    string         `json:"name"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteNDJSON exports the buffered spans as one JSON record per line, in
// span start order.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	var spans []*Span
	if t != nil {
		spans = t.snapshot()
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].id < spans[j].id })
	buf := bufio.NewWriter(w)
	enc := json.NewEncoder(buf)
	for _, s := range spans {
		var attrs map[string]any
		if len(s.attrs) > 0 {
			attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				attrs[a.Key] = a.Value()
			}
		}
		if err := enc.Encode(Record{
			ID:      s.id,
			Parent:  s.parent,
			Track:   s.track,
			Name:    s.name,
			StartUS: micros(s.start),
			DurUS:   micros(s.end - s.start),
			Attrs:   attrs,
		}); err != nil {
			return err
		}
	}
	return buf.Flush()
}

// NameSummary aggregates every buffered span sharing one name.
type NameSummary struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalUS float64 `json:"total_us"`
	MinUS   float64 `json:"min_us"`
	MaxUS   float64 `json:"max_us"`
}

// Summary is the tracer's buffer overview — what the telemetry HTTP
// handler serves under /spans while a traced run executes.
type Summary struct {
	Spans   int           `json:"spans"`
	Open    int           `json:"open"`
	Dropped uint64        `json:"dropped"`
	ByName  []NameSummary `json:"by_name"`
}

// Summarize aggregates the buffer per span name (sorted by name). Safe on
// a nil tracer (returns the zero summary).
func (t *Tracer) Summarize() Summary {
	var s Summary
	if t == nil {
		return s
	}
	spans := t.snapshot()
	t.mu.Lock()
	s.Open = len(t.stack)
	s.Dropped = t.dropped
	t.mu.Unlock()
	s.Spans = len(spans)
	byName := make(map[string]*NameSummary)
	for _, sp := range spans {
		d := micros(sp.end - sp.start)
		ns, ok := byName[sp.name]
		if !ok {
			ns = &NameSummary{Name: sp.name, MinUS: d, MaxUS: d}
			byName[sp.name] = ns
		}
		ns.Count++
		ns.TotalUS += d
		if d < ns.MinUS {
			ns.MinUS = d
		}
		if d > ns.MaxUS {
			ns.MaxUS = d
		}
	}
	s.ByName = make([]NameSummary, 0, len(byName))
	for _, ns := range byName {
		s.ByName = append(s.ByName, *ns)
	}
	sort.Slice(s.ByName, func(i, j int) bool { return s.ByName[i].Name < s.ByName[j].Name })
	return s
}
