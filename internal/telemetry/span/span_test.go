package span

import (
	"sync"
	"testing"
)

func TestAmbientNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := tr.Start("child")
	grand := tr.Start("grand")
	if grand.parent != child.id || child.parent != root.id || root.parent != 0 {
		t.Fatalf("ambient parents: root=%d child=%d grand=%d", root.parent, child.parent, grand.parent)
	}
	grand.End()
	// After the innermost End, the ambient parent is child again.
	sib := tr.Start("sibling")
	if sib.parent != child.id {
		t.Fatalf("sibling parent = %d, want %d", sib.parent, child.id)
	}
	sib.End()
	child.End()
	root.End()
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Open(); got != 0 {
		t.Fatalf("Open = %d, want 0", got)
	}
}

func TestExplicitChildAndRoot(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	// StartRoot ignores the open span.
	b := tr.StartRoot("b")
	if b.parent != 0 {
		t.Fatalf("StartRoot parent = %d", b.parent)
	}
	if b.track == a.track {
		t.Fatalf("concurrent roots share track %d", b.track)
	}
	// Explicit Child parents under a even though b is innermost.
	c := a.Child("c")
	if c.parent != a.id {
		t.Fatalf("Child parent = %d, want %d", c.parent, a.id)
	}
	if c.track != a.track {
		t.Fatalf("child track = %d, want parent's %d", c.track, a.track)
	}
	c.End()
	b.End()
	a.End()
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", Int("k", 1))
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method must be safe on the nils.
	s.Set(Str("a", "b"))
	s.End()
	if s.Child("y") != nil {
		t.Fatal("nil span produced a child")
	}
	if s.ID() != 0 {
		t.Fatal("nil span has an id")
	}
	if tr.Len() != 0 || tr.Open() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports state")
	}
	if got := tr.Summarize(); got.Spans != 0 {
		t.Fatal("nil tracer summarized spans")
	}
	tr.Reset()
	tr.SetLimit(10)
}

func TestDoubleEndAndLateSet(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("s", Int("a", 1))
	s.End()
	s.Set(Int("b", 2)) // after End: dropped
	s.End()            // second End: no-op
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after double End", tr.Len())
	}
	if n := len(tr.snapshot()[0].attrs); n != 1 {
		t.Fatalf("post-End Set landed: %d attrs", n)
	}
}

func TestBufferCapDrops(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

func TestTrackReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	a.End()
	b := tr.Start("b")
	b.End()
	if a.track != b.track {
		t.Fatalf("sequential roots on tracks %d and %d, want reuse", a.track, b.track)
	}
	// Overlapping roots need distinct tracks; the freed smaller one is
	// reused first.
	c := tr.StartRoot("c")
	d := tr.StartRoot("d")
	if c.track == d.track {
		t.Fatal("overlapping roots share a track")
	}
	c.End()
	e := tr.StartRoot("e")
	if e.track != c.track {
		t.Fatalf("freed track %d not reused (got %d)", c.track, e.track)
	}
	d.End()
	e.End()
}

// TestConcurrentRecorders exercises the mutex paths under -race: many
// goroutines record explicit root/child spans into one tracer.
func TestConcurrentRecorders(t *testing.T) {
	tr := NewTracer()
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				root := tr.StartRoot("work", Int("worker", w))
				child := root.Child("sub", Int("i", i))
				child.Set(Bool("ok", true))
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != workers*each*2 {
		t.Fatalf("Len = %d, want %d", got, workers*each*2)
	}
	if tr.Open() != 0 {
		t.Fatalf("Open = %d, want 0", tr.Open())
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		tr.Start("solve").End()
	}
	tr.Start("slot").End()
	open := tr.Start("open")
	s := tr.Summarize()
	if s.Spans != 4 || s.Open != 1 {
		t.Fatalf("Summary spans=%d open=%d", s.Spans, s.Open)
	}
	if len(s.ByName) != 2 || s.ByName[0].Name != "slot" || s.ByName[1].Name != "solve" {
		t.Fatalf("ByName = %+v", s.ByName)
	}
	if s.ByName[1].Count != 3 {
		t.Fatalf("solve count = %d", s.ByName[1].Count)
	}
	open.End()
}

func TestAttrValues(t *testing.T) {
	cases := []struct {
		attr Attr
		want any
	}{
		{Str("s", "v"), "v"},
		{Int("i", -3), int64(-3)},
		{Int64("i64", 1<<40), int64(1 << 40)},
		{Float("f", 2.5), 2.5},
		{Bool("b", true), true},
		{Bool("b", false), false},
	}
	for _, c := range cases {
		if got := c.attr.Value(); got != c.want {
			t.Fatalf("%q: Value = %v (%T), want %v (%T)", c.attr.Key, got, got, c.want, c.want)
		}
	}
}
