package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the trace-event container for parse-back.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func buildNested(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer()
	slot := tr.Start("slot", Int("slot", 0))
	decide := tr.Start("decide")
	solve := tr.Start("solve", Float("lambda", 100))
	solve.End()
	decide.End()
	slot.End()
	return tr
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := buildNested(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want X", i, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("event %d: negative ts/dur", i)
		}
		if _, ok := ev.Args["span_id"]; !ok {
			t.Fatalf("event %d: missing span_id arg", i)
		}
		byName[ev.Name] = i
	}
	// Parent/child identity via args, and time containment per track.
	slot, decide, solve := doc.TraceEvents[byName["slot"]], doc.TraceEvents[byName["decide"]], doc.TraceEvents[byName["solve"]]
	if decide.Args["parent_id"] != slot.Args["span_id"] {
		t.Fatalf("decide parent %v, want slot %v", decide.Args["parent_id"], slot.Args["span_id"])
	}
	if solve.Args["parent_id"] != decide.Args["span_id"] {
		t.Fatalf("solve parent %v, want decide %v", solve.Args["parent_id"], decide.Args["span_id"])
	}
	if solve.Tid != slot.Tid || decide.Tid != slot.Tid {
		t.Fatal("nested spans scattered over tracks")
	}
	if solve.Ts < decide.Ts || solve.Ts+solve.Dur > decide.Ts+decide.Dur+1e-9 {
		t.Fatal("solve not time-contained in decide")
	}
	if decide.Ts < slot.Ts || decide.Ts+decide.Dur > slot.Ts+slot.Dur+1e-9 {
		t.Fatal("decide not time-contained in slot")
	}
	if solve.Args["lambda"] != 100.0 {
		t.Fatalf("attr lambda = %v", solve.Args["lambda"])
	}
}

func TestChromeTraceEmptyAndNil(t *testing.T) {
	var nilTr *Tracer
	for name, tr := range map[string]*Tracer{"nil": nilTr, "empty": NewTracer()} {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var doc chromeDoc
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if len(doc.TraceEvents) != 0 {
			t.Fatalf("%s: %d events", name, len(doc.TraceEvents))
		}
		if err := tr.WriteNDJSON(&buf); err != nil {
			t.Fatalf("%s ndjson: %v", name, err)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := buildNested(t)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	// Start order: slot, decide, solve; parents precede children.
	if recs[0].Name != "slot" || recs[1].Name != "decide" || recs[2].Name != "solve" {
		t.Fatalf("order: %s, %s, %s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	if recs[1].Parent != recs[0].ID || recs[2].Parent != recs[1].ID {
		t.Fatal("NDJSON parent chain broken")
	}
	if recs[2].Attrs["lambda"] != 100.0 {
		t.Fatalf("attrs = %v", recs[2].Attrs)
	}
}
