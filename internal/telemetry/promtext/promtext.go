// Package promtext reads and writes the Prometheus text exposition
// format, version 0.0.4 — hand-rolled so the repository stays
// dependency-free. The writer half is the rendering kernel behind the
// telemetry registry's /metrics endpoint; the parser half exists so tests
// (and smoke scrapes) can round-trip an exposition back into samples and
// compare values bit for bit.
//
// Format reference: one family at a time, optional "# HELP name text" and
// "# TYPE name kind" comments followed by that family's samples
//
//	name{label="value",...} 3.14
//
// with label values escaped (\\, \", \n) and floats rendered shortest
// round-trip (strconv 'g', -1), so parsing a rendered value recovers the
// exact float64 bits.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the exposition content type scrapers negotiate.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one rendered series sample.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Family groups the samples rendered under one # TYPE/# HELP header.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | untyped
	Samples []Sample
}

// SanitizeName maps a registry instrument name onto the exposition's
// [a-zA-Z_:][a-zA-Z0-9_:]* alphabet: dots (the registry's namespace
// separator) and every other invalid rune become underscores, and a
// leading digit gains one.
func SanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// FormatValue renders a float the way the exposition expects: shortest
// exact decimal, with the spellings +Inf/-Inf/NaN for the specials.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the format: backslash, quote,
// newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// WriteHeader writes the # HELP (when help is non-empty) and # TYPE
// comments opening a family. name must already be sanitized.
func WriteHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// WriteSample writes one sample line. name must already be sanitized;
// labels render in the order given.
func WriteSample(w io.Writer, name string, labels []Label, value float64) error {
	if len(labels) == 0 {
		_, err := fmt.Fprintf(w, "%s %s\n", name, FormatValue(value))
		return err
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeName(l.Name))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(FormatValue(value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Parse reads an exposition back into families. Samples are attached to
// the most recent # TYPE header whose name prefixes them (the histogram
// convention: name_bucket/_sum/_count belong to family name); samples
// with no header open an untyped family of their own. Blank lines are
// skipped; anything else malformed is an error naming the line.
func Parse(r io.Reader) ([]Family, error) {
	var (
		fams []Family
		cur  *Family
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if cur == nil || cur.Name != fields[2] {
					fams = append(fams, Family{Name: fields[2], Type: "untyped"})
					cur = &fams[len(fams)-1]
				}
				if len(fields) == 4 {
					cur.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("promtext: line %d: malformed TYPE", lineNo)
				}
				if cur == nil || cur.Name != fields[2] {
					fams = append(fams, Family{Name: fields[2]})
					cur = &fams[len(fams)-1]
				}
				cur.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		if cur == nil || !sampleInFamily(s.Name, cur.Name) {
			fams = append(fams, Family{Name: s.Name, Type: "untyped"})
			cur = &fams[len(fams)-1]
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// sampleInFamily reports whether a sample name belongs to the family:
// exact match or a family-name prefix plus a suffix like _bucket/_sum.
func sampleInFamily(sample, family string) bool {
	if sample == family {
		return true
	}
	return strings.HasPrefix(sample, family+"_")
}

// parseSample parses `name{l="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Ignore an optional trailing timestamp (we never write one).
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		var b strings.Builder
		i, escaped, closed := 1, false, false
		for ; i < len(s); i++ {
			c := s[i]
			if escaped {
				switch c {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
				}
				escaped = false
				continue
			}
			if c == '\\' {
				escaped = true
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		out = append(out, Label{Name: name, Value: b.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s[i:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// Find returns the first sample matching name and the given label subset
// across all families — a test convenience.
func Find(fams []Family, name string, labels ...Label) (Sample, bool) {
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for _, want := range labels {
				got, ok := labelValue(s.Labels, want.Name)
				if !ok || got != want.Value {
					match = false
					break
				}
			}
			if match {
				return s, true
			}
		}
	}
	return Sample{}, false
}

func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// SortFamilies orders families by name — handy for asserting on parses of
// expositions whose family order is not the writer's.
func SortFamilies(fams []Family) {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
}
