package promtext

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"run.slots":         "run_slots",
		"geo.site.cost_usd": "geo_site_cost_usd",
		"already_fine:ok":   "already_fine:ok",
		"has spaces-and.µ":  "has_spaces_and__",
		"9starts_digit":     "_9starts_digit",
		"mid9digit":         "mid9digit",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:               "0",
		1.5:             "1.5",
		0.1:             "0.1",
		1e21:            "1e+21",
		-2.5:            "-2.5",
		math.Inf(1):     "+Inf",
		math.Inf(-1):    "-Inf",
		1.0000000000001: "1.0000000000001",
	}
	for in, want := range cases {
		if got := FormatValue(in); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatValue(math.NaN()); got != "NaN" {
		t.Errorf("FormatValue(NaN) = %q", got)
	}
	// Shortest-decimal rendering must recover the exact bits.
	for _, v := range []float64{1.0 / 3.0, math.Pi, 6.62607015e-34, math.MaxFloat64} {
		back, err := strconv.ParseFloat(FormatValue(v), 64)
		if err != nil || back != v {
			t.Errorf("FormatValue(%v) = %q does not round-trip (%v, %v)", v, FormatValue(v), back, err)
		}
	}
}

// TestWriteParseRoundTrip renders families through the writer and parses
// them back, including label values that need every escape the format
// defines.
func TestWriteParseRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteHeader(&b, "requests", "total requests\nby path", "counter"); err != nil {
		t.Fatal(err)
	}
	wantSamples := []Sample{
		{Name: "requests", Labels: []Label{{Name: "path", Value: "/decide"}, {Name: "code", Value: "200"}}, Value: 17},
		{Name: "requests", Labels: []Label{{Name: "path", Value: `quo"te\slash` + "\nline"}}, Value: 0.125},
		{Name: "requests", Labels: nil, Value: math.Inf(1)},
	}
	for _, s := range wantSamples {
		if err := WriteSample(&b, s.Name, s.Labels, s.Value); err != nil {
			t.Fatal(err)
		}
	}

	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, b.String())
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1: %+v", len(fams), fams)
	}
	f := fams[0]
	if f.Name != "requests" || f.Type != "counter" {
		t.Fatalf("family = %+v", f)
	}
	if !reflect.DeepEqual(f.Samples, wantSamples) {
		t.Fatalf("samples do not round-trip:\ngot  %+v\nwant %+v", f.Samples, wantSamples)
	}
}

// TestParseHistogramFamilyGrouping: _bucket/_sum/_count samples attach to
// the histogram family that declared them.
func TestParseHistogramFamilyGrouping(t *testing.T) {
	text := `# TYPE lat histogram
lat_bucket{le="1"} 2
lat_bucket{le="+Inf"} 3
lat_sum 4.5
lat_count 3
# TYPE other gauge
other 1
`
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2: %+v", len(fams), fams)
	}
	if fams[0].Name != "lat" || len(fams[0].Samples) != 4 {
		t.Fatalf("histogram family = %+v", fams[0])
	}
	inf, ok := Find(fams, "lat_bucket", Label{Name: "le", Value: "+Inf"})
	if !ok || inf.Value != 3 {
		t.Fatalf("+Inf bucket = %+v (ok=%v)", inf, ok)
	}
}

// TestParseTolerance: blank lines, free-form comments, headerless samples
// and trailing timestamps all parse; genuinely malformed lines error.
func TestParseTolerance(t *testing.T) {
	text := "\n# just a comment\nfree_sample 4 1712000000\n"
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Type != "untyped" || fams[0].Samples[0].Value != 4 {
		t.Fatalf("headerless parse = %+v", fams)
	}

	for _, bad := range []string{
		"no_value_here\n",
		`unterminated{a="b 3` + "\n",
		`badlabel{a=b} 3` + "\n",
		"name notafloat\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestSortFamilies(t *testing.T) {
	fams := []Family{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	SortFamilies(fams)
	got := []string{fams[0].Name, fams[1].Name, fams[2].Name}
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("order = %v", got)
	}
}
