package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry/promtext"
	"repro/internal/telemetry/span"
)

func TestCounterConcurrentAdd(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("Value = %v, want 4000", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Inclusive upper edges: 0.5,1 | 5,10 | 99 | 1000.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 || s.Min != 0.5 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if math.Abs(s.Mean-s.Sum/6) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

// TestHistogramObserveNaN pins the defined behavior for invalid samples:
// a NaN observation lands in the dedicated Invalid count and leaves every
// bucket and the Count/Sum/Min/Max/Mean statistics untouched — previously
// it fell silently into the overflow bucket and turned Sum/Mean into NaN
// for the rest of the run.
func TestHistogramObserveNaN(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Invalid != 2 {
		t.Fatalf("Invalid = %d, want 2", s.Invalid)
	}
	if s.Count != 1 || s.Sum != 5 || s.Min != 5 || s.Max != 5 || s.Mean != 5 {
		t.Fatalf("NaN leaked into the statistics: %+v", s)
	}
	if s.Counts[len(s.Counts)-1] != 0 {
		t.Fatalf("NaN leaked into the overflow bucket: %v", s.Counts)
	}
}

// TestCounterGaugeNaN pins the accumulator audit: NaN deltas are dropped
// (an accumulated NaN is irreversible), while Gauge.Set keeps last-write-
// wins semantics — a stored NaN heals on the next Set.
func TestCounterGaugeNaN(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Add(math.NaN())
	if got := c.Value(); got != 2 {
		t.Fatalf("Counter after NaN delta = %v, want 2", got)
	}
	var g Gauge
	g.Set(3)
	g.Add(math.NaN())
	if got := g.Value(); got != 3 {
		t.Fatalf("Gauge after NaN delta = %v, want 3", got)
	}
	g.Set(math.NaN())
	if !math.IsNaN(g.Value()) {
		t.Fatal("Gauge.Set is last-write-wins and must store NaN as written")
	}
	g.Set(1)
	if got := g.Value(); got != 1 {
		t.Fatalf("Gauge did not heal after Set: %v", got)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram(ExpBuckets(1, 2, 4)).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
	if ExpBuckets(1, 2, 0) != nil {
		t.Fatal("ExpBuckets(n=0) should be nil")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", nil) {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(7)
	r.Histogram("h", nil).Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Gauges["g"] != 7 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("summary JSON does not round-trip: %v", err)
	}
	if round.Counters["a"] != 2 {
		t.Fatalf("round-tripped counter = %v", round.Counters["a"])
	}
}

func TestRunMetricsObserve(t *testing.T) {
	r := NewRegistry()
	m := NewRunMetrics(r, "run")
	obs := m.Observer()
	obs(sim.SlotRecord{Slot: 0, TotalUSD: 10, GridKWh: 5, DeficitKWh: -1, Active: 3, Speed: 2})
	obs(sim.SlotRecord{Slot: 1, TotalUSD: 20, GridKWh: 7, DeficitKWh: 4, Active: 4, Speed: 1})
	if got := m.Slots.Value(); got != 2 {
		t.Fatalf("slots = %v", got)
	}
	if got := m.TotalUSD.Value(); got != 30 {
		t.Fatalf("total = %v", got)
	}
	if got := m.DeficitKWh.Value(); got != 3 {
		t.Fatalf("deficit sum = %v", got)
	}
	if m.LastSlot.Value() != 1 || m.LastActive.Value() != 4 || m.LastSpeed.Value() != 1 {
		t.Fatal("last-slot gauges not updated")
	}
	if m.SlotCostUSD.Snapshot().Count != 2 {
		t.Fatal("cost histogram missed slots")
	}
}

func TestSolveMetricsFinishSolve(t *testing.T) {
	r := NewRegistry()
	m := NewSolveMetrics(r, "gsd")
	m.FinishSolve(100, 40, true, 0.01)
	m.FinishSolve(50, 10, false, 0.02)
	if m.Solves.Value() != 2 || m.Iterations.Value() != 150 || m.Accepted.Value() != 50 {
		t.Fatalf("solve counters = %v/%v/%v", m.Solves.Value(), m.Iterations.Value(), m.Accepted.Value())
	}
	if m.PatienceExits.Value() != 1 {
		t.Fatalf("patience exits = %v", m.PatienceExits.Value())
	}
	if m.SolveSeconds.Snapshot().Count != 2 || m.ItersPerRun.Snapshot().Count != 2 {
		t.Fatal("solve histograms missed runs")
	}
}

func TestSlotStreamerNDJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewSlotStreamer(&buf)
	obs := s.Observer()
	obs(sim.SlotRecord{Slot: 0, LambdaRPS: 100, TotalUSD: 1.5, GridKWh: 2})
	obs(sim.SlotRecord{Slot: 1, LambdaRPS: 200, TotalUSD: 2.5, GridKWh: 3})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d NDJSON lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if int(rec["slot"].(float64)) != i {
			t.Fatalf("line %d has slot %v", i, rec["slot"])
		}
	}
}

// The sticky-error semantics (first failed flush silences the stream and
// surfaces from Close) are pinned in stream_test.go.

// TestSlotStreamerFlushesPerRecord pins live-tailability: each record is
// visible downstream as soon as Observe returns, not only at Close.
func TestSlotStreamerFlushesPerRecord(t *testing.T) {
	var buf bytes.Buffer
	s := NewSlotStreamer(&buf)
	s.Observe(sim.SlotRecord{Slot: 7})
	if buf.Len() == 0 {
		t.Fatal("record not flushed at Observe time")
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	if !sc.Scan() {
		t.Fatal("no line flushed")
	}
	var rec map[string]any
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if int(rec["slot"].(float64)) != 7 {
		t.Fatalf("slot = %v", rec["slot"])
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("run.slots").Add(3)
	tr := span.NewTracer()
	tr.Start("demo").End()
	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/metrics.json", "/spans", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}

	// /metrics is the Prometheus exposition now; the JSON snapshot moved
	// to /metrics.json.
	promResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := promResp.Header.Get("Content-Type"); ct != promtext.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, promtext.ContentType)
	}
	fams, err := promtext.Parse(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	if s, ok := promtext.Find(fams, "run_slots"); !ok || s.Value != 3 {
		t.Fatalf("/metrics run_slots = %+v (ok=%v), want 3", s, ok)
	}

	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["run.slots"] != 3 {
		t.Fatalf("/metrics.json counter = %v", snap.Counters["run.slots"])
	}

	spansResp, err := http.Get(srv.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer spansResp.Body.Close()
	var sum span.Summary
	if err := json.NewDecoder(spansResp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Spans != 1 || len(sum.ByName) != 1 || sum.ByName[0].Name != "demo" {
		t.Fatalf("/spans summary = %+v", sum)
	}

	// Without a tracer, /spans is a clean 404, not a panic or empty 200.
	noTr := httptest.NewServer(Handler(r, nil))
	defer noTr.Close()
	resp404, err := http.Get(noTr.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("/spans without tracer: status %d, want 404", resp404.StatusCode)
	}
}

// TestServeShutdownReleasesListener pins the serve/shutdown contract the
// CLI relies on at run end: after Shutdown returns, the port can be
// re-bound immediately (the listener is actually closed, not leaked).
func TestServeShutdownReleasesListener(t *testing.T) {
	r := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The exact port must be free again.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("port still held after Shutdown: %v", err)
	}
	ln.Close()
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}
