package telemetry

// ReqsimSiteMetrics is one site's slice of ReqsimMetrics: the per-slot
// request-level replay outcome series. Percentile gauges carry the *exact*
// streaming percentiles computed by the replay's sample tape; the
// histogram carries the same response times bucketed for exposition — the
// two views deliberately coexist (gauges are exact but last-slot-only,
// the histogram is approximate but cumulative).
type ReqsimSiteMetrics struct {
	Requests *Counter // simulated requests replayed for the site
	Dropped  *Counter // requests rejected by the replay's admission cap
	P50Sec   *Gauge   // exact median response time, last replayed slot
	P95Sec   *Gauge   // exact 95th percentile, last replayed slot
	P99Sec   *Gauge   // exact 99th percentile, last replayed slot
	QueueLen *Gauge   // measured mean jobs in system, last replayed slot
	ModelErr *Gauge   // |empirical − analytic|/analytic mean jobs, last slot

	// RespSeconds buckets each replayed slot's percentile triple for
	// cumulative exposition (the gauges above stay exact but last-slot-only).
	RespSeconds *Histogram
}

// ReqsimMetrics instruments request-level slot replays (internal/reqsim):
// replay counts and request volume at the top level plus a site-labeled
// breakdown of exact percentiles, queue lengths and analytic-model error.
// Like the other *Metrics it takes plain values so reqsim imports
// telemetry, never the reverse. All methods are nil-safe.
type ReqsimMetrics struct {
	Replays  *Counter // slots replayed at request granularity
	Requests *Counter // total simulated requests
	Events   *Counter // total processed simulation events
	// ModelErrSum accumulates |empirical − analytic|/analytic across
	// replays (divide by Replays for the mean relative error).
	ModelErrSum *Counter

	siteRequests *LabeledCounter
	siteDropped  *LabeledCounter
	siteP50      *LabeledGauge
	siteP95      *LabeledGauge
	siteP99      *LabeledGauge
	siteQueue    *LabeledGauge
	siteModelErr *LabeledGauge
	siteResp     *LabeledHistogram

	sites map[string]*ReqsimSiteMetrics
}

// NewReqsimMetrics registers replay instruments under prefix
// (conventionally "reqsim"). Site series are labeled vectors
// ("<prefix>.site.p99_sec"{site="…"}, …), interned on first observation.
func NewReqsimMetrics(r *Registry, prefix string) *ReqsimMetrics {
	p := prefix + "."
	return &ReqsimMetrics{
		Replays:     r.Counter(p + "replays"),
		Requests:    r.Counter(p + "requests"),
		Events:      r.Counter(p + "events"),
		ModelErrSum: r.Counter(p + "model_err_sum"),

		siteRequests: r.LabeledCounter(p+"site.requests", "simulated requests replayed for the site", "site"),
		siteDropped:  r.LabeledCounter(p+"site.dropped", "requests rejected by the replay admission cap", "site"),
		siteP50:      r.LabeledGauge(p+"site.p50_sec", "exact median response time of the last replayed slot", "site"),
		siteP95:      r.LabeledGauge(p+"site.p95_sec", "exact P95 response time of the last replayed slot", "site"),
		siteP99:      r.LabeledGauge(p+"site.p99_sec", "exact P99 response time of the last replayed slot", "site"),
		siteQueue:    r.LabeledGauge(p+"site.queue_len", "measured mean jobs in system, last replayed slot", "site"),
		siteModelErr: r.LabeledGauge(p+"site.model_err", "relative empirical-vs-analytic mean-jobs error, last slot", "site"),
		siteResp:     r.LabeledHistogram(p+"site.resp_seconds", "response-time distribution across replayed slots", ExpBuckets(1e-3, 2, 18), "site"),

		sites: make(map[string]*ReqsimSiteMetrics),
	}
}

// Site returns (interning on first use) the named site's instruments.
func (m *ReqsimMetrics) Site(name string) *ReqsimSiteMetrics {
	if m == nil {
		return nil
	}
	if s, ok := m.sites[name]; ok {
		return s
	}
	s := &ReqsimSiteMetrics{
		Requests:    m.siteRequests.With(name),
		Dropped:     m.siteDropped.With(name),
		P50Sec:      m.siteP50.With(name),
		P95Sec:      m.siteP95.With(name),
		P99Sec:      m.siteP99.With(name),
		QueueLen:    m.siteQueue.With(name),
		ModelErr:    m.siteModelErr.With(name),
		RespSeconds: m.siteResp.With(name),
	}
	m.sites[name] = s
	return s
}

// ObserveReplay folds one site's replayed slot into the instruments.
// modelErr is the relative |empirical − analytic|/analytic mean-jobs
// error; pass a negative value when no analytic prediction exists (the
// error series is skipped, everything else recorded).
func (m *ReqsimMetrics) ObserveReplay(site string, requests, dropped int, events int64,
	p50, p95, p99, meanJobs, modelErr float64) {
	if m == nil {
		return
	}
	m.Replays.Inc()
	m.Requests.Add(float64(requests))
	m.Events.Add(float64(events))
	s := m.Site(site)
	s.Requests.Add(float64(requests))
	s.Dropped.Add(float64(dropped))
	s.P50Sec.Set(p50)
	s.P95Sec.Set(p95)
	s.P99Sec.Set(p99)
	s.QueueLen.Set(meanJobs)
	if modelErr >= 0 {
		m.ModelErrSum.Add(modelErr)
		s.ModelErr.Set(modelErr)
	}
	s.RespSeconds.Observe(p50)
	s.RespSeconds.Observe(p95)
	s.RespSeconds.Observe(p99)
}
