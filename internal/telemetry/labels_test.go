package telemetry

import (
	"reflect"
	"sync"
	"testing"
)

// TestLabeledCounterConcurrentNoLostIncrements hammers one vector from 32
// goroutines over overlapping tuples (this is the -race workout for the
// striped intern path) and requires exact totals: every increment lands
// on exactly one child, none lost to a racing create.
func TestLabeledCounterConcurrentNoLostIncrements(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test.hits", "", "site")
	sites := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const goroutines = 32
	const perSite = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine rotates through every site, starting at its
			// own offset so first-touch interning races across tuples.
			for i := 0; i < perSite*len(sites); i++ {
				lc.With(sites[(g+i)%len(sites)]).Inc()
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot().LabeledCounters["test.hits"]
	want := float64(goroutines * perSite)
	for _, site := range sites {
		got, ok := snap.Get(site)
		if !ok || got != want {
			t.Fatalf("test.hits{site=%q} = %v (ok=%v), want %v", site, got, ok, want)
		}
	}
	if len(snap.Series) != len(sites) {
		t.Fatalf("got %d series, want %d", len(snap.Series), len(sites))
	}
}

// TestLabeledSnapshotDeterministicOrder pins the sorted-series contract:
// tuples interned in scrambled order always snapshot in lexicographic
// label-value order, and two snapshots of the same state are identical.
func TestLabeledSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test.series", "", "site", "kind")
	for _, tup := range [][2]string{{"z", "b"}, {"a", "b"}, {"z", "a"}, {"m", "x"}, {"a", "a"}} {
		lc.With(tup[0], tup[1]).Inc()
	}
	first := r.Snapshot().LabeledCounters["test.series"]
	wantOrder := [][]string{{"a", "a"}, {"a", "b"}, {"m", "x"}, {"z", "a"}, {"z", "b"}}
	for i, ser := range first.Series {
		if !reflect.DeepEqual(ser.Values, wantOrder[i]) {
			t.Fatalf("series[%d].Values = %v, want %v", i, ser.Values, wantOrder[i])
		}
	}
	second := r.Snapshot().LabeledCounters["test.series"]
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("snapshots of identical state differ:\n%+v\n%+v", first, second)
	}
}

// TestWithInternsOneChildPerTuple pins the handle-caching contract the
// fleet hot path relies on: With returns the same *Counter every time
// for a tuple, and distinct tuples get distinct children.
func TestWithInternsOneChildPerTuple(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test.handles", "", "site")
	a1, a2, b := lc.With("a"), lc.With("a"), lc.With("b")
	if a1 != a2 {
		t.Fatal("With(a) returned two different children")
	}
	if a1 == b {
		t.Fatal("With(a) and With(b) share a child")
	}
}

// TestTupleKeyCollisionFree pins the length-prefixed key encoding:
// ("ab","c") and ("a","bc") concatenate identically but must intern as
// different tuples.
func TestTupleKeyCollisionFree(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test.tuples", "", "x", "y")
	lc.With("ab", "c").Add(1)
	lc.With("a", "bc").Add(10)
	snap := r.Snapshot().LabeledCounters["test.tuples"]
	if v, _ := snap.Get("ab", "c"); v != 1 {
		t.Fatalf(`{"ab","c"} = %v, want 1`, v)
	}
	if v, _ := snap.Get("a", "bc"); v != 10 {
		t.Fatalf(`{"a","bc"} = %v, want 10`, v)
	}
}

// TestWithWrongArityPanics: a tuple of the wrong width is a programming
// error, caught loudly at the call site.
func TestWithWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test.arity", "", "site", "kind")
	defer func() {
		if recover() == nil {
			t.Fatal("With with one value on a two-label vector did not panic")
		}
	}()
	lc.With("just-one")
}

// TestLabeledHistogramSharedBounds: every child shares the construction
// bucket layout, and NaN observations land in Invalid, not the buckets.
func TestLabeledHistogramSharedBounds(t *testing.T) {
	r := NewRegistry()
	lh := r.LabeledHistogram("test.lat", "", []float64{1, 10}, "site")
	lh.With("a").Observe(0.5)
	lh.With("a").Observe(5)
	lh.With("a").Observe(nan())
	lh.With("b").Observe(100)

	snap := r.Snapshot().LabeledHistograms["test.lat"]
	a, ok := snap.Get("a")
	if !ok || a.Count != 2 || a.Invalid != 1 {
		t.Fatalf("site a hist = %+v (ok=%v), want count 2 invalid 1", a, ok)
	}
	if !reflect.DeepEqual(a.Counts, []uint64{1, 1, 0}) {
		t.Fatalf("site a counts = %v", a.Counts)
	}
	b, _ := snap.Get("b")
	if !reflect.DeepEqual(b.Bounds, a.Bounds) {
		t.Fatalf("children disagree on bounds: %v vs %v", b.Bounds, a.Bounds)
	}
	if !reflect.DeepEqual(b.Counts, []uint64{0, 0, 1}) {
		t.Fatalf("site b counts = %v, want overflow bucket", b.Counts)
	}
}

// TestRegistryLabeledGetOrCreate: the registry hands back the same vector
// for a name, ignoring later help/label arguments like Histogram ignores
// later bounds.
func TestRegistryLabeledGetOrCreate(t *testing.T) {
	r := NewRegistry()
	first := r.LabeledGauge("test.g", "the help", "site")
	second := r.LabeledGauge("test.g", "different help", "other")
	if first != second {
		t.Fatal("registry created two vectors for one name")
	}
	first.With("x").Set(4)
	snap := r.Snapshot().LabeledGauges["test.g"]
	if snap.Help != "the help" {
		t.Fatalf("help = %q, want the first registration's", snap.Help)
	}
	if !reflect.DeepEqual(snap.Labels, []string{"site"}) {
		t.Fatalf("labels = %v, want the first registration's", snap.Labels)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
