package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"repro/internal/sim"
)

// SlotStreamer writes one NDJSON record per settled slot, flushing after
// every record so a year-long run is live-tailable while it executes
// (`cocasim -stream run.ndjson` + `tail -f`). It is a sim.Observer
// factory: attach Observer() to an engine, then Close when the run ends.
type SlotStreamer struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

// streamRecord fixes the NDJSON field layout independently of the
// SlotRecord struct, so the wire format is stable under internal
// refactors.
type streamRecord struct {
	Slot           int     `json:"slot"`
	LambdaRPS      float64 `json:"lambda_rps"`
	PriceUSDPerKWh float64 `json:"price_usd_per_kwh"`
	OnsiteKW       float64 `json:"onsite_kw"`
	OffsiteKWh     float64 `json:"offsite_kwh"`
	Speed          int     `json:"speed"`
	Active         int     `json:"active"`
	PowerKW        float64 `json:"power_kw"`
	EnergyKWh      float64 `json:"energy_kwh"`
	GridKWh        float64 `json:"grid_kwh"`
	ElectricityUSD float64 `json:"electricity_usd"`
	DelayCost      float64 `json:"delay_cost"`
	DelayUSD       float64 `json:"delay_usd"`
	SwitchUSD      float64 `json:"switch_usd"`
	TotalUSD       float64 `json:"total_usd"`
	DeficitKWh     float64 `json:"deficit_kwh"`
}

// NewSlotStreamer wraps w in a flushed-per-record NDJSON encoder.
func NewSlotStreamer(w io.Writer) *SlotStreamer {
	buf := bufio.NewWriter(w)
	return &SlotStreamer{buf: buf, enc: json.NewEncoder(buf)}
}

// Observe writes one slot record. The first write error sticks and
// silences the rest of the stream (observers cannot fail the run).
func (s *SlotStreamer) Observe(rec sim.SlotRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(streamRecord{
		Slot:           rec.Slot,
		LambdaRPS:      rec.LambdaRPS,
		PriceUSDPerKWh: rec.PriceUSDPerKWh,
		OnsiteKW:       rec.OnsiteKW,
		OffsiteKWh:     rec.OffsiteKWh,
		Speed:          rec.Speed,
		Active:         rec.Active,
		PowerKW:        rec.PowerKW,
		EnergyKWh:      rec.EnergyKWh,
		GridKWh:        rec.GridKWh,
		ElectricityUSD: rec.ElectricityUSD,
		DelayCost:      rec.DelayCost,
		DelayUSD:       rec.DelayUSD,
		SwitchUSD:      rec.SwitchUSD,
		TotalUSD:       rec.TotalUSD,
		DeficitKWh:     rec.DeficitKWh,
	}); err != nil {
		s.err = err
		return
	}
	if err := s.buf.Flush(); err != nil {
		s.err = err
	}
}

// Observer returns the per-slot hook to hand to sim.NewEngine.
func (s *SlotStreamer) Observer() sim.Observer {
	return s.Observe
}

// Close flushes the stream and reports the first error the stream hit.
func (s *SlotStreamer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
