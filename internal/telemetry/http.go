package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/telemetry/promtext"
	"repro/internal/telemetry/span"
)

var (
	publishMu        sync.Mutex
	publishedExpvars *Registry
)

// PublishExpvar exposes the registry under the "coca" expvar name, so
// /debug/vars carries the full snapshot next to the runtime's memstats.
// Expvar is a process-wide singleton with no Unpublish (and a panic on
// duplicate names), so only the first registry published wins the name.
// The return value reports whether r is the exported registry; a false
// means some earlier registry owns /debug/vars and the caller should log
// that this one is not exported rather than silently believing it is.
func PublishExpvar(r *Registry) bool {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishedExpvars == nil {
		publishedExpvars = r
		expvar.Publish("coca", expvar.Func(func() any { return r.Snapshot() }))
	}
	return publishedExpvars == r
}

// RegisterOpts tunes which observability endpoints Register mounts.
type RegisterOpts struct {
	// NoPprof leaves the /debug/pprof endpoints unmounted — for
	// production listeners where live profiling and symbol dumps should
	// not ride the public control plane.
	NoPprof bool
}

// Handler serves the observability endpoints:
//
//	/metrics       — Prometheus text exposition (flat + labeled series)
//	/metrics.json  — the registry snapshot as JSON
//	/spans         — the span tracer's buffer summary as JSON (404 when
//	                 no tracer is attached)
//	/debug/vars    — expvar (includes the registry via PublishExpvar)
//	/debug/pprof/  — the standard pprof index, profiles and traces
//
// tr may be nil: a metrics-only process simply has no /spans data.
func Handler(r *Registry, tr *span.Tracer) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r, tr)
	return mux
}

// Register mounts the observability endpoints of Handler onto an existing
// mux with default options, so a process serving its own API (the cocad
// control plane) exposes application and telemetry endpoints from one
// listener.
func Register(mux *http.ServeMux, r *Registry, tr *span.Tracer) {
	RegisterWith(mux, r, tr, RegisterOpts{})
}

// RegisterWith is Register with explicit options (pprof gating).
func RegisterWith(mux *http.ServeMux, r *Registry, tr *span.Tracer, opts RegisterOpts) {
	// Best effort: when a second registry is mounted in one process only
	// the first owns /debug/vars. Callers that care check PublishExpvar
	// themselves (cocad logs the loss).
	PublishExpvar(r)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promtext.ContentType)
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.Error(w, "no span tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr.Summarize()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if !opts.NoPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Serve binds addr and serves Handler(r, tr) in the background. It
// returns once the listener is bound (so the caller can log the resolved
// address) together with the server; callers own the server's lifetime
// and should srv.Shutdown (or srv.Close) when the run ends so the
// listener is released.
func Serve(addr string, r *Registry, tr *span.Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r, tr)}
	go func() {
		// ErrServerClosed on shutdown; anything else is already visible
		// through failed scrapes, and a metrics sidecar must never take
		// the run down with it.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}
