package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/telemetry/span"
)

var publishOnce sync.Once

// PublishExpvar exposes the registry under the "coca" expvar name, so
// /debug/vars carries the full snapshot next to the runtime's memstats.
// Only the first registry wins the name (expvar panics on duplicates);
// one process, one published registry.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("coca", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Handler serves the observability endpoints:
//
//	/metrics      — the registry snapshot as JSON
//	/spans        — the span tracer's buffer summary as JSON (404 when
//	                no tracer is attached)
//	/debug/vars   — expvar (includes the registry via PublishExpvar)
//	/debug/pprof/ — the standard pprof index, profiles and traces
//
// tr may be nil: a metrics-only process simply has no /spans data.
func Handler(r *Registry, tr *span.Tracer) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r, tr)
	return mux
}

// Register mounts the observability endpoints of Handler onto an existing
// mux, so a process serving its own API (the cocad control plane) exposes
// application and telemetry endpoints from one listener.
func Register(mux *http.ServeMux, r *Registry, tr *span.Tracer) {
	PublishExpvar(r)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		if tr == nil {
			http.Error(w, "no span tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr.Summarize()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve binds addr and serves Handler(r, tr) in the background. It
// returns once the listener is bound (so the caller can log the resolved
// address) together with the server; callers own the server's lifetime
// and should srv.Shutdown (or srv.Close) when the run ends so the
// listener is released.
func Serve(addr string, r *Registry, tr *span.Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r, tr)}
	go func() {
		// ErrServerClosed on shutdown; anything else is already visible
		// through failed scrapes, and a metrics sidecar must never take
		// the run down with it.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}
