// Package telemetry is the run-time observability layer over the
// Engine/GSD stack: a small metrics core (counters, gauges, histograms
// with a fixed bucket layout behind a registry) plus typed instruments
// for this domain — per-slot cost/grid/deficit/queue series from the sim
// engine's observer hooks, GSD iteration/acceptance/convergence stats,
// and experiment-pool progress. Production carbon-aware schedulers are
// built around exactly this kind of continuously exported power/carbon
// telemetry (Radovanović et al., "Carbon-Aware Computing for
// Datacenters"), and every instrument here doubles as the measurement
// harness later performance work is judged against.
//
// The hot path is allocation-free: counters and gauges are single atomic
// words, histograms take one short mutex-guarded pass over a fixed
// bucket layout. Instruments are created up front (where allocation and
// registry locking happen once) and then written to concurrently.
//
// Two flavors of instrument coexist. Flat instruments ("run.total_usd")
// are a single series per name. Labeled vectors (LabeledCounter,
// LabeledGauge, LabeledHistogram) key a family of series by a small label
// tuple — per-site, per-endpoint, per-shard — and render as dimensional
// series in the Prometheus exposition (WritePrometheus, mounted at
// /metrics). Labels must be low-cardinality: site names and endpoint
// paths, never slot indices or request ids.
//
// Expvar is a process-wide singleton: PublishExpvar can export exactly
// one registry per process under the "coca" name (expvar.Publish panics
// on duplicates and has no Unpublish). The first registry published wins;
// later calls for other registries return false so the caller can log
// that /debug/vars will not carry them. The Prometheus and JSON endpoints
// have no such constraint — every Registry serves its own.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically written accumulator. Add accepts any float
// delta — signed series such as the carbon deficit accumulate through a
// Counter too — so Value reports the running sum, not a strictly
// increasing quantity.
type Counter struct {
	bits atomic.Uint64 // float64 sum
}

// Add accumulates v. It is lock-free and safe for concurrent use. A NaN
// delta is dropped: accumulating it would turn the running sum — and every
// later read — into NaN with no way back, so a poisoned input must not
// destroy the series it feeds.
func (c *Counter) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Inc accumulates 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the running sum.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add shifts the gauge by delta — the level-style use (in-flight jobs,
// queue occupancy) where concurrent writers increment and decrement. A NaN
// delta is dropped for the same reason as Counter.Add: unlike Set (whose
// last-write-wins NaN heals on the next write), an accumulated NaN is
// permanent.
func (g *Gauge) Add(delta float64) {
	if math.IsNaN(delta) {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Histogram is a fixed-layout distribution: Bounds[i] is the inclusive
// upper edge of bucket i, with one implicit overflow bucket at the end.
// The layout is fixed at construction, so Observe never allocates.
type Histogram struct {
	bounds []float64

	mu      sync.Mutex
	counts  []uint64
	count   uint64
	invalid uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds. An empty bounds slice yields a single overflow bucket (the
// histogram still tracks count/sum/min/max).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBuckets returns n ascending bounds start, start·factor, … — the
// standard layout for latency- and cost-like long-tailed series.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample. A NaN sample is counted as invalid rather
// than bucketed: sort.SearchFloat64s would silently drop it into the
// overflow bucket and sum += NaN would poison Sum/Mean for the rest of the
// run. Invalid observations are visible in the snapshot's Invalid count so
// a producer emitting garbage is detectable, not laundered.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		h.mu.Lock()
		h.invalid++
		h.mu.Unlock()
		return
	}
	// Bucket search outside the lock: bounds are immutable.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	// Invalid counts NaN observations, which are excluded from every other
	// field (buckets, Count, Sum, Min, Max, Mean).
	Invalid uint64  `json:"invalid,omitempty"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
}

// Snapshot copies the histogram state under the lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Counts:  append([]uint64(nil), h.counts...),
		Count:   h.count,
		Invalid: h.invalid,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Registry names and owns instruments — flat ones and labeled vectors.
// Get-or-create methods are mutex-guarded and intended for setup; the
// instruments they return are written to without touching the registry
// again.
type Registry struct {
	mu                sync.Mutex
	counters          map[string]*Counter
	gauges            map[string]*Gauge
	histograms        map[string]*Histogram
	labeledCounters   map[string]*LabeledCounter
	labeledGauges     map[string]*LabeledGauge
	labeledHistograms map[string]*LabeledHistogram
	scrapeHooks       []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:          make(map[string]*Counter),
		gauges:            make(map[string]*Gauge),
		histograms:        make(map[string]*Histogram),
		labeledCounters:   make(map[string]*LabeledCounter),
		labeledGauges:     make(map[string]*LabeledGauge),
		labeledHistograms: make(map[string]*LabeledHistogram),
	}
}

// OnScrape registers a hook that runs at the start of every Snapshot (and
// therefore every exposition scrape), before instrument state is copied.
// Pull-style collectors — the runtime collector, the settle-lag gauge —
// use it to refresh gauges exactly when they are read.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.scrapeHooks = append(r.scrapeHooks, fn)
	r.mu.Unlock()
}

// runScrapeHooks invokes the hooks outside the registry lock, so a hook
// may itself resolve registry instruments.
func (r *Registry) runScrapeHooks() {
	r.mu.Lock()
	hooks := r.scrapeHooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored — the layout is fixed).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// LabeledCounter returns the named counter vector over the given label
// names, creating it on first use (later help/labels are ignored — the
// shape is fixed, exactly like Histogram bounds).
func (r *Registry) LabeledCounter(name, help string, labels ...string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.labeledCounters[name]
	if !ok {
		c = &LabeledCounter{vec[Counter]{
			name: name, help: help, keys: append([]string(nil), labels...),
			newChild: func() *Counter { return &Counter{} },
		}}
		r.labeledCounters[name] = c
	}
	return c
}

// LabeledGauge returns the named gauge vector, creating it on first use.
func (r *Registry) LabeledGauge(name, help string, labels ...string) *LabeledGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.labeledGauges[name]
	if !ok {
		g = &LabeledGauge{vec[Gauge]{
			name: name, help: help, keys: append([]string(nil), labels...),
			newChild: func() *Gauge { return &Gauge{} },
		}}
		r.labeledGauges[name] = g
	}
	return g
}

// LabeledHistogram returns the named histogram vector, creating it with
// the given bounds on first use; every child shares the bucket layout.
func (r *Registry) LabeledHistogram(name, help string, bounds []float64, labels ...string) *LabeledHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.labeledHistograms[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		h = &LabeledHistogram{vec[Histogram]{
			name: name, help: help, keys: append([]string(nil), labels...),
			newChild: func() *Histogram { return NewHistogram(b) },
		}}
		r.labeledHistograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered instrument,
// marshaled with stable field names so summaries diff cleanly.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`

	LabeledCounters   map[string]LabeledSnapshot           `json:"labeled_counters,omitempty"`
	LabeledGauges     map[string]LabeledSnapshot           `json:"labeled_gauges,omitempty"`
	LabeledHistograms map[string]LabeledHistogramsSnapshot `json:"labeled_histograms,omitempty"`
}

// Snapshot copies the registry's current state, running the scrape hooks
// first so pull-style collectors are fresh.
func (r *Registry) Snapshot() Snapshot {
	r.runScrapeHooks()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	lcs := make(map[string]*LabeledCounter, len(r.labeledCounters))
	for k, v := range r.labeledCounters {
		lcs[k] = v
	}
	lgs := make(map[string]*LabeledGauge, len(r.labeledGauges))
	for k, v := range r.labeledGauges {
		lgs[k] = v
	}
	lhs := make(map[string]*LabeledHistogram, len(r.labeledHistograms))
	for k, v := range r.labeledHistograms {
		lhs[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]float64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	if len(lcs) > 0 {
		s.LabeledCounters = make(map[string]LabeledSnapshot, len(lcs))
		for k, v := range lcs {
			s.LabeledCounters[k] = v.snapshot()
		}
	}
	if len(lgs) > 0 {
		s.LabeledGauges = make(map[string]LabeledSnapshot, len(lgs))
		for k, v := range lgs {
			s.LabeledGauges[k] = v.snapshot()
		}
	}
	if len(lhs) > 0 {
		s.LabeledHistograms = make(map[string]LabeledHistogramsSnapshot, len(lhs))
		for k, v := range lhs {
			s.LabeledHistograms[k] = v.snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON — the final
// telemetry summary cocasim drops next to its benchmark report.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
