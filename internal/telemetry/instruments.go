package telemetry

import (
	"repro/internal/sim"
)

// Naming convention: instruments registered by New*Metrics live under a
// caller-chosen prefix ("run", "gsd", "pool", …) so several runs or
// solvers can share one registry without colliding, and the flattened
// names read naturally in expvar / the JSON summary
// ("run.total_usd", "gsd.iterations", "pool.jobs_done").

// RunMetrics instruments one simulation run (or any stream of settled
// slots): per-slot cost/grid/deficit series as running sums plus
// distributions, and the policy's carbon-deficit queue as a gauge.
type RunMetrics struct {
	Slots      *Counter // settled slots
	TotalUSD   *Counter // running total cost
	ElecUSD    *Counter // running electricity cost
	DelayUSD   *Counter // running delay cost
	SwitchUSD  *Counter // running switching cost
	GridKWh    *Counter // running grid draw
	EnergyKWh  *Counter // running facility energy
	DeficitKWh *Counter // running carbon deficit (signed)

	Queue      *Gauge // carbon-deficit queue length q(t), exported by policies
	LastSlot   *Gauge // most recently settled slot index
	LastActive *Gauge // most recent active-server count
	LastSpeed  *Gauge // most recent speed level

	SlotCostUSD *Histogram // distribution of per-slot total cost
	SlotGridKWh *Histogram // distribution of per-slot grid draw
}

// NewRunMetrics registers a run's instruments under prefix.
func NewRunMetrics(r *Registry, prefix string) *RunMetrics {
	p := prefix + "."
	return &RunMetrics{
		Slots:       r.Counter(p + "slots"),
		TotalUSD:    r.Counter(p + "total_usd"),
		ElecUSD:     r.Counter(p + "electricity_usd"),
		DelayUSD:    r.Counter(p + "delay_usd"),
		SwitchUSD:   r.Counter(p + "switch_usd"),
		GridKWh:     r.Counter(p + "grid_kwh"),
		EnergyKWh:   r.Counter(p + "energy_kwh"),
		DeficitKWh:  r.Counter(p + "deficit_kwh"),
		Queue:       r.Gauge(p + "queue_kwh"),
		LastSlot:    r.Gauge(p + "last_slot"),
		LastActive:  r.Gauge(p + "last_active"),
		LastSpeed:   r.Gauge(p + "last_speed"),
		SlotCostUSD: r.Histogram(p+"slot_cost_usd", ExpBuckets(1, 2, 20)),
		SlotGridKWh: r.Histogram(p+"slot_grid_kwh", ExpBuckets(1, 2, 24)),
	}
}

// Observe folds one settled slot into the instruments.
func (m *RunMetrics) Observe(rec sim.SlotRecord) {
	m.Slots.Inc()
	m.TotalUSD.Add(rec.TotalUSD)
	m.ElecUSD.Add(rec.ElectricityUSD)
	m.DelayUSD.Add(rec.DelayUSD)
	m.SwitchUSD.Add(rec.SwitchUSD)
	m.GridKWh.Add(rec.GridKWh)
	m.EnergyKWh.Add(rec.EnergyKWh)
	m.DeficitKWh.Add(rec.DeficitKWh)
	m.LastSlot.Set(float64(rec.Slot))
	m.LastActive.Set(float64(rec.Active))
	m.LastSpeed.Set(float64(rec.Speed))
	m.SlotCostUSD.Observe(rec.TotalUSD)
	m.SlotGridKWh.Observe(rec.GridKWh)
}

// Observer adapts the instruments to the engine's per-slot hook:
//
//	e, _ := sim.NewEngine(sc, policy, metrics.Observer())
func (m *RunMetrics) Observer() sim.Observer {
	return m.Observe
}

// SolveMetrics instruments a P3 solver (GSD): solve counts, iteration
// and acceptance totals, early patience exits, warm-start cold
// fallbacks, distributed dual-decomposition rounds, and the per-solve
// wall-time distribution.
type SolveMetrics struct {
	Solves        *Counter
	Iterations    *Counter
	Accepted      *Counter
	PatienceExits *Counter // solves stopped early by the patience criterion
	ColdFallbacks *Counter // warm starts dropped (stale length or infeasible)
	DualRounds    *Counter // dual-decomposition rounds (distributed engine only)

	// Speculative-chain stats (sequential engine with Options.Workers > 1):
	// windows opened, proposals evaluated ahead of the replay, evaluations
	// the replay actually consumed, and evaluations discarded unused.
	SpecWindows *Counter
	SpecEvals   *Counter
	SpecHits    *Counter
	SpecWasted  *Counter

	SolveSeconds *Histogram // wall time per solve
	ItersPerRun  *Histogram // iterations per solve (convergence effort)
	WindowSize   *Histogram // speculated steps per window (parallel chain)
}

// NewSolveMetrics registers a solver's instruments under prefix.
func NewSolveMetrics(r *Registry, prefix string) *SolveMetrics {
	p := prefix + "."
	return &SolveMetrics{
		Solves:        r.Counter(p + "solves"),
		Iterations:    r.Counter(p + "iterations"),
		Accepted:      r.Counter(p + "accepted_moves"),
		PatienceExits: r.Counter(p + "patience_exits"),
		ColdFallbacks: r.Counter(p + "cold_fallbacks"),
		DualRounds:    r.Counter(p + "dual_rounds"),
		SpecWindows:   r.Counter(p + "spec_windows"),
		SpecEvals:     r.Counter(p + "spec_evals"),
		SpecHits:      r.Counter(p + "spec_hits"),
		SpecWasted:    r.Counter(p + "spec_wasted"),
		SolveSeconds:  r.Histogram(p+"solve_seconds", ExpBuckets(1e-5, 4, 12)),
		ItersPerRun:   r.Histogram(p+"iterations_per_solve", ExpBuckets(8, 2, 12)),
		WindowSize:    r.Histogram(p+"spec_window_size", ExpBuckets(1, 2, 10)),
	}
}

// FinishSolve folds one completed solve into the instruments.
func (m *SolveMetrics) FinishSolve(iters, accepted int, patienceExit bool, seconds float64) {
	m.Solves.Inc()
	m.Iterations.Add(float64(iters))
	m.Accepted.Add(float64(accepted))
	if patienceExit {
		m.PatienceExits.Inc()
	}
	m.SolveSeconds.Observe(seconds)
	m.ItersPerRun.Observe(float64(iters))
}

// FinishSpec folds one parallel solve's speculation accounting into the
// instruments. The sequential engine (Workers <= 1) opens no windows and
// never calls it.
func (m *SolveMetrics) FinishSpec(windows, evals, hits, wasted int) {
	m.SpecWindows.Add(float64(windows))
	m.SpecEvals.Add(float64(evals))
	m.SpecHits.Add(float64(hits))
	m.SpecWasted.Add(float64(wasted))
}

// ObserveWindow records the size of one speculative window.
func (m *SolveMetrics) ObserveWindow(steps int) {
	m.WindowSize.Observe(float64(steps))
}

// GeoSiteMetrics is one federation site's slice of GeoMetrics. The
// instruments are children of site-labeled vectors, so the exposition
// renders them as geo_site_*{site="…"} series.
type GeoSiteMetrics struct {
	Solves     *Counter // slots in which the site carried load (one P3 solve each)
	LoadRPS    *Counter // running allocated load
	Chunks     *Counter // greedy allocation chunks won
	CostUSD    *Counter // running site cost (w·grid + β·delay)
	GridKWh    *Counter // running grid draw
	DeficitKWh *Gauge   // current carbon-deficit queue length
}

// GeoMetrics instruments a geo federation run: federation-level step and
// cost totals plus a site-labeled breakdown. It deliberately takes plain
// values, not geo types, so package geo can import telemetry without a
// cycle. All methods are nil-safe.
type GeoMetrics struct {
	Steps    *Counter
	TotalUSD *Counter
	GridKWh  *Counter

	P3Solves    *Counter // fresh P3 solves spent on the split hot path
	MemoHits    *Counter // candidate reads served by the per-slot memo table
	SolveErrors *Counter // real (non-infeasibility) solver failures surfaced by Step

	siteSolves  *LabeledCounter
	siteLoad    *LabeledCounter
	siteChunks  *LabeledCounter
	siteCost    *LabeledCounter
	siteGrid    *LabeledCounter
	siteDeficit *LabeledGauge
	sites       map[string]*GeoSiteMetrics // cached per-site handles
}

// NewGeoMetrics registers federation instruments under prefix
// (conventionally "geo"); per-site series live in site-labeled vectors
// ("<prefix>.site.solves"{site="…"}, …), their tuples interned the first
// time a site is observed.
func NewGeoMetrics(r *Registry, prefix string) *GeoMetrics {
	p := prefix + "."
	return &GeoMetrics{
		Steps:       r.Counter(p + "steps"),
		TotalUSD:    r.Counter(p + "total_usd"),
		GridKWh:     r.Counter(p + "grid_kwh"),
		P3Solves:    r.Counter(p + "p3_solves"),
		MemoHits:    r.Counter(p + "memo_hits"),
		SolveErrors: r.Counter(p + "solve_errors"),
		siteSolves:  r.LabeledCounter(p+"site.solves", "slots in which the site carried load", "site"),
		siteLoad:    r.LabeledCounter(p+"site.load_rps", "running load allocated to the site", "site"),
		siteChunks:  r.LabeledCounter(p+"site.chunks", "greedy allocation chunks won by the site", "site"),
		siteCost:    r.LabeledCounter(p+"site.cost_usd", "running site cost (w*grid + beta*delay)", "site"),
		siteGrid:    r.LabeledCounter(p+"site.grid_kwh", "running site grid draw", "site"),
		siteDeficit: r.LabeledGauge(p+"site.deficit_kwh", "site carbon-deficit queue length", "site"),
		sites:       make(map[string]*GeoSiteMetrics),
	}
}

// Site returns (interning on first use) the named site's instruments.
func (m *GeoMetrics) Site(name string) *GeoSiteMetrics {
	if m == nil {
		return nil
	}
	if s, ok := m.sites[name]; ok {
		return s
	}
	s := &GeoSiteMetrics{
		Solves:     m.siteSolves.With(name),
		LoadRPS:    m.siteLoad.With(name),
		Chunks:     m.siteChunks.With(name),
		CostUSD:    m.siteCost.With(name),
		GridKWh:    m.siteGrid.With(name),
		DeficitKWh: m.siteDeficit.With(name),
	}
	m.sites[name] = s
	return s
}

// ObserveStep folds one federation slot's totals into the instruments.
func (m *GeoMetrics) ObserveStep(totalUSD, totalGridKWh float64) {
	if m == nil {
		return
	}
	m.Steps.Inc()
	m.TotalUSD.Add(totalUSD)
	m.GridKWh.Add(totalGridKWh)
}

// ObserveSite folds one site's share of a slot into the instruments.
func (m *GeoMetrics) ObserveSite(name string, loadRPS float64, chunks int, costUSD, gridKWh float64) {
	if m == nil {
		return
	}
	s := m.Site(name)
	if loadRPS > 0 {
		s.Solves.Inc()
	}
	s.LoadRPS.Add(loadRPS)
	s.Chunks.Add(float64(chunks))
	s.CostUSD.Add(costUSD)
	s.GridKWh.Add(gridKWh)
}

// ObserveSplit folds one slot's split-path solve accounting into the
// instruments: fresh P3 solves spent and the candidate evaluations the
// per-slot memo table absorbed (each hit is a solve the naive greedy loop
// would have paid for).
func (m *GeoMetrics) ObserveSplit(p3Solves, memoHits int) {
	if m == nil {
		return
	}
	m.P3Solves.Add(float64(p3Solves))
	m.MemoHits.Add(float64(memoHits))
}

// IncSolveError records a real solver failure — anything beyond
// capacity-type infeasibility — surfaced by a federation step.
func (m *GeoMetrics) IncSolveError() {
	if m == nil {
		return
	}
	m.SolveErrors.Inc()
}

// SetDeficit records a site's current carbon-deficit queue length.
func (m *GeoMetrics) SetDeficit(name string, kwh float64) {
	if m == nil {
		return
	}
	m.Site(name).DeficitKWh.Set(kwh)
}

// FleetSiteMetrics is one fleet site's slice of FleetMetrics: the slot
// outcome series. Solver-side stats (iterations, dual rounds, solve wall
// time) live in the per-shard SolveMetrics from SiteSolveMetrics.
type FleetSiteMetrics struct {
	LoadRPS     *Counter // running load allocated to the site
	CostUSD     *Counter // running site cost (w·grid + β·delay)
	GridKWh     *Counter // running grid draw
	SolveErrors *Counter // solver failures surfaced by the site's shard
	DeficitKWh  *Gauge   // current carbon-deficit queue length
}

// FleetMetrics instruments a geo.Fleet run: fleet-level step totals and
// wall time plus a site-labeled breakdown, including per-shard GSD solve
// stats assembled from the same labeled vectors (SiteSolveMetrics). Like
// GeoMetrics it takes plain values so geo imports telemetry, not the
// other way round. All methods are nil-safe.
type FleetMetrics struct {
	Steps       *Counter   // stepped fleet slots
	TotalUSD    *Counter   // running fleet cost
	GridKWh     *Counter   // running fleet grid draw
	StepSeconds *Histogram // wall time per fleet Step (fan-out included)

	siteLoad    *LabeledCounter
	siteCost    *LabeledCounter
	siteGrid    *LabeledCounter
	siteErrors  *LabeledCounter
	siteDeficit *LabeledGauge

	// Per-shard GSD solve stats, one SolveMetrics view per site.
	shardSolves     *LabeledCounter
	shardIters      *LabeledCounter
	shardAccepted   *LabeledCounter
	shardPatience   *LabeledCounter
	shardCold       *LabeledCounter
	shardDual       *LabeledCounter
	shardSpecWins   *LabeledCounter
	shardSpecEvals  *LabeledCounter
	shardSpecHits   *LabeledCounter
	shardSpecWaste  *LabeledCounter
	shardSeconds    *LabeledHistogram
	shardItersRun   *LabeledHistogram
	shardWindowSize *LabeledHistogram

	sites  map[string]*FleetSiteMetrics
	shards map[string]*SolveMetrics
}

// NewFleetMetrics registers fleet instruments under prefix
// (conventionally "fleet"). Site series are labeled vectors
// ("<prefix>.site.load_rps"{site="…"}, …); shard solver series mirror
// SolveMetrics names under "<prefix>.shard.*"{site="…"}.
func NewFleetMetrics(r *Registry, prefix string) *FleetMetrics {
	p := prefix + "."
	return &FleetMetrics{
		Steps:       r.Counter(p + "steps"),
		TotalUSD:    r.Counter(p + "total_usd"),
		GridKWh:     r.Counter(p + "grid_kwh"),
		StepSeconds: r.Histogram(p+"step_seconds", ExpBuckets(1e-5, 4, 14)),

		siteLoad:    r.LabeledCounter(p+"site.load_rps", "running load allocated to the site", "site"),
		siteCost:    r.LabeledCounter(p+"site.cost_usd", "running site cost (w*grid + beta*delay)", "site"),
		siteGrid:    r.LabeledCounter(p+"site.grid_kwh", "running site grid draw", "site"),
		siteErrors:  r.LabeledCounter(p+"site.solve_errors", "solver failures surfaced by the site's shard", "site"),
		siteDeficit: r.LabeledGauge(p+"site.deficit_kwh", "site carbon-deficit queue length", "site"),

		shardSolves:     r.LabeledCounter(p+"shard.solves", "GSD solves run by the site's shard", "site"),
		shardIters:      r.LabeledCounter(p+"shard.iterations", "GSD iterations spent by the site's shard", "site"),
		shardAccepted:   r.LabeledCounter(p+"shard.accepted_moves", "GSD moves accepted by the site's shard", "site"),
		shardPatience:   r.LabeledCounter(p+"shard.patience_exits", "solves stopped early by the patience criterion", "site"),
		shardCold:       r.LabeledCounter(p+"shard.cold_fallbacks", "warm starts dropped by the site's shard", "site"),
		shardDual:       r.LabeledCounter(p+"shard.dual_rounds", "dual-decomposition rounds run by the site's shard", "site"),
		shardSpecWins:   r.LabeledCounter(p+"shard.spec_windows", "speculative windows opened by the site's shard", "site"),
		shardSpecEvals:  r.LabeledCounter(p+"shard.spec_evals", "proposals evaluated speculatively by the site's shard", "site"),
		shardSpecHits:   r.LabeledCounter(p+"shard.spec_hits", "speculative evaluations consumed by the replay", "site"),
		shardSpecWaste:  r.LabeledCounter(p+"shard.spec_wasted", "speculative evaluations discarded unused", "site"),
		shardSeconds:    r.LabeledHistogram(p+"shard.solve_seconds", "wall time per shard solve", ExpBuckets(1e-5, 4, 12), "site"),
		shardItersRun:   r.LabeledHistogram(p+"shard.iterations_per_solve", "iterations per shard solve", ExpBuckets(8, 2, 12), "site"),
		shardWindowSize: r.LabeledHistogram(p+"shard.spec_window_size", "speculated steps per window", ExpBuckets(1, 2, 10), "site"),

		sites:  make(map[string]*FleetSiteMetrics),
		shards: make(map[string]*SolveMetrics),
	}
}

// Site returns (interning on first use) the named site's outcome
// instruments.
func (m *FleetMetrics) Site(name string) *FleetSiteMetrics {
	if m == nil {
		return nil
	}
	if s, ok := m.sites[name]; ok {
		return s
	}
	s := &FleetSiteMetrics{
		LoadRPS:     m.siteLoad.With(name),
		CostUSD:     m.siteCost.With(name),
		GridKWh:     m.siteGrid.With(name),
		SolveErrors: m.siteErrors.With(name),
		DeficitKWh:  m.siteDeficit.With(name),
	}
	m.sites[name] = s
	return s
}

// SiteSolveMetrics returns (interning on first use) a SolveMetrics view
// over the named site's shard series: every field is the site's child of
// the corresponding labeled vector, so handing it to the site's
// gsd.Solver (Opts.Metrics) records per-shard stats at exactly the flat
// SolveMetrics cost.
func (m *FleetMetrics) SiteSolveMetrics(name string) *SolveMetrics {
	if m == nil {
		return nil
	}
	if s, ok := m.shards[name]; ok {
		return s
	}
	s := &SolveMetrics{
		Solves:        m.shardSolves.With(name),
		Iterations:    m.shardIters.With(name),
		Accepted:      m.shardAccepted.With(name),
		PatienceExits: m.shardPatience.With(name),
		ColdFallbacks: m.shardCold.With(name),
		DualRounds:    m.shardDual.With(name),
		SpecWindows:   m.shardSpecWins.With(name),
		SpecEvals:     m.shardSpecEvals.With(name),
		SpecHits:      m.shardSpecHits.With(name),
		SpecWasted:    m.shardSpecWaste.With(name),
		SolveSeconds:  m.shardSeconds.With(name),
		ItersPerRun:   m.shardItersRun.With(name),
		WindowSize:    m.shardWindowSize.With(name),
	}
	m.shards[name] = s
	return s
}

// ObserveStep folds one fleet slot's totals and wall time into the
// instruments.
func (m *FleetMetrics) ObserveStep(totalUSD, totalGridKWh, seconds float64) {
	if m == nil {
		return
	}
	m.Steps.Inc()
	m.TotalUSD.Add(totalUSD)
	m.GridKWh.Add(totalGridKWh)
	m.StepSeconds.Observe(seconds)
}

// BatchMetrics instruments the batch-job scheduler: submission and
// completion counters, deferred (future-slot) submissions, served work,
// and the live queue depth / backlog gauges. Value-based for the same
// no-cycle reason as GeoMetrics; all methods are nil-safe.
type BatchMetrics struct {
	Submitted   *Counter // jobs accepted by Submit
	Deferred    *Counter // of those, jobs queued for a future arrival slot
	Completed   *Counter // jobs finished before their deadline
	Missed      *Counter // jobs whose deadline expired unfinished
	ServedHours *Counter // server-hours of batch work executed
	EnergyKWh   *Counter // computing energy charged to batch work

	QueueDepth   *Gauge // jobs currently eligible (arrived, not finished)
	BacklogHours *Gauge // remaining work across queue and future arrivals
}

// NewBatchMetrics registers scheduler instruments under prefix
// (conventionally "batch").
func NewBatchMetrics(r *Registry, prefix string) *BatchMetrics {
	p := prefix + "."
	return &BatchMetrics{
		Submitted:    r.Counter(p + "submitted"),
		Deferred:     r.Counter(p + "deferred"),
		Completed:    r.Counter(p + "completed"),
		Missed:       r.Counter(p + "missed"),
		ServedHours:  r.Counter(p + "served_server_hours"),
		EnergyKWh:    r.Counter(p + "energy_kwh"),
		QueueDepth:   r.Gauge(p + "queue_depth"),
		BacklogHours: r.Gauge(p + "backlog_server_hours"),
	}
}

// ObserveSubmit records one accepted submission.
func (m *BatchMetrics) ObserveSubmit(deferred bool) {
	if m == nil {
		return
	}
	m.Submitted.Inc()
	if deferred {
		m.Deferred.Inc()
	}
}

// ObserveStep folds one scheduled slot into the instruments.
func (m *BatchMetrics) ObserveStep(usedServerHours, energyKWh float64, completed, missed, queueDepth int, backlogHours float64) {
	if m == nil {
		return
	}
	m.ServedHours.Add(usedServerHours)
	m.EnergyKWh.Add(energyKWh)
	m.Completed.Add(float64(completed))
	m.Missed.Add(float64(missed))
	m.QueueDepth.Set(float64(queueDepth))
	m.BacklogHours.Set(backlogHours)
}

// PoolMetrics instruments the experiment worker pool: job progress,
// in-flight fan-out and the per-job wall-time distribution.
type PoolMetrics struct {
	JobsStarted *Counter
	JobsDone    *Counter
	JobErrors   *Counter
	InFlight    *Gauge
	Workers     *Gauge
	JobSeconds  *Histogram
}

// StartJob marks one job as picked up. It is nil-safe so pools can thread
// an optional *PoolMetrics without guarding every call site.
func (m *PoolMetrics) StartJob() {
	if m == nil {
		return
	}
	m.JobsStarted.Inc()
	m.InFlight.Add(1)
}

// EndJob marks one job as finished (successfully or not) after the given
// wall time. Nil-safe.
func (m *PoolMetrics) EndJob(failed bool, seconds float64) {
	if m == nil {
		return
	}
	m.InFlight.Add(-1)
	if failed {
		m.JobErrors.Inc()
	} else {
		m.JobsDone.Inc()
	}
	m.JobSeconds.Observe(seconds)
}

// SetWorkers records the pool's effective fan-out. Nil-safe.
func (m *PoolMetrics) SetWorkers(n int) {
	if m == nil {
		return
	}
	m.Workers.Set(float64(n))
}

// NewPoolMetrics registers pool instruments under prefix.
func NewPoolMetrics(r *Registry, prefix string) *PoolMetrics {
	p := prefix + "."
	return &PoolMetrics{
		JobsStarted: r.Counter(p + "jobs_started"),
		JobsDone:    r.Counter(p + "jobs_done"),
		JobErrors:   r.Counter(p + "job_errors"),
		InFlight:    r.Gauge(p + "in_flight"),
		Workers:     r.Gauge(p + "workers"),
		JobSeconds:  r.Histogram(p+"job_seconds", ExpBuckets(1e-4, 4, 12)),
	}
}
