package telemetry

import (
	"repro/internal/sim"
)

// Naming convention: instruments registered by New*Metrics live under a
// caller-chosen prefix ("run", "gsd", "pool", …) so several runs or
// solvers can share one registry without colliding, and the flattened
// names read naturally in expvar / the JSON summary
// ("run.total_usd", "gsd.iterations", "pool.jobs_done").

// RunMetrics instruments one simulation run (or any stream of settled
// slots): per-slot cost/grid/deficit series as running sums plus
// distributions, and the policy's carbon-deficit queue as a gauge.
type RunMetrics struct {
	Slots      *Counter // settled slots
	TotalUSD   *Counter // running total cost
	ElecUSD    *Counter // running electricity cost
	DelayUSD   *Counter // running delay cost
	SwitchUSD  *Counter // running switching cost
	GridKWh    *Counter // running grid draw
	EnergyKWh  *Counter // running facility energy
	DeficitKWh *Counter // running carbon deficit (signed)

	Queue      *Gauge // carbon-deficit queue length q(t), exported by policies
	LastSlot   *Gauge // most recently settled slot index
	LastActive *Gauge // most recent active-server count
	LastSpeed  *Gauge // most recent speed level

	SlotCostUSD *Histogram // distribution of per-slot total cost
	SlotGridKWh *Histogram // distribution of per-slot grid draw
}

// NewRunMetrics registers a run's instruments under prefix.
func NewRunMetrics(r *Registry, prefix string) *RunMetrics {
	p := prefix + "."
	return &RunMetrics{
		Slots:       r.Counter(p + "slots"),
		TotalUSD:    r.Counter(p + "total_usd"),
		ElecUSD:     r.Counter(p + "electricity_usd"),
		DelayUSD:    r.Counter(p + "delay_usd"),
		SwitchUSD:   r.Counter(p + "switch_usd"),
		GridKWh:     r.Counter(p + "grid_kwh"),
		EnergyKWh:   r.Counter(p + "energy_kwh"),
		DeficitKWh:  r.Counter(p + "deficit_kwh"),
		Queue:       r.Gauge(p + "queue_kwh"),
		LastSlot:    r.Gauge(p + "last_slot"),
		LastActive:  r.Gauge(p + "last_active"),
		LastSpeed:   r.Gauge(p + "last_speed"),
		SlotCostUSD: r.Histogram(p+"slot_cost_usd", ExpBuckets(1, 2, 20)),
		SlotGridKWh: r.Histogram(p+"slot_grid_kwh", ExpBuckets(1, 2, 24)),
	}
}

// Observe folds one settled slot into the instruments.
func (m *RunMetrics) Observe(rec sim.SlotRecord) {
	m.Slots.Inc()
	m.TotalUSD.Add(rec.TotalUSD)
	m.ElecUSD.Add(rec.ElectricityUSD)
	m.DelayUSD.Add(rec.DelayUSD)
	m.SwitchUSD.Add(rec.SwitchUSD)
	m.GridKWh.Add(rec.GridKWh)
	m.EnergyKWh.Add(rec.EnergyKWh)
	m.DeficitKWh.Add(rec.DeficitKWh)
	m.LastSlot.Set(float64(rec.Slot))
	m.LastActive.Set(float64(rec.Active))
	m.LastSpeed.Set(float64(rec.Speed))
	m.SlotCostUSD.Observe(rec.TotalUSD)
	m.SlotGridKWh.Observe(rec.GridKWh)
}

// Observer adapts the instruments to the engine's per-slot hook:
//
//	e, _ := sim.NewEngine(sc, policy, metrics.Observer())
func (m *RunMetrics) Observer() sim.Observer {
	return m.Observe
}

// SolveMetrics instruments a P3 solver (GSD): solve counts, iteration
// and acceptance totals, early patience exits, warm-start cold
// fallbacks, and the per-solve wall-time distribution.
type SolveMetrics struct {
	Solves        *Counter
	Iterations    *Counter
	Accepted      *Counter
	PatienceExits *Counter // solves stopped early by the patience criterion
	ColdFallbacks *Counter // warm starts dropped (stale length or infeasible)

	SolveSeconds *Histogram // wall time per solve
	ItersPerRun  *Histogram // iterations per solve (convergence effort)
}

// NewSolveMetrics registers a solver's instruments under prefix.
func NewSolveMetrics(r *Registry, prefix string) *SolveMetrics {
	p := prefix + "."
	return &SolveMetrics{
		Solves:        r.Counter(p + "solves"),
		Iterations:    r.Counter(p + "iterations"),
		Accepted:      r.Counter(p + "accepted_moves"),
		PatienceExits: r.Counter(p + "patience_exits"),
		ColdFallbacks: r.Counter(p + "cold_fallbacks"),
		SolveSeconds:  r.Histogram(p+"solve_seconds", ExpBuckets(1e-5, 4, 12)),
		ItersPerRun:   r.Histogram(p+"iterations_per_solve", ExpBuckets(8, 2, 12)),
	}
}

// FinishSolve folds one completed solve into the instruments.
func (m *SolveMetrics) FinishSolve(iters, accepted int, patienceExit bool, seconds float64) {
	m.Solves.Inc()
	m.Iterations.Add(float64(iters))
	m.Accepted.Add(float64(accepted))
	if patienceExit {
		m.PatienceExits.Inc()
	}
	m.SolveSeconds.Observe(seconds)
	m.ItersPerRun.Observe(float64(iters))
}

// GeoSiteMetrics is one federation site's slice of GeoMetrics.
type GeoSiteMetrics struct {
	Solves     *Counter // slots in which the site carried load (one P3 solve each)
	LoadRPS    *Counter // running allocated load
	Chunks     *Counter // greedy allocation chunks won
	CostUSD    *Counter // running site cost (w·grid + β·delay)
	GridKWh    *Counter // running grid draw
	DeficitKWh *Gauge   // current carbon-deficit queue length
}

// GeoMetrics instruments a geo federation run: federation-level step and
// cost totals plus a per-site breakdown. It deliberately takes plain
// values, not geo types, so package geo can import telemetry without a
// cycle. All methods are nil-safe.
type GeoMetrics struct {
	Steps    *Counter
	TotalUSD *Counter
	GridKWh  *Counter

	P3Solves    *Counter // fresh P3 solves spent on the split hot path
	MemoHits    *Counter // candidate reads served by the per-slot memo table
	SolveErrors *Counter // real (non-infeasibility) solver failures surfaced by Step

	registry *Registry
	prefix   string
	sites    map[string]*GeoSiteMetrics
}

// NewGeoMetrics registers federation instruments under prefix
// (conventionally "geo"); per-site instruments appear lazily as
// "<prefix>.site.<name>.*" the first time a site is observed.
func NewGeoMetrics(r *Registry, prefix string) *GeoMetrics {
	p := prefix + "."
	return &GeoMetrics{
		Steps:       r.Counter(p + "steps"),
		TotalUSD:    r.Counter(p + "total_usd"),
		GridKWh:     r.Counter(p + "grid_kwh"),
		P3Solves:    r.Counter(p + "p3_solves"),
		MemoHits:    r.Counter(p + "memo_hits"),
		SolveErrors: r.Counter(p + "solve_errors"),
		registry:    r,
		prefix:      prefix,
		sites:       make(map[string]*GeoSiteMetrics),
	}
}

// Site returns (registering on first use) the named site's instruments.
func (m *GeoMetrics) Site(name string) *GeoSiteMetrics {
	if m == nil {
		return nil
	}
	if s, ok := m.sites[name]; ok {
		return s
	}
	p := m.prefix + ".site." + name + "."
	s := &GeoSiteMetrics{
		Solves:     m.registry.Counter(p + "solves"),
		LoadRPS:    m.registry.Counter(p + "load_rps"),
		Chunks:     m.registry.Counter(p + "chunks"),
		CostUSD:    m.registry.Counter(p + "cost_usd"),
		GridKWh:    m.registry.Counter(p + "grid_kwh"),
		DeficitKWh: m.registry.Gauge(p + "deficit_kwh"),
	}
	m.sites[name] = s
	return s
}

// ObserveStep folds one federation slot's totals into the instruments.
func (m *GeoMetrics) ObserveStep(totalUSD, totalGridKWh float64) {
	if m == nil {
		return
	}
	m.Steps.Inc()
	m.TotalUSD.Add(totalUSD)
	m.GridKWh.Add(totalGridKWh)
}

// ObserveSite folds one site's share of a slot into the instruments.
func (m *GeoMetrics) ObserveSite(name string, loadRPS float64, chunks int, costUSD, gridKWh float64) {
	if m == nil {
		return
	}
	s := m.Site(name)
	if loadRPS > 0 {
		s.Solves.Inc()
	}
	s.LoadRPS.Add(loadRPS)
	s.Chunks.Add(float64(chunks))
	s.CostUSD.Add(costUSD)
	s.GridKWh.Add(gridKWh)
}

// ObserveSplit folds one slot's split-path solve accounting into the
// instruments: fresh P3 solves spent and the candidate evaluations the
// per-slot memo table absorbed (each hit is a solve the naive greedy loop
// would have paid for).
func (m *GeoMetrics) ObserveSplit(p3Solves, memoHits int) {
	if m == nil {
		return
	}
	m.P3Solves.Add(float64(p3Solves))
	m.MemoHits.Add(float64(memoHits))
}

// IncSolveError records a real solver failure — anything beyond
// capacity-type infeasibility — surfaced by a federation step.
func (m *GeoMetrics) IncSolveError() {
	if m == nil {
		return
	}
	m.SolveErrors.Inc()
}

// SetDeficit records a site's current carbon-deficit queue length.
func (m *GeoMetrics) SetDeficit(name string, kwh float64) {
	if m == nil {
		return
	}
	m.Site(name).DeficitKWh.Set(kwh)
}

// BatchMetrics instruments the batch-job scheduler: submission and
// completion counters, deferred (future-slot) submissions, served work,
// and the live queue depth / backlog gauges. Value-based for the same
// no-cycle reason as GeoMetrics; all methods are nil-safe.
type BatchMetrics struct {
	Submitted   *Counter // jobs accepted by Submit
	Deferred    *Counter // of those, jobs queued for a future arrival slot
	Completed   *Counter // jobs finished before their deadline
	Missed      *Counter // jobs whose deadline expired unfinished
	ServedHours *Counter // server-hours of batch work executed
	EnergyKWh   *Counter // computing energy charged to batch work

	QueueDepth   *Gauge // jobs currently eligible (arrived, not finished)
	BacklogHours *Gauge // remaining work across queue and future arrivals
}

// NewBatchMetrics registers scheduler instruments under prefix
// (conventionally "batch").
func NewBatchMetrics(r *Registry, prefix string) *BatchMetrics {
	p := prefix + "."
	return &BatchMetrics{
		Submitted:    r.Counter(p + "submitted"),
		Deferred:     r.Counter(p + "deferred"),
		Completed:    r.Counter(p + "completed"),
		Missed:       r.Counter(p + "missed"),
		ServedHours:  r.Counter(p + "served_server_hours"),
		EnergyKWh:    r.Counter(p + "energy_kwh"),
		QueueDepth:   r.Gauge(p + "queue_depth"),
		BacklogHours: r.Gauge(p + "backlog_server_hours"),
	}
}

// ObserveSubmit records one accepted submission.
func (m *BatchMetrics) ObserveSubmit(deferred bool) {
	if m == nil {
		return
	}
	m.Submitted.Inc()
	if deferred {
		m.Deferred.Inc()
	}
}

// ObserveStep folds one scheduled slot into the instruments.
func (m *BatchMetrics) ObserveStep(usedServerHours, energyKWh float64, completed, missed, queueDepth int, backlogHours float64) {
	if m == nil {
		return
	}
	m.ServedHours.Add(usedServerHours)
	m.EnergyKWh.Add(energyKWh)
	m.Completed.Add(float64(completed))
	m.Missed.Add(float64(missed))
	m.QueueDepth.Set(float64(queueDepth))
	m.BacklogHours.Set(backlogHours)
}

// PoolMetrics instruments the experiment worker pool: job progress,
// in-flight fan-out and the per-job wall-time distribution.
type PoolMetrics struct {
	JobsStarted *Counter
	JobsDone    *Counter
	JobErrors   *Counter
	InFlight    *Gauge
	Workers     *Gauge
	JobSeconds  *Histogram
}

// StartJob marks one job as picked up. It is nil-safe so pools can thread
// an optional *PoolMetrics without guarding every call site.
func (m *PoolMetrics) StartJob() {
	if m == nil {
		return
	}
	m.JobsStarted.Inc()
	m.InFlight.Add(1)
}

// EndJob marks one job as finished (successfully or not) after the given
// wall time. Nil-safe.
func (m *PoolMetrics) EndJob(failed bool, seconds float64) {
	if m == nil {
		return
	}
	m.InFlight.Add(-1)
	if failed {
		m.JobErrors.Inc()
	} else {
		m.JobsDone.Inc()
	}
	m.JobSeconds.Observe(seconds)
}

// SetWorkers records the pool's effective fan-out. Nil-safe.
func (m *PoolMetrics) SetWorkers(n int) {
	if m == nil {
		return
	}
	m.Workers.Set(float64(n))
}

// NewPoolMetrics registers pool instruments under prefix.
func NewPoolMetrics(r *Registry, prefix string) *PoolMetrics {
	p := prefix + "."
	return &PoolMetrics{
		JobsStarted: r.Counter(p + "jobs_started"),
		JobsDone:    r.Counter(p + "jobs_done"),
		JobErrors:   r.Counter(p + "job_errors"),
		InFlight:    r.Gauge(p + "in_flight"),
		Workers:     r.Gauge(p + "workers"),
		JobSeconds:  r.Histogram(p+"job_seconds", ExpBuckets(1e-4, 4, 12)),
	}
}
