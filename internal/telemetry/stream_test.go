package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/sim"
)

// lockedBuffer is a concurrency-safe sink: the streamer serializes its
// own writes, but the test reads the buffer afterwards and the race
// detector wants the handoff explicit.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestSlotStreamerConcurrentObservers hammers one streamer from many
// goroutines under -race: every record must come out as one intact JSON
// line — no interleaved or torn writes.
func TestSlotStreamerConcurrentObservers(t *testing.T) {
	var sink lockedBuffer
	s := NewSlotStreamer(&sink)
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Observe(sim.SlotRecord{Slot: w*each + i, TotalUSD: float64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seen := make(map[int]bool)
	sc := bufio.NewScanner(bytes.NewReader(sink.bytes()))
	for sc.Scan() {
		var rec struct {
			Slot int `json:"slot"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("torn line %q: %v", sc.Text(), err)
		}
		if seen[rec.Slot] {
			t.Fatalf("slot %d streamed twice", rec.Slot)
		}
		seen[rec.Slot] = true
	}
	if len(seen) != workers*each {
		t.Fatalf("%d records, want %d", len(seen), workers*each)
	}
}

// failAfterWriter accepts limit bytes, then fails every write.
type failAfterWriter struct {
	limit  int
	wrote  int
	writes int // writes attempted after the first failure
	failed bool
}

var errSinkFull = errors.New("sink full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.failed {
		w.writes++
		return 0, errSinkFull
	}
	if w.wrote+len(p) > w.limit {
		w.failed = true
		return 0, errSinkFull
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestSlotStreamerStickyError pins the failure semantics: the first
// failed flush sticks, later Observes never reach the writer again, and
// Close surfaces the original error.
func TestSlotStreamerStickyError(t *testing.T) {
	w := &failAfterWriter{limit: 100} // one record is ~250 bytes: first flush fails
	s := NewSlotStreamer(w)
	s.Observe(sim.SlotRecord{Slot: 0})
	if !w.failed {
		t.Fatal("first record did not hit the writer's failure")
	}
	attemptsAtFailure := w.writes
	for i := 1; i < 10; i++ {
		s.Observe(sim.SlotRecord{Slot: i})
	}
	if w.writes != attemptsAtFailure {
		t.Fatalf("silenced stream still wrote %d times", w.writes-attemptsAtFailure)
	}
	if err := s.Close(); !errors.Is(err, errSinkFull) {
		t.Fatalf("Close = %v, want the sticky %v", err, errSinkFull)
	}
	// Close must keep reporting it, not reset.
	if err := s.Close(); !errors.Is(err, errSinkFull) {
		t.Fatalf("second Close = %v", err)
	}
}
