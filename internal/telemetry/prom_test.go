package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry/promtext"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildExpositionRegistry assembles one registry exercising every family
// shape the renderer emits: flat counters/gauges, labeled vectors (with a
// label value needing every escape), flat and labeled histograms with
// values below, inside and above the bounds, and NaN observations that
// must surface only through the _invalid counter.
func buildExpositionRegistry() *Registry {
	r := NewRegistry()
	r.Counter("run.slots").Add(3)
	r.Counter("run.solves").Add(12)
	r.Gauge("run.queue_kwh").Set(1.5)

	lc := r.LabeledCounter("geo.site.cost_usd", "per-site cumulative cost", "site")
	lc.With("west").Add(10.25)
	lc.With("east").Add(0.1)

	lg := r.LabeledGauge("geo.site.deficit_kwh", "carbon deficit queue", "site")
	lg.With("dc \"weird\"\\path\nnext").Set(-2.5)

	h := r.Histogram("step.seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	h.Observe(nan())

	lh := r.LabeledHistogram("shard.solve_seconds", "per-shard solve wall time", []float64{1, 2}, "site")
	lh.With("b").Observe(1.5)
	lh.With("a").Observe(0.5)
	lh.With("a").Observe(nan())
	return r
}

// TestWritePrometheusGolden pins the exact exposition bytes. Two scrapes
// of identical state must be byte-identical, and the rendering (family
// order, cumulative buckets, +Inf, escapes, shortest-float values) is
// frozen in testdata/exposition.golden. Regenerate with -update after a
// deliberate format change.
func TestWritePrometheusGolden(t *testing.T) {
	r := buildExpositionRegistry()
	var first, second bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two scrapes of identical state differ")
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, first.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (run with -update after a deliberate change)\ngot:\n%s\nwant:\n%s", first.Bytes(), want)
	}
}

// TestWritePrometheusRoundTrip feeds the rendered exposition back through
// the promtext parser and checks every sample against the snapshot bit
// for bit — the renderer and parser agree on escapes and float spelling.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := buildExpositionRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(&buf)
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v", err)
	}
	snap := r.Snapshot()

	mustFind := func(name string, want float64, labels ...promtext.Label) {
		t.Helper()
		s, ok := promtext.Find(fams, name, labels...)
		if !ok {
			t.Fatalf("sample %s%v missing", name, labels)
		}
		if s.Value != want {
			t.Fatalf("%s%v = %v, want %v", name, labels, s.Value, want)
		}
	}

	for name, v := range snap.Counters {
		mustFind(promtext.SanitizeName(name), v)
	}
	for name, v := range snap.Gauges {
		mustFind(promtext.SanitizeName(name), v)
	}
	for name, vec := range snap.LabeledCounters {
		for _, ser := range vec.Series {
			mustFind(promtext.SanitizeName(name), ser.Value, tupleToLabels(vec.Labels, ser.Values)...)
		}
	}
	for name, vec := range snap.LabeledGauges {
		for _, ser := range vec.Series {
			mustFind(promtext.SanitizeName(name), ser.Value, tupleToLabels(vec.Labels, ser.Values)...)
		}
	}

	// Flat histogram: cumulative buckets, +Inf == count, sum, count and the
	// NaN observation surfaced only via _invalid.
	hs := snap.Histograms["step.seconds"]
	cum := uint64(0)
	for i, b := range hs.Bounds {
		cum += hs.Counts[i]
		mustFind("step_seconds_bucket", float64(cum), promtext.Label{Name: "le", Value: promtext.FormatValue(b)})
	}
	mustFind("step_seconds_bucket", float64(hs.Count), promtext.Label{Name: "le", Value: "+Inf"})
	mustFind("step_seconds_sum", hs.Sum)
	mustFind("step_seconds_count", float64(hs.Count))
	mustFind("step_seconds_invalid", float64(hs.Invalid))
	if hs.Invalid != 1 {
		t.Fatalf("step.seconds invalid = %d, want the one NaN observation", hs.Invalid)
	}

	// Labeled histogram: per-tuple buckets and the trailing invalid family.
	lhs := snap.LabeledHistograms["shard.solve_seconds"]
	for _, ser := range lhs.Series {
		site := promtext.Label{Name: "site", Value: ser.Values[0]}
		cum := uint64(0)
		for i, b := range ser.Hist.Bounds {
			cum += ser.Hist.Counts[i]
			mustFind("shard_solve_seconds_bucket", float64(cum), site, promtext.Label{Name: "le", Value: promtext.FormatValue(b)})
		}
		mustFind("shard_solve_seconds_bucket", float64(ser.Hist.Count), site, promtext.Label{Name: "le", Value: "+Inf"})
		mustFind("shard_solve_seconds_sum", ser.Hist.Sum, site)
		mustFind("shard_solve_seconds_count", float64(ser.Hist.Count), site)
		mustFind("shard_solve_seconds_invalid", float64(ser.Hist.Invalid), site)
	}
}

// TestWritePrometheusRunsScrapeHooks: pull collectors refresh on render,
// not on registration.
func TestWritePrometheusRunsScrapeHooks(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hooked")
	calls := 0
	r.OnScrape(func() { calls++; g.Set(float64(calls)) })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := promtext.Find(fams, "hooked"); !ok || s.Value != 1 {
		t.Fatalf("hooked = %+v (ok=%v), want the hook's value 1", s, ok)
	}
}

func tupleToLabels(names, values []string) []promtext.Label {
	out := make([]promtext.Label, len(names))
	for i := range names {
		out[i] = promtext.Label{Name: names[i], Value: values[i]}
	}
	return out
}
