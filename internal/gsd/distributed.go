package gsd

import (
	"sync"
	"time"

	"repro/internal/dcmodel"
	"repro/internal/loadbalance"
	"repro/internal/stats"
	"repro/internal/telemetry/span"
)

// The distributed GSD engine realizes §4.2's description literally: every
// server group runs as an autonomous goroutine with private randomness.
// Each round the groups "compete" for the update opportunity by drawing
// random timers (the paper's analogy to random channel access in wireless
// networks); the group whose timer fires first explores a random speed from
// its own speed set; the optimal load distribution for the exploration is
// negotiated with the dual-decomposition price protocol
// (loadbalance.SolveDistributed); and the winning group samples the Gibbs
// acceptance itself. A coordinating node only relays messages
// (the "semi-distributed" variant the paper allows), holding no decision
// authority. Failed groups never draw timers and stay off.

// agentMsg is a request from the coordinator to one agent goroutine.
type agentMsg struct {
	kind  agentMsgKind
	delta float64 // temperature (acceptDecide)
	gBest float64 // incumbent objective (acceptDecide)
	gExpl float64 // exploration objective (acceptDecide)
	reply chan<- agentReply
}

type agentMsgKind int

const (
	drawTimer agentMsgKind = iota
	proposeSpeed
	acceptDecide
)

type agentReply struct {
	id     int
	timer  float64
	speed  int
	accept bool
}

// distAgent is the per-group autonomous state.
type distAgent struct {
	id     int
	speeds int // number of positive speed levels
	rng    *stats.RNG
	inbox  chan agentMsg
}

func (a *distAgent) loop() {
	for m := range a.inbox {
		switch m.kind {
		case drawTimer:
			m.reply <- agentReply{id: a.id, timer: a.rng.Float64()}
		case proposeSpeed:
			m.reply <- agentReply{id: a.id, speed: a.rng.IntN(a.speeds + 1)}
		case acceptDecide:
			u := acceptProb(m.delta, m.gExpl, m.gBest)
			m.reply <- agentReply{id: a.id, accept: a.rng.Bernoulli(u)}
		}
	}
}

// SolveDistributed runs GSD as a true message-passing system: one goroutine
// per live server group, random-timer competition for the update slot, and
// load splits negotiated through the distributed dual-decomposition
// protocol. It computes the same chain as Solve up to randomness.
func SolveDistributed(p *dcmodel.SlotProblem, opts Options) (Result, error) {
	if p.Wd <= 0 {
		// The price protocol cannot split load without a delay term.
		return Result{}, loadbalance.ErrNeedsDelayWeight
	}
	e, err := newEngine(p, opts)
	if err != nil {
		return Result{}, err
	}
	agents := make([]*distAgent, 0, len(e.alive))
	var wg sync.WaitGroup
	for _, g := range e.alive {
		a := &distAgent{
			id:     g,
			speeds: p.Cluster.Groups[g].Type.NumSpeeds(),
			rng:    stats.NewRNG(opts.Seed ^ (0x9e3779b97f4a7c15 * uint64(g+1))),
			inbox:  make(chan agentMsg, 1),
		}
		agents = append(agents, a)
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.loop()
		}()
	}
	defer func() {
		for _, a := range agents {
			close(a.inbox)
		}
		wg.Wait()
	}()

	broadcast := func(m agentMsg) []agentReply {
		replies := make(chan agentReply, len(agents))
		m.reply = replies
		for _, a := range agents {
			a.inbox <- m
		}
		out := make([]agentReply, 0, len(agents))
		for range agents {
			out = append(out, <-replies)
		}
		return out
	}
	ask := func(a *distAgent, m agentMsg) agentReply {
		reply := make(chan agentReply, 1)
		m.reply = reply
		a.inbox <- m
		return <-reply
	}

	byID := make(map[int]*distAgent, len(agents))
	for _, a := range agents {
		byID[a.id] = a
	}

	start := time.Now()
	var solveSpan *span.Span
	if opts.Tracer != nil {
		solveSpan = opts.Tracer.Start("gsd.solve",
			span.Int("groups", len(p.Cluster.Groups)),
			span.Float("lambda_rps", p.LambdaRPS),
			span.Bool("distributed", true))
	}
	noImprove := 0
	patienceExit := false
	lastBest := e.bestEver.Value
	for e.iters < opts.MaxIters {
		delta := e.opts.temperature(e.iters)
		var sweep *span.Span
		if opts.Tracer != nil {
			sweep = opts.Tracer.Start("gsd.sweep",
				span.Int("iter", e.iters), span.Float("delta", delta))
		}
		// Lines 2–5 on the current exploration vector.
		if p.Feasible(e.speeds) {
			var split *span.Span
			if sweep != nil {
				split = sweep.Child("gsd.loadsplit")
			}
			sol, rounds, lbErr := loadbalance.SolveDistributedCounted(p, e.speeds)
			if m := opts.Metrics; m != nil && m.DualRounds != nil {
				m.DualRounds.Add(float64(rounds))
			}
			if sweep != nil {
				split.Set(span.Int("dual_rounds", rounds))
				if lbErr != nil {
					split.Set(span.Str("error", lbErr.Error()))
				} else {
					split.Set(span.Float("value", sol.Value))
				}
				split.End()
			}
			if lbErr == nil {
				if sol.Value < e.bestEver.Value {
					e.bestEver = sol.Clone()
				}
				// Any agent can arbitrate; use the one that last explored
				// (or the first on the opening round).
				arbiter := agents[0]
				dec := ask(arbiter, agentMsg{
					kind: acceptDecide, delta: delta,
					gBest: e.best.Value, gExpl: sol.Value,
				})
				if sweep != nil {
					sweep.Set(
						span.Float("u", acceptProb(delta, sol.Value, e.best.Value)),
						span.Bool("accepted", dec.accept),
						span.Float("g_explore", sol.Value), span.Float("g_best", e.best.Value))
				}
				if dec.accept {
					e.best = sol.Clone()
					e.accept++
				} else {
					copy(e.speeds, e.best.Speeds)
				}
			} else {
				copy(e.speeds, e.best.Speeds)
			}
		} else {
			if sweep != nil {
				sweep.Set(span.Bool("feasible", false))
			}
			copy(e.speeds, e.best.Speeds)
		}
		// Line 7 via random-timer competition.
		timers := broadcast(agentMsg{kind: drawTimer})
		winner := timers[0]
		for _, r := range timers[1:] {
			if r.timer < winner.timer {
				winner = r
			}
		}
		prop := ask(byID[winner.id], agentMsg{kind: proposeSpeed})
		e.speeds[winner.id] = prop.speed
		if sweep != nil {
			sweep.Set(span.Int("group", winner.id), span.Int("proposed_speed", prop.speed))
			sweep.End()
		}
		e.iters++
		if opts.RecordHistory {
			e.history = append(e.history, e.best.Value)
		}
		if e.bestEver.Value < lastBest-1e-15 {
			lastBest = e.bestEver.Value
			noImprove = 0
		} else {
			noImprove++
			if opts.Patience > 0 && noImprove >= opts.Patience {
				patienceExit = true
				break
			}
		}
	}
	if solveSpan != nil {
		solveSpan.Set(
			span.Int("iters", e.iters), span.Int("accepted", e.accept),
			span.Float("best_value", e.bestEver.Value),
			span.Bool("patience_exit", patienceExit))
		solveSpan.End()
	}
	if m := opts.Metrics; m != nil {
		m.FinishSolve(e.iters, e.accept, patienceExit, time.Since(start).Seconds())
	}
	return Result{Solution: e.bestEver, History: e.history, Iters: e.iters, Accepted: e.accept}, nil
}
