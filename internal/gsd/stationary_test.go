package gsd

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/loadbalance"
)

// TestStationaryDistributionGibbsShape validates the structural heart of
// Theorem 1: at a moderate temperature the chain's empirical visit
// frequencies over incumbent states must *rank* like the Gibbs weights
// exp(δ/g̃(x)) — better (cheaper) states strictly more popular — and the
// best state must be the mode.
func TestStationaryDistributionGibbsShape(t *testing.T) {
	// One group with 5 states (off + 4 speeds): small enough to enumerate
	// every state's objective exactly.
	cluster := &dcmodel.Cluster{
		Groups: []dcmodel.Group{{Type: dcmodel.Opteron(), N: 4}},
		Gamma:  0.95, PUE: 1,
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 8,
		We:        0.3, Wd: 0.01,
	}
	// Exact objective of every feasible state.
	objective := map[int]float64{}
	for k := 0; k <= 4; k++ {
		speeds := []int{k}
		if !prob.Feasible(speeds) {
			continue
		}
		sol, err := loadbalance.Solve(prob, speeds)
		if err != nil {
			continue
		}
		objective[k] = sol.Value
	}
	if len(objective) < 3 {
		t.Fatalf("need several feasible states, got %d", len(objective))
	}

	// Run a long chain at a temperature that separates the states without
	// freezing: visit counts of the incumbent x* after each iteration.
	gs := make([]float64, 0, len(objective))
	for _, g := range objective {
		gs = append(gs, g)
	}
	sort.Float64s(gs)
	gMin, gSecond := gs[0], gs[1]
	// Pick δ so the top two states differ by ≈ 2 units of δ/g̃ — clearly
	// separated visit rates without freezing the chain.
	delta := 2 / (1/gMin - 1/gSecond)
	if math.IsInf(delta, 0) || delta <= 0 {
		t.Skip("top states exactly tied; no separation possible")
	}
	visits := map[int]int{}
	e, err := newEngine(prob, Options{Delta: delta, MaxIters: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 60000
	for i := 0; i < iters; i++ {
		e.step()
		visits[e.best.Speeds[0]]++
	}

	// Rank check: order states by objective; visit counts must be strictly
	// decreasing along that order (with a slack for Monte-Carlo noise).
	type sv struct {
		state  int
		g      float64
		visits int
	}
	var list []sv
	for k, g := range objective {
		list = append(list, sv{k, g, visits[k]})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].g < list[j].g })
	if list[0].visits < iters/3 {
		t.Errorf("best state visited only %d of %d times", list[0].visits, iters)
	}
	for i := 1; i < len(list); i++ {
		// Only enforce ordering across clearly separated objectives; states
		// within 3% are statistically indistinguishable at finite samples.
		if list[i].g > list[i-1].g*1.03 && list[i].visits > list[i-1].visits {
			t.Errorf("state %d (g=%.3f) visited %d times, more than better state %d (g=%.3f, %d visits)",
				list[i].state, list[i].g, list[i].visits,
				list[i-1].state, list[i-1].g, list[i-1].visits)
		}
	}
}
