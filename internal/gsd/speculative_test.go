package gsd

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// requireResultEqual asserts two Results are bit-identical: same iteration
// and acceptance counts, same solution bits, same history bits.
func requireResultEqual(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.Iters != want.Iters || got.Accepted != want.Accepted {
		t.Fatalf("%s: iters/accepted = %d/%d, want %d/%d",
			label, got.Iters, got.Accepted, want.Iters, want.Accepted)
	}
	if math.Float64bits(got.Solution.Value) != math.Float64bits(want.Solution.Value) {
		t.Fatalf("%s: value = %v, want %v", label, got.Solution.Value, want.Solution.Value)
	}
	if len(got.Solution.Speeds) != len(want.Solution.Speeds) {
		t.Fatalf("%s: %d speeds, want %d", label, len(got.Solution.Speeds), len(want.Solution.Speeds))
	}
	for i := range want.Solution.Speeds {
		if got.Solution.Speeds[i] != want.Solution.Speeds[i] {
			t.Fatalf("%s: speeds[%d] = %d, want %d", label, i, got.Solution.Speeds[i], want.Solution.Speeds[i])
		}
		if math.Float64bits(got.Solution.Load[i]) != math.Float64bits(want.Solution.Load[i]) {
			t.Fatalf("%s: load[%d] = %v, want %v", label, i, got.Solution.Load[i], want.Solution.Load[i])
		}
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			t.Fatalf("%s: history[%d] = %v, want %v", label, i, got.History[i], want.History[i])
		}
	}
}

// TestSpeculativeMatchesSequentialRandomized is the speculative chain's
// property test: across randomized problems, seeds, temperature schedules,
// failure masks and patience settings, a Workers ∈ {2, 8, 32} run must
// reproduce the sequential Result bit-for-bit.
func TestSpeculativeMatchesSequentialRandomized(t *testing.T) {
	rng := stats.NewRNG(20130807)
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		nGroups := 3 + rng.IntN(8)
		p := smallProblem(nGroups, 0)
		p.LambdaRPS = (0.1 + 0.8*rng.Float64()) * p.Cluster.MaxCapacityRPS()
		p.OnsiteKW = rng.Float64() * 2

		opts := Options{
			Seed:          rng.Uint64(),
			MaxIters:      50 + rng.IntN(300),
			RecordHistory: true,
		}
		switch rng.IntN(4) {
		case 0:
			opts.Delta = 1e2 // high acceptance: windows constantly cut short
		case 1:
			opts.Delta = 1e8 // heavy saturation: discovery mispredicts draws
		case 2:
			opts.Schedule = RampSchedule(1e2, 2, 3, 1e8) // non-window-aligned ramp
		case 3:
			opts.Schedule = RampSchedule(10, 3, 7, 1e6)
		}
		if rng.IntN(2) == 0 {
			opts.Patience = 5 + rng.IntN(40)
		}
		if rng.IntN(3) == 0 {
			failed := make([]bool, nGroups)
			for g := range failed {
				failed[g] = rng.IntN(4) == 0
			}
			failed[rng.IntN(nGroups)] = false // keep at least one group alive
			opts.Failed = failed
		}

		seq, seqErr := Solve(p, opts)
		for _, w := range []int{1, 2, 8, 32} {
			po := opts
			po.Workers = w
			par, parErr := Solve(p, po)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d workers %d: err = %v, sequential err = %v", trial, w, parErr, seqErr)
			}
			if seqErr != nil {
				if parErr.Error() != seqErr.Error() {
					t.Fatalf("trial %d workers %d: err %q, want %q", trial, w, parErr, seqErr)
				}
				continue
			}
			requireResultEqual(t, "trial", seq, par)
		}
	}
}

// TestGoldenSolveHashesParallel replays the pinned golden runs with the
// speculative chain enabled: any worker count must reproduce the exact
// sequential hashes.
func TestGoldenSolveHashesParallel(t *testing.T) {
	cases := []struct {
		name string
		want string
		prob func() *dcmodel.SlotProblem
		opts Options
	}{
		{"paper-seed0", "fnv1a:f05b3282f545a085", func() *dcmodel.SlotProblem {
			cluster := dcmodel.PaperCluster(200)
			return &dcmodel.SlotProblem{
				Cluster: cluster, LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
				We: 0.05, Wd: 0.02,
			}
		}, Options{Delta: 1e8, MaxIters: 500, Seed: 0}},
		{"kink", "fnv1a:8f83c9ccf29b00e7", func() *dcmodel.SlotProblem {
			return smallProblem(6, 100)
		}, Options{Delta: 1e4, MaxIters: 800, Seed: 42, RecordHistory: true}},
		{"no-delay", "fnv1a:6d2425c0e4f31a48", func() *dcmodel.SlotProblem {
			nc := dcmodel.HeterogeneousCluster(60, 6)
			return &dcmodel.SlotProblem{
				Cluster: nc, LambdaRPS: 0.3 * nc.MaxCapacityRPS(),
				We: 0.1, Wd: 0, OnsiteKW: 6,
			}
		}, Options{Delta: 1e5, MaxIters: 600, Seed: 9, RecordHistory: true}},
	}
	for _, tc := range cases {
		for _, w := range []int{2, 8} {
			opts := tc.opts
			opts.Workers = w
			res, err := Solve(tc.prob(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := hashRun(res); got != tc.want {
				t.Errorf("%s workers=%d: hash = %s, want %s", tc.name, w, got, tc.want)
			}
		}
	}
}

// TestGoldenSolverSequenceHashParallel pins the warm-started Solver slot
// sequence with speculation on: the pooled-engine + parallel chain must
// reproduce the sequential sequence hash exactly.
func TestGoldenSolverSequenceHashParallel(t *testing.T) {
	const want = "fnv1a:b1f60cea6e778a36"
	s := &Solver{Opts: Options{Delta: 1e5, MaxIters: 400, Seed: 21, Workers: 8}}
	var sols []dcmodel.Solution
	for _, lam := range []float64{40, 140, 80} {
		sol, err := s.Solve(smallProblem(3, lam))
		if err != nil {
			t.Fatal(err)
		}
		sols = append(sols, sol)
	}
	if got := hashSolutions(sols); got != want {
		t.Errorf("solver sequence hash = %s, want %s", got, want)
	}
}

// TestScheduleAbsoluteIterationIndexing is the regression test for
// temperature/patience indexing under batching: a ramp whose growth step
// (3) never aligns with the speculation window, a small δ0 that forces
// frequent mid-window acceptances (each one cuts the window short and
// re-speculates from an arbitrary offset), and a patience bound that exits
// mid-window. If replay ever fed the schedule a window-relative index, or
// patience counted windows instead of iterations, the histories diverge.
func TestScheduleAbsoluteIterationIndexing(t *testing.T) {
	p := smallProblem(5, 80)
	opts := Options{
		Schedule:      RampSchedule(50, 2, 3, 1e7),
		MaxIters:      400,
		Patience:      60,
		Seed:          77,
		RecordHistory: true,
	}
	seq, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Iters == opts.MaxIters {
		t.Fatalf("want a patience exit to exercise mid-window stopping; ran all %d iters", seq.Iters)
	}
	if seq.Accepted == 0 {
		t.Fatal("want mid-window acceptances; none happened")
	}
	for _, w := range []int{2, 8, 32} {
		po := opts
		po.Workers = w
		par, err := Solve(p, po)
		if err != nil {
			t.Fatal(err)
		}
		requireResultEqual(t, "workers", seq, par)
	}
}

// TestSpeculative32WorkerRace exercises the 32-worker window fan-out on a
// problem large enough to keep every worker busy; run with -race this
// checks the per-worker instance/buffer ownership discipline.
func TestSpeculative32WorkerRace(t *testing.T) {
	cluster := dcmodel.PaperCluster(64)
	p := &dcmodel.SlotProblem{
		Cluster: cluster, LambdaRPS: 0.4 * cluster.MaxCapacityRPS(),
		We: 0.05, Wd: 0.02, OnsiteKW: 2,
	}
	opts := Options{Schedule: RampSchedule(1e3, 2, 25, 1e8), MaxIters: 300, Seed: 3}
	seq, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 32
	par, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireResultEqual(t, "race", seq, par)
}

// TestSpeculationAccounting checks the wasted-work bookkeeping invariant:
// every speculative evaluation is eventually either served to the replay
// or counted as wasted, and speculation actually engages on a ramped run.
func TestSpeculationAccounting(t *testing.T) {
	r := telemetry.NewRegistry()
	m := telemetry.NewSolveMetrics(r, "gsd")
	cluster := dcmodel.PaperCluster(64)
	p := &dcmodel.SlotProblem{
		Cluster: cluster, LambdaRPS: 0.4 * cluster.MaxCapacityRPS(),
		We: 0.05, Wd: 0.02,
	}
	_, err := Solve(p, Options{
		Schedule: RampSchedule(1e3, 2, 25, 1e8),
		MaxIters: 400, Seed: 11, Workers: 4, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	windows, evals := m.SpecWindows.Value(), m.SpecEvals.Value()
	hits, wasted := m.SpecHits.Value(), m.SpecWasted.Value()
	if windows == 0 || evals == 0 || hits == 0 {
		t.Fatalf("speculation never engaged: windows=%v evals=%v hits=%v", windows, evals, hits)
	}
	if hits+wasted != evals {
		t.Fatalf("hits (%v) + wasted (%v) != evals (%v)", hits, wasted, evals)
	}
}

// TestSolverPooledEngineParity checks that a Solver's pooled engine is
// invisible: a sequence of Solve calls on one Solver (reusing the engine)
// must match the same sequence on per-slot fresh Solvers wired to the same
// evolving seed/warm-start state... which is exactly what two independent
// Solvers with identical Options produce.
func TestSolverPooledEngineParity(t *testing.T) {
	mk := func() *Solver {
		return &Solver{Opts: Options{Delta: 1e4, MaxIters: 300, Seed: 99}}
	}
	a, b := mk(), mk()
	for i, lam := range []float64{60, 120, 30, 90, 150} {
		pa := smallProblem(4, lam)
		pb := smallProblem(4, lam)
		sa, errA := a.Solve(pa)
		sb, errB := b.Solve(pb)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("slot %d: errs %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		// Returned solutions must also be immune to later pooled-engine
		// reuse: compare after the next call, below.
		if math.Float64bits(sa.Value) != math.Float64bits(sb.Value) {
			t.Fatalf("slot %d: value %v vs %v", i, sa.Value, sb.Value)
		}
		for g := range sa.Speeds {
			if sa.Speeds[g] != sb.Speeds[g] || math.Float64bits(sa.Load[g]) != math.Float64bits(sb.Load[g]) {
				t.Fatalf("slot %d: mismatch at group %d", i, g)
			}
		}
	}
}

// TestSolverPooledResultNotClobbered pins the aliasing contract: a Solution
// returned by Solver.Solve must stay intact when the pooled engine is
// reused by the next call.
func TestSolverPooledResultNotClobbered(t *testing.T) {
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 200, Seed: 5}}
	first, err := s.Solve(smallProblem(4, 60))
	if err != nil {
		t.Fatal(err)
	}
	keepSpeeds := append([]int(nil), first.Speeds...)
	keepLoad := append([]float64(nil), first.Load...)
	if _, err := s.Solve(smallProblem(4, 130)); err != nil {
		t.Fatal(err)
	}
	for i := range keepSpeeds {
		if first.Speeds[i] != keepSpeeds[i] || math.Float64bits(first.Load[i]) != math.Float64bits(keepLoad[i]) {
			t.Fatalf("returned solution mutated by pooled-engine reuse at %d", i)
		}
	}
}

// TestNegativeWorkersRejected pins the validation rule shared with the
// other worker knobs: negative is an error, never a silent default.
func TestNegativeWorkersRejected(t *testing.T) {
	_, err := Solve(smallProblem(3, 40), Options{Delta: 1e4, MaxIters: 50, Workers: -1})
	if err == nil {
		t.Fatal("want error for Workers = -1")
	}
}
