package gsd

import (
	"encoding/json"
	"fmt"
)

// SolverCheckpointVersion is the current SolverCheckpoint schema version.
const SolverCheckpointVersion = 1

// SolverCheckpoint is the explicit, versioned snapshot of a Solver's
// cross-slot state: the advancing seed and the warm-start speed vector the
// next Solve call would use. Restoring it into a Solver built with the same
// Options reproduces the continuation bit-for-bit — the solver draws no
// other state between slots.
type SolverCheckpoint struct {
	Version int    `json:"version"`
	Started bool   `json:"started"`        // a first Solve has consumed Opts.Seed
	Seed    uint64 `json:"seed"`           // seed reserved for the next Solve
	Warm    []int  `json:"warm,omitempty"` // warm-start speeds from the last solved slot
}

// Checkpoint snapshots the solver's evolved per-run state. The configured
// Options are not part of the snapshot: they are construction parameters,
// owned by whoever builds the solver.
func (s *Solver) Checkpoint() SolverCheckpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := SolverCheckpoint{Version: SolverCheckpointVersion, Started: s.started, Seed: s.seed}
	if s.warm != nil {
		ck.Warm = append([]int(nil), s.warm...)
	}
	return ck
}

// RestoreFrom replaces the solver's evolved state with the snapshot. A
// stale warm vector (wrong group count for a future problem) is harmless:
// Solve already degrades it to a cold start.
func (s *Solver) RestoreFrom(ck SolverCheckpoint) error {
	if ck.Version != SolverCheckpointVersion {
		return fmt.Errorf("gsd: solver checkpoint version %d, want %d", ck.Version, SolverCheckpointVersion)
	}
	for i, k := range ck.Warm {
		if k < 0 {
			return fmt.Errorf("gsd: solver checkpoint warm[%d] = %d is negative", i, k)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = ck.Started
	s.seed = ck.Seed
	s.warm = nil
	if ck.Warm != nil {
		s.warm = append([]int(nil), ck.Warm...)
	}
	return nil
}

// CheckpointState implements the core.SolverState JSON surface.
func (s *Solver) CheckpointState() ([]byte, error) {
	return json.Marshal(s.Checkpoint())
}

// RestoreState implements the core.SolverState JSON surface.
func (s *Solver) RestoreState(data []byte) error {
	var ck SolverCheckpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("gsd: solver checkpoint: %w", err)
	}
	return s.RestoreFrom(ck)
}
