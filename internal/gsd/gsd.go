// Package gsd implements GSD (Gibbs Sampling-based Distributed
// optimization), the paper's Algorithm 2, which solves the per-slot
// mixed-integer problem P3: each iteration a randomly selected server group
// explores a random speed, the optimal load distribution for the exploration
// is computed (Eq. 18, via package loadbalance), and the exploration is
// adopted with the Gibbs probability
//
//	u = exp(δ/g̃ᵉ) / (exp(δ/g̃ᵉ) + exp(δ/g̃*)),
//
// where δ is the temperature controlling exploration versus exploitation.
// Theorem 1: the induced Markov chain converges to the Gibbs stationary
// distribution Ω(x) ∝ exp(δ/g̃(x)), which concentrates on the global optimum
// as δ → ∞.
//
// Two engines are provided: Solve, a fast sequential simulation of the
// algorithm, and SolveDistributed, a goroutine-per-group message-passing
// implementation in which groups compete for the update slot with random
// timers (§4.2) and loads are negotiated through the dual-decomposition
// protocol of package loadbalance. Server failures are modeled per §4.2:
// failed groups are forced off and simply do not participate.
package gsd

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dcmodel"
	"repro/internal/loadbalance"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// Options configures a GSD run.
type Options struct {
	// Delta is the constant temperature δ. Ignored when Schedule is set.
	Delta float64
	// Schedule, if non-nil, returns the temperature for each iteration,
	// enabling the paper's "advisory approach" of ramping δ up over time.
	Schedule func(iter int) float64
	// MaxIters is the iteration budget (the stopping criterion of line 8).
	MaxIters int
	// Patience, when positive, stops the run early after this many
	// consecutive iterations without improving the incumbent.
	Patience int
	// Seed drives all randomness; identical seeds give identical runs.
	Seed uint64
	// InitSpeeds optionally fixes the initial speed vector (line 1 requires
	// a feasible initialization). Nil means "all groups at top speed".
	InitSpeeds []int
	// Failed marks server groups that have failed; they are forced to speed
	// 0 and never selected for updates (§4.2 failure behavior).
	Failed []bool
	// RecordHistory enables per-iteration incumbent tracking (Fig. 4).
	RecordHistory bool
	// Workers, when > 1, enables the speculative parallel chain in the
	// sequential engine: proposal load splits are pre-evaluated on this many
	// goroutines ahead of the strictly sequential accept/reject replay, so
	// the Result is bit-for-bit identical to a Workers <= 1 run (see
	// DESIGN.md "Speculative Gibbs chain"). 0 and 1 both mean sequential;
	// negative is an error. SolveDistributed ignores it (that engine's
	// parallelism is the per-group goroutine protocol itself).
	Workers int
	// Metrics, when non-nil, records iteration/acceptance totals,
	// patience exits, warm-start cold fallbacks and per-solve wall time.
	// The instruments are concurrency-safe, so one SolveMetrics can be
	// shared across solvers and goroutines.
	Metrics *telemetry.SolveMetrics
	// Tracer, when non-nil, records execution spans: one gsd.solve span
	// per run with a gsd.sweep child per iteration (acceptance probability
	// u, proposed group/speed, the gsd.loadsplit evaluation). Spans nest
	// under whatever span the caller has open on the same tracer — a
	// sim.decide span when the solver runs inside the engine. Nil (the
	// default) records nothing and leaves the solve loop untouched.
	Tracer *span.Tracer
}

// Result is the outcome of a GSD run.
type Result struct {
	// Solution is the best configuration visited. (Algorithm 2's incumbent
	// x* is replaced probabilistically and can end worse than the best
	// state seen; returning the best-ever visit is the standard
	// simulated-annealing refinement and never hurts.)
	Solution dcmodel.Solution
	// History holds the incumbent objective g̃* after each iteration when
	// RecordHistory is set — the trajectory the paper plots in Fig. 4,
	// including the occasional accepted up-moves.
	History []float64
	// Iters is the number of iterations executed.
	Iters int
	// Accepted counts adopted explorations.
	Accepted int
}

// ErrInfeasibleInit is returned when the initial speed vector cannot carry
// the slot's load.
var ErrInfeasibleInit = errors.New("gsd: infeasible initial speed vector")

func (o *Options) temperature(iter int) float64 {
	if o.Schedule != nil {
		return o.Schedule(iter)
	}
	return o.Delta
}

// RampSchedule returns a multiplicative temperature ramp
// δ(i) = δ0·growth^(i/step), capped at deltaMax — the adaptive selection
// recommended at the end of §4.2 (explore first, then concentrate).
func RampSchedule(delta0, growth float64, step int, deltaMax float64) func(int) float64 {
	if step <= 0 {
		step = 1
	}
	return func(iter int) float64 {
		d := delta0 * math.Pow(growth, float64(iter/step))
		if d > deltaMax {
			return deltaMax
		}
		return d
	}
}

// acceptProb computes the Gibbs acceptance u in an overflow-safe form:
// u = σ(δ·(1/g̃ᵉ − 1/g̃*)). Infinite objectives (infeasible explorations)
// yield the correct limits.
func acceptProb(delta, gExplore, gBest float64) float64 {
	invE := safeInv(gExplore)
	invB := safeInv(gBest)
	z := delta * (invE - invB)
	// Sigmoid with saturation.
	switch {
	case z > 500:
		return 1
	case z < -500:
		return 0
	default:
		return 1 / (1 + math.Exp(-z))
	}
}

// safeInv returns 1/g with the conventions GSD needs: +Inf objectives (an
// infeasible or overloaded exploration) map to 0 preference, and objectives
// at or below zero (possible when λ = 0 and everything is off) map to a huge
// preference without producing NaN.
func safeInv(g float64) float64 {
	if math.IsInf(g, 1) {
		return 0
	}
	if g <= 0 {
		return math.MaxFloat64 / 4
	}
	return 1 / g
}

// proposalCache memoizes evaluated Gibbs proposals relative to the current
// incumbent. Every exploration is "incumbent with group g moved to speed k",
// so a (g, k) pair fully identifies it until the incumbent changes; repeated
// explorations of a coordinate (common late in a run, when most proposals
// are rejected) are then free. The solver is deterministic and draws no
// randomness, so replaying a memoized result leaves the RNG sequence — and
// therefore the whole chain — bit-for-bit identical to a fresh solve.
type proposalCache struct {
	stride  int // max speeds-per-group + 1
	epoch   uint64
	entries []cacheEntry // nil when the memo is disabled (see maxCacheFloats)
}

// maxCacheFloats bounds the memo's worst-case retained memory: every entry
// keeps a cluster-sized load buffer across epochs, so a full cache holds
// groups²·stride floats — fine at the 200-group experiment scale (~2 MB),
// catastrophic at a 10k-group fleet site (~5 TB). Past the bound the memo is
// disabled and every repeated proposal is re-solved; the solver is
// deterministic and draws no randomness, so the chain is bit-for-bit
// identical either way.
const maxCacheFloats = 8 << 20 // 8M float64s ≈ 64 MB retained worst case

type cacheEntry struct {
	epoch  uint64 // valid iff equal to the cache's current epoch
	failed bool   // the solve returned ErrInfeasible
	value  float64
	load   []float64 // full cluster-indexed loads (reused across epochs)
}

func newProposalCache(c *dcmodel.Cluster) proposalCache {
	stride := 1
	for g := range c.Groups {
		if n := c.Groups[g].Type.NumSpeeds() + 1; n > stride {
			stride = n
		}
	}
	pc := proposalCache{stride: stride, epoch: 1}
	if n := len(c.Groups); n*stride*n <= maxCacheFloats {
		pc.entries = make([]cacheEntry, n*stride)
		// One slab backs every entry's load buffer (each pre-sliced to
		// len 0, cap n), so store never allocates: the per-entry lazy
		// appends used to dominate the allocation profile of a fleet
		// site's first slot.
		backing := make([]float64, n*stride*n)
		for i := range pc.entries {
			pc.entries[i].load = backing[i*n : i*n : (i+1)*n]
		}
	}
	return pc
}

// lookup returns the entry for proposal (g, k) if it was evaluated against
// the current incumbent, nil otherwise.
func (c *proposalCache) lookup(g, k int) *cacheEntry {
	if c.entries == nil {
		return nil
	}
	e := &c.entries[g*c.stride+k]
	if e.epoch != c.epoch {
		return nil
	}
	return e
}

func (c *proposalCache) store(g, k int, failed bool, value float64, load []float64) {
	if c.entries == nil {
		return
	}
	e := &c.entries[g*c.stride+k]
	e.epoch, e.failed, e.value = c.epoch, failed, value
	e.load = append(e.load[:0], load...)
}

// invalidate drops every entry (the incumbent changed) in O(1) by bumping
// the epoch; entry buffers stay allocated for reuse.
func (c *proposalCache) invalidate() { c.epoch++ }

// engine holds shared run state for both GSD implementations.
type engine struct {
	p        *dcmodel.SlotProblem
	opts     Options
	rng      *stats.RNG
	alive    []int            // indices of non-failed groups
	speeds   []int            // current exploration vector x^e
	best     dcmodel.Solution // incumbent x*
	bestEver dcmodel.Solution // best configuration visited
	history  []float64
	iters    int
	accept   int

	// Sequential hot-path state (the distributed engine drives its own loop
	// and leaves these untouched): one persistent load-split instance that
	// receives a SetSpeed delta per proposal instead of a full rebuild, a
	// reusable evaluation buffer, the proposal memo, and the group of the
	// pending proposal (-1 before the first draw).
	inst  *loadbalance.Instance
	eval  dcmodel.Solution
	cache proposalCache
	propG int
	spec  specState
}

func newEngine(p *dcmodel.SlotProblem, opts Options) (*engine, error) {
	e := &engine{}
	if err := e.reset(p, opts); err != nil {
		return nil, err
	}
	return e, nil
}

// reset re-arms the engine for a new (problem, options) pair, reusing every
// buffer a previous run left behind: the RNG is reseeded to the exact
// NewRNG state, the persistent load-split instance is Reset (bit-identical
// to a fresh build), and the proposal memo survives shape-compatible
// problem changes through an epoch bump. A pooled engine therefore runs the
// identical chain a freshly allocated one would.
func (e *engine) reset(p *dcmodel.SlotProblem, opts Options) error {
	n := len(p.Cluster.Groups)
	if opts.Failed != nil && len(opts.Failed) != n {
		return fmt.Errorf("gsd: Failed has %d entries for %d groups", len(opts.Failed), n)
	}
	if opts.Workers < 0 {
		return fmt.Errorf("gsd: Options.Workers must be >= 0; got %d", opts.Workers)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 200 * n
	}
	e.p, e.opts = p, opts
	if e.rng == nil {
		e.rng = stats.NewRNG(opts.Seed)
	} else {
		e.rng.Reseed(opts.Seed)
	}
	e.iters, e.accept = 0, 0
	e.history = e.history[:0]
	if cap(e.alive) < n {
		e.alive = make([]int, 0, n)
	} else {
		e.alive = e.alive[:0]
	}
	for g := 0; g < n; g++ {
		if opts.Failed == nil || !opts.Failed[g] {
			e.alive = append(e.alive, g)
		}
	}
	if len(e.alive) == 0 {
		return errors.New("gsd: every group has failed")
	}
	// Line 1: feasible initialization.
	if cap(e.speeds) < n {
		e.speeds = make([]int, n)
	} else {
		e.speeds = e.speeds[:n]
		clear(e.speeds)
	}
	if opts.InitSpeeds != nil {
		if len(opts.InitSpeeds) != n {
			return fmt.Errorf("gsd: InitSpeeds has %d entries for %d groups", len(opts.InitSpeeds), n)
		}
		copy(e.speeds, opts.InitSpeeds)
		for g := 0; g < n; g++ {
			if opts.Failed != nil && opts.Failed[g] {
				e.speeds[g] = 0
			}
		}
	} else {
		for _, g := range e.alive {
			e.speeds[g] = p.Cluster.Groups[g].Type.NumSpeeds()
		}
	}
	if !p.Feasible(e.speeds) {
		return ErrInfeasibleInit
	}
	if e.inst == nil {
		e.inst = &loadbalance.Instance{}
	}
	if err := e.inst.Reset(p, e.speeds); err != nil {
		return fmt.Errorf("gsd: initial load distribution: %w", err)
	}
	if err := e.inst.SolveInto(&e.best); err != nil {
		return fmt.Errorf("gsd: initial load distribution: %w", err)
	}
	e.bestEver.CopyFrom(&e.best)
	e.resetCache()
	e.propG = -1
	e.spec.reset()
	return nil
}

// resetCache re-arms the proposal memo for the engine's current problem.
// When the cluster shape (group count and speed stride) matches the
// previous run's, the allocated entries and their load slab are kept and an
// epoch bump invalidates the stale values; otherwise the memo is rebuilt.
func (e *engine) resetCache() {
	c := e.p.Cluster
	stride := 1
	for g := range c.Groups {
		if k := c.Groups[g].Type.NumSpeeds() + 1; k > stride {
			stride = k
		}
	}
	n := len(c.Groups)
	enabled := n*stride*n <= maxCacheFloats
	if e.cache.stride == stride &&
		((enabled && len(e.cache.entries) == n*stride) || (!enabled && e.cache.entries == nil)) {
		e.cache.invalidate()
		return
	}
	e.cache = newProposalCache(c)
}

// evalExploration computes g̃ for the current exploration vector. The
// returned pointer aliases engine-owned state (the incumbent when the
// exploration equals it, the shared eval buffer otherwise) and is only valid
// until the next call. The load-split solver is pure and deterministic, so
// both shortcuts — returning the incumbent directly and replaying the
// proposal memo — reproduce a fresh solve bit-for-bit without touching the
// RNG.
func (e *engine) evalExploration() (*dcmodel.Solution, error) {
	g := e.propG
	if g < 0 || e.speeds[g] == e.best.Speeds[g] {
		// The proposal re-drew the incumbent's own speed: the exploration IS
		// the incumbent configuration.
		return &e.best, nil
	}
	k := e.speeds[g]
	if ent := e.cache.lookup(g, k); ent != nil {
		if ent.failed {
			return nil, loadbalance.ErrInfeasible
		}
		e.eval.Speeds = append(e.eval.Speeds[:0], e.speeds...)
		e.eval.Load = append(e.eval.Load[:0], ent.load...)
		e.eval.Value = ent.value
		return &e.eval, nil
	}
	if se := e.spec.take(g, k, e.cache.epoch); se != nil {
		// A speculative worker already solved this proposal against the
		// frozen incumbent. The worker's SolveInto is bit-identical to the
		// main instance's (same SetSpeed delta from the same incumbent,
		// fresh-ordered-sums invariant), so serving it — and storing it
		// through to the memo exactly as a fresh solve would — leaves the
		// chain unchanged.
		if se.failed {
			e.cache.store(g, k, true, 0, nil)
			return nil, loadbalance.ErrInfeasible
		}
		e.eval.Speeds = append(e.eval.Speeds[:0], e.speeds...)
		e.eval.Load = append(e.eval.Load[:0], se.load...)
		e.eval.Value = se.value
		e.cache.store(g, k, false, se.value, se.load)
		return &e.eval, nil
	}
	if err := e.inst.SolveInto(&e.eval); err != nil {
		// Every load-split failure surfaces as ErrInfeasible, so a boolean
		// memo reproduces the error (and its span string) exactly.
		e.cache.store(g, k, true, 0, nil)
		return nil, err
	}
	e.cache.store(g, k, false, e.eval.Value, e.eval.Load)
	return &e.eval, nil
}

// revertProposal rolls the exploration vector and the persistent instance
// back to the incumbent. The exploration differs from the incumbent in at
// most the pending proposal's coordinate, so the rollback is O(1) plus the
// instance's snapshot restore.
func (e *engine) revertProposal() {
	if e.propG < 0 {
		return
	}
	e.speeds[e.propG] = e.best.Speeds[e.propG]
	e.inst.Revert()
}

// step runs one GSD iteration (lines 2–7) against the persistent load-split
// instance. The span bookkeeping never touches e.rng, so traced and
// untraced runs draw the identical random sequence.
func (e *engine) step() {
	if e.spec.enabled {
		e.specAdvance()
	}
	delta := e.opts.temperature(e.iters)
	var sweep *span.Span
	if e.opts.Tracer != nil {
		sweep = e.opts.Tracer.Start("gsd.sweep",
			span.Int("iter", e.iters), span.Float("delta", delta))
	}
	// Lines 2–5: evaluate the exploration if it is feasible.
	if e.inst.Feasible() {
		var split *span.Span
		if sweep != nil {
			split = sweep.Child("gsd.loadsplit")
		}
		sol, err := e.evalExploration()
		if sweep != nil {
			if err != nil {
				split.Set(span.Str("error", err.Error()))
			} else {
				split.Set(span.Float("value", sol.Value))
			}
			split.End()
		}
		if err == nil {
			if sol.Value < e.bestEver.Value {
				e.bestEver.CopyFrom(sol)
			}
			u := acceptProb(delta, sol.Value, e.best.Value)
			accepted := e.rng.Bernoulli(u)
			if sweep != nil {
				sweep.Set(
					span.Float("u", u), span.Bool("accepted", accepted),
					span.Float("g_explore", sol.Value), span.Float("g_best", e.best.Value))
			}
			if accepted {
				if sol != &e.best {
					// The incumbent's speeds changed: previously memoized
					// proposals no longer describe moves from it.
					e.best.CopyFrom(sol)
					e.cache.invalidate()
				}
				e.inst.Commit()
				e.accept++
			} else {
				e.revertProposal()
			}
		} else {
			e.revertProposal()
		}
	} else {
		// Infeasible exploration: acceptance probability is 0 (g̃ᵉ = +Inf);
		// revert to the incumbent.
		if sweep != nil {
			sweep.Set(span.Bool("feasible", false))
		}
		e.revertProposal()
	}
	// Line 7: a random live group explores a random speed.
	g := e.alive[e.rng.IntN(len(e.alive))]
	k := e.rng.IntN(e.p.Cluster.Groups[g].Type.NumSpeeds() + 1)
	e.speeds[g] = k
	if err := e.inst.SetSpeed(g, k); err != nil {
		panic("gsd: proposal out of range: " + err.Error())
	}
	e.propG = g
	if sweep != nil {
		sweep.Set(span.Int("group", g), span.Int("proposed_speed", k))
		sweep.End()
	}
	e.iters++
	if e.opts.RecordHistory {
		e.history = append(e.history, e.best.Value)
	}
}

func (e *engine) run() Result {
	start := time.Now()
	var solveSpan *span.Span
	if e.opts.Tracer != nil {
		solveSpan = e.opts.Tracer.Start("gsd.solve",
			span.Int("groups", len(e.p.Cluster.Groups)),
			span.Float("lambda_rps", e.p.LambdaRPS))
	}
	e.initSpec()
	noImprove := 0
	patienceExit := false
	lastBest := e.bestEver.Value
	for e.iters < e.opts.MaxIters {
		e.step()
		if e.bestEver.Value < lastBest-1e-15*(1+math.Abs(lastBest)) {
			lastBest = e.bestEver.Value
			noImprove = 0
		} else {
			noImprove++
			if e.opts.Patience > 0 && noImprove >= e.opts.Patience {
				patienceExit = true
				break
			}
		}
	}
	e.finishSpec()
	if solveSpan != nil {
		solveSpan.Set(
			span.Int("iters", e.iters), span.Int("accepted", e.accept),
			span.Float("best_value", e.bestEver.Value),
			span.Bool("patience_exit", patienceExit))
		if e.spec.enabled {
			solveSpan.Set(
				span.Int("workers", e.spec.workers),
				span.Int("spec_windows", e.spec.windows),
				span.Int("spec_hits", e.spec.hits),
				span.Int("spec_wasted", e.spec.wasted))
		}
		solveSpan.End()
	}
	if m := e.opts.Metrics; m != nil {
		m.FinishSolve(e.iters, e.accept, patienceExit, time.Since(start).Seconds())
		if e.spec.enabled {
			m.FinishSpec(e.spec.windows, e.spec.evals, e.spec.hits, e.spec.wasted)
		}
	}
	return Result{
		Solution: e.bestEver,
		History:  e.history,
		Iters:    e.iters,
		Accepted: e.accept,
	}
}

// Solve runs the sequential GSD engine on P3.
func Solve(p *dcmodel.SlotProblem, opts Options) (Result, error) {
	e, err := newEngine(p, opts)
	if err != nil {
		return Result{}, err
	}
	return e.run(), nil
}

// Solver adapts GSD to the p3.Solver interface. Opts configures the first
// call; the per-run state the solver evolves between calls (the advancing
// seed and the warm-start speeds) lives behind a mutex, so a Solver is
// safe for concurrent use and Solve never mutates Opts.
type Solver struct {
	Opts Options

	mu      sync.Mutex
	started bool
	seed    uint64
	warm    []int
	eng     *engine // single-slot engine pool (nil when absent or in use)
}

// Clone returns a fresh solver with the same Options and none of the
// evolved per-run state (seed advance, warm start) — the right way to hand
// each concurrent experiment worker its own independent sample path.
func (s *Solver) Clone() *Solver {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Solver{Opts: s.Opts}
}

// next snapshots the options for one run and reserves the following seed,
// so concurrent calls never replay identical sample paths.
func (s *Solver) next() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	opts := s.Opts
	if s.started {
		opts.Seed = s.seed
		opts.InitSpeeds = s.warm
	}
	s.started = true
	s.seed = opts.Seed*6364136223846793005 + 1442695040888963407
	return opts
}

// runPooled executes one run on the solver's pooled engine (falling back to
// a fresh engine when a concurrent call holds the pooled one) and returns a
// deep copy of the solution, so the engine's buffers can be reused by the
// next call. reset makes a pooled engine bit-identical to a fresh one, so
// pooling is invisible to results.
func (s *Solver) runPooled(p *dcmodel.SlotProblem, opts Options) (dcmodel.Solution, error) {
	s.mu.Lock()
	e := s.eng
	s.eng = nil
	s.mu.Unlock()
	if e == nil {
		e = &engine{}
	}
	put := func() {
		s.mu.Lock()
		if s.eng == nil {
			s.eng = e
		}
		s.mu.Unlock()
	}
	if err := e.reset(p, opts); err != nil {
		put()
		return dcmodel.Solution{}, err
	}
	res := e.run()
	sol := res.Solution.Clone()
	put()
	return sol, nil
}

// Solve implements p3.Solver. The seed is advanced on every call so repeated
// slots do not replay the same sample path; pass a fresh Solver (or Clone)
// for reproducibility of a single slot. Each slot warm-starts from the
// previous slot's decision, falling back to the all-top-speed
// initialization when the warm start cannot carry the new load — or when
// the cluster's group count changed between slots (a resize or failure)
// and the warm vector no longer lines up with the groups.
func (s *Solver) Solve(p *dcmodel.SlotProblem) (dcmodel.Solution, error) {
	opts := s.next()
	var solverSpan *span.Span
	if opts.Tracer != nil {
		solverSpan = opts.Tracer.Start("gsd.solver")
	}
	if len(opts.InitSpeeds) > 0 && len(opts.InitSpeeds) != len(p.Cluster.Groups) {
		// A stale warm start must degrade, not fail the slot: drop it and
		// cold-start from all-top-speed, exactly like an infeasible one.
		opts.InitSpeeds = nil
		if opts.Metrics != nil {
			opts.Metrics.ColdFallbacks.Inc()
		}
		solverSpan.Set(span.Bool("cold_fallback", true))
	}
	solverSpan.Set(span.Bool("warm_start", len(opts.InitSpeeds) > 0))
	sol, err := s.runPooled(p, opts)
	if errors.Is(err, ErrInfeasibleInit) && opts.InitSpeeds != nil {
		if opts.Metrics != nil {
			opts.Metrics.ColdFallbacks.Inc()
		}
		solverSpan.Set(span.Bool("cold_fallback", true))
		cold := opts
		cold.InitSpeeds = nil
		sol, err = s.runPooled(p, cold)
	}
	if err != nil {
		solverSpan.Set(span.Str("error", err.Error()))
		solverSpan.End()
		return dcmodel.Solution{}, err
	}
	solverSpan.End()
	// Warm-start the next slot from this slot's decision.
	s.mu.Lock()
	s.warm = append([]int(nil), sol.Speeds...)
	s.mu.Unlock()
	return sol, nil
}
