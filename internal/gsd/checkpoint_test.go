package gsd

import (
	"encoding/json"
	"reflect"
	"testing"
)

// slotSequence solves a fixed series of slot problems on s and returns the
// chosen speed vectors.
func slotSequence(t *testing.T, s *Solver, lambdas []float64) [][]int {
	t.Helper()
	out := make([][]int, len(lambdas))
	for i, l := range lambdas {
		sol, err := s.Solve(smallProblem(4, l))
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		out[i] = append([]int(nil), sol.Speeds...)
	}
	return out
}

// TestSolverCheckpointResumeParity pins the tentpole invariant at the
// solver layer: running N slots straight through equals running N/2,
// snapshotting through JSON, restoring into a freshly constructed solver,
// and running the rest — the advancing seed and warm start are the
// solver's only cross-slot state.
func TestSolverCheckpointResumeParity(t *testing.T) {
	lambdas := []float64{60, 45, 70, 30, 55, 62, 48, 66}
	opts := Options{Delta: 1e4, MaxIters: 250, Seed: 17}

	full := &Solver{Opts: opts}
	want := slotSequence(t, full, lambdas)

	half := &Solver{Opts: opts}
	got := slotSequence(t, half, lambdas[:4])
	blob, err := json.Marshal(half.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	var ck SolverCheckpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		t.Fatal(err)
	}
	resumed := &Solver{Opts: opts}
	if err := resumed.RestoreFrom(ck); err != nil {
		t.Fatal(err)
	}
	got = append(got, slotSequence(t, resumed, lambdas[4:])...)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed solve sequence diverges:\ngot  %v\nwant %v", got, want)
	}
}

// TestSolverCheckpointStateJSON exercises the core.SolverState surface and
// the checkpoint's defensive copies.
func TestSolverCheckpointStateJSON(t *testing.T) {
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 150, Seed: 3}}
	if _, err := s.Solve(smallProblem(3, 40)); err != nil {
		t.Fatal(err)
	}
	blob, err := s.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	ck := s.Checkpoint()
	if !ck.Started || len(ck.Warm) != 3 {
		t.Fatalf("checkpoint after one solve = %+v", ck)
	}
	// Mutating the snapshot must not reach into the solver.
	ck.Warm[0] = 99
	if s.Checkpoint().Warm[0] == 99 {
		t.Fatal("Checkpoint aliases the solver's warm vector")
	}

	fresh := &Solver{Opts: s.Opts}
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Checkpoint(); !reflect.DeepEqual(got, s.Checkpoint()) {
		t.Fatalf("restored state %+v, want %+v", got, s.Checkpoint())
	}

	if err := fresh.RestoreState([]byte("{")); err == nil {
		t.Fatal("RestoreState accepted malformed JSON")
	}
	if err := fresh.RestoreFrom(SolverCheckpoint{Version: 7}); err == nil {
		t.Fatal("RestoreFrom accepted an unknown version")
	}
	if err := fresh.RestoreFrom(SolverCheckpoint{Version: SolverCheckpointVersion, Warm: []int{-1}}); err == nil {
		t.Fatal("RestoreFrom accepted a negative warm speed")
	}
}
