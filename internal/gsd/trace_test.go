package gsd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry/span"
)

// recordedSpans exports the tracer's buffer as NDJSON and parses it back,
// exercising the same path a user greps after a -trace-spans run.
func recordedSpans(t *testing.T, tr *span.Tracer) []span.Record {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []span.Record
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var r span.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("span line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

func spansNamed(recs []span.Record, name string) []span.Record {
	var out []span.Record
	for _, r := range recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestSolveTracedSpans pins the span topology of one sequential run: a
// single gsd.solve root whose gsd.sweep children carry the acceptance
// draw (u, accepted) and the line-7 proposal, with the load-distribution
// evaluation as a gsd.loadsplit grandchild.
func TestSolveTracedSpans(t *testing.T) {
	p := smallProblem(4, 60)
	tr := span.NewTracer()
	res, err := Solve(p, Options{Delta: 1e4, MaxIters: 80, Seed: 9, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	recs := recordedSpans(t, tr)

	solves := spansNamed(recs, "gsd.solve")
	if len(solves) != 1 {
		t.Fatalf("%d gsd.solve spans, want 1", len(solves))
	}
	solve := solves[0]
	if solve.Parent != 0 {
		t.Fatalf("gsd.solve has parent %d, want root", solve.Parent)
	}
	if got := solve.Attrs["iters"]; got != float64(res.Iters) {
		t.Fatalf("solve iters attr = %v, result %d", got, res.Iters)
	}
	if got := solve.Attrs["accepted"]; got != float64(res.Accepted) {
		t.Fatalf("solve accepted attr = %v, result %d", got, res.Accepted)
	}
	if got := solve.Attrs["best_value"]; got != res.Solution.Value {
		t.Fatalf("solve best_value attr = %v, result %v", got, res.Solution.Value)
	}

	sweeps := spansNamed(recs, "gsd.sweep")
	if len(sweeps) != res.Iters {
		t.Fatalf("%d gsd.sweep spans, want one per iteration (%d)", len(sweeps), res.Iters)
	}
	sweepIDs := make(map[uint64]bool, len(sweeps))
	acceptedAttr := 0
	for i, sw := range sweeps {
		if sw.Parent != solve.ID {
			t.Fatalf("sweep %d parented to %d, want solve %d", i, sw.Parent, solve.ID)
		}
		sweepIDs[sw.ID] = true
		if _, ok := sw.Attrs["iter"]; !ok {
			t.Fatalf("sweep %d missing iter attr: %v", i, sw.Attrs)
		}
		if u, ok := sw.Attrs["u"].(float64); ok {
			if u < 0 || u > 1 {
				t.Fatalf("sweep %d acceptance u = %v outside [0,1]", i, u)
			}
			if _, ok := sw.Attrs["accepted"].(bool); !ok {
				t.Fatalf("sweep %d has u but no accepted verdict: %v", i, sw.Attrs)
			}
			if sw.Attrs["accepted"].(bool) {
				acceptedAttr++
			}
		}
		if _, ok := sw.Attrs["proposed_speed"]; !ok {
			t.Fatalf("sweep %d missing line-7 proposal: %v", i, sw.Attrs)
		}
	}
	if acceptedAttr != res.Accepted {
		t.Fatalf("accepted=true on %d sweeps, result says %d", acceptedAttr, res.Accepted)
	}

	splits := spansNamed(recs, "gsd.loadsplit")
	if len(splits) == 0 {
		t.Fatal("no gsd.loadsplit spans recorded")
	}
	for i, sp := range splits {
		if !sweepIDs[sp.Parent] {
			t.Fatalf("loadsplit %d parented to %d, not a sweep", i, sp.Parent)
		}
		if _, ok := sp.Attrs["value"]; !ok {
			t.Fatalf("loadsplit %d missing value attr: %v", i, sp.Attrs)
		}
	}
}

// TestSolveTracedMatchesUntraced pins the zero-perturbation contract: the
// span bookkeeping must not touch the RNG, so a traced run reproduces the
// untraced run bit-for-bit.
func TestSolveTracedMatchesUntraced(t *testing.T) {
	p := smallProblem(3, 45)
	base := Options{Delta: 1e4, MaxIters: 300, Seed: 7, RecordHistory: true}
	plain, err := Solve(p, base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = span.NewTracer()
	got, err := Solve(p, traced)
	if err != nil {
		t.Fatal(err)
	}
	if got.Solution.Value != plain.Solution.Value ||
		got.Iters != plain.Iters || got.Accepted != plain.Accepted {
		t.Fatalf("traced run diverged: %v/%d/%d vs %v/%d/%d",
			got.Solution.Value, got.Iters, got.Accepted,
			plain.Solution.Value, plain.Iters, plain.Accepted)
	}
	for i := range plain.Solution.Speeds {
		if got.Solution.Speeds[i] != plain.Solution.Speeds[i] {
			t.Fatalf("speed %d diverged: %d vs %d", i, got.Solution.Speeds[i], plain.Solution.Speeds[i])
		}
	}
	for i := range plain.History {
		if got.History[i] != plain.History[i] {
			t.Fatalf("history %d diverged: %v vs %v", i, got.History[i], plain.History[i])
		}
	}
	if traced.Tracer.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestSolverTracedSpans pins the p3.Solver adapter's span: a gsd.solver
// wrapper per call carrying the warm-start verdict, with the run's
// gsd.solve nested inside it.
func TestSolverTracedSpans(t *testing.T) {
	tr := span.NewTracer()
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 60, Seed: 3, Tracer: tr}}
	p := smallProblem(3, 40)
	for call := 0; call < 2; call++ {
		if _, err := s.Solve(p); err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
	}
	recs := recordedSpans(t, tr)
	solvers := spansNamed(recs, "gsd.solver")
	if len(solvers) != 2 {
		t.Fatalf("%d gsd.solver spans, want 2", len(solvers))
	}
	// First call cold-starts, the second warm-starts from its decision.
	if got := solvers[0].Attrs["warm_start"]; got != false {
		t.Fatalf("first call warm_start = %v, want false", got)
	}
	if got := solvers[1].Attrs["warm_start"]; got != true {
		t.Fatalf("second call warm_start = %v, want true", got)
	}
	solverIDs := map[uint64]bool{solvers[0].ID: true, solvers[1].ID: true}
	solves := spansNamed(recs, "gsd.solve")
	if len(solves) != 2 {
		t.Fatalf("%d gsd.solve spans, want 2", len(solves))
	}
	for i, sv := range solves {
		if !solverIDs[sv.Parent] {
			t.Fatalf("solve %d parented to %d, not a gsd.solver span", i, sv.Parent)
		}
	}
}

// TestSolveDistributedTracedSpans pins the distributed engine's extra
// observability: the solve span is flagged distributed and every
// loadsplit child reports how many broadcast rounds the dual-decomposition
// price protocol needed.
func TestSolveDistributedTracedSpans(t *testing.T) {
	p := smallProblem(3, 50)
	tr := span.NewTracer()
	res, err := SolveDistributed(p, Options{Delta: 1e4, MaxIters: 40, Seed: 11, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	recs := recordedSpans(t, tr)
	solves := spansNamed(recs, "gsd.solve")
	if len(solves) != 1 {
		t.Fatalf("%d gsd.solve spans, want 1", len(solves))
	}
	if got := solves[0].Attrs["distributed"]; got != true {
		t.Fatalf("solve distributed attr = %v, want true", got)
	}
	if got := solves[0].Attrs["iters"]; got != float64(res.Iters) {
		t.Fatalf("solve iters attr = %v, result %d", got, res.Iters)
	}
	splits := spansNamed(recs, "gsd.loadsplit")
	if len(splits) == 0 {
		t.Fatal("no gsd.loadsplit spans recorded")
	}
	for i, sp := range splits {
		rounds, ok := sp.Attrs["dual_rounds"].(float64)
		if !ok {
			t.Fatalf("loadsplit %d missing dual_rounds: %v", i, sp.Attrs)
		}
		if rounds < 1 {
			t.Fatalf("loadsplit %d reports %v dual rounds", i, rounds)
		}
	}
}
