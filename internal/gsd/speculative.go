// Speculative parallel Gibbs chain. Algorithm 2 is inherently sequential —
// each iteration's acceptance decision feeds the next — but almost all of
// its wall time is spent solving proposal load splits, and a proposal's
// split depends only on (incumbent, group, speed), not on where in the
// chain it is evaluated. The engine therefore runs the chain in windows:
//
//  1. Discovery clones the RNG and simulates the next W iterations'
//     draw sequence against the frozen incumbent. Proposals whose objective
//     is already known (the incumbent itself, or a proposal memo hit) get
//     their acceptance draw consumption and outcome predicted exactly;
//     unknown proposals are queued for evaluation and assumed to consume
//     one acceptance draw and be rejected. Discovery stops at the window
//     bound or at the first predicted acceptance of a non-incumbent
//     proposal (the incumbent would change there).
//  2. The distinct queued proposals are solved in parallel over
//     workpool.FanID, one incumbent-positioned loadbalance.Instance per
//     worker. Per-worker solves are bit-identical to the main instance's
//     (the fresh-ordered-sums invariant pinned since the incremental
//     Instance landed), so a speculated value is THE value.
//  3. Replay runs the unchanged sequential step(): same RNG, same
//     temperature at the same absolute iteration index, same accept/reject
//     arithmetic. evalExploration consults the window table before solving,
//     so cache-miss proposals inside the window cost a lookup instead of a
//     solve. When an acceptance changes the incumbent, the proposal memo's
//     epoch bump invalidates the table and the next step opens a new
//     window against the new incumbent; unserved evaluations are counted
//     as wasted work.
//
// Mispredicted discovery (an unknown proposal whose real acceptance
// probability saturated to 0 or 1 and consumed no draw, or an advisory
// feasibility miss) only degrades the table's hit rate — replay never
// trusts discovery's control flow, so the Result is bit-for-bit identical
// to the sequential engine for any worker count.
package gsd

import (
	"repro/internal/dcmodel"
	"repro/internal/loadbalance"
	"repro/internal/stats"
	"repro/internal/workpool"
)

// specMinWindow is the smallest adaptive window: even in acceptance-heavy
// phases a window must cover the pending proposal plus one look-ahead.
const specMinWindow = 2

// specEntry is one speculated proposal: the (group, speed) key and the
// solve outcome against the incumbent the table's epoch names. The load
// buffer is reused across windows.
type specEntry struct {
	g, k   int
	served bool
	failed bool
	value  float64
	load   []float64
}

// specState is the engine's speculative-evaluation state. It is touched
// only from the sequential chain goroutine except inside specRound's
// FanID, where entry i is owned by job i and instance/buffer w by worker w.
type specState struct {
	enabled   bool
	workers   int
	window    int // current adaptive window size
	maxWindow int
	remaining int    // replay steps left in the current window
	epoch     uint64 // proposal-memo epoch the table was built against

	rng       *stats.RNG // discovery clone of the engine RNG
	entries   []specEntry
	insts     []*loadbalance.Instance // per-worker incumbent clones
	instEpoch []uint64                // epoch each clone is positioned at (0 = stale)
	solBuf    []dcmodel.Solution      // per-worker solve buffers

	windows int // accounting for metrics / the solve span
	evals   int
	hits    int
	wasted  int
}

// reset clears per-run state so a pooled engine starts clean; buffers and
// worker instances are kept for reuse (instEpoch 0 forces a re-sync onto
// the new problem before any evaluation).
func (sp *specState) reset() {
	sp.enabled = false
	sp.remaining = 0
	sp.epoch = 0
	sp.entries = sp.entries[:0]
	for i := range sp.instEpoch {
		sp.instEpoch[i] = 0
	}
	sp.windows, sp.evals, sp.hits, sp.wasted = 0, 0, 0, 0
}

// initSpec arms speculation for one run of the sequential engine.
func (e *engine) initSpec() {
	sp := &e.spec
	if e.opts.Workers <= 1 {
		sp.enabled = false
		return
	}
	sp.enabled = true
	sp.workers = e.opts.Workers
	if sp.rng == nil {
		sp.rng = stats.NewRNG(0)
	}
	for len(sp.insts) < sp.workers {
		sp.insts = append(sp.insts, &loadbalance.Instance{})
		sp.instEpoch = append(sp.instEpoch, 0)
		sp.solBuf = append(sp.solBuf, dcmodel.Solution{})
	}
	sp.window = max(2*sp.workers, specMinWindow)
	sp.maxWindow = max(64, 4*sp.workers)
	sp.remaining = 0
	sp.epoch = 0 // != any live memo epoch: the first step opens a window
}

// specAdvance runs at the top of every step: it opens a new window when the
// previous one is exhausted or was invalidated by an incumbent change, then
// consumes one replay step from the current window.
func (e *engine) specAdvance() {
	sp := &e.spec
	if sp.remaining <= 0 || sp.epoch != e.cache.epoch {
		e.specRound()
	}
	sp.remaining--
}

// take returns the table entry for proposal (g, k) when it was evaluated
// against the incumbent identified by epoch, nil otherwise.
func (sp *specState) take(g, k int, epoch uint64) *specEntry {
	if !sp.enabled || sp.epoch != epoch {
		return nil
	}
	for i := range sp.entries {
		ent := &sp.entries[i]
		if ent.g == g && ent.k == k {
			if !ent.served {
				ent.served = true
				sp.hits++
			}
			return ent
		}
	}
	return nil
}

// addJob queues proposal (g, k) for parallel evaluation, deduplicating
// repeats within the window and reusing entry buffers across windows.
func (sp *specState) addJob(g, k int) {
	for i := range sp.entries {
		if sp.entries[i].g == g && sp.entries[i].k == k {
			return
		}
	}
	if len(sp.entries) < cap(sp.entries) {
		sp.entries = sp.entries[:len(sp.entries)+1]
	} else {
		sp.entries = append(sp.entries, specEntry{})
	}
	ent := &sp.entries[len(sp.entries)-1]
	ent.g, ent.k = g, k
	ent.served, ent.failed, ent.value = false, false, 0
	ent.load = ent.load[:0]
}

// specRound opens a new speculation window: drop (and account) the old
// table, adapt the window size, sync the per-worker instances to the
// incumbent, run discovery on a cloned RNG, and evaluate the queued
// proposals in parallel. It never touches e.rng or any state the replayed
// step() reads for its decisions.
func (e *engine) specRound() {
	sp := &e.spec
	for i := range sp.entries {
		if !sp.entries[i].served {
			sp.wasted++
		}
	}
	if sp.windows > 0 {
		if sp.epoch != e.cache.epoch {
			// The last window was cut short by an acceptance: speculate
			// less until the chain settles down.
			sp.window = max(sp.window/2, specMinWindow)
		} else {
			sp.window = min(sp.window*2, sp.maxWindow)
		}
	}
	sp.entries = sp.entries[:0]
	sp.epoch = e.cache.epoch
	sp.windows++

	for w := 0; w < sp.workers; w++ {
		if sp.instEpoch[w] != sp.epoch {
			if err := sp.insts[w].Reset(e.p, e.best.Speeds); err != nil {
				// The incumbent passed the identical capacity check when it
				// was accepted; Reset rebuilds the same bits.
				panic("gsd: speculative reset of a feasible incumbent failed: " + err.Error())
			}
			sp.instEpoch[w] = sp.epoch
		}
	}
	base := sp.insts[0]

	// Discovery: walk the draw sequence the replay will consume. g/k is the
	// pending proposal entering each simulated step; iter the absolute
	// iteration index, so temperature schedules see exactly the indices the
	// replay will use.
	e.rng.CloneInto(sp.rng)
	g, iter := e.propG, e.iters
	k := 0
	if g >= 0 {
		k = e.speeds[g]
	}
	steps := 0
	for steps < sp.window {
		delta := e.opts.temperature(iter)
		self := g < 0 || k == e.best.Speeds[g]
		var feasible bool
		switch {
		case steps == 0:
			// The pending proposal is already applied to the main instance,
			// so its feasibility check is available exactly.
			feasible = e.inst.Feasible()
		case self:
			feasible = true // the incumbent configuration is feasible
		default:
			feasible = base.ProposalFeasible(g, k) // advisory delta estimate
		}
		accepted := false
		if feasible {
			known, failed := false, false
			var value float64
			if self {
				known, value = true, e.best.Value
			} else if ent := e.cache.lookup(g, k); ent != nil {
				known, failed, value = true, ent.failed, ent.value
			}
			switch {
			case known && failed:
				// Replay sees ErrInfeasible: no acceptance draw.
			case known:
				// Exact prediction: same acceptProb float, same Bernoulli
				// consumption rule, same uniform draw.
				u := acceptProb(delta, value, e.best.Value)
				if u >= 1 {
					accepted = true
				} else if u > 0 {
					accepted = sp.rng.Float64() < u
				}
			default:
				// Unknown objective: queue it and assume the generic
				// one-draw rejection. If the real u saturates, the rest of
				// this window's discovery is misaligned — wasted table
				// entries, never wrong results.
				sp.addJob(g, k)
				sp.rng.Float64()
			}
		}
		steps++
		iter++
		if accepted && !self {
			break // the incumbent changes here; the window ends
		}
		g = e.alive[sp.rng.IntN(len(e.alive))]
		k = sp.rng.IntN(e.p.Cluster.Groups[g].Type.NumSpeeds() + 1)
	}
	sp.remaining = steps
	if m := e.opts.Metrics; m != nil {
		m.ObserveWindow(steps)
	}

	sp.evals += len(sp.entries)
	workpool.FanID(sp.workers, len(sp.entries), func(w, i int) {
		ent := &sp.entries[i]
		in := sp.insts[w]
		if err := in.SetSpeed(ent.g, ent.k); err != nil {
			ent.failed = true
			return
		}
		err := in.SolveInto(&sp.solBuf[w])
		in.Revert()
		if err != nil {
			// Identical failure surface to the sequential path: every
			// load-split failure is ErrInfeasible.
			ent.failed = true
			ent.load = ent.load[:0]
			ent.value = 0
			return
		}
		ent.failed = false
		ent.value = sp.solBuf[w].Value
		ent.load = append(ent.load[:0], sp.solBuf[w].Load...)
	})
}

// finishSpec flushes end-of-run accounting: evaluations still sitting in
// the final window's table were never consumed.
func (e *engine) finishSpec() {
	sp := &e.spec
	if !sp.enabled {
		return
	}
	for i := range sp.entries {
		if !sp.entries[i].served {
			sp.wasted++
		}
	}
	sp.entries = sp.entries[:0]
}
