package gsd

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/dcmodel"
)

// The hashes below were captured from the pre-optimization engine (the
// NewInstance-per-proposal, Clone-per-acceptance implementation) and pin the
// incremental hot path bit-for-bit: identical RNG draw sequence, identical
// float arithmetic in every solve, identical incumbent/best-ever evolution
// and history. Any last-ulp drift in the persistent-instance bookkeeping —
// a delta-updated sum, a reordered accumulation, a skipped solve that
// should have drawn randomness — changes a hash.

// hashRun digests a Result: Value, Iters, Accepted, Speeds, Load, History,
// all as little-endian IEEE-754 bits through FNV-1a (the BENCH_engine.json
// recipe).
func hashRun(res Result) string {
	h := fnv.New64a()
	put := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	put(res.Solution.Value, float64(res.Iters), float64(res.Accepted))
	for _, s := range res.Solution.Speeds {
		put(float64(s))
	}
	put(res.Solution.Load...)
	put(res.History...)
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

func hashSolutions(sols []dcmodel.Solution) string {
	h := fnv.New64a()
	put := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	for _, s := range sols {
		put(s.Value)
		for _, sp := range s.Speeds {
			put(float64(sp))
		}
		put(s.Load...)
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// TestGoldenSolveHashes replays fixed seeded runs across the solver's
// regimes — the BenchmarkGSD500Iters200Groups workload at two seeds, a
// small kink-heavy problem, a heterogeneous cluster, and the Wd = 0
// fillNoDelay path — and requires the exact pre-optimization result bits.
func TestGoldenSolveHashes(t *testing.T) {
	paper := func(seed uint64) Result {
		cluster := dcmodel.PaperCluster(200)
		prob := &dcmodel.SlotProblem{
			Cluster: cluster, LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
			We: 0.05, Wd: 0.02,
		}
		res, err := Solve(prob, Options{Delta: 1e8, MaxIters: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cases := []struct {
		name string
		want string
		run  func(t *testing.T) string
	}{
		{"paper-seed0", "fnv1a:f05b3282f545a085", func(t *testing.T) string {
			return hashRun(paper(0))
		}},
		{"paper-seed7", "fnv1a:aebe49b4af208c7b", func(t *testing.T) string {
			return hashRun(paper(7))
		}},
		{"kink", "fnv1a:8f83c9ccf29b00e7", func(t *testing.T) string {
			res, err := Solve(smallProblem(6, 100),
				Options{Delta: 1e4, MaxIters: 800, Seed: 42, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			return hashRun(res)
		}},
		{"hetero", "fnv1a:87723ac18d3313b6", func(t *testing.T) string {
			hc := dcmodel.HeterogeneousCluster(240, 12)
			prob := &dcmodel.SlotProblem{
				Cluster: hc, LambdaRPS: 0.35 * hc.MaxCapacityRPS(),
				We: 0.07, Wd: 0.02, OnsiteKW: 3,
			}
			res, err := Solve(prob,
				Options{Delta: 1e5, MaxIters: 600, Seed: 5, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			return hashRun(res)
		}},
		{"no-delay", "fnv1a:6d2425c0e4f31a48", func(t *testing.T) string {
			nc := dcmodel.HeterogeneousCluster(60, 6)
			prob := &dcmodel.SlotProblem{
				Cluster: nc, LambdaRPS: 0.3 * nc.MaxCapacityRPS(),
				We: 0.1, Wd: 0, OnsiteKW: 6,
			}
			res, err := Solve(prob,
				Options{Delta: 1e5, MaxIters: 600, Seed: 9, RecordHistory: true})
			if err != nil {
				t.Fatal(err)
			}
			return hashRun(res)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(t); got != tc.want {
				t.Errorf("result hash = %s, want %s (RNG sequence or float arithmetic drifted)",
					got, tc.want)
			}
		})
	}
}

// TestGoldenSolverSequenceHash pins a warm-started Solver sequence — three
// slots with changing load, seed advancing per slot — so the seed-advance
// chain and warm-start handoff stay bit-for-bit too.
func TestGoldenSolverSequenceHash(t *testing.T) {
	const want = "fnv1a:b1f60cea6e778a36"
	s := &Solver{Opts: Options{Delta: 1e5, MaxIters: 400, Seed: 21}}
	var sols []dcmodel.Solution
	for _, lam := range []float64{40, 140, 80} {
		sol, err := s.Solve(smallProblem(3, lam))
		if err != nil {
			t.Fatal(err)
		}
		sols = append(sols, sol)
	}
	if got := hashSolutions(sols); got != want {
		t.Errorf("solver sequence hash = %s, want %s", got, want)
	}
}
