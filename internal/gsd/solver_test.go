package gsd

import (
	"reflect"
	"sync"
	"testing"
)

// TestSolverDoesNotMutateOpts pins the satellite fix: Solve must leave the
// caller's Options untouched (no seed advance, no warm-start write), so a
// Solver value can be rebuilt or compared against its literal.
func TestSolverDoesNotMutateOpts(t *testing.T) {
	opts := Options{Delta: 1e4, MaxIters: 200, Seed: 11}
	s := &Solver{Opts: opts}
	p := smallProblem(3, 40)
	for i := 0; i < 3; i++ {
		if _, err := s.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(s.Opts, opts) {
		t.Errorf("Solve mutated Opts: %+v, want %+v", s.Opts, opts)
	}
}

// TestSolverSequenceDeterministic pins the evolved per-run state: two
// solvers built from the same Options must replay identical decision
// sequences (the seed advance and warm start moved behind the mutex
// without changing sequential behavior).
func TestSolverSequenceDeterministic(t *testing.T) {
	mk := func() *Solver { return &Solver{Opts: Options{Delta: 1e4, MaxIters: 300, Seed: 7}} }
	a, b := mk(), mk()
	for i := 0; i < 4; i++ {
		lambda := 30 + 10*float64(i%3)
		sa, err := a.Solve(smallProblem(3, lambda))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Solve(smallProblem(3, lambda))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa.Speeds, sb.Speeds) || sa.Value != sb.Value {
			t.Fatalf("call %d diverged: %v (%v) vs %v (%v)", i, sa.Speeds, sa.Value, sb.Speeds, sb.Value)
		}
	}
}

// TestSolverCloneResetsRunState verifies Clone starts from the original
// Options, not from the evolved seed/warm-start — a clone replays the
// solver's first-call behavior.
func TestSolverCloneResetsRunState(t *testing.T) {
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 300, Seed: 7}}
	p := smallProblem(3, 40)
	first, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(smallProblem(3, 55)); err != nil {
		t.Fatal(err)
	}
	again, err := s.Clone().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Speeds, again.Speeds) || first.Value != again.Value {
		t.Errorf("clone diverged from the original first call: %v vs %v", again, first)
	}
}

// TestSolverConcurrentSolve hammers one Solver from many goroutines; run
// under -race this is the regression test for the shared-Opts data race,
// and the reserved-seed scheme means no two calls replay one sample path.
func TestSolverConcurrentSolve(t *testing.T) {
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 100, Seed: 3}}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if _, err := s.Solve(smallProblem(2, 20+5*float64(g%3))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
