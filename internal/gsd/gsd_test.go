package gsd

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/p3"
)

func smallProblem(nGroups int, lambda float64) *dcmodel.SlotProblem {
	groups := make([]dcmodel.Group, nGroups)
	for i := range groups {
		groups[i] = dcmodel.Group{Type: dcmodel.Opteron(), N: 5}
	}
	c := &dcmodel.Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
	return &dcmodel.SlotProblem{
		Cluster:   c,
		LambdaRPS: lambda,
		We:        0.08,
		Wd:        0.01,
		OnsiteKW:  0.5,
	}
}

func TestSolveProducesFeasibleSolution(t *testing.T) {
	p := smallProblem(4, 60)
	res, err := Solve(p, Options{Delta: 1e4, MaxIters: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cluster.CheckConfig(res.Solution.Speeds, res.Solution.Load); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	var sum float64
	for _, l := range res.Solution.Load {
		sum += l
	}
	if math.Abs(sum-60) > 1e-3 {
		t.Errorf("Σload = %v, want 60", sum)
	}
}

func TestSolveDeterministicWithSeed(t *testing.T) {
	p := smallProblem(3, 40)
	a, err := Solve(p, Options{Delta: 1e4, MaxIters: 300, Seed: 7, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Options{Delta: 1e4, MaxIters: 300, Seed: 7, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Solution.Value != b.Solution.Value || a.Accepted != b.Accepted {
		t.Error("same seed gave different runs")
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at %d", i)
		}
	}
}

func TestSolveReachesEnumerateOptimum(t *testing.T) {
	// Theorem 1 (high-δ limit): GSD with a large temperature and enough
	// iterations should land on the exhaustive optimum.
	for _, lambda := range []float64{10, 45, 90} {
		p := smallProblem(3, lambda)
		exact, err := p3.Enumerate(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(p, Options{Delta: 1e6, MaxIters: 3000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Value > exact.Value*(1+5e-3)+1e-9 {
			t.Errorf("λ=%v: GSD %v vs optimum %v", lambda, res.Solution.Value, exact.Value)
		}
	}
}

func TestHigherDeltaConcentratesOnOptimum(t *testing.T) {
	// Theorem 1 (monotonicity): the probability of ending at the optimum
	// grows with δ. Estimate over many short seeded runs.
	p := smallProblem(2, 30)
	exact, err := p3.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(delta float64) float64 {
		hits := 0
		const trials = 40
		for s := 0; s < trials; s++ {
			res, err := Solve(p, Options{Delta: delta, MaxIters: 150, Seed: uint64(1000 + s)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Solution.Value <= exact.Value*(1+1e-6) {
				hits++
			}
		}
		return float64(hits) / trials
	}
	low := hitRate(1)    // nearly uniform acceptance: random walk
	high := hitRate(1e6) // near-greedy with escape
	if high < low {
		t.Errorf("hit rate did not increase with δ: low=%v high=%v", low, high)
	}
	if high < 0.8 {
		t.Errorf("high-δ hit rate only %v", high)
	}
}

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	p := smallProblem(4, 70)
	res, err := Solve(p, Options{Delta: 1e5, MaxIters: 500, Seed: 11, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iters {
		t.Fatalf("history length %d != iters %d", len(res.History), res.Iters)
	}
	// The incumbent g̃* can temporarily move up (Gibbs sampling may accept a
	// worse exploration), so we check it ends no worse than it starts and
	// stays finite.
	if res.History[len(res.History)-1] > res.History[0]*(1+1e-9) {
		t.Errorf("final incumbent %v worse than initial %v",
			res.History[len(res.History)-1], res.History[0])
	}
	for i, v := range res.History {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("history[%d] = %v", i, v)
		}
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	p := smallProblem(2, 20)
	res, err := Solve(p, Options{Delta: 1e6, MaxIters: 100000, Patience: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 100000 {
		t.Errorf("patience did not stop the run (iters = %d)", res.Iters)
	}
}

func TestInitSpeedsRespected(t *testing.T) {
	p := smallProblem(3, 30)
	init := []int{4, 4, 4}
	res, err := Solve(p, Options{Delta: 1e5, MaxIters: 10, Seed: 9, InitSpeeds: init})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Infeasible init must be rejected.
	if _, err := Solve(p, Options{Delta: 1e5, MaxIters: 10, Seed: 9, InitSpeeds: []int{0, 0, 0}}); err != ErrInfeasibleInit {
		t.Errorf("want ErrInfeasibleInit, got %v", err)
	}
	// Wrong length.
	if _, err := Solve(p, Options{Delta: 1e5, MaxIters: 10, InitSpeeds: []int{4}}); err == nil {
		t.Error("short InitSpeeds accepted")
	}
}

func TestFailedGroupsDoNotParticipate(t *testing.T) {
	p := smallProblem(4, 50)
	failed := []bool{false, true, false, true}
	res, err := Solve(p, Options{Delta: 1e5, MaxIters: 800, Seed: 13, Failed: failed})
	if err != nil {
		t.Fatal(err)
	}
	for g, f := range failed {
		if f && (res.Solution.Speeds[g] != 0 || res.Solution.Load[g] != 0) {
			t.Errorf("failed group %d has speed %d load %v",
				g, res.Solution.Speeds[g], res.Solution.Load[g])
		}
	}
	// All groups failed → error.
	if _, err := Solve(p, Options{Delta: 1, MaxIters: 1, Failed: []bool{true, true, true, true}}); err == nil {
		t.Error("all-failed accepted")
	}
	// Wrong length.
	if _, err := Solve(p, Options{Delta: 1, MaxIters: 1, Failed: []bool{true}}); err == nil {
		t.Error("short Failed accepted")
	}
}

func TestTooManyFailuresInfeasible(t *testing.T) {
	// With 3 of 4 groups failed the survivor cannot carry the load.
	p := smallProblem(4, 150)
	failed := []bool{true, true, true, false}
	if _, err := Solve(p, Options{Delta: 1e5, MaxIters: 100, Failed: failed}); err != ErrInfeasibleInit {
		t.Errorf("want ErrInfeasibleInit, got %v", err)
	}
}

func TestRampSchedule(t *testing.T) {
	s := RampSchedule(10, 2, 5, 1000)
	if s(0) != 10 {
		t.Errorf("δ(0) = %v", s(0))
	}
	if s(5) != 20 {
		t.Errorf("δ(5) = %v", s(5))
	}
	if s(1000) != 1000 {
		t.Errorf("δ cap: %v", s(1000))
	}
	// Defensive: step <= 0 coerced to 1.
	s2 := RampSchedule(1, 2, 0, 1e9)
	if s2(3) != 8 {
		t.Errorf("step-0 ramp δ(3) = %v", s2(3))
	}
}

func TestScheduleOverridesDelta(t *testing.T) {
	p := smallProblem(2, 20)
	sched := RampSchedule(1, 10, 20, 1e7)
	res, err := Solve(p, Options{Delta: 0, Schedule: sched, MaxIters: 600, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := p3.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Value > exact.Value*1.02 {
		t.Errorf("ramped GSD %v vs optimum %v", res.Solution.Value, exact.Value)
	}
}

func TestAcceptProb(t *testing.T) {
	// Better exploration (smaller g̃ᵉ) → u > 1/2; much better → u ≈ 1.
	if u := acceptProb(1e6, 1, 2); u < 0.99 {
		t.Errorf("much better exploration u = %v", u)
	}
	if u := acceptProb(1e6, 2, 1); u > 0.01 {
		t.Errorf("much worse exploration u = %v", u)
	}
	if u := acceptProb(100, 5, 5); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("equal objectives u = %v, want 0.5", u)
	}
	// Infeasible exploration never accepted at high δ.
	if u := acceptProb(1e6, math.Inf(1), 3); u > 1e-6 {
		t.Errorf("infeasible exploration u = %v", u)
	}
	// δ = 0: pure coin flip regardless of values.
	if u := acceptProb(0, 1, 100); u != 0.5 {
		t.Errorf("δ=0 u = %v", u)
	}
	// Zero objectives do not produce NaN.
	if u := acceptProb(10, 0, 1); math.IsNaN(u) || u < 0.99 {
		t.Errorf("zero-cost exploration u = %v", u)
	}
}

func TestSolverInterfaceWarmStart(t *testing.T) {
	p := smallProblem(3, 40)
	s := &Solver{Opts: Options{Delta: 1e5, MaxIters: 400, Seed: 21}}
	var _ p3.Solver = s
	first, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Next slot has a larger load; warm start may be infeasible and must
	// fall back rather than fail.
	p2 := smallProblem(3, 140)
	second, err := s.Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Cluster.CheckConfig(second.Speeds, second.Load); err != nil {
		t.Fatal(err)
	}
	_ = first
}
