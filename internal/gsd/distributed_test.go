package gsd

import (
	"math"
	"testing"

	"repro/internal/p3"
)

func TestDistributedProducesFeasibleSolution(t *testing.T) {
	p := smallProblem(4, 60)
	res, err := SolveDistributed(p, Options{Delta: 1e5, MaxIters: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cluster.CheckConfig(res.Solution.Speeds, res.Solution.Load); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	var sum float64
	for _, l := range res.Solution.Load {
		sum += l
	}
	if math.Abs(sum-60) > 1e-3 {
		t.Errorf("Σload = %v, want 60", sum)
	}
}

func TestDistributedReachesOptimum(t *testing.T) {
	p := smallProblem(3, 50)
	exact, err := p3.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDistributed(p, Options{Delta: 1e6, MaxIters: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Value > exact.Value*(1+5e-3)+1e-9 {
		t.Errorf("distributed GSD %v vs optimum %v", res.Solution.Value, exact.Value)
	}
}

func TestDistributedWithFailures(t *testing.T) {
	p := smallProblem(4, 40)
	failed := []bool{false, false, true, false}
	res, err := SolveDistributed(p, Options{Delta: 1e5, MaxIters: 400, Seed: 6, Failed: failed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Speeds[2] != 0 || res.Solution.Load[2] != 0 {
		t.Errorf("failed group participated: speed=%d load=%v",
			res.Solution.Speeds[2], res.Solution.Load[2])
	}
}

func TestDistributedRejectsZeroDelayWeight(t *testing.T) {
	p := smallProblem(2, 10)
	p.Wd = 0
	if _, err := SolveDistributed(p, Options{Delta: 1, MaxIters: 1}); err == nil {
		t.Error("Wd = 0 accepted")
	}
}

func TestDistributedMatchesSequentialQuality(t *testing.T) {
	// The two engines sample different chains but must land in the same
	// neighborhood of the optimum at high δ.
	p := smallProblem(3, 70)
	seq, err := Solve(p, Options{Delta: 1e6, MaxIters: 1200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(p, Options{Delta: 1e6, MaxIters: 1200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Solution.Value-dist.Solution.Value) > 0.02*(1+seq.Solution.Value) {
		t.Errorf("sequential %v vs distributed %v", seq.Solution.Value, dist.Solution.Value)
	}
}
