package gsd

import (
	"testing"

	"repro/internal/telemetry"
)

// TestSolverWarmStartSurvivesClusterResize pins the state-desync bugfix:
// a warm-start vector left over from a differently sized cluster (resize
// or failure between slots) must degrade to the all-top-speed cold start
// instead of failing the slot with a length-mismatch error.
func TestSolverWarmStartSurvivesClusterResize(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewSolveMetrics(reg, "gsd")
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 200, Seed: 11, Metrics: m}}

	// Slot 1 on a 4-group cluster seeds a 4-entry warm start.
	if _, err := s.Solve(smallProblem(4, 60)); err != nil {
		t.Fatal(err)
	}
	// Slot 2: the cluster shrank to 3 groups; the stale warm start must
	// be dropped, not returned as an InitSpeeds length error.
	sol, err := s.Solve(smallProblem(3, 40))
	if err != nil {
		t.Fatalf("resized-cluster solve failed: %v", err)
	}
	if len(sol.Speeds) != 3 {
		t.Fatalf("solution has %d speed entries, want 3", len(sol.Speeds))
	}
	if got := m.ColdFallbacks.Value(); got != 1 {
		t.Fatalf("cold fallbacks = %v, want 1", got)
	}
	// Slot 3: back to normal operation on the new size, warm start now
	// lines up again.
	if _, err := s.Solve(smallProblem(3, 40)); err != nil {
		t.Fatalf("follow-up solve failed: %v", err)
	}
	if got := m.ColdFallbacks.Value(); got != 1 {
		t.Fatalf("cold fallbacks after recovery = %v, want still 1", got)
	}
}

// TestSolverWarmStartGrownClusterFallsBack covers the opposite resize.
func TestSolverWarmStartGrownClusterFallsBack(t *testing.T) {
	s := &Solver{Opts: Options{Delta: 1e4, MaxIters: 200, Seed: 5}}
	if _, err := s.Solve(smallProblem(2, 30)); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(smallProblem(5, 80))
	if err != nil {
		t.Fatalf("grown-cluster solve failed: %v", err)
	}
	if len(sol.Speeds) != 5 {
		t.Fatalf("solution has %d speed entries, want 5", len(sol.Speeds))
	}
}

// TestSolveMetricsInstrumentation checks the GSD instrumentation points:
// iteration and acceptance totals, patience exits and wall-time samples.
func TestSolveMetricsInstrumentation(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewSolveMetrics(reg, "gsd")
	p := smallProblem(3, 40)

	res, err := Solve(p, Options{Delta: 1e4, MaxIters: 300, Seed: 7, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Solves.Value(); got != 1 {
		t.Fatalf("solves = %v", got)
	}
	if got := m.Iterations.Value(); got != float64(res.Iters) {
		t.Fatalf("iterations = %v, want %v", got, res.Iters)
	}
	if got := m.Accepted.Value(); got != float64(res.Accepted) {
		t.Fatalf("accepted = %v, want %v", got, res.Accepted)
	}
	if m.SolveSeconds.Snapshot().Count != 1 || m.ItersPerRun.Snapshot().Count != 1 {
		t.Fatal("wall-time/iteration histograms missed the solve")
	}

	// A tight patience budget must register an early exit.
	res2, err := Solve(p, Options{Delta: 1e4, MaxIters: 100000, Patience: 20, Seed: 7, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iters >= 100000 {
		t.Fatalf("patience did not stop the run (%d iters)", res2.Iters)
	}
	if got := m.PatienceExits.Value(); got != 1 {
		t.Fatalf("patience exits = %v, want 1", got)
	}
}

// TestDistributedMetricsInstrumentation mirrors the check for the
// message-passing engine.
func TestDistributedMetricsInstrumentation(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewSolveMetrics(reg, "gsd")
	p := smallProblem(3, 40)
	res, err := SolveDistributed(p, Options{Delta: 1e4, MaxIters: 60, Seed: 9, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Iterations.Value(); got != float64(res.Iters) {
		t.Fatalf("iterations = %v, want %v", got, res.Iters)
	}
	if got := m.Solves.Value(); got != 1 {
		t.Fatalf("solves = %v", got)
	}
}
