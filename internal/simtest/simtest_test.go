package simtest

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestBuildCalibration(t *testing.T) {
	sc, refGrid, err := Build(Options{Slots: 7 * 24, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Budget = 0.92 × unaware grid usage, split 40/60 offsite/RECs.
	budget := sc.Portfolio.BudgetKWh(sc.Slots)
	if math.Abs(budget-0.92*refGrid) > 1e-6*refGrid {
		t.Errorf("budget %v, want %v", budget, 0.92*refGrid)
	}
	off := sc.Portfolio.TotalOffsiteKWh(sc.Slots)
	if math.Abs(off-0.4*budget) > 1e-6*budget {
		t.Errorf("offsite %v, want 40%% of %v", off, budget)
	}
	if math.Abs(sc.Portfolio.RECsKWh-0.6*budget) > 1e-6*budget {
		t.Errorf("RECs %v, want 60%% of %v", sc.Portfolio.RECsKWh, budget)
	}
	// On-site supply exists and is intermittent.
	on := sc.Portfolio.OnsiteKW.Values[:sc.Slots]
	if stats.Sum(on) <= 0 {
		t.Error("no on-site supply")
	}
	if stats.MinOf(on) == stats.MaxOf(on) {
		t.Error("on-site supply is constant — not intermittent")
	}
}

func TestBuildMSROption(t *testing.T) {
	fiu, _, err := Build(Options{Slots: 5 * 24, N: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	msr, _, err := Build(Options{Slots: 5 * 24, N: 200, Seed: 9, MSR: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range fiu.Workload.Values[:fiu.Slots] {
		if fiu.Workload.Values[i] != msr.Workload.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("MSR option produced the FIU trace")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, ga, err := Build(Options{Slots: 3 * 24, N: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, gb, err := Build(Options{Slots: 3 * 24, N: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ga != gb {
		t.Errorf("reference usage differs: %v vs %v", ga, gb)
	}
	for i := range a.Workload.Values {
		if a.Workload.Values[i] != b.Workload.Values[i] {
			t.Fatal("workloads differ")
		}
	}
}

func TestReferenceUsagePositive(t *testing.T) {
	sc, _, err := Build(Options{Slots: 2 * 24, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ConsumptionKWh <= 0 || ref.GridKWh <= 0 || ref.AvgCostUSD <= 0 {
		t.Errorf("degenerate reference: %+v", ref)
	}
	if ref.GridKWh > ref.ConsumptionKWh {
		t.Errorf("grid %v exceeds consumption %v", ref.GridKWh, ref.ConsumptionKWh)
	}
}

func TestBuildCappingMode(t *testing.T) {
	sc, refGrid, err := Build(Options{Slots: 5 * 24, N: 300, CappingMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// No off-site generation at all; the whole budget is the cap Z.
	if got := sc.Portfolio.TotalOffsiteKWh(sc.Slots); got != 0 {
		t.Errorf("capping mode has offsite %v", got)
	}
	if math.Abs(sc.Portfolio.RECsKWh-0.92*refGrid) > 1e-6*refGrid {
		t.Errorf("cap Z = %v, want %v", sc.Portfolio.RECsKWh, 0.92*refGrid)
	}
	if math.Abs(sc.Portfolio.BudgetKWh(sc.Slots)-0.92*refGrid) > 1e-6*refGrid {
		t.Errorf("budget = %v", sc.Portfolio.BudgetKWh(sc.Slots))
	}
}
