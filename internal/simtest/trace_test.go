package simtest_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dcmodel"
	"repro/internal/gsd"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry/span"
)

// This file pins the observability contract of the traced engine: tracing
// must be invisible to the numbers (bit-for-bit golden parity) while the
// exported Chrome trace must show the full cross-package nesting chain
// sim.slot ⊃ sim.decide ⊃ gsd.solve ⊃ gsd.sweep ⊃ gsd.loadsplit that the
// ambient-parenting design promises.

// TestTracedRunMatchesUntraced runs every policy family twice — bare and
// with a tracer attached — and requires identical SlotRecords. Tracing
// observes the slot pipeline; it must never perturb it.
func TestTracedRunMatchesUntraced(t *testing.T) {
	sc := paritySc(t)
	for name, mk := range parityPolicies(t, sc) {
		t.Run(name, func(t *testing.T) {
			want, err := sim.Run(sc, mk())
			if err != nil {
				t.Fatal(err)
			}
			tr := span.NewTracer()
			got, err := sim.RunTraced(sc, mk(), tr)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, got, want)
			// Four spans per slot: sim.slot + decide/operate/observe.
			if wantSpans := 4 * sc.Slots; tr.Len() != wantSpans {
				t.Fatalf("tracer holds %d spans, want %d", tr.Len(), wantSpans)
			}
			if tr.Open() != 0 {
				t.Fatalf("%d spans left open after the run", tr.Open())
			}
		})
	}
}

// chromeDoc mirrors the trace-event container for parse-back.
type chromeDoc struct {
	TraceEvents []chromeEv `json:"traceEvents"`
}

type chromeEv struct {
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

// gsdTracedPolicy defers the actual fleet decision to a known-feasible
// inner policy but runs a GSD solve on a side cluster inside every
// Decide, sharing the engine's tracer — the way core's P3 stage would.
type gsdTracedPolicy struct {
	inner sim.Policy
	prob  *dcmodel.SlotProblem
	opts  gsd.Options
}

func (p *gsdTracedPolicy) Name() string { return "gsd-traced" }

func (p *gsdTracedPolicy) Decide(obs sim.Observation) (sim.Config, error) {
	opts := p.opts
	opts.Seed = p.opts.Seed + uint64(obs.Slot)
	if _, err := gsd.Solve(p.prob, opts); err != nil {
		return sim.Config{}, err
	}
	return p.inner.Decide(obs)
}

func (p *gsdTracedPolicy) Observe(fb sim.Feedback) { p.inner.Observe(fb) }

// TestChromeTraceNestsEngineAndSolver is the acceptance check for the
// span pipeline: a traced run whose policy invokes the GSD solver on the
// same tracer exports a Chrome trace where slot spans nest decide spans,
// decide spans nest solve spans, and solve spans nest sweep spans — pure
// ambient parenting, no parent handles threaded through sim.Policy.
func TestChromeTraceNestsEngineAndSolver(t *testing.T) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 12, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	tr := span.NewTracer()
	cluster := &dcmodel.Cluster{
		Groups: []dcmodel.Group{
			{Type: dcmodel.Opteron(), N: 5},
			{Type: dcmodel.Opteron(), N: 5},
		},
		Gamma: 0.95, PUE: 1,
	}
	policy := &gsdTracedPolicy{
		inner: baseline.NewUnaware(sc),
		prob: &dcmodel.SlotProblem{
			Cluster: cluster, LambdaRPS: 60,
			We: 0.08, Wd: 0.01, OnsiteKW: 0.5,
		},
		opts: gsd.Options{Delta: 1e4, MaxIters: 15, Seed: 21, Tracer: tr},
	}
	if _, err := sim.RunTraced(sc, policy, tr); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid Chrome trace JSON: %v", err)
	}

	byID := make(map[float64]chromeEv, len(doc.TraceEvents))
	count := map[string]int{}
	for _, ev := range doc.TraceEvents {
		id, ok := ev.Args["span_id"].(float64)
		if !ok {
			t.Fatalf("event %q has no span_id arg", ev.Name)
		}
		byID[id] = ev
		count[ev.Name]++
	}
	if count["sim.slot"] != sc.Slots {
		t.Fatalf("%d sim.slot events, want %d", count["sim.slot"], sc.Slots)
	}
	if count["gsd.solve"] != sc.Slots {
		t.Fatalf("%d gsd.solve events, want one per slot (%d)", count["gsd.solve"], sc.Slots)
	}
	if count["gsd.sweep"] == 0 || count["gsd.loadsplit"] == 0 {
		t.Fatalf("missing solver internals: %v", count)
	}

	// parentOf resolves an event's parent and checks identity, track and
	// time containment — what Perfetto renders as visual nesting.
	parentOf := func(ev chromeEv) chromeEv {
		t.Helper()
		pid, ok := ev.Args["parent_id"].(float64)
		if !ok {
			t.Fatalf("%s span %v has no parent", ev.Name, ev.Args["span_id"])
		}
		parent, ok := byID[pid]
		if !ok {
			t.Fatalf("%s span %v parented to missing span %v", ev.Name, ev.Args["span_id"], pid)
		}
		if parent.Tid != ev.Tid {
			t.Fatalf("%s and parent %s on different tracks (%d vs %d)", ev.Name, parent.Name, ev.Tid, parent.Tid)
		}
		const eps = 1e-9
		if ev.Ts < parent.Ts-eps || ev.Ts+ev.Dur > parent.Ts+parent.Dur+eps {
			t.Fatalf("%s [%v,%v] not time-contained in %s [%v,%v]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, parent.Name, parent.Ts, parent.Ts+parent.Dur)
		}
		return parent
	}
	wantParent := map[string]string{
		"gsd.loadsplit": "gsd.sweep",
		"gsd.sweep":     "gsd.solve",
		"gsd.solve":     "sim.decide",
		"sim.decide":    "sim.slot",
		"sim.operate":   "sim.slot",
		"sim.observe":   "sim.slot",
	}
	for _, ev := range doc.TraceEvents {
		want, ok := wantParent[ev.Name]
		if !ok {
			if ev.Name != "sim.slot" {
				t.Fatalf("unexpected span name %q in trace", ev.Name)
			}
			if _, hasParent := ev.Args["parent_id"]; hasParent {
				t.Fatalf("sim.slot should be a root, has parent %v", ev.Args["parent_id"])
			}
			continue
		}
		if parent := parentOf(ev); parent.Name != want {
			t.Fatalf("%s parented to %s, want %s", ev.Name, parent.Name, want)
		}
	}
	// Walk one full chain explicitly: loadsplit → sweep → solve → decide
	// → slot, the acceptance criterion end to end.
	for _, ev := range doc.TraceEvents {
		if ev.Name != "gsd.loadsplit" {
			continue
		}
		chain := []string{"gsd.sweep", "gsd.solve", "sim.decide", "sim.slot"}
		cur := ev
		for _, wantName := range chain {
			cur = parentOf(cur)
			if cur.Name != wantName {
				t.Fatalf("chain broke: reached %s, want %s", cur.Name, wantName)
			}
		}
		break
	}
}
