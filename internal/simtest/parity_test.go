package simtest_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/trace"
)

// This file pins the Engine/Ledger refactor to the seed implementation:
// goldenRun is a verbatim copy of the pre-refactor monolithic sim.Run slot
// accounting (electricity, delay, switching, deficit computed inline), and
// every policy family must reproduce its SlotRecords bit-for-bit through
// the new step-wise Engine charging via dcmodel.Ledger.

// goldenRun drives a policy with the seed repository's slot loop.
func goldenRun(sc *sim.Scenario, p sim.Policy) (*sim.Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	res := &sim.Result{Policy: p.Name(), Records: make([]sim.SlotRecord, 0, sc.Slots)}
	prevActive := 0
	zPerSlot := sc.Portfolio.RECPerSlotKWh(sc.Slots)
	for t := 0; t < sc.Slots; t++ {
		obs := sc.Observe(t)
		cfg, err := p.Decide(obs)
		if err != nil {
			return nil, fmt.Errorf("golden: slot %d: %w", t, err)
		}
		rec := goldenOperate(sc, t, cfg, prevActive, zPerSlot)
		res.Records = append(res.Records, rec)
		p.Observe(sim.Feedback{
			Slot:       t,
			GridKWh:    rec.GridKWh,
			OffsiteKWh: rec.OffsiteKWh,
			TotalUSD:   rec.TotalUSD,
		})
		prevActive = cfg.Active
	}
	return res, nil
}

// goldenOperate is the seed's (*Scenario).operate arithmetic, inlined. The
// feasibility gates are omitted — the policies under test only emit legal
// configurations — but every charged quantity follows the original
// evaluation order exactly.
func goldenOperate(sc *sim.Scenario, t int, cfg sim.Config, prevActive int, zPerSlot float64) sim.SlotRecord {
	lambda := sc.Workload.Values[t]
	price := sc.Price.Values[t]
	onsite := sc.Portfolio.OnsiteKW.Values[t]
	offsite := sc.Portfolio.OffsiteKWh.Values[t]

	rec := sim.SlotRecord{
		Slot: t, LambdaRPS: lambda, PriceUSDPerKWh: price,
		OnsiteKW: onsite, OffsiteKWh: offsite,
		Speed: cfg.Speed, Active: cfg.Active,
	}
	if cfg.Active > 0 && cfg.Speed > 0 {
		g := dcmodel.Group{Type: sc.Server, N: cfg.Active}
		rec.PowerKW = sc.PUE * g.PowerKW(cfg.Speed, lambda)
		rec.DelayCost = g.DelayCost(cfg.Speed, lambda)
	}
	if sc.NetworkDelaySec != nil {
		rec.DelayCost += lambda * sc.NetworkDelaySec.Values[t]
	}
	rec.GridKWh = math.Max(0, rec.PowerKW-onsite)
	if sc.Tariff != nil {
		rec.ElectricityUSD = price * sc.Tariff.Cost(rec.GridKWh)
	} else {
		rec.ElectricityUSD = price * rec.GridKWh
	}
	rec.DelayUSD = sc.Beta * rec.DelayCost
	rec.SwitchUSD = price * sc.SwitchCostKWh * math.Abs(float64(cfg.Active-prevActive))
	rec.TotalUSD = rec.ElectricityUSD + rec.DelayUSD + rec.SwitchUSD
	rec.DeficitKWh = rec.GridKWh - sc.Portfolio.Alpha*offsite - zPerSlot
	// The Ledger's one visible addition: explicit slot energy (1-hour
	// slots in the seed, so energy equals power numerically).
	rec.EnergyKWh = rec.PowerKW
	return rec
}

func paritySc(t *testing.T) *sim.Scenario {
	t.Helper()
	sc, _, err := simtest.Build(simtest.Options{Slots: 7 * 24, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// compareRuns asserts bit-for-bit equality of every SlotRecord field.
func compareRuns(t *testing.T, name string, got, want *sim.Result) {
	t.Helper()
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%s: %d records, golden %d", name, len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("%s: slot %d diverges:\nengine %+v\ngolden %+v",
				name, i, got.Records[i], want.Records[i])
		}
	}
}

// policies builds a fresh instance of each policy family for the scenario;
// fresh per run because policies carry state (deficit queues, warm starts).
func parityPolicies(t *testing.T, sc *sim.Scenario) map[string]func() sim.Policy {
	t.Helper()
	return map[string]func() sim.Policy{
		"coca": func() sim.Policy {
			p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e5, 1, sc.Slots)))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"unaware": func() sim.Policy { return baseline.NewUnaware(sc) },
		"opt": func() sim.Policy {
			o, err := baseline.NewOPT(sc)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		"perfect-hp": func() sim.Policy {
			p, err := baseline.NewPerfectHP(sc, 48)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

func TestEngineMatchesGoldenRun(t *testing.T) {
	sc := paritySc(t)
	for name, mk := range parityPolicies(t, sc) {
		t.Run(name, func(t *testing.T) {
			want, err := goldenRun(sc, mk())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sc, mk())
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, got, want)
		})
	}
}

// TestEngineMatchesGoldenRunVariants exercises the Ledger's optional knobs
// — switching cost, tiered tariff, network delay, workload overestimation
// — against the seed arithmetic.
func TestEngineMatchesGoldenRunVariants(t *testing.T) {
	base := paritySc(t)
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: 20, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*sim.Scenario){
		"switching":    func(sc *sim.Scenario) { sc.SwitchCostKWh = 0.231 },
		"tariff":       func(sc *sim.Scenario) { sc.Tariff = tariff },
		"network":      func(sc *sim.Scenario) { sc.NetworkDelaySec = trace.Constant("net", 0.004, sc.Slots) },
		"overestimate": func(sc *sim.Scenario) { sc.Overestimate = 1.1 },
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			sc := base.Clone()
			mutate(sc)
			mkCoca := func() sim.Policy {
				p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e5, 1, sc.Slots)))
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			want, err := goldenRun(sc, mkCoca())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sc, mkCoca())
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, got, want)
		})
	}
}

// TestEngineStepwiseMatchesRun drives the Engine manually — Step until
// Done, observers on — and requires the exact records Run produces, plus
// in-order observer delivery.
func TestEngineStepwiseMatchesRun(t *testing.T) {
	sc := paritySc(t)
	mk := func() sim.Policy { return baseline.NewUnaware(sc) }

	want, err := sim.Run(sc, mk())
	if err != nil {
		t.Fatal(err)
	}
	var observed []sim.SlotRecord
	e, err := sim.NewEngine(sc, mk(), func(rec sim.SlotRecord) {
		observed = append(observed, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !e.Done() {
		if got := e.Slot(); got != steps {
			t.Fatalf("Slot() = %d before step %d", got, steps)
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if err := e.Step(); err != sim.ErrDone {
		t.Fatalf("Step after Done = %v, want ErrDone", err)
	}
	got := e.Result()
	compareRuns(t, "stepwise", got, want)
	if len(observed) != len(want.Records) {
		t.Fatalf("observer saw %d records, want %d", len(observed), len(want.Records))
	}
	for i := range observed {
		if observed[i] != want.Records[i] {
			t.Fatalf("observer record %d diverges", i)
		}
	}
}

// TestSlotHoursScalesEnergy pins the satellite: a half-hour slot halves
// grid and facility energy (and with them electricity cost) relative to
// the 1-hour default, visibly through the Ledger rather than an implicit
// kW≡kWh assumption.
func TestSlotHoursScalesEnergy(t *testing.T) {
	sc := paritySc(t)
	ref, err := sim.Run(sc, baseline.NewUnaware(sc))
	if err != nil {
		t.Fatal(err)
	}
	half := sc.Clone()
	half.SlotHours = 0.5
	got, err := sim.Run(half, baseline.NewUnaware(half))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Records {
		r, g := ref.Records[i], got.Records[i]
		if g.EnergyKWh != r.PowerKW*0.5 {
			t.Fatalf("slot %d: EnergyKWh = %v, want %v", i, g.EnergyKWh, r.PowerKW*0.5)
		}
		if want := math.Max(0, r.PowerKW-r.OnsiteKW) * 0.5; g.GridKWh != want {
			t.Fatalf("slot %d: GridKWh = %v, want %v", i, g.GridKWh, want)
		}
	}
	refSum := sim.Summarize(sc, ref)
	gotSum := sim.Summarize(half, got)
	if refSum.SlotHours != 1 || gotSum.SlotHours != 0.5 {
		t.Fatalf("Summary.SlotHours = %v / %v, want 1 / 0.5", refSum.SlotHours, gotSum.SlotHours)
	}
}
