package simtest_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/lyapunov"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry/span"
	"repro/internal/trace"
)

// This file pins the Engine/Ledger refactor to the seed implementation:
// goldenRun is a verbatim copy of the pre-refactor monolithic sim.Run slot
// accounting (electricity, delay, switching, deficit computed inline), and
// every policy family must reproduce its SlotRecords bit-for-bit through
// the new step-wise Engine charging via dcmodel.Ledger.

// goldenRun drives a policy with the seed repository's slot loop.
func goldenRun(sc *sim.Scenario, p sim.Policy) (*sim.Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	res := &sim.Result{Policy: p.Name(), Records: make([]sim.SlotRecord, 0, sc.Slots)}
	prevActive := 0
	zPerSlot := sc.Portfolio.RECPerSlotKWh(sc.Slots)
	for t := 0; t < sc.Slots; t++ {
		obs := sc.Observe(t)
		cfg, err := p.Decide(obs)
		if err != nil {
			return nil, fmt.Errorf("golden: slot %d: %w", t, err)
		}
		rec := goldenOperate(sc, t, cfg, prevActive, zPerSlot)
		res.Records = append(res.Records, rec)
		p.Observe(sim.Feedback{
			Slot:       t,
			GridKWh:    rec.GridKWh,
			OffsiteKWh: rec.OffsiteKWh,
			TotalUSD:   rec.TotalUSD,
		})
		prevActive = cfg.Active
	}
	return res, nil
}

// goldenOperate is the seed's (*Scenario).operate arithmetic, inlined. The
// feasibility gates are omitted — the policies under test only emit legal
// configurations — but every charged quantity follows the original
// evaluation order exactly.
func goldenOperate(sc *sim.Scenario, t int, cfg sim.Config, prevActive int, zPerSlot float64) sim.SlotRecord {
	lambda := sc.Workload.Values[t]
	price := sc.Price.Values[t]
	onsite := sc.Portfolio.OnsiteKW.Values[t]
	offsite := sc.Portfolio.OffsiteKWh.Values[t]

	rec := sim.SlotRecord{
		Slot: t, LambdaRPS: lambda, PriceUSDPerKWh: price,
		OnsiteKW: onsite, OffsiteKWh: offsite,
		Speed: cfg.Speed, Active: cfg.Active,
	}
	if cfg.Active > 0 && cfg.Speed > 0 {
		g := dcmodel.Group{Type: sc.Server, N: cfg.Active}
		rec.PowerKW = sc.PUE * g.PowerKW(cfg.Speed, lambda)
		rec.DelayCost = g.DelayCost(cfg.Speed, lambda)
	}
	if sc.NetworkDelaySec != nil {
		rec.DelayCost += lambda * sc.NetworkDelaySec.Values[t]
	}
	rec.GridKWh = math.Max(0, rec.PowerKW-onsite)
	if sc.Tariff != nil {
		rec.ElectricityUSD = price * sc.Tariff.Cost(rec.GridKWh)
	} else {
		rec.ElectricityUSD = price * rec.GridKWh
	}
	rec.DelayUSD = sc.Beta * rec.DelayCost
	rec.SwitchUSD = price * sc.SwitchCostKWh * math.Abs(float64(cfg.Active-prevActive))
	rec.TotalUSD = rec.ElectricityUSD + rec.DelayUSD + rec.SwitchUSD
	rec.DeficitKWh = rec.GridKWh - sc.Portfolio.Alpha*offsite - zPerSlot
	// The Ledger's one visible addition: explicit slot energy (1-hour
	// slots in the seed, so energy equals power numerically).
	rec.EnergyKWh = rec.PowerKW
	return rec
}

func paritySc(t *testing.T) *sim.Scenario {
	t.Helper()
	sc, _, err := simtest.Build(simtest.Options{Slots: 7 * 24, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// compareRuns asserts bit-for-bit equality of every SlotRecord field.
func compareRuns(t *testing.T, name string, got, want *sim.Result) {
	t.Helper()
	if len(got.Records) != len(want.Records) {
		t.Fatalf("%s: %d records, golden %d", name, len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("%s: slot %d diverges:\nengine %+v\ngolden %+v",
				name, i, got.Records[i], want.Records[i])
		}
	}
}

// policies builds a fresh instance of each policy family for the scenario;
// fresh per run because policies carry state (deficit queues, warm starts).
func parityPolicies(t *testing.T, sc *sim.Scenario) map[string]func() sim.Policy {
	t.Helper()
	return map[string]func() sim.Policy{
		"coca": func() sim.Policy {
			p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e5, 1, sc.Slots)))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"unaware": func() sim.Policy { return baseline.NewUnaware(sc) },
		"opt": func() sim.Policy {
			o, err := baseline.NewOPT(sc)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
		"perfect-hp": func() sim.Policy {
			p, err := baseline.NewPerfectHP(sc, 48)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

func TestEngineMatchesGoldenRun(t *testing.T) {
	sc := paritySc(t)
	for name, mk := range parityPolicies(t, sc) {
		t.Run(name, func(t *testing.T) {
			want, err := goldenRun(sc, mk())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sc, mk())
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, got, want)
		})
	}
}

// TestEngineMatchesGoldenRunVariants exercises the Ledger's optional knobs
// — switching cost, tiered tariff, network delay, workload overestimation
// — against the seed arithmetic.
func TestEngineMatchesGoldenRunVariants(t *testing.T) {
	base := paritySc(t)
	tariff, err := dcmodel.NewTieredTariff([]dcmodel.Tier{
		{UpToKWh: 20, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*sim.Scenario){
		"switching":    func(sc *sim.Scenario) { sc.SwitchCostKWh = 0.231 },
		"tariff":       func(sc *sim.Scenario) { sc.Tariff = tariff },
		"network":      func(sc *sim.Scenario) { sc.NetworkDelaySec = trace.Constant("net", 0.004, sc.Slots) },
		"overestimate": func(sc *sim.Scenario) { sc.Overestimate = 1.1 },
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			sc := base.Clone()
			mutate(sc)
			mkCoca := func() sim.Policy {
				p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e5, 1, sc.Slots)))
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			want, err := goldenRun(sc, mkCoca())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(sc, mkCoca())
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, got, want)
		})
	}
}

// TestEngineStepwiseMatchesRun drives the Engine manually — Step until
// Done, observers on — and requires the exact records Run produces, plus
// in-order observer delivery.
func TestEngineStepwiseMatchesRun(t *testing.T) {
	sc := paritySc(t)
	mk := func() sim.Policy { return baseline.NewUnaware(sc) }

	want, err := sim.Run(sc, mk())
	if err != nil {
		t.Fatal(err)
	}
	var observed []sim.SlotRecord
	e, err := sim.NewEngine(sc, mk(), func(rec sim.SlotRecord) {
		observed = append(observed, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !e.Done() {
		if got := e.Slot(); got != steps {
			t.Fatalf("Slot() = %d before step %d", got, steps)
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if err := e.Step(); err != sim.ErrDone {
		t.Fatalf("Step after Done = %v, want ErrDone", err)
	}
	got := e.Result()
	compareRuns(t, "stepwise", got, want)
	if len(observed) != len(want.Records) {
		t.Fatalf("observer saw %d records, want %d", len(observed), len(want.Records))
	}
	for i := range observed {
		if observed[i] != want.Records[i] {
			t.Fatalf("observer record %d diverges", i)
		}
	}
}

// cocaPolicy builds the stateful COCA policy used by the resume tests.
func cocaPolicy(t *testing.T, sc *sim.Scenario) *core.Policy {
	t.Helper()
	p, err := core.New(core.FromScenario(sc, lyapunov.ConstantV(5e5, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// spanSignature reduces a tracer's buffer to the (name, attrs) sequence in
// start order — everything deterministic about the recorded spans.
func spanSignature(t *testing.T, tr *span.Tracer) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []string
	dec := json.NewDecoder(&buf)
	for {
		var rec span.Record
		if err := dec.Decode(&rec); err != nil {
			break
		}
		keys := make([]string, 0, len(rec.Attrs))
		for k := range rec.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := rec.Name
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%v", k, rec.Attrs[k])
		}
		out = append(out, line)
	}
	return out
}

// TestEngineResumeMatchesUninterrupted pins the tentpole's sim-layer
// semantics: Step after RestoreFrom (engine + policy checkpoints, through
// JSON) must produce the same records, the same observer sequence and the
// same span sequence as the uninterrupted run's second half.
func TestEngineResumeMatchesUninterrupted(t *testing.T) {
	sc := paritySc(t)
	half := sc.Slots / 2

	// Uninterrupted reference: trace only the second half, so the span
	// signature is directly comparable with the resumed run's.
	refEngine, err := sim.NewEngine(sc, cocaPolicy(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	for refEngine.Slot() < half {
		if err := refEngine.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refTracer := span.NewTracer()
	refEngine.SetTracer(refTracer)
	for !refEngine.Done() {
		if err := refEngine.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := refEngine.Result()

	// Interrupted run: stop at half, checkpoint engine and policy through
	// JSON, rebuild both from scratch, restore, finish.
	firstPolicy := cocaPolicy(t, sc)
	firstEngine, err := sim.NewEngine(sc, firstPolicy)
	if err != nil {
		t.Fatal(err)
	}
	for firstEngine.Slot() < half {
		if err := firstEngine.Step(); err != nil {
			t.Fatal(err)
		}
	}
	engBlob, err := json.Marshal(firstEngine.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	polBlob, err := json.Marshal(firstPolicy.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}

	var engCk sim.EngineCheckpoint
	if err := json.Unmarshal(engBlob, &engCk); err != nil {
		t.Fatal(err)
	}
	var polCk core.PolicyCheckpoint
	if err := json.Unmarshal(polBlob, &polCk); err != nil {
		t.Fatal(err)
	}
	resumedPolicy := cocaPolicy(t, sc)
	if err := resumedPolicy.RestoreFrom(polCk); err != nil {
		t.Fatal(err)
	}
	var observed []sim.SlotRecord
	resumedEngine, err := sim.NewEngine(sc, resumedPolicy, func(rec sim.SlotRecord) {
		observed = append(observed, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumedEngine.RestoreFrom(engCk); err != nil {
		t.Fatal(err)
	}
	if resumedEngine.Slot() != half {
		t.Fatalf("restored slot cursor %d, want %d", resumedEngine.Slot(), half)
	}
	resumedTracer := span.NewTracer()
	resumedEngine.SetTracer(resumedTracer)
	for !resumedEngine.Done() {
		if err := resumedEngine.Step(); err != nil {
			t.Fatal(err)
		}
	}

	compareRuns(t, "resume", resumedEngine.Result(), want)
	// Observers attached to the resumed engine see exactly the slots it
	// operated — the uninterrupted run's second half.
	if len(observed) != sc.Slots-half {
		t.Fatalf("observer saw %d records, want %d", len(observed), sc.Slots-half)
	}
	for i, rec := range observed {
		if rec != want.Records[half+i] {
			t.Fatalf("observer record %d diverges from uninterrupted slot %d", i, half+i)
		}
	}
	gotSpans, wantSpans := spanSignature(t, resumedTracer), spanSignature(t, refTracer)
	if len(gotSpans) != len(wantSpans) {
		t.Fatalf("resumed run recorded %d spans, uninterrupted second half %d", len(gotSpans), len(wantSpans))
	}
	for i := range wantSpans {
		if gotSpans[i] != wantSpans[i] {
			t.Fatalf("span %d diverges:\nresumed       %s\nuninterrupted %s", i, gotSpans[i], wantSpans[i])
		}
	}
}

// TestEngineRestoreRejectsInvalid covers the engine checkpoint guards.
func TestEngineRestoreRejectsInvalid(t *testing.T) {
	sc := paritySc(t)
	e, err := sim.NewEngine(sc, baseline.NewUnaware(sc))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	valid := e.Checkpoint()
	cases := map[string]func(*sim.EngineCheckpoint){
		"version":      func(ck *sim.EngineCheckpoint) { ck.Version = 9 },
		"policy":       func(ck *sim.EngineCheckpoint) { ck.Policy = "other" },
		"slot-high":    func(ck *sim.EngineCheckpoint) { ck.Slot = sc.Slots + 1; ck.Records = nil },
		"record-count": func(ck *sim.EngineCheckpoint) { ck.Records = ck.Records[:1] },
		"prev-active":  func(ck *sim.EngineCheckpoint) { ck.PrevActive = sc.N + 1 },
	}
	for name, mutate := range cases {
		ck := valid
		ck.Records = append([]sim.SlotRecord(nil), valid.Records...)
		mutate(&ck)
		fresh, err := sim.NewEngine(sc, baseline.NewUnaware(sc))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(ck); err == nil {
			t.Errorf("%s: RestoreFrom accepted an invalid checkpoint", name)
		}
	}
}

// TestSlotHoursScalesEnergy pins the satellite: a half-hour slot halves
// grid and facility energy (and with them electricity cost) relative to
// the 1-hour default, visibly through the Ledger rather than an implicit
// kW≡kWh assumption.
func TestSlotHoursScalesEnergy(t *testing.T) {
	sc := paritySc(t)
	ref, err := sim.Run(sc, baseline.NewUnaware(sc))
	if err != nil {
		t.Fatal(err)
	}
	half := sc.Clone()
	half.SlotHours = 0.5
	got, err := sim.Run(half, baseline.NewUnaware(half))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Records {
		r, g := ref.Records[i], got.Records[i]
		if g.EnergyKWh != r.PowerKW*0.5 {
			t.Fatalf("slot %d: EnergyKWh = %v, want %v", i, g.EnergyKWh, r.PowerKW*0.5)
		}
		if want := math.Max(0, r.PowerKW-r.OnsiteKW) * 0.5; g.GridKWh != want {
			t.Fatalf("slot %d: GridKWh = %v, want %v", i, g.GridKWh, want)
		}
	}
	refSum := sim.Summarize(sc, ref)
	gotSum := sim.Summarize(half, got)
	if refSum.SlotHours != 1 || gotSum.SlotHours != 0.5 {
		t.Fatalf("Summary.SlotHours = %v / %v, want 1 / 0.5", refSum.SlotHours, gotSum.SlotHours)
	}
}
