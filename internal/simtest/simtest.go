// Package simtest builds small, fast, fully calibrated scenarios shared by
// the test suites of the sim, core, baseline and experiments packages. The
// scenarios follow the paper's §5.1 calibration pipeline at reduced scale:
// run the carbon-unaware algorithm once to measure reference consumption,
// scale on-site renewables to a fraction of it, and size the carbon budget
// as a fraction of the unaware grid usage.
package simtest

import (
	"fmt"

	"repro/internal/dcmodel"
	"repro/internal/p3"
	"repro/internal/price"
	"repro/internal/renewable"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tunes the generated scenario.
type Options struct {
	Slots      int     // horizon (default 14 days)
	N          int     // fleet size (default 2000)
	PeakRPS    float64 // peak arrival rate (default 50% of fleet capacity)
	Beta       float64 // delay weight (default 0.01)
	BudgetFrac float64 // budget as a fraction of unaware usage (default 0.92)
	OnsiteFrac float64 // on-site renewables as a fraction of consumption (default 0.20)
	Seed       uint64
	MSR        bool // use the MSR-like trace instead of FIU-like

	// CappingMode switches to the paper's §2.2 energy-capping variant:
	// off-site renewables are removed from the model and the whole budget
	// becomes the REC parameter Z, interpreted as a hard long-term cap on
	// grid-electricity usage ("all the analysis still applies by removing
	// the off-site renewable energy ... and taking the REC parameter Z as
	// the desired total energy cap").
	CappingMode bool
}

func (o *Options) defaults() {
	if o.Slots == 0 {
		o.Slots = 14 * 24
	}
	if o.N == 0 {
		o.N = 2000
	}
	if o.Beta == 0 {
		o.Beta = 0.01
	}
	if o.BudgetFrac == 0 {
		o.BudgetFrac = 0.92
	}
	if o.OnsiteFrac == 0 {
		o.OnsiteFrac = 0.20
	}
	if o.Seed == 0 {
		o.Seed = 12345
	}
}

// Build constructs a calibrated scenario. It runs the carbon-unaware
// reference internally (with zero renewables) to size the on-site supply
// and the carbon budget, exactly like the paper's setup, and returns the
// scenario together with the unaware reference grid usage in kWh.
func Build(o Options) (*sim.Scenario, float64, error) {
	o.defaults()
	server := dcmodel.Opteron()
	var workload *trace.Trace
	if o.MSR {
		workload = trace.MSRYear(o.Seed, 0.4)
	} else {
		workload = trace.FIUYear(o.Seed)
	}
	peak := o.PeakRPS
	if peak == 0 {
		peak = 0.5 * float64(o.N) * server.MaxRate()
	}
	workload = workload.ScaledToPeak(peak)

	sc := &sim.Scenario{
		Server: server, N: o.N, Gamma: 0.95, PUE: 1, Beta: o.Beta,
		Workload: workload,
		Price:    price.CAISOYear(o.Seed + 1),
		Slots:    o.Slots,
	}
	// Phase 1: unaware reference with no renewables.
	sc.Portfolio = &renewable.Portfolio{
		OnsiteKW:   trace.Constant("zero", 0, o.Slots),
		OffsiteKWh: trace.Constant("zero", 0, o.Slots),
		RECsKWh:    1, // placeholder, α·Z/J must be finite
		Alpha:      1,
	}
	ref, err := Reference(sc)
	if err != nil {
		return nil, 0, fmt.Errorf("simtest: reference run: %w", err)
	}
	// Phase 2: scale on-site renewables to OnsiteFrac of the unaware
	// consumption and re-run the unaware reference with them in place —
	// the paper's budget is a fraction of the carbon-unaware algorithm's
	// *electricity* (grid) usage in the actual environment.
	p := renewable.NewPaperPortfolio(o.Seed+2, o.Slots, ref.ConsumptionKWh, o.OnsiteFrac, o.BudgetFrac, 0.40)
	sc.Portfolio = p
	refOnsite, err := Reference(sc)
	if err != nil {
		return nil, 0, fmt.Errorf("simtest: onsite reference run: %w", err)
	}
	ref.GridKWh = refOnsite.GridKWh
	// Phase 3: size the budget — 40% off-site PPAs, 60% RECs (or, in
	// capping mode, everything as the energy cap Z with no off-site
	// generation at all).
	if o.CappingMode {
		p.OffsiteKWh = trace.Constant("none", 0, o.Slots)
		p.RECsKWh = o.BudgetFrac * ref.GridKWh
	} else {
		renewable.ScaleToTotal(p.OffsiteKWh, o.Slots, 0.40*o.BudgetFrac*ref.GridKWh)
		p.RECsKWh = 0.60 * o.BudgetFrac * ref.GridKWh
	}
	if err := sc.Validate(); err != nil {
		return nil, 0, err
	}
	return sc, ref.GridKWh, nil
}

// ReferenceUsage is the unaware algorithm's measured usage.
type ReferenceUsage struct {
	ConsumptionKWh float64 // total facility energy
	GridKWh        float64 // total grid draw [p − r]^+
	AvgCostUSD     float64 // average hourly cost
}

// Reference runs the carbon-unaware algorithm on the scenario as-is and
// reports its usage. It is defined here (not in baseline) to avoid an
// import cycle in tests; it duplicates the unaware decision rule through
// the public sim API.
func Reference(sc *sim.Scenario) (ReferenceUsage, error) {
	res, err := sim.Run(sc, &unawareLite{sc: sc})
	if err != nil {
		return ReferenceUsage{}, err
	}
	sum := sim.Summarize(sc, res)
	return ReferenceUsage{
		ConsumptionKWh: sum.TotalEnergyKWh,
		GridKWh:        sum.TotalGridKWh,
		AvgCostUSD:     sum.AvgHourlyCostUSD,
	}, nil
}

// unawareLite is the instantaneous cost minimizer (identical decisions to
// baseline.Unaware, reimplemented locally to keep simtest dependency-free
// of the packages it serves).
type unawareLite struct {
	sc *sim.Scenario
}

func (u *unawareLite) Name() string { return "unaware-lite" }

func (u *unawareLite) Decide(obs sim.Observation) (sim.Config, error) {
	hp := &p3.HomogeneousProblem{
		Type: u.sc.Server, N: u.sc.N,
		Gamma: u.sc.Gamma, PUE: u.sc.PUE,
		LambdaRPS: obs.LambdaRPS,
		We:        obs.PriceUSDPerKWh,
		Wd:        u.sc.Beta,
		OnsiteKW:  obs.OnsiteKW,
	}
	sol, err := hp.Solve()
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{Speed: sol.Speed, Active: sol.Active}, nil
}

func (u *unawareLite) Observe(sim.Feedback) {}
