package dcmodel

import (
	"fmt"
	"math"
)

// Ledger is the single slot-cost kernel shared by every execution path in
// the repository. The simulation engine (internal/sim), the group-level
// Controller (internal/core), the multi-site federation (internal/geo) and
// the baseline planners (internal/baseline) all charge slots through a
// Ledger, so the paper's accounting — facility power p, grid draw
// y = [p − r]^+ (Eq. 10), tariff-priced electricity (Eq. 3 and the §2.1
// nonlinear extension), the priced M/G/1/PS delay (Eqs. 4–5), switching
// cost (Fig. 5d), the §3.1 per-slot caps and the per-slot carbon deficit
// y − α·f − z (Eq. 17) — is written exactly once.
//
// A Ledger is a value: build one per slot from that slot's environment and
// discard it. The zero value prices nothing but is still well formed
// (1-hour slots, linear tariff, no caps).
type Ledger struct {
	PriceUSDPerKWh float64 // w(t): electricity price this slot
	OnsiteKW       float64 // r(t): on-site renewable power this slot
	Beta           float64 // β: dollars per unit of delay cost (Eq. 5)

	// SlotHours is the slot duration in hours; 0 means 1 (the paper's
	// hourly slots). It is the single place the kW→kWh conversion of the
	// discrete-time model lives: grid energy and facility energy scale
	// with it, while delay cost (already a per-slot aggregate) and
	// switching energy (per toggle, not per hour) do not.
	SlotHours float64

	// Tariff optionally replaces the linear electricity cost with a convex
	// nonlinear one (§2.1): electricity = w(t)·Tariff.Cost(y). Nil means
	// the paper's default linear tariff.
	Tariff Tariff

	// SwitchCostKWh is the energy-equivalent cost of toggling one server
	// on or off, charged at the slot's electricity price (Fig. 5d).
	SwitchCostKWh float64

	// Alpha and RECPerSlotKWh parameterize the per-slot carbon deficit
	// y − α·f − z of Eqs. (10)/(17).
	Alpha         float64
	RECPerSlotKWh float64

	// MaxPowerKW and MaxDelayCost are the optional §3.1 per-slot
	// constraints enforced by CheckCaps. Zero disables.
	MaxPowerKW   float64
	MaxDelayCost float64
}

// SlotCharge is the fully priced outcome of one slot: the decomposition of
// Eqs. (3)–(5) plus the switching charge and the slot's energy totals.
type SlotCharge struct {
	PowerKW        float64 // p(λ, x): facility power
	EnergyKWh      float64 // p · SlotHours: facility energy incl. on-site-covered power
	GridKWh        float64 // y = [p − r]^+ · SlotHours (Eq. 10)
	ElectricityUSD float64 // e = w · tariff(y) (Eq. 3)
	DelayCost      float64 // d (Eq. 4), dimensionless
	DelayUSD       float64 // β · d
	SwitchUSD      float64 // w · SwitchCostKWh · |Δ active|
	TotalUSD       float64 // e + β·d + switching (Eq. 5 plus extensions)
}

// CostBreakdown is the historical name of the slot-cost decomposition; it
// is the same type as SlotCharge.
type CostBreakdown = SlotCharge

// Hours returns the slot duration, defaulting to the paper's 1-hour slots.
func (l Ledger) Hours() float64 {
	if l.SlotHours <= 0 {
		return 1
	}
	return l.SlotHours
}

// EnergyKWh converts facility power over the slot into energy.
func (l Ledger) EnergyKWh(powerKW float64) float64 {
	return powerKW * l.Hours()
}

// GridKWh returns the slot's grid draw y = [p − r]^+ · SlotHours.
func (l Ledger) GridKWh(powerKW float64) float64 {
	return math.Max(0, powerKW-l.OnsiteKW) * l.Hours()
}

// ElectricityUSD prices grid energy through the tariff: w·Tariff.Cost(y),
// or the paper's linear w·y when no tariff is set.
func (l Ledger) ElectricityUSD(gridKWh float64) float64 {
	if l.Tariff != nil {
		return l.PriceUSDPerKWh * l.Tariff.Cost(gridKWh)
	}
	return l.PriceUSDPerKWh * gridKWh
}

// DelayUSD prices delay cost: β·d (Eq. 5).
func (l Ledger) DelayUSD(delayCost float64) float64 {
	return l.Beta * delayCost
}

// SwitchUSD charges the Fig. 5(d) toggling cost for a change of
// activeDelta servers at this slot's electricity price.
func (l Ledger) SwitchUSD(activeDelta int) float64 {
	return l.PriceUSDPerKWh * l.SwitchCostKWh * math.Abs(float64(activeDelta))
}

// Deficit returns the slot's carbon-budget overrun y − α·f − z (can be
// negative); its running sum is the paper's carbon deficit, and its
// positive part drives the Eq. (17) queue update.
func (l Ledger) Deficit(gridKWh, offsiteKWh float64) float64 {
	return gridKWh - l.Alpha*offsiteKWh - l.RECPerSlotKWh
}

// CheckCaps validates the §3.1 per-slot constraints against an operated
// configuration's facility power and delay cost.
func (l Ledger) CheckCaps(powerKW, delayCost float64) error {
	if l.MaxPowerKW > 0 && powerKW > l.MaxPowerKW*(1+1e-9) {
		return fmt.Errorf("dcmodel: power %v kW exceeds the peak-power cap %v", powerKW, l.MaxPowerKW)
	}
	if l.MaxDelayCost > 0 && delayCost > l.MaxDelayCost*(1+1e-9) {
		return fmt.Errorf("dcmodel: delay cost %v exceeds the cap %v", delayCost, l.MaxDelayCost)
	}
	return nil
}

// Charge prices one operated slot: facility power and delay cost from the
// configuration, plus a change of activeDelta active servers against the
// previous slot. It performs no feasibility checks — callers gate with
// CheckCaps (and their own load checks) first.
func (l Ledger) Charge(powerKW, delayCost float64, activeDelta int) SlotCharge {
	grid := l.GridKWh(powerKW)
	elec := l.ElectricityUSD(grid)
	delay := l.DelayUSD(delayCost)
	sw := l.SwitchUSD(activeDelta)
	return SlotCharge{
		PowerKW:        powerKW,
		EnergyKWh:      l.EnergyKWh(powerKW),
		GridKWh:        grid,
		ElectricityUSD: elec,
		DelayCost:      delayCost,
		DelayUSD:       delay,
		SwitchUSD:      sw,
		TotalUSD:       elec + delay + sw,
	}
}
