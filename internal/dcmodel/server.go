// Package dcmodel implements the paper's data-center model (§2): a fleet of
// possibly heterogeneous servers with discrete DVFS speed levels, the
// static-plus-computing power model of Eq. (1), the M/G/1/PS delay cost of
// Eq. (4), the γ utilization cap of Eq. (7), and an optional time-varying PUE
// factor that scales IT power into facility power.
//
// Units used throughout the repository:
//   - power in kW, energy in kWh (slots are one hour, so they coincide),
//   - arrival and service rates in requests per second (RPS),
//   - money in dollars, electricity price in $/kWh,
//   - delay cost in mean jobs-in-system (dimensionless; β converts to $).
package dcmodel

import (
	"errors"
	"fmt"
)

// SpeedLevel is one positive DVFS operating point of a server.
type SpeedLevel struct {
	FreqGHz float64 // nominal frequency, informational
	BusyKW  float64 // total power when fully utilized at this level (static + computing)
	RateRPS float64 // service rate x: requests/second processed at this level
}

// ServerType describes one homogeneous server model. Speed index 0 always
// means "off / deep sleep" (zero speed, zero power, per the paper's
// assumption); indices 1..K select Levels[0..K-1], which must be sorted by
// ascending RateRPS.
type ServerType struct {
	Name     string
	StaticKW float64 // p_s: idle power when on, regardless of load
	Levels   []SpeedLevel
}

// Validate reports whether the type is well formed.
func (st *ServerType) Validate() error {
	if st.StaticKW < 0 {
		return fmt.Errorf("dcmodel: %s: negative static power", st.Name)
	}
	if len(st.Levels) == 0 {
		return fmt.Errorf("dcmodel: %s: no speed levels", st.Name)
	}
	prev := 0.0
	for i, l := range st.Levels {
		if l.RateRPS <= prev {
			return fmt.Errorf("dcmodel: %s: level %d rate %v not strictly increasing", st.Name, i, l.RateRPS)
		}
		if l.BusyKW < st.StaticKW {
			return fmt.Errorf("dcmodel: %s: level %d busy power %v below static %v", st.Name, i, l.BusyKW, st.StaticKW)
		}
		prev = l.RateRPS
	}
	return nil
}

// NumSpeeds returns K, the number of positive speed levels.
func (st *ServerType) NumSpeeds() int { return len(st.Levels) }

// Rate returns the service rate x at speed index k (0 = off → 0).
// It panics on an out-of-range index.
func (st *ServerType) Rate(k int) float64 {
	if k == 0 {
		return 0
	}
	return st.Levels[k-1].RateRPS
}

// ComputingKW returns p_c(x_k): the computing power drawn at full utilization
// on top of the static power at speed index k (0 = off → 0).
func (st *ServerType) ComputingKW(k int) float64 {
	if k == 0 {
		return 0
	}
	return st.Levels[k-1].BusyKW - st.StaticKW
}

// PowerKW returns the average server power of Eq. (1) at speed index k with
// per-server arrival rate lambda: p_s + p_c(x_k)·λ/x_k for k > 0, and 0 for
// k == 0. lambda is clamped to [0, x_k].
func (st *ServerType) PowerKW(k int, lambda float64) float64 {
	if k == 0 {
		return 0
	}
	x := st.Rate(k)
	if lambda < 0 {
		lambda = 0
	}
	if lambda > x {
		lambda = x
	}
	return st.StaticKW + st.ComputingKW(k)*lambda/x
}

// MaxRate returns the service rate at the highest speed level.
func (st *ServerType) MaxRate() float64 { return st.Levels[len(st.Levels)-1].RateRPS }

// MaxBusyKW returns the busy power at the highest speed level.
func (st *ServerType) MaxBusyKW() float64 { return st.Levels[len(st.Levels)-1].BusyKW }

// Opteron returns the paper's measured server model (§5.1): a quad-core AMD
// Opteron 2380 profiled with PowerPack — idle 140 W, and four DVFS points
// 0.8 GHz/184 W, 1.3 GHz/194 W, 1.8 GHz/208 W, 2.5 GHz/231 W. The service
// rate is 10 req/s at full speed and scales linearly with frequency.
func Opteron() ServerType {
	const fullRate = 10.0
	mk := func(f, w float64) SpeedLevel {
		return SpeedLevel{FreqGHz: f, BusyKW: w / 1000, RateRPS: fullRate * f / 2.5}
	}
	return ServerType{
		Name:     "opteron-2380",
		StaticKW: 0.140,
		Levels: []SpeedLevel{
			mk(0.8, 184),
			mk(1.3, 194),
			mk(1.8, 208),
			mk(2.5, 231),
		},
	}
}

// ErrBadConfig reports a malformed (speeds, load) configuration.
var ErrBadConfig = errors.New("dcmodel: invalid configuration")
