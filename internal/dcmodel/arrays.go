package dcmodel

// ClusterArrays is the struct-of-arrays view of a cluster's per-group
// constants: server counts, static powers and the per-(group, speed)
// service rates and power slopes flattened into parallel slices indexed
// g·Stride + k. Hot solvers (the load-balance instance rebuilds one group
// per Gibbs proposal, ten thousand times per slot at fleet scale) read
// these flat arrays instead of pointer-chasing Groups[g].Type.Levels, so
// the inner loops stay cache-linear however many groups the cluster has.
//
// Every stored value is computed by exactly the method the AoS path used
// (RateAt, PowerSlopeKWPerRPS), so reads reproduce the historical
// arithmetic bit for bit.
type ClusterArrays struct {
	Stride int // max NumSpeeds+1 across groups: the per-group row width

	N         []float64 // per group: float64(n_g)
	StaticKW  []float64 // per group: the type's idle power p_s
	NumSpeeds []int     // per group: K_g, the number of positive levels

	rates  []float64 // [g·Stride + k] = Groups[g].RateAt(k)
	slopes []float64 // [g·Stride + k] = Groups[g].PowerSlopeKWPerRPS(k)
}

// NewClusterArrays flattens the cluster's per-group constants. The view is
// immutable and independent of the cluster afterwards; rebuild it when the
// cluster's groups change.
func NewClusterArrays(c *Cluster) *ClusterArrays {
	n := len(c.Groups)
	stride := 1
	for g := range c.Groups {
		if k := c.Groups[g].Type.NumSpeeds() + 1; k > stride {
			stride = k
		}
	}
	a := &ClusterArrays{
		Stride:    stride,
		N:         make([]float64, n),
		StaticKW:  make([]float64, n),
		NumSpeeds: make([]int, n),
		rates:     make([]float64, n*stride),
		slopes:    make([]float64, n*stride),
	}
	for g := range c.Groups {
		grp := &c.Groups[g]
		a.N[g] = float64(grp.N)
		a.StaticKW[g] = grp.Type.StaticKW
		a.NumSpeeds[g] = grp.Type.NumSpeeds()
		for k := 1; k <= a.NumSpeeds[g]; k++ {
			a.rates[g*stride+k] = grp.RateAt(k)
			a.slopes[g*stride+k] = grp.PowerSlopeKWPerRPS(k)
		}
	}
	return a
}

// Arrays returns the cluster's struct-of-arrays view, building and caching
// it on first use (concurrent first calls race benignly: every builder
// produces identical contents and one wins the cache). The view snapshots
// Groups at build time; a cluster whose Groups change afterwards must be
// treated as a new cluster (build a fresh view with NewClusterArrays) —
// every cluster in this repository is immutable once constructed.
func (c *Cluster) Arrays() *ClusterArrays {
	if a := c.arrays.Load(); a != nil {
		return a
	}
	a := NewClusterArrays(c)
	if c.arrays.CompareAndSwap(nil, a) {
		return a
	}
	return c.arrays.Load()
}

// Rate returns Groups[g].RateAt(k) from the flat layout (0 at speed 0).
func (a *ClusterArrays) Rate(g, k int) float64 { return a.rates[g*a.Stride+k] }

// Slope returns Groups[g].PowerSlopeKWPerRPS(k) from the flat layout
// (0 at speed 0).
func (a *ClusterArrays) Slope(g, k int) float64 { return a.slopes[g*a.Stride+k] }
