package dcmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func mustTiered(t *testing.T, tiers []Tier) *TieredTariff {
	t.Helper()
	tt, err := NewTieredTariff(tiers)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestFlatTariff(t *testing.T) {
	var f FlatTariff
	if f.Cost(5) != 5 || f.Cost(-1) != 0 || f.Marginal(100) != 1 {
		t.Error("flat tariff wrong")
	}
}

func TestTieredTariffCost(t *testing.T) {
	tt := mustTiered(t, []Tier{
		{UpToKWh: 10, Mult: 1},
		{UpToKWh: 20, Mult: 2},
		{UpToKWh: math.Inf(1), Mult: 4},
	})
	cases := map[float64]float64{
		0:  0,
		5:  5,
		10: 10,
		15: 10 + 2*5,
		20: 10 + 2*10,
		25: 10 + 20 + 4*5,
		-3: 0,
	}
	for g, want := range cases {
		if got := tt.Cost(g); math.Abs(got-want) > 1e-12 {
			t.Errorf("Cost(%v) = %v, want %v", g, got, want)
		}
	}
}

func TestTieredTariffMarginal(t *testing.T) {
	tt := mustTiered(t, []Tier{
		{UpToKWh: 10, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 3},
	})
	if tt.Marginal(5) != 1 || tt.Marginal(10) != 3 || tt.Marginal(100) != 3 {
		t.Errorf("marginals wrong: %v %v %v", tt.Marginal(5), tt.Marginal(10), tt.Marginal(100))
	}
	if tt.Marginal(-1) != 1 {
		t.Error("negative draw should use the first tier")
	}
}

func TestTieredTariffValidation(t *testing.T) {
	bad := [][]Tier{
		nil,
		{{UpToKWh: math.Inf(1), Mult: 0}}, // non-positive mult
		{{UpToKWh: 10, Mult: 2}, {UpToKWh: math.Inf(1), Mult: 1}},                        // decreasing mult
		{{UpToKWh: 10, Mult: 1}, {UpToKWh: 5, Mult: 2}, {UpToKWh: math.Inf(1), Mult: 3}}, // boundary not increasing
		{{UpToKWh: 10, Mult: 1}}, // last tier bounded
	}
	for i, tiers := range bad {
		if _, err := NewTieredTariff(tiers); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTieredTariffConvexProperty(t *testing.T) {
	// Convexity: Cost(midpoint) ≤ mean of endpoint costs; marginal
	// non-decreasing; Cost continuous and non-decreasing.
	tt := mustTiered(t, []Tier{
		{UpToKWh: 50, Mult: 1},
		{UpToKWh: 120, Mult: 1.8},
		{UpToKWh: math.Inf(1), Mult: 3.5},
	})
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 300)
		b := math.Mod(math.Abs(rawB), 300)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		mid := (a + b) / 2
		if tt.Cost(mid) > (tt.Cost(a)+tt.Cost(b))/2+1e-9 {
			return false
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if tt.Cost(lo) > tt.Cost(hi)+1e-9 {
			return false
		}
		return tt.Marginal(lo) <= tt.Marginal(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
