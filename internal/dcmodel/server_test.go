package dcmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpteronMatchesPaperNumbers(t *testing.T) {
	st := Opteron()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NumSpeeds() != 4 {
		t.Fatalf("NumSpeeds = %d, want 4", st.NumSpeeds())
	}
	if st.StaticKW != 0.140 {
		t.Errorf("static = %v kW, want 0.140", st.StaticKW)
	}
	wantBusyW := []float64{184, 194, 208, 231}
	wantRate := []float64{3.2, 5.2, 7.2, 10}
	for i, l := range st.Levels {
		if math.Abs(l.BusyKW*1000-wantBusyW[i]) > 1e-9 {
			t.Errorf("level %d busy = %v W, want %v", i, l.BusyKW*1000, wantBusyW[i])
		}
		if math.Abs(l.RateRPS-wantRate[i]) > 1e-9 {
			t.Errorf("level %d rate = %v, want %v", i, l.RateRPS, wantRate[i])
		}
	}
}

func TestServerPowerModel(t *testing.T) {
	st := Opteron()
	// Off: zero power (paper's zero-speed assumption).
	if p := st.PowerKW(0, 5); p != 0 {
		t.Errorf("off power = %v", p)
	}
	// Idle at top speed: static only.
	if p := st.PowerKW(4, 0); math.Abs(p-0.140) > 1e-12 {
		t.Errorf("idle power = %v, want 0.140", p)
	}
	// Fully utilized at top speed: 231 W.
	if p := st.PowerKW(4, 10); math.Abs(p-0.231) > 1e-12 {
		t.Errorf("busy power = %v, want 0.231", p)
	}
	// Half utilized at top speed: 140 + 91/2 = 185.5 W.
	if p := st.PowerKW(4, 5); math.Abs(p-0.1855) > 1e-12 {
		t.Errorf("half-load power = %v, want 0.1855", p)
	}
	// Load clamped to the service rate.
	if p := st.PowerKW(1, 99); math.Abs(p-0.184) > 1e-12 {
		t.Errorf("over-rate power = %v, want 0.184", p)
	}
	if p := st.PowerKW(1, -3); math.Abs(p-0.140) > 1e-12 {
		t.Errorf("negative-load power = %v, want 0.140", p)
	}
}

func TestServerTypeValidateRejectsBadInputs(t *testing.T) {
	cases := []ServerType{
		{Name: "neg-static", StaticKW: -1, Levels: []SpeedLevel{{RateRPS: 1, BusyKW: 1}}},
		{Name: "no-levels", StaticKW: 0.1},
		{Name: "non-increasing", StaticKW: 0.1, Levels: []SpeedLevel{
			{RateRPS: 2, BusyKW: 0.2}, {RateRPS: 2, BusyKW: 0.3},
		}},
		{Name: "busy-below-static", StaticKW: 0.5, Levels: []SpeedLevel{{RateRPS: 1, BusyKW: 0.2}}},
	}
	for _, st := range cases {
		if err := st.Validate(); err == nil {
			t.Errorf("%s: expected validation error", st.Name)
		}
	}
}

func TestComputingPowerAndRate(t *testing.T) {
	st := Opteron()
	if st.Rate(0) != 0 || st.ComputingKW(0) != 0 {
		t.Error("speed 0 must have zero rate and power")
	}
	if math.Abs(st.ComputingKW(4)-0.091) > 1e-12 {
		t.Errorf("computing power at top speed = %v, want 0.091", st.ComputingKW(4))
	}
	if st.MaxRate() != 10 || math.Abs(st.MaxBusyKW()-0.231) > 1e-12 {
		t.Errorf("MaxRate/MaxBusyKW = %v/%v", st.MaxRate(), st.MaxBusyKW())
	}
}

func TestPowerMonotoneInLoadProperty(t *testing.T) {
	st := Opteron()
	f := func(k8 uint8, a, b float64) bool {
		k := int(k8)%st.NumSpeeds() + 1
		a = math.Mod(math.Abs(a), st.Rate(k))
		b = math.Mod(math.Abs(b), st.Rate(k))
		if a > b {
			a, b = b, a
		}
		return st.PowerKW(k, a) <= st.PowerKW(k, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInSpeedAtFullLoadProperty(t *testing.T) {
	// At equal load, a faster speed costs at least as much static+computing
	// headroom when fully loaded; check busy powers are increasing.
	st := Opteron()
	for k := 1; k < st.NumSpeeds(); k++ {
		if st.Levels[k].BusyKW <= st.Levels[k-1].BusyKW {
			t.Errorf("busy power not increasing at level %d", k)
		}
	}
}
