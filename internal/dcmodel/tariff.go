package dcmodel

import (
	"fmt"
	"math"
	"sort"
)

// Tariff generalizes the electricity cost of Eq. (3) beyond the linear
// w(t)·[p − r]^+ form: §2.1 notes the analysis "can also model other
// electricity cost functions such as nonlinear convex functions (e.g., the
// data center is charged at a higher price if it consumes more power)".
//
// A Tariff maps one slot's grid energy (kWh) to a *multiplier profile*:
// the realized electricity cost is w(t) · Energy-weighted multiplier, so
// the hourly market price still sets the level while the tariff shapes the
// escalation. Implementations must be convex (non-decreasing marginals)
// for the per-slot solvers to remain exact.
type Tariff interface {
	// Cost returns the multiplier-weighted energy for a slot's grid draw;
	// the dollar cost is w(t)·Cost(grid).
	Cost(gridKWh float64) float64
	// Marginal returns d(Cost)/d(grid) at the given draw.
	Marginal(gridKWh float64) float64
}

// FlatTariff is the paper's default linear tariff: Cost(g) = g.
type FlatTariff struct{}

// Cost implements Tariff.
func (FlatTariff) Cost(g float64) float64 { return math.Max(0, g) }

// Marginal implements Tariff.
func (FlatTariff) Marginal(float64) float64 { return 1 }

// Tier is one block of a tiered (inclining-block) tariff: energy beyond
// the previous tier boundary and up to UpToKWh is charged at Mult times
// the market price.
type Tier struct {
	UpToKWh float64 // inclusive upper boundary; +Inf for the last tier
	Mult    float64 // price multiplier within this block
}

// TieredTariff is an inclining-block tariff — the canonical convex
// nonlinear electricity cost ("charged at a higher price if it consumes
// more power").
type TieredTariff struct {
	Tiers []Tier
}

// NewTieredTariff validates and returns a tiered tariff. Boundaries must be
// strictly increasing, multipliers positive and non-decreasing (convexity),
// and the last tier unbounded.
func NewTieredTariff(tiers []Tier) (*TieredTariff, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("dcmodel: tariff needs at least one tier")
	}
	prevUp, prevMult := 0.0, 0.0
	for i, t := range tiers {
		if t.Mult <= 0 {
			return nil, fmt.Errorf("dcmodel: tier %d multiplier %v must be positive", i, t.Mult)
		}
		if t.Mult < prevMult {
			return nil, fmt.Errorf("dcmodel: tier %d multiplier %v decreases (non-convex)", i, t.Mult)
		}
		if i < len(tiers)-1 {
			if t.UpToKWh <= prevUp {
				return nil, fmt.Errorf("dcmodel: tier %d boundary %v not increasing", i, t.UpToKWh)
			}
			prevUp = t.UpToKWh
		} else if !math.IsInf(t.UpToKWh, 1) {
			return nil, fmt.Errorf("dcmodel: last tier must be unbounded (+Inf)")
		}
		prevMult = t.Mult
	}
	return &TieredTariff{Tiers: tiers}, nil
}

// Cost implements Tariff.
func (t *TieredTariff) Cost(g float64) float64 {
	if g <= 0 {
		return 0
	}
	var cost, lower float64
	for _, tier := range t.Tiers {
		upper := math.Min(g, tier.UpToKWh)
		if upper > lower {
			cost += (upper - lower) * tier.Mult
			lower = upper
		}
		if g <= tier.UpToKWh {
			break
		}
	}
	return cost
}

// Marginal implements Tariff.
func (t *TieredTariff) Marginal(g float64) float64 {
	if g < 0 {
		g = 0
	}
	i := sort.Search(len(t.Tiers), func(i int) bool { return g < t.Tiers[i].UpToKWh })
	if i == len(t.Tiers) {
		i--
	}
	return t.Tiers[i].Mult
}

var (
	_ Tariff = FlatTariff{}
	_ Tariff = (*TieredTariff)(nil)
)
