package dcmodel

import (
	"fmt"
	"math"
)

// CostParams carries the per-slot environment needed to price a
// configuration: the electricity price w(t), the on-site renewable supply
// r(t), and the delay weight β of Eq. (5), plus every Ledger extension —
// slot duration, nonlinear tariff, switching cost, deficit terms and the
// §3.1 caps. The zero value of each extension reproduces the paper's
// defaults (1-hour slots, linear tariff, no switching charge, no caps),
// so existing callers price exactly as before.
type CostParams struct {
	PriceUSDPerKWh float64 // w(t)
	OnsiteKW       float64 // r(t), on-site renewable power available this slot
	Beta           float64 // β: dollars per unit of delay cost

	SlotHours     float64 // slot duration in hours; 0 means 1
	Tariff        Tariff  // nil means the paper's linear tariff
	SwitchCostKWh float64 // energy-equivalent cost per toggled server
	Alpha         float64 // carbon-deficit capping aggressiveness (Eq. 10)
	RECPerSlotKWh float64 // per-slot REC allowance z (Eq. 17)
	MaxPowerKW    float64 // §3.1 peak-power cap; 0 disables
	MaxDelayCost  float64 // §3.1 delay cap; 0 disables
}

// Ledger builds the slot-cost kernel for this environment; see Ledger for
// the semantics of each knob.
func (p CostParams) Ledger() Ledger {
	return Ledger{
		PriceUSDPerKWh: p.PriceUSDPerKWh,
		OnsiteKW:       p.OnsiteKW,
		Beta:           p.Beta,
		SlotHours:      p.SlotHours,
		Tariff:         p.Tariff,
		SwitchCostKWh:  p.SwitchCostKWh,
		Alpha:          p.Alpha,
		RECPerSlotKWh:  p.RECPerSlotKWh,
		MaxPowerKW:     p.MaxPowerKW,
		MaxDelayCost:   p.MaxDelayCost,
	}
}

// Cost evaluates Eqs. (3)–(5) for a configuration through the shared
// Ledger kernel. Infeasible loads (at or beyond a group's aggregate rate)
// yield +Inf delay and total.
func (c *Cluster) Cost(p CostParams, speeds []int, load []float64) CostBreakdown {
	return c.CostWithSwitching(p, speeds, load, 0)
}

// CostWithSwitching is Cost plus the Fig. 5(d) toggling charge for a
// change of activeDelta active servers against the previous slot —
// the heterogeneous counterpart of the sim engine's full slot charge.
func (c *Cluster) CostWithSwitching(p CostParams, speeds []int, load []float64, activeDelta int) CostBreakdown {
	return p.Ledger().Charge(c.FacilityPowerKW(speeds, load), c.DelayCost(speeds, load), activeDelta)
}

// ActiveServers returns the number of servers in groups running at a
// positive speed — the heterogeneous analogue of the homogeneous
// deployment's active-server count, and the quantity switching cost is
// charged on.
func (c *Cluster) ActiveServers(speeds []int) int {
	n := 0
	for g := range c.Groups {
		if g < len(speeds) && speeds[g] > 0 {
			n += c.Groups[g].N
		}
	}
	return n
}

// SlotProblem is the per-slot optimization every algorithm in this
// repository reduces to:
//
//	min over (speeds, load):  We·[p(λ,x) − r]^+ + Wd·d(λ,x)
//	s.t. Σ_g load_g = LambdaRPS, 0 ≤ load_g ≤ γ·n_g·x_g, speeds discrete.
//
// COCA's P3 (Eq. 16) uses We = V·w(t) + q(t) and Wd = V·β. The plain cost
// g of Eq. (5) is We = w(t), Wd = β. The offline OPT dual uses
// We = w(t) + η, Wd = β. PerfectHP's capped subproblem bisects an extra
// penalty into We.
type SlotProblem struct {
	Cluster   *Cluster
	LambdaRPS float64 // λ(t): total arrivals to place
	We        float64 // weight on grid energy [p − r]^+
	Wd        float64 // weight on delay cost d
	OnsiteKW  float64 // r(t)
}

// P3Weights builds the COCA P3 weights of Eq. (16) from the control
// parameter V, the carbon-deficit queue length q, the electricity price w
// and the delay weight β.
func P3Weights(v, q, priceUSDPerKWh, beta float64) (we, wd float64) {
	return v*priceUSDPerKWh + q, v * beta
}

// Validate reports whether the problem is well formed and feasible in
// aggregate (λ must not exceed the cluster's top-speed γ-capacity).
func (p *SlotProblem) Validate() error {
	if p.Cluster == nil {
		return fmt.Errorf("dcmodel: SlotProblem has nil cluster")
	}
	if err := p.Cluster.Validate(); err != nil {
		return err
	}
	if p.LambdaRPS < 0 || math.IsNaN(p.LambdaRPS) {
		return fmt.Errorf("dcmodel: negative arrival rate %v", p.LambdaRPS)
	}
	if p.We < 0 || p.Wd < 0 {
		return fmt.Errorf("dcmodel: negative weights We=%v Wd=%v", p.We, p.Wd)
	}
	top := make([]int, len(p.Cluster.Groups))
	for g := range top {
		top[g] = p.Cluster.Groups[g].Type.NumSpeeds()
	}
	if p.LambdaRPS > p.Cluster.UsableCapacityRPS(top)*(1+1e-12) {
		return fmt.Errorf("dcmodel: arrival rate %v exceeds usable capacity %v",
			p.LambdaRPS, p.Cluster.UsableCapacityRPS(top))
	}
	return nil
}

// Objective evaluates We·[p − r]^+ + Wd·d for a configuration. It returns
// +Inf for configurations whose delay is infinite.
func (p *SlotProblem) Objective(speeds []int, load []float64) float64 {
	pw := p.Cluster.FacilityPowerKW(speeds, load)
	grid := pw - p.OnsiteKW
	if grid < 0 {
		grid = 0
	}
	d := p.Cluster.DelayCost(speeds, load)
	return p.We*grid + p.Wd*d
}

// Feasible reports whether the speed vector can carry the problem's load
// under the γ cap (GSD's Algorithm 2 line 2 gate).
func (p *SlotProblem) Feasible(speeds []int) bool {
	return p.LambdaRPS <= p.Cluster.UsableCapacityRPS(speeds)*(1+1e-12)
}

// Solution is a solved slot configuration.
type Solution struct {
	Speeds []int
	Load   []float64
	Value  float64 // objective value We·[p−r]^+ + Wd·d
}

// Clone deep-copies the solution.
func (s Solution) Clone() Solution {
	out := Solution{Value: s.Value}
	out.Speeds = append([]int(nil), s.Speeds...)
	out.Load = append([]float64(nil), s.Load...)
	return out
}

// CopyFrom overwrites s with a deep copy of src, reusing s's backing arrays
// when they have capacity — the allocation-free counterpart of Clone for hot
// loops that shuttle solutions between preallocated buffers. Copying a
// solution onto itself is a no-op.
func (s *Solution) CopyFrom(src *Solution) {
	if s == src {
		return
	}
	s.Speeds = append(s.Speeds[:0], src.Speeds...)
	s.Load = append(s.Load[:0], src.Load...)
	s.Value = src.Value
}
