package dcmodel

import (
	"math"
	"testing"
)

func TestLedgerHoursDefault(t *testing.T) {
	var l Ledger
	if l.Hours() != 1 {
		t.Fatalf("zero-value slot duration = %v, want 1", l.Hours())
	}
	l.SlotHours = 0.25
	if l.Hours() != 0.25 {
		t.Fatalf("Hours() = %v, want 0.25", l.Hours())
	}
}

func TestLedgerGridDraw(t *testing.T) {
	l := Ledger{OnsiteKW: 30}
	if got := l.GridKWh(100); got != 70 {
		t.Errorf("grid = %v, want 70", got)
	}
	// On-site surplus is truncated, never credited (the [·]^+ of Eq. 10).
	if got := l.GridKWh(10); got != 0 {
		t.Errorf("grid with surplus = %v, want 0", got)
	}
	// Sub-hourly slots scale the energy.
	l.SlotHours = 0.5
	if got := l.GridKWh(100); got != 35 {
		t.Errorf("half-hour grid = %v, want 35", got)
	}
}

func TestLedgerChargeDecomposition(t *testing.T) {
	l := Ledger{
		PriceUSDPerKWh: 0.08,
		OnsiteKW:       20,
		Beta:           0.01,
		SwitchCostKWh:  0.231,
	}
	ch := l.Charge(120, 50, -3)
	wantGrid := 100.0
	if ch.GridKWh != wantGrid {
		t.Errorf("grid = %v, want %v", ch.GridKWh, wantGrid)
	}
	if ch.EnergyKWh != 120 {
		t.Errorf("energy = %v, want 120", ch.EnergyKWh)
	}
	if want := 0.08 * wantGrid; ch.ElectricityUSD != want {
		t.Errorf("electricity = %v, want %v", ch.ElectricityUSD, want)
	}
	if want := 0.01 * 50.0; ch.DelayUSD != want {
		t.Errorf("delay = %v, want %v", ch.DelayUSD, want)
	}
	if want := 0.08 * 0.231 * 3; math.Abs(ch.SwitchUSD-want) > 1e-15 {
		t.Errorf("switch = %v, want %v", ch.SwitchUSD, want)
	}
	if want := ch.ElectricityUSD + ch.DelayUSD + ch.SwitchUSD; ch.TotalUSD != want {
		t.Errorf("total = %v, want %v", ch.TotalUSD, want)
	}
}

func TestLedgerTariffPricing(t *testing.T) {
	tt, err := NewTieredTariff([]Tier{
		{UpToKWh: 50, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := Ledger{PriceUSDPerKWh: 0.1, Tariff: tt}
	// 80 kWh: 50 at 1x + 30 at 3x = 140 effective kWh.
	if want := 0.1 * 140; math.Abs(l.ElectricityUSD(80)-want) > 1e-12 {
		t.Errorf("tiered electricity = %v, want %v", l.ElectricityUSD(80), want)
	}
	l.Tariff = nil
	if want := 0.1 * 80; l.ElectricityUSD(80) != want {
		t.Errorf("linear electricity = %v, want %v", l.ElectricityUSD(80), want)
	}
}

func TestLedgerDeficit(t *testing.T) {
	l := Ledger{Alpha: 0.8, RECPerSlotKWh: 5}
	if got, want := l.Deficit(100, 50), 100-0.8*50-5.0; got != want {
		t.Errorf("deficit = %v, want %v", got, want)
	}
	// Underspend goes negative — the running average can bank credit.
	if got := l.Deficit(0, 50); got >= 0 {
		t.Errorf("deficit with no draw = %v, want negative", got)
	}
}

func TestLedgerCheckCaps(t *testing.T) {
	l := Ledger{MaxPowerKW: 100, MaxDelayCost: 10}
	if err := l.CheckCaps(99, 9); err != nil {
		t.Errorf("within caps rejected: %v", err)
	}
	if err := l.CheckCaps(101, 1); err == nil {
		t.Error("peak-power violation accepted")
	}
	if err := l.CheckCaps(1, 11); err == nil {
		t.Error("max-delay violation accepted")
	}
	// Zero disables.
	var open Ledger
	if err := open.CheckCaps(1e12, 1e12); err != nil {
		t.Errorf("uncapped ledger rejected: %v", err)
	}
}

// TestClusterCostMatchesLedger pins the Cluster.Cost path to the shared
// kernel: the two must agree exactly.
func TestClusterCostMatchesLedger(t *testing.T) {
	c := &Cluster{Groups: []Group{{Type: Opteron(), N: 10}}, Gamma: 0.95, PUE: 1.2}
	speeds := []int{2}
	load := []float64{500}
	p := CostParams{PriceUSDPerKWh: 0.07, OnsiteKW: 2, Beta: 0.02}
	got := c.Cost(p, speeds, load)
	want := p.Ledger().Charge(c.FacilityPowerKW(speeds, load), c.DelayCost(speeds, load), 0)
	if got != want {
		t.Errorf("Cluster.Cost = %+v, ledger charge = %+v", got, want)
	}
}
