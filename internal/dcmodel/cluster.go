package dcmodel

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Group is a batch of N identical servers that share one speed decision, the
// paper's §4.2 complexity reduction ("changing speed selections for a whole
// group of (homogeneous) servers in batch"). Load assigned to a group is
// split equally across its servers, which is optimal by symmetry and
// convexity of the per-server cost.
type Group struct {
	Type ServerType
	N    int
}

// Validate reports whether the group is well formed.
func (g *Group) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("dcmodel: group of %q has %d servers", g.Type.Name, g.N)
	}
	return g.Type.Validate()
}

// RateAt returns the aggregate service rate n·x_k of the group at speed
// index k.
func (g *Group) RateAt(k int) float64 { return float64(g.N) * g.Type.Rate(k) }

// PowerKW returns the aggregate group power with total group load L at speed
// index k: n·p_s + p_c(x_k)·L/x_k (linear in L; see Eq. (1) summed over the
// group's servers under an equal split).
func (g *Group) PowerKW(k int, load float64) float64 {
	if k == 0 {
		return 0
	}
	return float64(g.N)*g.Type.StaticKW + g.Type.ComputingKW(k)*load/g.Type.Rate(k)
}

// PowerSlopeKWPerRPS returns a = p_c(x_k)/x_k, the marginal power per unit of
// load at speed k. Zero at speed 0.
func (g *Group) PowerSlopeKWPerRPS(k int) float64 {
	if k == 0 {
		return 0
	}
	return g.Type.ComputingKW(k) / g.Type.Rate(k)
}

// DelayCost returns the group's total M/G/1/PS delay cost of Eq. (4):
// n·λs/(x − λs) with λs = L/n, i.e. n·L/(n·x − L). It returns +Inf when the
// load reaches or exceeds the group's aggregate rate.
func (g *Group) DelayCost(k int, load float64) float64 {
	if load <= 0 {
		return 0
	}
	if k == 0 {
		return math.Inf(1)
	}
	agg := g.RateAt(k)
	if load >= agg {
		return math.Inf(1)
	}
	return float64(g.N) * load / (agg - load)
}

// Cluster is the data center: a set of server groups plus the global
// utilization cap γ of Eq. (7) and a PUE factor multiplying IT power into
// facility power (§2.1, footnote 1).
type Cluster struct {
	Groups []Group
	Gamma  float64 // γ ∈ (0,1): per-server max utilization
	PUE    float64 // ≥ 1; 1 = IT power only (the paper's default)

	// arrays caches the struct-of-arrays view of Groups; see Arrays.
	arrays atomic.Pointer[ClusterArrays]
}

// Validate reports whether the cluster is well formed.
func (c *Cluster) Validate() error {
	if len(c.Groups) == 0 {
		return fmt.Errorf("dcmodel: cluster has no groups")
	}
	if c.Gamma <= 0 || c.Gamma >= 1 {
		return fmt.Errorf("dcmodel: gamma %v outside (0,1)", c.Gamma)
	}
	if c.PUE < 1 {
		return fmt.Errorf("dcmodel: PUE %v below 1", c.PUE)
	}
	for i := range c.Groups {
		if err := c.Groups[i].Validate(); err != nil {
			return fmt.Errorf("group %d: %w", i, err)
		}
	}
	return nil
}

// TotalServers returns the number of servers in the cluster.
func (c *Cluster) TotalServers() int {
	n := 0
	for i := range c.Groups {
		n += c.Groups[i].N
	}
	return n
}

// MaxCapacityRPS returns the aggregate service rate with every server at its
// top speed (not discounted by γ).
func (c *Cluster) MaxCapacityRPS() float64 {
	var s float64
	for i := range c.Groups {
		s += float64(c.Groups[i].N) * c.Groups[i].Type.MaxRate()
	}
	return s
}

// PeakPowerKW returns the facility power with every server busy at top speed.
func (c *Cluster) PeakPowerKW() float64 {
	var s float64
	for i := range c.Groups {
		s += float64(c.Groups[i].N) * c.Groups[i].Type.MaxBusyKW()
	}
	return s * c.PUE
}

// UsableCapacityRPS returns Σ_g γ·n_g·x_g(k_g) for the given speed vector:
// the largest total load the configuration can legally carry under Eq. (7).
func (c *Cluster) UsableCapacityRPS(speeds []int) float64 {
	var s float64
	for g := range c.Groups {
		s += c.Groups[g].RateAt(speeds[g])
	}
	return s * c.Gamma
}

// CheckConfig validates a (speeds, load) pair against Eqs. (7)–(9): index
// ranges, non-negative loads, per-group γ caps, and zero load on off groups.
// It does NOT check Σ load = λ; callers that need Eq. (8) verify it
// themselves because solvers operate on partial assignments.
func (c *Cluster) CheckConfig(speeds []int, load []float64) error {
	if len(speeds) != len(c.Groups) || len(load) != len(c.Groups) {
		return fmt.Errorf("%w: got %d speeds, %d loads for %d groups",
			ErrBadConfig, len(speeds), len(load), len(c.Groups))
	}
	for g := range c.Groups {
		k := speeds[g]
		if k < 0 || k > c.Groups[g].Type.NumSpeeds() {
			return fmt.Errorf("%w: group %d speed index %d out of range", ErrBadConfig, g, k)
		}
		if load[g] < -1e-9 || math.IsNaN(load[g]) {
			return fmt.Errorf("%w: group %d load %v negative", ErrBadConfig, g, load[g])
		}
		cap := c.Gamma * c.Groups[g].RateAt(k)
		if load[g] > cap*(1+1e-9)+1e-9 {
			return fmt.Errorf("%w: group %d load %v exceeds γ-cap %v", ErrBadConfig, g, load[g], cap)
		}
	}
	return nil
}

// ITPowerKW returns the total server power Σ p_i of Eq. (2) for the given
// configuration, before the PUE multiplier.
func (c *Cluster) ITPowerKW(speeds []int, load []float64) float64 {
	var s float64
	for g := range c.Groups {
		s += c.Groups[g].PowerKW(speeds[g], load[g])
	}
	return s
}

// FacilityPowerKW returns PUE·ITPower, the p(λ, x) used in the electricity
// cost Eq. (3) and the carbon constraint Eq. (10).
func (c *Cluster) FacilityPowerKW(speeds []int, load []float64) float64 {
	return c.PUE * c.ITPowerKW(speeds, load)
}

// DelayCost returns the total delay cost d of Eq. (4) for the configuration.
func (c *Cluster) DelayCost(speeds []int, load []float64) float64 {
	var s float64
	for g := range c.Groups {
		s += c.Groups[g].DelayCost(speeds[g], load[g])
	}
	return s
}

// PaperCluster returns the paper's §5.1 deployment: 216,000 Opteron servers
// (peak server power ≈ 50 MW) arranged into the given number of equal
// homogeneous groups (the paper's GSD experiments use 200), γ = 0.95 and
// PUE = 1 (the paper models server power only).
func PaperCluster(numGroups int) *Cluster {
	const totalServers = 216000
	if numGroups <= 0 {
		numGroups = 200
	}
	per := totalServers / numGroups
	groups := make([]Group, numGroups)
	st := Opteron()
	for i := range groups {
		groups[i] = Group{Type: st, N: per}
	}
	// Put the rounding remainder into the last group so the fleet size is
	// exact.
	groups[numGroups-1].N += totalServers - per*numGroups
	return &Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
}

// HeterogeneousCluster returns a fleet mixing generations of hardware: the
// paper motivates heterogeneity by "different purchase dates" (§2.1). It
// scales the Opteron profile into older (slower, less efficient) and newer
// (faster, more efficient) types, split across numGroups groups in
// round-robin, with totalServers servers overall.
func HeterogeneousCluster(totalServers, numGroups int) *Cluster {
	base := Opteron()
	scale := func(name string, rate, power, static float64) ServerType {
		st := ServerType{Name: name, StaticKW: base.StaticKW * static}
		for _, l := range base.Levels {
			st.Levels = append(st.Levels, SpeedLevel{
				FreqGHz: l.FreqGHz,
				BusyKW:  st.StaticKW + (l.BusyKW-base.StaticKW)*power,
				RateRPS: l.RateRPS * rate,
			})
		}
		return st
	}
	types := []ServerType{
		scale("gen-old", 0.7, 1.1, 1.25), // slow and power-hungry
		base,                             // the measured Opteron
		scale("gen-new", 1.4, 0.9, 0.8),  // fast and efficient
	}
	if numGroups <= 0 {
		numGroups = len(types)
	}
	per := totalServers / numGroups
	groups := make([]Group, numGroups)
	for i := range groups {
		groups[i] = Group{Type: types[i%len(types)], N: per}
	}
	groups[numGroups-1].N += totalServers - per*numGroups
	return &Cluster{Groups: groups, Gamma: 0.95, PUE: 1}
}
