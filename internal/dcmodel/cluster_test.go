package dcmodel

import (
	"math"
	"strings"
	"testing"
)

func TestPaperClusterScale(t *testing.T) {
	c := PaperCluster(200)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalServers(); got != 216000 {
		t.Errorf("TotalServers = %d, want 216000", got)
	}
	if len(c.Groups) != 200 {
		t.Errorf("groups = %d, want 200", len(c.Groups))
	}
	// Peak server power ≈ 50 MW (216000 × 231 W = 49.9 MW).
	if got := c.PeakPowerKW(); math.Abs(got-216000*0.231) > 1e-6 {
		t.Errorf("PeakPowerKW = %v, want %v", got, 216000*0.231)
	}
	// Max capacity 2.16M req/s; the paper's peak workload 1.1M is ~50%.
	if got := c.MaxCapacityRPS(); math.Abs(got-2.16e6) > 1e-6 {
		t.Errorf("MaxCapacityRPS = %v, want 2.16e6", got)
	}
}

func TestPaperClusterRemainderGoesToLastGroup(t *testing.T) {
	c := PaperCluster(7) // 216000 / 7 leaves a remainder
	if got := c.TotalServers(); got != 216000 {
		t.Errorf("TotalServers = %d, want 216000", got)
	}
}

func TestPaperClusterDefaultGroups(t *testing.T) {
	if got := len(PaperCluster(0).Groups); got != 200 {
		t.Errorf("default groups = %d, want 200", got)
	}
}

func TestGroupPowerLinearInLoad(t *testing.T) {
	g := Group{Type: Opteron(), N: 100}
	k := 3
	p0 := g.PowerKW(k, 0)
	slope := g.PowerSlopeKWPerRPS(k)
	for _, load := range []float64{0, 10, 100, 500} {
		want := p0 + slope*load
		if got := g.PowerKW(k, load); math.Abs(got-want) > 1e-9 {
			t.Errorf("PowerKW(%v) = %v, want %v", load, got, want)
		}
	}
	if g.PowerKW(0, 0) != 0 {
		t.Error("off group must draw zero power")
	}
	if g.PowerSlopeKWPerRPS(0) != 0 {
		t.Error("off group must have zero slope")
	}
}

func TestGroupDelayCost(t *testing.T) {
	g := Group{Type: Opteron(), N: 10}
	// 10 servers at speed 4 (x=10): aggregate 100 rps. Load 50 → per-server
	// λ=5, d = 10·5/(10−5) = 10.
	if got := g.DelayCost(4, 50); math.Abs(got-10) > 1e-9 {
		t.Errorf("DelayCost = %v, want 10", got)
	}
	if got := g.DelayCost(4, 0); got != 0 {
		t.Errorf("zero-load delay = %v", got)
	}
	if got := g.DelayCost(4, 100); !math.IsInf(got, 1) {
		t.Errorf("at-capacity delay = %v, want +Inf", got)
	}
	if got := g.DelayCost(0, 1); !math.IsInf(got, 1) {
		t.Errorf("off group with load: delay = %v, want +Inf", got)
	}
}

func TestClusterValidateRejectsBadInputs(t *testing.T) {
	good := PaperCluster(2)
	cases := []struct {
		name   string
		mutate func(*Cluster)
	}{
		{"no groups", func(c *Cluster) { c.Groups = nil }},
		{"gamma 0", func(c *Cluster) { c.Gamma = 0 }},
		{"gamma 1", func(c *Cluster) { c.Gamma = 1 }},
		{"pue<1", func(c *Cluster) { c.PUE = 0.5 }},
		{"empty group", func(c *Cluster) { c.Groups[0].N = 0 }},
	}
	for _, tc := range cases {
		c := &Cluster{
			Groups: append([]Group(nil), good.Groups...),
			Gamma:  good.Gamma,
			PUE:    good.PUE,
		}
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCheckConfig(t *testing.T) {
	c := PaperCluster(2)
	n := len(c.Groups)
	speeds := make([]int, n)
	load := make([]float64, n)
	speeds[0] = 4
	load[0] = 100
	if err := c.CheckConfig(speeds, load); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Wrong lengths.
	if err := c.CheckConfig(speeds[:1], load); err == nil {
		t.Error("length mismatch accepted")
	}
	// Out-of-range speed.
	bad := append([]int(nil), speeds...)
	bad[0] = 9
	if err := c.CheckConfig(bad, load); err == nil {
		t.Error("bad speed index accepted")
	}
	// Load on an off group exceeds its zero γ-cap.
	l2 := append([]float64(nil), load...)
	l2[1] = 5 // group 1 speed 0
	if err := c.CheckConfig(speeds, l2); err == nil {
		t.Error("load on off group accepted")
	}
	// Load above γ-cap.
	l3 := append([]float64(nil), load...)
	l3[0] = c.Gamma*c.Groups[0].RateAt(4) + 1
	if err := c.CheckConfig(speeds, l3); err == nil {
		t.Error("over-cap load accepted")
	}
	// Negative load.
	l4 := append([]float64(nil), load...)
	l4[0] = -1
	if err := c.CheckConfig(speeds, l4); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative load: err = %v", err)
	}
}

func TestUsableCapacity(t *testing.T) {
	c := PaperCluster(4)
	speeds := []int{4, 4, 0, 0}
	// Two groups of 54000 at 10 rps × γ.
	want := 0.95 * 2 * 54000 * 10
	if got := c.UsableCapacityRPS(speeds); math.Abs(got-want) > 1e-6 {
		t.Errorf("UsableCapacityRPS = %v, want %v", got, want)
	}
}

func TestPUEScalesFacilityPower(t *testing.T) {
	c := PaperCluster(2)
	c.PUE = 1.5
	speeds := []int{4, 4}
	load := []float64{1000, 1000}
	it := c.ITPowerKW(speeds, load)
	if got := c.FacilityPowerKW(speeds, load); math.Abs(got-1.5*it) > 1e-9 {
		t.Errorf("FacilityPowerKW = %v, want %v", got, 1.5*it)
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	c := HeterogeneousCluster(9000, 6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalServers() != 9000 {
		t.Errorf("TotalServers = %d", c.TotalServers())
	}
	names := map[string]bool{}
	for _, g := range c.Groups {
		names[g.Type.Name] = true
	}
	if len(names) != 3 {
		t.Errorf("expected 3 server generations, got %v", names)
	}
	// The new generation must dominate the old on rate and efficiency.
	var old, new_ *Group
	for i := range c.Groups {
		switch c.Groups[i].Type.Name {
		case "gen-old":
			old = &c.Groups[i]
		case "gen-new":
			new_ = &c.Groups[i]
		}
	}
	if old == nil || new_ == nil {
		t.Fatal("missing generations")
	}
	if new_.Type.MaxRate() <= old.Type.MaxRate() {
		t.Error("gen-new should be faster than gen-old")
	}
	if new_.Type.MaxBusyKW() >= old.Type.MaxBusyKW() {
		t.Error("gen-new should use less power than gen-old")
	}
}
