package dcmodel

import (
	"math"
	"testing"
)

func smallCluster() *Cluster {
	return &Cluster{
		Groups: []Group{
			{Type: Opteron(), N: 10},
			{Type: Opteron(), N: 10},
		},
		Gamma: 0.95,
		PUE:   1,
	}
}

func TestCostBreakdown(t *testing.T) {
	c := smallCluster()
	p := CostParams{PriceUSDPerKWh: 0.05, OnsiteKW: 0, Beta: 0.01}
	speeds := []int{4, 4}
	load := []float64{50, 50}
	cb := c.Cost(p, speeds, load)
	// Power: 2 groups × (10·0.140 + 0.091·50/10) = 2 × 1.855 = 3.71 kW.
	if math.Abs(cb.PowerKW-3.71) > 1e-9 {
		t.Errorf("PowerKW = %v, want 3.71", cb.PowerKW)
	}
	if math.Abs(cb.GridKWh-3.71) > 1e-9 {
		t.Errorf("GridKWh = %v", cb.GridKWh)
	}
	if math.Abs(cb.ElectricityUSD-0.05*3.71) > 1e-9 {
		t.Errorf("ElectricityUSD = %v", cb.ElectricityUSD)
	}
	// Delay per group: 10·50/(100−50) = 10, total 20.
	if math.Abs(cb.DelayCost-20) > 1e-9 {
		t.Errorf("DelayCost = %v, want 20", cb.DelayCost)
	}
	if math.Abs(cb.TotalUSD-(0.05*3.71+0.01*20)) > 1e-9 {
		t.Errorf("TotalUSD = %v", cb.TotalUSD)
	}
}

func TestCostOnsiteOffsetsGrid(t *testing.T) {
	c := smallCluster()
	speeds := []int{4, 4}
	load := []float64{50, 50}
	// On-site renewables exceed facility power → zero grid draw (Eq. 3's [·]^+).
	cb := c.Cost(CostParams{PriceUSDPerKWh: 0.05, OnsiteKW: 100, Beta: 0.01}, speeds, load)
	if cb.GridKWh != 0 || cb.ElectricityUSD != 0 {
		t.Errorf("grid = %v, electricity = %v; want 0", cb.GridKWh, cb.ElectricityUSD)
	}
	// Partial offset.
	cb = c.Cost(CostParams{PriceUSDPerKWh: 0.05, OnsiteKW: 1.71, Beta: 0.01}, speeds, load)
	if math.Abs(cb.GridKWh-2) > 1e-9 {
		t.Errorf("partially offset grid = %v, want 2", cb.GridKWh)
	}
}

func TestP3Weights(t *testing.T) {
	we, wd := P3Weights(240, 17, 0.05, 0.01)
	if math.Abs(we-(240*0.05+17)) > 1e-12 {
		t.Errorf("We = %v", we)
	}
	if math.Abs(wd-2.4) > 1e-12 {
		t.Errorf("Wd = %v", wd)
	}
}

func TestSlotProblemObjectiveMatchesCost(t *testing.T) {
	c := smallCluster()
	speeds := []int{4, 3}
	load := []float64{40, 30}
	pr := SlotProblem{Cluster: c, LambdaRPS: 70, We: 0.05, Wd: 0.01, OnsiteKW: 1}
	cb := c.Cost(CostParams{PriceUSDPerKWh: 0.05, OnsiteKW: 1, Beta: 0.01}, speeds, load)
	if math.Abs(pr.Objective(speeds, load)-cb.TotalUSD) > 1e-12 {
		t.Errorf("objective %v != cost %v", pr.Objective(speeds, load), cb.TotalUSD)
	}
}

func TestSlotProblemValidate(t *testing.T) {
	c := smallCluster()
	good := SlotProblem{Cluster: c, LambdaRPS: 100, We: 1, Wd: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	cases := []SlotProblem{
		{Cluster: nil, LambdaRPS: 1},
		{Cluster: c, LambdaRPS: -1},
		{Cluster: c, LambdaRPS: 1, We: -1},
		{Cluster: c, LambdaRPS: 1e9}, // beyond capacity
		{Cluster: c, LambdaRPS: math.NaN()},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSlotProblemFeasibleGate(t *testing.T) {
	c := smallCluster()
	p := SlotProblem{Cluster: c, LambdaRPS: 150, We: 1, Wd: 1}
	if !p.Feasible([]int{4, 4}) {
		t.Error("all-on at top speed should be feasible for λ=150")
	}
	if p.Feasible([]int{4, 0}) {
		t.Error("λ=150 on one group of 10×10 γ=0.95 (cap 95) should be infeasible")
	}
}

func TestSolutionClone(t *testing.T) {
	s := Solution{Speeds: []int{1, 2}, Load: []float64{3, 4}, Value: 5}
	c := s.Clone()
	c.Speeds[0] = 9
	c.Load[0] = 9
	if s.Speeds[0] != 1 || s.Load[0] != 3 {
		t.Error("Clone aliases the original")
	}
	if c.Value != 5 {
		t.Error("Clone lost value")
	}
}

func TestObjectiveInfeasibleLoadIsInf(t *testing.T) {
	c := smallCluster()
	p := SlotProblem{Cluster: c, LambdaRPS: 100, We: 1, Wd: 1}
	if v := p.Objective([]int{4, 0}, []float64{50, 50}); !math.IsInf(v, 1) {
		t.Errorf("load on off group: objective = %v, want +Inf", v)
	}
}

func TestSolutionCopyFrom(t *testing.T) {
	src := Solution{Speeds: []int{1, 2, 3}, Load: []float64{10, 20, 30}, Value: 7}
	var dst Solution
	dst.CopyFrom(&src)
	if dst.Value != 7 || len(dst.Speeds) != 3 || len(dst.Load) != 3 {
		t.Fatalf("CopyFrom produced %+v", dst)
	}
	dst.Speeds[0] = 99
	dst.Load[0] = 99
	if src.Speeds[0] != 1 || src.Load[0] != 10 {
		t.Error("CopyFrom aliases the source")
	}

	// Buffers with capacity are reused, including when the source is shorter.
	reuse := Solution{Speeds: make([]int, 5), Load: make([]float64, 5)}
	speedsBacking := &reuse.Speeds[0]
	reuse.CopyFrom(&src)
	if len(reuse.Speeds) != 3 || len(reuse.Load) != 3 {
		t.Fatalf("CopyFrom wrong shape: %d speeds, %d loads", len(reuse.Speeds), len(reuse.Load))
	}
	if &reuse.Speeds[0] != speedsBacking {
		t.Error("CopyFrom reallocated a buffer with sufficient capacity")
	}
	allocs := testing.AllocsPerRun(100, func() { reuse.CopyFrom(&src) })
	if allocs != 0 {
		t.Errorf("CopyFrom allocated %v objects per run, want 0", allocs)
	}

	// Self-copy is a no-op.
	src.CopyFrom(&src)
	if src.Value != 7 || src.Speeds[0] != 1 || src.Load[0] != 10 {
		t.Errorf("self CopyFrom corrupted the solution: %+v", src)
	}
}
