// Package loadbalance solves the optimal load-distribution subproblem of
// COCA: given a fixed speed vector (GSD Algorithm 2 line 3, Eq. (18)),
// distribute the total arrival rate λ(t) across server groups to minimize
//
//	We·[p(λ,x) − r]^+ + Wd·d(λ,x)
//	s.t. Σ_g L_g = λ,  0 ≤ L_g ≤ γ·n_g·x_g,
//
// where group power is affine in load and the M/G/1/PS delay cost is convex.
// The [·]^+ kink makes the objective piecewise convex; we solve it by regime
// analysis — water-fill with the full electricity weight (grid regime), with
// zero weight (renewable-surplus regime), and, when the two disagree, bisect
// the effective weight to pin total power exactly at the on-site supply r(t)
// (the kink).
//
// Two solvers are provided: Solve, a single-coordinator KKT water-filling
// solver, and SolveDistributed, a dual-decomposition implementation in which
// every server group answers price signals autonomously (the distributed
// solution the paper points to via refs [5] and [27]).
//
// An Instance is mutable: SetSpeed applies a single-group speed change and
// Revert undoes it, so an iterative caller (the GSD engine proposes one
// coordinate change per Gibbs iteration) keeps one persistent Instance and
// pays a delta update plus an allocation-free SolveInto per proposal instead
// of rebuilding the subproblem 200·n times per slot.
//
// The per-group constants live in a struct-of-arrays layout (parallel
// gIdx/gN/gRate/gSlope/gCap slices over the on groups, backed by the
// cluster's cached dcmodel.ClusterArrays): the water-fill and sweep inner
// loops walk flat float64 arrays instead of pointer-chasing group structs,
// which keeps them cache-linear at fleet scale (10k+ groups per site).
package loadbalance

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dcmodel"
	"repro/internal/numopt"
)

// ErrInfeasible is returned when λ exceeds the γ-discounted capacity of the
// given speed configuration.
var ErrInfeasible = errors.New("loadbalance: load exceeds configuration capacity")

// group is one on-group's precomputed constants gathered back into a struct —
// the undo snapshot unit for SetSpeed/Revert. The live state is the
// Instance's parallel slices; entry/setEntry convert between the two views.
type group struct {
	idx     int     // index into the cluster's group list
	n       float64 // number of servers
	rate    float64 // R = n·x: aggregate service rate
	slopeKW float64 // A = PUE·p_c(x)/x: marginal facility power per RPS
	cap     float64 // γ·R: maximum allowed load
}

// makeGroup builds the prepared constants for cluster group g at speed k > 0
// from the cluster's flat arrays, with exactly the arithmetic NewInstance has
// always used (the arrays store RateAt/PowerSlopeKWPerRPS values verbatim).
func (in *Instance) makeGroup(g, k int) group {
	r := in.arr.Rate(g, k)
	return group{
		idx:     g,
		n:       in.arr.N[g],
		rate:    r,
		slopeKW: in.prob.Cluster.PUE * in.arr.Slope(g, k),
		cap:     in.prob.Cluster.Gamma * r,
	}
}

// undoKind describes the structural effect of the last SetSpeed.
type undoKind int

const (
	undoNone   undoKind = iota // speed unchanged, nothing to restore
	undoModify                 // on→on: one entry rewritten in place
	undoRemove                 // on→off: one entry removed
	undoInsert                 // off→on: one entry inserted
)

// undoRecord snapshots what a single SetSpeed changed so Revert can restore
// the instance bit-for-bit. The sums are restored from the snapshot rather
// than recomputed: they were fresh ordered sums before the mutation, so
// restoring them reproduces the exact pre-mutation bits.
type undoRecord struct {
	valid   bool
	kind    undoKind
	g       int   // cluster group the mutation touched
	oldK    int   // its previous speed index
	pos     int   // position in the on-group slices the mutation touched
	entry   group // the displaced entry (modify/remove)
	baseKW  float64
	capSum  float64
	rateSum float64
}

// fillSystem adapts an Instance to numopt.WaterSystem for one electricity
// weight ω without allocating: the instance owns a single fillSystem and
// rewrites omega per fill, and the pointer passed as the interface is the
// already-heap-resident field, so no per-fill boxing occurs. It also
// implements numopt.BulkWaterSystem, so the water-filling inner loops run
// over the instance's flat arrays without a per-item interface call.
type fillSystem struct {
	in    *Instance
	omega float64
}

func (s *fillSystem) Items() int        { return len(s.in.gIdx) }
func (s *fillSystem) Cap(i int) float64 { return s.in.gCap[i] }
func (s *fillSystem) Deriv(i int, v float64) float64 {
	return s.in.marginal(i, s.omega, v)
}
func (s *fillSystem) Alloc(i int, nu float64) float64 {
	return s.in.alloc(i, s.omega, nu)
}

// SumAlloc implements numopt.BulkWaterSystem: Σ_i Alloc(i, ν) accumulated in
// ascending index order — the exact arithmetic of the generic per-item loop.
func (s *fillSystem) SumAlloc(nu float64) float64 {
	in, omega := s.in, s.omega
	var sum float64
	for i := 0; i < len(in.gIdx); i++ {
		sum += in.alloc(i, omega, nu)
	}
	return sum
}

// AllocInto implements numopt.BulkWaterSystem: writes Alloc(i, ν) into out
// and returns the ascending-order sum of the written values.
func (s *fillSystem) AllocInto(out []float64, nu float64) float64 {
	in, omega := s.in, s.omega
	var sum float64
	for i := range out {
		out[i] = in.alloc(i, omega, nu)
		sum += out[i]
	}
	return sum
}

// orderCache memoizes the fillNoDelay group ordering. The sort key is
// ω·slope, and ω only enters as a non-negative scale factor: for every ω > 0
// the comparisons reduce to the slopes themselves, and for ω = 0 every key
// collapses to zero and the (deliberately unstable) sort.Slice outcome is a
// fixed permutation of the identity. So one order per sign class, recomputed
// only when the speed configuration changes, reproduces the per-call sorts
// bit-for-bit whenever slopes are exactly equal or well separated — which
// holds for every cluster in this repository (homogeneous groups share one
// slope; heterogeneous generations differ by ≫ 1 ulp).
type orderCache struct {
	valid bool
	pos   []int // order for ω > 0 (ascending slope)
	zero  []int // order for ω = 0 (all keys equal)
}

func (c *orderCache) get(in *Instance, omega float64) []int {
	if !c.valid {
		c.pos = sortedOrder(c.pos, in, 1)
		c.zero = sortedOrder(c.zero, in, 0)
		c.valid = true
	}
	if omega == 0 {
		return c.zero
	}
	return c.pos
}

// sortedOrder reproduces fillNoDelay's historical per-call sort for a
// representative omega of the sign class.
func sortedOrder(buf []int, in *Instance, omega float64) []int {
	n := len(in.gIdx)
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	sort.Slice(buf, func(a, b int) bool {
		return omega*in.gSlope[buf[a]] < omega*in.gSlope[buf[b]]
	})
	return buf
}

// solveScratch holds the reusable buffers of the regime analysis: the grid
// and surplus fills plus two rotating buffers for the ω-bisection, whose
// last two evaluations double as a memo so the final fill can be reused
// instead of recomputed when the bisection already evaluated the returned ω.
type solveScratch struct {
	grid []float64
	free []float64
	bis  [2][]float64
}

// Instance is a prepared subproblem for one (problem, speeds) pair. Prepare
// once, then Solve; preparation separates validation from the hot path so
// GSD can re-solve thousands of proposals cheaply. SetSpeed/Revert/Commit
// mutate the prepared state incrementally, and SolveInto reuses both the
// caller's Solution buffers and the instance's internal scratch, so the
// steady-state proposal loop performs no heap allocation.
type Instance struct {
	prob   *dcmodel.SlotProblem
	arr    *dcmodel.ClusterArrays
	speeds []int // owned copy of the current speed vector

	// On groups in struct-of-arrays layout, ascending cluster index. The
	// five slices are parallel: position i describes one on group.
	gIdx   []int     // cluster group index
	gN     []float64 // float64(n_g)
	gRate  []float64 // R = n·x
	gSlope []float64 // A = PUE·p_c(x)/x
	gCap   []float64 // γ·R

	pos    []int     // cluster group index -> position in the slices, -1 when off
	static []float64 // per cluster group: PUE·n·StaticKW, speed-independent

	// Tracked aggregates. Each is recomputed as a fresh ordered sum over the
	// on groups after every structural change (never updated by +=delta):
	// floating-point addition is order-sensitive, and accumulated delta
	// drift in the last ulps would break the golden bit-for-bit parity the
	// repository pins against a from-scratch NewInstance build.
	baseKW  float64 // PUE · Σ static power of on groups (load-independent)
	capSum  float64 // Σ γ·R of on groups (the feasibility bound NewInstance checks)
	rateSum float64 // Σ R of on groups (Cluster.UsableCapacityRPS before the γ factor)

	undo    undoRecord
	sys     fillSystem
	order   orderCache
	scratch solveScratch
}

// NewInstance validates and prepares the subproblem. It returns
// ErrInfeasible when the speed vector cannot carry the problem's λ.
// The speed vector is copied; mutate the instance through SetSpeed.
func NewInstance(p *dcmodel.SlotProblem, speeds []int) (*Instance, error) {
	in := &Instance{}
	if err := in.Reset(p, speeds); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset re-prepares the instance for a new (problem, speeds) pair, reusing
// every internal buffer. The resulting state is bit-for-bit identical to a
// fresh NewInstance build: the on-group slices are rebuilt in the same
// ascending order with the same arithmetic, and the tracked sums come from
// the same recompute. On error the instance is left invalid; it must be
// Reset successfully before further use.
func (in *Instance) Reset(p *dcmodel.SlotProblem, speeds []int) error {
	if len(speeds) != len(p.Cluster.Groups) {
		return fmt.Errorf("loadbalance: %d speeds for %d groups",
			len(speeds), len(p.Cluster.Groups))
	}
	n := len(p.Cluster.Groups)
	in.prob = p
	in.arr = p.Cluster.Arrays()
	in.speeds = append(in.speeds[:0], speeds...)
	if cap(in.pos) < n {
		in.pos = make([]int, 0, n)
		in.static = make([]float64, 0, n)
	}
	in.pos = in.pos[:n]
	in.static = in.static[:n]
	if cap(in.gIdx) < n {
		in.gIdx = make([]int, 0, n)
		in.gN = make([]float64, 0, n)
		in.gRate = make([]float64, 0, n)
		in.gSlope = make([]float64, 0, n)
		in.gCap = make([]float64, 0, n)
	} else {
		in.gIdx, in.gN, in.gRate, in.gSlope, in.gCap =
			in.gIdx[:0], in.gN[:0], in.gRate[:0], in.gSlope[:0], in.gCap[:0]
	}
	in.sys.in = in
	in.undo.valid = false
	for g := range p.Cluster.Groups {
		k := speeds[g]
		if k < 0 || k > in.arr.NumSpeeds[g] {
			return fmt.Errorf("loadbalance: group %d speed index %d out of range", g, k)
		}
		in.static[g] = p.Cluster.PUE * in.arr.N[g] * in.arr.StaticKW[g]
		in.pos[g] = -1
		if k == 0 {
			continue
		}
		in.pos[g] = len(in.gIdx)
		in.appendEntry(in.makeGroup(g, k))
	}
	in.recompute()
	if p.LambdaRPS > in.capSum*(1+1e-12) {
		return ErrInfeasible
	}
	return nil
}

// appendEntry pushes one on group onto the end of the parallel slices.
func (in *Instance) appendEntry(e group) {
	in.gIdx = append(in.gIdx, e.idx)
	in.gN = append(in.gN, e.n)
	in.gRate = append(in.gRate, e.rate)
	in.gSlope = append(in.gSlope, e.slopeKW)
	in.gCap = append(in.gCap, e.cap)
}

// entry gathers position p of the parallel slices back into a struct.
func (in *Instance) entry(p int) group {
	return group{
		idx: in.gIdx[p], n: in.gN[p], rate: in.gRate[p],
		slopeKW: in.gSlope[p], cap: in.gCap[p],
	}
}

// setEntry scatters e into position p of the parallel slices.
func (in *Instance) setEntry(p int, e group) {
	in.gIdx[p], in.gN[p], in.gRate[p], in.gSlope[p], in.gCap[p] =
		e.idx, e.n, e.rate, e.slopeKW, e.cap
}

// recompute refreshes the tracked aggregates as fresh sums over the on
// groups in ascending cluster order — the exact accumulation order of a
// from-scratch NewInstance (off groups contribute an exact +0 there, which
// is an identity), so the values are bit-for-bit reproducible.
func (in *Instance) recompute() {
	var base, caps, rates float64
	for i := range in.gIdx {
		base += in.static[in.gIdx[i]]
		caps += in.gCap[i]
		rates += in.gRate[i]
	}
	in.baseKW, in.capSum, in.rateSum = base, caps, rates
	in.order.valid = false
}

// Speeds returns the instance's current speed vector. The slice is the
// instance's own state: treat it as read-only.
func (in *Instance) Speeds() []int { return in.speeds }

// Feasible reports whether the current speed configuration can carry the
// problem's load under the γ cap. It is the O(1) equivalent of
// SlotProblem.Feasible on the instance's speeds: rateSum is maintained in
// UsableCapacityRPS's exact accumulation order, so the comparison is
// bit-for-bit the same.
func (in *Instance) Feasible() bool {
	return in.prob.LambdaRPS <= in.rateSum*in.prob.Cluster.Gamma*(1+1e-12)
}

// ProposalFeasible estimates whether retargeting group g to speed k would
// leave the configuration feasible, without mutating the instance. The rate
// sum is delta-adjusted rather than recomputed as a fresh ordered sum, so in
// borderline cases (within a few ulps of the γ bound) the answer may differ
// from what SetSpeed+Feasible would report — callers must treat it as an
// advisory prediction, never as the authoritative check.
func (in *Instance) ProposalFeasible(g, k int) bool {
	if g < 0 || g >= len(in.pos) || k < 0 || k > in.arr.NumSpeeds[g] {
		return false
	}
	var cur float64
	if p := in.pos[g]; p >= 0 {
		cur = in.gRate[p]
	}
	var next float64
	if k > 0 {
		next = in.arr.Rate(g, k)
	}
	rs := in.rateSum - cur + next
	return in.prob.LambdaRPS <= rs*in.prob.Cluster.Gamma*(1+1e-12)
}

// SetSpeed retargets cluster group g to speed index k, updating the prepared
// subproblem in place, and snapshots the previous state so Revert can undo
// it. On groups stay ordered by cluster index, exactly as NewInstance builds
// them. A no-op change (k equal to the current speed) still records an
// (empty) undo snapshot.
func (in *Instance) SetSpeed(g, k int) error {
	if g < 0 || g >= len(in.pos) {
		return fmt.Errorf("loadbalance: group %d out of range", g)
	}
	if k < 0 || k > in.arr.NumSpeeds[g] {
		return fmt.Errorf("loadbalance: group %d speed index %d out of range", g, k)
	}
	old := in.speeds[g]
	in.undo = undoRecord{
		valid: true, kind: undoNone, g: g, oldK: old,
		baseKW: in.baseKW, capSum: in.capSum, rateSum: in.rateSum,
	}
	if k == old {
		return nil
	}
	in.speeds[g] = k
	switch {
	case old > 0 && k > 0:
		p := in.pos[g]
		in.undo.kind, in.undo.pos, in.undo.entry = undoModify, p, in.entry(p)
		in.setEntry(p, in.makeGroup(g, k))
	case old > 0: // k == 0: drop the entry
		p := in.pos[g]
		in.undo.kind, in.undo.pos, in.undo.entry = undoRemove, p, in.entry(p)
		in.removeAt(p)
	default: // old == 0, k > 0: insert in cluster-index order
		p := in.insertPos(g)
		in.undo.kind, in.undo.pos = undoInsert, p
		in.insertAt(p, in.makeGroup(g, k))
	}
	in.recompute()
	return nil
}

// Revert undoes the most recent SetSpeed since the last Revert or Commit,
// restoring the instance bit-for-bit (the tracked sums come back from the
// snapshot, not a recomputation). It is a no-op when nothing is pending.
func (in *Instance) Revert() {
	if !in.undo.valid {
		return
	}
	u := in.undo
	in.undo.valid = false
	in.speeds[u.g] = u.oldK
	switch u.kind {
	case undoNone:
		return // sums and slices untouched; order cache still valid
	case undoModify:
		in.setEntry(u.pos, u.entry)
	case undoRemove:
		in.insertAt(u.pos, u.entry)
	case undoInsert:
		in.removeAt(u.pos)
	}
	in.baseKW, in.capSum, in.rateSum = u.baseKW, u.capSum, u.rateSum
	in.order.valid = false
}

// Commit accepts the most recent SetSpeed, discarding its undo snapshot.
func (in *Instance) Commit() { in.undo.valid = false }

// insertPos returns the position in the on-group slices where cluster group
// g belongs (on groups are kept sorted by cluster index).
func (in *Instance) insertPos(g int) int {
	lo, hi := 0, len(in.gIdx)
	for lo < hi {
		mid := (lo + hi) / 2
		if in.gIdx[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (in *Instance) insertAt(p int, e group) {
	in.appendEntry(group{})
	copy(in.gIdx[p+1:], in.gIdx[p:])
	copy(in.gN[p+1:], in.gN[p:])
	copy(in.gRate[p+1:], in.gRate[p:])
	copy(in.gSlope[p+1:], in.gSlope[p:])
	copy(in.gCap[p+1:], in.gCap[p:])
	in.setEntry(p, e)
	for i := p; i < len(in.gIdx); i++ {
		in.pos[in.gIdx[i]] = i
	}
}

func (in *Instance) removeAt(p int) {
	g := in.gIdx[p]
	copy(in.gIdx[p:], in.gIdx[p+1:])
	copy(in.gN[p:], in.gN[p+1:])
	copy(in.gRate[p:], in.gRate[p+1:])
	copy(in.gSlope[p:], in.gSlope[p+1:])
	copy(in.gCap[p:], in.gCap[p+1:])
	n := len(in.gIdx) - 1
	in.gIdx, in.gN, in.gRate, in.gSlope, in.gCap =
		in.gIdx[:n], in.gN[:n], in.gRate[:n], in.gSlope[:n], in.gCap[:n]
	in.pos[g] = -1
	for i := p; i < n; i++ {
		in.pos[in.gIdx[i]] = i
	}
}

// marginal returns d(cost)/dL for on group i (slice position) at load v
// under electricity weight omega.
func (in *Instance) marginal(i int, omega, v float64) float64 {
	den := in.gRate[i] - v
	if den <= 0 {
		return math.Inf(1)
	}
	return omega*in.gSlope[i] + in.prob.Wd*in.gN[i]*in.gRate[i]/(den*den)
}

// alloc returns the load at which on group i's marginal cost equals price nu
// under electricity weight omega, clamped to [0, cap].
func (in *Instance) alloc(i int, omega, nu float64) float64 {
	rem := nu - omega*in.gSlope[i]
	if rem <= 0 {
		return 0
	}
	if in.prob.Wd <= 0 {
		// Pure electricity cost: bang-bang (handled by fillNoDelay; this
		// path keeps alloc total so water-filling code stays generic).
		return in.gCap[i]
	}
	// Wd·n·R/(R−L)² = rem  →  L = R − sqrt(Wd·n·R/rem).
	l := in.gRate[i] - math.Sqrt(in.prob.Wd*in.gN[i]*in.gRate[i]/rem)
	return numopt.Clamp(l, 0, in.gCap[i])
}

// filler computes one water-filling for a fixed electricity weight, writing
// per-instance-group loads into dst (implementations may return a different
// slice when dst is short). The centralized Instance and the distributed
// price-protocol coordinator both implement it, so solveWith runs the
// identical regime analysis over either.
type filler interface {
	fillInto(dst []float64, omega float64) ([]float64, error)
}

// fillInto water-fills the total load across groups under electricity weight
// omega, writing per-instance-group loads into dst.
func (in *Instance) fillInto(dst []float64, omega float64) ([]float64, error) {
	if in.prob.Wd <= 0 {
		return in.fillNoDelayInto(dst, omega), nil
	}
	in.sys.omega = omega
	out, err := numopt.WaterFillInto(&in.sys, in.prob.LambdaRPS, waterFillTol, dst)
	if err != nil {
		return nil, ErrInfeasible
	}
	return out, nil
}

// fill is the allocating form of fillInto, kept for white-box tests and
// one-shot callers.
func (in *Instance) fill(omega float64) ([]float64, error) {
	return in.fillInto(nil, omega)
}

// fillNoDelayInto handles the degenerate Wd = 0 case (no delay weight): the
// cost is linear in each load, so fill groups to their caps in ascending
// order of electricity slope. The order is cached per speed configuration
// (see orderCache) instead of re-sorted on every call.
func (in *Instance) fillNoDelayInto(dst []float64, omega float64) []float64 {
	order := in.order.get(in, omega)
	if cap(dst) < len(in.gIdx) {
		dst = make([]float64, len(in.gIdx))
	}
	dst = dst[:len(in.gIdx)]
	for i := range dst {
		dst[i] = 0
	}
	remaining := in.prob.LambdaRPS
	for _, i := range order {
		take := math.Min(remaining, in.gCap[i])
		dst[i] = take
		remaining -= take
		if remaining <= 0 {
			break
		}
	}
	return dst
}

const waterFillTol = 1e-7

// powerOf returns the facility power of an instance-group load vector.
func (in *Instance) powerOf(loads []float64) float64 {
	p := in.baseKW
	for i := 0; i < len(in.gIdx); i++ {
		p += in.gSlope[i] * loads[i]
	}
	return p
}

// expandInto scatters instance-group loads back to full cluster-group
// indexing, writing into dst.
func (in *Instance) expandInto(dst []float64, loads []float64) []float64 {
	n := len(in.prob.Cluster.Groups)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for i := range in.gIdx {
		dst[in.gIdx[i]] = loads[i]
	}
	return dst
}

// Solve computes the optimal load distribution for the instance using the
// centralized KKT water-filling solver with regime analysis on the [·]^+
// kink. It allocates a fresh Solution; hot loops use SolveInto.
func (in *Instance) Solve() (dcmodel.Solution, error) {
	var sol dcmodel.Solution
	if err := in.SolveInto(&sol); err != nil {
		return dcmodel.Solution{}, err
	}
	return sol, nil
}

// SolveInto is Solve writing into dst, reusing dst's Speeds/Load backing
// arrays and the instance's internal scratch. After SetSpeed mutations it
// re-checks capacity (the validation NewInstance performs on construction)
// so an infeasible configuration surfaces as ErrInfeasible exactly as a
// fresh build would.
func (in *Instance) SolveInto(dst *dcmodel.Solution) error {
	if in.prob.LambdaRPS > in.capSum*(1+1e-12) {
		return ErrInfeasible
	}
	loads, err := in.solveWith(in)
	if err != nil {
		return err
	}
	dst.Speeds = append(dst.Speeds[:0], in.speeds...)
	dst.Load = in.expandInto(dst.Load, loads)
	dst.Value = in.prob.Objective(dst.Speeds, dst.Load)
	return nil
}

// solveWith runs the regime analysis with a pluggable filler so the
// distributed solver can reuse the identical logic. The returned slice
// aliases the instance's scratch buffers; callers consume or copy it before
// the next solve.
func (in *Instance) solveWith(f filler) ([]float64, error) {
	if len(in.gIdx) == 0 {
		if in.prob.LambdaRPS > 0 {
			return nil, ErrInfeasible
		}
		return nil, nil
	}
	r := in.prob.OnsiteKW
	// Regime "grid": electricity weight fully active.
	gridLoads, err := f.fillInto(in.scratch.grid, in.prob.We)
	if err != nil {
		return nil, err
	}
	in.scratch.grid = gridLoads
	if in.prob.We == 0 || in.powerOf(gridLoads) >= r-powerTol {
		return gridLoads, nil
	}
	// Regime "surplus": on-site renewables cover everything; electricity
	// weight vanishes under the [·]^+.
	freeLoads, err := f.fillInto(in.scratch.free, 0)
	if err != nil {
		return nil, err
	}
	in.scratch.free = freeLoads
	if in.powerOf(freeLoads) <= r+powerTol {
		return freeLoads, nil
	}
	// Kink regime: the optimum pins total power at r. Total power is
	// non-increasing in the effective weight ω, so bisect ω ∈ [0, We].
	// The two rotating scratch buffers remember the last two evaluated
	// (ω, loads) pairs; when the bisection returns an ω it already
	// evaluated (a saturated endpoint or an exact hit), the computed loads
	// are reused instead of re-filled.
	var (
		lastW  [2]float64
		lastOK [2]bool
		cur    int
	)
	omega := numopt.BisectMonotone(func(w float64) float64 {
		loads, ferr := f.fillInto(in.scratch.bis[cur], w)
		if ferr != nil {
			err = ferr
			return 0
		}
		in.scratch.bis[cur] = loads
		lastW[cur], lastOK[cur] = w, true
		cur = 1 - cur
		return in.powerOf(loads)
	}, r, 0, in.prob.We, in.prob.We*1e-12, 100)
	if err != nil {
		return nil, err
	}
	for i := range lastW {
		if lastOK[i] && lastW[i] == omega {
			return in.scratch.bis[i], nil
		}
	}
	loads, err := f.fillInto(in.scratch.bis[cur], omega)
	if err != nil {
		return nil, err
	}
	in.scratch.bis[cur] = loads
	return loads, nil
}

const powerTol = 1e-6 // kW: tolerance when comparing power against r(t)

// Solve computes the optimal load split of Eq. (18) for fixed speeds using
// the centralized solver. See Instance for the reusable form.
func Solve(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, error) {
	in, err := NewInstance(p, speeds)
	if err != nil {
		return dcmodel.Solution{}, err
	}
	return in.Solve()
}
